// cegraph_client — command-line client for the cegraph_serve daemon.
//
//   cegraph_client --port P [--host H] [--dataset NAME] \
//                  --query "(a)-[3]->(b); ..." [--query "..." ...]
//   cegraph_client --port P --workload FILE [--threads N] [--passes K]
//                  [--batch-size B] [--quiet]
//   cegraph_client --port P --apply-deltas FILE
//   cegraph_client --port P --swap-snapshot PATH
//   cegraph_client --port P (--stats | --scorecard | --corrections)
//                  [--watch] [--interval S]
//   cegraph_client --port P (--ping | --shutdown)
//
// --stats requests the wire-v4 observability extension (the request's
// text field carries "v4"): besides the v3 counters it prints latency /
// batch-size / fold-duration quantiles, per-estimator latency and
// q-error distributions, admission weight units, the server's shed /
// backpressure / byte / frame counters and the serving state's cache
// rows. Against a pre-v4 server the extra tables are simply absent.
// --scorecard requests "v5" on top: the per-query-class accuracy
// scorecard (windowed q-error quantiles, under/over split, drift
// verdict vs the baseline stamped at the last snapshot load/hot swap)
// with each class's worst exemplar, plus the recent (1m) request
// latency and rate. --watch re-samples every --interval seconds
// (default 2) and annotates counters with their delta since the
// previous sample — "(reset)" marks a counter that went backwards
// (server restart) — reconnecting through transport errors; stop with
// ^C. --corrections also requests "v5" and prints the learned-feedback
// loop's state (wire-v5 corrections extension): feedback mode,
// applied/suppressed counters, trailing-minute pre- vs post-correction
// q-error medians and the per-class correction table. Against a
// feedback-unaware server the section is simply absent.
//
// --request-id N stamps the wire-v5 end-to-end request id (decimal or
// 0x-hex) on the request; the server echoes it and threads it through
// its slow-request log and journal, and the client prints the echo.
//
// --dataset routes the request to the named dataset of a multi-dataset
// daemon (wire protocol v2); without it the server's default dataset
// answers. --query may repeat: two or more queries travel together as ONE
// wire-v3 batch frame over one connection and are answered in order from
// a single serving epoch. --workload streams a saved workload file
// (query/workload_io.h format, ground truth included) from N concurrent
// connections — each thread reuses its one connection for its whole share
// — and prints per-query results plus per-estimator aggregate q-error and
// latency; --batch-size B > 1 packs each thread's share into v3 batch
// frames of B lines. A RESOURCE_EXHAUSTED error frame (admission or
// server overload) is retried with backoff up to --retries times before
// counting as a failure. --apply-deltas sends a delta text feed
// (dynamic/delta_io.h format) inline; the server folds it into a new
// serving state and answers with the post-swap epoch. --swap-snapshot
// names a *server-local* snapshot path (monolithic file or shard
// manifest).
//
// Exit status is 0 iff every request succeeded. A server-side error frame
// (unknown dataset, admission rejection, bad feed, ...) exits nonzero
// with the server's own message on stderr, prefixed "server error:";
// transport failures (connection refused/reset) are prefixed
// "transport error:" so the two are never conflated.
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <mutex>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "harness/qerror.h"
#include "query/workload_io.h"
#include "service/wire.h"
#include "util/table_printer.h"

namespace {

using namespace cegraph;
using service::wire::MessageType;
using service::wire::Request;
using service::wire::Response;

int Usage() {
  std::fprintf(
      stderr,
      "usage: cegraph_client --port P [--host H] [--dataset NAME] "
      "[--retries R] <command>\n"
      "  --query \"PATTERN\"            one estimation request; repeat the\n"
      "                               flag to send one v3 batch frame\n"
      "  --workload FILE [--threads N] [--passes K] [--batch-size B]\n"
      "                 [--quiet]\n"
      "  --apply-deltas FILE           send a delta feed, hot-swap\n"
      "  --swap-snapshot PATH          server-local snapshot/manifest path\n"
      "  --stats | --scorecard | --corrections  [--watch] [--interval S]\n"
      "  --ping | --shutdown\n"
      "  --request-id N                stamp an end-to-end request id\n");
  return 2;
}

std::string U64(uint64_t v) { return std::to_string(v); }

/// "N (+D)" when a previous sample exists, plain "N" otherwise. A
/// counter that went *backwards* (the server restarted between samples)
/// is marked "(reset)" instead of faking a zero delta.
std::string WithDelta(uint64_t now, const uint64_t* prev) {
  if (prev == nullptr) return U64(now);
  if (now < *prev) return U64(now) + " (reset)";
  return U64(now) + " (+" + U64(now - *prev) + ")";
}

void AddSummaryRow(util::TablePrinter& table, const std::string& name,
                   const cegraph::obs::QuantileSummary& s) {
  table.AddRow({name, U64(s.count), util::TablePrinter::Num(s.mean),
                util::TablePrinter::Num(s.p50),
                util::TablePrinter::Num(s.p90),
                util::TablePrinter::Num(s.p99),
                util::TablePrinter::Num(s.max)});
}

/// Prints one stats response; `prev` (the previous --watch sample, may be
/// null) turns monotonic counters into "N (+delta)" annotations.
void PrintStats(const Response& response, const service::ServiceStats* prev) {
  const service::ServiceStats& s = response.stats;
  if (!response.dataset.empty()) {
    std::printf("dataset %s\n", response.dataset.c_str());
  }
  std::printf(
      "served %s, rejected %s, request errors %s\n"
      "epoch %llu (state v%llu), %llu swaps, %zu pending delta ops\n"
      "replay log %zu ops (min replayable epoch %llu)\n"
      "in flight %lld (peak %lld), mean latency %.1f us\n",
      WithDelta(s.served, prev ? &prev->served : nullptr).c_str(),
      WithDelta(s.rejected, prev ? &prev->rejected : nullptr).c_str(),
      WithDelta(s.request_errors, prev ? &prev->request_errors : nullptr)
          .c_str(),
      static_cast<unsigned long long>(s.epoch),
      static_cast<unsigned long long>(s.version),
      static_cast<unsigned long long>(s.swaps), s.pending_delta_ops,
      s.replay_log_ops,
      static_cast<unsigned long long>(s.min_replayable_epoch),
      static_cast<long long>(s.in_flight),
      static_cast<long long>(s.peak_in_flight), s.mean_latency_micros);
  for (const auto& e : s.estimators) {
    std::printf("  %-14s %llu requests, %llu failures, %.1f us, mean "
                "q-error %.3g\n",
                e.name.c_str(),
                static_cast<unsigned long long>(e.requests),
                static_cast<unsigned long long>(e.failures), e.mean_micros,
                e.mean_qerror);
  }
  if (s.snapshot_load.loaded) {
    std::printf("snapshot load: %s, open %.2f ms, %s %.2f ms, "
                "%llu bytes mapped, epoch %llu\n",
                s.snapshot_load.mapped ? "mapped (arena)" : "parsed",
                s.snapshot_load.map_millis,
                s.snapshot_load.mapped ? "attach" : "apply",
                s.snapshot_load.parse_millis,
                static_cast<unsigned long long>(
                    s.snapshot_load.mapped_bytes),
                static_cast<unsigned long long>(
                    s.snapshot_load.snapshot_epoch));
  }
  if (!s.v4_wire) return;  // pre-v4 server: nothing below travelled

  std::printf("weight units: admitted %s, rejected %s; snapshot loads %s\n",
              WithDelta(s.admitted_weight,
                        prev ? &prev->admitted_weight : nullptr)
                  .c_str(),
              WithDelta(s.rejected_weight,
                        prev ? &prev->rejected_weight : nullptr)
                  .c_str(),
              WithDelta(s.snapshot_loads,
                        prev ? &prev->snapshot_loads : nullptr)
                  .c_str());
  if (s.server.present) {
    const auto& sv = s.server;
    const service::ServiceStats::ServerCounters* pv =
        prev != nullptr && prev->server.present ? &prev->server : nullptr;
    std::printf(
        "server: connections %s accepted, %llu active; backpressure %s\n"
        "  shed: admission %s, connection cap %s, pipeline cap %s, "
        "queue cap %s\n"
        "  bytes in %s out %s; frames estimate %s batch %s other %s\n",
        WithDelta(sv.connections_accepted,
                  pv ? &pv->connections_accepted : nullptr)
            .c_str(),
        static_cast<unsigned long long>(sv.connections_active),
        WithDelta(sv.backpressure_events,
                  pv ? &pv->backpressure_events : nullptr)
            .c_str(),
        WithDelta(s.rejected, prev ? &prev->rejected : nullptr).c_str(),
        WithDelta(sv.shed_connection_cap,
                  pv ? &pv->shed_connection_cap : nullptr)
            .c_str(),
        WithDelta(sv.shed_pipeline_cap,
                  pv ? &pv->shed_pipeline_cap : nullptr)
            .c_str(),
        WithDelta(sv.shed_queue_cap, pv ? &pv->shed_queue_cap : nullptr)
            .c_str(),
        WithDelta(sv.bytes_in, pv ? &pv->bytes_in : nullptr).c_str(),
        WithDelta(sv.bytes_out, pv ? &pv->bytes_out : nullptr).c_str(),
        WithDelta(sv.frames_estimate, pv ? &pv->frames_estimate : nullptr)
            .c_str(),
        WithDelta(sv.frames_batch, pv ? &pv->frames_batch : nullptr)
            .c_str(),
        WithDelta(sv.frames_other, pv ? &pv->frames_other : nullptr)
            .c_str());
  }

  util::TablePrinter dist(
      {"distribution", "count", "mean", "p50", "p90", "p99", "max"});
  AddSummaryRow(dist, "latency us", s.latency);
  AddSummaryRow(dist, "batch lines", s.batch_lines);
  AddSummaryRow(dist, "fold ms", s.fold_millis);
  dist.Print(std::cout);

  if (!s.estimators.empty()) {
    util::TablePrinter est({"estimator", "lat p50", "lat p90", "lat p99",
                            "lat max", "qerr p50", "qerr p90", "qerr p99",
                            "qerr max"});
    for (const auto& e : s.estimators) {
      est.AddRow({e.name, util::TablePrinter::Num(e.latency.p50),
                  util::TablePrinter::Num(e.latency.p90),
                  util::TablePrinter::Num(e.latency.p99),
                  util::TablePrinter::Num(e.latency.max),
                  util::TablePrinter::Num(e.qerror.p50),
                  util::TablePrinter::Num(e.qerror.p90),
                  util::TablePrinter::Num(e.qerror.p99),
                  util::TablePrinter::Num(e.qerror.max)});
    }
    est.Print(std::cout);
  }

  if (!s.caches.empty()) {
    util::TablePrinter caches(
        {"cache", "entries", "hits", "misses", "evictions"});
    for (const auto& c : s.caches) {
      caches.AddRow({c.name, U64(c.entries), U64(c.hits), U64(c.misses),
                     U64(c.evictions)});
    }
    caches.Print(std::cout);
  }

  if (!s.scorecard_wire) return;  // pre-v5 server / --stats: no scorecard

  std::printf(
      "\nscorecard (window %llds): recent rate %.1f req/s, "
      "latency p50 %.1f us p99 %.1f us (1m); drift: %s\n",
      static_cast<long long>(s.scorecard_window_seconds), s.rate_1m,
      s.latency_1m.p50, s.latency_1m.p99, s.any_drift ? "YES" : "none");
  if (s.scorecard.empty()) {
    std::printf("no truth-carrying estimates in the window yet\n");
  } else {
    util::TablePrinter classes({"class", "hits", "under", "over", "qerr p50",
                                "qerr p99", "qerr max", "baseline", "drift"});
    for (const auto& c : s.scorecard) {
      classes.AddRow(
          {c.display, U64(c.hits), U64(c.under), U64(c.over),
           util::TablePrinter::Num(c.qerror.p50),
           util::TablePrinter::Num(c.qerror.p99),
           util::TablePrinter::Num(c.qerror.max),
           c.baseline_median > 0 ? util::TablePrinter::Num(c.baseline_median)
                                 : "-",
           c.drifted ? "YES" : "-"});
    }
    classes.Print(std::cout);
    for (const auto& c : s.scorecard) {
      if (c.worst.qerror <= 0) continue;
      std::printf("  %s worst q-error %.3g (%s: estimate %.4g, truth %.4g): "
                  "%s\n",
                  c.display.c_str(), c.worst.qerror, c.worst.estimator.c_str(),
                  c.worst.estimate, c.worst.truth, c.worst.line.c_str());
    }
  }

  if (!s.corrections_wire) return;  // feedback-unaware server
  const char* mode = s.feedback_mode == service::FeedbackMode::kOn ? "on"
                     : s.feedback_mode == service::FeedbackMode::kFrozen
                         ? "frozen"
                         : "off";
  std::printf(
      "\ncorrections (feedback %s): %llu classes (%llu active, %s evicted), "
      "applied %s, suppressed %s\n"
      "q-error 1m: pre-correction p50 %.3g p99 %.3g, "
      "post-correction p50 %.3g p99 %.3g\n",
      mode, static_cast<unsigned long long>(s.feedback_classes),
      static_cast<unsigned long long>(s.feedback_active),
      WithDelta(s.feedback_evictions,
                prev ? &prev->feedback_evictions : nullptr)
          .c_str(),
      WithDelta(s.corrections_applied,
                prev ? &prev->corrections_applied : nullptr)
          .c_str(),
      WithDelta(s.corrections_suppressed,
                prev ? &prev->corrections_suppressed : nullptr)
          .c_str(),
      s.qerror_raw_1m.p50, s.qerror_raw_1m.p99, s.qerror_corrected_1m.p50,
      s.qerror_corrected_1m.p99);
  if (s.corrections.empty()) {
    std::printf("no correction classes learned yet\n");
    return;
  }
  util::TablePrinter table(
      {"class", "estimator", "hits", "samples", "correction", "active"});
  for (const auto& c : s.corrections) {
    // The class key is "estimator|template|labels"; keep the estimator
    // column separate so one query class's rows group visually.
    const std::string::size_type bar = c.key.find('|');
    table.AddRow({c.display,
                  bar == std::string::npos ? c.key : c.key.substr(0, bar),
                  U64(c.hits), U64(c.samples),
                  util::TablePrinter::Num(c.correction),
                  c.active ? "YES" : "-"});
  }
  table.Print(std::cout);
}

/// Per-attempt retry pause: exponential from 1 ms, clamped to a 2 s
/// ceiling (large --retries values must widen the tail, not the pause),
/// with ±25% jitter so a fleet of clients rejected together does not
/// re-stampede the server on a synchronized schedule.
std::chrono::milliseconds RetryPause(int attempt) {
  constexpr long kMaxPauseMs = 2000;
  const long base =
      attempt >= 11 ? kMaxPauseMs
                    : std::min(kMaxPauseMs, 1L << std::min(attempt, 11));
  thread_local std::mt19937 rng(
      std::random_device{}() ^
      static_cast<unsigned>(
          std::hash<std::thread::id>{}(std::this_thread::get_id())));
  std::uniform_int_distribution<long> jitter(-base / 4, base / 4);
  return std::chrono::milliseconds(std::max(1L, base + jitter(rng)));
}

/// RoundTrip that retries the retryable refusal: a RESOURCE_EXHAUSTED
/// error frame (admission or overload rejection) is resent after a
/// capped, jittered exponential pause (RetryPause), up to `retries`
/// times. Every other outcome — transport failure or any other server
/// error — returns immediately.
util::StatusOr<Response> RoundTripRetry(int fd, const Request& request,
                                        int retries) {
  for (int attempt = 0;; ++attempt) {
    auto response = service::wire::RoundTrip(fd, request);
    if (!response.ok()) return response;
    if (response->status.code() != util::StatusCode::kResourceExhausted ||
        attempt >= retries) {
      return response;
    }
    std::this_thread::sleep_for(RetryPause(attempt));
  }
}

/// Sends one request over a fresh connection. The outer StatusOr carries
/// only *transport* failures; a server-side error frame comes back as an
/// OK result whose Response::status is non-OK, so callers can attribute
/// failures correctly (the server's message, not a generic read error).
util::StatusOr<Response> OneShot(const std::string& host, int port,
                                 const Request& request, int retries) {
  auto fd = service::wire::DialTcp(host, port);
  if (!fd.ok()) return fd.status();
  auto response = RoundTripRetry(*fd, request, retries);
  ::close(*fd);
  return response;
}

void PrintEstimate(const service::EstimateResponse& estimate,
                   const std::string& dataset) {
  std::printf("%s%s%sepoch %llu (state v%llu), %.1f us\n",
              dataset.empty() ? "" : "dataset ", dataset.c_str(),
              dataset.empty() ? "" : ", ",
              static_cast<unsigned long long>(estimate.epoch),
              static_cast<unsigned long long>(estimate.state_version),
              estimate.total_micros);
  util::TablePrinter table(estimate.has_truth
                               ? std::vector<std::string>{"estimator",
                                                          "estimate",
                                                          "q-error", "us"}
                               : std::vector<std::string>{"estimator",
                                                          "estimate", "us"});
  for (const service::EstimatorResult& r : estimate.results) {
    std::vector<std::string> row{r.name,
                                 r.ok ? util::TablePrinter::Num(r.estimate)
                                      : r.error};
    if (estimate.has_truth) {
      row.push_back(r.ok ? util::TablePrinter::Num(r.qerror) : "-");
    }
    row.push_back(util::TablePrinter::Num(r.micros));
    table.AddRow(row);
  }
  if (estimate.has_truth) {
    table.AddRow({"exact", util::TablePrinter::Num(estimate.truth),
                  estimate.has_truth ? "1" : "-", "-"});
  }
  table.Print(std::cout);
}

int RunWorkload(const std::string& host, int port,
                const std::string& dataset,
                const std::string& workload_file, int threads, int passes,
                int batch_size, int retries, bool quiet) {
  auto workload = query::LoadWorkload(workload_file);
  if (!workload.ok()) {
    std::fprintf(stderr, "workload: %s\n",
                 workload.status().ToString().c_str());
    return 1;
  }
  // Request lines travel exactly as saved: "<template> <truth> <pattern>".
  std::vector<std::string> lines;
  lines.reserve(workload->size());
  {
    std::ostringstream text;
    if (!query::WriteWorkloadText(*workload, text).ok()) return 1;
    std::istringstream in(text.str());
    std::string line;
    while (std::getline(in, line)) {
      if (!line.empty() && line[0] != '#') lines.push_back(line);
    }
  }

  struct Accum {
    uint64_t requests = 0;
    uint64_t failures = 0;
    double micros = 0;
    double qerror_sum = 0;
    double qerror_max = 0;
    uint64_t qerror_count = 0;
  };
  std::mutex mutex;
  std::map<std::string, Accum> per_estimator;
  std::map<uint64_t, size_t> per_epoch;
  size_t errors = 0;

  if (threads < 1) threads = 1;
  auto worker = [&](int tid) {
    // This thread's stride-interleaved share per pass, so a dead
    // connection charges every request it can no longer send as an error
    // (the summary must not under-report a truncated sample).
    const size_t share =
        (lines.size() + static_cast<size_t>(threads) - 1 -
         static_cast<size_t>(tid)) /
        static_cast<size_t>(threads);
    auto fd = service::wire::DialTcp(host, port);
    if (!fd.ok()) {
      std::lock_guard<std::mutex> lock(mutex);
      errors += share * static_cast<size_t>(passes);  // whole share lost
      std::fprintf(stderr, "transport error: %s\n",
                   fd.status().ToString().c_str());
      return;
    }
    // This thread's stride-interleaved indices (one pass's worth).
    std::vector<size_t> mine;
    for (size_t i = static_cast<size_t>(tid); i < lines.size();
         i += static_cast<size_t>(threads)) {
      mine.push_back(i);
    }
    const size_t chunk =
        batch_size > 1 ? static_cast<size_t>(batch_size) : 1;
    size_t sent = 0;  ///< queries completed across passes
    for (int pass = 0; pass < passes; ++pass) {
      for (size_t b = 0; b < mine.size(); b += chunk) {
        const size_t n = std::min(chunk, mine.size() - b);
        Request request;
        request.dataset = dataset;
        if (batch_size > 1) {
          // v3 batch frame: n lines, one round trip, one serving epoch.
          request.type = MessageType::kBatchEstimate;
          request.lines.reserve(n);
          for (size_t j = 0; j < n; ++j) {
            request.lines.push_back(lines[mine[b + j]]);
          }
        } else {
          request.type = MessageType::kEstimate;
          request.text = lines[mine[b]];
        }
        auto response = RoundTripRetry(*fd, request, retries);
        if (!response.ok()) {
          // Transport failure: the connection is dead, so the rest of
          // this thread's share cannot be sent either — charge it all
          // instead of spamming a read error per remaining query.
          std::lock_guard<std::mutex> lock(mutex);
          errors += share * static_cast<size_t>(passes) - sent;
          std::fprintf(stderr, "query %zu transport error: %s\n",
                       mine[b], response.status().ToString().c_str());
          ::close(*fd);
          return;
        }
        sent += n;
        std::lock_guard<std::mutex> lock(mutex);
        if (!response->status.ok()) {
          // Frame-level refusal (post-retry saturation, bad dataset, ...)
          // fails every query the frame carried.
          errors += n;
          std::fprintf(stderr, "quer%s %zu%s server error: %s\n",
                       n == 1 ? "y" : "ies", mine[b],
                       n == 1 ? "" : "...",
                       response->status.ToString().c_str());
          continue;
        }
        if (batch_size > 1 && response->batch.size() != n) {
          errors += n;
          std::fprintf(stderr,
                       "batch at query %zu: %zu items answered for %zu "
                       "lines\n",
                       mine[b], response->batch.size(), n);
          continue;
        }
        for (size_t j = 0; j < n; ++j) {
          const size_t i = mine[b + j];
          const util::Status& item_status =
              batch_size > 1 ? response->batch[j].status
                             : response->status;
          if (!item_status.ok()) {
            ++errors;
            std::fprintf(stderr, "query %zu server error: %s\n", i,
                         item_status.ToString().c_str());
            continue;
          }
          const service::EstimateResponse& e =
              batch_size > 1 ? response->batch[j].estimate
                             : response->estimate;
          ++per_epoch[e.epoch];
          for (const service::EstimatorResult& r : e.results) {
            Accum& accum = per_estimator[r.name];
            ++accum.requests;
            accum.micros += r.micros;
            if (!r.ok) {
              ++accum.failures;
            } else if (e.has_truth && harness::UsableQError(r.qerror)) {
              accum.qerror_sum += r.qerror;
              accum.qerror_max = std::max(accum.qerror_max, r.qerror);
              ++accum.qerror_count;
            }
          }
          if (!quiet && pass == 0) {
            std::printf("query %-4zu epoch %llu", i,
                        static_cast<unsigned long long>(e.epoch));
            for (const service::EstimatorResult& r : e.results) {
              if (r.ok) {
                std::printf("  %s=%.4g", r.name.c_str(), r.estimate);
              } else {
                std::printf("  %s=ERR", r.name.c_str());
              }
            }
            std::printf("\n");
          }
        }
      }
    }
    ::close(*fd);
  };
  std::vector<std::thread> pool;
  for (int t = 1; t < threads; ++t) pool.emplace_back(worker, t);
  worker(0);
  for (std::thread& t : pool) t.join();

  std::printf(
      "\n%zu queries x %d passes over %d connections%s; %zu errors\n",
      lines.size(), passes, threads,
      batch_size > 1
          ? (" (batched x" + std::to_string(batch_size) + ")").c_str()
          : "",
      errors);
  std::printf("epochs observed:");
  for (const auto& [epoch, count] : per_epoch) {
    std::printf(" %llu(x%zu)", static_cast<unsigned long long>(epoch),
                count);
  }
  std::printf("\n\n");
  util::TablePrinter table(
      {"estimator", "requests", "failures", "mean q-error", "max q-error",
       "mean us"});
  for (const auto& [name, accum] : per_estimator) {
    table.AddRow(
        {name, std::to_string(accum.requests),
         std::to_string(accum.failures),
         accum.qerror_count > 0
             ? util::TablePrinter::Num(accum.qerror_sum /
                                       static_cast<double>(
                                           accum.qerror_count))
             : "-",
         accum.qerror_count > 0 ? util::TablePrinter::Num(accum.qerror_max)
                                : "-",
         accum.requests > 0
             ? util::TablePrinter::Num(
                   accum.micros / static_cast<double>(accum.requests))
             : "-"});
  }
  table.Print(std::cout);
  return errors == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = 0;
  std::string dataset;
  std::vector<std::string> query_texts;
  std::string workload_file, deltas_file, snapshot_path;
  bool stats = false, ping = false, shutdown = false, quiet = false;
  bool watch = false, scorecard = false, corrections = false;
  int threads = 1, passes = 1, batch_size = 1, retries = 3, interval = 2;
  uint64_t request_id = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](std::string* out) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        return false;
      }
      *out = argv[++i];
      return true;
    };
    std::string value;
    if (arg == "--host") {
      if (!next(&host)) return Usage();
    } else if (arg == "--dataset") {
      if (!next(&dataset)) return Usage();
    } else if (arg == "--port") {
      if (!next(&value)) return Usage();
      port = std::atoi(value.c_str());
    } else if (arg == "--query") {
      if (!next(&value)) return Usage();
      query_texts.push_back(value);
    } else if (arg == "--workload") {
      if (!next(&workload_file)) return Usage();
    } else if (arg == "--apply-deltas") {
      if (!next(&deltas_file)) return Usage();
    } else if (arg == "--swap-snapshot") {
      if (!next(&snapshot_path)) return Usage();
    } else if (arg == "--threads") {
      if (!next(&value)) return Usage();
      threads = std::atoi(value.c_str());
    } else if (arg == "--passes") {
      if (!next(&value)) return Usage();
      passes = std::atoi(value.c_str());
    } else if (arg == "--batch-size") {
      if (!next(&value)) return Usage();
      batch_size = std::atoi(value.c_str());
    } else if (arg == "--retries") {
      if (!next(&value)) return Usage();
      retries = std::atoi(value.c_str());
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--scorecard") {
      scorecard = true;
    } else if (arg == "--corrections") {
      corrections = true;
    } else if (arg == "--request-id") {
      if (!next(&value)) return Usage();
      request_id = std::strtoull(value.c_str(), nullptr, 0);
    } else if (arg == "--watch") {
      watch = true;
    } else if (arg == "--interval") {
      if (!next(&value)) return Usage();
      interval = std::atoi(value.c_str());
    } else if (arg == "--ping") {
      ping = true;
    } else if (arg == "--shutdown") {
      shutdown = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return Usage();
    }
  }
  if (port <= 0) return Usage();

  if (!workload_file.empty()) {
    return RunWorkload(host, port, dataset, workload_file, threads, passes,
                       batch_size, retries, quiet);
  }

  Request request;
  if (query_texts.size() == 1) {
    request = {MessageType::kEstimate, query_texts.front(), dataset};
  } else if (query_texts.size() > 1) {
    // Several --query flags ride one v3 batch frame: one connection, one
    // round trip, one serving epoch for all of them.
    request.type = MessageType::kBatchEstimate;
    request.dataset = dataset;
    request.lines = query_texts;
  } else if (!deltas_file.empty()) {
    std::ifstream in(deltas_file);
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", deltas_file.c_str());
      return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();
    request = {MessageType::kApplyDeltas, text.str(), dataset};
  } else if (!snapshot_path.empty()) {
    request = {MessageType::kSwapSnapshot, snapshot_path, dataset};
  } else if (scorecard || corrections) {
    // "v5" opts into the v4 observability extension *and* the per-class
    // accuracy scorecard *and* the corrections extension; a pre-v5
    // server just echoes a v3 stats body.
    request = {MessageType::kStats, "v5", dataset};
  } else if (stats) {
    // "v4" opts into the observability extension; a pre-v4 server just
    // echoes a v3 stats body and the extra tables stay absent.
    request = {MessageType::kStats, "v4", dataset};
  } else if (ping) {
    // A dataset-qualified ping doubles as a routing probe: the server
    // validates the name without touching the service.
    request = {MessageType::kPing, "", dataset};
  } else if (shutdown) {
    // Shutdown is server-wide; the server rejects a dataset-qualified one.
    request = {MessageType::kShutdown, ""};
  } else {
    return Usage();
  }
  request.request_id = request_id;

  if ((stats || scorecard || corrections) && watch) {
    // Re-sample forever (until ^C), annotating monotonic counters with
    // their delta since the previous sample. Each sample is its own
    // connection, so a restarted server only costs failed samples, not
    // the watch: transport errors are reported and retried on the same
    // cadence, and the delta baseline is dropped — the first sample
    // after a reconnect prints plain counters (or "(reset)" markers).
    service::ServiceStats prev;
    bool have_prev = false;
    for (int sample = 0;; ++sample) {
      auto pause = [interval] {
        std::this_thread::sleep_for(
            std::chrono::seconds(interval < 1 ? 1 : interval));
      };
      auto response = OneShot(host, port, request, retries);
      if (!response.ok()) {
        std::fprintf(stderr, "transport error: %s (retrying in %ds)\n",
                     response.status().ToString().c_str(),
                     interval < 1 ? 1 : interval);
        have_prev = false;
        pause();
        continue;
      }
      if (!response->status.ok()) {
        // A server-side error frame (unknown dataset, ...) is a request
        // problem, not an outage — retrying would loop on it forever.
        std::fprintf(stderr, "server error: %s\n",
                     response->status.ToString().c_str());
        return 1;
      }
      std::printf("%s--- sample %d (every %ds) ---\n",
                  sample == 0 ? "" : "\n", sample, interval);
      PrintStats(*response, have_prev ? &prev : nullptr);
      std::fflush(stdout);
      prev = response->stats;
      have_prev = true;
      pause();
    }
  }

  auto response = OneShot(host, port, request, retries);
  if (!response.ok()) {
    std::fprintf(stderr, "transport error: %s\n",
                 response.status().ToString().c_str());
    return 1;
  }
  if (response->request_id != 0) {
    // The v5 echo — the same 16 hex chars the server's slow log and
    // journal print, so one grep correlates all three.
    std::printf("request id %016llx\n",
                static_cast<unsigned long long>(response->request_id));
  }
  if (!response->status.ok()) {
    // The server answered with an error frame: its own message is the
    // diagnosis (unknown dataset, admission rejection, bad feed, ...).
    std::fprintf(stderr, "server error: %s\n",
                 response->status.ToString().c_str());
    return 1;
  }
  switch (request.type) {
    case MessageType::kEstimate:
      PrintEstimate(response->estimate, response->dataset);
      break;
    case MessageType::kBatchEstimate: {
      size_t item_errors = 0;
      for (size_t i = 0; i < response->batch.size(); ++i) {
        const service::BatchEstimateItem& item = response->batch[i];
        std::printf("[%zu] %s\n", i,
                    i < request.lines.size() ? request.lines[i].c_str()
                                             : "?");
        if (!item.status.ok()) {
          ++item_errors;
          std::fprintf(stderr, "[%zu] server error: %s\n", i,
                       item.status.ToString().c_str());
          continue;
        }
        PrintEstimate(item.estimate, response->dataset);
      }
      if (item_errors > 0) return 1;
      break;
    }
    case MessageType::kApplyDeltas:
    case MessageType::kSwapSnapshot: {
      const service::SwapReport& swap = response->swap;
      std::printf(
          "swapped to epoch %llu (state v%llu): %zu ops applied "
          "(+%zu/-%zu edges, %zu labels, %zu entries evicted), %zu log "
          "ops trimmed%s\n",
          static_cast<unsigned long long>(swap.epoch),
          static_cast<unsigned long long>(swap.version), swap.applied_ops,
          swap.maintenance.inserted_edges, swap.maintenance.deleted_edges,
          swap.maintenance.changed_labels,
          swap.maintenance.total_evicted(), swap.trimmed_log_ops,
          swap.snapshot_stale ? " (stale snapshot, deltas replayed)" : "");
      break;
    }
    case MessageType::kStats:
      PrintStats(*response, nullptr);
      break;
    case MessageType::kPing:
    case MessageType::kShutdown:
      std::printf("%s\n", response->text.c_str());
      break;
  }
  return 0;
}
