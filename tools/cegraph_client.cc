// cegraph_client — command-line client for the cegraph_serve daemon.
//
//   cegraph_client --port P [--host H] [--dataset NAME] \
//                  --query "(a)-[3]->(b); ..."
//   cegraph_client --port P --workload FILE [--threads N] [--passes K]
//                  [--quiet]
//   cegraph_client --port P --apply-deltas FILE
//   cegraph_client --port P --swap-snapshot PATH
//   cegraph_client --port P (--stats | --ping | --shutdown)
//
// --dataset routes the request to the named dataset of a multi-dataset
// daemon (wire protocol v2); without it the server's default dataset
// answers. --workload streams a saved workload file (query/workload_io.h
// format, ground truth included) from N concurrent connections and prints
// per-query results plus per-estimator aggregate q-error and latency.
// --apply-deltas sends a delta text feed (dynamic/delta_io.h format)
// inline; the server folds it into a new serving state and answers with
// the post-swap epoch. --swap-snapshot names a *server-local* snapshot
// path (monolithic file or shard manifest).
//
// Exit status is 0 iff every request succeeded. A server-side error frame
// (unknown dataset, admission rejection, bad feed, ...) exits nonzero
// with the server's own message on stderr, prefixed "server error:";
// transport failures (connection refused/reset) are prefixed
// "transport error:" so the two are never conflated.
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "query/workload_io.h"
#include "service/wire.h"
#include "util/table_printer.h"

namespace {

using namespace cegraph;
using service::wire::MessageType;
using service::wire::Request;
using service::wire::Response;

int Usage() {
  std::fprintf(
      stderr,
      "usage: cegraph_client --port P [--host H] [--dataset NAME] "
      "<command>\n"
      "  --query \"PATTERN\"            one estimation request\n"
      "  --workload FILE [--threads N] [--passes K] [--quiet]\n"
      "  --apply-deltas FILE           send a delta feed, hot-swap\n"
      "  --swap-snapshot PATH          server-local snapshot/manifest path\n"
      "  --stats | --ping | --shutdown\n");
  return 2;
}

/// Sends one request over a fresh connection. The outer StatusOr carries
/// only *transport* failures; a server-side error frame comes back as an
/// OK result whose Response::status is non-OK, so callers can attribute
/// failures correctly (the server's message, not a generic read error).
util::StatusOr<Response> OneShot(const std::string& host, int port,
                                 const Request& request) {
  auto fd = service::wire::DialTcp(host, port);
  if (!fd.ok()) return fd.status();
  auto response = service::wire::RoundTrip(*fd, request);
  ::close(*fd);
  return response;
}

void PrintEstimate(const service::EstimateResponse& estimate,
                   const std::string& dataset) {
  std::printf("%s%s%sepoch %llu (state v%llu), %.1f us\n",
              dataset.empty() ? "" : "dataset ", dataset.c_str(),
              dataset.empty() ? "" : ", ",
              static_cast<unsigned long long>(estimate.epoch),
              static_cast<unsigned long long>(estimate.state_version),
              estimate.total_micros);
  util::TablePrinter table(estimate.has_truth
                               ? std::vector<std::string>{"estimator",
                                                          "estimate",
                                                          "q-error", "us"}
                               : std::vector<std::string>{"estimator",
                                                          "estimate", "us"});
  for (const service::EstimatorResult& r : estimate.results) {
    std::vector<std::string> row{r.name,
                                 r.ok ? util::TablePrinter::Num(r.estimate)
                                      : r.error};
    if (estimate.has_truth) {
      row.push_back(r.ok ? util::TablePrinter::Num(r.qerror) : "-");
    }
    row.push_back(util::TablePrinter::Num(r.micros));
    table.AddRow(row);
  }
  if (estimate.has_truth) {
    table.AddRow({"exact", util::TablePrinter::Num(estimate.truth),
                  estimate.has_truth ? "1" : "-", "-"});
  }
  table.Print(std::cout);
}

int RunWorkload(const std::string& host, int port,
                const std::string& dataset,
                const std::string& workload_file, int threads, int passes,
                bool quiet) {
  auto workload = query::LoadWorkload(workload_file);
  if (!workload.ok()) {
    std::fprintf(stderr, "workload: %s\n",
                 workload.status().ToString().c_str());
    return 1;
  }
  // Request lines travel exactly as saved: "<template> <truth> <pattern>".
  std::vector<std::string> lines;
  lines.reserve(workload->size());
  {
    std::ostringstream text;
    if (!query::WriteWorkloadText(*workload, text).ok()) return 1;
    std::istringstream in(text.str());
    std::string line;
    while (std::getline(in, line)) {
      if (!line.empty() && line[0] != '#') lines.push_back(line);
    }
  }

  struct Accum {
    uint64_t requests = 0;
    uint64_t failures = 0;
    double micros = 0;
    double qerror_sum = 0;
    double qerror_max = 0;
    uint64_t qerror_count = 0;
  };
  std::mutex mutex;
  std::map<std::string, Accum> per_estimator;
  std::map<uint64_t, size_t> per_epoch;
  size_t errors = 0;

  if (threads < 1) threads = 1;
  auto worker = [&](int tid) {
    // This thread's stride-interleaved share per pass, so a dead
    // connection charges every request it can no longer send as an error
    // (the summary must not under-report a truncated sample).
    const size_t share =
        (lines.size() + static_cast<size_t>(threads) - 1 -
         static_cast<size_t>(tid)) /
        static_cast<size_t>(threads);
    auto fd = service::wire::DialTcp(host, port);
    if (!fd.ok()) {
      std::lock_guard<std::mutex> lock(mutex);
      errors += share * static_cast<size_t>(passes);  // whole share lost
      std::fprintf(stderr, "transport error: %s\n",
                   fd.status().ToString().c_str());
      return;
    }
    size_t sent = 0;  ///< requests completed across passes
    for (int pass = 0; pass < passes; ++pass) {
      for (size_t i = static_cast<size_t>(tid); i < lines.size();
           i += static_cast<size_t>(threads)) {
        Request request{MessageType::kEstimate, lines[i], dataset};
        auto response = service::wire::RoundTrip(*fd, request);
        if (!response.ok()) {
          // Transport failure: the connection is dead, so the rest of
          // this thread's share cannot be sent either — charge it all
          // instead of spamming a read error per remaining query.
          std::lock_guard<std::mutex> lock(mutex);
          errors += share * static_cast<size_t>(passes) - sent;
          std::fprintf(stderr, "query %zu transport error: %s\n", i,
                       response.status().ToString().c_str());
          ::close(*fd);
          return;
        }
        ++sent;
        std::lock_guard<std::mutex> lock(mutex);
        if (!response->status.ok()) {
          ++errors;
          std::fprintf(stderr, "query %zu server error: %s\n", i,
                       response->status.ToString().c_str());
          continue;
        }
        const service::EstimateResponse& e = response->estimate;
        ++per_epoch[e.epoch];
        for (const service::EstimatorResult& r : e.results) {
          Accum& accum = per_estimator[r.name];
          ++accum.requests;
          accum.micros += r.micros;
          if (!r.ok) {
            ++accum.failures;
          } else if (e.has_truth) {
            accum.qerror_sum += r.qerror;
            accum.qerror_max = std::max(accum.qerror_max, r.qerror);
            ++accum.qerror_count;
          }
        }
        if (!quiet && pass == 0) {
          std::printf("query %-4zu epoch %llu", i,
                      static_cast<unsigned long long>(e.epoch));
          for (const service::EstimatorResult& r : e.results) {
            if (r.ok) {
              std::printf("  %s=%.4g", r.name.c_str(), r.estimate);
            } else {
              std::printf("  %s=ERR", r.name.c_str());
            }
          }
          std::printf("\n");
        }
      }
    }
    ::close(*fd);
  };
  std::vector<std::thread> pool;
  for (int t = 1; t < threads; ++t) pool.emplace_back(worker, t);
  worker(0);
  for (std::thread& t : pool) t.join();

  std::printf("\n%zu queries x %d passes over %d connections; %zu errors\n",
              lines.size(), passes, threads, errors);
  std::printf("epochs observed:");
  for (const auto& [epoch, count] : per_epoch) {
    std::printf(" %llu(x%zu)", static_cast<unsigned long long>(epoch),
                count);
  }
  std::printf("\n\n");
  util::TablePrinter table(
      {"estimator", "requests", "failures", "mean q-error", "max q-error",
       "mean us"});
  for (const auto& [name, accum] : per_estimator) {
    table.AddRow(
        {name, std::to_string(accum.requests),
         std::to_string(accum.failures),
         accum.qerror_count > 0
             ? util::TablePrinter::Num(accum.qerror_sum /
                                       static_cast<double>(
                                           accum.qerror_count))
             : "-",
         accum.qerror_count > 0 ? util::TablePrinter::Num(accum.qerror_max)
                                : "-",
         accum.requests > 0
             ? util::TablePrinter::Num(
                   accum.micros / static_cast<double>(accum.requests))
             : "-"});
  }
  table.Print(std::cout);
  return errors == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  int port = 0;
  std::string dataset;
  std::string query_text, workload_file, deltas_file, snapshot_path;
  bool stats = false, ping = false, shutdown = false, quiet = false;
  int threads = 1, passes = 1;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](std::string* out) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        return false;
      }
      *out = argv[++i];
      return true;
    };
    std::string value;
    if (arg == "--host") {
      if (!next(&host)) return Usage();
    } else if (arg == "--dataset") {
      if (!next(&dataset)) return Usage();
    } else if (arg == "--port") {
      if (!next(&value)) return Usage();
      port = std::atoi(value.c_str());
    } else if (arg == "--query") {
      if (!next(&query_text)) return Usage();
    } else if (arg == "--workload") {
      if (!next(&workload_file)) return Usage();
    } else if (arg == "--apply-deltas") {
      if (!next(&deltas_file)) return Usage();
    } else if (arg == "--swap-snapshot") {
      if (!next(&snapshot_path)) return Usage();
    } else if (arg == "--threads") {
      if (!next(&value)) return Usage();
      threads = std::atoi(value.c_str());
    } else if (arg == "--passes") {
      if (!next(&value)) return Usage();
      passes = std::atoi(value.c_str());
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--ping") {
      ping = true;
    } else if (arg == "--shutdown") {
      shutdown = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return Usage();
    }
  }
  if (port <= 0) return Usage();

  if (!workload_file.empty()) {
    return RunWorkload(host, port, dataset, workload_file, threads, passes,
                       quiet);
  }

  Request request;
  if (!query_text.empty()) {
    request = {MessageType::kEstimate, query_text, dataset};
  } else if (!deltas_file.empty()) {
    std::ifstream in(deltas_file);
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", deltas_file.c_str());
      return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();
    request = {MessageType::kApplyDeltas, text.str(), dataset};
  } else if (!snapshot_path.empty()) {
    request = {MessageType::kSwapSnapshot, snapshot_path, dataset};
  } else if (stats) {
    request = {MessageType::kStats, "", dataset};
  } else if (ping) {
    // A dataset-qualified ping doubles as a routing probe: the server
    // validates the name without touching the service.
    request = {MessageType::kPing, "", dataset};
  } else if (shutdown) {
    // Shutdown is server-wide; the server rejects a dataset-qualified one.
    request = {MessageType::kShutdown, ""};
  } else {
    return Usage();
  }

  auto response = OneShot(host, port, request);
  if (!response.ok()) {
    std::fprintf(stderr, "transport error: %s\n",
                 response.status().ToString().c_str());
    return 1;
  }
  if (!response->status.ok()) {
    // The server answered with an error frame: its own message is the
    // diagnosis (unknown dataset, admission rejection, bad feed, ...).
    std::fprintf(stderr, "server error: %s\n",
                 response->status.ToString().c_str());
    return 1;
  }
  switch (request.type) {
    case MessageType::kEstimate:
      PrintEstimate(response->estimate, response->dataset);
      break;
    case MessageType::kApplyDeltas:
    case MessageType::kSwapSnapshot: {
      const service::SwapReport& swap = response->swap;
      std::printf(
          "swapped to epoch %llu (state v%llu): %zu ops applied "
          "(+%zu/-%zu edges, %zu labels, %zu entries evicted), %zu log "
          "ops trimmed%s\n",
          static_cast<unsigned long long>(swap.epoch),
          static_cast<unsigned long long>(swap.version), swap.applied_ops,
          swap.maintenance.inserted_edges, swap.maintenance.deleted_edges,
          swap.maintenance.changed_labels,
          swap.maintenance.total_evicted(), swap.trimmed_log_ops,
          swap.snapshot_stale ? " (stale snapshot, deltas replayed)" : "");
      break;
    }
    case MessageType::kStats: {
      const service::ServiceStats& s = response->stats;
      if (!response->dataset.empty()) {
        std::printf("dataset %s\n", response->dataset.c_str());
      }
      std::printf(
          "served %llu, rejected %llu, request errors %llu\n"
          "epoch %llu (state v%llu), %llu swaps, %zu pending delta ops\n"
          "replay log %zu ops (min replayable epoch %llu)\n"
          "in flight %lld (peak %lld), mean latency %.1f us\n",
          static_cast<unsigned long long>(s.served),
          static_cast<unsigned long long>(s.rejected),
          static_cast<unsigned long long>(s.request_errors),
          static_cast<unsigned long long>(s.epoch),
          static_cast<unsigned long long>(s.version),
          static_cast<unsigned long long>(s.swaps), s.pending_delta_ops,
          s.replay_log_ops,
          static_cast<unsigned long long>(s.min_replayable_epoch),
          static_cast<long long>(s.in_flight),
          static_cast<long long>(s.peak_in_flight),
          s.mean_latency_micros);
      for (const auto& e : s.estimators) {
        std::printf("  %-14s %llu requests, %llu failures, %.1f us, mean "
                    "q-error %.3g\n",
                    e.name.c_str(),
                    static_cast<unsigned long long>(e.requests),
                    static_cast<unsigned long long>(e.failures),
                    e.mean_micros, e.mean_qerror);
      }
      break;
    }
    case MessageType::kPing:
    case MessageType::kShutdown:
      std::printf("%s\n", response->text.c_str());
      break;
  }
  return 0;
}
