// cegraph_serve — the cegraph estimation daemon: a long-lived TCP server
// dispatching estimation requests over one or many datasets, with snapshot
// hot-swap and live delta ingestion (no restart, no dropped requests).
//
//   cegraph_serve (--dataset SPEC)... | --graph FILE [--port P]
//                 [--workers N] [--estimators a,b,c] [--snapshot FILE]
//                 [--default-dataset NAME] [--markov-h H]
//                 [--compact-trigger N] [--max-in-flight N]
//                 [--dispatch epoll|threads] [--max-connections N]
//                 [--prewarm SUITE] [--instances N] [--seed S]
//                 [--metrics-port P] [--slow-millis M]
//                 [--slow-log-per-sec X] [--journal FILE]
//                 [--feedback on|off|frozen]
//
// --feedback turns on the learned-feedback loop (docs/learned_feedback.md):
// truth-carrying requests teach per-query-class multiplicative
// corrections that are applied at serve time once a class has enough
// samples. "frozen" applies what was learned (or loaded from a
// snapshot's feedback section) without learning further; the default
// "off" serves bit-identical to a pre-feedback build.
//
// --metrics-port starts a Prometheus text exporter on a side thread
// (`curl http://127.0.0.1:<port>/metrics`; `/healthz` answers with the
// default dataset's epoch/version); 0 picks an ephemeral port. The
// daemon prints `metrics on 127.0.0.1:<port>` so scripts can scrape
// it. Without the flag no exporter runs. --slow-millis M logs requests
// slower than M milliseconds to stderr with their per-stage breakdown
// and request id, rate-limited to --slow-log-per-sec lines per second
// (default 1; <= 0 unlimited — see docs/observability.md).
// CEGRAPH_METRICS=off disables the histogram/trace layer entirely.
//
// --journal FILE appends one JSON object per significant serving event
// (snapshot loads, hot swaps, delta folds, accuracy drift flips,
// overload sheds, slow requests) to FILE — the structured counterpart
// of the human log lines, shared by every dataset and the server
// itself. See docs/observability.md for the schema.
//
// --dispatch selects the connection model: "epoll" (default) multiplexes
// every connection through one event-loop thread and serves requests on
// the fixed worker pool (thousands of idle connections cost fds, not
// threads); "threads" is the legacy thread-per-connection dispatcher kept
// for baseline comparisons. --max-connections caps concurrently open
// epoll connections; the overflow is answered with a retryable
// RESOURCE_EXHAUSTED error frame.
//
// --dataset is repeatable; each SPEC serves one dataset:
//
//   NAME                   the built-in dataset NAME
//   NAME=SOURCE            SOURCE (a built-in dataset name or a graph
//                          file path) served under the routing name NAME
//   NAME[=SOURCE]@SNAPSHOT additionally preload a `cegraph_stats build`
//                          artifact (monolithic snapshot or shard
//                          manifest) into the dataset's first serving
//                          state
//
// Clients route requests with the wire protocol's v2 `dataset` field;
// requests without one (v1 clients included) go to --default-dataset
// (default: the first --dataset). Every dataset gets its own
// EstimationService — own delta queue, own background maintainer, own
// epoch/version line — so hot-swapping or churning one dataset cannot
// perturb another.
//
// --port 0 (the default) picks an ephemeral port; the daemon prints
// `listening on 127.0.0.1:<port>` on stdout (and flushes) so scripts can
// scrape it. --snapshot FILE is the single-dataset legacy spelling of
// @SNAPSHOT and applies to the first dataset. --prewarm generates the
// named workload suite per dataset and warms its statistics caches before
// accepting traffic.
//
// The daemon exits 0 on SIGTERM/SIGINT or on a client's shutdown request,
// draining in-flight connections first. See docs/wire_protocol.md for the
// framing and message types; cegraph_client is the matching client.
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "engine/snapshot.h"
#include "graph/datasets.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "graph/graph_io.h"
#include "query/templates.h"
#include "query/workload.h"
#include "service/catalog.h"
#include "service/server.h"
#include "service/service.h"
#include "util/strings.h"

namespace {

using namespace cegraph;

volatile std::sig_atomic_t g_signal = 0;

void OnSignal(int) { g_signal = 1; }

int Usage() {
  std::fprintf(
      stderr,
      "usage: cegraph_serve (--dataset SPEC)... | --graph FILE [--port P]\n"
      "       [--workers N] [--estimators a,b,c] [--snapshot FILE]\n"
      "       [--default-dataset NAME] [--markov-h H]\n"
      "       [--compact-trigger N] [--max-in-flight N]\n"
      "       [--dispatch epoll|threads] [--max-connections N]\n"
      "       [--prewarm SUITE] [--instances N] [--seed S]\n"
      "       [--metrics-port P] [--slow-millis M]\n"
      "       [--slow-log-per-sec X] [--journal FILE]\n"
      "       [--feedback on|off|frozen]\n"
      "dataset SPEC: NAME | NAME=SOURCE | NAME[=SOURCE]@SNAPSHOT\n"
      "  (SOURCE: a built-in dataset name or a graph file path; '=' and\n"
      "   '@' are reserved separators and cannot appear in the paths)\n"
      "datasets:");
  for (const std::string& name : graph::DatasetNames()) {
    std::fprintf(stderr, " %s", name.c_str());
  }
  std::fprintf(stderr, "\n");
  return 2;
}

/// One parsed --dataset SPEC. '=' and '@' are reserved separators of the
/// SPEC grammar (the first '@' starts the snapshot part), so SOURCE and
/// SNAPSHOT paths containing them are not expressible — a mis-split
/// surfaces as a clear "cannot open <truncated path>" error, and
/// DatasetCatalog rejects names containing '=' outright.
struct ParsedSpec {
  std::string name;
  std::string source;    ///< built-in dataset name or graph file path
  std::string snapshot;  ///< optional initial snapshot / shard manifest
};

ParsedSpec ParseSpec(const std::string& spec) {
  ParsedSpec out;
  std::string head = spec;
  if (const size_t at = head.find('@'); at != std::string::npos) {
    out.snapshot = head.substr(at + 1);
    head = head.substr(0, at);
  }
  if (const size_t eq = head.find('='); eq != std::string::npos) {
    out.name = head.substr(0, eq);
    out.source = head.substr(eq + 1);
  } else {
    out.name = head;
    out.source = head;
  }
  return out;
}

/// SOURCE resolution: a built-in dataset name first, a graph file second.
util::StatusOr<graph::Graph> LoadSource(const std::string& source) {
  auto built_in = graph::MakeDataset(source);
  if (built_in.ok() ||
      built_in.status().code() != util::StatusCode::kNotFound) {
    return built_in;
  }
  return graph::LoadGraph(source);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> dataset_specs;
  std::string graph_file, estimators_csv, legacy_snapshot, prewarm_suite;
  std::string default_dataset, journal_path;
  service::ServerOptions server_options;
  service::ServiceOptions service_options;
  int instances = 2;
  uint64_t seed = 1;
  int metrics_port = -1;  ///< -1 = no exporter; 0 = ephemeral

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](std::string* out) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        return false;
      }
      *out = argv[++i];
      return true;
    };
    std::string value;
    if (arg == "--dataset") {
      if (!next(&value)) return Usage();
      dataset_specs.push_back(value);
    } else if (arg == "--graph") {
      if (!next(&graph_file)) return Usage();
    } else if (arg == "--default-dataset") {
      if (!next(&default_dataset)) return Usage();
    } else if (arg == "--port") {
      if (!next(&value)) return Usage();
      server_options.port = std::atoi(value.c_str());
    } else if (arg == "--workers") {
      if (!next(&value)) return Usage();
      server_options.workers = std::atoi(value.c_str());
    } else if (arg == "--estimators") {
      if (!next(&estimators_csv)) return Usage();
    } else if (arg == "--snapshot") {
      if (!next(&legacy_snapshot)) return Usage();
    } else if (arg == "--markov-h") {
      if (!next(&value)) return Usage();
      service_options.context.markov_h = std::atoi(value.c_str());
    } else if (arg == "--compact-trigger") {
      if (!next(&value)) return Usage();
      service_options.compact_trigger_ops = std::atoi(value.c_str());
    } else if (arg == "--max-in-flight") {
      if (!next(&value)) return Usage();
      service_options.max_in_flight = std::atoi(value.c_str());
    } else if (arg == "--max-connections") {
      if (!next(&value)) return Usage();
      server_options.max_connections = std::atoi(value.c_str());
    } else if (arg == "--metrics-port") {
      if (!next(&value)) return Usage();
      metrics_port = std::atoi(value.c_str());
    } else if (arg == "--slow-millis") {
      if (!next(&value)) return Usage();
      server_options.slow_request_millis = std::atoi(value.c_str());
    } else if (arg == "--slow-log-per-sec") {
      if (!next(&value)) return Usage();
      server_options.slow_log_per_sec = std::atof(value.c_str());
    } else if (arg == "--journal") {
      if (!next(&journal_path)) return Usage();
    } else if (arg == "--feedback") {
      if (!next(&value)) return Usage();
      if (value == "on") {
        service_options.feedback = service::FeedbackMode::kOn;
      } else if (value == "off") {
        service_options.feedback = service::FeedbackMode::kOff;
      } else if (value == "frozen") {
        service_options.feedback = service::FeedbackMode::kFrozen;
      } else {
        std::fprintf(stderr, "--feedback must be on, off or frozen\n");
        return Usage();
      }
    } else if (arg == "--dispatch") {
      if (!next(&value)) return Usage();
      if (value == "epoll") {
        server_options.dispatch = service::ServerOptions::Dispatch::kEventLoop;
      } else if (value == "threads") {
        server_options.dispatch =
            service::ServerOptions::Dispatch::kThreadPerConnection;
      } else {
        std::fprintf(stderr, "--dispatch must be epoll or threads\n");
        return Usage();
      }
    } else if (arg == "--prewarm") {
      if (!next(&prewarm_suite)) return Usage();
    } else if (arg == "--instances") {
      if (!next(&value)) return Usage();
      instances = std::atoi(value.c_str());
    } else if (arg == "--seed") {
      if (!next(&value)) return Usage();
      seed = std::strtoull(value.c_str(), nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return Usage();
    }
  }
  if (dataset_specs.empty() == graph_file.empty()) return Usage();
  if (!estimators_csv.empty()) {
    service_options.estimators = util::SplitCsv(estimators_csv);
  }

  std::vector<ParsedSpec> parsed_specs;
  for (const std::string& spec : dataset_specs) {
    parsed_specs.push_back(ParseSpec(spec));
  }
  if (!graph_file.empty()) {
    // Legacy single-graph spelling, served under the name "default". The
    // path is taken verbatim — it never goes through the SPEC grammar, so
    // '@'/'=' in the file name keep working as they always did.
    parsed_specs.push_back({"default", graph_file, ""});
  }

  std::vector<service::DatasetSpec> specs;
  for (size_t d = 0; d < parsed_specs.size(); ++d) {
    ParsedSpec parsed = parsed_specs[d];
    if (d == 0 && !legacy_snapshot.empty()) {
      if (!parsed.snapshot.empty()) {
        std::fprintf(stderr,
                     "--snapshot conflicts with @SNAPSHOT for dataset %s\n",
                     parsed.name.c_str());
        return Usage();
      }
      parsed.snapshot = legacy_snapshot;
    }
    auto g = LoadSource(parsed.source);
    if (!g.ok()) {
      std::fprintf(stderr, "dataset %s (source %s): %s\n",
                   parsed.name.c_str(), parsed.source.c_str(),
                   g.status().ToString().c_str());
      return 1;
    }
    std::printf("dataset %s (%s): %u vertices, %llu edges, %u labels%s%s\n",
                parsed.name.c_str(), parsed.source.c_str(),
                g->num_vertices(),
                static_cast<unsigned long long>(g->num_edges()),
                g->num_labels(),
                parsed.snapshot.empty() ? "" : ", snapshot ",
                parsed.snapshot.c_str());

    service::DatasetSpec spec;
    spec.name = parsed.name;
    spec.options = service_options;
    spec.options.initial_snapshot = parsed.snapshot;
    if (!prewarm_suite.empty()) {
      auto templates = query::SuiteTemplatesByName(prewarm_suite);
      if (!templates.ok()) {
        std::fprintf(stderr, "prewarm: %s\n",
                     templates.status().ToString().c_str());
        return 1;
      }
      query::WorkloadOptions wl;
      wl.instances_per_template = instances;
      wl.seed = seed;
      auto workload = query::GenerateWorkload(*g, *templates, wl);
      if (!workload.ok()) {
        std::fprintf(stderr, "prewarm %s: %s\n", parsed.name.c_str(),
                     workload.status().ToString().c_str());
        return 1;
      }
      spec.options.prewarm_workload = std::move(*workload);
    }
    spec.graph =
        std::make_shared<const graph::Graph>(std::move(*g));
    specs.push_back(std::move(spec));
  }

  // Remember which dataset loaded which artifact: the startup breakdown
  // below names sections, and specs are consumed by the catalog.
  std::vector<std::pair<std::string, std::string>> snapshot_paths;
  for (const service::DatasetSpec& spec : specs) {
    if (!spec.options.initial_snapshot.empty()) {
      snapshot_paths.emplace_back(spec.name, spec.options.initial_snapshot);
    }
  }

  // The shared event journal, started before the catalog so snapshot-load
  // events from service construction are captured. Declared before the
  // catalog/server locals that borrow it, so it is destroyed (and
  // drained) after them.
  obs::Journal journal;
  if (!journal_path.empty()) {
    if (auto started = journal.Start(journal_path); !started.ok()) {
      std::fprintf(stderr, "journal: %s\n", started.ToString().c_str());
      return 1;
    }
    std::printf("journal to %s\n", journal_path.c_str());
  }
  obs::Journal* journal_ptr = journal_path.empty() ? nullptr : &journal;

  auto catalog = service::DatasetCatalog::Create(std::move(specs),
                                                 default_dataset, journal_ptr);
  if (!catalog.ok()) {
    std::fprintf(stderr, "catalog: %s\n",
                 catalog.status().ToString().c_str());
    return 1;
  }

  // Startup snapshot-load breakdown: how each dataset's artifact was
  // opened (mmap + attach for arena files, read + parse for v1/v2), what
  // each phase cost, and the per-section weight behind it. The same
  // numbers are scraped remotely through the stats frame.
  for (const auto& [name, path] : snapshot_paths) {
    auto resolved = (*catalog)->Resolve(name);
    if (!resolved.ok()) continue;
    const service::ServiceStats stats = (*resolved)->Stats();
    if (!stats.snapshot_load.loaded) continue;
    std::printf("%s: snapshot %s %s: open %.2f ms, %s %.2f ms, epoch %llu",
                name.c_str(), path.c_str(),
                stats.snapshot_load.mapped ? "mapped" : "parsed",
                stats.snapshot_load.map_millis,
                stats.snapshot_load.mapped ? "attach" : "apply",
                stats.snapshot_load.parse_millis,
                static_cast<unsigned long long>(
                    stats.snapshot_load.snapshot_epoch));
    if (stats.snapshot_load.mapped_bytes > 0) {
      std::printf(", %llu bytes mapped",
                  static_cast<unsigned long long>(
                      stats.snapshot_load.mapped_bytes));
    }
    std::printf("\n");
    if (auto info = engine::ReadSnapshotInfo(path); info.ok()) {
      for (const auto& section : info->sections) {
        std::printf("  section %-14s %12llu bytes\n", section.name.c_str(),
                    static_cast<unsigned long long>(section.payload_bytes));
      }
    }
  }

  server_options.journal = journal_ptr;
  service::TcpServer server(**catalog, server_options);
  if (auto started = server.Start(); !started.ok()) {
    std::fprintf(stderr, "server: %s\n", started.ToString().c_str());
    return 1;
  }

  // Optional Prometheus exporter, started after the server so its page
  // already carries every dataset's and the server's collectors.
  obs::MetricsHttpServer metrics_server;
  if (metrics_port >= 0) {
    // /healthz answers with the default dataset's serving line so load
    // balancers and smoke tests get liveness + epoch in one probe.
    metrics_server.SetHealthBody([catalog = catalog->get()] {
      std::string body = "ok\n";
      if (auto resolved = catalog->Resolve(""); resolved.ok()) {
        const service::ServiceStats stats = (*resolved)->Stats();
        body += "dataset " + catalog->default_dataset() + "\n";
        body += "epoch " + std::to_string(stats.epoch) + "\n";
        body += "version " + std::to_string(stats.version) + "\n";
      }
      return body;
    });
    if (auto started = metrics_server.Start("127.0.0.1", metrics_port);
        !started.ok()) {
      std::fprintf(stderr, "metrics: %s\n", started.ToString().c_str());
      return 1;
    }
    std::printf("metrics on 127.0.0.1:%d\n", metrics_server.port());
  }
  std::printf("serving %zu estimators (", service_options.estimators.size());
  for (size_t i = 0; i < service_options.estimators.size(); ++i) {
    std::printf("%s%s", i == 0 ? "" : ",",
                service_options.estimators[i].c_str());
  }
  std::printf(") with %d workers\ndatasets:", server_options.workers);
  for (const std::string& name : (*catalog)->names()) {
    std::printf(" %s", name.c_str());
  }
  std::printf(" (default %s)\nlistening on %s:%d\n",
              (*catalog)->default_dataset().c_str(),
              server_options.host.c_str(), server.port());
  std::fflush(stdout);

  std::signal(SIGTERM, OnSignal);
  std::signal(SIGINT, OnSignal);
  std::signal(SIGPIPE, SIG_IGN);

  // Drain on either exit path: an operator signal or a client's shutdown
  // request. Signal handlers cannot safely poke condition variables, so
  // the main thread polls the flag.
  while (g_signal == 0 && !server.shutdown_requested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::printf("%s — draining\n",
              g_signal != 0 ? "signal received" : "shutdown requested");
  metrics_server.Stop();
  server.Stop();
  if (journal_ptr != nullptr) {
    journal.Stop();
    std::printf("journal: %llu events written, %llu dropped\n",
                static_cast<unsigned long long>(journal.written()),
                static_cast<unsigned long long>(journal.dropped()));
  }

  for (const std::string& name : (*catalog)->names()) {
    auto resolved = (*catalog)->Resolve(name);
    if (!resolved.ok()) continue;
    const service::ServiceStats stats = (*resolved)->Stats();
    std::printf(
        "%s: served %llu requests (%llu rejected, %llu request errors), "
        "%llu hot swaps, final epoch %llu\n",
        name.c_str(), static_cast<unsigned long long>(stats.served),
        static_cast<unsigned long long>(stats.rejected),
        static_cast<unsigned long long>(stats.request_errors),
        static_cast<unsigned long long>(stats.swaps),
        static_cast<unsigned long long>(stats.epoch));
  }
  return 0;
}
