// cegraph_serve — the cegraph estimation daemon: a long-lived TCP server
// dispatching estimation requests over a shared EstimationService, with
// snapshot hot-swap and live delta ingestion (no restart, no dropped
// requests).
//
//   cegraph_serve (--dataset NAME | --graph FILE) [--port P] [--workers N]
//                 [--estimators a,b,c] [--snapshot FILE] [--markov-h H]
//                 [--compact-trigger N] [--max-in-flight N]
//                 [--prewarm SUITE] [--instances N] [--seed S]
//
// --port 0 (the default) picks an ephemeral port; the daemon prints
// `listening on 127.0.0.1:<port>` on stdout (and flushes) so scripts can
// scrape it. --snapshot preloads a `cegraph_stats build` artifact into the
// first serving state (replaying its embedded delta log when it describes
// a later epoch of the graph). --prewarm generates the named workload
// suite and warms the statistics caches before accepting traffic.
//
// The daemon exits 0 on SIGTERM/SIGINT or on a client's shutdown request,
// draining in-flight connections first. See docs/wire_protocol.md for the
// framing and message types; cegraph_client is the matching client.
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "graph/datasets.h"
#include "graph/graph_io.h"
#include "query/templates.h"
#include "query/workload.h"
#include "service/server.h"
#include "service/service.h"
#include "util/strings.h"

namespace {

using namespace cegraph;

volatile std::sig_atomic_t g_signal = 0;

void OnSignal(int) { g_signal = 1; }

int Usage() {
  std::fprintf(
      stderr,
      "usage: cegraph_serve (--dataset NAME | --graph FILE) [--port P]\n"
      "       [--workers N] [--estimators a,b,c] [--snapshot FILE]\n"
      "       [--markov-h H] [--compact-trigger N] [--max-in-flight N]\n"
      "       [--prewarm SUITE] [--instances N] [--seed S]\n"
      "datasets:");
  for (const std::string& name : graph::DatasetNames()) {
    std::fprintf(stderr, " %s", name.c_str());
  }
  std::fprintf(stderr, "\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string dataset, graph_file, estimators_csv, snapshot, prewarm_suite;
  service::ServerOptions server_options;
  service::ServiceOptions service_options;
  int instances = 2;
  uint64_t seed = 1;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](std::string* out) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        return false;
      }
      *out = argv[++i];
      return true;
    };
    std::string value;
    if (arg == "--dataset") {
      if (!next(&dataset)) return Usage();
    } else if (arg == "--graph") {
      if (!next(&graph_file)) return Usage();
    } else if (arg == "--port") {
      if (!next(&value)) return Usage();
      server_options.port = std::atoi(value.c_str());
    } else if (arg == "--workers") {
      if (!next(&value)) return Usage();
      server_options.workers = std::atoi(value.c_str());
    } else if (arg == "--estimators") {
      if (!next(&estimators_csv)) return Usage();
    } else if (arg == "--snapshot") {
      if (!next(&snapshot)) return Usage();
    } else if (arg == "--markov-h") {
      if (!next(&value)) return Usage();
      service_options.context.markov_h = std::atoi(value.c_str());
    } else if (arg == "--compact-trigger") {
      if (!next(&value)) return Usage();
      service_options.compact_trigger_ops = std::atoi(value.c_str());
    } else if (arg == "--max-in-flight") {
      if (!next(&value)) return Usage();
      service_options.max_in_flight = std::atoi(value.c_str());
    } else if (arg == "--prewarm") {
      if (!next(&prewarm_suite)) return Usage();
    } else if (arg == "--instances") {
      if (!next(&value)) return Usage();
      instances = std::atoi(value.c_str());
    } else if (arg == "--seed") {
      if (!next(&value)) return Usage();
      seed = std::strtoull(value.c_str(), nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return Usage();
    }
  }
  if (dataset.empty() == graph_file.empty()) return Usage();

  auto g = dataset.empty() ? graph::LoadGraph(graph_file)
                           : graph::MakeDataset(dataset);
  if (!g.ok()) {
    std::fprintf(stderr, "graph: %s\n", g.status().ToString().c_str());
    return 1;
  }
  const std::string source = dataset.empty() ? graph_file : dataset;
  std::printf("graph %s: %u vertices, %llu edges, %u labels\n",
              source.c_str(), g->num_vertices(),
              static_cast<unsigned long long>(g->num_edges()),
              g->num_labels());

  if (!estimators_csv.empty()) {
    service_options.estimators = util::SplitCsv(estimators_csv);
  }
  service_options.initial_snapshot = snapshot;
  if (!prewarm_suite.empty()) {
    auto templates = query::SuiteTemplatesByName(prewarm_suite);
    if (!templates.ok()) {
      std::fprintf(stderr, "prewarm: %s\n",
                   templates.status().ToString().c_str());
      return 1;
    }
    query::WorkloadOptions wl;
    wl.instances_per_template = instances;
    wl.seed = seed;
    auto workload = query::GenerateWorkload(*g, *templates, wl);
    if (!workload.ok()) {
      std::fprintf(stderr, "prewarm: %s\n",
                   workload.status().ToString().c_str());
      return 1;
    }
    service_options.prewarm_workload = std::move(*workload);
  }

  auto service =
      service::EstimationService::Create(std::move(*g), service_options);
  if (!service.ok()) {
    std::fprintf(stderr, "service: %s\n",
                 service.status().ToString().c_str());
    return 1;
  }

  service::TcpServer server(**service, server_options);
  if (auto started = server.Start(); !started.ok()) {
    std::fprintf(stderr, "server: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("serving %zu estimators (", (*service)->options().estimators.size());
  for (size_t i = 0; i < (*service)->options().estimators.size(); ++i) {
    std::printf("%s%s", i == 0 ? "" : ",",
                (*service)->options().estimators[i].c_str());
  }
  std::printf(") with %d workers\nlistening on %s:%d\n",
              server_options.workers, server_options.host.c_str(),
              server.port());
  std::fflush(stdout);

  std::signal(SIGTERM, OnSignal);
  std::signal(SIGINT, OnSignal);
  std::signal(SIGPIPE, SIG_IGN);

  // Drain on either exit path: an operator signal or a client's shutdown
  // request. Signal handlers cannot safely poke condition variables, so
  // the main thread polls the flag.
  while (g_signal == 0 && !server.shutdown_requested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::printf("%s — draining\n",
              g_signal != 0 ? "signal received" : "shutdown requested");
  server.Stop();

  const service::ServiceStats stats = (*service)->Stats();
  std::printf("served %llu requests (%llu rejected, %llu request errors), "
              "%llu hot swaps, final epoch %llu\n",
              static_cast<unsigned long long>(stats.served),
              static_cast<unsigned long long>(stats.rejected),
              static_cast<unsigned long long>(stats.request_errors),
              static_cast<unsigned long long>(stats.swaps),
              static_cast<unsigned long long>(stats.epoch));
  return 0;
}
