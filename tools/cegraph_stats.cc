// cegraph_stats — build, inspect, verify, refresh and shard persistent
// summary snapshots; generate workload and delta-feed files for the
// serving stack.
//
//   cegraph_stats build    --dataset <name> --out <file> [flags]
//   cegraph_stats inspect  <file> [--dataset <name>]
//   cegraph_stats verify   --dataset <name>
//                          (--snapshot <file> | --manifest <file> | both)
//                          [flags]
//   cegraph_stats refresh  --dataset <name> --snapshot <file>
//                          (--deltas <file> | --random N) [--out <file>]
//   cegraph_stats shard    --dataset <name> --snapshot <file>
//                          --shards N --out <manifest>
//   cegraph_stats workload --dataset <name> --out <file> [--suite S]
//                          [--instances N] [--seed S]
//   cegraph_stats deltas   --dataset <name> --random N --out <file> [--seed S]
//
// `build` materializes a dataset, instantiates a workload (a generated
// suite, or a saved workload file via --workload), prewarns every
// statistics cache the workload can touch (in parallel) and writes the
// versioned snapshot. `inspect` prints the header, fingerprint and
// per-section sizes without needing the graph; with --dataset it also
// loads the snapshot into a live context and prints per-cache residency
// and hit/miss/evict counters. `verify` reloads the snapshot into a fresh
// context and checks that every registry estimator produces bit-identical
// estimates to a cold in-memory run — the correctness contract of the
// snapshot layer. `refresh` loads a snapshot, applies an edge-delta batch
// (a text delta file, or a --random batch for demos) through the
// incremental maintenance path, reports what was carried / exactly updated
// / evicted, and optionally writes the refreshed snapshot. `shard` splits
// a monolithic snapshot into a manifest + per-key-range shard files (see
// docs/sharding.md); `verify` accepts either artifact shape and, given
// both --snapshot and --manifest, checks the sharded union reproduces the
// monolithic estimates bit-identically.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "dynamic/delta_io.h"
#include "engine/engine.h"
#include "engine/snapshot.h"
#include "graph/datasets.h"
#include "harness/workload_runner.h"
#include "query/templates.h"
#include "query/workload.h"
#include "query/workload_io.h"
#include "util/strings.h"

namespace {

using namespace cegraph;

struct CommonFlags {
  std::string dataset;
  std::string suite = "acyclic";
  std::string workload_file;  ///< saved workload instead of a suite
  int instances = 4;
  uint64_t seed = 1;
  int markov_h = 2;
  int threads = 0;
  bool dispersion = false;
};

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  cegraph_stats build --dataset <name> --out <file>\n"
      "      [--suite NAME | --workload FILE] [--instances N] [--seed S]\n"
      "      [--markov-h H] [--threads T] [--dispersion]\n"
      "      [--format v2|arena]\n"
      "  cegraph_stats inspect <file> [--dataset <name>]\n"
      "  cegraph_stats verify --dataset <name>\n"
      "      (--snapshot <file> | --manifest <file> | both)\n"
      "      [--suite ... | --workload FILE] [--instances N] [--seed S]\n"
      "      [--markov-h H] [--threads T] [--estimators name1,name2,...]\n"
      "  cegraph_stats refresh --dataset <name> --snapshot <file>\n"
      "      (--deltas FILE | --random N) [--out <file>] [--seed S]\n"
      "      [--markov-h H]\n"
      "  cegraph_stats shard --dataset <name> --snapshot <file>\n"
      "      --shards N --out <manifest> [--markov-h H] [--format v2|arena]\n"
      "  cegraph_stats workload --dataset <name> --out <file>\n"
      "      [--suite NAME] [--instances N] [--seed S]\n"
      "  cegraph_stats deltas --dataset <name> --random N --out <file>\n"
      "      [--seed S]\n"
      "\ndatasets:");
  for (const std::string& name : graph::DatasetNames()) {
    std::fprintf(stderr, " %s", name.c_str());
  }
  std::fprintf(stderr, "\nsuites:");
  for (const std::string& name : query::SuiteNames()) {
    std::fprintf(stderr, " %s", name.c_str());
  }
  std::fprintf(stderr, "\n");
  return 2;
}

/// Prints one line per statistics cache: residency plus hit/miss/evict
/// counters — how prewarm/load filled it and what invalidation removed.
void PrintCacheStats(const engine::EstimationContext& context) {
  std::printf("%-16s %10s %10s %10s %10s\n", "cache", "entries", "hits",
              "misses", "evicted");
  for (const auto& cs : context.CollectCacheStats()) {
    std::printf("%-16s %10zu %10" PRIu64 " %10" PRIu64 " %10" PRIu64 "\n",
                cs.name.c_str(), cs.entries, cs.counters.hits,
                cs.counters.misses, cs.counters.evictions);
  }
}

/// Loads `path` into `context`, reconstructing post-delta (version 2)
/// snapshots when needed: if the fingerprints mismatch because the
/// context sits at the snapshot's *base* graph, the snapshot's embedded
/// delta log is applied first and the load retried as a fresh load.
/// Prints what happened; false (after printing the error) on failure.
bool LoadIntoContext(engine::EstimationContext& context,
                     const std::string& path) {
  engine::EstimationContext::SnapshotLoadReport report;
  auto loaded = context.LoadSnapshot(path, &report);
  if (loaded.ok()) {
    std::printf("loaded %s (%s)\n", path.c_str(),
                report.stale ? "stale, deltas replayed" : "fresh");
    return true;
  }
  if (loaded.code() == util::StatusCode::kFailedPrecondition) {
    auto log = engine::ReadSnapshotDeltaLog(path);
    if (log.ok() && !log->empty()) {
      auto applied = context.ApplyDeltas(*log);
      if (applied.ok()) {
        auto retried = context.LoadSnapshot(path, &report);
        if (retried.ok()) {
          std::printf("loaded %s (reconstructed: replayed %zu embedded "
                      "deltas onto the base graph)\n",
                      path.c_str(), log->size());
          return true;
        }
      }
    }
  }
  std::fprintf(stderr, "load: %s\n", loaded.ToString().c_str());
  return false;
}

/// Parses `--flag value` / `--flag` style arguments shared by build and
/// verify. Returns false (after printing the offender) on anything it does
/// not recognize; flags in `extra` are forwarded to the caller.
bool ParseFlags(int argc, char** argv, int start, CommonFlags* flags,
                std::vector<std::pair<std::string, std::string>>* extra) {
  for (int i = start; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](std::string* out) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        return false;
      }
      *out = argv[++i];
      return true;
    };
    std::string value;
    if (arg == "--dataset") {
      if (!next(&flags->dataset)) return false;
    } else if (arg == "--suite") {
      if (!next(&flags->suite)) return false;
    } else if (arg == "--workload") {
      if (!next(&flags->workload_file)) return false;
    } else if (arg == "--instances") {
      if (!next(&value)) return false;
      flags->instances = std::atoi(value.c_str());
      if (flags->instances <= 0) {
        std::fprintf(stderr, "--instances must be positive\n");
        return false;
      }
    } else if (arg == "--seed") {
      if (!next(&value)) return false;
      flags->seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (arg == "--markov-h") {
      if (!next(&value)) return false;
      flags->markov_h = std::atoi(value.c_str());
      if (flags->markov_h < 1 || flags->markov_h > 4) {
        std::fprintf(stderr, "--markov-h must be in 1..4\n");
        return false;
      }
    } else if (arg == "--threads") {
      if (!next(&value)) return false;
      flags->threads = std::atoi(value.c_str());
    } else if (arg == "--dispersion") {
      flags->dispersion = true;
    } else if (arg == "--out" || arg == "--snapshot" ||
               arg == "--estimators" || arg == "--deltas" ||
               arg == "--random" || arg == "--manifest" ||
               arg == "--shards" || arg == "--format") {
      if (!next(&value)) return false;
      extra->emplace_back(arg, value);
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

/// The dataset + workload named by `flags`; nullopt after printing the
/// error.
struct Inputs {
  graph::Graph graph;
  std::vector<query::WorkloadQuery> workload;
};

std::optional<Inputs> MakeInputs(const CommonFlags& flags) {
  if (flags.dataset.empty()) {
    std::fprintf(stderr, "--dataset is required\n");
    return std::nullopt;
  }
  auto g = graph::MakeDataset(flags.dataset);
  if (!g.ok()) {
    std::fprintf(stderr, "dataset %s: %s\n", flags.dataset.c_str(),
                 g.status().ToString().c_str());
    return std::nullopt;
  }
  // Saved workload file (production query logs) or a generated suite.
  if (!flags.workload_file.empty()) {
    auto wl = query::LoadWorkload(flags.workload_file);
    if (!wl.ok()) {
      std::fprintf(stderr, "workload %s: %s\n", flags.workload_file.c_str(),
                   wl.status().ToString().c_str());
      return std::nullopt;
    }
    for (const query::WorkloadQuery& wq : *wl) {
      for (const query::QueryEdge& e : wq.query.edges()) {
        if (e.label >= g->num_labels()) {
          std::fprintf(stderr,
                       "workload %s: query label %u out of range for "
                       "dataset %s (%u labels)\n",
                       flags.workload_file.c_str(), e.label,
                       flags.dataset.c_str(), g->num_labels());
          return std::nullopt;
        }
      }
    }
    return Inputs{std::move(*g), std::move(*wl)};
  }
  auto templates = query::SuiteTemplatesByName(flags.suite);
  if (!templates.ok()) {
    std::fprintf(stderr, "%s\n", templates.status().ToString().c_str());
    return std::nullopt;
  }
  query::WorkloadOptions options;
  options.instances_per_template = flags.instances;
  options.seed = flags.seed;
  auto wl = query::GenerateWorkload(*g, *templates, options);
  if (!wl.ok()) {
    std::fprintf(stderr, "workload: %s\n", wl.status().ToString().c_str());
    return std::nullopt;
  }
  return Inputs{std::move(*g), std::move(*wl)};
}

engine::ContextOptions ContextOptionsFor(const CommonFlags& flags) {
  engine::ContextOptions options;
  options.markov_h = flags.markov_h;
  return options;
}

/// Maps a --format value to an on-disk snapshot format; nullopt (after
/// printing the offender) on anything unknown. Empty means v2 — the
/// parse-on-load format stays the default until arena files are the norm.
std::optional<engine::SnapshotFormat> ParseFormat(const std::string& value) {
  if (value.empty() || value == "v2") return engine::SnapshotFormat::kV2;
  if (value == "arena" || value == "v3") {
    return engine::SnapshotFormat::kArena;
  }
  std::fprintf(stderr, "--format must be v2 or arena, got %s\n",
               value.c_str());
  return std::nullopt;
}

int RunBuild(int argc, char** argv) {
  CommonFlags flags;
  std::vector<std::pair<std::string, std::string>> extra;
  if (!ParseFlags(argc, argv, 2, &flags, &extra)) return Usage();
  std::string out_path, format_value;
  for (const auto& [flag, value] : extra) {
    if (flag == "--out") out_path = value;
    if (flag == "--format") format_value = value;
  }
  if (out_path.empty()) {
    std::fprintf(stderr, "build requires --out\n");
    return Usage();
  }
  auto format = ParseFormat(format_value);
  if (!format) return Usage();

  auto inputs = MakeInputs(flags);
  if (!inputs) return 1;
  const graph::Graph& graph = inputs->graph;
  const std::vector<query::WorkloadQuery>& workload = inputs->workload;
  std::printf("dataset %s: %u vertices, %" PRIu64 " edges, %u labels; "
              "%zu workload queries (%s)\n",
              flags.dataset.c_str(), graph.num_vertices(), graph.num_edges(),
              graph.num_labels(), workload.size(),
              flags.workload_file.empty()
                  ? ("suite " + flags.suite).c_str()
                  : ("file " + flags.workload_file).c_str());

  engine::EstimationContext context(graph, ContextOptionsFor(flags));
  engine::PrewarmOptions prewarm;
  prewarm.num_threads = flags.threads;
  prewarm.dispersion = flags.dispersion;
  const engine::PrewarmReport report = context.Prewarm(workload, prewarm);
  std::printf("prewarm: %zu markov patterns, %zu two-joins, %zu base "
              "relations, %zu closing keys, %zu dispersion pairs in %.2fs\n",
              report.markov_patterns, report.two_join_patterns,
              report.base_relations, report.closing_keys,
              report.dispersion_pairs, report.seconds);

  auto save = context.SaveSnapshot(out_path, *format);
  if (!save.ok()) {
    std::fprintf(stderr, "save: %s\n", save.ToString().c_str());
    return 1;
  }
  auto info = engine::ReadSnapshotInfo(out_path);
  if (!info.ok()) {
    std::fprintf(stderr, "re-read: %s\n", info.status().ToString().c_str());
    return 1;
  }
  std::printf("wrote %s (%s): %" PRIu64 " bytes, %zu sections\n",
              out_path.c_str(),
              *format == engine::SnapshotFormat::kArena ? "arena" : "v2",
              info->file_bytes, info->sections.size());
  return 0;
}

int RunInspect(int argc, char** argv) {
  if (argc < 3) return Usage();
  std::string dataset;
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--dataset") == 0 && i + 1 < argc) {
      dataset = argv[++i];
    } else {
      return Usage();
    }
  }
  // Shard manifest: print the shard table, then fall through to the live
  // context block (LoadIntoContext accepts manifests transparently).
  if (engine::IsShardManifest(argv[2])) {
    auto manifest = engine::ReadShardManifest(argv[2]);
    if (!manifest.ok()) {
      std::fprintf(stderr, "%s: %s\n", argv[2],
                   manifest.status().ToString().c_str());
      return 1;
    }
    std::printf("shard manifest %s (manifest v%u, snapshot v%u, %u "
                "shards)\n",
                argv[2], manifest->version, manifest->snapshot_version,
                manifest->num_shards);
    std::printf("fingerprint: %u vertices, %u labels, %" PRIu64
                " edges, edge hash %016" PRIx64 "\n",
                manifest->fingerprint.num_vertices,
                manifest->fingerprint.num_labels,
                manifest->fingerprint.num_edges,
                manifest->fingerprint.edge_hash);
    std::printf("%-24s %12s %16s\n", "file", "bytes", "content hash");
    std::printf("%-24s %12" PRIu64 " %016" PRIx64 "\n",
                manifest->common.file.c_str(), manifest->common.bytes,
                manifest->common.hash);
    for (const auto& shard : manifest->shards) {
      std::printf("%-24s %12" PRIu64 " %016" PRIx64 "\n",
                  shard.file.c_str(), shard.bytes, shard.hash);
    }
    if (!dataset.empty()) {
      auto g = graph::MakeDataset(dataset);
      if (!g.ok()) {
        std::fprintf(stderr, "dataset %s: %s\n", dataset.c_str(),
                     g.status().ToString().c_str());
        return 1;
      }
      engine::EstimationContext context(*g);
      std::printf("\n");
      if (!LoadIntoContext(context, argv[2])) return 1;
      PrintCacheStats(context);
    }
    return 0;
  }

  auto info = engine::ReadSnapshotInfo(argv[2]);
  if (!info.ok()) {
    std::fprintf(stderr, "%s: %s\n", argv[2],
                 info.status().ToString().c_str());
    return 1;
  }
  const bool arena = info->version == engine::kSnapshotVersionArena;
  std::printf("snapshot %s (version %u%s, %" PRIu64 " bytes)\n", argv[2],
              info->version, arena ? " arena" : "", info->file_bytes);
  std::printf("fingerprint: %u vertices, %u labels, %u vertex labels, "
              "%" PRIu64 " edges, edge hash %016" PRIx64 "\n",
              info->fingerprint.num_vertices, info->fingerprint.num_labels,
              info->fingerprint.num_vertex_labels,
              info->fingerprint.num_edges, info->fingerprint.edge_hash);
  std::printf("options: markov h %u, %u summary buckets, materialize cap "
              "%" PRIu64 ", closing-rate sampling %ux%u/%u hops seed "
              "%" PRIu64 "\n",
              info->options.markov_h, info->options.summary_buckets,
              info->options.stats_materialize_cap,
              info->options.cc_walks_per_key,
              info->options.cc_max_attempt_factor,
              info->options.cc_max_mid_hops, info->options.cc_seed);
  if (info->epoch > 0) {
    std::printf("dynamic state: epoch %" PRIu64 ", delta-log hash "
                "%016" PRIx64 " (statistics describe the post-delta graph)\n",
                info->epoch, info->delta_hash);
  }
  // Arena files are served in place, so the byte offset of each mapped
  // section is part of the operational surface — print it alongside the
  // sizes. v2 sections are parsed wholesale; their offsets are noise.
  if (arena) {
    std::printf("%-16s %12s %12s %10s\n", "section", "offset", "bytes",
                "entries");
  } else {
    std::printf("%-16s %12s %10s\n", "section", "bytes", "entries");
  }
  for (const auto& section : info->sections) {
    std::string name = section.name;
    if (section.id == static_cast<uint32_t>(engine::SnapshotSection::kMarkov)) {
      name += "(h=" + std::to_string(section.markov_h) + ")";
    }
    if (arena) {
      std::printf("%-16s %12" PRIu64 " %12" PRIu64 " %10" PRIu64 "\n",
                  name.c_str(), section.offset, section.payload_bytes,
                  section.entries);
    } else {
      std::printf("%-16s %12" PRIu64 " %10" PRIu64 "\n", name.c_str(),
                  section.payload_bytes, section.entries);
    }
  }

  // With a dataset in hand, load the snapshot into a live context and show
  // the per-cache view (residency + hit/miss/evict counters) — the same
  // block `refresh` prints after invalidation.
  if (!dataset.empty()) {
    auto g = graph::MakeDataset(dataset);
    if (!g.ok()) {
      std::fprintf(stderr, "dataset %s: %s\n", dataset.c_str(),
                   g.status().ToString().c_str());
      return 1;
    }
    engine::ContextOptions options;
    options.markov_h = static_cast<int>(
        info->options.markov_h == 0 ? 2 : info->options.markov_h);
    engine::EstimationContext context(*g, options);
    std::printf("\n");
    if (!LoadIntoContext(context, argv[2])) return 1;
    PrintCacheStats(context);
  }
  return 0;
}

int RunRefresh(int argc, char** argv) {
  CommonFlags flags;
  std::vector<std::pair<std::string, std::string>> extra;
  if (!ParseFlags(argc, argv, 2, &flags, &extra)) return Usage();
  std::string snapshot_path, out_path, deltas_path;
  int random_ops = 0;
  for (const auto& [flag, value] : extra) {
    if (flag == "--snapshot") snapshot_path = value;
    if (flag == "--out") out_path = value;
    if (flag == "--deltas") deltas_path = value;
    if (flag == "--random") random_ops = std::atoi(value.c_str());
  }
  if (snapshot_path.empty() || flags.dataset.empty() ||
      (deltas_path.empty() && random_ops <= 0)) {
    std::fprintf(stderr,
                 "refresh requires --dataset, --snapshot and a delta source "
                 "(--deltas FILE or --random N)\n");
    return Usage();
  }

  auto g = graph::MakeDataset(flags.dataset);
  if (!g.ok()) {
    std::fprintf(stderr, "dataset %s: %s\n", flags.dataset.c_str(),
                 g.status().ToString().c_str());
    return 1;
  }

  // Delta batch: a text file from an upstream change feed, or a seeded
  // random mix of deletes (existing edges) and inserts (fresh edges).
  std::vector<dynamic::EdgeDelta> batch;
  if (!deltas_path.empty()) {
    auto loaded = dynamic::LoadDeltaBatch(deltas_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "deltas %s: %s\n", deltas_path.c_str(),
                   loaded.status().ToString().c_str());
      return 1;
    }
    batch = std::move(*loaded);
  } else {
    batch = dynamic::RandomEdgeBatch(*g, static_cast<size_t>(random_ops),
                                     flags.seed);
  }

  engine::EstimationContext context(*g, ContextOptionsFor(flags));
  if (!LoadIntoContext(context, snapshot_path)) return 1;

  auto report = context.ApplyDeltas(batch);
  if (!report.ok()) {
    std::fprintf(stderr, "apply: %s\n", report.status().ToString().c_str());
    return 1;
  }
  const auto fp = context.dynamic_fingerprint();
  std::printf(
      "applied %zu ops (net +%zu/-%zu edges, %zu labels touched) -> epoch "
      "%" PRIu64 ", delta-log hash %016" PRIx64 "\n",
      batch.size(), report->inserted_edges, report->deleted_edges,
      report->changed_labels, fp.epoch, fp.delta_hash);
  std::printf(
      "maintenance: markov %zu carried / %zu exact / %zu evicted; joins "
      "%zu carried / %zu evicted; base relations %zu refreshed; closing "
      "rates %zu carried / %zu evicted; dispersion %zu carried / %zu "
      "evicted; ceg builds %zu evicted%s%s\n",
      report->markov_carried, report->markov_exact_updates,
      report->markov_evicted, report->joins_carried, report->joins_evicted,
      report->base_relations_refreshed, report->closing_carried,
      report->closing_evicted, report->dispersion_carried,
      report->dispersion_evicted, report->ceg_evicted,
      report->char_sets_dropped ? "; char-sets dropped" : "",
      report->summary_updated ? "; summary patched in place" : "");
  PrintCacheStats(context);

  if (!out_path.empty()) {
    auto save = context.SaveSnapshot(out_path);
    if (!save.ok()) {
      std::fprintf(stderr, "save: %s\n", save.ToString().c_str());
      return 1;
    }
    std::printf("wrote refreshed snapshot %s (version 2, epoch %" PRIu64
                ")\n",
                out_path.c_str(), fp.epoch);
  }
  return 0;
}

int RunVerify(int argc, char** argv) {
  CommonFlags flags;
  std::vector<std::pair<std::string, std::string>> extra;
  if (!ParseFlags(argc, argv, 2, &flags, &extra)) return Usage();
  std::string snapshot_path, manifest_path;
  std::string estimators_csv;
  for (const auto& [flag, value] : extra) {
    if (flag == "--snapshot") snapshot_path = value;
    if (flag == "--manifest") manifest_path = value;
    if (flag == "--estimators") estimators_csv = value;
  }
  if (snapshot_path.empty() && manifest_path.empty()) {
    std::fprintf(stderr, "verify requires --snapshot and/or --manifest\n");
    return Usage();
  }

  auto inputs = MakeInputs(flags);
  if (!inputs) return 1;
  const graph::Graph& graph = inputs->graph;
  const std::vector<query::WorkloadQuery>& workload = inputs->workload;

  // Estimator list: explicit CSV, or every registered exact name.
  std::vector<std::string> names =
      estimators_csv.empty()
          ? engine::EstimatorRegistry::Default().RegisteredNames()
          : util::SplitCsv(estimators_csv);

  // Reference run: with both artifacts given, the monolithic snapshot is
  // the reference and the sharded union the candidate (the sharding
  // correctness contract: shard -> load-union -> estimate must be
  // bit-identical to the monolithic load). With one artifact, the
  // reference is a cold in-memory build.
  const bool shard_vs_mono =
      !snapshot_path.empty() && !manifest_path.empty();
  const std::string candidate_path =
      manifest_path.empty() ? snapshot_path : manifest_path;
  engine::EstimationEngine reference(graph, ContextOptionsFor(flags));
  if (shard_vs_mono) {
    auto load = reference.context().LoadSnapshot(snapshot_path);
    if (!load.ok()) {
      std::fprintf(stderr, "load %s: %s\n", snapshot_path.c_str(),
                   load.ToString().c_str());
      return 1;
    }
  }
  engine::EstimationEngine warm(graph, ContextOptionsFor(flags));
  auto load = warm.context().LoadSnapshot(candidate_path);
  if (!load.ok()) {
    std::fprintf(stderr, "load %s: %s\n", candidate_path.c_str(),
                 load.ToString().c_str());
    return 1;
  }

  size_t mismatches = 0;
  size_t compared = 0;
  for (const std::string& name : names) {
    auto ref_est = reference.Estimator(name);
    auto warm_est = warm.Estimator(name);
    if (!ref_est.ok() || !warm_est.ok()) {
      std::fprintf(stderr, "estimator %s: %s\n", name.c_str(),
                   (!ref_est.ok() ? ref_est.status() : warm_est.status())
                       .ToString()
                       .c_str());
      return 1;
    }
    for (size_t qi = 0; qi < workload.size(); ++qi) {
      auto a = (*ref_est)->Estimate(workload[qi].query);
      auto b = (*warm_est)->Estimate(workload[qi].query);
      ++compared;
      const bool both_fail = !a.ok() && !b.ok();
      const bool equal = a.ok() && b.ok() && *a == *b;  // bit-identical
      if (!(both_fail || equal)) {
        ++mismatches;
        std::fprintf(stderr,
                     "MISMATCH %s query %zu: %s=%s warm=%s\n", name.c_str(),
                     qi, shard_vs_mono ? "monolithic" : "cold",
                     a.ok() ? std::to_string(*a).c_str() : "error",
                     b.ok() ? std::to_string(*b).c_str() : "error");
      }
    }
  }
  std::printf("verified %zu estimator×query pairs: %s vs %s: %zu "
              "mismatches\n",
              compared, candidate_path.c_str(),
              shard_vs_mono ? snapshot_path.c_str() : "cold build",
              mismatches);
  std::printf("\nwarm-context caches after verification:\n");
  PrintCacheStats(warm.context());
  return mismatches == 0 ? 0 : 1;
}

int RunShard(int argc, char** argv) {
  CommonFlags flags;
  std::vector<std::pair<std::string, std::string>> extra;
  if (!ParseFlags(argc, argv, 2, &flags, &extra)) return Usage();
  std::string snapshot_path, out_path, format_value;
  int num_shards = 0;
  for (const auto& [flag, value] : extra) {
    if (flag == "--snapshot") snapshot_path = value;
    if (flag == "--out") out_path = value;
    if (flag == "--shards") num_shards = std::atoi(value.c_str());
    if (flag == "--format") format_value = value;
  }
  if (snapshot_path.empty() || out_path.empty() || flags.dataset.empty() ||
      num_shards < 1) {
    std::fprintf(stderr,
                 "shard requires --dataset, --snapshot, --shards N (>= 1) "
                 "and --out MANIFEST\n");
    return Usage();
  }
  auto format = ParseFormat(format_value);
  if (!format) return Usage();

  auto g = graph::MakeDataset(flags.dataset);
  if (!g.ok()) {
    std::fprintf(stderr, "dataset %s: %s\n", flags.dataset.c_str(),
                 g.status().ToString().c_str());
    return 1;
  }
  // Loading a monolithic snapshot into a fresh context is lossless for
  // every keyed cache, so re-exporting with a shard filter partitions
  // exactly the entries the snapshot carried.
  engine::EstimationContext context(*g, ContextOptionsFor(flags));
  if (!LoadIntoContext(context, snapshot_path)) return 1;
  auto saved = context.SaveSnapshotShards(
      out_path, static_cast<uint32_t>(num_shards), *format);
  if (!saved.ok()) {
    std::fprintf(stderr, "shard: %s\n", saved.ToString().c_str());
    return 1;
  }
  auto manifest = engine::ReadShardManifest(out_path);
  if (!manifest.ok()) {
    std::fprintf(stderr, "re-read: %s\n",
                 manifest.status().ToString().c_str());
    return 1;
  }
  std::printf("wrote %s: %u shards + common\n", out_path.c_str(),
              manifest->num_shards);
  std::printf("  %-24s %12" PRIu64 " bytes\n",
              manifest->common.file.c_str(), manifest->common.bytes);
  for (const auto& shard : manifest->shards) {
    std::printf("  %-24s %12" PRIu64 " bytes\n", shard.file.c_str(),
                shard.bytes);
  }
  return 0;
}

// Writes the generated (or file-loaded) workload to a text file — the
// input format of `cegraph_estimate --workload`, `cegraph_client
// --workload` and the `--workload` modes of build/verify, with ground
// truth baked in so it is computed exactly once.
int RunWorkloadGen(int argc, char** argv) {
  CommonFlags flags;
  std::vector<std::pair<std::string, std::string>> extra;
  if (!ParseFlags(argc, argv, 2, &flags, &extra)) return Usage();
  std::string out_path;
  for (const auto& [flag, value] : extra) {
    if (flag == "--out") out_path = value;
  }
  if (out_path.empty()) {
    std::fprintf(stderr, "workload requires --out\n");
    return Usage();
  }
  auto inputs = MakeInputs(flags);
  if (!inputs) return 1;
  auto saved = query::SaveWorkload(inputs->workload, out_path);
  if (!saved.ok()) {
    std::fprintf(stderr, "save: %s\n", saved.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu queries (suite %s on %s) to %s\n",
              inputs->workload.size(), flags.suite.c_str(),
              flags.dataset.c_str(), out_path.c_str());
  return 0;
}

// Writes a seeded random delta feed (the mixed churn RandomEdgeBatch
// produces) in the delta text format — the input of `cegraph_stats
// refresh --deltas` and `cegraph_client --apply-deltas`.
int RunDeltasGen(int argc, char** argv) {
  CommonFlags flags;
  std::vector<std::pair<std::string, std::string>> extra;
  if (!ParseFlags(argc, argv, 2, &flags, &extra)) return Usage();
  std::string out_path;
  int random_ops = 0;
  for (const auto& [flag, value] : extra) {
    if (flag == "--out") out_path = value;
    if (flag == "--random") random_ops = std::atoi(value.c_str());
  }
  if (out_path.empty() || flags.dataset.empty() || random_ops <= 0) {
    std::fprintf(stderr, "deltas requires --dataset, --random N and --out\n");
    return Usage();
  }
  auto g = graph::MakeDataset(flags.dataset);
  if (!g.ok()) {
    std::fprintf(stderr, "dataset %s: %s\n", flags.dataset.c_str(),
                 g.status().ToString().c_str());
    return 1;
  }
  const auto batch = dynamic::RandomEdgeBatch(
      *g, static_cast<size_t>(random_ops), flags.seed);
  auto saved = dynamic::SaveDeltaBatch(batch, out_path);
  if (!saved.ok()) {
    std::fprintf(stderr, "save: %s\n", saved.ToString().c_str());
    return 1;
  }
  std::printf("wrote %zu delta ops (seed %" PRIu64 ") for %s to %s\n",
              batch.size(), flags.seed, flags.dataset.c_str(),
              out_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  if (command == "build") return RunBuild(argc, argv);
  if (command == "inspect") return RunInspect(argc, argv);
  if (command == "verify") return RunVerify(argc, argv);
  if (command == "refresh") return RunRefresh(argc, argv);
  if (command == "shard") return RunShard(argc, argv);
  if (command == "workload") return RunWorkloadGen(argc, argv);
  if (command == "deltas") return RunDeltasGen(argc, argv);
  return Usage();
}
