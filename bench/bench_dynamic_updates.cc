// bench_dynamic_updates — update throughput and snapshot freshness of the
// dynamic graph layer.
//
// Two questions, both against a prewarmed estimation context:
//
//  1. After a delta batch of B edges, is incremental maintenance
//     (EstimationContext::ApplyDeltas: compaction + entry migration with
//     targeted eviction) faster than rebuilding the statistics from
//     scratch (Prewarm on a fresh context over the compacted graph)? The
//     acceptance bar is >= 10x for small batches (<= 1% of edges).
//
//  2. Is loading a *stale* snapshot (taken before the deltas) and
//     replaying the delta log faster than a cold prewarm of the post-delta
//     graph?
//
// Usage: bench_dynamic_updates [instances_per_template] [dataset]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "dynamic/delta_graph.h"
#include "dynamic/delta_io.h"
#include "util/table_printer.h"

namespace {

using namespace cegraph;

double Seconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const int instances = bench::InstancesFromArgs(argc, argv, 3);
  const std::string dataset = argc > 2 ? argv[2] : "epinions_like";

  auto data = bench::MakeDatasetWorkload(dataset, "acyclic", instances, 1);
  const graph::Graph& g = data.graph;
  std::printf("dataset %s: %u vertices, %llu edges, %u labels; %zu workload "
              "queries\n\n",
              dataset.c_str(), g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()), g.num_labels(),
              data.workload.size());

  util::TablePrinter table({"delta", "ops", "incremental (s)", "rebuild (s)",
                            "speedup", "evicted", "carried"});
  bool small_batch_pass = false;
  for (const double frac : {0.001, 0.01, 0.05}) {
    const size_t ops =
        std::max<size_t>(2, static_cast<size_t>(frac * g.num_edges()));
    const auto batch = dynamic::RandomEdgeBatch(g, ops, 42);

    // Incremental: prewarmed context absorbs the batch.
    engine::EstimationContext incremental(g);
    incremental.Prewarm(data.workload);
    auto t0 = std::chrono::steady_clock::now();
    auto report = incremental.ApplyDeltas(batch);
    const double t_incremental = Seconds(t0);
    if (!report.ok()) {
      std::fprintf(stderr, "apply: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }

    // Full rebuild: cold prewarm over the compacted graph.
    dynamic::DeltaGraph overlay(g);
    if (auto applied = overlay.Apply(batch); !applied.ok()) {
      std::fprintf(stderr, "overlay: %s\n", applied.ToString().c_str());
      return 1;
    }
    auto compacted = overlay.Compact();
    if (!compacted.ok()) {
      std::fprintf(stderr, "compact: %s\n",
                   compacted.status().ToString().c_str());
      return 1;
    }
    engine::EstimationContext rebuild(*compacted);
    t0 = std::chrono::steady_clock::now();
    rebuild.Prewarm(data.workload);
    const double t_rebuild = Seconds(t0);

    const double speedup = t_incremental > 0 ? t_rebuild / t_incremental : 0;
    if (frac <= 0.01 && speedup >= 10.0) small_batch_pass = true;
    table.AddRow({util::TablePrinter::Num(frac * 100) + "%",
                  std::to_string(ops),
                  util::TablePrinter::Num(t_incremental),
                  util::TablePrinter::Num(t_rebuild),
                  util::TablePrinter::Num(speedup),
                  std::to_string(report->total_evicted()),
                  std::to_string(report->markov_carried +
                                 report->joins_carried +
                                 report->closing_carried)});
  }
  table.Print(std::cout);
  std::printf("\n[%s] incremental maintenance >= 10x faster than full "
              "rebuild for a batch <= 1%% of edges\n",
              small_batch_pass ? "PASS" : "FAIL");

  // Snapshot freshness: stale load + delta replay vs cold prewarm.
  const std::string snap_path =
      (std::filesystem::temp_directory_path() / "bench_dynamic_updates.snap")
          .string();
  {
    engine::EstimationContext base(g);
    base.Prewarm(data.workload);
    if (auto saved = base.SaveSnapshot(snap_path); !saved.ok()) {
      std::fprintf(stderr, "save: %s\n", saved.ToString().c_str());
      return 1;
    }
  }
  const auto batch =
      dynamic::RandomEdgeBatch(g, std::max<size_t>(2, g.num_edges() / 100), 43);

  engine::EstimationContext drifted(g);
  if (auto applied = drifted.ApplyDeltas(batch); !applied.ok()) {
    std::fprintf(stderr, "apply: %s\n", applied.status().ToString().c_str());
    return 1;
  }
  engine::EstimationContext::SnapshotLoadReport load_report;
  auto t0 = std::chrono::steady_clock::now();
  if (auto loaded = drifted.LoadSnapshot(snap_path, &load_report);
      !loaded.ok()) {
    std::fprintf(stderr, "stale load: %s\n", loaded.ToString().c_str());
    return 1;
  }
  const double t_stale = Seconds(t0);

  dynamic::DeltaGraph overlay(g);
  (void)overlay.Apply(batch);
  auto compacted = overlay.Compact();
  engine::EstimationContext cold(*compacted);
  t0 = std::chrono::steady_clock::now();
  cold.Prewarm(data.workload);
  const double t_cold = Seconds(t0);

  std::printf("\nstale snapshot load + replay of %zu deltas: %.4fs "
              "(%zu entries evicted)\ncold prewarm of the post-delta graph: "
              "%.4fs\n[%s] stale-snapshot start beats cold build (%.1fx)\n",
              load_report.replayed_deltas, t_stale,
              load_report.evicted_entries, t_cold,
              t_stale < t_cold ? "PASS" : "FAIL",
              t_stale > 0 ? t_cold / t_stale : 0);
  std::remove(snap_path.c_str());
  return small_batch_pass && t_stale < t_cold ? 0 : 1;
}
