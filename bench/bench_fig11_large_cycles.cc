// Reproduces Figure 11: the 9 optimistic estimators plus P* on CEG_O *and*
// CEG_OCR, restricted to queries containing chordless cycles of 4+ edges
// (h = 3, §6.2.2). Expected shape: CEG_O overestimates (min-aggr is the
// best CEG_O heuristic); CEG_OCR restores the optimistic regime, where
// max-aggr wins and beats CEG_O's best under its best heuristic.
#include <iostream>

#include "bench_common.h"
#include "engine/engine.h"
#include "harness/experiment.h"

int main(int argc, char** argv) {
  using namespace cegraph;
  const int instances = bench::InstancesFromArgs(argc, argv, 10);

  struct Panel {
    const char* dataset;
    const char* suite;
  };
  const Panel panels[] = {
      {"dblp_like", "cyclic"},
      {"watdiv_like", "cyclic"},
      {"hetionet_like", "cyclic"},
      {"epinions_like", "cyclic"},
      {"yago_like", "gcare-cyclic"},
  };

  std::cout << "Figure 11: optimistic estimators on CEG_O and CEG_OCR, "
               "cycles with 4+ edges (h=3)\n\n";
  for (const Panel& panel : panels) {
    auto dw = bench::MakeDatasetWorkload(panel.dataset, panel.suite,
                                         instances, 0xF11);
    auto large = query::FilterLargeCycles(dw.workload);
    if (large.empty()) {
      std::cout << "== " << panel.dataset << ": no large-cycle queries ==\n\n";
      continue;
    }
    engine::ContextOptions options;
    options.markov_h = 3;
    engine::EstimationEngine engine(dw.graph, options);
    bench::MaybeLoadSnapshot(engine, panel.dataset);
    auto ceg_o =
        bench::RunOptimisticWithEngine(engine, OptimisticCeg::kCegO, large);
    harness::PrintSuiteResult(
        std::cout, std::string(panel.dataset) + " / CEG_O", ceg_o);

    auto ceg_ocr =
        bench::RunOptimisticWithEngine(engine, OptimisticCeg::kCegOcr, large);
    harness::PrintSuiteResult(
        std::cout, std::string(panel.dataset) + " / CEG_OCR", ceg_ocr);
  }
  return 0;
}
