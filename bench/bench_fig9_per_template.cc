// Supplementary to Figure 9 ("our charts in which we evaluate the 9
// estimators on each query template can be found in our github repo"):
// the per-template breakdown of the acyclic experiment on one dataset,
// verifying the paper's claim that the aggregate conclusions hold for
// every individual template.
#include <iostream>
#include <cmath>
#include <map>

#include "bench_common.h"
#include "engine/engine.h"
#include "harness/experiment.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  using namespace cegraph;
  const int instances = bench::InstancesFromArgs(argc, argv, 10);

  auto dw = bench::MakeDatasetWorkload("hetionet_like", "acyclic",
                                       instances, 0xF19);
  engine::ContextOptions options;
  options.markov_h = 3;
  engine::EstimationEngine engine(dw.graph, options);
  bench::MaybeLoadSnapshot(engine, "hetionet_like");

  // Group queries by template.
  std::map<std::string, std::vector<query::WorkloadQuery>> by_template;
  for (const auto& wq : dw.workload) {
    by_template[wq.template_name].push_back(wq);
  }

  std::cout << "Figure 9 per-template breakdown (hetionet_like, h=3): "
               "median signed log10 q-error per estimator\n\n";
  util::TablePrinter table({"template", "n", "mhop-min", "mhop-avg",
                            "mhop-max", "allh-min", "allh-avg", "allh-max",
                            "P*"});
  int max_wins = 0, total = 0;
  for (const auto& [name, queries] : by_template) {
    auto result =
        bench::RunOptimisticWithEngine(engine, OptimisticCeg::kCegO, queries);
    auto median = [&](size_t i) {
      return util::TablePrinter::Num(
          result.reports[i].signed_log_qerror.median);
    };
    // Report order: indices 0..2 = max-hop {min,avg,max}, 6..8 = all-hops,
    // 9 = P*.
    table.AddRow({name, std::to_string(queries.size()), median(0),
                  median(1), median(2), median(6), median(7), median(8),
                  median(9)});
    ++total;
    // Does max-aggr beat min-aggr on this template (per the paper)?
    if (std::fabs(result.reports[2].signed_log_qerror.median) <=
        std::fabs(result.reports[0].signed_log_qerror.median) + 1e-12) {
      ++max_wins;
    }
  }
  table.Print(std::cout);
  std::cout << "\nmax-aggr at least as accurate as min-aggr on " << max_wins
            << "/" << total << " templates\n";
  return 0;
}
