// Reproduces Table 2: dataset descriptions (|V|, |E|, |edge labels|) for
// the six stand-in datasets, alongside the paper dataset each one mirrors.
#include <iostream>

#include "graph/datasets.h"
#include "util/table_printer.h"

int main() {
  using namespace cegraph;
  std::cout << "Table 2: dataset descriptions (stand-ins, DESIGN.md §3)\n\n";
  util::TablePrinter table(
      {"dataset", "domain", "|V|", "|E|", "|E. labels|", "paper counterpart"});
  for (const std::string& name : graph::DatasetNames()) {
    auto info = graph::GetDatasetInfo(name);
    auto g = graph::MakeDataset(name);
    if (!info.ok() || !g.ok()) return 1;
    table.AddRow({name, info->domain, std::to_string(g->num_vertices()),
                  std::to_string(g->num_edges()),
                  std::to_string(g->num_labels()), info->paper_counterpart});
  }
  table.Print(std::cout);
  return 0;
}
