// Reproduces Figure 13: summary-based estimator comparison — max-hop-max
// (on CEG_O, h = 2) vs MOLP (with 2-join statistics, a strict superset of
// the optimistic statistics) vs Characteristic Sets vs SumRDF (§6.4).
// Expected shape: max-hop-max wins by orders of magnitude in mean; MOLP
// never underestimates but is loose; CS and SumRDF underestimate nearly
// always, CS worst of all.
#include <iostream>

#include "bench_common.h"
#include "estimators/characteristic_sets.h"
#include "estimators/optimistic.h"
#include "estimators/pessimistic.h"
#include "estimators/sumrdf.h"
#include "harness/experiment.h"
#include "stats/char_sets.h"
#include "stats/markov_table.h"
#include "stats/summary_graph.h"

int main(int argc, char** argv) {
  using namespace cegraph;
  const int instances = bench::InstancesFromArgs(argc, argv, 8);

  struct Panel {
    const char* dataset;
    const char* suite;
  };
  const Panel panels[] = {{"imdb_like", "job"},
                          {"hetionet_like", "acyclic"},
                          {"watdiv_like", "acyclic"},
                          {"epinions_like", "acyclic"},
                          {"yago_like", "gcare-acyclic"}};

  std::cout << "Figure 13: summary-based estimator comparison (h=2; MOLP "
               "uses 2-join stats)\n\n";
  for (const Panel& panel : panels) {
    auto dw = bench::MakeDatasetWorkload(panel.dataset, panel.suite,
                                         instances, 0xF13);
    auto acyclic = query::FilterAcyclic(dw.workload);

    stats::MarkovTable markov(dw.graph, 2);
    OptimisticEstimator mhm(markov, OptimisticSpec{});
    stats::StatsCatalog catalog(dw.graph);
    MolpEstimator molp(catalog, /*include_two_joins=*/true);
    stats::CharacteristicSets cs(dw.graph);
    CharacteristicSetsEstimator cs_est(cs);
    stats::SummaryGraph summary(dw.graph, 64);
    SumRdfEstimator sumrdf(summary, /*step_budget=*/20'000'000);

    auto result = harness::RunEstimatorSuite(
        {&mhm, &molp, &cs_est, &sumrdf}, acyclic,
        /*drop_on_any_failure=*/true);
    harness::PrintSuiteResult(
        std::cout, std::string(panel.dataset) + " / " + panel.suite, result);
  }
  return 0;
}
