// Reproduces Figure 13: summary-based estimator comparison — max-hop-max
// (on CEG_O, h = 2) vs MOLP (with 2-join statistics, a strict superset of
// the optimistic statistics) vs Characteristic Sets vs SumRDF (§6.4).
// Expected shape: max-hop-max wins by orders of magnitude in mean; MOLP
// never underestimates but is loose; CS and SumRDF underestimate nearly
// always, CS worst of all.
#include <iostream>

#include "bench_common.h"
#include "engine/engine.h"
#include "harness/experiment.h"

int main(int argc, char** argv) {
  using namespace cegraph;
  const int instances = bench::InstancesFromArgs(argc, argv, 8);

  struct Panel {
    const char* dataset;
    const char* suite;
  };
  const Panel panels[] = {{"imdb_like", "job"},
                          {"hetionet_like", "acyclic"},
                          {"watdiv_like", "acyclic"},
                          {"epinions_like", "acyclic"},
                          {"yago_like", "gcare-acyclic"}};

  std::cout << "Figure 13: summary-based estimator comparison (h=2; MOLP "
               "uses 2-join stats)\n\n";
  for (const Panel& panel : panels) {
    auto dw = bench::MakeDatasetWorkload(panel.dataset, panel.suite,
                                         instances, 0xF13);
    auto acyclic = query::FilterAcyclic(dw.workload);

    engine::ContextOptions options;
    options.sumrdf_step_budget = 20'000'000;
    engine::EstimationEngine engine(dw.graph, options);
    bench::MaybeLoadSnapshot(engine, panel.dataset);
    auto result = bench::RunNamedSuite(
        engine, {"max-hop-max", "molp+2j", "cs", "sumrdf"}, acyclic,
        /*drop_on_any_failure=*/true);
    harness::PrintSuiteResult(
        std::cout, std::string(panel.dataset) + " / " + panel.suite, result);
  }
  return 0;
}
