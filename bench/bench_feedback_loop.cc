// bench_feedback_loop — the learned-feedback closed-loop acceptance gate.
//
// Replays one truth-carrying workload through an EstimationService with
// `--feedback on` semantics (service::FeedbackMode::kOn): pass 1 serves
// raw and seeds the per-class correction learner, two more passes push
// every class past the confidence gate, and the final pass serves
// corrected estimates. The gate: the final pass's median q-error (over
// every usable (estimator, query) sample) must not exceed pass 1's, and
// must strictly improve whenever pass 1 left real room (median > 1.1) —
// replaying the same queries, the per-class median-ratio correction can
// only move estimates toward the observed truths.
//
// Also reported, ungated: per-estimator pre/post medians, the learner's
// class census, and the serve-time overhead of the correction lookup
// (requests/sec with feedback on vs off on the same warmed service
// shape) — the loop is supposed to be accuracy for ~free, not a tax.
//
// Usage: bench_feedback_loop [instances_per_template] [dataset]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "harness/qerror.h"
#include "service/request.h"
#include "service/service.h"

namespace {

using namespace cegraph;

double Median(std::vector<double> v) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

service::EstimateRequest MakeRequest(const query::WorkloadQuery& wq) {
  service::EstimateRequest request;
  request.query = wq.query;
  request.template_name = wq.template_name;
  request.pattern = wq.template_name;
  if (wq.true_cardinality > 0) request.truth = wq.true_cardinality;
  return request;
}

/// One full pass; returns the usable q-errors per estimator name.
std::map<std::string, std::vector<double>> RunPass(
    const service::EstimationService& service,
    const std::vector<service::EstimateRequest>& requests) {
  std::map<std::string, std::vector<double>> qerrors;
  for (const service::EstimateRequest& request : requests) {
    auto response = service.Estimate(request);
    if (!response.ok()) continue;
    for (const service::EstimatorResult& r : response->results) {
      if (!r.ok || !harness::UsableQError(r.qerror)) continue;
      qerrors[r.name].push_back(r.qerror);
    }
  }
  return qerrors;
}

double Throughput(const service::EstimationService& service,
                  const std::vector<service::EstimateRequest>& requests,
                  int repeats) {
  const auto t0 = std::chrono::steady_clock::now();
  size_t served = 0;
  for (int rep = 0; rep < repeats; ++rep) {
    for (const service::EstimateRequest& request : requests) {
      if (service.Estimate(request).ok()) ++served;
    }
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return seconds > 0 ? static_cast<double>(served) / seconds : 0;
}

}  // namespace

int main(int argc, char** argv) {
  const int instances = argc > 1 ? std::atoi(argv[1]) : 4;
  const std::string dataset = argc > 2 ? argv[2] : "epinions_like";

  auto dw = bench::MakeDatasetWorkload(dataset, "acyclic", instances,
                                       /*seed=*/17);
  std::vector<service::EstimateRequest> requests;
  for (const query::WorkloadQuery& wq : dw.workload) {
    if (wq.true_cardinality > 0) requests.push_back(MakeRequest(wq));
  }
  if (requests.empty()) {
    std::fprintf(stderr, "no truth-carrying queries in the workload\n");
    return 1;
  }
  std::printf("bench_feedback_loop: %s, %zu truth-carrying queries\n",
              dataset.c_str(), requests.size());

  const auto shared_graph =
      std::make_shared<const graph::Graph>(std::move(dw.graph));
  service::ServiceOptions options;
  options.compact_trigger_ops = 0;
  options.feedback = service::FeedbackMode::kOn;
  options.feedback_options.min_samples = 3;
  auto service = service::EstimationService::Create(shared_graph, options);
  if (!service.ok()) {
    std::fprintf(stderr, "%s\n", service.status().ToString().c_str());
    return 1;
  }

  // Pass 1 serves raw (no class has support) and seeds the learner; two
  // more passes cross the min_samples=3 gate for every class.
  const auto pre = RunPass(**service, requests);
  RunPass(**service, requests);
  RunPass(**service, requests);
  const auto post = RunPass(**service, requests);

  std::vector<double> pre_all, post_all;
  std::printf("%-16s %12s %12s\n", "estimator", "pre p50", "post p50");
  for (const auto& [name, values] : pre) {
    const auto it = post.find(name);
    const double pre_median = Median(values);
    const double post_median =
        it != post.end() ? Median(it->second) : pre_median;
    std::printf("%-16s %12.4g %12.4g\n", name.c_str(), pre_median,
                post_median);
    pre_all.insert(pre_all.end(), values.begin(), values.end());
    if (it != post.end()) {
      post_all.insert(post_all.end(), it->second.begin(), it->second.end());
    }
  }
  const service::ServiceStats stats = (*service)->Stats(true);
  std::printf("learner: %llu classes (%llu active), %llu corrections "
              "applied\n",
              static_cast<unsigned long long>(stats.feedback_classes),
              static_cast<unsigned long long>(stats.feedback_active),
              static_cast<unsigned long long>(stats.corrections_applied));

  const double pre_median = Median(pre_all);
  const double post_median = Median(post_all);
  const bool improved = post_median <= pre_median + 1e-9 &&
                        (pre_median <= 1.1 || post_median < pre_median);
  std::printf("closed loop: median q-error %.4g -> %.4g  [%s]\n", pre_median,
              post_median, improved ? "PASS" : "FAIL");

  // Overhead readout (ungated): the same requests, truth stripped so no
  // learning happens mid-measurement, served with corrections active vs
  // a feedback-off service.
  std::vector<service::EstimateRequest> no_truth = requests;
  for (auto& request : no_truth) request.truth.reset();
  const double on_rps = Throughput(**service, no_truth, 2);
  service::ServiceOptions off_options = options;
  off_options.feedback = service::FeedbackMode::kOff;
  auto off_service =
      service::EstimationService::Create(shared_graph, off_options);
  if (off_service.ok()) {
    // Warm the off service's lazy statistics before timing.
    RunPass(**off_service, no_truth);
    const double off_rps = Throughput(**off_service, no_truth, 2);
    std::printf("serve overhead: %.0f req/s with corrections vs %.0f "
                "req/s off (%.1f%%)\n",
                on_rps, off_rps,
                off_rps > 0 ? 100.0 * on_rps / off_rps : 0.0);
  }

  return improved ? 0 : 1;
}
