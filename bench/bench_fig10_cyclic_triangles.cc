// Reproduces Figure 10: the 9 optimistic estimators plus P* on CEG_O over
// cyclic queries whose only cycles are triangles (h = 3, §6.2.1).
// Expected shape: same conclusions as Figure 9 — the max aggregator wins,
// max-hop performs at least as well as min-hop.
#include <iostream>

#include "bench_common.h"
#include "engine/engine.h"
#include "harness/experiment.h"

int main(int argc, char** argv) {
  using namespace cegraph;
  const int instances = bench::InstancesFromArgs(argc, argv, 12);

  const char* datasets[] = {"dblp_like", "watdiv_like", "hetionet_like",
                            "epinions_like"};

  std::cout << "Figure 10: optimistic estimators on CEG_O, cyclic queries "
               "with only triangles (h=3)\n\n";
  for (const char* dataset : datasets) {
    auto dw =
        bench::MakeDatasetWorkload(dataset, "cyclic", instances, 0xF10);
    auto triangles = query::FilterTrianglesOnly(dw.workload);
    if (triangles.empty()) {
      std::cout << "== " << dataset << ": no triangle-only queries ==\n\n";
      continue;
    }
    engine::ContextOptions options;
    options.markov_h = 3;
    engine::EstimationEngine engine(dw.graph, options);
    bench::MaybeLoadSnapshot(engine, dataset);
    auto result = bench::RunOptimisticWithEngine(
        engine, OptimisticCeg::kCegO, triangles);
    harness::PrintSuiteResult(std::cout,
                              std::string(dataset) + " / cyclic(triangles)",
                              result);
  }
  return 0;
}
