// bench_service_throughput — serving-layer acceptance gates.
//
// Four questions about the estimation service, all PASS-gated:
//
//  1. Does TCP loopback serving throughput scale with server worker
//     threads? 8 pipelining client connections hammer the same warmed
//     service twice — once behind 1 worker, once behind 8 — and the
//     requests/sec ratio is the parallel speedup of the dispatcher +
//     wait-free reader design. The bar is >= 3x on machines with >= 8
//     hardware threads, >= 0.6 x #threads on smaller ones; on a
//     single-core machine the parallel gate is SKIPped (there is no
//     parallelism to measure) and only the error-free bar is enforced.
//
//  2. Does a snapshot hot-swap / delta compaction under sustained load
//     drop or mix anything? 8 client threads hammer in-process while a
//     maintainer publishes a stream of delta swaps; the gate is zero
//     failed requests and zero responses whose estimate vector is
//     inconsistent with the single epoch they claim (the RCU contract).
//
//  3. Does the epoll event loop hold its throughput as connections scale
//     past the worker count? A fixed 8-worker server is measured at
//     64 / 256 / 1024 concurrent connections (16 client threads juggle
//     them round-robin, so most connections are idle at any instant —
//     the many-idle-clients shape the event loop exists for), reporting
//     requests/sec plus p50/p99 request latency. The gate: every level
//     runs error-free at-or-above the thread-per-connection baseline
//     (legacy dispatcher, 8 workers, 8 connections — its best shape:
//     one blocking worker per connection). Levels whose fd budget
//     exceeds RLIMIT_NOFILE (after raising it to the hard limit) are
//     SKIPped with a note. A wire-v3 batch run (batch 16) is reported
//     for reference, unmeasured by the gate.
//
//  4. Is the observability layer actually free enough to leave on? The
//     same warmed service — per-class accuracy scorecards recording on
//     every truth-carrying request and a structured event journal
//     attached — is measured with metrics enabled and with
//     obs::SetMetricsEnabled(false) (what CEGRAPH_METRICS=off does),
//     best of 3 runs each; the gate is enabled >= 95% of disabled
//     throughput — histograms, windowed buckets, stage traces, and
//     scorecard updates together must cost < 5%.
//
// Usage: bench_service_throughput [instances_per_template] [dataset]
#include <sys/resource.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "dynamic/delta_io.h"
#include "harness/service_driver.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "query/workload_io.h"
#include "service/server.h"
#include "service/service.h"
#include "service/wire.h"
#include "util/table_printer.h"

namespace {

using namespace cegraph;
using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct TcpRunResult {
  size_t ok = 0;
  size_t errors = 0;
  double seconds = 0;
  double rps() const {
    return seconds > 0 ? static_cast<double>(ok) / seconds : 0;
  }
};

/// `client_threads` connections pipeline estimate requests against a
/// server with `workers` worker threads for `duration` seconds.
TcpRunResult MeasureTcpThroughput(service::EstimationService& service,
                                  int workers, int client_threads,
                                  const std::vector<std::string>& lines,
                                  double duration) {
  service::ServerOptions options;
  options.workers = workers;
  service::TcpServer server(service, options);
  if (auto started = server.Start(); !started.ok()) {
    std::fprintf(stderr, "server: %s\n", started.ToString().c_str());
    std::abort();
  }

  std::vector<TcpRunResult> per_thread(
      static_cast<size_t>(client_threads));
  const auto t0 = Clock::now();
  auto client = [&](size_t tid) {
    TcpRunResult& mine = per_thread[tid];
    auto fd = service::wire::DialTcp("127.0.0.1", server.port());
    if (!fd.ok()) {
      ++mine.errors;
      return;
    }
    for (size_t i = tid; SecondsSince(t0) < duration; ++i) {
      auto response = service::wire::RoundTrip(
          *fd, {service::wire::MessageType::kEstimate,
                lines[i % lines.size()]});
      if (response.ok() && response->status.ok()) {
        ++mine.ok;
      } else {
        ++mine.errors;
      }
    }
    ::close(*fd);
  };
  std::vector<std::thread> pool;
  for (size_t tid = 1; tid < static_cast<size_t>(client_threads); ++tid) {
    pool.emplace_back(client, tid);
  }
  client(0);
  for (std::thread& t : pool) t.join();

  TcpRunResult total;
  total.seconds = SecondsSince(t0);
  for (const TcpRunResult& mine : per_thread) {
    total.ok += mine.ok;
    total.errors += mine.errors;
  }
  server.Stop();
  return total;
}

struct ScalingResult {
  size_t ok = 0;
  size_t errors = 0;
  double seconds = 0;
  double p50_micros = 0;
  double p99_micros = 0;
  double rps() const {
    return seconds > 0 ? static_cast<double>(ok) / seconds : 0;
  }
};

/// `conns` concurrent connections against a `dispatch`-mode server with
/// `workers` workers: `client_threads` threads each own conns/threads
/// sockets and walk them round-robin (one in-flight request per thread),
/// so at high conn counts almost every connection is idle at any instant.
/// `batch` > 1 sends wire-v3 batch frames of that many lines; ok counts
/// answered lines either way. Latency is wall time per round trip.
ScalingResult MeasureConnScaling(service::EstimationService& service,
                                 service::ServerOptions::Dispatch dispatch,
                                 int workers, int conns, int client_threads,
                                 int batch,
                                 const std::vector<std::string>& lines,
                                 double duration) {
  service::ServerOptions options;
  options.dispatch = dispatch;
  options.workers = workers;
  service::TcpServer server(service, options);
  if (auto started = server.Start(); !started.ok()) {
    std::fprintf(stderr, "server: %s\n", started.ToString().c_str());
    std::abort();
  }

  if (client_threads > conns) client_threads = conns;
  struct PerThread {
    size_t ok = 0;
    size_t errors = 0;
    std::vector<double> latencies_micros;
  };
  std::vector<PerThread> per_thread(static_cast<size_t>(client_threads));

  // Dial barrier: the clock starts only once every thread holds its
  // connections, so measured time is serving time, not (at 1024 conns,
  // substantial) connection setup.
  std::mutex ready_mutex;
  std::condition_variable ready_cv;
  int ready = 0;
  bool go = false;
  Clock::time_point t0;

  auto client = [&](size_t tid) {
    PerThread& mine = per_thread[tid];
    // This thread's share of the connection count, all held open for the
    // whole run — the fd load is the point of the measurement.
    std::vector<int> fds;
    for (int c = static_cast<int>(tid); c < conns; c += client_threads) {
      auto fd = service::wire::DialTcp("127.0.0.1", server.port());
      if (!fd.ok()) {
        ++mine.errors;
        continue;
      }
      fds.push_back(*fd);
    }
    {
      std::unique_lock<std::mutex> lock(ready_mutex);
      if (++ready == client_threads) {
        go = true;
        t0 = Clock::now();
        ready_cv.notify_all();
      } else {
        ready_cv.wait(lock, [&] { return go; });
      }
    }
    size_t next_line = tid;
    for (size_t round = 0; SecondsSince(t0) < duration; ++round) {
      for (size_t c = 0; c < fds.size() && SecondsSince(t0) < duration;
           ++c) {
        service::wire::Request request;
        if (batch > 1) {
          request.type = service::wire::MessageType::kBatchEstimate;
          for (int j = 0; j < batch; ++j) {
            request.lines.push_back(lines[next_line++ % lines.size()]);
          }
        } else {
          request.type = service::wire::MessageType::kEstimate;
          request.text = lines[next_line++ % lines.size()];
        }
        const auto r0 = Clock::now();
        auto response = service::wire::RoundTrip(fds[c], request);
        const double micros =
            std::chrono::duration<double, std::micro>(Clock::now() - r0)
                .count();
        if (!response.ok() || !response->status.ok()) {
          ++mine.errors;
          continue;
        }
        if (batch > 1) {
          for (const service::BatchEstimateItem& item : response->batch) {
            item.status.ok() ? ++mine.ok : ++mine.errors;
          }
        } else {
          ++mine.ok;
        }
        mine.latencies_micros.push_back(micros);
      }
      if (fds.empty()) break;
    }
    for (const int fd : fds) ::close(fd);
  };
  std::vector<std::thread> pool;
  for (size_t tid = 1; tid < static_cast<size_t>(client_threads); ++tid) {
    pool.emplace_back(client, tid);
  }
  client(0);
  for (std::thread& t : pool) t.join();

  ScalingResult total;
  total.seconds = go ? SecondsSince(t0) : 0;
  std::vector<double> merged;
  for (PerThread& mine : per_thread) {
    total.ok += mine.ok;
    total.errors += mine.errors;
    merged.insert(merged.end(), mine.latencies_micros.begin(),
                  mine.latencies_micros.end());
  }
  if (!merged.empty()) {
    auto percentile = [&](double q) {
      const size_t k = std::min(
          merged.size() - 1,
          static_cast<size_t>(q * static_cast<double>(merged.size())));
      std::nth_element(merged.begin(), merged.begin() + k, merged.end());
      return merged[k];
    };
    total.p50_micros = percentile(0.50);
    total.p99_micros = percentile(0.99);
  }
  server.Stop();
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  const int instances = bench::InstancesFromArgs(argc, argv, 2);
  const std::string dataset = argc > 2 ? argv[2] : "epinions_like";

  auto data = bench::MakeDatasetWorkload(dataset, "acyclic", instances, 1);
  std::printf("dataset %s: %u vertices, %llu edges, %u labels; %zu "
              "workload queries\n\n",
              dataset.c_str(), data.graph.num_vertices(),
              static_cast<unsigned long long>(data.graph.num_edges()),
              data.graph.num_labels(), data.workload.size());

  // Request lines exactly as a replayed production log would send them.
  std::vector<std::string> lines;
  {
    std::ostringstream text;
    if (!query::WriteWorkloadText(data.workload, text).ok()) return 1;
    std::istringstream in(text.str());
    std::string line;
    while (std::getline(in, line)) {
      if (!line.empty() && line[0] != '#') lines.push_back(line);
    }
  }

  service::ServiceOptions options;
  options.estimators = {"max-hop-max", "all-hops-avg", "molp", "cbs", "cs"};
  options.compact_trigger_ops = 0;
  options.prewarm_workload = data.workload;

  // ---- Gate 1: loopback throughput scales with worker threads ----
  bool scaling_pass = true;
  bool scaling_enforced = true;
  {
    auto service = service::EstimationService::Create(
        graph::Graph(data.graph), options);
    if (!service.ok()) {
      std::fprintf(stderr, "service: %s\n",
                   service.status().ToString().c_str());
      return 1;
    }
    // Warm every query class (CEG builds, lazy stats) so both
    // measurements run the steady serving state.
    for (const std::string& line : lines) {
      (void)(*service)->EstimateLine(line);
    }

    const unsigned hw = std::thread::hardware_concurrency();
    const TcpRunResult one =
        MeasureTcpThroughput(**service, 1, 8, lines, 2.0);
    const TcpRunResult eight =
        MeasureTcpThroughput(**service, 8, 8, lines, 2.0);
    const double speedup = one.rps() > 0 ? eight.rps() / one.rps() : 0;

    util::TablePrinter table(
        {"workers", "clients", "requests", "errors", "req/s"});
    table.AddRow({"1", "8", std::to_string(one.ok),
                  std::to_string(one.errors),
                  util::TablePrinter::Num(one.rps())});
    table.AddRow({"8", "8", std::to_string(eight.ok),
                  std::to_string(eight.errors),
                  util::TablePrinter::Num(eight.rps())});
    table.Print(std::cout);

    const size_t errors = one.errors + eight.errors;
    double required = 0;
    if (hw >= 8) {
      required = 3.0;
    } else if (hw >= 2) {
      required = std::min(3.0, 0.6 * static_cast<double>(hw));
    } else {
      scaling_enforced = false;
    }
    if (scaling_enforced) {
      scaling_pass = errors == 0 && speedup >= required;
      std::printf("\n[%s] 1->8 worker speedup %.2fx (>= %.2fx required on "
                  "%u hardware threads), %zu transport errors\n",
                  scaling_pass ? "PASS" : "FAIL", speedup, required, hw,
                  errors);
    } else {
      scaling_pass = errors == 0;
      std::printf("\n[%s] single hardware thread: parallel-speedup gate "
                  "SKIPped (measured %.2fx), error-free bar %s "
                  "(%zu transport errors)\n",
                  scaling_pass ? "PASS" : "FAIL", speedup,
                  scaling_pass ? "met" : "missed", errors);
    }
  }

  // ---- Gate 2: swap under sustained load drops and mixes nothing ----
  bool swap_pass = false;
  {
    auto service = service::EstimationService::Create(
        graph::Graph(data.graph), options);
    if (!service.ok()) {
      std::fprintf(stderr, "service: %s\n",
                   service.status().ToString().c_str());
      return 1;
    }
    for (const std::string& line : lines) {
      (void)(*service)->EstimateLine(line);
    }

    std::atomic<size_t> swap_failures{0};
    std::thread maintainer([&] {
      uint64_t seed = 7000;
      for (int swap = 0; swap < 6; ++swap) {
        std::this_thread::sleep_for(std::chrono::milliseconds(200));
        const auto state = (*service)->AcquireState();
        (*service)->SubmitDeltas(dynamic::RandomEdgeBatch(
            state->engine->context().graph(), 100, seed++));
        auto flushed = (*service)->FlushDeltas();
        if (!flushed.ok()) ++swap_failures;
      }
    });

    harness::ServiceDriverOptions driver;
    driver.num_threads = 8;
    driver.duration_seconds = 2.0;
    driver.check_consistency = true;
    const harness::ServiceRunResult result =
        harness::DriveServiceWorkload(**service, data.workload, driver);
    maintainer.join();

    std::printf("\nswap under load: %zu requests over %.2fs (%.0f req/s), "
                "%zu epochs observed, mean latency %.0f us\n",
                result.requests, result.seconds,
                result.requests_per_second(),
                result.responses_per_epoch.size(),
                result.mean_latency_micros);
    swap_pass = result.requests > 0 && result.errors == 0 &&
                result.inconsistent_responses == 0 &&
                result.version_regressions == 0 &&
                swap_failures.load() == 0 &&
                result.responses_per_epoch.size() > 1;
    std::printf("[%s] zero dropped (%zu errors, %zu rejected), zero "
                "mixed-epoch (%zu inconsistent, %zu regressions), swaps "
                "landed under load (%zu epochs, %zu swap failures)\n",
                swap_pass ? "PASS" : "FAIL", result.errors, result.rejected,
                result.inconsistent_responses, result.version_regressions,
                result.responses_per_epoch.size(), swap_failures.load());
  }

  // ---- Gate 3: event loop holds throughput as connections scale ----
  bool conn_pass = true;
  {
    // The fd budget is the constraint at 1024 connections (client + server
    // end live in this one process): raise the soft limit to the hard
    // limit and SKIP any level that still does not fit.
    rlimit nofile{};
    if (::getrlimit(RLIMIT_NOFILE, &nofile) == 0 &&
        nofile.rlim_cur < nofile.rlim_max) {
      nofile.rlim_cur = nofile.rlim_max;
      (void)::setrlimit(RLIMIT_NOFILE, &nofile);
      (void)::getrlimit(RLIMIT_NOFILE, &nofile);
    }

    auto service = service::EstimationService::Create(
        graph::Graph(data.graph), options);
    if (!service.ok()) {
      std::fprintf(stderr, "service: %s\n",
                   service.status().ToString().c_str());
      return 1;
    }
    for (const std::string& line : lines) {
      (void)(*service)->EstimateLine(line);
    }

    const double duration = 1.5;
    using Dispatch = service::ServerOptions::Dispatch;
    // The legacy dispatcher at its best shape: every connection gets a
    // dedicated blocking worker. This is the bar the event loop must
    // clear while multiplexing 8x-128x as many connections onto the same
    // 8 estimation workers.
    const ScalingResult baseline = MeasureConnScaling(
        **service, Dispatch::kThreadPerConnection, 8, 8, 8, 1, lines,
        duration);

    util::TablePrinter table({"dispatcher", "conns", "requests", "errors",
                              "req/s", "p50 us", "p99 us"});
    table.AddRow({"threads", "8", std::to_string(baseline.ok),
                  std::to_string(baseline.errors),
                  util::TablePrinter::Num(baseline.rps()),
                  util::TablePrinter::Num(baseline.p50_micros),
                  util::TablePrinter::Num(baseline.p99_micros)});

    size_t level_errors = baseline.errors;
    std::vector<double> level_rps;
    std::vector<std::string> level_notes;
    for (const int conns : {64, 256, 1024}) {
      // Two fds per connection in-process, plus headroom for the
      // service, epoll, and stdio.
      const rlim_t budget = static_cast<rlim_t>(conns) * 2 + 64;
      if (budget > nofile.rlim_cur) {
        level_notes.push_back("SKIP " + std::to_string(conns) +
                              " conns: needs " + std::to_string(budget) +
                              " fds, RLIMIT_NOFILE is " +
                              std::to_string(nofile.rlim_cur));
        continue;
      }
      const ScalingResult level = MeasureConnScaling(
          **service, Dispatch::kEventLoop, 8, conns, 16, 1, lines,
          duration);
      table.AddRow({"epoll", std::to_string(conns),
                    std::to_string(level.ok),
                    std::to_string(level.errors),
                    util::TablePrinter::Num(level.rps()),
                    util::TablePrinter::Num(level.p50_micros),
                    util::TablePrinter::Num(level.p99_micros)});
      level_errors += level.errors;
      level_rps.push_back(level.rps());
    }
    // Reference only: the same load shape with wire-v3 batch frames of
    // 16 lines — the per-frame overhead amortization batching buys.
    const ScalingResult batched = MeasureConnScaling(
        **service, Dispatch::kEventLoop, 8, 64, 16, 16, lines, duration);
    table.AddRow({"epoll b16", "64", std::to_string(batched.ok),
                  std::to_string(batched.errors),
                  util::TablePrinter::Num(batched.rps()),
                  util::TablePrinter::Num(batched.p50_micros),
                  util::TablePrinter::Num(batched.p99_micros)});
    std::printf("\n");
    table.Print(std::cout);
    for (const std::string& note : level_notes) {
      std::printf("%s\n", note.c_str());
    }
    // The throughput bar follows gate 1's hardware scaling: on >= 8
    // hardware threads the event loop must match the dedicated-thread
    // baseline outright; on smaller machines multiplexing 16 client
    // threads + I/O thread over too few cores measures the scheduler,
    // not the dispatcher, so the bar relaxes (half the baseline) and on
    // a single core only the error-free bar is enforced.
    const unsigned hw = std::thread::hardware_concurrency();
    double required_fraction = 0;
    if (hw >= 8) {
      required_fraction = 1.0;
    } else if (hw >= 2) {
      required_fraction = 0.5;
    }
    conn_pass = level_errors == 0;
    for (const double rps : level_rps) {
      if (rps < required_fraction * baseline.rps()) conn_pass = false;
    }
    if (required_fraction > 0) {
      std::printf("[%s] event loop at 64/256/1024 connections: error-free "
                  "and >= %.0f%% of thread-per-connection baseline "
                  "%.0f req/s on %u hardware threads (%zu errors total)\n",
                  conn_pass ? "PASS" : "FAIL", 100 * required_fraction,
                  baseline.rps(), hw, level_errors);
    } else {
      std::printf("[%s] single hardware thread: connection-scaling "
                  "throughput gate SKIPped, error-free bar %s "
                  "(%zu errors total; baseline %.0f req/s)\n",
                  conn_pass ? "PASS" : "FAIL",
                  conn_pass ? "met" : "missed", level_errors,
                  baseline.rps());
    }
  }

  // ---- Gate 4: instrumentation overhead stays under 5% ----
  bool overhead_pass = false;
  {
    // The full observability stack the gate prices: the always-on
    // scorecards already record on this path (every workload line
    // carries a truth), and a live journal is attached so its Emit
    // path is armed too. /dev/null keeps the drain thread real —
    // serialization and write() happen — without leaving an artifact.
    obs::Journal journal;
    service::ServiceOptions instrumented = options;
    if (journal.Start("/dev/null").ok()) {
      instrumented.journal = &journal;
    }
    auto service = service::EstimationService::Create(
        graph::Graph(data.graph), instrumented);
    if (!service.ok()) {
      std::fprintf(stderr, "service: %s\n",
                   service.status().ToString().c_str());
      return 1;
    }
    for (const std::string& line : lines) {
      (void)(*service)->EstimateLine(line);
    }

    // Best-of-3 per mode, interleaved so thermal / scheduler drift hits
    // both modes alike. SetMetricsEnabled(false) is exactly what
    // CEGRAPH_METRICS=off sets at startup.
    double best_on = 0;
    double best_off = 0;
    size_t overhead_errors = 0;
    for (int round = 0; round < 3; ++round) {
      obs::SetMetricsEnabled(true);
      const TcpRunResult on =
          MeasureTcpThroughput(**service, 4, 8, lines, 1.0);
      obs::SetMetricsEnabled(false);
      const TcpRunResult off =
          MeasureTcpThroughput(**service, 4, 8, lines, 1.0);
      best_on = std::max(best_on, on.rps());
      best_off = std::max(best_off, off.rps());
      overhead_errors += on.errors + off.errors;
    }
    obs::SetMetricsEnabled(true);

    const double ratio = best_off > 0 ? best_on / best_off : 0;
    overhead_pass =
        overhead_errors == 0 && best_off > 0 && ratio >= 0.95;
    std::printf("\nmetrics on %.0f req/s vs off %.0f req/s "
                "(best of 3 each; scorecards live, journal attached, "
                "%llu events)\n",
                best_on, best_off,
                static_cast<unsigned long long>(journal.emitted()));
    std::printf("[%s] instrumentation overhead: enabled/disabled ratio "
                "%.3f (>= 0.95 required), %zu transport errors\n",
                overhead_pass ? "PASS" : "FAIL", ratio, overhead_errors);
  }

  return scaling_pass && swap_pass && conn_pass && overhead_pass ? 0 : 1;
}
