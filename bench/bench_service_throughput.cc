// bench_service_throughput — serving-layer acceptance gates.
//
// Two questions about the estimation service, both PASS-gated:
//
//  1. Does TCP loopback serving throughput scale with server worker
//     threads? 8 pipelining client connections hammer the same warmed
//     service twice — once behind 1 worker, once behind 8 — and the
//     requests/sec ratio is the parallel speedup of the dispatcher +
//     wait-free reader design. The bar is >= 3x on machines with >= 8
//     hardware threads, >= 0.6 x #threads on smaller ones; on a
//     single-core machine the parallel gate is SKIPped (there is no
//     parallelism to measure) and only the error-free bar is enforced.
//
//  2. Does a snapshot hot-swap / delta compaction under sustained load
//     drop or mix anything? 8 client threads hammer in-process while a
//     maintainer publishes a stream of delta swaps; the gate is zero
//     failed requests and zero responses whose estimate vector is
//     inconsistent with the single epoch they claim (the RCU contract).
//
// Usage: bench_service_throughput [instances_per_template] [dataset]
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "dynamic/delta_io.h"
#include "harness/service_driver.h"
#include "query/workload_io.h"
#include "service/server.h"
#include "service/service.h"
#include "service/wire.h"
#include "util/table_printer.h"

namespace {

using namespace cegraph;
using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct TcpRunResult {
  size_t ok = 0;
  size_t errors = 0;
  double seconds = 0;
  double rps() const {
    return seconds > 0 ? static_cast<double>(ok) / seconds : 0;
  }
};

/// `client_threads` connections pipeline estimate requests against a
/// server with `workers` worker threads for `duration` seconds.
TcpRunResult MeasureTcpThroughput(service::EstimationService& service,
                                  int workers, int client_threads,
                                  const std::vector<std::string>& lines,
                                  double duration) {
  service::ServerOptions options;
  options.workers = workers;
  service::TcpServer server(service, options);
  if (auto started = server.Start(); !started.ok()) {
    std::fprintf(stderr, "server: %s\n", started.ToString().c_str());
    std::abort();
  }

  std::vector<TcpRunResult> per_thread(
      static_cast<size_t>(client_threads));
  const auto t0 = Clock::now();
  auto client = [&](size_t tid) {
    TcpRunResult& mine = per_thread[tid];
    auto fd = service::wire::DialTcp("127.0.0.1", server.port());
    if (!fd.ok()) {
      ++mine.errors;
      return;
    }
    for (size_t i = tid; SecondsSince(t0) < duration; ++i) {
      auto response = service::wire::RoundTrip(
          *fd, {service::wire::MessageType::kEstimate,
                lines[i % lines.size()]});
      if (response.ok() && response->status.ok()) {
        ++mine.ok;
      } else {
        ++mine.errors;
      }
    }
    ::close(*fd);
  };
  std::vector<std::thread> pool;
  for (size_t tid = 1; tid < static_cast<size_t>(client_threads); ++tid) {
    pool.emplace_back(client, tid);
  }
  client(0);
  for (std::thread& t : pool) t.join();

  TcpRunResult total;
  total.seconds = SecondsSince(t0);
  for (const TcpRunResult& mine : per_thread) {
    total.ok += mine.ok;
    total.errors += mine.errors;
  }
  server.Stop();
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  const int instances = bench::InstancesFromArgs(argc, argv, 2);
  const std::string dataset = argc > 2 ? argv[2] : "epinions_like";

  auto data = bench::MakeDatasetWorkload(dataset, "acyclic", instances, 1);
  std::printf("dataset %s: %u vertices, %llu edges, %u labels; %zu "
              "workload queries\n\n",
              dataset.c_str(), data.graph.num_vertices(),
              static_cast<unsigned long long>(data.graph.num_edges()),
              data.graph.num_labels(), data.workload.size());

  // Request lines exactly as a replayed production log would send them.
  std::vector<std::string> lines;
  {
    std::ostringstream text;
    if (!query::WriteWorkloadText(data.workload, text).ok()) return 1;
    std::istringstream in(text.str());
    std::string line;
    while (std::getline(in, line)) {
      if (!line.empty() && line[0] != '#') lines.push_back(line);
    }
  }

  service::ServiceOptions options;
  options.estimators = {"max-hop-max", "all-hops-avg", "molp", "cbs", "cs"};
  options.compact_trigger_ops = 0;
  options.prewarm_workload = data.workload;

  // ---- Gate 1: loopback throughput scales with worker threads ----
  bool scaling_pass = true;
  bool scaling_enforced = true;
  {
    auto service = service::EstimationService::Create(
        graph::Graph(data.graph), options);
    if (!service.ok()) {
      std::fprintf(stderr, "service: %s\n",
                   service.status().ToString().c_str());
      return 1;
    }
    // Warm every query class (CEG builds, lazy stats) so both
    // measurements run the steady serving state.
    for (const std::string& line : lines) {
      (void)(*service)->EstimateLine(line);
    }

    const unsigned hw = std::thread::hardware_concurrency();
    const TcpRunResult one =
        MeasureTcpThroughput(**service, 1, 8, lines, 2.0);
    const TcpRunResult eight =
        MeasureTcpThroughput(**service, 8, 8, lines, 2.0);
    const double speedup = one.rps() > 0 ? eight.rps() / one.rps() : 0;

    util::TablePrinter table(
        {"workers", "clients", "requests", "errors", "req/s"});
    table.AddRow({"1", "8", std::to_string(one.ok),
                  std::to_string(one.errors),
                  util::TablePrinter::Num(one.rps())});
    table.AddRow({"8", "8", std::to_string(eight.ok),
                  std::to_string(eight.errors),
                  util::TablePrinter::Num(eight.rps())});
    table.Print(std::cout);

    const size_t errors = one.errors + eight.errors;
    double required = 0;
    if (hw >= 8) {
      required = 3.0;
    } else if (hw >= 2) {
      required = std::min(3.0, 0.6 * static_cast<double>(hw));
    } else {
      scaling_enforced = false;
    }
    if (scaling_enforced) {
      scaling_pass = errors == 0 && speedup >= required;
      std::printf("\n[%s] 1->8 worker speedup %.2fx (>= %.2fx required on "
                  "%u hardware threads), %zu transport errors\n",
                  scaling_pass ? "PASS" : "FAIL", speedup, required, hw,
                  errors);
    } else {
      scaling_pass = errors == 0;
      std::printf("\n[%s] single hardware thread: parallel-speedup gate "
                  "SKIPped (measured %.2fx), error-free bar %s "
                  "(%zu transport errors)\n",
                  scaling_pass ? "PASS" : "FAIL", speedup,
                  scaling_pass ? "met" : "missed", errors);
    }
  }

  // ---- Gate 2: swap under sustained load drops and mixes nothing ----
  bool swap_pass = false;
  {
    auto service = service::EstimationService::Create(
        graph::Graph(data.graph), options);
    if (!service.ok()) {
      std::fprintf(stderr, "service: %s\n",
                   service.status().ToString().c_str());
      return 1;
    }
    for (const std::string& line : lines) {
      (void)(*service)->EstimateLine(line);
    }

    std::atomic<size_t> swap_failures{0};
    std::thread maintainer([&] {
      uint64_t seed = 7000;
      for (int swap = 0; swap < 6; ++swap) {
        std::this_thread::sleep_for(std::chrono::milliseconds(200));
        const auto state = (*service)->AcquireState();
        (*service)->SubmitDeltas(dynamic::RandomEdgeBatch(
            state->engine->context().graph(), 100, seed++));
        auto flushed = (*service)->FlushDeltas();
        if (!flushed.ok()) ++swap_failures;
      }
    });

    harness::ServiceDriverOptions driver;
    driver.num_threads = 8;
    driver.duration_seconds = 2.0;
    driver.check_consistency = true;
    const harness::ServiceRunResult result =
        harness::DriveServiceWorkload(**service, data.workload, driver);
    maintainer.join();

    std::printf("\nswap under load: %zu requests over %.2fs (%.0f req/s), "
                "%zu epochs observed, mean latency %.0f us\n",
                result.requests, result.seconds,
                result.requests_per_second(),
                result.responses_per_epoch.size(),
                result.mean_latency_micros);
    swap_pass = result.requests > 0 && result.errors == 0 &&
                result.inconsistent_responses == 0 &&
                result.version_regressions == 0 &&
                swap_failures.load() == 0 &&
                result.responses_per_epoch.size() > 1;
    std::printf("[%s] zero dropped (%zu errors, %zu rejected), zero "
                "mixed-epoch (%zu inconsistent, %zu regressions), swaps "
                "landed under load (%zu epochs, %zu swap failures)\n",
                swap_pass ? "PASS" : "FAIL", result.errors, result.rejected,
                result.inconsistent_responses, result.version_regressions,
                result.responses_per_epoch.size(), swap_failures.load());
  }

  return scaling_pass && swap_pass ? 0 : 1;
}
