// Reproduces Figure 12: the effect of the bound-sketch optimization on the
// max-hop-max optimistic estimator (left column) and on MOLP (right
// column) at partitioning budgets K in {1, 4, 16, 64, 128} (h = 2, §6.3).
// Expected shape: MOLP improves steadily with K; max-hop-max improves on
// hetionet/epinions and barely moves on imdb; most per-query errors
// strictly improve.
#include <cmath>
#include <iostream>

#include "bench_common.h"
#include "engine/engine.h"
#include "estimators/bound_sketch.h"
#include "harness/qerror.h"
#include "util/box_stats.h"
#include "util/table_printer.h"

namespace {

using namespace cegraph;

void RunPanel(const std::string& dataset, const std::string& suite,
              BoundSketchEstimator::Inner inner, int instances) {
  auto dw = bench::MakeDatasetWorkload(dataset, suite, instances, 0xF12);
  auto acyclic = query::FilterAcyclic(dw.workload);

  const char* inner_name =
      inner == BoundSketchEstimator::Inner::kOptimisticMaxHopMax
          ? "max-hop-max"
          : "MOLP";
  std::cout << "== " << dataset << " / " << suite << " / " << inner_name
            << " (queries=" << acyclic.size() << ") ==\n";
  util::TablePrinter table({"K", "p25", "median", "p75", "trimmed-mean",
                            "%improved-vs-K1"});

  engine::EstimationEngine engine(dw.graph);
  bench::MaybeLoadSnapshot(engine, dataset);
  std::vector<double> base_qerrors;
  for (int k : {1, 4, 16, 64, 128}) {
    // Resolved through the registry's dynamic bound-sketch family.
    const std::string registry_name =
        "bs" + std::to_string(k) + "(" +
        (inner == BoundSketchEstimator::Inner::kOptimisticMaxHopMax
             ? "max-hop-max"
             : "molp") +
        ")";
    auto estimator = engine.Estimator(registry_name);
    if (!estimator.ok()) std::abort();
    std::vector<double> signed_logs;
    std::vector<double> qerrors;
    for (const auto& wq : acyclic) {
      auto est = (*estimator)->Estimate(wq.query);
      if (!est.ok()) continue;
      signed_logs.push_back(
          harness::SignedLogQError(*est, wq.true_cardinality));
      qerrors.push_back(harness::QError(*est, wq.true_cardinality));
    }
    const auto stats = util::ComputeBoxStats(signed_logs);
    double improved = 0;
    if (k == 1) {
      base_qerrors = qerrors;
    } else {
      size_t count = 0;
      for (size_t i = 0; i < qerrors.size() && i < base_qerrors.size();
           ++i) {
        count += qerrors[i] < base_qerrors[i] - 1e-12;
      }
      improved = qerrors.empty()
                     ? 0
                     : 100.0 * static_cast<double>(count) / qerrors.size();
    }
    table.AddRow({std::to_string(k), util::TablePrinter::Num(stats.p25),
                  util::TablePrinter::Num(stats.median),
                  util::TablePrinter::Num(stats.p75),
                  util::TablePrinter::Num(stats.trimmed_mean),
                  k == 1 ? "-" : util::TablePrinter::Num(improved)});
  }
  table.Print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const int instances = cegraph::bench::InstancesFromArgs(argc, argv, 4);
  std::cout << "Figure 12: bound-sketch effect at K in {1,4,16,64,128} "
               "(h=2)\n\n";
  struct Panel {
    const char* dataset;
    const char* suite;
  };
  const Panel panels[] = {{"imdb_like", "job"},
                          {"hetionet_like", "acyclic"},
                          {"epinions_like", "acyclic"}};
  for (const Panel& p : panels) {
    RunPanel(p.dataset, p.suite,
             cegraph::BoundSketchEstimator::Inner::kOptimisticMaxHopMax,
             instances);
    RunPanel(p.dataset, p.suite, cegraph::BoundSketchEstimator::Inner::kMolp,
             instances);
  }
  return 0;
}
