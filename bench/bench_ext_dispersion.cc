// Extension experiments beyond the paper:
//  - §8 future work: does picking the path whose extensions have the most
//    regular degree distributions (min-CV / min-entropy) beat the
//    recommended max-hop-max heuristic?
//  - §7 future work: the Markl-style maximum-entropy estimator built from
//    the *same* Markov-table statistics, solved by iterative proportional
//    fitting — a holistic alternative to picking any single CEG path.
#include <iostream>
#include <memory>

#include "bench_common.h"
#include "engine/engine.h"
#include "harness/experiment.h"

int main(int argc, char** argv) {
  using namespace cegraph;
  const int instances = bench::InstancesFromArgs(argc, argv, 8);

  std::cout << "Extensions beyond the paper (h=2): dispersion-guided path "
               "picking (S8) and the maximum-entropy estimator (S7)\n\n";
  for (const char* dataset :
       {"imdb_like", "hetionet_like", "epinions_like"}) {
    auto dw =
        bench::MakeDatasetWorkload(dataset, "acyclic", instances, 0xE01);
    auto acyclic = query::FilterAcyclic(dw.workload);

    engine::EstimationEngine engine(dw.graph);
    bench::MaybeLoadSnapshot(engine, dataset);
    auto result = bench::RunNamedSuite(
        engine,
        {"max-hop-max", "min-hop-min", "min-cv-path", "min-entropy-path",
         "max-entropy"},
        acyclic);
    harness::PrintSuiteResult(std::cout,
                              std::string(dataset) + " / acyclic", result);
  }
  std::cout << "Reading guide: min-cv-path conditions path choice on how "
               "defensible each uniformity assumption is, and lands "
               "between min-aggr and max-aggr; max-entropy fuses all "
               "stored statistics into one holistic estimate instead of "
               "choosing a path, trading CEG_O's systematic "
               "underestimation for mild overestimation.\n";
  return 0;
}
