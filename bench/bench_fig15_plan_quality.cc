// Reproduces Figure 15: plan quality under injected estimates (§6.6). The
// Acyclic workload runs through the DP join optimizer + hash-join executor
// once per estimator configuration: the RDF-3X-style default estimator and
// the 9 optimistic estimators. Queries where every configuration picks
// effectively the same plan (< 10% spread in intermediate tuples) are
// filtered out, as in the paper. Expected shape: all 9 optimistic
// estimators beat the default (positive median log-speedup); max-aggr
// estimators produce the best plans.
#include <cmath>
#include <iostream>
#include <algorithm>
#include <memory>

#include "bench_common.h"
#include "engine/engine.h"
#include "estimators/optimistic.h"
#include "planner/dp_optimizer.h"
#include "planner/executor.h"
#include "util/box_stats.h"
#include "util/table_printer.h"

namespace {

using namespace cegraph;

void RunPanel(const std::string& dataset, const std::string& suite,
              int instances) {
  auto g = graph::MakeDataset(dataset);
  if (!g.ok()) std::abort();
  // Execution-friendly workload: the executor fully materializes every
  // intermediate (unlike RDF-3X's pipelined operators), so cap the output
  // size to keep even the *bad* plans finishable within the tuple budget.
  query::WorkloadOptions wl_options;
  wl_options.instances_per_template = instances;
  wl_options.seed = 0xF15;
  wl_options.max_cardinality = 2e6;
  auto wl = query::GenerateWorkload(*g, bench::SuiteByName(suite),
                                    wl_options);
  if (!wl.ok()) {
    std::cout << "== " << dataset
              << ": workload generation failed: " << wl.status() << " ==\n\n";
    return;
  }
  bench::DatasetWorkload dw{std::move(*g), std::move(*wl)};

  engine::EstimationEngine engine(dw.graph);
  bench::MaybeLoadSnapshot(engine, dataset);
  std::vector<std::string> names = {"rdf3x-default"};
  for (const auto& spec : AllOptimisticSpecs()) names.push_back(SpecName(spec));
  auto resolved = engine.Estimators(names);
  if (!resolved.ok()) std::abort();
  const std::vector<const CardinalityEstimator*>& estimators = *resolved;

  planner::Executor executor(dw.graph);
  // cost[e][q] = intermediate tuples of estimator e's plan on query q.
  std::vector<std::vector<double>> cost(estimators.size());
  std::vector<std::vector<double>> seconds(estimators.size());

  size_t kept = 0;
  for (const auto& wq : dw.workload) {
    std::vector<double> tuples(estimators.size());
    std::vector<double> wall(estimators.size());
    bool ok = true;
    for (size_t e = 0; e < estimators.size() && ok; ++e) {
      planner::DpOptimizer optimizer(*estimators[e]);
      auto plan = optimizer.Optimize(wq.query);
      if (!plan.ok()) {
        ok = false;
        break;
      }
      constexpr uint64_t kBudget = 10'000'000;
      auto run = executor.Execute(wq.query, *plan, kBudget);
      if (!run.ok()) {
        if (run.status().code() == util::StatusCode::kResourceExhausted) {
          // A plan so bad it blew the materialization budget: charge it
          // the cap (the paper's analogue of a timed-out configuration).
          tuples[e] = static_cast<double>(kBudget);
          wall[e] = 10.0;
          continue;
        }
        ok = false;
        break;
      }
      tuples[e] = static_cast<double>(run->total_intermediate_tuples) + 1;
      wall[e] = run->wall_seconds;
    }
    if (!ok) continue;
    // Filter queries where all configurations are effectively identical.
    const double lo = *std::min_element(tuples.begin(), tuples.end());
    const double hi = *std::max_element(tuples.begin(), tuples.end());
    if (hi < 1.1 * lo) continue;
    ++kept;
    for (size_t e = 0; e < estimators.size(); ++e) {
      cost[e].push_back(tuples[e]);
      seconds[e].push_back(wall[e]);
    }
  }

  std::cout << "== " << dataset << " (queries kept=" << kept << ") ==\n";
  util::TablePrinter table({"estimator", "speedup-p25", "speedup-median",
                            "speedup-p75", "geo-mean-speedup",
                            "mean-exec-ms"});
  for (size_t e = 1; e < estimators.size(); ++e) {
    // log10 speedup of estimator e's plan vs the default estimator's plan,
    // measured in materialized intermediate tuples (machine-independent).
    std::vector<double> speedups;
    double log_sum = 0, ms_sum = 0;
    for (size_t qi = 0; qi < cost[e].size(); ++qi) {
      const double s = std::log10(cost[0][qi] / cost[e][qi]);
      speedups.push_back(s);
      log_sum += s;
      ms_sum += seconds[e][qi] * 1000;
    }
    const auto stats = util::ComputeBoxStats(speedups);
    table.AddRow(
        {names[e], util::TablePrinter::Num(stats.p25),
         util::TablePrinter::Num(stats.median),
         util::TablePrinter::Num(stats.p75),
         util::TablePrinter::Num(
             speedups.empty()
                 ? 0
                 : std::pow(10.0, log_sum / speedups.size())),
         util::TablePrinter::Num(
             speedups.empty() ? 0 : ms_sum / speedups.size())});
  }
  table.Print(std::cout);
  std::cout << "(speedup columns are log10 intermediate-tuple ratios vs "
               "the rdf3x-default plan; > 0 = better plan)\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  const int instances = cegraph::bench::InstancesFromArgs(argc, argv, 3);
  std::cout << "Figure 15: plan quality under injected estimates\n\n";
  // Panel substitution (DESIGN.md §3): the paper runs DBLP + WatDiv. Our
  // dblp_like stand-in is so dense at laptop scale that its 5-8-edge
  // queries produce 1e7-1e8+ outputs, which a fully materializing executor
  // cannot finish under any plan; imdb_like with the JOB-like templates
  // exercises the same experiment on label-correlated data (plan-quality
  // differences require correlation — on the uncorrelated epinions control
  // even the magic-constant default ranks plans correctly). The paper also
  // filters to queries whose plans actually differ ("we were left with 15
  // queries for DBLP and 8 for WatDiv"); the spread filter below is the
  // same device.
  RunPanel("imdb_like", "job", 2 * instances);
  RunPanel("watdiv_like", "acyclic", instances);
  return 0;
}
