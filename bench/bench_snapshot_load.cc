// bench_snapshot_load — time-to-first-estimate from a saved statistics
// snapshot: the v3 mmap-able arena vs the v2 parse path.
//
// Two gates:
//
//  1. On the largest snapshot, arena open + first estimate must be >= 5x
//     faster than v2 parse + first estimate. The arena attaches section
//     indexes in place, so the work the v2 loader does per entry
//     (hashing, node allocation, map insertion) simply never happens.
//
//  2. Arena open time must grow sublinearly with snapshot size: across a
//     wide spread of snapshot bytes, the open-time ratio must stay under
//     half the byte ratio. v2 parse is O(bytes) by construction; the
//     arena maps, validates section headers, and attaches the big hash
//     indexes in place.
//
// The size sweep scales the label alphabet on a fixed vertex/edge budget:
// the index-backed sections (markov patterns, degree joins, dispersion)
// grow superlinearly with labels while the vertex-bound sections stay
// put, which is exactly the regime where in-place attachment pays.
//
// Usage: bench_snapshot_load [instances_per_template]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "engine/snapshot.h"
#include "graph/generators.h"
#include "util/table_printer.h"

namespace {

using namespace cegraph;

double Millis(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// Loads `path` into a fresh engine (mapped or parsed per `mapped`) and
/// runs one estimate; returns the best-of-`reps` wall millis for the
/// combined load + first-estimate, i.e. time-to-first-estimate.
double TimeToFirstEstimate(const graph::Graph& g, const std::string& path,
                           const query::WorkloadQuery& probe, bool mapped,
                           int reps, double* open_millis) {
  double best = 1e300;
  double best_open = 1e300;
  for (int r = 0; r < reps; ++r) {
    engine::EstimationEngine engine(g);
    auto estimator = engine.Estimator("max-hop-max");
    if (!estimator.ok()) {
      std::fprintf(stderr, "estimator: %s\n",
                   estimator.status().ToString().c_str());
      std::abort();
    }
    const auto t0 = std::chrono::steady_clock::now();
    const auto loaded =
        mapped ? engine.context().LoadSnapshotMapped(path)
               : engine.context().LoadSnapshot(path);
    const double open = Millis(t0);
    if (!loaded.ok()) {
      std::fprintf(stderr, "load %s: %s\n", path.c_str(),
                   loaded.ToString().c_str());
      std::abort();
    }
    (void)(*estimator)->Estimate(probe.query);
    best = std::min(best, Millis(t0));
    best_open = std::min(best_open, open);
  }
  if (open_millis != nullptr) *open_millis = best_open;
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const int instances = bench::InstancesFromArgs(argc, argv, 6);
  constexpr int kReps = 5;

  const auto tmp = std::filesystem::temp_directory_path();
  const std::vector<uint32_t> label_scales = {6, 16, 40};

  util::TablePrinter table({"labels", "v2 bytes", "arena bytes",
                            "v2 ttfe (ms)", "arena ttfe (ms)", "speedup",
                            "arena open (ms)"});
  std::vector<double> arena_open_ms;
  std::vector<uint64_t> arena_bytes;
  double last_speedup = 0;
  for (const uint32_t labels : label_scales) {
    graph::GeneratorConfig config;
    config.num_vertices = 5000;
    config.num_edges = 40000;
    config.num_labels = labels;
    config.seed = 17;
    auto g = graph::GenerateGraph(config);
    if (!g.ok()) {
      std::fprintf(stderr, "graph: %s\n", g.status().ToString().c_str());
      return 1;
    }
    query::WorkloadOptions options;
    options.instances_per_template = instances;
    options.seed = 99;
    auto wl = query::GenerateWorkload(*g, bench::SuiteByName("acyclic"),
                                      options);
    if (!wl.ok()) {
      std::fprintf(stderr, "workload: %s\n", wl.status().ToString().c_str());
      return 1;
    }

    engine::EstimationContext builder(*g);
    engine::PrewarmOptions prewarm;
    prewarm.dispersion = true;
    builder.Prewarm(*wl, prewarm);
    const std::string v2_path =
        (tmp / ("bench_snap_v2_" + std::to_string(labels) + ".snap"))
            .string();
    const std::string arena_path =
        (tmp / ("bench_snap_v3_" + std::to_string(labels) + ".snap"))
            .string();
    if (auto s = builder.SaveSnapshot(v2_path); !s.ok()) {
      std::fprintf(stderr, "save v2: %s\n", s.ToString().c_str());
      return 1;
    }
    if (auto s = builder.SaveSnapshot(arena_path,
                                      engine::SnapshotFormat::kArena);
        !s.ok()) {
      std::fprintf(stderr, "save arena: %s\n", s.ToString().c_str());
      return 1;
    }

    const uint64_t v2_size = std::filesystem::file_size(v2_path);
    const uint64_t arena_size = std::filesystem::file_size(arena_path);
    double open = 0;
    const double t_v2 = TimeToFirstEstimate(*g, v2_path, wl->front(),
                                            /*mapped=*/false, kReps, nullptr);
    const double t_arena = TimeToFirstEstimate(*g, arena_path, wl->front(),
                                               /*mapped=*/true, kReps, &open);
    last_speedup = t_arena > 0 ? t_v2 / t_arena : 0;
    arena_open_ms.push_back(open);
    arena_bytes.push_back(arena_size);
    table.AddRow({std::to_string(labels), std::to_string(v2_size),
                  std::to_string(arena_size), util::TablePrinter::Num(t_v2),
                  util::TablePrinter::Num(t_arena),
                  util::TablePrinter::Num(last_speedup),
                  util::TablePrinter::Num(open)});
    std::remove(v2_path.c_str());
    std::remove(arena_path.c_str());
  }
  table.Print(std::cout);

  const bool speedup_pass = last_speedup >= 5.0;
  std::printf("\n[%s] arena time-to-first-estimate >= 5x faster than v2 "
              "parse at the largest snapshot (%.1fx)\n",
              speedup_pass ? "PASS" : "FAIL", last_speedup);

  const double byte_ratio =
      static_cast<double>(arena_bytes.back()) /
      static_cast<double>(std::max<uint64_t>(1, arena_bytes.front()));
  const double open_ratio =
      arena_open_ms.back() / std::max(1e-6, arena_open_ms.front());
  const bool sublinear_pass = open_ratio < 0.5 * byte_ratio;
  std::printf("[%s] arena open grows sublinearly with snapshot size "
              "(bytes grew %.1fx, open time %.1fx)\n",
              sublinear_pass ? "PASS" : "FAIL", byte_ratio, open_ratio);
  return speedup_pass && sublinear_pass ? 0 : 1;
}
