// Ablation (DESIGN.md §6): Markov table size h = 2 vs h = 3 for the
// max-hop-max estimator, with the table's entry count as the space cost.
// Expected: h = 3 is more accurate (larger exact numerators, fewer
// independence assumptions) at a larger table size.
#include <iostream>

#include "bench_common.h"
#include "harness/experiment.h"
#include "harness/qerror.h"
#include "stats/markov_table.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  using namespace cegraph;
  const int instances = bench::InstancesFromArgs(argc, argv, 10);

  std::cout << "Ablation: Markov table size (max-hop-max)\n\n";
  util::TablePrinter table({"dataset", "h", "median", "trimmed-mean",
                            "entries", "approx-KB"});
  for (const char* dataset : {"dblp_like", "hetionet_like",
                              "epinions_like"}) {
    auto dw =
        bench::MakeDatasetWorkload(dataset, "acyclic", instances, 0xAB3);
    for (int h : {2, 3}) {
      stats::MarkovTable markov(dw.graph, h);
      OptimisticEstimator estimator(markov, OptimisticSpec{});
      std::vector<double> signed_logs;
      for (const auto& wq : dw.workload) {
        auto est = estimator.Estimate(wq.query);
        if (!est.ok()) continue;
        signed_logs.push_back(
            harness::SignedLogQError(*est, wq.true_cardinality));
      }
      const auto stats = util::ComputeBoxStats(signed_logs);
      table.AddRow({dataset, std::to_string(h),
                    util::TablePrinter::Num(stats.median),
                    util::TablePrinter::Num(stats.trimmed_mean),
                    std::to_string(markov.num_entries()),
                    util::TablePrinter::Num(
                        markov.ApproximateSizeBytes() / 1024.0)});
    }
  }
  table.Print(std::cout);
  std::cout << "(signed log10 q-error; entries = workload-specific Markov "
               "table size)\n";
  return 0;
}
