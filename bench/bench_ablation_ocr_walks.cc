// Ablation (DESIGN.md §6): CEG_OCR random-walk sampling budget for the
// cycle-closing-rate statistics. Expected: accuracy of max-hop-max on
// large-cycle queries stabilizes as the walk budget grows; tiny budgets
// inject sampling noise.
#include <iostream>

#include "bench_common.h"
#include "harness/experiment.h"
#include "harness/qerror.h"
#include "stats/cycle_closing.h"
#include "stats/markov_table.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  using namespace cegraph;
  const int instances = bench::InstancesFromArgs(argc, argv, 10);

  auto dw =
      bench::MakeDatasetWorkload("hetionet_like", "cyclic", instances, 0xAB4);
  auto large = query::FilterLargeCycles(dw.workload);
  stats::MarkovTable markov(dw.graph, 3);

  std::cout << "Ablation: CEG_OCR walk budget (max-hop-max@ocr, "
               "hetionet_like, large cycles, queries="
            << large.size() << ")\n\n";
  util::TablePrinter table(
      {"walks-per-key", "median", "trimmed-mean", "max"});
  for (int walks : {50, 200, 1000, 4000}) {
    stats::CycleClosingOptions options;
    options.walks_per_key = walks;
    stats::CycleClosingRates rates(dw.graph, options);
    OptimisticSpec spec;
    spec.ceg_kind = OptimisticCeg::kCegOcr;
    OptimisticEstimator estimator(markov, spec, &rates);
    std::vector<double> signed_logs;
    for (const auto& wq : large) {
      auto est = estimator.Estimate(wq.query);
      if (!est.ok()) continue;
      signed_logs.push_back(
          harness::SignedLogQError(*est, wq.true_cardinality));
    }
    const auto stats = util::ComputeBoxStats(signed_logs);
    table.AddRow({std::to_string(walks),
                  util::TablePrinter::Num(stats.median),
                  util::TablePrinter::Num(stats.trimmed_mean),
                  util::TablePrinter::Num(stats.max)});
  }
  table.Print(std::cout);
  std::cout << "(signed log10 q-error)\n";
  return 0;
}
