// Ablation (DESIGN.md §6): the two CEG_O construction rules of §4.2 —
// size-h numerators and early cycle closing — toggled independently.
// Expected: disabling the size-h rule admits formulas that condition on
// smaller joins and hurts accuracy; disabling early cycle closing lets
// cyclic queries be priced as paths and inflates overestimation.
#include <iostream>

#include "bench_common.h"
#include "harness/experiment.h"
#include "harness/qerror.h"
#include "stats/markov_table.h"
#include "util/table_printer.h"

namespace {

using namespace cegraph;

void RunConfig(const std::string& title,
               const std::vector<query::WorkloadQuery>& workload,
               const stats::MarkovTable& markov, bool size_h,
               bool early_closing, util::TablePrinter& table) {
  OptimisticSpec spec;  // max-hop-max
  spec.ceg_options.size_h_numerators = size_h;
  spec.ceg_options.early_cycle_closing = early_closing;
  OptimisticEstimator estimator(markov, spec);
  std::vector<double> signed_logs;
  size_t failures = 0;
  for (const auto& wq : workload) {
    auto est = estimator.Estimate(wq.query);
    if (!est.ok()) {
      ++failures;
      continue;
    }
    signed_logs.push_back(
        harness::SignedLogQError(*est, wq.true_cardinality));
  }
  const auto stats = util::ComputeBoxStats(signed_logs);
  table.AddRow({title, size_h ? "on" : "off", early_closing ? "on" : "off",
                util::TablePrinter::Num(stats.median),
                util::TablePrinter::Num(stats.trimmed_mean),
                util::TablePrinter::Num(stats.max),
                std::to_string(failures)});
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cegraph;
  const int instances = bench::InstancesFromArgs(argc, argv, 10);

  std::cout << "Ablation: CEG_O construction rules (max-hop-max, h=3)\n\n";
  util::TablePrinter table({"workload", "size-h-rule", "early-closing",
                            "median", "trimmed-mean", "max", "fail"});

  {
    auto dw = bench::MakeDatasetWorkload("hetionet_like", "acyclic",
                                         instances, 0xAB1);
    stats::MarkovTable markov(dw.graph, 3);
    for (bool size_h : {true, false}) {
      RunConfig("hetionet/acyclic", dw.workload, markov, size_h, true,
                table);
    }
  }
  {
    auto dw = bench::MakeDatasetWorkload("hetionet_like", "cyclic",
                                         instances, 0xAB2);
    auto cyclic = query::FilterTrianglesOnly(dw.workload);
    stats::MarkovTable markov(dw.graph, 3);
    for (bool early : {true, false}) {
      RunConfig("hetionet/cyclic-tri", cyclic, markov, true, early, table);
    }
  }
  table.Print(std::cout);
  std::cout << "(signed log10 q-error)\n";
  return 0;
}
