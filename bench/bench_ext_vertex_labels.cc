// Extension experiment: the paper's vertex-label extension (§6.1) in
// action. The same workload is generated twice — once vertex-unlabeled
// and once with each query vertex constrained to its embedding's vertex
// label with probability 0.5 — and the 9 optimistic estimators run on
// both. Vertex labels shrink pattern cardinalities and sharpen the Markov
// statistics, so estimates should tighten.
#include <cmath>
#include <iostream>

#include "bench_common.h"
#include "engine/engine.h"
#include "harness/experiment.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  using namespace cegraph;
  const int instances = bench::InstancesFromArgs(argc, argv, 10);

  std::cout << "Extension: vertex-labeled queries (h=2)\n\n";
  for (const char* dataset : {"imdb_like", "watdiv_like"}) {
    auto g = graph::MakeDataset(dataset);
    if (!g.ok()) return 1;
    for (double p : {0.0, 0.5}) {
      query::WorkloadOptions options;
      options.instances_per_template = instances;
      options.seed = 0xE02;
      options.vertex_label_probability = p;
      auto wl = query::GenerateWorkload(
          *g, bench::SuiteByName("acyclic"), options);
      if (!wl.ok()) return 1;
      engine::EstimationEngine engine(*g);
      auto result =
          bench::RunOptimisticWithEngine(engine, OptimisticCeg::kCegO, *wl);
      harness::PrintSuiteResult(
          std::cout,
          std::string(dataset) + " / acyclic, vertex-label p=" +
              util::TablePrinter::Num(p),
          result);
    }
  }
  return 0;
}
