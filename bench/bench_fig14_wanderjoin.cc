// Reproduces Figure 14: max-hop-max vs the WanderJoin sampling estimator
// at sampling ratios {0.01%, 0.1%, 0.25%, 0.5%, 0.75%}, with average
// estimation times (§6.5). Expected shape: WJ accuracy improves with the
// ratio and eventually beats max-hop-max in mean accuracy, but at one to
// two orders of magnitude higher estimation time on the larger datasets
// (max-hop-max's latency is data-size independent; WJ's grows).
#include <iostream>
#include <memory>

#include "bench_common.h"
#include "engine/engine.h"
#include "estimators/optimistic.h"
#include "estimators/wander_join.h"
#include "harness/experiment.h"

namespace {

using namespace cegraph;

/// WJ as evaluated in §6.5: five independent runs, averaged. (The paper
/// averages per-run results; averaging the estimates keeps a query with
/// one failed walk-set from degenerating to a 0 estimate.)
class AveragedWanderJoin : public CardinalityEstimator {
 public:
  AveragedWanderJoin(const graph::Graph& g, double ratio) {
    for (uint64_t seed = 1; seed <= 5; ++seed) {
      WanderJoinOptions options;
      options.sampling_ratio = ratio;
      options.min_samples = 2;
      options.seed = 0xF14 + seed;
      runs_.push_back(std::make_unique<WanderJoinEstimator>(g, options));
    }
    name_ = runs_[0]->name();
  }

  std::string name() const override { return name_; }

  util::StatusOr<double> Estimate(const query::QueryGraph& q) const override {
    double total = 0;
    for (const auto& run : runs_) {
      auto est = run->Estimate(q);
      if (!est.ok()) return est.status();
      total += *est;
    }
    return total / static_cast<double>(runs_.size());
  }

 private:
  std::vector<std::unique_ptr<WanderJoinEstimator>> runs_;
  std::string name_;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace cegraph;
  const int instances = bench::InstancesFromArgs(argc, argv, 8);

  struct Panel {
    const char* dataset;
    const char* suite;
  };
  const Panel panels[] = {{"imdb_like", "job"},
                          {"dblp_like", "acyclic"},
                          {"hetionet_like", "acyclic"},
                          {"epinions_like", "acyclic"},
                          {"yago_like", "gcare-acyclic"}};

  std::cout << "Figure 14: max-hop-max vs WanderJoin at sampling ratios "
               "{1%,5%,10%,25%,50%}\n(paper ratios 0.01%-0.75% rescaled "
               "for the ~500x smaller stand-in datasets; see DESIGN.md "
               "S3)\n\n";
  for (const Panel& panel : panels) {
    auto dw = bench::MakeDatasetWorkload(panel.dataset, panel.suite,
                                         instances, 0xF14);
    auto acyclic = query::FilterAcyclic(dw.workload);

    // This figure is a *latency* comparison, so max-hop-max runs uncached
    // (every Estimate pays its own CEG build, as deployed estimators
    // would per query) — the engine only contributes the shared Markov
    // table. Warm that table so timings reflect estimation cost, not
    // one-time statistics collection (the paper's Markov tables are
    // precomputed).
    engine::EstimationEngine engine(dw.graph);
    bench::MaybeLoadSnapshot(engine, panel.dataset);
    OptimisticEstimator mhm(engine.context().markov(), OptimisticSpec{});
    for (const auto& wq : acyclic) (void)mhm.Estimate(wq.query);

    // Sampling-ratio substitution (DESIGN.md §3): our stand-in datasets
    // are two to three orders of magnitude smaller than the paper's, so
    // the paper's ratios {0.01%..0.75%} are rescaled to keep the absolute
    // number of walks per query comparable. The analysis — at which ratio
    // does WJ overtake max-hop-max, and at what time cost — is unchanged.
    std::vector<std::unique_ptr<AveragedWanderJoin>> wjs;
    std::vector<const CardinalityEstimator*> estimators = {&mhm};
    for (double ratio : {0.01, 0.05, 0.10, 0.25, 0.50}) {
      wjs.push_back(std::make_unique<AveragedWanderJoin>(dw.graph, ratio));
      estimators.push_back(wjs.back().get());
    }
    // Serial runner: the avg-ms column is this figure's point, and serial
    // execution keeps it free of multi-thread scheduler noise.
    harness::RunnerOptions serial;
    serial.num_threads = 1;
    auto result =
        harness::WorkloadRunner(serial).RunSuite(estimators, acyclic);
    harness::PrintSuiteResult(
        std::cout, std::string(panel.dataset) + " / " + panel.suite, result);
  }
  return 0;
}
