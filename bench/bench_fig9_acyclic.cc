// Reproduces Figure 9: the 9 optimistic estimators plus the P* oracle on
// CEG_O over the acyclic workloads, one panel per dataset (h = 3, §6.2.1).
// Expected shape (EXPERIMENTS.md): max-aggr beats avg-aggr beats min-aggr
// everywhere; max-hop ~= all-hops >= min-hop; estimators mostly
// *under*estimate (negative signed log q-errors).
#include <iostream>

#include "bench_common.h"
#include "engine/engine.h"
#include "harness/experiment.h"

int main(int argc, char** argv) {
  using namespace cegraph;
  const int instances = bench::InstancesFromArgs(argc, argv, 12);

  struct Panel {
    const char* dataset;
    const char* suite;
  };
  const Panel panels[] = {
      {"imdb_like", "job"},          {"yago_like", "gcare-acyclic"},
      {"dblp_like", "acyclic"},      {"watdiv_like", "acyclic"},
      {"hetionet_like", "acyclic"},  {"epinions_like", "acyclic"},
  };

  std::cout << "Figure 9: optimistic estimators on CEG_O, acyclic "
               "workloads (h=3)\n\n";
  for (const Panel& panel : panels) {
    auto dw = bench::MakeDatasetWorkload(panel.dataset, panel.suite,
                                         instances, 0xF19);
    auto acyclic = query::FilterAcyclic(dw.workload);
    engine::ContextOptions options;
    options.markov_h = 3;
    engine::EstimationEngine engine(dw.graph, options);
    bench::MaybeLoadSnapshot(engine, panel.dataset);
    auto result =
        bench::RunOptimisticWithEngine(engine, OptimisticCeg::kCegO, acyclic);
    harness::PrintSuiteResult(
        std::cout,
        std::string(panel.dataset) + " / " + panel.suite, result);
  }
  return 0;
}
