// Micro-benchmarks (google-benchmark): per-operation costs of the core
// library — Markov-table lookups, CEG_O construction, estimate extraction,
// MOLP Dijkstra, exact counting, and WanderJoin walks. These back the
// paper's claim that summary-based estimation latency is independent of
// data size (§6.5), in contrast to sampling.
//
// The engine-layer benchmarks at the bottom assert two EstimationEngine
// invariants while timing them:
//   - the 9-optimistic suite performs exactly one CEG build per
//     (query class, CEG kind), observed through CegCache counters;
//   - the parallel WorkloadRunner produces results identical to the serial
//     path (timing fields aside), while using all cores;
//   - a suite started from a summary snapshot (LoadSnapshot) produces
//     results identical to a cold run while skipping statistics
//     construction (compare BM_SuiteColdStart vs BM_SuiteSnapshotStart).
#include <benchmark/benchmark.h>

#include <cmath>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.h"
#include "estimators/optimistic.h"
#include "estimators/pessimistic.h"
#include "estimators/wander_join.h"
#include "graph/datasets.h"
#include "harness/workload_runner.h"
#include "matching/matcher.h"
#include "query/workload.h"
#include "stats/markov_table.h"

namespace {

using namespace cegraph;

struct Fixture {
  graph::Graph graph;
  query::QueryGraph query;
  std::vector<query::WorkloadQuery> workload;

  static Fixture& Get() {
    static Fixture& instance = *new Fixture(Make());
    return instance;
  }

  static Fixture Make() {
    auto g = graph::MakeDataset("epinions_like");
    if (!g.ok()) std::abort();
    query::WorkloadOptions options;
    options.instances_per_template = 1;
    options.seed = 0xBEEF;
    auto wl = query::GenerateWorkload(
        *g, {{"cat6", query::CaterpillarShape(6, 4)}}, options);
    if (!wl.ok()) std::abort();
    query::WorkloadOptions suite_options;
    suite_options.instances_per_template = 4;
    suite_options.seed = 0xBEEF;
    auto suite_wl =
        query::GenerateWorkload(*g, query::AcyclicTemplates(), suite_options);
    if (!suite_wl.ok()) std::abort();
    return {std::move(*g), (*wl)[0].query, std::move(*suite_wl)};
  }
};

void BM_MarkovTableColdBuild(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  for (auto _ : state) {
    stats::MarkovTable markov(f.graph, 2);
    OptimisticEstimator est(markov, OptimisticSpec{});
    benchmark::DoNotOptimize(est.Estimate(f.query));
  }
}
BENCHMARK(BM_MarkovTableColdBuild);

void BM_OptimisticEstimateWarm(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  stats::MarkovTable markov(f.graph, 2);
  OptimisticEstimator est(markov, OptimisticSpec{});
  (void)est.Estimate(f.query);  // warm the table
  for (auto _ : state) {
    benchmark::DoNotOptimize(est.Estimate(f.query));
  }
}
BENCHMARK(BM_OptimisticEstimateWarm);

void BM_CegOBuild(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  stats::MarkovTable markov(f.graph, 2);
  OptimisticEstimator est(markov, OptimisticSpec{});
  (void)est.Estimate(f.query);
  for (auto _ : state) {
    benchmark::DoNotOptimize(est.BuildCeg(f.query));
  }
}
BENCHMARK(BM_CegOBuild);

void BM_MolpEstimate(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  stats::StatsCatalog catalog(f.graph);
  MolpEstimator molp(catalog, /*include_two_joins=*/false);
  (void)molp.Estimate(f.query);
  for (auto _ : state) {
    benchmark::DoNotOptimize(molp.Estimate(f.query));
  }
}
BENCHMARK(BM_MolpEstimate);

void BM_ExactCount(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  matching::Matcher matcher(f.graph);
  for (auto _ : state) {
    benchmark::DoNotOptimize(matcher.Count(f.query));
  }
}
BENCHMARK(BM_ExactCount);

void BM_WanderJoin(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  WanderJoinOptions options;
  options.sampling_ratio =
      static_cast<double>(state.range(0)) / 10000.0;
  WanderJoinEstimator wj(f.graph, options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(wj.Estimate(f.query));
  }
}
BENCHMARK(BM_WanderJoin)->Arg(1)->Arg(25)->Arg(75);

// --- Engine layer -----------------------------------------------------------

/// The 9 optimistic estimators as registry instances sharing the engine's
/// CegCache: 9 estimates per query for one CEG build. After every
/// iteration the cache counters must show exactly one build (miss) per
/// (query class, CEG kind) — the invariant the CegCache exists for.
void BM_OptimisticSuiteSharedCeg(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  engine::EstimationEngine engine(f.graph);
  (void)engine.context().markov().num_entries();
  std::vector<std::string> names;
  for (const auto& spec : AllOptimisticSpecs()) names.push_back(SpecName(spec));
  auto estimators = engine.Estimators(names);
  if (!estimators.ok()) {
    state.SkipWithError("registry resolution failed");
    return;
  }
  harness::RunnerOptions serial;
  serial.num_threads = 1;
  harness::WorkloadRunner runner(serial);
  for (auto _ : state) {
    engine.ceg_cache().Clear();
    auto result = runner.RunSuite(*estimators, f.workload);
    benchmark::DoNotOptimize(result);
    const uint64_t builds = engine.ceg_cache().misses();
    if (builds > f.workload.size()) {
      state.SkipWithError("CegCache rebuilt a CEG for a known query class");
      return;
    }
    state.counters["ceg_builds"] = static_cast<double>(builds);
    state.counters["queries"] = static_cast<double>(f.workload.size());
    state.counters["builds_per_query"] =
        static_cast<double>(builds) / static_cast<double>(f.workload.size());
  }
}
BENCHMARK(BM_OptimisticSuiteSharedCeg)->Unit(benchmark::kMillisecond);

/// The same 9 estimators constructed the seed way — each Estimate() runs
/// its own BuildCegO, i.e. 9 builds per query instead of 1.
void BM_OptimisticSuiteUncached(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  stats::MarkovTable markov(f.graph, 2);
  (void)markov.num_entries();
  std::vector<std::unique_ptr<OptimisticEstimator>> owned;
  std::vector<const CardinalityEstimator*> estimators;
  for (const auto& spec : AllOptimisticSpecs()) {
    owned.push_back(std::make_unique<OptimisticEstimator>(markov, spec));
    estimators.push_back(owned.back().get());
  }
  harness::RunnerOptions serial;
  serial.num_threads = 1;
  harness::WorkloadRunner runner(serial);
  for (auto _ : state) {
    auto result = runner.RunSuite(estimators, f.workload);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_OptimisticSuiteUncached)->Unit(benchmark::kMillisecond);

bool SameSuiteModuloTiming(const harness::SuiteResult& a,
                           const harness::SuiteResult& b) {
  if (a.queries_used != b.queries_used ||
      a.queries_dropped != b.queries_dropped ||
      a.reports.size() != b.reports.size()) {
    return false;
  }
  for (size_t i = 0; i < a.reports.size(); ++i) {
    const auto& ra = a.reports[i];
    const auto& rb = b.reports[i];
    const auto& sa = ra.signed_log_qerror;
    const auto& sb = rb.signed_log_qerror;
    if (ra.name != rb.name || ra.failures != rb.failures ||
        sa.count != sb.count || sa.min != sb.min || sa.max != sb.max ||
        sa.p25 != sb.p25 || sa.median != sb.median || sa.p75 != sb.p75 ||
        sa.mean != sb.mean || sa.trimmed_mean != sb.trimmed_mean) {
      return false;
    }
  }
  return true;
}

/// Serial vs parallel WorkloadRunner over the same estimator suite. Run
/// with `--benchmark_filter=WorkloadSuite` and compare wall times: on a
/// 4+ core machine the parallel variant is expected to be >= 2x faster.
/// Both variants also cross-check result equality against a reference
/// serial run (aborting the benchmark on any mismatch).
void RunWorkloadSuite(benchmark::State& state, int num_threads) {
  Fixture& f = Fixture::Get();
  engine::EstimationEngine engine(f.graph);
  auto estimators = engine.Estimators({"max-hop-max", "all-hops-avg",
                                       "min-hop-min", "molp", "cs"});
  if (!estimators.ok()) {
    state.SkipWithError("registry resolution failed");
    return;
  }
  harness::RunnerOptions serial;
  serial.num_threads = 1;
  const harness::SuiteResult reference =
      harness::WorkloadRunner(serial).RunSuite(*estimators, f.workload);

  harness::RunnerOptions options;
  options.num_threads = num_threads;
  harness::WorkloadRunner runner(options);
  for (auto _ : state) {
    auto result = runner.RunSuite(*estimators, f.workload);
    if (!SameSuiteModuloTiming(result, reference)) {
      state.SkipWithError("parallel result differs from serial result");
      return;
    }
    benchmark::DoNotOptimize(result);
  }
  state.counters["threads"] =
      static_cast<double>(harness::WorkloadRunner(options).ResolvedThreads());
}

void BM_WorkloadSuiteSerial(benchmark::State& state) {
  RunWorkloadSuite(state, 1);
}
BENCHMARK(BM_WorkloadSuiteSerial)->Unit(benchmark::kMillisecond);

void BM_WorkloadSuiteParallel(benchmark::State& state) {
  RunWorkloadSuite(state, 0);  // all cores
}
BENCHMARK(BM_WorkloadSuiteParallel)->Unit(benchmark::kMillisecond);

// --- Snapshot layer ---------------------------------------------------------

const std::vector<std::string>& SnapshotSuiteNames() {
  static const std::vector<std::string>& names =
      *new std::vector<std::string>{"max-hop-max", "all-hops-avg", "molp",
                                    "cs", "sumrdf"};
  return names;
}

/// A summary snapshot of the shared fixture's workload, built once per
/// process (prewarm + save), reused by the cold-start benchmarks below.
struct SnapshotFixture {
  std::string path;

  static SnapshotFixture& Get() {
    static SnapshotFixture& instance = *new SnapshotFixture(Make());
    return instance;
  }

  static SnapshotFixture Make() {
    Fixture& f = Fixture::Get();
    SnapshotFixture s;
    s.path = (std::filesystem::temp_directory_path() /
              "cegraph_bench_micro.snap")
                 .string();
    engine::EstimationContext context(f.graph);
    context.Prewarm(f.workload);
    if (!context.SaveSnapshot(s.path).ok()) std::abort();
    return s;
  }
};

harness::SuiteResult RunSnapshotSuite(engine::EstimationEngine& engine) {
  auto estimators = engine.Estimators(SnapshotSuiteNames());
  if (!estimators.ok()) std::abort();
  harness::RunnerOptions serial;
  serial.num_threads = 1;
  return harness::WorkloadRunner(serial).RunSuite(*estimators,
                                                  Fixture::Get().workload);
}

/// Full cold start: fresh context, every statistic recomputed during the
/// suite. This is the per-process price the snapshot layer eliminates.
void BM_SuiteColdStart(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  for (auto _ : state) {
    engine::EstimationEngine engine(f.graph);
    auto result = RunSnapshotSuite(engine);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_SuiteColdStart)->Unit(benchmark::kMillisecond);

/// Snapshot start: fresh context, statistics restored from disk, suite runs
/// entirely on warm caches — and must produce results identical to the
/// cold run (the snapshot contract; SkipWithError on any difference).
void BM_SuiteSnapshotStart(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  SnapshotFixture& snap = SnapshotFixture::Get();
  harness::SuiteResult reference;
  {
    engine::EstimationEngine engine(f.graph);
    reference = RunSnapshotSuite(engine);
  }
  for (auto _ : state) {
    engine::EstimationEngine engine(f.graph);
    if (!engine.context().LoadSnapshot(snap.path).ok()) {
      state.SkipWithError("snapshot load failed");
      return;
    }
    auto result = RunSnapshotSuite(engine);
    if (!SameSuiteModuloTiming(result, reference)) {
      state.SkipWithError("snapshot-started result differs from cold run");
      return;
    }
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_SuiteSnapshotStart)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
