// Micro-benchmarks (google-benchmark): per-operation costs of the core
// library — Markov-table lookups, CEG_O construction, estimate extraction,
// MOLP Dijkstra, exact counting, and WanderJoin walks. These back the
// paper's claim that summary-based estimation latency is independent of
// data size (§6.5), in contrast to sampling.
#include <benchmark/benchmark.h>

#include "estimators/optimistic.h"
#include "estimators/pessimistic.h"
#include "estimators/wander_join.h"
#include "graph/datasets.h"
#include "matching/matcher.h"
#include "query/workload.h"
#include "stats/markov_table.h"

namespace {

using namespace cegraph;

struct Fixture {
  graph::Graph graph;
  query::QueryGraph query;

  static Fixture& Get() {
    static Fixture& instance = *new Fixture(Make());
    return instance;
  }

  static Fixture Make() {
    auto g = graph::MakeDataset("epinions_like");
    if (!g.ok()) std::abort();
    query::WorkloadOptions options;
    options.instances_per_template = 1;
    options.seed = 0xBEEF;
    auto wl = query::GenerateWorkload(
        *g, {{"cat6", query::CaterpillarShape(6, 4)}}, options);
    if (!wl.ok()) std::abort();
    return {std::move(*g), (*wl)[0].query};
  }
};

void BM_MarkovTableColdBuild(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  for (auto _ : state) {
    stats::MarkovTable markov(f.graph, 2);
    OptimisticEstimator est(markov, OptimisticSpec{});
    benchmark::DoNotOptimize(est.Estimate(f.query));
  }
}
BENCHMARK(BM_MarkovTableColdBuild);

void BM_OptimisticEstimateWarm(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  stats::MarkovTable markov(f.graph, 2);
  OptimisticEstimator est(markov, OptimisticSpec{});
  (void)est.Estimate(f.query);  // warm the table
  for (auto _ : state) {
    benchmark::DoNotOptimize(est.Estimate(f.query));
  }
}
BENCHMARK(BM_OptimisticEstimateWarm);

void BM_CegOBuild(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  stats::MarkovTable markov(f.graph, 2);
  OptimisticEstimator est(markov, OptimisticSpec{});
  (void)est.Estimate(f.query);
  for (auto _ : state) {
    benchmark::DoNotOptimize(est.BuildCeg(f.query));
  }
}
BENCHMARK(BM_CegOBuild);

void BM_MolpEstimate(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  stats::StatsCatalog catalog(f.graph);
  MolpEstimator molp(catalog, /*include_two_joins=*/false);
  (void)molp.Estimate(f.query);
  for (auto _ : state) {
    benchmark::DoNotOptimize(molp.Estimate(f.query));
  }
}
BENCHMARK(BM_MolpEstimate);

void BM_ExactCount(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  matching::Matcher matcher(f.graph);
  for (auto _ : state) {
    benchmark::DoNotOptimize(matcher.Count(f.query));
  }
}
BENCHMARK(BM_ExactCount);

void BM_WanderJoin(benchmark::State& state) {
  Fixture& f = Fixture::Get();
  WanderJoinOptions options;
  options.sampling_ratio =
      static_cast<double>(state.range(0)) / 10000.0;
  WanderJoinEstimator wj(f.graph, options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(wj.Estimate(f.query));
  }
}
BENCHMARK(BM_WanderJoin)->Arg(1)->Arg(25)->Arg(75);

}  // namespace

BENCHMARK_MAIN();
