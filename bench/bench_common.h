#ifndef CEGRAPH_BENCH_BENCH_COMMON_H_
#define CEGRAPH_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "graph/datasets.h"
#include "query/templates.h"
#include "query/workload.h"

namespace cegraph::bench {

/// The workload suites of §6.1, keyed the way the figures reference them.
inline std::vector<query::QueryTemplate> SuiteByName(
    const std::string& name) {
  if (name == "job") return query::JobLikeTemplates();
  if (name == "acyclic") return query::AcyclicTemplates();
  if (name == "cyclic") return query::CyclicTemplates();
  if (name == "gcare-acyclic") return query::GCareAcyclicTemplates();
  if (name == "gcare-cyclic") return query::GCareCyclicTemplates();
  std::fprintf(stderr, "unknown suite %s\n", name.c_str());
  std::abort();
}

/// Builds the named dataset and instantiates the named workload suite on
/// it. Exits on failure (benches are leaf binaries).
struct DatasetWorkload {
  graph::Graph graph;
  std::vector<query::WorkloadQuery> workload;
};

inline DatasetWorkload MakeDatasetWorkload(const std::string& dataset,
                                           const std::string& suite,
                                           int instances_per_template,
                                           uint64_t seed) {
  auto g = graph::MakeDataset(dataset);
  if (!g.ok()) {
    std::fprintf(stderr, "dataset %s: %s\n", dataset.c_str(),
                 g.status().ToString().c_str());
    std::abort();
  }
  query::WorkloadOptions options;
  options.instances_per_template = instances_per_template;
  options.seed = seed;
  auto wl = query::GenerateWorkload(*g, SuiteByName(suite), options);
  if (!wl.ok()) {
    std::fprintf(stderr, "workload %s on %s: %s\n", suite.c_str(),
                 dataset.c_str(), wl.status().ToString().c_str());
    std::abort();
  }
  return {std::move(*g), std::move(*wl)};
}

/// Benches accept one optional argument scaling the per-template instance
/// count (e.g. `bench_fig9_acyclic 5` for a quick run).
inline int InstancesFromArgs(int argc, char** argv, int default_instances) {
  if (argc > 1) {
    const int v = std::atoi(argv[1]);
    if (v > 0) return v;
  }
  return default_instances;
}

}  // namespace cegraph::bench

#endif  // CEGRAPH_BENCH_BENCH_COMMON_H_
