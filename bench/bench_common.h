#ifndef CEGRAPH_BENCH_BENCH_COMMON_H_
#define CEGRAPH_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "engine/engine.h"
#include "graph/datasets.h"
#include "harness/workload_runner.h"
#include "query/templates.h"
#include "query/workload.h"

namespace cegraph::bench {

/// The workload suites of §6.1, keyed the way the figures reference them.
inline std::vector<query::QueryTemplate> SuiteByName(
    const std::string& name) {
  if (name == "job") return query::JobLikeTemplates();
  if (name == "acyclic") return query::AcyclicTemplates();
  if (name == "cyclic") return query::CyclicTemplates();
  if (name == "gcare-acyclic") return query::GCareAcyclicTemplates();
  if (name == "gcare-cyclic") return query::GCareCyclicTemplates();
  std::fprintf(stderr, "unknown suite %s\n", name.c_str());
  std::abort();
}

/// Builds the named dataset and instantiates the named workload suite on
/// it. Exits on failure (benches are leaf binaries).
struct DatasetWorkload {
  graph::Graph graph;
  std::vector<query::WorkloadQuery> workload;
};

inline DatasetWorkload MakeDatasetWorkload(const std::string& dataset,
                                           const std::string& suite,
                                           int instances_per_template,
                                           uint64_t seed) {
  auto g = graph::MakeDataset(dataset);
  if (!g.ok()) {
    std::fprintf(stderr, "dataset %s: %s\n", dataset.c_str(),
                 g.status().ToString().c_str());
    std::abort();
  }
  query::WorkloadOptions options;
  options.instances_per_template = instances_per_template;
  options.seed = seed;
  auto wl = query::GenerateWorkload(*g, SuiteByName(suite), options);
  if (!wl.ok()) {
    std::fprintf(stderr, "workload %s on %s: %s\n", suite.c_str(),
                 dataset.c_str(), wl.status().ToString().c_str());
    std::abort();
  }
  return {std::move(*g), std::move(*wl)};
}

/// Runs the 9-optimistic-estimators + P* suite through the engine's shared
/// CEG cache: one BuildCeg per (query class, CEG kind) across the whole
/// bench, however many panels reuse the engine.
inline harness::SuiteResult RunOptimisticWithEngine(
    const engine::EstimationEngine& engine, OptimisticCeg kind,
    const std::vector<query::WorkloadQuery>& workload,
    size_t pstar_max_paths = 200'000) {
  const stats::CycleClosingRates* rates =
      kind == OptimisticCeg::kCegOcr ? &engine.context().cycle_closing_rates()
                                     : nullptr;
  return harness::WorkloadRunner().RunOptimisticSuite(
      engine.ceg_cache(), engine.context().markov(), rates, kind, workload,
      pstar_max_paths);
}

/// Registry-resolved estimator suite. Exits on unknown names (benches are
/// leaf binaries).
inline harness::SuiteResult RunNamedSuite(
    const engine::EstimationEngine& engine,
    const std::vector<std::string>& names,
    const std::vector<query::WorkloadQuery>& workload,
    bool drop_on_any_failure = true) {
  auto result =
      harness::RunSuiteByName(engine, names, workload, drop_on_any_failure);
  if (!result.ok()) {
    std::fprintf(stderr, "suite: %s\n", result.status().ToString().c_str());
    std::abort();
  }
  return std::move(result).value();
}

/// Benches accept one optional argument scaling the per-template instance
/// count (e.g. `bench_fig9_acyclic 5` for a quick run).
inline int InstancesFromArgs(int argc, char** argv, int default_instances) {
  if (argc > 1) {
    const int v = std::atoi(argv[1]);
    if (v > 0) return v;
  }
  return default_instances;
}

}  // namespace cegraph::bench

#endif  // CEGRAPH_BENCH_BENCH_COMMON_H_
