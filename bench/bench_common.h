#ifndef CEGRAPH_BENCH_BENCH_COMMON_H_
#define CEGRAPH_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "engine/engine.h"
#include "graph/datasets.h"
#include "harness/workload_runner.h"
#include "query/templates.h"
#include "query/workload.h"

namespace cegraph::bench {

/// The workload suites of §6.1, keyed the way the figures reference them
/// (the mapping itself lives in query::SuiteTemplatesByName; this wrapper
/// only adds the benches' exit-on-error policy).
inline std::vector<query::QueryTemplate> SuiteByName(
    const std::string& name) {
  auto templates = query::SuiteTemplatesByName(name);
  if (!templates.ok()) {
    std::fprintf(stderr, "%s\n", templates.status().ToString().c_str());
    std::abort();
  }
  return std::move(templates).value();
}

/// Builds the named dataset and instantiates the named workload suite on
/// it. Exits on failure (benches are leaf binaries).
struct DatasetWorkload {
  graph::Graph graph;
  std::vector<query::WorkloadQuery> workload;
};

inline DatasetWorkload MakeDatasetWorkload(const std::string& dataset,
                                           const std::string& suite,
                                           int instances_per_template,
                                           uint64_t seed) {
  auto g = graph::MakeDataset(dataset);
  if (!g.ok()) {
    std::fprintf(stderr, "dataset %s: %s\n", dataset.c_str(),
                 g.status().ToString().c_str());
    std::abort();
  }
  query::WorkloadOptions options;
  options.instances_per_template = instances_per_template;
  options.seed = seed;
  auto wl = query::GenerateWorkload(*g, SuiteByName(suite), options);
  if (!wl.ok()) {
    std::fprintf(stderr, "workload %s on %s: %s\n", suite.c_str(),
                 dataset.c_str(), wl.status().ToString().c_str());
    std::abort();
  }
  return {std::move(*g), std::move(*wl)};
}

/// Loads a summary snapshot into `engine` when one is configured via the
/// environment, so benches skip statistics recomputation on repeat runs:
///   CEGRAPH_SNAPSHOT     — one snapshot file (single-dataset benches)
///   CEGRAPH_SNAPSHOT_DIR — a directory of `<dataset>.snap` files, one per
///                          panel (multi-dataset figure benches)
/// A missing file or fingerprint mismatch is reported and ignored — the
/// bench then simply runs cold, exactly as before.
inline void MaybeLoadSnapshot(const engine::EstimationEngine& engine,
                              const std::string& dataset) {
  const char* file = std::getenv("CEGRAPH_SNAPSHOT");
  const char* dir = std::getenv("CEGRAPH_SNAPSHOT_DIR");
  std::string path;
  if (file != nullptr && *file != '\0') {
    path = file;
  } else if (dir != nullptr && *dir != '\0') {
    path = std::string(dir) + "/" + dataset + ".snap";
  } else {
    return;
  }
  auto loaded = engine.context().LoadSnapshot(path);
  std::fprintf(stderr, "[snapshot] %s: %s\n", path.c_str(),
               loaded.ok() ? "loaded" : loaded.ToString().c_str());
}

/// Runs the 9-optimistic-estimators + P* suite through the engine's shared
/// CEG cache: one BuildCeg per (query class, CEG kind) across the whole
/// bench, however many panels reuse the engine.
inline harness::SuiteResult RunOptimisticWithEngine(
    const engine::EstimationEngine& engine, OptimisticCeg kind,
    const std::vector<query::WorkloadQuery>& workload,
    size_t pstar_max_paths = 200'000) {
  const stats::CycleClosingRates* rates =
      kind == OptimisticCeg::kCegOcr ? &engine.context().cycle_closing_rates()
                                     : nullptr;
  return harness::WorkloadRunner().RunOptimisticSuite(
      engine.ceg_cache(), engine.context().markov(), rates, kind, workload,
      pstar_max_paths);
}

/// Registry-resolved estimator suite. Exits on unknown names (benches are
/// leaf binaries).
inline harness::SuiteResult RunNamedSuite(
    const engine::EstimationEngine& engine,
    const std::vector<std::string>& names,
    const std::vector<query::WorkloadQuery>& workload,
    bool drop_on_any_failure = true) {
  auto result =
      harness::RunSuiteByName(engine, names, workload, drop_on_any_failure);
  if (!result.ok()) {
    std::fprintf(stderr, "suite: %s\n", result.status().ToString().c_str());
    std::abort();
  }
  return std::move(result).value();
}

/// Benches accept one optional argument scaling the per-template instance
/// count (e.g. `bench_fig9_acyclic 5` for a quick run).
inline int InstancesFromArgs(int argc, char** argv, int default_instances) {
  if (argc > 1) {
    const int v = std::atoi(argv[1]);
    if (v > 0) return v;
  }
  return default_instances;
}

}  // namespace cegraph::bench

#endif  // CEGRAPH_BENCH_BENCH_COMMON_H_
