// cegraph_estimate: command-line cardinality estimation for ad-hoc graphs
// and queries.
//
// Usage:
//   cegraph_estimate --dataset imdb_like --query "(a)-[3]->(b); (b)-[5]->(c)"
//   cegraph_estimate --graph my_graph.txt --query "..." [--h 3] [--truth]
//                    [--snapshot stats.snap]
//
// --snapshot loads a summary snapshot built by `cegraph_stats build` into
// the engine before estimating, so repeated invocations skip statistics
// recomputation (the snapshot must match the graph's fingerprint).
//
// The graph file format is the edge-list text format of
// graph/graph_io.h; the query syntax is query/parser.h's Cypher-like
// pattern language. Prints the 9 optimistic estimators, the MOLP and CBS
// bounds and (with --truth) the exact cardinality.
#include <cstring>
#include <iostream>
#include <optional>

#include "engine/engine.h"
#include "estimators/optimistic.h"
#include "graph/datasets.h"
#include "graph/graph_io.h"
#include "matching/matcher.h"
#include "query/parser.h"
#include "util/table_printer.h"

namespace {

int Usage() {
  std::cerr << "usage: cegraph_estimate (--dataset NAME | --graph FILE) "
               "--query PATTERN [--h N] [--truth] [--snapshot FILE]\n"
            << "  datasets: ";
  for (const auto& name : cegraph::graph::DatasetNames()) {
    std::cerr << name << " ";
  }
  std::cerr << "\n  query example: \"(a)-[3]->(b); (b)<-[5]-(c)\"\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cegraph;

  std::optional<std::string> dataset, graph_file, query_text, snapshot;
  int h = 2;
  bool want_truth = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::optional<std::string> {
      if (i + 1 >= argc) return std::nullopt;
      return std::string(argv[++i]);
    };
    if (arg == "--dataset") {
      dataset = next();
    } else if (arg == "--graph") {
      graph_file = next();
    } else if (arg == "--query") {
      query_text = next();
    } else if (arg == "--h") {
      auto v = next();
      if (v) h = std::atoi(v->c_str());
    } else if (arg == "--truth") {
      want_truth = true;
    } else if (arg == "--snapshot") {
      snapshot = next();
    } else {
      return Usage();
    }
  }
  if ((!dataset && !graph_file) || !query_text || h < 1) return Usage();

  util::StatusOr<graph::Graph> g =
      dataset ? graph::MakeDataset(*dataset) : graph::LoadGraph(*graph_file);
  if (!g.ok()) {
    std::cerr << "graph: " << g.status() << "\n";
    return 1;
  }
  auto q = query::ParseQuery(*query_text);
  if (!q.ok()) {
    std::cerr << "query: " << q.status() << "\n";
    return 1;
  }
  if (!q->IsConnected()) {
    std::cerr << "query: pattern must be connected\n";
    return 1;
  }
  for (const auto& e : q->edges()) {
    if (e.label >= g->num_labels()) {
      std::cerr << "query: label " << e.label << " out of range (graph has "
                << g->num_labels() << " labels)\n";
      return 1;
    }
  }

  std::cout << "graph: " << g->num_vertices() << " vertices, "
            << g->num_edges() << " edges, " << g->num_labels()
            << " labels\nquery: " << query::FormatQuery(*q) << "\n\n";

  util::TablePrinter table({"estimator", "estimate"});
  engine::ContextOptions context_options;
  context_options.markov_h = h;
  engine::EstimationEngine engine(*g, context_options);
  if (snapshot) {
    auto loaded = engine.context().LoadSnapshot(*snapshot);
    if (!loaded.ok()) {
      // Never fall back to a silent cold build: a requested snapshot that
      // cannot be used is an operational error the caller must see, and a
      // fingerprint mismatch means the snapshot belongs to a different
      // graph (or graph state) entirely.
      if (loaded.code() == util::StatusCode::kFailedPrecondition) {
        std::cerr << "snapshot: fingerprint mismatch — " << *snapshot
                  << " was built for a different graph or graph state; "
                     "rebuild it with `cegraph_stats build` (or refresh it "
                     "with `cegraph_stats refresh`)\n  detail: "
                  << loaded << "\n";
      } else {
        std::cerr << "snapshot: " << loaded << "\n";
      }
      return 1;
    }
    std::cout << "loaded snapshot " << *snapshot << "\n";
  }
  std::vector<std::string> names;
  for (const auto& spec : AllOptimisticSpecs()) names.push_back(SpecName(spec));
  names.push_back("molp+2j");
  names.push_back("cbs");
  for (const std::string& name : names) {
    auto estimator = engine.Estimator(name);
    if (!estimator.ok()) {
      std::cerr << "registry: " << estimator.status() << "\n";
      return 1;
    }
    auto est = (*estimator)->Estimate(*q);
    table.AddRow({name, est.ok() ? util::TablePrinter::Num(*est)
                                 : est.status().ToString()});
  }
  if (want_truth) {
    matching::Matcher matcher(*g);
    auto truth = matcher.Count(*q);
    table.AddRow({"exact", truth.ok() ? util::TablePrinter::Num(*truth)
                                      : truth.status().ToString()});
  }
  table.Print(std::cout);
  return 0;
}
