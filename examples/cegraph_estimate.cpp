// cegraph_estimate: command-line cardinality estimation for ad-hoc graphs
// and queries.
//
// Usage:
//   cegraph_estimate --dataset imdb_like --query "(a)-[3]->(b); (b)-[5]->(c)"
//   cegraph_estimate --graph my_graph.txt --query "..." [--h 3] [--truth]
//                    [--snapshot stats.snap]
//   cegraph_estimate --dataset imdb_like --workload queries.txt
//                    [--estimators a,b,c] [--quiet]
//
// --snapshot loads a summary snapshot built by `cegraph_stats build` into
// the engine before estimating, so repeated invocations skip statistics
// recomputation (the snapshot must match the graph's fingerprint).
//
// --workload switches to batch mode (parity with `cegraph_stats
// build/verify --workload`): every query of a saved workload file
// (query/workload_io.h format, ground truth included) runs through the
// estimator suite, printing per-query estimates and q-errors plus a
// per-estimator aggregate (mean/median/max q-error, mean latency).
//
// The graph file format is the edge-list text format of
// graph/graph_io.h; the query syntax is query/parser.h's Cypher-like
// pattern language. Prints the 9 optimistic estimators, the MOLP and CBS
// bounds and (with --truth) the exact cardinality.
#include <algorithm>
#include <chrono>
#include <cstring>
#include <iostream>
#include <optional>
#include <vector>

#include "engine/engine.h"
#include "estimators/optimistic.h"
#include "graph/datasets.h"
#include "graph/graph_io.h"
#include "harness/qerror.h"
#include "matching/matcher.h"
#include "query/parser.h"
#include "query/workload_io.h"
#include "util/strings.h"
#include "util/table_printer.h"

namespace {

int Usage() {
  std::cerr << "usage: cegraph_estimate (--dataset NAME | --graph FILE) "
               "(--query PATTERN | --workload FILE) [--h N] [--truth]\n"
               "       [--snapshot FILE] [--estimators a,b,c] [--quiet]\n"
            << "  datasets: ";
  for (const auto& name : cegraph::graph::DatasetNames()) {
    std::cerr << name << " ";
  }
  std::cerr << "\n  query example: \"(a)-[3]->(b); (b)<-[5]-(c)\"\n";
  return 2;
}

/// Batch mode: the whole workload through the suite, per-query lines plus
/// a per-estimator aggregate table.
int RunWorkload(const cegraph::engine::EstimationEngine& engine,
                const std::vector<cegraph::query::WorkloadQuery>& workload,
                const std::vector<std::string>& names, bool quiet) {
  using namespace cegraph;
  auto estimators = engine.Estimators(names);
  if (!estimators.ok()) {
    std::cerr << "registry: " << estimators.status() << "\n";
    return 1;
  }

  struct Accum {
    std::vector<double> qerrors;
    size_t failures = 0;
    double seconds = 0;
  };
  std::vector<Accum> accums(names.size());
  for (size_t qi = 0; qi < workload.size(); ++qi) {
    const query::WorkloadQuery& wq = workload[qi];
    if (!quiet) {
      std::cout << "query " << qi << " [" << wq.template_name
                << "] truth=" << wq.true_cardinality << "\n";
    }
    for (size_t i = 0; i < estimators->size(); ++i) {
      const auto t0 = std::chrono::steady_clock::now();
      auto est = (*estimators)[i]->Estimate(wq.query);
      accums[i].seconds +=
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        t0)
              .count();
      if (!est.ok()) {
        ++accums[i].failures;
        if (!quiet) {
          std::cout << "  " << names[i] << ": " << est.status() << "\n";
        }
        continue;
      }
      const double q = harness::QError(*est, wq.true_cardinality);
      accums[i].qerrors.push_back(q);
      if (!quiet) {
        std::cout << "  " << names[i] << ": "
                  << util::TablePrinter::Num(*est)
                  << " (q-error " << util::TablePrinter::Num(q) << ")\n";
      }
    }
  }

  std::cout << "\naggregate over " << workload.size() << " queries:\n";
  util::TablePrinter table({"estimator", "ok", "failures", "mean q-err",
                            "median q-err", "max q-err", "avg ms"});
  for (size_t i = 0; i < names.size(); ++i) {
    Accum& accum = accums[i];
    std::sort(accum.qerrors.begin(), accum.qerrors.end());
    const size_t n = accum.qerrors.size();
    double mean = 0;
    for (const double q : accum.qerrors) mean += q;
    if (n > 0) mean /= static_cast<double>(n);
    const size_t attempts = n + accum.failures;
    table.AddRow(
        {names[i], std::to_string(n), std::to_string(accum.failures),
         n > 0 ? util::TablePrinter::Num(mean) : "-",
         n > 0 ? util::TablePrinter::Num(accum.qerrors[n / 2]) : "-",
         n > 0 ? util::TablePrinter::Num(accum.qerrors.back()) : "-",
         attempts > 0
             ? util::TablePrinter::Num(1000.0 * accum.seconds /
                                       static_cast<double>(attempts))
             : "-"});
  }
  table.Print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cegraph;

  std::optional<std::string> dataset, graph_file, query_text, snapshot;
  std::optional<std::string> workload_file, estimators_csv;
  int h = 2;
  bool want_truth = false;
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::optional<std::string> {
      if (i + 1 >= argc) return std::nullopt;
      return std::string(argv[++i]);
    };
    if (arg == "--dataset") {
      dataset = next();
    } else if (arg == "--graph") {
      graph_file = next();
    } else if (arg == "--query") {
      query_text = next();
    } else if (arg == "--workload") {
      workload_file = next();
    } else if (arg == "--estimators") {
      estimators_csv = next();
    } else if (arg == "--h") {
      auto v = next();
      if (v) h = std::atoi(v->c_str());
    } else if (arg == "--truth") {
      want_truth = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--snapshot") {
      snapshot = next();
    } else {
      return Usage();
    }
  }
  if ((!dataset && !graph_file) || h < 1) return Usage();
  if (query_text.has_value() == workload_file.has_value()) return Usage();

  util::StatusOr<graph::Graph> g =
      dataset ? graph::MakeDataset(*dataset) : graph::LoadGraph(*graph_file);
  if (!g.ok()) {
    std::cerr << "graph: " << g.status() << "\n";
    return 1;
  }
  std::cout << "graph: " << g->num_vertices() << " vertices, "
            << g->num_edges() << " edges, " << g->num_labels()
            << " labels\n";

  engine::ContextOptions context_options;
  context_options.markov_h = h;
  engine::EstimationEngine engine(*g, context_options);
  if (snapshot) {
    auto loaded = engine.context().LoadSnapshot(*snapshot);
    if (!loaded.ok()) {
      // Never fall back to a silent cold build: a requested snapshot that
      // cannot be used is an operational error the caller must see, and a
      // fingerprint mismatch means the snapshot belongs to a different
      // graph (or graph state) entirely.
      if (loaded.code() == util::StatusCode::kFailedPrecondition) {
        std::cerr << "snapshot: fingerprint mismatch — " << *snapshot
                  << " was built for a different graph or graph state; "
                     "rebuild it with `cegraph_stats build` (or refresh it "
                     "with `cegraph_stats refresh`)\n  detail: "
                  << loaded << "\n";
      } else {
        std::cerr << "snapshot: " << loaded << "\n";
      }
      return 1;
    }
    std::cout << "loaded snapshot " << *snapshot << "\n";
  }

  // The estimator suite: an explicit CSV, or the single-query default
  // (9 optimistic + MOLP and CBS bounds).
  std::vector<std::string> names;
  if (estimators_csv) {
    names = util::SplitCsv(*estimators_csv);
  } else {
    for (const auto& spec : AllOptimisticSpecs()) {
      names.push_back(SpecName(spec));
    }
    names.push_back("molp+2j");
    names.push_back("cbs");
  }

  if (workload_file) {
    auto workload = query::LoadWorkload(*workload_file);
    if (!workload.ok()) {
      std::cerr << "workload: " << workload.status() << "\n";
      return 1;
    }
    for (const query::WorkloadQuery& wq : *workload) {
      for (const auto& e : wq.query.edges()) {
        if (e.label >= g->num_labels()) {
          std::cerr << "workload: query label " << e.label
                    << " out of range (graph has " << g->num_labels()
                    << " labels)\n";
          return 1;
        }
      }
    }
    std::cout << "workload: " << workload->size() << " queries from "
              << *workload_file << "\n\n";
    return RunWorkload(engine, *workload, names, quiet);
  }

  auto q = query::ParseQuery(*query_text);
  if (!q.ok()) {
    std::cerr << "query: " << q.status() << "\n";
    return 1;
  }
  if (!q->IsConnected()) {
    std::cerr << "query: pattern must be connected\n";
    return 1;
  }
  for (const auto& e : q->edges()) {
    if (e.label >= g->num_labels()) {
      std::cerr << "query: label " << e.label << " out of range (graph has "
                << g->num_labels() << " labels)\n";
      return 1;
    }
  }
  std::cout << "query: " << query::FormatQuery(*q) << "\n\n";

  util::TablePrinter table({"estimator", "estimate"});
  for (const std::string& name : names) {
    auto estimator = engine.Estimator(name);
    if (!estimator.ok()) {
      std::cerr << "registry: " << estimator.status() << "\n";
      return 1;
    }
    auto est = (*estimator)->Estimate(*q);
    table.AddRow({name, est.ok() ? util::TablePrinter::Num(*est)
                                 : est.status().ToString()});
  }
  if (want_truth) {
    matching::Matcher matcher(*g);
    auto truth = matcher.Count(*q);
    table.AddRow({"exact", truth.ok() ? util::TablePrinter::Num(*truth)
                                      : truth.status().ToString()});
  }
  table.Print(std::cout);
  return 0;
}
