// Estimator tour: every estimator family in the library, side by side, on
// a realistic workload — the paper's Fig. 13/14 cast on one dataset.
//
// Shows per-query estimates from: the best optimistic estimator
// (max-hop-max on CEG_O), the MOLP pessimistic bound (with and without
// 2-join statistics), CBS, AGM, Characteristic Sets, SumRDF and
// WanderJoin, next to the exact cardinality.
#include <iostream>

#include "engine/engine.h"
#include "graph/datasets.h"
#include "query/templates.h"
#include "query/workload.h"
#include "util/table_printer.h"

int main() {
  using namespace cegraph;

  auto g = *graph::MakeDataset("epinions_like");
  std::cout << "Dataset: epinions_like (" << g.num_vertices() << " V, "
            << g.num_edges() << " E, " << g.num_labels() << " labels)\n\n";

  query::WorkloadOptions options;
  options.instances_per_template = 3;
  options.seed = 2024;
  auto workload = *query::GenerateWorkload(
      g,
      {{"path3", query::PathShape(3)},
       {"star3", query::StarShape(3)},
       {"cat5", query::CaterpillarShape(5, 3)}},
      options);

  // One engine replaces the seed's hand-built MarkovTable + StatsCatalog +
  // CharacteristicSets + SummaryGraph + per-estimator constructors: every
  // name below resolves through the EstimatorRegistry against shared
  // statistics.
  engine::ContextOptions context_options;
  context_options.summary_buckets = 48;
  engine::EstimationEngine engine(g, context_options);
  const std::vector<std::string> names = {"max-hop-max", "molp", "molp+2j",
                                          "cbs",         "cs",   "sumrdf",
                                          "wj-10%"};
  auto estimators = engine.Estimators(names);
  if (!estimators.ok()) {
    std::cerr << "registry: " << estimators.status() << "\n";
    return 1;
  }

  std::vector<std::string> headers = {"query", "truth"};
  for (const auto& name : names) headers.push_back(name);
  util::TablePrinter table(std::move(headers));

  int qid = 0;
  for (const auto& wq : workload) {
    std::vector<std::string> row = {
        wq.template_name + "#" + std::to_string(qid++),
        util::TablePrinter::Num(wq.true_cardinality)};
    for (const CardinalityEstimator* estimator : *estimators) {
      auto est = estimator->Estimate(wq.query);
      row.push_back(est.ok() ? util::TablePrinter::Num(*est) : "fail");
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::cout << "\nReading guide: molp/molp+2j/cbs never fall below the "
               "truth column (they are worst-case bounds; molp+2j <= "
               "molp); cs and sumrdf sit far below it; max-hop-max "
               "tracks it closest — the paper's Fig. 13 in miniature.\n";
  return 0;
}
