// Optimizer integration: inject cardinality estimates into a DP join
// optimizer and watch plan quality change (the paper's §6.6 experiment on
// a single query, with the full plan trees printed).
#include <iostream>

#include "engine/engine.h"
#include "graph/datasets.h"
#include "planner/dp_optimizer.h"
#include "planner/executor.h"
#include "query/templates.h"
#include "query/workload.h"

namespace {

using namespace cegraph;

void PrintPlan(const planner::Plan& plan, int node, int indent) {
  const planner::PlanNode& n = plan.nodes[node];
  std::cout << std::string(indent, ' ');
  if (n.left < 0) {
    std::cout << "scan e" << n.scan_edge;
  } else {
    std::cout << "join";
  }
  std::cout << "  (est. " << n.estimated_cardinality << ")\n";
  if (n.left >= 0) {
    PrintPlan(plan, n.left, indent + 2);
    PrintPlan(plan, n.right, indent + 2);
  }
}

void RunWith(const std::string& name, const CardinalityEstimator& estimator,
             const graph::Graph& g, const query::QueryGraph& q) {
  planner::DpOptimizer optimizer(estimator);
  auto plan = optimizer.Optimize(q);
  if (!plan.ok()) {
    std::cout << name << ": optimize failed: " << plan.status() << "\n";
    return;
  }
  planner::Executor executor(g);
  auto run = executor.Execute(q, *plan);
  std::cout << "--- plan under " << name
            << " (estimated cost " << plan->estimated_cost << ") ---\n";
  PrintPlan(*plan, plan->root, 0);
  if (run.ok()) {
    std::cout << "executed: output=" << run->output_cardinality
              << ", intermediate tuples=" << run->total_intermediate_tuples
              << ", wall=" << run->wall_seconds * 1000 << " ms\n\n";
  } else {
    std::cout << "execution failed: " << run.status() << "\n\n";
  }
}

}  // namespace

int main() {
  using namespace cegraph;
  auto g = *graph::MakeDataset("imdb_like");

  query::WorkloadOptions options;
  options.instances_per_template = 1;
  options.seed = 777;
  options.max_cardinality = 1e6;
  auto workload = *query::GenerateWorkload(
      g, {{"job_cat6_d4", query::CaterpillarShape(6, 4)}}, options);
  const query::QueryGraph& q = workload[0].query;
  std::cout << "Query: 6-edge tree on imdb_like, true cardinality "
            << workload[0].true_cardinality << "\n\n";

  engine::EstimationEngine engine(g);
  auto accurate = engine.Estimator("max-hop-max");
  auto magic = engine.Estimator("rdf3x-default");
  if (!accurate.ok() || !magic.ok()) return 1;

  RunWith("rdf3x-default (magic constants)", **magic, g, q);
  RunWith("max-hop-max (CEG_O)", **accurate, g, q);

  std::cout << "Same output rows from both plans, different intermediate "
               "work: that difference is exactly what the paper's Fig. 15 "
               "aggregates over whole workloads.\n";
  return 0;
}
