// Large cycles: why CEG_O overestimates cyclic queries and how CEG_OCR
// repairs it (the paper's §4.3 on a single 4-cycle query).
//
// CEG_O can only price a 4-cycle by composing *path* statistics — it is
// really estimating the 4-path that visits the same labels — and since
// real graphs have far more paths than cycles, it overshoots. CEG_OCR
// replaces the cycle-closing edge's weight with a sampled closing
// probability.
#include <cmath>
#include <iostream>

#include "ceg/ceg_o.h"
#include "ceg/ceg_ocr.h"
#include "engine/engine.h"
#include "estimators/optimistic.h"
#include "graph/datasets.h"
#include "matching/matcher.h"
#include "query/templates.h"
#include "query/workload.h"
#include "util/table_printer.h"

int main() {
  using namespace cegraph;
  auto g = *graph::MakeDataset("hetionet_like");

  query::WorkloadOptions options;
  options.instances_per_template = 1;
  options.seed = 4242;
  auto workload = *query::GenerateWorkload(
      g, {{"cyc4", query::CycleShape(4)}}, options);
  const auto& wq = workload[0];
  std::cout << "4-cycle query on hetionet_like, true cardinality "
            << wq.true_cardinality << "\n\n";

  engine::ContextOptions context_options;
  context_options.markov_h = 3;
  engine::EstimationEngine engine(g, context_options);

  util::TablePrinter table({"CEG", "estimator", "estimate", "q-error"});
  for (const auto kind : {OptimisticCeg::kCegO, OptimisticCeg::kCegOcr}) {
    for (auto aggr : {Aggregator::kMinAggr, Aggregator::kMaxAggr}) {
      OptimisticSpec spec;
      spec.ceg_kind = kind;
      spec.aggregator = aggr;
      auto estimator = engine.Estimator(SpecName(spec));
      if (!estimator.ok()) continue;
      auto est = (*estimator)->Estimate(wq.query);
      if (!est.ok()) continue;
      const double q =
          std::max(wq.true_cardinality / *est, *est / wq.true_cardinality);
      table.AddRow({kind == OptimisticCeg::kCegO ? "CEG_O" : "CEG_OCR",
                    SpecName(spec), util::TablePrinter::Num(*est),
                    util::TablePrinter::Num(q)});
    }
  }
  table.Print(std::cout);

  // Show the rewritten closing edge explicitly (low-level API on the same
  // shared statistics the engine used).
  auto ocr = *ceg::BuildCegOcr(wq.query, engine.context().markov(),
                               engine.context().cycle_closing_rates());
  std::cout << "\nCEG_OCR edges whose weight became a closing "
               "probability:\n";
  for (const auto& e : ocr.ceg.edges()) {
    if (e.label.find("closing-rate") != std::string::npos) {
      std::cout << "  " << e.label << "  weight=" << std::exp2(e.log_weight)
                << "\n";
    }
  }
  std::cout << "\nOn CEG_O even the *minimum* path overestimates; CEG_OCR "
               "prices the closing edge as a probability (< 1), and its "
               "max-weight path becomes the accurate pick again (§6.2.2)."
            << "\n";
  return 0;
}
