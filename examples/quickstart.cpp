// Quickstart: the paper's running example end to end.
//
// Builds a small multi-label graph (the flavor of Fig. 2), prints its
// h = 2 Markov table entries (Table 1), constructs the CEG_O of a fork
// query like Q5f (Fig. 1/4), enumerates every bottom-to-top path with its
// estimate, runs the 9 optimistic estimators and the MOLP pessimistic
// bound, and compares against the exact cardinality.
#include <cmath>
#include <iostream>

#include "ceg/ceg_o.h"
#include "engine/engine.h"
#include "estimators/optimistic.h"
#include "graph/generators.h"
#include "matching/matcher.h"
#include "query/query_graph.h"
#include "util/table_printer.h"

int main() {
  using namespace cegraph;
  constexpr graph::Label kA = 0, kB = 1, kC = 2, kD = 3, kE = 4;
  const char* kLabelNames = "ABCDE";

  graph::Graph g = graph::MakeRunningExampleGraph();
  std::cout << "Running-example graph: " << g.num_vertices()
            << " vertices, " << g.num_edges() << " edges, "
            << g.num_labels() << " labels (A..E)\n\n";

  // --- Table 1: Markov table entries (h = 2) -----------------------------
  // The engine owns every statistic structure; the raw Markov table is
  // borrowed here to print its entries Table-1 style.
  engine::EstimationEngine engine(g);
  const stats::MarkovTable& markov = engine.context().markov();
  std::cout << "Markov table entries (h=2), Table 1 style:\n";
  util::TablePrinter table1({"path", "|path|"});
  auto pattern1 = [&](graph::Label l) {
    return std::move(query::QueryGraph::Create(2, {{0, 1, l}})).value();
  };
  auto pattern2 = [&](graph::Label l1, graph::Label l2) {
    return std::move(
               query::QueryGraph::Create(3, {{0, 1, l1}, {1, 2, l2}}))
        .value();
  };
  for (graph::Label l : {kA, kB, kC, kD, kE}) {
    table1.AddRow({std::string(1, kLabelNames[l]) + "->",
                   util::TablePrinter::Num(*markov.Cardinality(pattern1(l)))});
  }
  for (auto [l1, l2] : {std::pair{kA, kB}, {kB, kC}, {kB, kD}, {kB, kE}}) {
    table1.AddRow(
        {std::string(1, kLabelNames[l1]) + "->" + kLabelNames[l2] + "->",
         util::TablePrinter::Num(*markov.Cardinality(pattern2(l1, l2)))});
  }
  table1.Print(std::cout);

  // --- The fork query Q5f-style: a1 -A-> a2 -B-> a3 -{C,D,E}-> ----------
  auto q5f = std::move(query::QueryGraph::Create(6, {{0, 1, kA},
                                                     {1, 2, kB},
                                                     {2, 3, kC},
                                                     {2, 4, kD},
                                                     {2, 5, kE}}))
                 .value();
  matching::Matcher matcher(g);
  const double truth = *matcher.Count(q5f);
  std::cout << "\nFork query Q5f: A->B then C, D, E out of the B-target; "
               "true cardinality = "
            << truth << "\n\n";

  // --- Every CEG_O path is one estimation formula ------------------------
  auto built = *ceg::BuildCegO(q5f, markov);
  auto paths = built.ceg.EnumerateSimplePaths(1000);
  std::cout << "CEG_O has " << built.ceg.num_nodes() << " nodes, "
            << built.ceg.num_edges() << " edges, " << paths.size()
            << " bottom-to-top paths. Estimates per path:\n";
  util::TablePrinter path_table({"formula (extension rates)", "estimate"});
  for (const auto& path : paths) {
    std::string formula;
    for (uint32_t ei : path.edge_indices) {
      if (!formula.empty()) formula += " x ";
      formula += built.ceg.edges()[ei].label;
    }
    path_table.AddRow(
        {formula, util::TablePrinter::Num(std::exp2(path.log_weight))});
  }
  path_table.Print(std::cout);

  // --- The 9 optimistic estimators + MOLP --------------------------------
  std::cout << "\nEstimates (truth = " << truth << "):\n";
  util::TablePrinter est_table({"estimator", "estimate", "q-error"});
  for (const auto& spec : AllOptimisticSpecs()) {
    // Registry-driven construction; the 9 specs share one cached CEG
    // build of q5f through the engine's CegCache.
    auto estimator = engine.Estimator(SpecName(spec));
    if (!estimator.ok()) {
      std::cerr << "registry: " << estimator.status() << "\n";
      return 1;
    }
    const double estimate = *(*estimator)->Estimate(q5f);
    est_table.AddRow({SpecName(spec), util::TablePrinter::Num(estimate),
                      util::TablePrinter::Num(
                          std::max(truth / estimate, estimate / truth))});
  }
  auto molp = engine.Estimator("molp");
  if (!molp.ok()) {
    std::cerr << "registry: " << molp.status() << "\n";
    return 1;
  }
  const double molp_bound = *(*molp)->Estimate(q5f);
  est_table.AddRow({"molp (pessimistic)",
                    util::TablePrinter::Num(molp_bound),
                    util::TablePrinter::Num(molp_bound / truth)});
  est_table.Print(std::cout);
  std::cout << "\nNote how MOLP never drops below the truth (Prop. 5.1) "
               "while the optimistic estimates bracket it: picking the "
               "maximum-weight path (max-hop-max) offsets the classic "
               "underestimation (the paper's §4.2 insight).\n";
  return 0;
}
