// Journal: JSONL line schema (escaping, field omission), bounded-ring
// overflow accounting (drop, never block), and the drain thread's
// flush/stop contract.
#include "obs/journal.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

namespace cegraph::obs {
namespace {

std::vector<std::string> ReadLines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST(JournalTest, FormatsOneJsonObjectPerEvent) {
  JournalEvent event;
  event.unix_micros = 1754649600000000;
  event.type = "swap";
  event.dataset = "alpha";
  event.request_id = 0xff;
  event.text.emplace_back("trigger", "deltas");
  event.num.emplace_back("epoch", 2.0);
  event.num.emplace_back("fold_millis", 1.5);
  EXPECT_EQ(FormatJournalLine(event),
            "{\"ts_micros\":1754649600000000,\"type\":\"swap\","
            "\"dataset\":\"alpha\",\"request_id\":\"00000000000000ff\","
            "\"trigger\":\"deltas\",\"epoch\":2,\"fold_millis\":1.5}");
}

TEST(JournalTest, OmitsEmptyDatasetAndZeroRequestIdAndEscapes) {
  JournalEvent event;
  event.unix_micros = 7;
  event.type = "slow_request";
  event.text.emplace_back("line", "say \"hi\"\\\n\ttab");
  EXPECT_EQ(FormatJournalLine(event),
            "{\"ts_micros\":7,\"type\":\"slow_request\","
            "\"line\":\"say \\\"hi\\\"\\\\\\n\\ttab\"}");
}

TEST(JournalTest, FullRingDropsAndCountsInsteadOfBlocking) {
  Journal journal(/*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    JournalEvent event;
    event.unix_micros = i + 1;
    event.type = "shed";
    journal.Emit(std::move(event));
  }
  EXPECT_EQ(journal.emitted(), 4u);
  EXPECT_EQ(journal.dropped(), 6u);

  // The four buffered events survive until the drain starts; drops are
  // accounted, not retried.
  const std::string path = ::testing::TempDir() + "journal_overflow.jsonl";
  std::remove(path.c_str());
  ASSERT_TRUE(journal.Start(path).ok());
  journal.Flush();
  journal.Stop();
  const std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(journal.written(), 4u);
  EXPECT_EQ(journal.dropped(), 6u);
  for (const std::string& line : lines) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"type\":\"shed\""), std::string::npos);
  }
}

TEST(JournalTest, DrainsEventsEmittedWhileRunning) {
  const std::string path = ::testing::TempDir() + "journal_live.jsonl";
  std::remove(path.c_str());
  Journal journal(64);
  ASSERT_TRUE(journal.Start(path).ok());
  for (int i = 0; i < 16; ++i) {
    JournalEvent event;
    event.type = i % 2 == 0 ? "fold" : "swap";
    event.dataset = "alpha";
    event.num.emplace_back("i", static_cast<double>(i));
    ASSERT_TRUE(journal.Emit(std::move(event)));
  }
  journal.Flush();
  EXPECT_EQ(journal.written(), 16u);
  EXPECT_EQ(journal.dropped(), 0u);
  journal.Stop();
  const std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 16u);
  // Drain preserves emission order (the ring is FIFO).
  EXPECT_NE(lines[0].find("\"i\":0"), std::string::npos);
  EXPECT_NE(lines[15].find("\"i\":15"), std::string::npos);
}

TEST(JournalTest, RingReusableAfterDrainFreesCells) {
  const std::string path = ::testing::TempDir() + "journal_reuse.jsonl";
  std::remove(path.c_str());
  Journal journal(4);
  ASSERT_TRUE(journal.Start(path).ok());
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 3; ++i) {
      JournalEvent event;
      event.type = "shed";
      journal.Emit(std::move(event));
    }
    journal.Flush();
  }
  journal.Stop();
  EXPECT_EQ(journal.dropped(), 0u);
  EXPECT_EQ(ReadLines(path).size(), 15u);
}

}  // namespace
}  // namespace cegraph::obs
