#include <gtest/gtest.h>

#include <cmath>

#include "ceg/ceg_o.h"
#include "ceg/ceg_ocr.h"
#include "graph/generators.h"
#include "matching/matcher.h"
#include "query/templates.h"
#include "stats/markov_table.h"

namespace cegraph::ceg {
namespace {

using graph::Graph;
using query::QueryGraph;

QueryGraph Q(uint32_t n, std::vector<query::QueryEdge> edges) {
  auto q = QueryGraph::Create(n, std::move(edges));
  return std::move(q).value();
}

// Labels of the running example: A=0, B=1, C=2, D=3, E=4.
constexpr graph::Label kA = 0, kB = 1, kC = 2, kD = 3, kE = 4;

class CegOTest : public ::testing::Test {
 protected:
  CegOTest() : g_(graph::MakeRunningExampleGraph()), markov2_(g_, 2) {}
  Graph g_;
  stats::MarkovTable markov2_;
};

TEST_F(CegOTest, PatternInTableIsExact) {
  // A 2-path is stored directly: the only path is ∅ -> Q with weight |Q|.
  QueryGraph q = Q(3, {{0, 1, kA}, {1, 2, kB}});
  auto built = BuildCegO(q, markov2_);
  ASSERT_TRUE(built.ok());
  auto agg = built->ceg.ComputeAggregates();
  ASSERT_TRUE(agg.ok());
  EXPECT_DOUBLE_EQ(agg->path_count, 1.0);
  EXPECT_NEAR(std::exp2(agg->max_log), 4.0, 1e-9);  // |A->B->| = 4
}

TEST_F(CegOTest, ThreePathMarkovFormula) {
  // Q3p = A->B->C-> with h=2: the paper's §4.1 formula
  // |A->B->| * |B->C->| / |B->| = 4 * 3/2 = 6 (true cardinality is 7).
  QueryGraph q = Q(4, {{0, 1, kA}, {1, 2, kB}, {2, 3, kC}});
  auto built = BuildCegO(q, markov2_);
  ASSERT_TRUE(built.ok());
  auto agg = built->ceg.ComputeAggregates();
  ASSERT_TRUE(agg.ok());
  // Both directions of composing the two 2-paths give 6.
  EXPECT_NEAR(std::exp2(agg->min_log), 6.0, 1e-9);
  EXPECT_NEAR(std::exp2(agg->max_log), 6.0, 1e-9);
  matching::Matcher matcher(g_);
  auto truth = matcher.Count(q);
  ASSERT_TRUE(truth.ok());
  EXPECT_DOUBLE_EQ(*truth, 7.0);
}

TEST_F(CegOTest, ForkQueryHasMultipleDistinctEstimates) {
  // Q5f-like fork: a1-A->a2-B->a3 with C, D, E fanning out of a3.
  QueryGraph q = Q(6, {{0, 1, kA},
                       {1, 2, kB},
                       {2, 3, kC},
                       {2, 4, kD},
                       {2, 5, kE}});
  auto built = BuildCegO(q, markov2_);
  ASSERT_TRUE(built.ok());
  auto agg = built->ceg.ComputeAggregates();
  ASSERT_TRUE(agg.ok());
  EXPECT_GT(agg->path_count, 1.0);
  EXPECT_LT(std::exp2(agg->min_log), std::exp2(agg->max_log));
}

TEST_F(CegOTest, DpAggregatesMatchEnumeration) {
  // Property: the DP aggregates equal brute-force path enumeration.
  const std::vector<QueryGraph> queries = {
      Q(4, {{0, 1, kA}, {1, 2, kB}, {2, 3, kC}}),
      Q(6, {{0, 1, kA}, {1, 2, kB}, {2, 3, kC}, {2, 4, kD}, {2, 5, kE}}),
      Q(5, {{0, 1, kA}, {1, 2, kB}, {2, 3, kD}, {2, 4, kE}}),
  };
  for (const QueryGraph& q : queries) {
    auto built = BuildCegO(q, markov2_);
    ASSERT_TRUE(built.ok());
    auto agg = built->ceg.ComputeAggregates();
    ASSERT_TRUE(agg.ok());
    bool truncated = true;
    auto paths = built->ceg.EnumerateSimplePaths(1'000'000, &truncated);
    ASSERT_FALSE(truncated);
    ASSERT_EQ(static_cast<double>(paths.size()), agg->path_count);
    double min_log = 1e18, max_log = -1e18, sum = 0;
    for (const auto& p : paths) {
      min_log = std::min(min_log, p.log_weight);
      max_log = std::max(max_log, p.log_weight);
      sum += std::exp2(p.log_weight);
    }
    EXPECT_NEAR(min_log, agg->min_log, 1e-9);
    EXPECT_NEAR(max_log, agg->max_log, 1e-9);
    EXPECT_NEAR(sum / paths.size(), agg->avg_estimate, 1e-6);
  }
}

TEST_F(CegOTest, RejectsDisconnectedQuery) {
  auto q = QueryGraph::Create(4, {{0, 1, kA}, {2, 3, kB}});
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(BuildCegO(*q, markov2_).ok());
}

TEST_F(CegOTest, SizeHRuleReducesEdges) {
  QueryGraph q = Q(4, {{0, 1, kA}, {1, 2, kB}, {2, 3, kC}});
  CegOOptions strict;
  CegOOptions relaxed;
  relaxed.size_h_numerators = false;
  auto built_strict = BuildCegO(q, markov2_, strict);
  auto built_relaxed = BuildCegO(q, markov2_, relaxed);
  ASSERT_TRUE(built_strict.ok());
  ASSERT_TRUE(built_relaxed.ok());
  EXPECT_LT(built_strict->ceg.num_edges(), built_relaxed->ceg.num_edges());
}

TEST(CegOCyclicTest, EarlyCycleClosingPrunesNonClosingExtensions) {
  // A graph with a directed triangle and extra edges.
  auto g = graph::Graph::Create(
      5, 1,
      {{0, 1, 0}, {1, 2, 0}, {2, 0, 0}, {1, 3, 0}, {3, 0, 0}, {2, 4, 0}});
  ASSERT_TRUE(g.ok());
  stats::MarkovTable markov(*g, 2);
  QueryGraph tri = std::move(
      QueryGraph::Create(3, {{0, 1, 0}, {1, 2, 0}, {2, 0, 0}})).value();

  auto built = BuildCegO(tri, markov);
  ASSERT_TRUE(built.ok());
  // From every 2-edge sub-query the only extension closes the triangle, so
  // all paths have exactly 2 hops: ∅ -> 2-subquery -> triangle.
  auto agg = built->ceg.ComputeAggregates();
  ASSERT_TRUE(agg.ok());
  ASSERT_TRUE(agg->reachable);
  ASSERT_EQ(agg->per_hop.size(), 1u);
  EXPECT_EQ(agg->per_hop[0].hops, 2);
}

TEST(CegOCyclicTest, CegOBreaksLargeCyclesIntoPaths) {
  // For a 4-cycle with h=3, CEG_O's estimate equals a path estimate: it
  // overestimates badly when paths far outnumber cycles. Just verify the
  // CEG builds and every bottom-to-top path exists (estimate > 0).
  auto g = graph::GenerateGraph({.num_vertices = 60,
                                 .num_edges = 400,
                                 .num_labels = 2,
                                 .num_types = 1,
                                 .label_zipf_s = 1.0,
                                 .preferential_p = 0.4,
                                 .random_labels = true,
                                 .seed = 11});
  ASSERT_TRUE(g.ok());
  stats::MarkovTable markov(*g, 3);
  QueryGraph cyc = std::move(QueryGraph::Create(
      4, {{0, 1, 0}, {1, 2, 1}, {2, 3, 0}, {3, 0, 1}})).value();
  auto built = BuildCegO(cyc, markov);
  ASSERT_TRUE(built.ok());
  auto agg = built->ceg.ComputeAggregates();
  ASSERT_TRUE(agg.ok());
  EXPECT_TRUE(agg->reachable);
}

TEST(CegOcrTest, RewritesClosingEdgeWeights) {
  auto g = graph::GenerateGraph({.num_vertices = 60,
                                 .num_edges = 400,
                                 .num_labels = 2,
                                 .num_types = 1,
                                 .label_zipf_s = 1.0,
                                 .preferential_p = 0.4,
                                 .random_labels = true,
                                 .seed = 11});
  ASSERT_TRUE(g.ok());
  stats::MarkovTable markov(*g, 3);
  stats::CycleClosingRates rates(*g);
  QueryGraph cyc = std::move(QueryGraph::Create(
      4, {{0, 1, 0}, {1, 2, 1}, {2, 3, 0}, {3, 0, 1}})).value();

  auto plain = BuildCegO(cyc, markov);
  auto ocr = BuildCegOcr(cyc, markov, rates);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(ocr.ok());
  ASSERT_EQ(plain->ceg.num_edges(), ocr->ceg.num_edges());

  // The OCR estimate must be strictly below the plain CEG_O estimate: the
  // closing edge's average-degree weight (>= 1-ish) is replaced by a
  // probability (<= 1).
  auto plain_agg = plain->ceg.ComputeAggregates();
  auto ocr_agg = ocr->ceg.ComputeAggregates();
  ASSERT_TRUE(plain_agg.ok());
  ASSERT_TRUE(ocr_agg.ok());
  EXPECT_LT(ocr_agg->max_log, plain_agg->max_log);

  // Some edge labels must record the rewrite.
  bool found_rewrite = false;
  for (const auto& e : ocr->ceg.edges()) {
    if (e.label.find("closing-rate") != std::string::npos) {
      found_rewrite = true;
    }
  }
  EXPECT_TRUE(found_rewrite);
}

TEST(CegOcrTest, AcyclicQueryUnchanged) {
  Graph g = graph::MakeRunningExampleGraph();
  stats::MarkovTable markov(g, 2);
  stats::CycleClosingRates rates(g);
  QueryGraph q = Q(4, {{0, 1, kA}, {1, 2, kB}, {2, 3, kC}});
  auto plain = BuildCegO(q, markov);
  auto ocr = BuildCegOcr(q, markov, rates);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(ocr.ok());
  auto pa = plain->ceg.ComputeAggregates();
  auto oa = ocr->ceg.ComputeAggregates();
  EXPECT_DOUBLE_EQ(pa->max_log, oa->max_log);
  EXPECT_DOUBLE_EQ(pa->min_log, oa->min_log);
}

}  // namespace
}  // namespace cegraph::ceg
