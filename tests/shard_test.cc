// Golden tests for the sharded-snapshot layer: shard -> load-union ->
// estimate must be bit-identical to the monolithic snapshot (and to a
// cold build) for every registry estimator; manifest validation must
// reject missing, overlapping, out-of-range and corrupt shards with clean
// errors (these run under the CI ASan/UBSan job like every other test).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "dynamic/delta_graph.h"
#include "dynamic/delta_io.h"
#include "engine/engine.h"
#include "engine/snapshot.h"
#include "graph/generators.h"
#include "query/workload.h"
#include "util/serde.h"
#include "util/shard.h"

namespace cegraph::engine {
namespace {

/// A scratch directory for one test's manifest + shard files.
class TempDir {
 public:
  explicit TempDir(const std::string& stem)
      : path_(std::filesystem::temp_directory_path() /
              ("cegraph_shard_test_" + stem)) {
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  std::string File(const std::string& name) const {
    return (path_ / name).string();
  }

 private:
  std::filesystem::path path_;
};

graph::Graph SmallGraph(uint64_t seed = 11) {
  graph::GeneratorConfig config;
  config.num_vertices = 260;
  config.num_edges = 1500;
  config.num_labels = 6;
  config.seed = seed;
  auto g = graph::GenerateGraph(config);
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

std::vector<query::WorkloadQuery> SmallWorkload(const graph::Graph& g) {
  query::WorkloadOptions options;
  options.instances_per_template = 2;
  options.seed = 5;
  auto wl = query::GenerateWorkload(g,
                                    {{"path2", query::PathShape(2)},
                                     {"star2", query::StarShape(2)},
                                     {"tri", query::CycleShape(3)}},
                                    options);
  EXPECT_TRUE(wl.ok());
  return std::move(wl).value();
}

/// Every registry estimator's estimate for every workload query, NaN for
/// failures — the bit-identity instrument shared with snapshot_test.
std::vector<double> AllRegistryEstimates(
    const EstimationEngine& engine,
    const std::vector<query::WorkloadQuery>& workload) {
  std::vector<double> out;
  for (const std::string& name :
       EstimatorRegistry::Default().RegisteredNames()) {
    auto estimator = engine.Estimator(name);
    EXPECT_TRUE(estimator.ok()) << name;
    for (const query::WorkloadQuery& wq : workload) {
      auto estimate = (*estimator)->Estimate(wq.query);
      out.push_back(estimate.ok()
                        ? *estimate
                        : std::numeric_limits<double>::quiet_NaN());
    }
  }
  return out;
}

void ExpectBitIdentical(const std::vector<double>& a,
                        const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::isnan(a[i]) && std::isnan(b[i])) continue;
    EXPECT_EQ(a[i], b[i]) << "at " << i;
  }
}

void FlipByte(const std::string& path, size_t offset_from_end) {
  std::fstream f(path,
                 std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(f.is_open());
  f.seekg(0, std::ios::end);
  const auto size = static_cast<size_t>(f.tellg());
  ASSERT_GT(size, offset_from_end);
  const auto pos = static_cast<std::streamoff>(size - 1 - offset_from_end);
  f.seekg(pos);
  char c = 0;
  f.read(&c, 1);
  c = static_cast<char>(c ^ 0x5a);
  f.seekp(pos);
  f.write(&c, 1);
}

TEST(ShardTest, HashRangePartitionIsTotalAndDisjoint) {
  // Every hash lands in exactly one shard, and the shard function is the
  // fixed range split of the hash space.
  for (const uint32_t shards : {1u, 2u, 3u, 7u, 64u}) {
    for (uint64_t i = 0; i < 1000; ++i) {
      const uint64_t h = util::StableHash64(i * 2654435761u);
      const uint32_t owner = util::ShardOfHash(h, shards);
      EXPECT_LT(owner, shards);
      int members = 0;
      for (uint32_t s = 0; s < shards; ++s) {
        members += util::InShard(h, s, shards) ? 1 : 0;
      }
      EXPECT_EQ(members, 1);
    }
  }
}

TEST(ShardTest, ShardUnionBitIdenticalToMonolithicForAllEstimators) {
  TempDir dir("union");
  const graph::Graph g = SmallGraph();
  const auto workload = SmallWorkload(g);

  // Cold engine: estimates fill every lazy cache the suite touches.
  EstimationEngine cold(g);
  const std::vector<double> cold_estimates =
      AllRegistryEstimates(cold, workload);

  const std::string mono = dir.File("mono.snap");
  const std::string manifest = dir.File("stats.manifest");
  ASSERT_TRUE(cold.context().SaveSnapshot(mono).ok());
  ASSERT_TRUE(cold.context().SaveSnapshotShards(manifest, 3).ok());

  // The shard files partition the keyed sections exactly: per section id,
  // entry counts across shards sum to the monolithic count.
  auto mono_info = ReadSnapshotInfo(mono);
  ASSERT_TRUE(mono_info.ok());
  auto parsed = ReadShardManifest(manifest);
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->num_shards, 3u);
  std::map<uint32_t, uint64_t> shard_entries;
  for (const ShardFileInfo& shard : parsed->shards) {
    auto info = ReadSnapshotInfo(dir.File(shard.file));
    ASSERT_TRUE(info.ok());
    for (const SnapshotSectionInfo& section : info->sections) {
      shard_entries[section.id] += section.entries;
    }
  }
  for (const SnapshotSectionInfo& section : mono_info->sections) {
    const auto id = static_cast<SnapshotSection>(section.id);
    if (id == SnapshotSection::kMarkov ||
        id == SnapshotSection::kClosingRates ||
        id == SnapshotSection::kDispersion) {
      EXPECT_EQ(shard_entries[section.id], section.entries)
          << section.name;
    }
  }

  // Union load == monolithic load == cold, bit-identically, for all 30
  // registry estimators.
  EstimationEngine warm_mono(g);
  ASSERT_TRUE(warm_mono.context().LoadSnapshot(mono).ok());
  EstimationEngine warm_union(g);
  EstimationContext::SnapshotLoadReport report;
  ASSERT_TRUE(warm_union.context().LoadSnapshot(manifest, &report).ok());
  EXPECT_FALSE(report.stale);

  const std::vector<double> mono_estimates =
      AllRegistryEstimates(warm_mono, workload);
  const std::vector<double> union_estimates =
      AllRegistryEstimates(warm_union, workload);
  ExpectBitIdentical(mono_estimates, cold_estimates);
  ExpectBitIdentical(union_estimates, mono_estimates);
}

TEST(ShardTest, PartialShardLoadStaysCorrectAndLoadsFewerEntries) {
  TempDir dir("partial");
  const graph::Graph g = SmallGraph(13);
  const auto workload = SmallWorkload(g);

  EstimationEngine cold(g);
  const std::vector<double> cold_estimates =
      AllRegistryEstimates(cold, workload);
  const std::string manifest = dir.File("stats.manifest");
  ASSERT_TRUE(cold.context().SaveSnapshotShards(manifest, 4).ok());

  // A fleet process loads only shard 2: fewer resident entries than the
  // union, but estimates recompute lazily to the same values.
  EstimationContext partial(g);
  ASSERT_TRUE(partial.LoadSnapshotShards(manifest, {2}, nullptr).ok());
  EstimationContext full(g);
  ASSERT_TRUE(full.LoadSnapshotShards(manifest, {}, nullptr).ok());

  size_t partial_entries = 0, full_entries = 0;
  for (const auto& cs : partial.CollectCacheStats()) {
    partial_entries += cs.entries;
  }
  for (const auto& cs : full.CollectCacheStats()) {
    full_entries += cs.entries;
  }
  EXPECT_LT(partial_entries, full_entries);

  EstimationEngine partial_engine(g);
  ASSERT_TRUE(
      partial_engine.context().LoadSnapshotShards(manifest, {2}, nullptr)
          .ok());
  ExpectBitIdentical(AllRegistryEstimates(partial_engine, workload),
                     cold_estimates);
}

TEST(ShardTest, PostDeltaShardManifestReconstructsViaEmbeddedLog) {
  TempDir dir("dynamic");
  const graph::Graph g = SmallGraph(17);
  const auto workload = SmallWorkload(g);

  // A context that has applied deltas writes version-2 shard files whose
  // common file embeds the replay log.
  EstimationEngine live(g);
  (void)AllRegistryEstimates(live, workload);
  const auto batch = dynamic::RandomEdgeBatch(g, 120, 23);
  EstimationEngine mutated(g);
  ASSERT_TRUE(mutated.ApplyDeltas(batch).ok());
  const std::vector<double> post_delta =
      AllRegistryEstimates(mutated, workload);
  const std::string manifest = dir.File("stats.manifest");
  ASSERT_TRUE(mutated.context().SaveSnapshotShards(manifest, 2).ok());

  // A fresh consumer holding only the base graph: direct load is a
  // fingerprint mismatch, the embedded log (served through the manifest's
  // common file) reconstructs the described graph state, then the load is
  // fresh — and estimates match the original post-delta context.
  EstimationContext fresh(g);
  auto direct = fresh.LoadSnapshot(manifest);
  ASSERT_FALSE(direct.ok());
  EXPECT_EQ(direct.code(), util::StatusCode::kFailedPrecondition);
  auto log = ReadSnapshotDeltaLog(manifest);
  ASSERT_TRUE(log.ok());
  ASSERT_FALSE(log->empty());
  ASSERT_TRUE(fresh.ApplyDeltas(*log).ok());
  EstimationContext::SnapshotLoadReport report;
  ASSERT_TRUE(fresh.LoadSnapshot(manifest, &report).ok());
  EXPECT_FALSE(report.stale);

  EstimationEngine reloaded(g);
  ASSERT_TRUE(reloaded.ApplyDeltas(*log).ok());
  ASSERT_TRUE(reloaded.context().LoadSnapshot(manifest).ok());
  ExpectBitIdentical(AllRegistryEstimates(reloaded, workload), post_delta);
}

TEST(ShardTest, StaleShardedLoadMatchesMonolithicStaleLoad) {
  TempDir dir("stale");
  const graph::Graph g = SmallGraph(29);
  const auto workload = SmallWorkload(g);

  // Artifact taken at epoch 0; both consumers advance to epoch 1 first,
  // so each load is stale-but-replayable (merge + one scrub).
  EstimationEngine builder(g);
  (void)AllRegistryEstimates(builder, workload);
  const std::string mono = dir.File("mono.snap");
  const std::string manifest = dir.File("stats.manifest");
  ASSERT_TRUE(builder.context().SaveSnapshot(mono).ok());
  ASSERT_TRUE(builder.context().SaveSnapshotShards(manifest, 3).ok());

  const auto batch = dynamic::RandomEdgeBatch(g, 80, 31);
  EstimationEngine via_mono(g);
  ASSERT_TRUE(via_mono.ApplyDeltas(batch).ok());
  EstimationContext::SnapshotLoadReport mono_report;
  ASSERT_TRUE(via_mono.context().LoadSnapshot(mono, &mono_report).ok());
  EXPECT_TRUE(mono_report.stale);

  EstimationEngine via_shards(g);
  ASSERT_TRUE(via_shards.ApplyDeltas(batch).ok());
  EstimationContext::SnapshotLoadReport shard_report;
  ASSERT_TRUE(
      via_shards.context().LoadSnapshot(manifest, &shard_report).ok());
  EXPECT_TRUE(shard_report.stale);

  ExpectBitIdentical(AllRegistryEstimates(via_shards, workload),
                     AllRegistryEstimates(via_mono, workload));
}

TEST(ShardTest, MissingShardFileIsCleanNotFound) {
  TempDir dir("missing");
  const graph::Graph g = SmallGraph();
  EstimationEngine cold(g);
  (void)cold.Estimator("max-hop-max");
  const std::string manifest = dir.File("stats.manifest");
  ASSERT_TRUE(cold.context().SaveSnapshotShards(manifest, 2).ok());
  ASSERT_TRUE(
      std::filesystem::remove(dir.File("stats.manifest.shard1")));

  EstimationContext context(g);
  auto loaded = context.LoadSnapshot(manifest);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.code(), util::StatusCode::kNotFound);
  EXPECT_NE(loaded.message().find("missing shard file"), std::string::npos)
      << loaded.message();
  // Loading only the surviving shard works.
  EXPECT_TRUE(context.LoadSnapshotShards(manifest, {0}, nullptr).ok());
}

TEST(ShardTest, CorruptShardFileIsRejectedByContentHash) {
  TempDir dir("corrupt");
  const graph::Graph g = SmallGraph();
  EstimationEngine cold(g);
  (void)cold.Estimator("max-hop-max");
  const std::string manifest = dir.File("stats.manifest");
  ASSERT_TRUE(cold.context().SaveSnapshotShards(manifest, 2).ok());
  FlipByte(dir.File("stats.manifest.shard0"), 4);

  EstimationContext context(g);
  auto loaded = context.LoadSnapshot(manifest);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.code(), util::StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.message().find("does not match its manifest entry"),
            std::string::npos)
      << loaded.message();
}

TEST(ShardTest, HandCraftedManifestRejectsOverlapGapAndRange) {
  TempDir dir("craft");
  // Header fields (fingerprint/options) are irrelevant: the shard-table
  // validation runs before any file is opened.
  auto write_manifest = [&](const std::string& name,
                            uint32_t num_shards,
                            const std::vector<uint32_t>& ids) {
    util::serde::Writer w;
    w.WriteRaw(std::string_view(kShardManifestMagic, 8));
    w.WriteU32(kShardManifestVersion);
    for (int i = 0; i < 3; ++i) w.WriteU32(0);  // fingerprint u32 triple
    w.WriteU64(0);                              // num_edges
    w.WriteU64(0);                              // edge_hash
    for (int i = 0; i < 2; ++i) w.WriteU32(0);  // options u32 pair
    w.WriteU64(0);                              // materialize cap
    for (int i = 0; i < 3; ++i) w.WriteU32(0);  // cc sampling
    w.WriteU64(0);                              // cc seed
    w.WriteU32(kSnapshotVersionStatic);
    w.WriteU32(num_shards);
    w.WriteString("common");
    w.WriteU64(0);
    w.WriteU64(0);
    w.WriteU32(static_cast<uint32_t>(ids.size()));
    for (const uint32_t id : ids) {
      w.WriteU32(id);
      w.WriteString("shard" + std::to_string(id));
      w.WriteU64(0);
      w.WriteU64(0);
    }
    const std::string path = dir.File(name);
    std::ofstream out(path, std::ios::binary);
    out.write(w.buffer().data(),
              static_cast<std::streamsize>(w.buffer().size()));
    return path;
  };

  auto overlap = ReadShardManifest(write_manifest("overlap", 2, {0, 0}));
  ASSERT_FALSE(overlap.ok());
  EXPECT_NE(overlap.status().message().find("more than once"),
            std::string::npos);

  auto gap = ReadShardManifest(write_manifest("gap", 2, {0}));
  ASSERT_FALSE(gap.ok());
  EXPECT_NE(gap.status().message().find("missing shard 1"),
            std::string::npos);

  auto range = ReadShardManifest(write_manifest("range", 2, {0, 5}));
  ASSERT_FALSE(range.ok());
  EXPECT_NE(range.status().message().find("out of range"),
            std::string::npos);
}

TEST(ShardTest, SelfReferentialManifestIsRejectedNotRecursedInto) {
  TempDir dir("selfref");
  // A crafted manifest whose common entry names the manifest file itself:
  // delta-log resolution must fail cleanly (manifests cannot nest), not
  // recurse until the stack dies; the shard load path additionally fails
  // the content-hash check.
  util::serde::Writer w;
  w.WriteRaw(std::string_view(kShardManifestMagic, 8));
  w.WriteU32(kShardManifestVersion);
  for (int i = 0; i < 3; ++i) w.WriteU32(0);
  w.WriteU64(0);
  w.WriteU64(0);
  for (int i = 0; i < 2; ++i) w.WriteU32(0);
  w.WriteU64(0);
  for (int i = 0; i < 3; ++i) w.WriteU32(0);
  w.WriteU64(0);
  w.WriteU32(kSnapshotVersionStatic);
  w.WriteU32(1);
  w.WriteString("evil");  // the manifest's own file name
  w.WriteU64(0);
  w.WriteU64(0);
  w.WriteU32(1);
  w.WriteU32(0);
  w.WriteString("evil");
  w.WriteU64(0);
  w.WriteU64(0);
  const std::string path = dir.File("evil");
  {
    std::ofstream out(path, std::ios::binary);
    out.write(w.buffer().data(),
              static_cast<std::streamsize>(w.buffer().size()));
  }

  // The integrity pass rejects it before the nesting check can even
  // trigger (a manifest cannot record a valid hash of a file that
  // contains that hash); either way the result is a clean
  // InvalidArgument, never recursion.
  auto log = ReadSnapshotDeltaLog(path);
  ASSERT_FALSE(log.ok());
  EXPECT_EQ(log.status().code(), util::StatusCode::kInvalidArgument);
  const std::string message = log.status().message();
  EXPECT_TRUE(message.find("cannot nest") != std::string::npos ||
              message.find("does not match its manifest entry") !=
                  std::string::npos)
      << log.status();

  const graph::Graph g = SmallGraph();
  EstimationContext context(g);
  EXPECT_FALSE(context.LoadSnapshot(path).ok());
}

TEST(ShardTest, RequestedShardSetIsValidated) {
  TempDir dir("request");
  const graph::Graph g = SmallGraph();
  EstimationEngine cold(g);
  (void)cold.Estimator("max-hop-max");
  const std::string manifest = dir.File("stats.manifest");
  ASSERT_TRUE(cold.context().SaveSnapshotShards(manifest, 2).ok());

  EstimationContext context(g);
  auto out_of_range = context.LoadSnapshotShards(manifest, {7}, nullptr);
  ASSERT_FALSE(out_of_range.ok());
  EXPECT_EQ(out_of_range.code(), util::StatusCode::kInvalidArgument);

  auto duplicate = context.LoadSnapshotShards(manifest, {1, 1}, nullptr);
  ASSERT_FALSE(duplicate.ok());
  EXPECT_EQ(duplicate.code(), util::StatusCode::kInvalidArgument);

  EXPECT_TRUE(context.LoadSnapshotShards(manifest, {1, 0}, nullptr).ok());
}

TEST(ShardTest, ShardCountBoundsAreEnforcedOnSave) {
  TempDir dir("bounds");
  const graph::Graph g = SmallGraph();
  EstimationContext context(g);
  EXPECT_FALSE(context.SaveSnapshotShards(dir.File("m"), 0).ok());
  EXPECT_FALSE(
      context.SaveSnapshotShards(dir.File("m"), kMaxSnapshotShards + 1)
          .ok());
  EXPECT_TRUE(context.SaveSnapshotShards(dir.File("m"), 1).ok());
}

}  // namespace
}  // namespace cegraph::engine
