#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "estimators/optimistic.h"
#include "estimators/sumrdf.h"
#include "graph/generators.h"
#include "harness/experiment.h"
#include "harness/qerror.h"
#include "query/workload.h"
#include "stats/markov_table.h"
#include "stats/summary_graph.h"

namespace cegraph::harness {
namespace {

TEST(QErrorTest, Basics) {
  EXPECT_DOUBLE_EQ(QError(10, 10), 1.0);
  EXPECT_DOUBLE_EQ(QError(5, 10), 2.0);
  EXPECT_DOUBLE_EQ(QError(20, 10), 2.0);
  EXPECT_TRUE(std::isinf(QError(0, 10)));
  EXPECT_TRUE(std::isnan(QError(10, 0)));
}

TEST(QErrorTest, SignedLog) {
  EXPECT_DOUBLE_EQ(SignedLogQError(10, 10), 0.0);
  EXPECT_DOUBLE_EQ(SignedLogQError(1, 10), -1.0);   // 10x under
  EXPECT_DOUBLE_EQ(SignedLogQError(100, 10), 1.0);  // 10x over
  EXPECT_LT(SignedLogQError(3, 10), 0.0);
  EXPECT_GT(SignedLogQError(30, 10), 0.0);
}

class HarnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto g = graph::GenerateGraph({.num_vertices = 200,
                                   .num_edges = 1200,
                                   .num_labels = 4,
                                   .num_types = 1,
                                   .label_zipf_s = 1.0,
                                   .preferential_p = 0.5,
                                   .random_labels = true,
                                   .seed = 91});
    ASSERT_TRUE(g.ok());
    graph_ = std::make_unique<graph::Graph>(std::move(*g));
    query::WorkloadOptions options;
    options.instances_per_template = 5;
    options.seed = 17;
    auto wl = query::GenerateWorkload(
        *graph_,
        {{"p3", query::PathShape(3)}, {"s3", query::StarShape(3)}}, options);
    ASSERT_TRUE(wl.ok());
    workload_ = std::move(*wl);
  }

  std::unique_ptr<graph::Graph> graph_;
  std::vector<query::WorkloadQuery> workload_;
};

TEST_F(HarnessTest, RunEstimatorSuiteCollectsDistributions) {
  stats::MarkovTable markov(*graph_, 2);
  OptimisticEstimator a(markov, OptimisticSpec{});
  OptimisticSpec min_spec;
  min_spec.aggregator = Aggregator::kMinAggr;
  min_spec.path_length = ceg::Ceg::HopMode::kMinHop;
  OptimisticEstimator b(markov, min_spec);
  auto result = RunEstimatorSuite({&a, &b}, workload_);
  EXPECT_EQ(result.queries_used, workload_.size());
  EXPECT_EQ(result.queries_dropped, 0u);
  ASSERT_EQ(result.reports.size(), 2u);
  EXPECT_EQ(result.reports[0].signed_log_qerror.count, workload_.size());
  EXPECT_EQ(result.reports[0].name, "max-hop-max");
}

TEST_F(HarnessTest, FailingEstimatorDropsQueriesForAll) {
  stats::MarkovTable markov(*graph_, 2);
  OptimisticEstimator a(markov, OptimisticSpec{});
  stats::SummaryGraph summary(*graph_, 16);
  SumRdfEstimator timeouty(summary, /*step_budget=*/1);
  auto result = RunEstimatorSuite({&a, &timeouty}, workload_);
  EXPECT_EQ(result.queries_used, 0u);
  EXPECT_EQ(result.queries_dropped, workload_.size());
  EXPECT_EQ(result.reports[1].failures, workload_.size());
}

TEST_F(HarnessTest, OptimisticSuiteReportsTenRows) {
  stats::MarkovTable markov(*graph_, 2);
  auto result = RunOptimisticSuite(markov, nullptr, OptimisticCeg::kCegO,
                                   workload_);
  ASSERT_EQ(result.reports.size(), 10u);  // 9 heuristics + P*
  EXPECT_EQ(result.reports.back().name, "P*");
  EXPECT_EQ(result.queries_used, workload_.size());
}

TEST_F(HarnessTest, PStarDominatesPointwise) {
  // P* picks the per-query best path, so on a *single-query* workload its
  // |signed log q-error| cannot exceed any heuristic's. (Across a whole
  // workload mean dominance is not a theorem: heuristics' under- and
  // over-estimates can cancel in the mean while P*'s one-sided small
  // errors do not.)
  stats::MarkovTable markov(*graph_, 2);
  for (const auto& wq : workload_) {
    auto result = RunOptimisticSuite(markov, nullptr, OptimisticCeg::kCegO,
                                     {wq});
    const auto& pstar = result.reports.back().signed_log_qerror;
    for (size_t i = 0; i + 1 < result.reports.size(); ++i) {
      const auto& other = result.reports[i].signed_log_qerror;
      EXPECT_LE(std::fabs(pstar.median), std::fabs(other.median) + 1e-9)
          << result.reports[i].name;
    }
  }
}

TEST_F(HarnessTest, SuiteAgreesWithStandaloneEstimators) {
  stats::MarkovTable markov(*graph_, 2);
  auto suite = RunOptimisticSuite(markov, nullptr, OptimisticCeg::kCegO,
                                  workload_);
  // Recompute max-hop-max independently; distributions must match.
  OptimisticEstimator est(markov, OptimisticSpec{});
  std::vector<double> expected;
  for (const auto& wq : workload_) {
    auto e = est.Estimate(wq.query);
    ASSERT_TRUE(e.ok());
    expected.push_back(SignedLogQError(*e, wq.true_cardinality));
  }
  const auto stats = util::ComputeBoxStats(expected);
  // max-hop-max is the last of the max-hop rows (aggregators are ordered
  // min, avg, max).
  const auto& report = suite.reports[2];
  EXPECT_EQ(report.name, "max-hop-max");
  EXPECT_NEAR(report.signed_log_qerror.median, stats.median, 1e-12);
  EXPECT_NEAR(report.signed_log_qerror.trimmed_mean, stats.trimmed_mean,
              1e-12);
}

TEST_F(HarnessTest, PrintSuiteResultRendersTable) {
  stats::MarkovTable markov(*graph_, 2);
  auto result = RunOptimisticSuite(markov, nullptr, OptimisticCeg::kCegO,
                                   workload_);
  std::ostringstream os;
  PrintSuiteResult(os, "unit", result);
  EXPECT_NE(os.str().find("max-hop-max"), std::string::npos);
  EXPECT_NE(os.str().find("P*"), std::string::npos);
  EXPECT_NE(os.str().find("median"), std::string::npos);
}

}  // namespace
}  // namespace cegraph::harness
