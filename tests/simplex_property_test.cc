// Randomized validation of the simplex solver against brute-force vertex
// enumeration: for small LPs, the optimum of a bounded feasible LP lies at
// a basic feasible solution, which we can enumerate exhaustively.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "lp/simplex.h"
#include "util/random.h"

namespace cegraph::lp {
namespace {

/// Enumerates all vertices of {x >= 0, Ax <= b} for n <= 3 variables by
/// solving every n-subset of the active constraint set (inequalities
/// turned to equalities + coordinate planes) with Gaussian elimination,
/// keeping the feasible ones. Returns the best objective, or -inf if
/// infeasible. (Unbounded problems are excluded by construction: tests
/// add a box constraint.)
double BruteForceOptimum(const LpProblem& p) {
  const size_t n = p.num_vars;
  // Build the full constraint list: rows of A with rhs, plus x_i >= 0 as
  // -x_i <= 0.
  std::vector<std::vector<double>> rows = p.rows;
  std::vector<double> rhs = p.rhs;
  for (size_t i = 0; i < n; ++i) {
    std::vector<double> row(n, 0.0);
    row[i] = -1;
    rows.push_back(row);
    rhs.push_back(0);
  }
  const size_t m = rows.size();

  double best = -std::numeric_limits<double>::infinity();
  std::vector<size_t> pick(n);
  // Enumerate all n-subsets of constraints.
  std::vector<size_t> idx(n);
  std::function<void(size_t, size_t)> rec = [&](size_t depth, size_t start) {
    if (depth == n) {
      // Solve the n x n system rows[idx] x = rhs[idx].
      std::vector<std::vector<double>> a(n, std::vector<double>(n + 1));
      for (size_t i = 0; i < n; ++i) {
        for (size_t j = 0; j < n; ++j) a[i][j] = rows[idx[i]][j];
        a[i][n] = rhs[idx[i]];
      }
      // Gaussian elimination with partial pivoting.
      for (size_t col = 0; col < n; ++col) {
        size_t pivot = col;
        for (size_t r = col + 1; r < n; ++r) {
          if (std::fabs(a[r][col]) > std::fabs(a[pivot][col])) pivot = r;
        }
        if (std::fabs(a[pivot][col]) < 1e-9) return;  // singular
        std::swap(a[col], a[pivot]);
        for (size_t r = 0; r < n; ++r) {
          if (r == col) continue;
          const double f = a[r][col] / a[col][col];
          for (size_t c = col; c <= n; ++c) a[r][c] -= f * a[col][c];
        }
      }
      std::vector<double> x(n);
      for (size_t i = 0; i < n; ++i) x[i] = a[i][n] / a[i][i];
      // Feasibility.
      for (size_t i = 0; i < n; ++i) {
        if (x[i] < -1e-7) return;
      }
      for (size_t r = 0; r < m; ++r) {
        double lhs = 0;
        for (size_t j = 0; j < n; ++j) lhs += rows[r][j] * x[j];
        if (lhs > rhs[r] + 1e-7) return;
      }
      double obj = 0;
      for (size_t j = 0; j < n; ++j) obj += p.objective[j] * x[j];
      best = std::max(best, obj);
      return;
    }
    for (size_t i = start; i < m; ++i) {
      idx[depth] = i;
      rec(depth + 1, i + 1);
    }
  };
  rec(0, 0);
  return best;
}

TEST(SimplexPropertyTest, MatchesVertexEnumerationOnRandomLps) {
  util::Rng rng(2718);
  int solved = 0;
  for (int trial = 0; trial < 200; ++trial) {
    LpProblem p;
    p.num_vars = 2 + rng.Uniform(2);  // 2 or 3 variables
    p.objective.resize(p.num_vars);
    for (auto& c : p.objective) c = rng.UniformInt(-4, 5);
    const int extra = 1 + static_cast<int>(rng.Uniform(4));
    for (int r = 0; r < extra; ++r) {
      std::vector<double> row(p.num_vars);
      for (auto& a : row) a = rng.UniformInt(-3, 4);
      p.AddLe(std::move(row), rng.UniformInt(0, 12));
    }
    // Bounding box keeps every instance bounded.
    for (size_t i = 0; i < p.num_vars; ++i) {
      std::vector<double> row(p.num_vars, 0.0);
      row[i] = 1;
      p.AddLe(std::move(row), 10);
    }

    auto solution = SolveLp(p);
    ASSERT_TRUE(solution.ok());
    const double brute = BruteForceOptimum(p);
    if (std::isinf(brute)) {
      // Origin is always feasible here (all b >= 0), so this cannot
      // happen; guard anyway.
      EXPECT_NE(solution->status, LpStatus::kOptimal);
      continue;
    }
    ASSERT_EQ(solution->status, LpStatus::kOptimal) << "trial " << trial;
    EXPECT_NEAR(solution->objective, brute, 1e-6) << "trial " << trial;
    ++solved;
  }
  EXPECT_GT(solved, 150);
}

TEST(SimplexPropertyTest, SolutionAlwaysFeasible) {
  util::Rng rng(777);
  for (int trial = 0; trial < 100; ++trial) {
    LpProblem p;
    p.num_vars = 3;
    p.objective = {1, 1, 1};
    for (int r = 0; r < 4; ++r) {
      std::vector<double> row(3);
      for (auto& a : row) a = rng.UniformInt(0, 3);
      p.AddLe(std::move(row), rng.UniformInt(1, 10));
    }
    for (size_t i = 0; i < 3; ++i) {
      std::vector<double> row(3, 0.0);
      row[i] = 1;
      p.AddLe(std::move(row), 6);
    }
    auto solution = SolveLp(p);
    ASSERT_TRUE(solution.ok());
    ASSERT_EQ(solution->status, LpStatus::kOptimal);
    for (size_t r = 0; r < p.rows.size(); ++r) {
      double lhs = 0;
      for (size_t j = 0; j < 3; ++j) lhs += p.rows[r][j] * solution->x[j];
      EXPECT_LE(lhs, p.rhs[r] + 1e-6);
    }
    for (double x : solution->x) EXPECT_GE(x, -1e-9);
  }
}

}  // namespace
}  // namespace cegraph::lp
