#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "graph/generators.h"
#include "graph/graph.h"
#include "matching/matcher.h"
#include "query/templates.h"

namespace cegraph::matching {
namespace {

using graph::Graph;
using query::QueryGraph;

Graph TinyGraph() {
  // Label 0 (A): 0->1, 0->2, 3->1
  // Label 1 (B): 1->4, 2->4, 1->5
  auto g = graph::Graph::Create(
      6, 2, {{0, 1, 0}, {0, 2, 0}, {3, 1, 0}, {1, 4, 1}, {2, 4, 1},
             {1, 5, 1}});
  return std::move(g).value();
}

QueryGraph Q(uint32_t n, std::vector<query::QueryEdge> edges) {
  auto q = QueryGraph::Create(n, std::move(edges));
  return std::move(q).value();
}

TEST(MatcherTest, SingleEdgeCountsRelation) {
  Graph g = TinyGraph();
  Matcher m(g);
  auto c = m.Count(Q(2, {{0, 1, 0}}));
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*c, 3.0);
}

TEST(MatcherTest, TwoPathCount) {
  // A->B 2-paths: 0->1->4, 0->1->5, 0->2->4, 3->1->4, 3->1->5 = 5.
  Graph g = TinyGraph();
  Matcher m(g);
  auto c = m.Count(Q(3, {{0, 1, 0}, {1, 2, 1}}));
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*c, 5.0);
}

TEST(MatcherTest, ReversedEdgeDirection) {
  // a1 <-A- a2: same count as the relation size.
  Graph g = TinyGraph();
  Matcher m(g);
  auto c = m.Count(Q(2, {{1, 0, 0}}));
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*c, 3.0);
}

TEST(MatcherTest, ForkCount) {
  // a1 -A-> a2 -B-> a3, a2 -B-> a4 (fork): for each A edge into v,
  // (outB(v))^2 combinations. 0->1: 2^2=4, 0->2: 1, 3->1: 4. Total 9.
  Graph g = TinyGraph();
  Matcher m(g);
  auto c = m.Count(Q(4, {{0, 1, 0}, {1, 2, 1}, {1, 3, 1}}));
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*c, 9.0);
}

TEST(MatcherTest, InInStarCount) {
  // a1 -A-> a3 <-A- a2: in-degree^2 summed: vertex1: 2^2, vertex2: 1 = 5.
  Graph g = TinyGraph();
  Matcher m(g);
  auto c = m.Count(Q(3, {{0, 2, 0}, {1, 2, 0}}));
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*c, 5.0);
}

Graph TriangleGraph() {
  // Label 0 edges forming 2 directed triangles sharing edge 0->1:
  // 0->1, 1->2, 2->0, 1->3, 3->0.
  auto g = graph::Graph::Create(
      4, 1, {{0, 1, 0}, {1, 2, 0}, {2, 0, 0}, {1, 3, 0}, {3, 0, 0}});
  return std::move(g).value();
}

TEST(MatcherTest, TriangleCount) {
  Graph g = TriangleGraph();
  Matcher m(g);
  // Directed triangle pattern x->y->z->x. Each of the two directed
  // triangles is counted 3 times (rotations of variable naming).
  auto c = m.Count(Q(3, {{0, 1, 0}, {1, 2, 0}, {2, 0, 0}}));
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*c, 6.0);
}

TEST(MatcherTest, CyclicWithPendantTree) {
  // Triangle with a pendant edge off vertex 0 of the pattern.
  Graph g = TriangleGraph();
  Matcher m(g);
  // x->y->z->x plus x->w. In TriangleGraph every vertex has out-degree
  // >= 1: triangle corners are 0,1,2 / 0,1,3 in rotations; pendant w from
  // corner x: out-degree of x. Compute expected by brute force reasoning:
  // embeddings of the directed triangle: (0,1,2),(1,2,0),(2,0,1),
  // (0,1,3),(1,3,0),(3,0,1). Out-degrees: deg(0)=1, deg(1)=2, deg(2)=1,
  // deg(3)=1. Pendant multiplies by out-degree of x:
  // 1+2+1+1+2+1 = 8.
  auto c = m.Count(Q(4, {{0, 1, 0}, {1, 2, 0}, {2, 0, 0}, {0, 3, 0}}));
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*c, 8.0);
}

TEST(MatcherTest, DisconnectedQueryRejected) {
  Graph g = TinyGraph();
  Matcher m(g);
  auto c = m.Count(Q(4, {{0, 1, 0}, {2, 3, 1}}));
  EXPECT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(MatcherTest, EmptyQueryRejected) {
  Graph g = TinyGraph();
  Matcher m(g);
  EXPECT_FALSE(m.Count(Q(1, {})).ok());
}

TEST(MatcherTest, ZeroCountForAbsentLabelCombination) {
  Graph g = TinyGraph();
  Matcher m(g);
  // B followed by A never happens.
  auto c = m.Count(Q(3, {{0, 1, 1}, {1, 2, 0}}));
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*c, 0.0);
}

TEST(MatcherTest, MaxCountAborts) {
  Graph g = TinyGraph();
  Matcher m(g);
  MatchOptions options;
  options.max_count = 2;
  auto c = m.Count(Q(3, {{0, 1, 0}, {1, 2, 1}}), options);
  EXPECT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), util::StatusCode::kOutOfRange);
}

TEST(MatcherTest, StepBudgetAborts) {
  auto big = graph::GenerateGraph({.num_vertices = 500,
                                   .num_edges = 3000,
                                   .num_labels = 2,
                                   .num_types = 1,
                                   .label_zipf_s = 1.0,
                                   .preferential_p = 0.5,
                                   .random_labels = true,
                                   .seed = 5});
  ASSERT_TRUE(big.ok());
  Matcher m(*big);
  MatchOptions options;
  options.step_budget = 10;
  auto c = m.Count(query::CycleShape(4), options);
  EXPECT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), util::StatusCode::kResourceExhausted);
}

TEST(MatcherTest, SelfLoopQuery) {
  auto g = graph::Graph::Create(3, 1, {{0, 0, 0}, {0, 1, 0}, {1, 2, 0}});
  ASSERT_TRUE(g.ok());
  Matcher m(*g);
  auto c = m.Count(Q(1, {{0, 0, 0}}));
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*c, 1.0);
}

/// Brute-force homomorphism counter for cross-checking.
double BruteForceCount(const Graph& g, const QueryGraph& q) {
  std::vector<graph::VertexId> assign(q.num_vertices(), 0);
  double count = 0;
  const uint64_t total =
      static_cast<uint64_t>(std::pow(g.num_vertices(), q.num_vertices()));
  for (uint64_t code = 0; code < total; ++code) {
    uint64_t c = code;
    for (uint32_t v = 0; v < q.num_vertices(); ++v) {
      assign[v] = static_cast<graph::VertexId>(c % g.num_vertices());
      c /= g.num_vertices();
    }
    bool ok = true;
    for (const auto& e : q.edges()) {
      if (!g.HasEdge(assign[e.src], assign[e.dst], e.label)) {
        ok = false;
        break;
      }
    }
    count += ok;
  }
  return count;
}

TEST(MatcherTest, AgreesWithBruteForceOnRandomGraphs) {
  for (uint64_t seed : {1, 2, 3}) {
    auto g = graph::GenerateGraph({.num_vertices = 8,
                                   .num_edges = 24,
                                   .num_labels = 2,
                                   .num_types = 1,
                                   .label_zipf_s = 1.0,
                                   .preferential_p = 0.3,
                                   .random_labels = true,
                                   .seed = seed});
    ASSERT_TRUE(g.ok());
    Matcher m(*g);
    const std::vector<QueryGraph> queries = {
        Q(3, {{0, 1, 0}, {1, 2, 1}}),
        Q(3, {{0, 1, 0}, {1, 2, 0}, {2, 0, 0}}),
        Q(4, {{0, 1, 0}, {1, 2, 1}, {2, 3, 0}}),
        Q(4, {{0, 1, 0}, {1, 2, 0}, {2, 3, 1}, {3, 0, 1}}),
        Q(4, {{0, 1, 0}, {0, 2, 1}, {0, 3, 0}}),
    };
    for (const auto& q : queries) {
      auto fast = m.Count(q);
      ASSERT_TRUE(fast.ok());
      EXPECT_EQ(*fast, BruteForceCount(*g, q)) << "seed " << seed;
    }
  }
}

TEST(MatcherTest, EnumerateVisitsAllTwoPaths) {
  Graph g = TinyGraph();
  Matcher m(g);
  std::set<std::pair<uint32_t, uint32_t>> seen;
  int rows = 0;
  auto status = m.Enumerate(
      Q(3, {{0, 1, 0}, {1, 2, 1}}), {},
      [&](const std::vector<graph::VertexId>& a) {
        ++rows;
        seen.insert({a[0], a[2]});
        return true;
      });
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(rows, 5);
}

TEST(MatcherTest, EnumerateEarlyStop) {
  Graph g = TinyGraph();
  Matcher m(g);
  int rows = 0;
  auto status = m.Enumerate(Q(3, {{0, 1, 0}, {1, 2, 1}}), {},
                            [&](const std::vector<graph::VertexId>&) {
                              return ++rows < 2;
                            });
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(rows, 2);
}

TEST(MatcherTest, SampleShapeEmbeddingFindsRealEdges) {
  Graph g = TinyGraph();
  Matcher m(g);
  util::Rng rng(17);
  std::vector<graph::VertexId> assignment;
  auto labels = m.SampleShapeEmbedding(query::PathShape(2), rng, 200,
                                       &assignment);
  ASSERT_TRUE(labels.ok());
  ASSERT_EQ(labels->size(), 2u);
  ASSERT_EQ(assignment.size(), 3u);
  EXPECT_TRUE(g.HasEdge(assignment[0], assignment[1], (*labels)[0]));
  EXPECT_TRUE(g.HasEdge(assignment[1], assignment[2], (*labels)[1]));
}

TEST(MatcherTest, SampleShapeEmbeddingImpossibleShape) {
  // The tiny graph has no directed triangle.
  Graph g = TinyGraph();
  Matcher m(g);
  util::Rng rng(3);
  auto labels = m.SampleShapeEmbedding(query::CycleShape(3), rng, 50);
  EXPECT_FALSE(labels.ok());
}

TEST(MatcherTest, LargeAcyclicViaTreeDpIsFast) {
  auto g = graph::GenerateGraph({.num_vertices = 2000,
                                 .num_edges = 10000,
                                 .num_labels = 5,
                                 .num_types = 2,
                                 .label_zipf_s = 1.0,
                                 .preferential_p = 0.6,
                                 .random_labels = false,
                                 .seed = 12});
  ASSERT_TRUE(g.ok());
  Matcher m(*g);
  // An 8-edge caterpillar; counts can be astronomically large but tree DP
  // never enumerates.
  auto q = query::CaterpillarShape(8, 4);
  std::vector<query::QueryEdge> edges = q.edges();
  for (auto& e : edges) e.label = 0;
  auto labeled = QueryGraph::Create(q.num_vertices(), std::move(edges));
  ASSERT_TRUE(labeled.ok());
  auto c = m.Count(*labeled);
  ASSERT_TRUE(c.ok());
  EXPECT_GE(*c, 0.0);
}

}  // namespace
}  // namespace cegraph::matching
