#include <gtest/gtest.h>

#include "lp/simplex.h"

namespace cegraph::lp {
namespace {

TEST(SimplexTest, SimpleMaximization) {
  // max x + y s.t. x <= 2, y <= 3, x + y <= 4.
  LpProblem p;
  p.num_vars = 2;
  p.objective = {1, 1};
  p.AddLe({1, 0}, 2);
  p.AddLe({0, 1}, 3);
  p.AddLe({1, 1}, 4);
  auto s = SolveLp(p);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->status, LpStatus::kOptimal);
  EXPECT_NEAR(s->objective, 4.0, 1e-9);
}

TEST(SimplexTest, ClassicTwoVarProblem) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 -> opt 36 at (2, 6).
  LpProblem p;
  p.num_vars = 2;
  p.objective = {3, 5};
  p.AddLe({1, 0}, 4);
  p.AddLe({0, 2}, 12);
  p.AddLe({3, 2}, 18);
  auto s = SolveLp(p);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->status, LpStatus::kOptimal);
  EXPECT_NEAR(s->objective, 36.0, 1e-9);
  EXPECT_NEAR(s->x[0], 2.0, 1e-9);
  EXPECT_NEAR(s->x[1], 6.0, 1e-9);
}

TEST(SimplexTest, UnboundedDetected) {
  LpProblem p;
  p.num_vars = 2;
  p.objective = {1, 0};
  p.AddLe({0, 1}, 5);  // x unconstrained
  auto s = SolveLp(p);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->status, LpStatus::kUnbounded);
}

TEST(SimplexTest, InfeasibleDetected) {
  // x >= 5 and x <= 2.
  LpProblem p;
  p.num_vars = 1;
  p.objective = {1};
  p.AddGe({1}, 5);
  p.AddLe({1}, 2);
  auto s = SolveLp(p);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->status, LpStatus::kInfeasible);
}

TEST(SimplexTest, MinimizationViaNegation) {
  // min x + 2y s.t. x + y >= 3, y >= 1 -> opt 2+2 = 4 at (2,1).
  LpProblem p;
  p.num_vars = 2;
  p.objective = {-1, -2};
  p.AddGe({1, 1}, 3);
  p.AddGe({0, 1}, 1);
  auto s = SolveLp(p);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->status, LpStatus::kOptimal);
  EXPECT_NEAR(-s->objective, 4.0, 1e-9);
}

TEST(SimplexTest, PhaseOneWithMixedConstraints) {
  // max x s.t. x >= 1, x <= 3.
  LpProblem p;
  p.num_vars = 1;
  p.objective = {1};
  p.AddGe({1}, 1);
  p.AddLe({1}, 3);
  auto s = SolveLp(p);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->status, LpStatus::kOptimal);
  EXPECT_NEAR(s->objective, 3.0, 1e-9);
}

TEST(SimplexTest, EqualityViaInequalityPair) {
  // max x + y s.t. x + y == 2, x <= 1.5.
  LpProblem p;
  p.num_vars = 2;
  p.objective = {1, 1};
  p.AddLe({1, 1}, 2);
  p.AddGe({1, 1}, 2);
  p.AddLe({1, 0}, 1.5);
  auto s = SolveLp(p);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->status, LpStatus::kOptimal);
  EXPECT_NEAR(s->objective, 2.0, 1e-9);
}

TEST(SimplexTest, DegenerateDoesNotCycle) {
  // A classically degenerate LP (multiple constraints through the origin).
  LpProblem p;
  p.num_vars = 3;
  p.objective = {0.75, -150, 0.02};
  p.AddLe({0.25, -60, -0.04}, 0);
  p.AddLe({0.5, -90, -0.02}, 0);
  p.AddLe({0, 0, 1}, 1);
  auto s = SolveLp(p);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->status, LpStatus::kOptimal);
  EXPECT_NEAR(s->objective, 0.05, 1e-6);
}

TEST(SimplexTest, RejectsMalformedProblem) {
  LpProblem p;
  p.num_vars = 2;
  p.objective = {1};  // wrong size
  EXPECT_FALSE(SolveLp(p).ok());
}

TEST(SimplexTest, ZeroConstraintProblemUnboundedOrZero) {
  LpProblem p;
  p.num_vars = 1;
  p.objective = {0};
  auto s = SolveLp(p);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->status, LpStatus::kOptimal);
  EXPECT_NEAR(s->objective, 0.0, 1e-9);
}

}  // namespace
}  // namespace cegraph::lp
