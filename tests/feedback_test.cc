// Tests for the learned-feedback layer: the confidence gate, exponential
// decay, bounded eviction, the fingerprint drift guard, serde round-trips
// (bit-identical corrections), the merge rule (live classes win), and the
// snapshot section riding the EstimationContext save/load path.
#include "learn/feedback_store.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "engine/snapshot.h"
#include "graph/generators.h"
#include "harness/qerror.h"

namespace cegraph::learn {
namespace {

class TempFile {
 public:
  explicit TempFile(const std::string& stem)
      : path_((std::filesystem::temp_directory_path() /
               ("cegraph_feedback_test_" + stem + ".snap"))
                  .string()) {
    std::remove(path_.c_str());
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

graph::Graph SmallGraph(uint64_t seed = 7) {
  graph::GeneratorConfig config;
  config.num_vertices = 300;
  config.num_edges = 1800;
  config.num_labels = 6;
  config.seed = seed;
  auto g = graph::GenerateGraph(config);
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

TEST(FeedbackStoreTest, ConfidenceGateHoldsCorrectionAtOneUntilMinSamples) {
  FeedbackOptions options;
  options.min_samples = 4;
  FeedbackStore store(options);
  const std::string key = FeedbackStore::ClassKey("molp", "P2|0,1");

  for (int i = 0; i < 3; ++i) {
    auto update = store.Record(key, "path2", 10.0, 1000.0);
    EXPECT_FALSE(update.has_value()) << "below the gate, nothing to report";
    EXPECT_DOUBLE_EQ(store.CorrectionFor(key), 1.0);
  }
  // The 4th sample crosses the gate: the correction activates and the
  // crossing itself is the journal-worthy update.
  auto update = store.Record(key, "path2", 10.0, 1000.0);
  ASSERT_TRUE(update.has_value());
  EXPECT_TRUE(update->activated);
  EXPECT_EQ(update->key, key);
  EXPECT_EQ(update->samples, 4u);
  EXPECT_NEAR(store.CorrectionFor(key), 100.0, 1e-6);
  EXPECT_EQ(store.active_count(), 1u);
}

TEST(FeedbackStoreTest, UnusablePairsAreDroppedAtTheDoor) {
  FeedbackStore store;
  const double inf = std::numeric_limits<double>::infinity();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  store.Record("k", "d", 0.0, 100.0);   // zero estimate
  store.Record("k", "d", 10.0, 0.0);    // zero truth
  store.Record("k", "d", -5.0, 100.0);  // negative estimate
  store.Record("k", "d", inf, 100.0);
  store.Record("k", "d", 10.0, nan);
  EXPECT_EQ(store.class_count(), 0u);
  // Sanity: the shared guard agrees with the store's own filtering.
  EXPECT_FALSE(harness::UsableQError(0.0, 100.0));
  EXPECT_FALSE(harness::UsableQError(10.0, 0.0));
  EXPECT_TRUE(harness::UsableQError(10.0, 100.0));
}

TEST(FeedbackStoreTest, DecayWeightsNewerObservationsHigher) {
  FeedbackOptions options;
  options.min_samples = 1;
  options.decay = 0.5;
  options.ring_capacity = 64;
  FeedbackStore store(options);

  // Ten observations of a 2x underestimate, then ten of 100x: with
  // decay 0.5 the newest regime's weight dominates and the correction
  // re-learns to ~100 instead of averaging across regimes.
  for (int i = 0; i < 10; ++i) store.Record("k", "d", 1.0, 2.0);
  EXPECT_NEAR(store.CorrectionFor("k"), 2.0, 1e-9);
  for (int i = 0; i < 10; ++i) store.Record("k", "d", 1.0, 100.0);
  EXPECT_NEAR(store.CorrectionFor("k"), 100.0, 1e-6);

  // Without decay the same stream's weighted median stays with the
  // older, more numerous regime when it holds the majority.
  FeedbackOptions flat = options;
  flat.decay = 1.0;
  FeedbackStore undecayed(flat);
  for (int i = 0; i < 11; ++i) undecayed.Record("k", "d", 1.0, 2.0);
  for (int i = 0; i < 10; ++i) undecayed.Record("k", "d", 1.0, 100.0);
  EXPECT_NEAR(undecayed.CorrectionFor("k"), 2.0, 1e-9);
}

TEST(FeedbackStoreTest, RingKeepsTheNewestObservations) {
  FeedbackOptions options;
  options.min_samples = 1;
  options.ring_capacity = 4;
  options.decay = 1.0;
  FeedbackStore store(options);
  // 8 old 2x ratios scroll out entirely behind 4 new 50x ratios.
  for (int i = 0; i < 8; ++i) store.Record("k", "d", 1.0, 2.0);
  for (int i = 0; i < 4; ++i) store.Record("k", "d", 1.0, 50.0);
  EXPECT_NEAR(store.CorrectionFor("k"), 50.0, 1e-9);
  const auto report = store.Report();
  ASSERT_EQ(report.size(), 1u);
  EXPECT_EQ(report[0].samples, 4u);
  EXPECT_EQ(report[0].hits, 12u);
}

TEST(FeedbackStoreTest, ActiveCorrectionShiftsReportOnlyPastThreshold) {
  FeedbackOptions options;
  options.min_samples = 1;
  options.decay = 1.0;
  FeedbackStore store(options);
  auto first = store.Record("k", "d", 1.0, 10.0);
  ASSERT_TRUE(first.has_value());  // gate crossing at one sample
  EXPECT_TRUE(first->activated);
  // The median barely moves sample to sample: no update spam.
  EXPECT_FALSE(store.Record("k", "d", 1.0, 10.0).has_value());
  EXPECT_FALSE(store.Record("k", "d", 1.0, 10.0).has_value());
  // A regime change: the unweighted median holds at 10x until the new
  // ratios reach a majority, then the correction jumps > 25% — reported
  // exactly once, not activated.
  EXPECT_FALSE(store.Record("k", "d", 1.0, 1000.0).has_value());
  EXPECT_FALSE(store.Record("k", "d", 1.0, 1000.0).has_value());
  EXPECT_FALSE(store.Record("k", "d", 1.0, 1000.0).has_value());
  auto shifted = store.Record("k", "d", 1.0, 1000.0);
  ASSERT_TRUE(shifted.has_value());
  EXPECT_FALSE(shifted->activated);
}

TEST(FeedbackStoreTest, EvictsFewestHitsTiesTowardGreatestKey) {
  FeedbackOptions options;
  options.max_classes = 3;
  options.min_samples = 1;
  FeedbackStore store(options);
  for (int i = 0; i < 5; ++i) store.Record("a", "a", 1.0, 2.0);
  for (int i = 0; i < 2; ++i) store.Record("b", "b", 1.0, 2.0);
  for (int i = 0; i < 3; ++i) store.Record("c", "c", 1.0, 2.0);

  // "d" is the 4th class: "b" (fewest hits) goes.
  store.Record("d", "d", 1.0, 2.0);
  EXPECT_EQ(store.class_count(), 3u);
  EXPECT_EQ(store.evictions(), 1u);
  EXPECT_DOUBLE_EQ(store.CorrectionFor("b"), 1.0);

  // "e" next: "d" (now the fewest at 1 hit) goes — eviction runs before
  // the insert, so a new class can never be its own victim.
  store.Record("e", "e", 1.0, 2.0);
  const auto report = store.Report();
  ASSERT_EQ(report.size(), 3u);
  EXPECT_EQ(report[0].key, "a");
  EXPECT_EQ(report[1].key, "c");
  EXPECT_EQ(report[2].key, "e");
  EXPECT_EQ(store.evictions(), 2u);
}

TEST(FeedbackStoreTest, SerializeIsDeterministicAndRoundTripsBitIdentical) {
  FeedbackOptions options;
  options.min_samples = 2;
  FeedbackStore store(options);
  store.SetStamp(0xfeedu);
  for (int i = 0; i < 6; ++i) {
    store.Record("molp|P2|0,1", "path2", 7.0, 7000.0 + i);
    store.Record("cbs|S2|1,2", "star2", 12345.0, 99.0 + i);
  }
  const std::string payload = store.Serialize();
  EXPECT_EQ(store.Serialize(), payload) << "serialization is deterministic";
  EXPECT_EQ(FeedbackStore::CountSerializedClasses(payload), 2u);

  FeedbackStore loaded(options);
  bool discarded = true;
  ASSERT_TRUE(loaded.Deserialize(payload, 0xfeedu, &discarded).ok());
  EXPECT_FALSE(discarded);
  EXPECT_EQ(loaded.stamp(), 0xfeedu);

  const auto a = store.Report();
  const auto b = loaded.Report();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].key, b[i].key);
    EXPECT_EQ(a[i].display, b[i].display);
    EXPECT_EQ(a[i].hits, b[i].hits);
    EXPECT_EQ(a[i].samples, b[i].samples);
    EXPECT_EQ(a[i].correction, b[i].correction) << "bit-identical, not near";
    EXPECT_EQ(a[i].active, b[i].active);
  }
}

TEST(FeedbackStoreTest, StampMismatchDiscardsThePayloadWholesale) {
  FeedbackStore store;
  store.SetStamp(111);
  for (int i = 0; i < 10; ++i) store.Record("k", "d", 1.0, 50.0);
  const std::string payload = store.Serialize();

  FeedbackStore other;
  other.SetStamp(222);  // the live graph's stamp, as the load paths set it
  bool discarded = false;
  ASSERT_TRUE(other.Deserialize(payload, 222, &discarded).ok());
  EXPECT_TRUE(discarded) << "drift guard: stale-graph corrections dropped";
  EXPECT_EQ(other.class_count(), 0u);
  EXPECT_EQ(other.stamp(), 222u) << "the store keeps the live graph's stamp";
}

TEST(FeedbackStoreTest, DeserializeKeepsExistingClassesOverThePayload) {
  FeedbackStore old_store;
  old_store.SetStamp(5);
  for (int i = 0; i < 10; ++i) old_store.Record("k", "d", 1.0, 2.0);
  const std::string payload = old_store.Serialize();

  FeedbackStore live;
  live.SetStamp(5);
  for (int i = 0; i < 10; ++i) live.Record("k", "d", 1.0, 900.0);
  for (int i = 0; i < 10; ++i) live.Record("other", "o", 1.0, 3.0);
  ASSERT_TRUE(live.Deserialize(payload, 5).ok());
  // "k" kept the live ring (900x), the payload's 2x did not roll it back.
  EXPECT_NEAR(live.CorrectionFor("k"), 900.0, 1e-6);
  EXPECT_EQ(live.class_count(), 2u);
}

TEST(FeedbackStoreTest, MalformedPayloadFailsCleanly) {
  FeedbackStore src;
  src.SetStamp(3);
  for (int i = 0; i < 10; ++i) src.Record("k", "d", 1.0, 2.0);
  const std::string payload = src.Serialize();

  // Truncation mid-entry is a hard parse error (the snapshot load paths
  // dry-run a probe store first, so a live store never sees this).
  FeedbackStore store;
  EXPECT_FALSE(store.Deserialize(payload.substr(0, payload.size() - 6), 3)
                   .ok());

  // An unknown format version is a clean discard, not an error: the
  // corrections are derived data and simply re-learn.
  bool discarded = false;
  EXPECT_TRUE(store.Deserialize("garbage!", 3, &discarded).ok());
  EXPECT_TRUE(discarded);
  EXPECT_EQ(FeedbackStore::CountSerializedClasses("gar"), 0u);
}

TEST(FeedbackStoreTest, ClearDropsClassesKeepsStamp) {
  FeedbackStore store;
  store.SetStamp(9);
  store.Record("k", "d", 1.0, 2.0);
  store.Clear();
  EXPECT_EQ(store.class_count(), 0u);
  EXPECT_EQ(store.stamp(), 9u);
}

TEST(FeedbackStoreTest, StampFingerprintSeparatesGraphs) {
  const uint64_t a = StampFingerprint(10, 3, 0, 100, 0xabcd);
  EXPECT_EQ(a, StampFingerprint(10, 3, 0, 100, 0xabcd));
  EXPECT_NE(a, StampFingerprint(11, 3, 0, 100, 0xabcd));
  EXPECT_NE(a, StampFingerprint(10, 3, 0, 100, 0xabce));
  EXPECT_NE(a, 0u);
}

// --- the snapshot section (engine-level persistence) ------------------------

TEST(FeedbackSnapshotTest, CorrectionsSurviveSaveLoadBitIdentically) {
  const graph::Graph g = SmallGraph();
  TempFile file("feedback_roundtrip");

  engine::EstimationEngine cold(g);
  FeedbackStore& store = cold.context().feedback_store();
  EXPECT_EQ(store.stamp(), cold.context().feedback_stamp());
  for (int i = 0; i < 12; ++i) {
    store.Record(FeedbackStore::ClassKey("molp", "P2|0,1"), "path2", 3.0,
                 300.0 + i);
  }
  ASSERT_TRUE(cold.context().SaveSnapshot(file.path()).ok());

  engine::EstimationEngine warm(SmallGraph());
  ASSERT_TRUE(warm.context().LoadSnapshot(file.path()).ok());
  const auto a = cold.context().feedback_store().Report();
  const auto b = warm.context().feedback_store().Report();
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(a[0].key, b[0].key);
  EXPECT_EQ(a[0].hits, b[0].hits);
  EXPECT_EQ(a[0].samples, b[0].samples);
  EXPECT_EQ(a[0].correction, b[0].correction) << "bit-identical round trip";
  EXPECT_TRUE(b[0].active);
}

TEST(FeedbackSnapshotTest, ArenaFormatCarriesTheFeedbackSection) {
  const graph::Graph g = SmallGraph();
  TempFile file("feedback_arena");

  engine::EstimationEngine cold(g);
  for (int i = 0; i < 12; ++i) {
    cold.context().feedback_store().Record("molp|P2|0,1", "path2", 3.0,
                                           300.0);
  }
  ASSERT_TRUE(cold.context()
                  .SaveSnapshot(file.path(), engine::SnapshotFormat::kArena)
                  .ok());

  auto info = engine::ReadSnapshotInfo(file.path());
  ASSERT_TRUE(info.ok()) << info.status();
  bool found = false;
  for (const auto& section : info->sections) {
    if (section.name == "feedback") {
      found = true;
      EXPECT_EQ(section.entries, 1u);
    }
  }
  EXPECT_TRUE(found) << "arena snapshot carries the feedback section";

  engine::EstimationEngine warm(SmallGraph());
  ASSERT_TRUE(warm.context().LoadSnapshot(file.path()).ok());
  EXPECT_EQ(warm.context().feedback_store().class_count(), 1u);
  EXPECT_EQ(warm.context().feedback_store().Report()[0].correction,
            cold.context().feedback_store().Report()[0].correction);
}

TEST(FeedbackSnapshotTest, EmptyStoreWritesNoSectionSnapshotStaysIdentical) {
  const graph::Graph g = SmallGraph();
  TempFile with_touch("feedback_touched");
  TempFile without("feedback_untouched");

  engine::EstimationEngine a(g);
  ASSERT_TRUE(a.context().SaveSnapshot(without.path()).ok());

  engine::EstimationEngine b(SmallGraph());
  b.context().feedback_store();  // created but empty: still no section
  ASSERT_TRUE(b.context().SaveSnapshot(with_touch.path()).ok());

  std::ifstream fa(without.path(), std::ios::binary);
  std::ifstream fb(with_touch.path(), std::ios::binary);
  std::string bytes_a((std::istreambuf_iterator<char>(fa)),
                      std::istreambuf_iterator<char>());
  std::string bytes_b((std::istreambuf_iterator<char>(fb)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(bytes_a, bytes_b)
      << "an empty feedback store must not change the snapshot bytes";
}

TEST(FeedbackSnapshotTest, ForkWithDeltasSharesTheStore) {
  const graph::Graph g = SmallGraph();
  engine::EstimationEngine engine(g);
  auto store = engine.context().feedback_store_ptr();
  store->Record("k", "d", 1.0, 2.0);
  auto forked = engine.context().ForkWithDeltas({});
  ASSERT_TRUE(forked.ok()) << forked.status();
  EXPECT_EQ((*forked)->feedback_store_ptr().get(), store.get())
      << "delta epochs share one learning store";
}

}  // namespace
}  // namespace cegraph::learn
