// Tests for the mmap-able arena layer behind snapshot format v3.
//
// Robustness: the container and index readers must turn every corruption —
// truncated files, misaligned section offsets, out-of-range bucket
// references, foreign-endian magic — into a clean Status, never UB (the CI
// ASan+UBSan job runs these like every other test), including under
// randomized byte mutation in the wire_fuzz_test style.
//
// Correctness: an arena snapshot served in place must be bit-identical to
// the v2 parse path and to a cold build for every registry estimator —
// monolithic, sharded (including manifests mixing arena and v2 shard
// files), and through the delta machinery (fresh attach + later deltas,
// and stale loads that replay).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include "dynamic/delta_graph.h"
#include "engine/engine.h"
#include "engine/snapshot.h"
#include "graph/generators.h"
#include "query/templates.h"
#include "query/workload.h"
#include "util/arena.h"
#include "util/serde.h"
#include "util/shard.h"

namespace cegraph {
namespace {

// ---- Container-level robustness -------------------------------------------

std::string SmallArenaImage() {
  util::ArenaBuilder builder;
  builder.AddSection(1, "hello");           // 5 bytes, padded to 8
  builder.AddSection(2, std::string(16, 'x'));
  builder.AddSection(1, "");                // empty payloads are legal
  return builder.Finish();
}

TEST(ArenaContainerTest, BuilderRoundTripAlignsEverySection) {
  const std::string image = SmallArenaImage();
  auto arena = util::MappedArena::FromBytes(image);
  ASSERT_TRUE(arena.ok()) << arena.status();
  ASSERT_EQ((*arena)->sections().size(), 3u);
  for (const auto& s : (*arena)->sections()) {
    EXPECT_EQ(s.offset % util::kArenaAlign, 0u) << "section " << s.id;
    EXPECT_LE(s.offset + s.bytes, (*arena)->size());
  }
  EXPECT_EQ((*arena)->SectionBytes(*(*arena)->FindSection(1)), "hello");
  EXPECT_EQ((*arena)->FindSections(1).size(), 2u);
  EXPECT_EQ((*arena)->FindSection(3), nullptr);
}

TEST(ArenaContainerTest, TruncatedImagesRejectedAtEveryLength) {
  const std::string image = SmallArenaImage();
  // Every proper prefix must fail cleanly: the header/table validation
  // runs before any payload access, so no prefix can be accepted.
  for (size_t len = 0; len < image.size(); ++len) {
    auto arena = util::MappedArena::FromBytes(image.substr(0, len));
    EXPECT_FALSE(arena.ok()) << "accepted a " << len << "-byte prefix";
  }
}

TEST(ArenaContainerTest, ForeignEndianWordRejected) {
  std::string image = SmallArenaImage();
  // A big-endian writer would store the check word byte-reversed.
  std::swap(image[8], image[11]);
  std::swap(image[9], image[10]);
  auto arena = util::MappedArena::FromBytes(image);
  ASSERT_FALSE(arena.ok());
  EXPECT_NE(arena.status().message().find("endian"), std::string::npos)
      << arena.status();
}

TEST(ArenaContainerTest, BadMagicRejected) {
  std::string image = SmallArenaImage();
  image[0] = 'X';
  EXPECT_FALSE(util::MappedArena::FromBytes(image).ok());
}

TEST(ArenaContainerTest, MisalignedSectionOffsetRejected) {
  std::string image = SmallArenaImage();
  // First table entry: id(4) + reserved(4) + offset(8) + bytes(8) at 24.
  const size_t offset_pos = 24 + 8;
  const uint64_t offset = util::LoadLittleU64(image.data() + offset_pos);
  image[offset_pos] = static_cast<char>((offset + 1) & 0xff);
  EXPECT_FALSE(util::MappedArena::FromBytes(image).ok());
}

TEST(ArenaContainerTest, SectionBeyondFileRejected) {
  std::string image = SmallArenaImage();
  const size_t bytes_pos = 24 + 16;  // first entry's byte count
  image[bytes_pos + 6] = 0x7f;       // ~2^55 bytes
  EXPECT_FALSE(util::MappedArena::FromBytes(image).ok());
}

// ---- Index-level robustness -----------------------------------------------

std::string SmallIndexPayload(size_t entries) {
  util::ArenaIndexBuilder builder;
  for (size_t i = 0; i < entries; ++i) {
    builder.Add("key" + std::to_string(i), "value" + std::to_string(i * 7));
  }
  return builder.Finish();
}

TEST(ArenaIndexTest, RoundTripFindsEveryKeyAndMissesCleanly) {
  const std::string payload = SmallIndexPayload(57);
  auto index = util::MappedIndex::Attach(payload);
  ASSERT_TRUE(index.ok()) << index.status();
  EXPECT_EQ(index->num_entries(), 57u);
  for (size_t i = 0; i < 57; ++i) {
    auto value = index->Find("key" + std::to_string(i));
    ASSERT_TRUE(value.ok()) << value.status();
    EXPECT_EQ(*value, "value" + std::to_string(i * 7));
  }
  auto miss = index->Find("key1000");
  ASSERT_FALSE(miss.ok());
  EXPECT_EQ(miss.status().code(), util::StatusCode::kNotFound);

  size_t visited = 0;
  ASSERT_TRUE(index->Visit([&](std::string_view, std::string_view) {
    ++visited;
  }).ok());
  EXPECT_EQ(visited, 57u);
}

TEST(ArenaIndexTest, OutOfRangeBucketReferencesAreCleanErrors) {
  std::string payload = SmallIndexPayload(9);
  util::serde::Reader header(payload);
  const uint64_t num_slots = [&] {
    (void)header.ReadU64();  // num_entries
    return *header.ReadU64();
  }();
  // Point every occupied slot's entry offset far past the entry blob.
  for (uint64_t s = 0; s < num_slots; ++s) {
    const size_t slot_pos = 24 + s * 16;
    if (util::LoadLittleU64(payload.data() + slot_pos + 8) ==
        util::kEmptySlotOffset) {
      continue;
    }
    for (int b = 0; b < 8; ++b) {
      payload[slot_pos + 8 + b] = static_cast<char>(b == 6 ? 0x7f : 0);
    }
  }
  auto index = util::MappedIndex::Attach(payload);
  ASSERT_TRUE(index.ok()) << index.status();
  auto found = index->Find("key0");
  ASSERT_FALSE(found.ok());
  EXPECT_NE(found.status().code(), util::StatusCode::kNotFound)
      << "corruption must not read as a clean miss";
}

TEST(ArenaIndexTest, RandomMutationsNeverCrashProbesOrWalks) {
  const std::string pristine = SmallIndexPayload(31);
  std::mt19937_64 rng(20260808);
  for (int iter = 0; iter < 2000; ++iter) {
    std::string payload = pristine;
    const size_t flips = 1 + rng() % 8;
    for (size_t f = 0; f < flips; ++f) {
      payload[rng() % payload.size()] ^= static_cast<char>(1 + rng() % 255);
    }
    if ((rng() & 3) == 0) payload.resize(rng() % (payload.size() + 1));
    auto index = util::MappedIndex::Attach(payload);
    if (!index.ok()) continue;  // clean rejection is a pass
    for (int probe = 0; probe < 4; ++probe) {
      (void)index->Find("key" + std::to_string(rng() % 40));
    }
    (void)index->Visit([](std::string_view, std::string_view) {});
  }
}

}  // namespace

// ---- Snapshot-level cross-format verification -----------------------------

namespace engine {
namespace {

class TempDir {
 public:
  explicit TempDir(const std::string& stem)
      : path_(std::filesystem::temp_directory_path() /
              ("cegraph_arena_test_" + stem)) {
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  std::string File(const std::string& name) const {
    return (path_ / name).string();
  }

 private:
  std::filesystem::path path_;
};

graph::Graph SmallGraph(uint64_t seed = 7) {
  graph::GeneratorConfig config;
  config.num_vertices = 400;
  config.num_edges = 2400;
  config.num_labels = 6;
  config.seed = seed;
  auto g = graph::GenerateGraph(config);
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

std::vector<query::WorkloadQuery> SmallWorkload(const graph::Graph& g) {
  query::WorkloadOptions options;
  options.instances_per_template = 3;
  options.seed = 99;
  auto wl = query::GenerateWorkload(g,
                                    {{"path2", query::PathShape(2)},
                                     {"star2", query::StarShape(2)},
                                     {"tri", query::CycleShape(3)},
                                     {"cyc4", query::CycleShape(4)}},
                                    options);
  EXPECT_TRUE(wl.ok());
  return std::move(wl).value();
}

std::vector<double> AllEstimates(
    const EstimationEngine& engine,
    const std::vector<query::WorkloadQuery>& workload) {
  std::vector<double> out;
  for (const std::string& name :
       EstimatorRegistry::Default().RegisteredNames()) {
    auto estimator = engine.Estimator(name);
    EXPECT_TRUE(estimator.ok()) << name;
    for (const query::WorkloadQuery& wq : workload) {
      auto est = (*estimator)->Estimate(wq.query);
      out.push_back(est.ok() ? *est
                             : std::numeric_limits<double>::quiet_NaN());
    }
  }
  return out;
}

void ExpectBitIdentical(const std::vector<double>& a,
                        const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::isnan(a[i])) {
      EXPECT_TRUE(std::isnan(b[i])) << "index " << i;
    } else {
      EXPECT_EQ(a[i], b[i]) << "index " << i;  // exact, not approximate
    }
  }
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  return bytes;
}

void WriteAll(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

/// A prewarmed engine (dispersion on, so every arena section is populated).
void Prewarm(EstimationEngine& engine,
             const std::vector<query::WorkloadQuery>& workload) {
  PrewarmOptions prewarm;
  prewarm.num_threads = 2;
  prewarm.dispersion = true;
  engine.context().Prewarm(workload, prewarm);
}

TEST(ArenaSnapshotTest, MappedLoadIsBitIdenticalToParsedAndCold) {
  const graph::Graph g = SmallGraph();
  const auto workload = SmallWorkload(g);
  TempDir dir("cross_format");

  EstimationEngine cold(g);
  Prewarm(cold, workload);
  ASSERT_TRUE(cold.context().SaveSnapshot(dir.File("v2.snap")).ok());
  ASSERT_TRUE(cold.context()
                  .SaveSnapshot(dir.File("v3.snap"), SnapshotFormat::kArena)
                  .ok());
  const std::vector<double> cold_estimates = AllEstimates(cold, workload);

  EstimationEngine parsed(g);
  EstimationContext::SnapshotLoadReport parsed_report;
  ASSERT_TRUE(
      parsed.context().LoadSnapshot(dir.File("v2.snap"), &parsed_report).ok());
  EXPECT_FALSE(parsed_report.mapped);

  EstimationEngine mapped(g);
  EstimationContext::SnapshotLoadReport mapped_report;
  auto loaded = mapped.context().LoadSnapshotMapped(dir.File("v3.snap"),
                                                    &mapped_report);
  ASSERT_TRUE(loaded.ok()) << loaded;
  EXPECT_TRUE(mapped_report.mapped);
  EXPECT_FALSE(mapped_report.stale);
  EXPECT_EQ(mapped_report.mapped_bytes,
            std::filesystem::file_size(dir.File("v3.snap")));

  ExpectBitIdentical(AllEstimates(parsed, workload), cold_estimates);
  ExpectBitIdentical(AllEstimates(mapped, workload), cold_estimates);
}

TEST(ArenaSnapshotTest, LoadSnapshotRoutesArenaFilesByMagic) {
  const graph::Graph g = SmallGraph();
  const auto workload = SmallWorkload(g);
  TempDir dir("routing");
  EstimationEngine cold(g);
  Prewarm(cold, workload);
  ASSERT_TRUE(cold.context()
                  .SaveSnapshot(dir.File("v3.snap"), SnapshotFormat::kArena)
                  .ok());
  EXPECT_TRUE(IsArenaSnapshot(dir.File("v3.snap")));

  // The generic entry point must detect and map the arena file; the
  // mapped entry point must in turn fall back to parsing for v2 files.
  EstimationEngine warm(g);
  EstimationContext::SnapshotLoadReport report;
  ASSERT_TRUE(warm.context().LoadSnapshot(dir.File("v3.snap"), &report).ok());
  EXPECT_TRUE(report.mapped);

  ASSERT_TRUE(cold.context().SaveSnapshot(dir.File("v2.snap")).ok());
  EstimationEngine warm2(g);
  ASSERT_TRUE(
      warm2.context().LoadSnapshotMapped(dir.File("v2.snap"), &report).ok());
  EXPECT_FALSE(report.mapped);
}

TEST(ArenaSnapshotTest, ArenaResavesAsV2Identically) {
  const graph::Graph g = SmallGraph();
  const auto workload = SmallWorkload(g);
  TempDir dir("resave");
  EstimationEngine cold(g);
  Prewarm(cold, workload);
  ASSERT_TRUE(cold.context()
                  .SaveSnapshot(dir.File("v3.snap"), SnapshotFormat::kArena)
                  .ok());

  // Mapped context -> v2 save -> parse: estimates survive two format hops.
  EstimationEngine mapped(g);
  ASSERT_TRUE(mapped.context().LoadSnapshot(dir.File("v3.snap")).ok());
  const std::vector<double> mapped_estimates = AllEstimates(mapped, workload);
  ASSERT_TRUE(mapped.context().SaveSnapshot(dir.File("back.snap")).ok());

  EstimationEngine reparsed(g);
  ASSERT_TRUE(reparsed.context().LoadSnapshot(dir.File("back.snap")).ok());
  ExpectBitIdentical(AllEstimates(reparsed, workload), mapped_estimates);
}

TEST(ArenaSnapshotTest, InspectReportsAlignedArenaSections) {
  const graph::Graph g = SmallGraph();
  const auto workload = SmallWorkload(g);
  TempDir dir("inspect");
  EstimationEngine cold(g);
  Prewarm(cold, workload);
  ASSERT_TRUE(cold.context()
                  .SaveSnapshot(dir.File("v3.snap"), SnapshotFormat::kArena)
                  .ok());

  auto info = ReadSnapshotInfo(dir.File("v3.snap"));
  ASSERT_TRUE(info.ok()) << info.status();
  EXPECT_EQ(info->version, kSnapshotVersionArena);
  ASSERT_FALSE(info->sections.empty());
  bool saw_meta = false, saw_markov = false;
  for (const auto& section : info->sections) {
    EXPECT_EQ(section.offset % util::kArenaAlign, 0u) << section.name;
    EXPECT_LE(section.offset + section.payload_bytes, info->file_bytes);
    saw_meta |= section.id ==
                static_cast<uint32_t>(SnapshotSection::kArenaMeta);
    if (section.id == static_cast<uint32_t>(SnapshotSection::kMarkov)) {
      saw_markov = true;
      EXPECT_GT(section.entries, 0u);
    }
  }
  EXPECT_TRUE(saw_meta);
  EXPECT_TRUE(saw_markov);
}

TEST(ArenaSnapshotTest, TruncatedArenaFilesRejectedCleanly) {
  const graph::Graph g = SmallGraph();
  const auto workload = SmallWorkload(g);
  TempDir dir("truncate");
  EstimationEngine cold(g);
  Prewarm(cold, workload);
  ASSERT_TRUE(cold.context()
                  .SaveSnapshot(dir.File("v3.snap"), SnapshotFormat::kArena)
                  .ok());
  const std::string image = ReadAll(dir.File("v3.snap"));

  // A sweep of truncation points: container header, section table, and
  // mid-payload. All must fail with a clean error and leave the loading
  // context fully usable. (The deepest cut removes 8 bytes: the final
  // payload carries up to 7 bytes of alignment padding, whose loss the
  // container legitimately tolerates.)
  for (const size_t len : {size_t{0}, size_t{7}, size_t{23}, size_t{40},
                           image.size() / 2, image.size() - 8}) {
    WriteAll(dir.File("cut.snap"), image.substr(0, len));
    EstimationEngine victim(g);
    auto loaded = victim.context().LoadSnapshot(dir.File("cut.snap"));
    EXPECT_FALSE(loaded.ok()) << "accepted a " << len << "-byte prefix";
    EXPECT_FALSE(AllEstimates(victim, workload).empty());
  }
}

TEST(ArenaSnapshotTest, RandomMutationsNeverCrashTheLoader) {
  const graph::Graph g = SmallGraph();
  const auto workload = SmallWorkload(g);
  TempDir dir("mutate");
  EstimationEngine cold(g);
  Prewarm(cold, workload);
  ASSERT_TRUE(cold.context()
                  .SaveSnapshot(dir.File("v3.snap"), SnapshotFormat::kArena)
                  .ok());
  const std::string pristine = ReadAll(dir.File("v3.snap"));

  // wire_fuzz_test-style mutation loop: random byte flips (plus occasional
  // truncation) must never produce UB on the load path — either a clean
  // Status or a successful load whose estimates still compute. Value
  // corruption inside a payload may legitimately go undetected; the
  // contract under test is memory safety, not error-detection strength.
  std::mt19937_64 rng(20260808);
  size_t accepted = 0, rejected = 0;
  for (int iter = 0; iter < 150; ++iter) {
    std::string image = pristine;
    const size_t flips = 1 + rng() % 8;
    for (size_t f = 0; f < flips; ++f) {
      image[rng() % image.size()] ^= static_cast<char>(1 + rng() % 255);
    }
    if ((rng() & 7) == 0) image.resize(rng() % (image.size() + 1));
    WriteAll(dir.File("mut.snap"), image);
    EstimationEngine victim(g);
    auto loaded = victim.context().LoadSnapshot(dir.File("mut.snap"));
    if (loaded.ok()) {
      ++accepted;
      for (const query::WorkloadQuery& wq : workload) {
        for (const char* name : {"max-hop-max", "cs"}) {
          auto estimator = victim.Estimator(name);
          ASSERT_TRUE(estimator.ok());
          (void)(*estimator)->Estimate(wq.query);
        }
      }
    } else {
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0u);  // most mutations must be caught
  std::printf("[ mutation sweep: %zu accepted, %zu rejected ]\n", accepted,
              rejected);
}

TEST(ArenaSnapshotTest, ArenaShardManifestLoadsBitIdentically) {
  const graph::Graph g = SmallGraph();
  const auto workload = SmallWorkload(g);
  TempDir dir("shards");
  EstimationEngine cold(g);
  Prewarm(cold, workload);
  ASSERT_TRUE(cold.context()
                  .SaveSnapshotShards(dir.File("m_ar"), 3,
                                      SnapshotFormat::kArena)
                  .ok());
  const std::vector<double> cold_estimates = AllEstimates(cold, workload);

  auto manifest = ReadShardManifest(dir.File("m_ar"));
  ASSERT_TRUE(manifest.ok()) << manifest.status();
  EXPECT_EQ(manifest->snapshot_version, kSnapshotVersionArena);
  EXPECT_TRUE(IsArenaSnapshot(dir.File("m_ar.common")));
  EXPECT_TRUE(IsArenaSnapshot(dir.File("m_ar.shard0")));

  EstimationEngine warm(g);
  EstimationContext::SnapshotLoadReport report;
  auto loaded = warm.context().LoadSnapshot(dir.File("m_ar"), &report);
  ASSERT_TRUE(loaded.ok()) << loaded;
  EXPECT_TRUE(report.mapped);
  EXPECT_GT(report.mapped_bytes, 0u);
  ExpectBitIdentical(AllEstimates(warm, workload), cold_estimates);
}

/// Rewrites `manifest_path` in place after `mutate` adjusted its entries —
/// the byte layout is header (magic, version, fingerprint, options)
/// followed by a tail this helper re-encodes from the parsed manifest.
void RewriteManifestTail(const std::string& manifest_path,
                         const ShardManifest& manifest) {
  const std::string raw = ReadAll(manifest_path);
  size_t tail_len = 4 + 4 + (8 + manifest.common.file.size()) + 8 + 8 + 4;
  for (const ShardFileInfo& shard : manifest.shards) {
    tail_len += 4 + (8 + shard.file.size()) + 8 + 8;
  }
  ASSERT_LT(tail_len, raw.size());
  util::serde::Writer tail;
  tail.WriteU32(manifest.snapshot_version);
  tail.WriteU32(manifest.num_shards);
  tail.WriteString(manifest.common.file);
  tail.WriteU64(manifest.common.bytes);
  tail.WriteU64(manifest.common.hash);
  tail.WriteU32(static_cast<uint32_t>(manifest.shards.size()));
  for (const ShardFileInfo& shard : manifest.shards) {
    tail.WriteU32(shard.shard);
    tail.WriteString(shard.file);
    tail.WriteU64(shard.bytes);
    tail.WriteU64(shard.hash);
  }
  ASSERT_EQ(tail.size(), tail_len);
  WriteAll(manifest_path, raw.substr(0, raw.size() - tail_len) +
                              tail.buffer());
}

TEST(ArenaSnapshotTest, ManifestMixingArenaAndV2ShardFilesLoads) {
  const graph::Graph g = SmallGraph();
  const auto workload = SmallWorkload(g);
  TempDir dir("mixed");
  EstimationEngine cold(g);
  Prewarm(cold, workload);
  // The same context sharded both ways: shard k carries the same keys in
  // both formats (shard routing hashes only the keys), so files are
  // interchangeable per slot.
  ASSERT_TRUE(cold.context().SaveSnapshotShards(dir.File("mix"), 2).ok());
  ASSERT_TRUE(cold.context()
                  .SaveSnapshotShards(dir.File("donor"), 2,
                                      SnapshotFormat::kArena)
                  .ok());
  const std::vector<double> cold_estimates = AllEstimates(cold, workload);

  // Splice the arena shard 1 into the v2 manifest: replace the file bytes
  // and patch that entry's size/hash so the manifest stays consistent.
  auto manifest = ReadShardManifest(dir.File("mix"));
  ASSERT_TRUE(manifest.ok()) << manifest.status();
  ASSERT_EQ(manifest->shards.size(), 2u);
  const std::string donor_bytes = ReadAll(dir.File("donor.shard1"));
  WriteAll(dir.File("mix.shard1"), donor_bytes);
  manifest->shards[1].bytes = donor_bytes.size();
  manifest->shards[1].hash = util::StableHash64(donor_bytes);
  RewriteManifestTail(dir.File("mix"), *manifest);

  EXPECT_FALSE(IsArenaSnapshot(dir.File("mix.shard0")));
  EXPECT_TRUE(IsArenaSnapshot(dir.File("mix.shard1")));

  EstimationEngine warm(g);
  EstimationContext::SnapshotLoadReport report;
  auto loaded = warm.context().LoadSnapshot(dir.File("mix"), &report);
  ASSERT_TRUE(loaded.ok()) << loaded;
  EXPECT_TRUE(report.mapped);  // the arena shard attached in place
  EXPECT_EQ(report.mapped_bytes, donor_bytes.size());
  ExpectBitIdentical(AllEstimates(warm, workload), cold_estimates);
}

/// A deterministic mixed delta batch (dynamic_test's idiom).
std::vector<dynamic::EdgeDelta> MixedBatch(const graph::Graph& g,
                                           size_t deletes, size_t inserts,
                                           uint64_t seed = 5) {
  std::vector<dynamic::EdgeDelta> batch;
  const auto& edges = g.edges();
  const size_t stride = std::max<size_t>(1, edges.size() / (deletes + 1));
  for (size_t i = 0; i < deletes && i * stride < edges.size(); ++i) {
    batch.push_back({edges[i * stride], dynamic::DeltaOp::kDelete});
  }
  std::mt19937_64 rng(seed);
  while (inserts > 0) {
    graph::Edge e{static_cast<graph::VertexId>(rng() % g.num_vertices()),
                  static_cast<graph::VertexId>(rng() % g.num_vertices()),
                  static_cast<graph::Label>(rng() % g.num_labels())};
    if (g.HasEdge(e.src, e.dst, e.label)) continue;
    batch.push_back({e, dynamic::DeltaOp::kInsert});
    --inserts;
  }
  return batch;
}

TEST(ArenaSnapshotTest, DeltasAfterMappedLoadMatchColdRebuild) {
  const graph::Graph g = SmallGraph();
  const auto workload = SmallWorkload(g);
  const auto batch = MixedBatch(g, 20, 25);
  TempDir dir("deltas");
  {
    EstimationEngine base(g);
    Prewarm(base, workload);
    ASSERT_TRUE(base.context()
                    .SaveSnapshot(dir.File("v3.snap"), SnapshotFormat::kArena)
                    .ok());
  }

  // Mapped-backed context, then live deltas through the full maintenance
  // path: the epoch swap rebuilds the stats structures, so mapped entries
  // must neither leak into the new epoch nor corrupt the migration.
  EstimationEngine mapped(g);
  EstimationContext::SnapshotLoadReport report;
  ASSERT_TRUE(mapped.context().LoadSnapshot(dir.File("v3.snap"), &report).ok());
  ASSERT_TRUE(report.mapped);
  ASSERT_TRUE(mapped.ApplyDeltas(batch).ok());

  dynamic::DeltaGraph overlay(g);
  ASSERT_TRUE(overlay.Apply(batch).ok());
  auto compacted = overlay.Compact();
  ASSERT_TRUE(compacted.ok());
  EstimationEngine cold(*compacted);
  ExpectBitIdentical(AllEstimates(mapped, workload),
                     AllEstimates(cold, workload));
}

TEST(ArenaSnapshotTest, StaleArenaLoadReplaysToColdEquivalence) {
  const graph::Graph g = SmallGraph();
  const auto workload = SmallWorkload(g);
  const auto batch = MixedBatch(g, 25, 30);
  TempDir dir("stale");
  {
    EstimationEngine base(g);
    Prewarm(base, workload);
    ASSERT_TRUE(base.context()
                    .SaveSnapshot(dir.File("v3.snap"), SnapshotFormat::kArena)
                    .ok());
  }

  // A drifted context loads the epoch-0 arena: stale, so sections are
  // materialized (not attached) and scrubbed against the replay suffix.
  EstimationEngine drifted(g);
  ASSERT_TRUE(drifted.ApplyDeltas(batch).ok());
  EstimationContext::SnapshotLoadReport report;
  auto loaded = drifted.context().LoadSnapshot(dir.File("v3.snap"), &report);
  ASSERT_TRUE(loaded.ok()) << loaded;
  EXPECT_TRUE(report.stale);
  EXPECT_FALSE(report.mapped);  // stale loads go through the memo caches
  EXPECT_EQ(report.snapshot_epoch, 0u);
  EXPECT_GT(report.replayed_deltas, 0u);

  dynamic::DeltaGraph overlay(g);
  ASSERT_TRUE(overlay.Apply(batch).ok());
  auto compacted = overlay.Compact();
  ASSERT_TRUE(compacted.ok());
  EstimationEngine cold(*compacted);
  ExpectBitIdentical(AllEstimates(drifted, workload),
                     AllEstimates(cold, workload));
}

TEST(ArenaSnapshotTest, ArenaEmbedsReplayableDeltaLog) {
  const graph::Graph g = SmallGraph();
  const auto workload = SmallWorkload(g);
  const auto batch = MixedBatch(g, 10, 12);
  TempDir dir("deltalog");

  // A post-delta arena snapshot embeds its log; a base-graph consumer
  // reads it back and reconstructs the described state.
  EstimationEngine producer(g);
  Prewarm(producer, workload);
  ASSERT_TRUE(producer.ApplyDeltas(batch).ok());
  ASSERT_TRUE(producer.context()
                  .SaveSnapshot(dir.File("v3.snap"), SnapshotFormat::kArena)
                  .ok());

  auto log = ReadSnapshotDeltaLog(dir.File("v3.snap"));
  ASSERT_TRUE(log.ok()) << log.status();
  ASSERT_FALSE(log->empty());

  EstimationEngine consumer(g);
  ASSERT_TRUE(consumer.ApplyDeltas(*log).ok());
  EstimationContext::SnapshotLoadReport report;
  auto loaded = consumer.context().LoadSnapshot(dir.File("v3.snap"), &report);
  ASSERT_TRUE(loaded.ok()) << loaded;
  EXPECT_FALSE(report.stale);
  EXPECT_TRUE(report.mapped);
  ExpectBitIdentical(AllEstimates(consumer, workload),
                     AllEstimates(producer, workload));
}

}  // namespace
}  // namespace engine
}  // namespace cegraph
