// Failure injection and degenerate-input robustness: every public
// component must return clean Status errors (or principled zeros) on
// empty graphs, empty relations, degenerate queries, and exhausted
// budgets — never crash, hang or emit NaN.
#include <gtest/gtest.h>

#include <cmath>

#include "estimators/bound_sketch.h"
#include "estimators/characteristic_sets.h"
#include "estimators/max_entropy.h"
#include "estimators/optimistic.h"
#include "estimators/pessimistic.h"
#include "estimators/sumrdf.h"
#include "estimators/wander_join.h"
#include "graph/generators.h"
#include "matching/matcher.h"
#include "planner/dp_optimizer.h"
#include "planner/executor.h"
#include "query/templates.h"
#include "stats/char_sets.h"
#include "stats/cycle_closing.h"
#include "stats/markov_table.h"
#include "stats/summary_graph.h"

namespace cegraph {
namespace {

using graph::Graph;
using query::QueryGraph;

QueryGraph Q(uint32_t n, std::vector<query::QueryEdge> edges) {
  auto q = QueryGraph::Create(n, std::move(edges));
  return std::move(q).value();
}

/// A graph with vertices and labels but zero edges.
Graph EdgelessGraph() {
  auto g = graph::Graph::Create(10, 3, {});
  return std::move(g).value();
}

TEST(RobustnessTest, MatcherOnEdgelessGraph) {
  Graph g = EdgelessGraph();
  matching::Matcher matcher(g);
  auto c = matcher.Count(Q(2, {{0, 1, 0}}));
  ASSERT_TRUE(c.ok());
  EXPECT_DOUBLE_EQ(*c, 0.0);
  util::Rng rng(1);
  EXPECT_FALSE(matcher.SampleShapeEmbedding(query::PathShape(2), rng).ok());
}

TEST(RobustnessTest, AllEstimatorsHandleEmptyRelations) {
  Graph g = EdgelessGraph();
  const QueryGraph q = Q(3, {{0, 1, 0}, {1, 2, 1}});

  stats::MarkovTable markov(g, 2);
  for (const auto& spec : AllOptimisticSpecs()) {
    OptimisticEstimator est(markov, spec);
    auto e = est.Estimate(q);
    ASSERT_TRUE(e.ok()) << SpecName(spec);
    EXPECT_DOUBLE_EQ(*e, 0.0) << SpecName(spec);
  }

  stats::StatsCatalog catalog(g);
  MolpEstimator molp(catalog, true);
  auto m = molp.Estimate(q);
  ASSERT_TRUE(m.ok());
  EXPECT_DOUBLE_EQ(*m, 0.0);
  CbsEstimator cbs(catalog);
  auto c = cbs.Estimate(q);
  ASSERT_TRUE(c.ok());
  EXPECT_DOUBLE_EQ(*c, 0.0);

  WanderJoinEstimator wj(g, {});
  auto w = wj.Estimate(q);
  ASSERT_TRUE(w.ok());
  EXPECT_DOUBLE_EQ(*w, 0.0);

  MaxEntropyEstimator me(markov);
  auto e = me.Estimate(q);
  ASSERT_TRUE(e.ok());
  EXPECT_DOUBLE_EQ(*e, 0.0);

  stats::CharacteristicSets cs_stats(g);
  CharacteristicSetsEstimator cs_est(cs_stats);
  auto cse = cs_est.Estimate(q);
  ASSERT_TRUE(cse.ok());
  EXPECT_DOUBLE_EQ(*cse, 0.0);

  stats::SummaryGraph summary(g, 4);
  SumRdfEstimator sumrdf(summary);
  auto s = sumrdf.Estimate(q);
  ASSERT_TRUE(s.ok());
  EXPECT_DOUBLE_EQ(*s, 0.0);
}

TEST(RobustnessTest, BoundSketchOnEmptyRelations) {
  Graph g = EdgelessGraph();
  BoundSketchEstimator::Options options;
  options.budget_k = 4;
  for (auto inner : {BoundSketchEstimator::Inner::kOptimisticMaxHopMax,
                     BoundSketchEstimator::Inner::kMolp}) {
    BoundSketchEstimator bs(g, inner, options);
    auto e = bs.Estimate(Q(3, {{0, 1, 0}, {1, 2, 1}}));
    ASSERT_TRUE(e.ok());
    EXPECT_DOUBLE_EQ(*e, 0.0);
  }
}

TEST(RobustnessTest, CycleClosingRatesOnEdgelessGraph) {
  Graph g = EdgelessGraph();
  stats::CycleClosingOptions options;
  options.walks_per_key = 10;
  stats::CycleClosingRates rates(g, options);
  const double r = rates.Rate({.first_label = 0, .last_label = 1,
                               .close_label = 2});
  EXPECT_GT(r, 0.0);  // smoothing floor
  EXPECT_LE(r, 1.0);
  EXPECT_FALSE(std::isnan(r));
}

TEST(RobustnessTest, SingleVertexGraph) {
  auto g = graph::Graph::Create(1, 1, {{0, 0, 0}});
  ASSERT_TRUE(g.ok());
  matching::Matcher matcher(*g);
  auto c = matcher.Count(Q(1, {{0, 0, 0}}));
  ASSERT_TRUE(c.ok());
  EXPECT_DOUBLE_EQ(*c, 1.0);
  stats::MarkovTable markov(*g, 2);
  OptimisticEstimator est(markov, OptimisticSpec{});
  auto e = est.Estimate(Q(1, {{0, 0, 0}}));
  ASSERT_TRUE(e.ok());
  EXPECT_DOUBLE_EQ(*e, 1.0);
}

TEST(RobustnessTest, EstimatorsRejectDegenerateQueries) {
  Graph g = EdgelessGraph();
  stats::MarkovTable markov(g, 2);
  OptimisticEstimator est(markov, OptimisticSpec{});
  // Empty query.
  auto empty = QueryGraph::Create(1, {});
  ASSERT_TRUE(empty.ok());
  EXPECT_FALSE(est.Estimate(*empty).ok());
  // Disconnected query.
  auto disconnected = QueryGraph::Create(4, {{0, 1, 0}, {2, 3, 1}});
  ASSERT_TRUE(disconnected.ok());
  EXPECT_FALSE(est.Estimate(*disconnected).ok());
}

TEST(RobustnessTest, PlannerOnEmptyRelationsExecutesToZero) {
  Graph g = EdgelessGraph();
  stats::MarkovTable markov(g, 2);
  OptimisticEstimator est(markov, OptimisticSpec{});
  planner::DpOptimizer optimizer(est);
  const QueryGraph q = Q(3, {{0, 1, 0}, {1, 2, 1}});
  auto plan = optimizer.Optimize(q);
  ASSERT_TRUE(plan.ok());
  planner::Executor executor(g);
  auto run = executor.Execute(q, *plan);
  ASSERT_TRUE(run.ok());
  EXPECT_DOUBLE_EQ(run->output_cardinality, 0.0);
}

TEST(RobustnessTest, NoNanFromAnyEstimatorOnTinyGraphs) {
  // Sweep tiny adversarial graphs; every estimate must be finite or a
  // clean error.
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    auto g = graph::GenerateGraph({.num_vertices = 6,
                                   .num_edges = 8,
                                   .num_labels = 2,
                                   .num_types = 1,
                                   .label_zipf_s = 1.0,
                                   .preferential_p = 0.2,
                                   .random_labels = true,
                                   .seed = seed});
    ASSERT_TRUE(g.ok());
    stats::MarkovTable markov(*g, 2);
    stats::StatsCatalog catalog(*g);
    OptimisticEstimator opt(markov, OptimisticSpec{});
    MolpEstimator molp(catalog, true);
    MaxEntropyEstimator me(markov);
    const QueryGraph queries[] = {
        Q(3, {{0, 1, 0}, {1, 2, 1}}),
        Q(3, {{0, 1, 0}, {1, 2, 0}, {2, 0, 1}}),
        Q(4, {{0, 1, 1}, {1, 2, 0}, {1, 3, 1}}),
    };
    for (const auto& q : queries) {
      for (CardinalityEstimator* estimator :
           {static_cast<CardinalityEstimator*>(&opt),
            static_cast<CardinalityEstimator*>(&molp),
            static_cast<CardinalityEstimator*>(&me)}) {
        auto e = estimator->Estimate(q);
        if (e.ok()) {
          EXPECT_FALSE(std::isnan(*e)) << estimator->name() << " seed "
                                       << seed;
          EXPECT_GE(*e, 0.0);
        }
      }
    }
  }
}

TEST(RobustnessTest, MatcherBudgetZero) {
  auto g = graph::GenerateGraph({.num_vertices = 50,
                                 .num_edges = 200,
                                 .num_labels = 2,
                                 .num_types = 1,
                                 .label_zipf_s = 1.0,
                                 .preferential_p = 0.2,
                                 .random_labels = true,
                                 .seed = 3});
  ASSERT_TRUE(g.ok());
  matching::Matcher matcher(*g);
  matching::MatchOptions options;
  options.step_budget = 0;
  // Cyclic query forces the backtracking path, which honors the budget.
  auto c = matcher.Count(Q(3, {{0, 1, 0}, {1, 2, 0}, {2, 0, 0}}), options);
  EXPECT_FALSE(c.ok());
}

}  // namespace
}  // namespace cegraph
