#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "graph/generators.h"
#include "graph/graph_io.h"

namespace cegraph::graph {
namespace {

TEST(GraphIoTest, RoundTripThroughStreams) {
  GeneratorConfig config;
  config.num_vertices = 100;
  config.num_edges = 400;
  config.num_labels = 6;
  config.seed = 33;
  auto g = GenerateGraph(config);
  ASSERT_TRUE(g.ok());

  std::stringstream buffer;
  ASSERT_TRUE(WriteGraphText(*g, buffer).ok());
  auto loaded = ReadGraphText(buffer);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_vertices(), g->num_vertices());
  EXPECT_EQ(loaded->num_labels(), g->num_labels());
  EXPECT_EQ(loaded->edges(), g->edges());
}

TEST(GraphIoTest, CommentsAndBlankLinesIgnored) {
  std::stringstream in(
      "# a comment\n"
      "\n"
      "3 2\n"
      "# another\n"
      "0 1 0\n"
      "1 2 1\n");
  auto g = ReadGraphText(in);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_vertices(), 3u);
  EXPECT_EQ(g->num_edges(), 2u);
  EXPECT_TRUE(g->HasEdge(1, 2, 1));
}

TEST(GraphIoTest, MissingHeaderRejected) {
  std::stringstream in("# only comments\n");
  auto g = ReadGraphText(in);
  EXPECT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(GraphIoTest, MalformedEdgeRejected) {
  std::stringstream in("3 2\n0 1\n");
  EXPECT_FALSE(ReadGraphText(in).ok());
}

TEST(GraphIoTest, OutOfRangeEdgeRejected) {
  std::stringstream in("3 2\n0 9 0\n");
  EXPECT_FALSE(ReadGraphText(in).ok());
}

TEST(GraphIoTest, FileRoundTrip) {
  auto g = Graph::Create(4, 2, {{0, 1, 0}, {1, 2, 1}, {2, 3, 0}});
  ASSERT_TRUE(g.ok());
  const std::string path = ::testing::TempDir() + "/cegraph_io_test.txt";
  ASSERT_TRUE(SaveGraph(*g, path).ok());
  auto loaded = LoadGraph(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->edges(), g->edges());
  std::remove(path.c_str());
}

TEST(GraphIoTest, VertexLabelsRoundTrip) {
  auto g = Graph::Create(4, 2, {{0, 1, 0}, {1, 2, 1}}, {1, 0, 2, 1});
  ASSERT_TRUE(g.ok());
  std::stringstream buffer;
  ASSERT_TRUE(WriteGraphText(*g, buffer).ok());
  auto loaded = ReadGraphText(buffer);
  ASSERT_TRUE(loaded.ok());
  for (VertexId v = 0; v < 4; ++v) {
    EXPECT_EQ(loaded->vertex_label(v), g->vertex_label(v)) << v;
  }
  EXPECT_EQ(loaded->num_vertex_labels(), 3u);
}

TEST(GraphIoTest, MalformedVertexLabelLineRejected) {
  std::stringstream in("3 2\nv 9 1\n0 1 0\n");
  EXPECT_FALSE(ReadGraphText(in).ok());
}

TEST(GraphIoTest, LoadMissingFileFails) {
  auto g = LoadGraph("/nonexistent/cegraph.txt");
  EXPECT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), util::StatusCode::kNotFound);
}

}  // namespace
}  // namespace cegraph::graph
