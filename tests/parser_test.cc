#include <gtest/gtest.h>

#include "query/parser.h"

namespace cegraph::query {
namespace {

TEST(ParserTest, SingleForwardEdge) {
  auto q = ParseQuery("(a)-[3]->(b)");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->num_vertices(), 2u);
  ASSERT_EQ(q->num_edges(), 1u);
  EXPECT_EQ(q->edge(0).src, 0u);
  EXPECT_EQ(q->edge(0).dst, 1u);
  EXPECT_EQ(q->edge(0).label, 3u);
}

TEST(ParserTest, BackwardEdge) {
  auto q = ParseQuery("(a)<-[5]-(b)");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->edge(0).src, 1u);  // b
  EXPECT_EQ(q->edge(0).dst, 0u);  // a
  EXPECT_EQ(q->edge(0).label, 5u);
}

TEST(ParserTest, VariablesSharedAcrossClauses) {
  auto q = ParseQuery("(a)-[0]->(b); (b)-[1]->(c); (c)-[2]->(a)");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->num_vertices(), 3u);
  EXPECT_EQ(q->num_edges(), 3u);
  EXPECT_FALSE(q->IsAcyclic());
}

TEST(ParserTest, CommaSeparatorAndWhitespace) {
  auto q = ParseQuery("  ( x1 )-[ 2 ]->( y_2 ) ,\n (y_2)-[0]->(z)");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->num_edges(), 2u);
  EXPECT_EQ(q->num_vertices(), 3u);
}

TEST(ParserTest, SelfLoop) {
  auto q = ParseQuery("(a)-[1]->(a)");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->num_vertices(), 1u);
  EXPECT_EQ(q->edge(0).src, q->edge(0).dst);
}

TEST(ParserTest, RejectsEmpty) {
  EXPECT_FALSE(ParseQuery("").ok());
  EXPECT_FALSE(ParseQuery("   ").ok());
}

TEST(ParserTest, RejectsMalformedArrow) {
  EXPECT_FALSE(ParseQuery("(a)-[3]-(b)").ok());
  EXPECT_FALSE(ParseQuery("(a)->[3]->(b)").ok());
  EXPECT_FALSE(ParseQuery("(a)-[x]->(b)").ok());
}

TEST(ParserTest, RejectsMissingParens) {
  EXPECT_FALSE(ParseQuery("a-[3]->(b)").ok());
  EXPECT_FALSE(ParseQuery("(a)-[3]->b").ok());
  EXPECT_FALSE(ParseQuery("(a-[3]->(b)").ok());
}

TEST(ParserTest, RejectsTrailingGarbage) {
  EXPECT_FALSE(ParseQuery("(a)-[3]->(b) xyz").ok());
}

TEST(ParserTest, VertexLabelConstraints) {
  auto q = ParseQuery("(a:1)-[3]->(b:2); (b)-[4]->(c)");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->vertex_constraint(0), 1u);
  EXPECT_EQ(q->vertex_constraint(1), 2u);
  EXPECT_EQ(q->vertex_constraint(2), QueryGraph::kAnyVertexLabel);
  EXPECT_TRUE(q->has_vertex_constraints());
}

TEST(ParserTest, ConstraintDeclaredOnLaterMention) {
  auto q = ParseQuery("(a)-[3]->(b); (b:7)-[4]->(c)");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->vertex_constraint(1), 7u);
}

TEST(ParserTest, ConflictingConstraintRejected) {
  EXPECT_FALSE(ParseQuery("(a:1)-[3]->(b); (a:2)-[4]->(c)").ok());
}

TEST(ParserTest, UnconstrainedQueryHasNoConstraintVector) {
  auto q = ParseQuery("(a)-[3]->(b)");
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(q->has_vertex_constraints());
}

TEST(ParserTest, ConstrainedFormatRoundTrip) {
  auto q = ParseQuery("(a:1)-[3]->(b); (b)<-[7]-(c:2)");
  ASSERT_TRUE(q.ok());
  auto q2 = ParseQuery(FormatQuery(*q));
  ASSERT_TRUE(q2.ok());
  EXPECT_EQ(q->CanonicalCode(), q2->CanonicalCode());
}

TEST(ParserTest, FormatRoundTrip) {
  auto q = ParseQuery("(a)-[3]->(b); (b)<-[7]-(c)");
  ASSERT_TRUE(q.ok());
  auto q2 = ParseQuery(FormatQuery(*q));
  ASSERT_TRUE(q2.ok());
  EXPECT_EQ(q->edges(), q2->edges());
  EXPECT_EQ(q->num_vertices(), q2->num_vertices());
}

}  // namespace
}  // namespace cegraph::query
