#include <gtest/gtest.h>

#include <cmath>

#include "ceg/ceg.h"

namespace cegraph::ceg {
namespace {

/// Diamond CEG: src -> a (2), src -> b (3), a -> sink (5), b -> sink (7),
/// plus a long path src -> a -> c -> sink (a->c 1, c->sink 10).
Ceg MakeDiamond() {
  Ceg ceg;
  const uint32_t src = ceg.AddNode("src");
  const uint32_t a = ceg.AddNode("a");
  const uint32_t b = ceg.AddNode("b");
  const uint32_t c = ceg.AddNode("c");
  const uint32_t sink = ceg.AddNode("sink");
  ceg.SetSource(src);
  ceg.SetSink(sink);
  ceg.AddEdge(src, a, 2);
  ceg.AddEdge(src, b, 3);
  ceg.AddEdge(a, sink, 5);
  ceg.AddEdge(b, sink, 7);
  ceg.AddEdge(a, c, 1);
  ceg.AddEdge(c, sink, 10);
  return ceg;
}

TEST(CegTest, AggregatesOverAllPaths) {
  Ceg ceg = MakeDiamond();
  auto agg = ceg.ComputeAggregates();
  ASSERT_TRUE(agg.ok());
  EXPECT_TRUE(agg->reachable);
  // Paths: 2*5=10, 3*7=21, 2*1*10=20.
  EXPECT_DOUBLE_EQ(agg->path_count, 3.0);
  EXPECT_NEAR(std::exp2(agg->min_log), 10.0, 1e-9);
  EXPECT_NEAR(std::exp2(agg->max_log), 21.0, 1e-9);
  EXPECT_NEAR(agg->avg_estimate, (10.0 + 21.0 + 20.0) / 3.0, 1e-9);
}

TEST(CegTest, PerHopAggregates) {
  Ceg ceg = MakeDiamond();
  auto agg = ceg.ComputeAggregates();
  ASSERT_TRUE(agg.ok());
  ASSERT_EQ(agg->per_hop.size(), 2u);
  const auto& two_hop = agg->per_hop[0];
  EXPECT_EQ(two_hop.hops, 2);
  EXPECT_DOUBLE_EQ(two_hop.path_count, 2.0);
  EXPECT_NEAR(std::exp2(two_hop.min_log), 10.0, 1e-9);
  EXPECT_NEAR(std::exp2(two_hop.max_log), 21.0, 1e-9);
  const auto& three_hop = agg->per_hop[1];
  EXPECT_EQ(three_hop.hops, 3);
  EXPECT_DOUBLE_EQ(three_hop.path_count, 1.0);
  EXPECT_NEAR(std::exp2(three_hop.min_log), 20.0, 1e-9);
}

TEST(CegTest, DijkstraMatchesMinPath) {
  Ceg ceg = MakeDiamond();
  auto min_log = ceg.MinLogWeightDijkstra();
  ASSERT_TRUE(min_log.ok());
  EXPECT_NEAR(std::exp2(*min_log), 10.0, 1e-9);
}

TEST(CegTest, EnumerateSimplePathsFindsAll) {
  Ceg ceg = MakeDiamond();
  bool truncated = true;
  auto paths = ceg.EnumerateSimplePaths(100, &truncated);
  EXPECT_FALSE(truncated);
  EXPECT_EQ(paths.size(), 3u);
  double min_est = 1e18, max_est = 0;
  for (const auto& p : paths) {
    min_est = std::min(min_est, std::exp2(p.log_weight));
    max_est = std::max(max_est, std::exp2(p.log_weight));
  }
  EXPECT_NEAR(min_est, 10.0, 1e-9);
  EXPECT_NEAR(max_est, 21.0, 1e-9);
}

TEST(CegTest, EnumerateRespectsCap) {
  Ceg ceg = MakeDiamond();
  bool truncated = false;
  auto paths = ceg.EnumerateSimplePaths(2, &truncated);
  EXPECT_TRUE(truncated);
  EXPECT_EQ(paths.size(), 2u);
}

TEST(CegTest, BestPathMaxHop) {
  Ceg ceg = MakeDiamond();
  auto path = ceg.BestPath(Ceg::HopMode::kMaxHop, /*maximize=*/true);
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(path->hops(), 3);
  EXPECT_NEAR(std::exp2(path->log_weight), 20.0, 1e-9);
}

TEST(CegTest, BestPathMinHopMin) {
  Ceg ceg = MakeDiamond();
  auto path = ceg.BestPath(Ceg::HopMode::kMinHop, /*maximize=*/false);
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(path->hops(), 2);
  EXPECT_NEAR(std::exp2(path->log_weight), 10.0, 1e-9);
}

TEST(CegTest, BestPathAllHopsMax) {
  Ceg ceg = MakeDiamond();
  auto path = ceg.BestPath(Ceg::HopMode::kAllHops, /*maximize=*/true);
  ASSERT_TRUE(path.ok());
  EXPECT_NEAR(std::exp2(path->log_weight), 21.0, 1e-9);
  // Edge sequence must be consistent: connected from source to sink.
  uint32_t cur = ceg.source();
  for (uint32_t ei : path->edge_indices) {
    EXPECT_EQ(ceg.edges()[ei].from, cur);
    cur = ceg.edges()[ei].to;
  }
  EXPECT_EQ(cur, ceg.sink());
}

TEST(CegTest, IsDagDetectsCycle) {
  Ceg ceg;
  const uint32_t a = ceg.AddNode("a");
  const uint32_t b = ceg.AddNode("b");
  ceg.AddEdge(a, b, 1);
  EXPECT_TRUE(ceg.IsDag());
  ceg.AddEdge(b, a, 1);
  EXPECT_FALSE(ceg.IsDag());
}

TEST(CegTest, AggregatesFailOnCyclicCeg) {
  Ceg ceg;
  const uint32_t a = ceg.AddNode("a");
  const uint32_t b = ceg.AddNode("b");
  ceg.AddEdge(a, b, 2);
  ceg.AddEdge(b, a, 2);
  ceg.SetSource(a);
  ceg.SetSink(b);
  EXPECT_FALSE(ceg.ComputeAggregates().ok());
}

TEST(CegTest, DijkstraWorksWithCycles) {
  Ceg ceg;
  const uint32_t a = ceg.AddNode("a");
  const uint32_t b = ceg.AddNode("b");
  const uint32_t c = ceg.AddNode("c");
  ceg.AddEdge(a, b, 4);
  ceg.AddEdge(b, a, 1);  // cycle back (weight 1 = log 0)
  ceg.AddEdge(b, c, 2);
  ceg.AddEdge(a, c, 16);
  ceg.SetSource(a);
  ceg.SetSink(c);
  auto min_log = ceg.MinLogWeightDijkstra();
  ASSERT_TRUE(min_log.ok());
  EXPECT_NEAR(std::exp2(*min_log), 8.0, 1e-9);
}

TEST(CegTest, UnreachableSink) {
  Ceg ceg;
  const uint32_t a = ceg.AddNode("a");
  const uint32_t b = ceg.AddNode("b");
  ceg.SetSource(a);
  ceg.SetSink(b);
  auto agg = ceg.ComputeAggregates();
  ASSERT_TRUE(agg.ok());
  EXPECT_FALSE(agg->reachable);
  auto min_log = ceg.MinLogWeightDijkstra();
  ASSERT_TRUE(min_log.ok());
  EXPECT_TRUE(std::isinf(*min_log));
  EXPECT_TRUE(ceg.EnumerateSimplePaths(10).empty());
  EXPECT_FALSE(ceg.BestPath(Ceg::HopMode::kMaxHop, true).ok());
}

TEST(CegTest, ZeroWeightEdgePropagates) {
  Ceg ceg;
  const uint32_t a = ceg.AddNode("a");
  const uint32_t b = ceg.AddNode("b");
  ceg.AddEdge(a, b, 0.0);
  ceg.SetSource(a);
  ceg.SetSink(b);
  auto agg = ceg.ComputeAggregates();
  ASSERT_TRUE(agg.ok());
  EXPECT_TRUE(agg->reachable);
  EXPECT_TRUE(std::isinf(agg->min_log));
  EXPECT_DOUBLE_EQ(agg->avg_estimate, 0.0);
}

TEST(CegTest, ParallelEdgesCountAsDistinctPaths) {
  Ceg ceg;
  const uint32_t a = ceg.AddNode("a");
  const uint32_t b = ceg.AddNode("b");
  ceg.AddEdge(a, b, 2);
  ceg.AddEdge(a, b, 8);
  ceg.SetSource(a);
  ceg.SetSink(b);
  auto agg = ceg.ComputeAggregates();
  ASSERT_TRUE(agg.ok());
  EXPECT_DOUBLE_EQ(agg->path_count, 2.0);
  EXPECT_NEAR(agg->avg_estimate, 5.0, 1e-9);
}

}  // namespace
}  // namespace cegraph::ceg
