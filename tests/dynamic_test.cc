// Tests for the dynamic graph layer: DeltaGraph overlay reads vs
// compaction, fingerprint/delta-hash identities, incremental SumRDF
// maintenance, and the end-to-end equivalence contract — after a delta
// batch, every registry estimator must produce bit-identical estimates on
// (incrementally maintained context) vs a cold full rebuild over the
// compacted graph; stale snapshots must replay to the same place.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <limits>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "dynamic/delta_graph.h"
#include "dynamic/delta_io.h"
#include "dynamic/stats_maintainer.h"
#include "engine/engine.h"
#include "engine/snapshot.h"
#include "graph/generators.h"
#include "query/templates.h"
#include "query/workload.h"
#include "stats/summary_graph.h"

namespace cegraph::dynamic {
namespace {

class TempFile {
 public:
  explicit TempFile(const std::string& stem)
      : path_((std::filesystem::temp_directory_path() /
               ("cegraph_dynamic_test_" + stem + ".snap"))
                  .string()) {
    std::remove(path_.c_str());
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

graph::Graph SmallGraph(uint64_t seed = 7) {
  graph::GeneratorConfig config;
  config.num_vertices = 400;
  config.num_edges = 2400;
  config.num_labels = 6;
  config.seed = seed;
  auto g = graph::GenerateGraph(config);
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

/// Acyclic and cyclic templates, per the equivalence acceptance criterion.
std::vector<query::WorkloadQuery> SmallWorkload(const graph::Graph& g) {
  query::WorkloadOptions options;
  options.instances_per_template = 3;
  options.seed = 99;
  auto wl = query::GenerateWorkload(g,
                                    {{"path2", query::PathShape(2)},
                                     {"star2", query::StarShape(2)},
                                     {"tri", query::CycleShape(3)},
                                     {"cyc4", query::CycleShape(4)}},
                                    options);
  EXPECT_TRUE(wl.ok());
  return std::move(wl).value();
}

/// A deterministic mixed batch: deletes of existing edges (every stride-th)
/// plus inserts of fresh edges, with a redundant insert and a no-op delete
/// thrown in to exercise the net-delta semantics.
std::vector<EdgeDelta> MixedBatch(const graph::Graph& g, size_t deletes,
                                  size_t inserts, uint64_t seed = 5) {
  std::vector<EdgeDelta> batch;
  const auto& edges = g.edges();
  const size_t stride = std::max<size_t>(1, edges.size() / (deletes + 1));
  for (size_t i = 0; i < deletes && i * stride < edges.size(); ++i) {
    batch.push_back({edges[i * stride], DeltaOp::kDelete});
  }
  std::mt19937_64 rng(seed);
  while (inserts > 0) {
    graph::Edge e{static_cast<graph::VertexId>(rng() % g.num_vertices()),
                  static_cast<graph::VertexId>(rng() % g.num_vertices()),
                  static_cast<graph::Label>(rng() % g.num_labels())};
    if (g.HasEdge(e.src, e.dst, e.label)) continue;
    batch.push_back({e, DeltaOp::kInsert});
    --inserts;
  }
  if (!edges.empty()) {
    batch.push_back({edges[1], DeltaOp::kInsert});  // no-op: already present
  }
  return batch;
}

std::vector<double> AllEstimates(
    const engine::EstimationEngine& engine,
    const std::vector<query::WorkloadQuery>& workload) {
  std::vector<double> out;
  for (const std::string& name :
       engine::EstimatorRegistry::Default().RegisteredNames()) {
    auto estimator = engine.Estimator(name);
    EXPECT_TRUE(estimator.ok()) << name;
    for (const query::WorkloadQuery& wq : workload) {
      auto est = (*estimator)->Estimate(wq.query);
      out.push_back(est.ok() ? *est
                             : std::numeric_limits<double>::quiet_NaN());
    }
  }
  return out;
}

void ExpectBitIdentical(const std::vector<double>& a,
                        const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::isnan(a[i])) {
      EXPECT_TRUE(std::isnan(b[i])) << "index " << i;
    } else {
      EXPECT_EQ(a[i], b[i]) << "index " << i;  // exact, not approximate
    }
  }
}

TEST(GraphFingerprintTest, OrderIndependent) {
  const graph::Graph reference = SmallGraph();
  std::vector<graph::Edge> edges = reference.edges();
  for (uint64_t seed : {1u, 2u, 3u}) {
    std::mt19937_64 rng(seed);
    std::shuffle(edges.begin(), edges.end(), rng);
    auto permuted =
        graph::Graph::Create(reference.num_vertices(), reference.num_labels(),
                             edges, reference.vertex_labels());
    ASSERT_TRUE(permuted.ok());
    EXPECT_EQ(permuted->fingerprint(), reference.fingerprint()) << seed;
  }
  // Duplicated edges deduplicate to the same fingerprint.
  std::vector<graph::Edge> doubled = reference.edges();
  doubled.insert(doubled.end(), edges.begin(), edges.end());
  auto deduped =
      graph::Graph::Create(reference.num_vertices(), reference.num_labels(),
                           doubled, reference.vertex_labels());
  ASSERT_TRUE(deduped.ok());
  EXPECT_EQ(deduped->fingerprint(), reference.fingerprint());
}

TEST(DeltaGraphTest, MergedReadsMatchCompaction) {
  const graph::Graph g = SmallGraph();
  DeltaGraph overlay(g);
  ASSERT_TRUE(overlay.Apply(MixedBatch(g, 60, 80)).ok());

  auto compacted = overlay.Compact();
  ASSERT_TRUE(compacted.ok());
  EXPECT_EQ(overlay.num_edges(), compacted->num_edges());

  for (graph::Label l = 0; l < g.num_labels(); ++l) {
    ASSERT_EQ(overlay.RelationSize(l), compacted->RelationSize(l)) << l;
    for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
      ASSERT_EQ(overlay.OutDegree(v, l), compacted->OutDegree(v, l));
      ASSERT_EQ(overlay.InDegree(v, l), compacted->InDegree(v, l));
      const auto out = overlay.OutNeighbors(v, l);
      const auto expected_out = compacted->OutNeighbors(v, l);
      ASSERT_TRUE(std::equal(out.begin(), out.end(), expected_out.begin(),
                             expected_out.end()))
          << "out v=" << v << " l=" << l;
      const auto in = overlay.InNeighbors(v, l);
      const auto expected_in = compacted->InNeighbors(v, l);
      ASSERT_TRUE(std::equal(in.begin(), in.end(), expected_in.begin(),
                             expected_in.end()))
          << "in v=" << v << " l=" << l;
    }
  }
  // Membership spot checks across the whole merged edge set.
  for (const graph::Edge& e : compacted->edges()) {
    ASSERT_TRUE(overlay.HasEdge(e.src, e.dst, e.label));
  }
}

TEST(DeltaGraphTest, NetSemanticsAndHashReversal) {
  const graph::Graph g = SmallGraph();
  DeltaGraph overlay(g);
  const graph::Edge existing = g.edges()[0];
  graph::Edge fresh{1, 2, 0};
  while (g.HasEdge(fresh.src, fresh.dst, fresh.label)) ++fresh.dst;

  // Inserting an existing edge is a no-op.
  ASSERT_TRUE(overlay.Apply(std::vector<EdgeDelta>{
                                {existing, DeltaOp::kInsert}})
                  .ok());
  EXPECT_EQ(overlay.delta_size(), 0u);
  EXPECT_EQ(overlay.delta_hash(), 0u);
  EXPECT_EQ(overlay.epoch(), 1u);  // the batch was still observed

  // Insert then delete of a fresh edge cancels back to the base.
  ASSERT_TRUE(
      overlay.Apply(std::vector<EdgeDelta>{{fresh, DeltaOp::kInsert}}).ok());
  EXPECT_EQ(overlay.delta_size(), 1u);
  EXPECT_NE(overlay.delta_hash(), 0u);
  ASSERT_TRUE(
      overlay.Apply(std::vector<EdgeDelta>{{fresh, DeltaOp::kDelete}}).ok());
  EXPECT_EQ(overlay.delta_size(), 0u);
  EXPECT_EQ(overlay.delta_hash(), 0u);
  EXPECT_EQ(overlay.num_edges(), g.num_edges());

  // Delete then re-insert of a base edge also cancels.
  ASSERT_TRUE(
      overlay.Apply(std::vector<EdgeDelta>{{existing, DeltaOp::kDelete}})
          .ok());
  EXPECT_EQ(overlay.num_edges(), g.num_edges() - 1);
  EXPECT_FALSE(overlay.HasEdge(existing.src, existing.dst, existing.label));
  ASSERT_TRUE(
      overlay.Apply(std::vector<EdgeDelta>{{existing, DeltaOp::kInsert}})
          .ok());
  EXPECT_EQ(overlay.delta_hash(), 0u);
  EXPECT_EQ(overlay.num_edges(), g.num_edges());
}

TEST(DeltaGraphTest, DeltaHashStableUnderPermutation) {
  const graph::Graph g = SmallGraph();
  std::vector<EdgeDelta> batch = MixedBatch(g, 40, 40);

  DeltaGraph reference(g);
  ASSERT_TRUE(reference.Apply(batch).ok());
  ASSERT_NE(reference.delta_hash(), 0u);

  // Permuted insert orders must agree on the whole fingerprint triple.
  // (Only pure permutations of net-effective ops are order-independent;
  // MixedBatch's trailing no-op is order-independent too since it never
  // takes effect.)
  for (uint64_t seed : {11u, 22u, 33u}) {
    std::mt19937_64 rng(seed);
    std::shuffle(batch.begin(), batch.end(), rng);
    DeltaGraph permuted(g);
    ASSERT_TRUE(permuted.Apply(batch).ok());
    EXPECT_EQ(permuted.fingerprint(), reference.fingerprint()) << seed;
  }

  // Splitting into two batches keeps the delta hash (the net log is the
  // same) and advances the epoch differently.
  DeltaGraph split(g);
  const size_t half = batch.size() / 2;
  ASSERT_TRUE(
      split.Apply(std::span<const EdgeDelta>(batch).subspan(0, half)).ok());
  ASSERT_TRUE(
      split.Apply(std::span<const EdgeDelta>(batch).subspan(half)).ok());
  EXPECT_EQ(split.delta_hash(), reference.delta_hash());
  EXPECT_EQ(split.epoch(), 2u);
  EXPECT_EQ(reference.epoch(), 1u);
}

TEST(DeltaGraphTest, RejectsOutOfRangeOpsAtomically) {
  const graph::Graph g = SmallGraph();
  DeltaGraph overlay(g);
  std::vector<EdgeDelta> batch = MixedBatch(g, 5, 5);
  batch.push_back({{0, 1, g.num_labels()}, DeltaOp::kInsert});
  auto status = overlay.Apply(batch);
  EXPECT_EQ(status.code(), util::StatusCode::kInvalidArgument);
  // Nothing applied, epoch untouched.
  EXPECT_EQ(overlay.delta_size(), 0u);
  EXPECT_EQ(overlay.epoch(), 0u);

  batch.back() = {{g.num_vertices(), 0, 0}, DeltaOp::kDelete};
  EXPECT_EQ(overlay.Apply(batch).code(),
            util::StatusCode::kInvalidArgument);
}

TEST(SummaryGraphDynamicTest, IncrementalMatchesColdRebuild) {
  const graph::Graph g = SmallGraph();
  DeltaGraph overlay(g);
  ASSERT_TRUE(overlay.Apply(MixedBatch(g, 80, 100)).ok());
  const NetDelta net = overlay.CollectNetDelta();
  auto compacted = overlay.Compact();
  ASSERT_TRUE(compacted.ok());

  stats::SummaryGraph incremental(g, 32);
  size_t moved = 0;
  incremental.ApplyDeltas(g, *compacted, net.deleted, net.inserted, &moved);
  const stats::SummaryGraph cold(*compacted, 32);

  ASSERT_EQ(incremental.num_buckets(), cold.num_buckets());
  for (uint32_t b = 0; b < cold.num_buckets(); ++b) {
    EXPECT_EQ(incremental.bucket_size(b), cold.bucket_size(b)) << b;
  }
  for (graph::Label l = 0; l < g.num_labels(); ++l) {
    for (uint32_t b = 0; b < cold.num_buckets(); ++b) {
      const auto& out_inc = incremental.OutEdges(b, l);
      const auto& out_cold = cold.OutEdges(b, l);
      ASSERT_EQ(out_inc, out_cold) << "out l=" << l << " b=" << b;
      const auto& in_inc = incremental.InEdges(b, l);
      const auto& in_cold = cold.InEdges(b, l);
      ASSERT_EQ(in_inc, in_cold) << "in l=" << l << " b=" << b;
    }
  }
}

TEST(CanonicalCodeParseTest, ExtractsLabelsExactly) {
  std::vector<bool> changed(10, false);
  changed[3] = true;
  auto q = query::QueryGraph::Create(
      3, {{0, 1, 2}, {1, 2, 5}});
  EXPECT_FALSE(CodeTouchesChangedLabel(q->CanonicalCode(), changed, 10));
  auto touching = query::QueryGraph::Create(3, {{0, 1, 2}, {1, 2, 3}});
  EXPECT_TRUE(
      CodeTouchesChangedLabel(touching->CanonicalCode(), changed, 10));
  // Marked dispersion keys unwrap through the modulus.
  auto marked = query::QueryGraph::Create(3, {{0, 1, 2}, {1, 2, 13}});
  EXPECT_TRUE(CodeTouchesChangedLabel(marked->CanonicalCode(), changed, 10));
  // Malformed codes are conservatively treated as touching.
  EXPECT_TRUE(CodeTouchesChangedLabel("garbage", changed, 10));
}

// The acceptance criterion of the dynamic layer: for a mixed delta batch,
// every registry estimator produces bit-identical estimates on the
// incrementally maintained context vs a cold full rebuild of the compacted
// graph, across acyclic and cyclic templates.
TEST(DynamicContextTest, ApplyDeltasMatchesColdRebuild) {
  const graph::Graph g = SmallGraph();
  const auto workload = SmallWorkload(g);
  const auto batch = MixedBatch(g, 30, 40);

  engine::EstimationEngine incremental(g);
  engine::PrewarmOptions prewarm;
  prewarm.num_threads = 2;
  prewarm.dispersion = true;
  incremental.context().Prewarm(workload, prewarm);
  // Warm the CEG cache pre-delta so its targeted invalidation is on the
  // equivalence path too.
  (void)AllEstimates(incremental, workload);

  auto report = incremental.ApplyDeltas(batch);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_GT(report->inserted_edges, 0u);
  EXPECT_GT(report->deleted_edges, 0u);
  EXPECT_GT(report->markov_exact_updates, 0u);
  EXPECT_TRUE(report->summary_updated);
  EXPECT_TRUE(report->char_sets_dropped);
  EXPECT_EQ(incremental.context().epoch(), 1u);
  EXPECT_NE(incremental.context().dynamic_fingerprint().delta_hash, 0u);

  DeltaGraph overlay(g);
  ASSERT_TRUE(overlay.Apply(batch).ok());
  auto compacted = overlay.Compact();
  ASSERT_TRUE(compacted.ok());
  EXPECT_EQ(incremental.context().graph().fingerprint(),
            compacted->fingerprint());

  engine::EstimationEngine cold(*compacted);
  ExpectBitIdentical(AllEstimates(incremental, workload),
                     AllEstimates(cold, workload));
}

// With mid-hop-free closing-rate sampling the rate cache is evicted
// per-key: entries over untouched labels survive the delta and the OCR
// estimators still match a cold rebuild bit-for-bit.
TEST(DynamicContextTest, TargetedClosingRateEviction) {
  const graph::Graph g = SmallGraph();
  const auto workload = SmallWorkload(g);

  engine::ContextOptions options;
  options.cycle_closing.max_mid_hops = 0;

  engine::EstimationEngine incremental(g, options);
  incremental.context().Prewarm(workload);
  const size_t warm_rates =
      incremental.context().cycle_closing_rates().num_cached();
  ASSERT_GT(warm_rates, 0u);

  // Touch only label 0: delete its first few edges.
  std::vector<EdgeDelta> batch;
  for (const graph::Edge& e : g.RelationEdges(0)) {
    batch.push_back({e, DeltaOp::kDelete});
    if (batch.size() == 5) break;
  }
  ASSERT_EQ(batch.size(), 5u);
  auto report = incremental.ApplyDeltas(batch);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->changed_labels, 1u);
  EXPECT_GT(report->closing_carried, 0u);  // targeted, not wholesale
  EXPECT_EQ(report->closing_carried + report->closing_evicted, warm_rates);

  DeltaGraph overlay(g);
  ASSERT_TRUE(overlay.Apply(batch).ok());
  auto compacted = overlay.Compact();
  ASSERT_TRUE(compacted.ok());
  engine::EstimationEngine cold(*compacted, options);
  ExpectBitIdentical(AllEstimates(incremental, workload),
                     AllEstimates(cold, workload));
}

TEST(DynamicContextTest, StaleSnapshotReplaysToColdEquivalence) {
  const graph::Graph g = SmallGraph();
  const auto workload = SmallWorkload(g);
  const auto batch = MixedBatch(g, 25, 30);
  TempFile file("stale");

  // Snapshot at the base epoch.
  {
    engine::EstimationEngine base(g);
    base.context().Prewarm(workload);
    ASSERT_TRUE(base.context().SaveSnapshot(file.path()).ok());
  }

  // A drifted context loads it: stale but usable.
  engine::EstimationEngine drifted(g);
  ASSERT_TRUE(drifted.ApplyDeltas(batch).ok());
  engine::EstimationContext::SnapshotLoadReport report;
  auto loaded = drifted.context().LoadSnapshot(file.path(), &report);
  ASSERT_TRUE(loaded.ok()) << loaded;
  EXPECT_TRUE(report.stale);
  EXPECT_EQ(report.snapshot_epoch, 0u);
  EXPECT_GT(report.replayed_deltas, 0u);
  EXPECT_GT(report.evicted_entries, 0u);

  DeltaGraph overlay(g);
  ASSERT_TRUE(overlay.Apply(batch).ok());
  auto compacted = overlay.Compact();
  ASSERT_TRUE(compacted.ok());
  engine::EstimationEngine cold(*compacted);
  ExpectBitIdentical(AllEstimates(drifted, workload),
                     AllEstimates(cold, workload));
}

TEST(DynamicContextTest, SnapshotMismatchesAreRejectedLoudly) {
  const graph::Graph g = SmallGraph(7);
  const auto workload = SmallWorkload(g);
  const auto batch = MixedBatch(g, 10, 10);
  TempFile file("mismatch");

  // A post-delta (version 2) snapshot...
  engine::EstimationEngine drifted(g);
  drifted.context().Prewarm(workload);
  ASSERT_TRUE(drifted.ApplyDeltas(batch).ok());
  ASSERT_TRUE(drifted.context().SaveSnapshot(file.path()).ok());

  // ...is rejected by a pristine context over the base graph (it has no
  // way to verify or replay the snapshot's delta log)...
  engine::EstimationEngine pristine(g);
  auto loaded = pristine.context().LoadSnapshot(file.path());
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.code(), util::StatusCode::kFailedPrecondition);

  // ...and by a context over a different graph entirely.
  const graph::Graph other = SmallGraph(8);
  engine::EstimationEngine unrelated(other);
  loaded = unrelated.context().LoadSnapshot(file.path());
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.code(), util::StatusCode::kFailedPrecondition);

  // A context that applied a *different* batch is also a mismatch.
  engine::EstimationEngine diverged(g);
  ASSERT_TRUE(diverged.ApplyDeltas(MixedBatch(g, 3, 3, 1234)).ok());
  loaded = diverged.context().LoadSnapshot(file.path());
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.code(), util::StatusCode::kFailedPrecondition);

  // The drifted context itself reloads its own snapshot as fresh.
  engine::EstimationContext::SnapshotLoadReport report;
  ASSERT_TRUE(drifted.context().LoadSnapshot(file.path(), &report).ok());
  EXPECT_FALSE(report.stale);
}

// A post-delta snapshot is self-contained: a consumer holding only the
// base graph replays the embedded delta log to reconstruct the described
// graph state, after which the load is fresh and estimates match the
// producer bit for bit.
TEST(DynamicContextTest, EmbeddedDeltaLogReconstructsSnapshotState) {
  const graph::Graph g = SmallGraph();
  const auto workload = SmallWorkload(g);
  const auto batch = MixedBatch(g, 20, 25);
  TempFile file("reconstruct");

  engine::EstimationEngine producer(g);
  producer.context().Prewarm(workload);
  ASSERT_TRUE(producer.ApplyDeltas(batch).ok());
  ASSERT_TRUE(producer.context().SaveSnapshot(file.path()).ok());

  auto log = engine::ReadSnapshotDeltaLog(file.path());
  ASSERT_TRUE(log.ok()) << log.status();
  ASSERT_FALSE(log->empty());

  engine::EstimationEngine consumer(g);
  // Without the replay the snapshot does not apply...
  EXPECT_EQ(consumer.context().LoadSnapshot(file.path()).code(),
            util::StatusCode::kFailedPrecondition);
  // ...after it, the load is fresh (content match, not log-prefix match).
  ASSERT_TRUE(consumer.ApplyDeltas(*log).ok());
  engine::EstimationContext::SnapshotLoadReport report;
  ASSERT_TRUE(consumer.context().LoadSnapshot(file.path(), &report).ok());
  EXPECT_FALSE(report.stale);

  ExpectBitIdentical(AllEstimates(consumer, workload),
                     AllEstimates(producer, workload));
}

TEST(DeltaIoTest, RoundTripsAndRejectsGarbage) {
  const graph::Graph g = SmallGraph();
  const auto batch = MixedBatch(g, 8, 8);
  std::ostringstream os;
  ASSERT_TRUE(WriteDeltaText(batch, os).ok());
  std::istringstream is(os.str());
  auto loaded = ReadDeltaText(is);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ((*loaded)[i], batch[i]) << i;
  }

  std::istringstream bad("+ 1 2\n");
  EXPECT_EQ(ReadDeltaText(bad).status().code(),
            util::StatusCode::kInvalidArgument);
  std::istringstream bad_op("* 1 2 3\n");
  EXPECT_EQ(ReadDeltaText(bad_op).status().code(),
            util::StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace cegraph::dynamic
