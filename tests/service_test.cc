// Tests for the serving layer: request parsing, admission control, wire
// codecs and framing, the engine's offside state fork + replay-log
// truncation, the EstimationService's RCU hot-swap semantics (including
// the concurrent estimate-while-swap hammer), and the TCP loopback path.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <limits>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "dynamic/delta_io.h"
#include "engine/engine.h"
#include "engine/snapshot.h"
#include "graph/generators.h"
#include "harness/service_driver.h"
#include "obs/metrics.h"
#include "query/parser.h"
#include "query/workload.h"
#include "service/admission.h"
#include "service/catalog.h"
#include "service/request.h"
#include "service/server.h"
#include "service/service.h"
#include "service/wire.h"
#include "util/serde.h"

namespace cegraph::service {
namespace {

class TempFile {
 public:
  explicit TempFile(const std::string& stem)
      : path_((std::filesystem::temp_directory_path() /
               ("cegraph_service_test_" + stem + ".snap"))
                  .string()) {
    std::remove(path_.c_str());
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

graph::Graph SmallGraph(uint64_t seed = 7) {
  graph::GeneratorConfig config;
  config.num_vertices = 300;
  config.num_edges = 1800;
  config.num_labels = 6;
  config.seed = seed;
  auto g = graph::GenerateGraph(config);
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

std::vector<query::WorkloadQuery> SmallWorkload(const graph::Graph& g,
                                                int instances = 3) {
  query::WorkloadOptions options;
  options.instances_per_template = instances;
  options.seed = 99;
  auto wl = query::GenerateWorkload(g,
                                    {{"path2", query::PathShape(2)},
                                     {"star2", query::StarShape(2)},
                                     {"tri", query::CycleShape(3)}},
                                    options);
  EXPECT_TRUE(wl.ok());
  return std::move(wl).value();
}

/// Deterministic serving suite (no sampling estimators) shared by the
/// consistency-sensitive tests.
ServiceOptions DeterministicOptions() {
  ServiceOptions options;
  options.estimators = {"max-hop-max", "all-hops-avg", "molp", "cbs"};
  options.compact_trigger_ops = 0;  // maintenance only on explicit flush
  return options;
}

/// Every estimate of `names` on `engine` for the workload's queries, in
/// (query, estimator) order; NaN for failures.
std::vector<double> AllEstimates(
    const engine::EstimationEngine& engine,
    const std::vector<std::string>& names,
    const std::vector<query::WorkloadQuery>& workload) {
  std::vector<double> out;
  auto estimators = engine.Estimators(names);
  EXPECT_TRUE(estimators.ok());
  for (const query::WorkloadQuery& wq : workload) {
    for (const CardinalityEstimator* estimator : *estimators) {
      auto est = estimator->Estimate(wq.query);
      out.push_back(est.ok() ? *est
                             : std::numeric_limits<double>::quiet_NaN());
    }
  }
  return out;
}

void ExpectBitIdentical(const std::vector<double>& a,
                        const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::isnan(a[i]) && std::isnan(b[i])) continue;
    EXPECT_EQ(a[i], b[i]) << "at " << i;
  }
}

// --- ParseRequestLine -------------------------------------------------------

TEST(RequestParseTest, BarePattern) {
  auto request = ParseRequestLine("  (a)-[3]->(b); (b)<-[5]-(c)  ");
  ASSERT_TRUE(request.ok()) << request.status();
  EXPECT_FALSE(request->truth.has_value());
  EXPECT_TRUE(request->template_name.empty());
  EXPECT_EQ(request->query.num_edges(), 2u);
}

TEST(RequestParseTest, WorkloadLineCarriesTruth) {
  auto request = ParseRequestLine("tri_7 1234.5 (a)-[0]->(b); (b)-[1]->(a)");
  ASSERT_TRUE(request.ok()) << request.status();
  ASSERT_TRUE(request->truth.has_value());
  EXPECT_EQ(*request->truth, 1234.5);
  EXPECT_EQ(request->template_name, "tri_7");
}

TEST(RequestParseTest, Rejections) {
  EXPECT_FALSE(ParseRequestLine("").ok());
  EXPECT_FALSE(ParseRequestLine("   ").ok());
  EXPECT_FALSE(ParseRequestLine("# comment").ok());
  EXPECT_FALSE(ParseRequestLine("tri notanumber (a)-[0]->(b)").ok());
  EXPECT_FALSE(ParseRequestLine("tri 10").ok());  // missing pattern
  // Disconnected pattern.
  EXPECT_FALSE(ParseRequestLine("(a)-[0]->(b); (c)-[1]->(d)").ok());
  // Unparseable pattern.
  EXPECT_FALSE(ParseRequestLine("(a)-[x]->(b)").ok());
}

// --- AdmissionController ----------------------------------------------------

TEST(AdmissionTest, CapsInFlight) {
  AdmissionController admission(2);
  auto t1 = admission.TryAdmit();
  auto t2 = admission.TryAdmit();
  EXPECT_TRUE(t1);
  EXPECT_TRUE(t2);
  EXPECT_EQ(admission.in_flight(), 2);
  auto t3 = admission.TryAdmit();
  EXPECT_FALSE(t3);
  EXPECT_EQ(admission.rejected(), 1u);
  { AdmissionController::Ticket moved = std::move(t1); }
  EXPECT_EQ(admission.in_flight(), 1);
  auto t4 = admission.TryAdmit();
  EXPECT_TRUE(t4);
  EXPECT_EQ(admission.admitted(), 3u);
  EXPECT_EQ(admission.peak_in_flight(), 2);
}

TEST(AdmissionTest, UnboundedNeverRejects) {
  AdmissionController admission(0);
  std::vector<AdmissionController::Ticket> tickets;
  for (int i = 0; i < 100; ++i) tickets.push_back(admission.TryAdmit());
  EXPECT_EQ(admission.rejected(), 0u);
  EXPECT_EQ(admission.in_flight(), 100);
}

TEST(AdmissionTest, WeightedAdmissionOvershootsByAtMostOneRequest) {
  // Capacity counts weight units, not requests; a request is admitted
  // while in-flight is *below* capacity and then charges its full weight.
  AdmissionController admission(10);
  auto t1 = admission.TryAdmit(4);
  auto t2 = admission.TryAdmit(5);
  EXPECT_TRUE(t1);
  EXPECT_TRUE(t2);
  EXPECT_EQ(admission.in_flight(), 9);
  // 9 < 10: still below capacity, so even a weight-8 request gets in —
  // the transient overshoot that keeps heavyweight batches from starving.
  auto t3 = admission.TryAdmit(8);
  EXPECT_TRUE(t3);
  EXPECT_EQ(admission.in_flight(), 17);
  // 17 >= 10: saturated; even a weight-1 request bounces now.
  auto t4 = admission.TryAdmit(1);
  EXPECT_FALSE(t4);
  EXPECT_EQ(admission.rejected(), 1u);
  { AdmissionController::Ticket released = std::move(t3); }
  EXPECT_EQ(admission.in_flight(), 9);
  auto t5 = admission.TryAdmit(1);
  EXPECT_TRUE(t5);
  EXPECT_EQ(admission.peak_in_flight(), 17);
}

TEST(AdmissionTest, ZeroWeightClampsToOne) {
  // A degenerate weight (empty batch, weightless request) still occupies
  // one unit — otherwise a flood of them would be invisible to admission.
  AdmissionController admission(2);
  auto t1 = admission.TryAdmit(0);
  EXPECT_TRUE(t1);
  EXPECT_EQ(admission.in_flight(), 1);
  auto t2 = admission.TryAdmit(0);
  EXPECT_TRUE(t2);
  EXPECT_EQ(admission.in_flight(), 2);
  EXPECT_FALSE(admission.TryAdmit(0));
}

// --- Wire codecs ------------------------------------------------------------

TEST(WireTest, RequestRoundTrip) {
  for (const auto type :
       {wire::MessageType::kEstimate, wire::MessageType::kApplyDeltas,
        wire::MessageType::kSwapSnapshot, wire::MessageType::kStats,
        wire::MessageType::kPing, wire::MessageType::kShutdown}) {
    wire::Request request{type, "some text\nwith lines"};
    auto decoded = wire::DecodeRequest(wire::EncodeRequest(request));
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    EXPECT_EQ(decoded->type, type);
    EXPECT_EQ(decoded->text, request.text);
  }
}

TEST(WireTest, RequestRejectsUnknownTypeAndTrailingBytes) {
  wire::Request request{wire::MessageType::kPing, "x"};
  std::string payload = wire::EncodeRequest(request);
  payload[0] = 99;
  auto unknown = wire::DecodeRequest(payload);
  EXPECT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), util::StatusCode::kUnimplemented);

  payload[0] = static_cast<char>(wire::MessageType::kPing);
  payload += "junk";
  EXPECT_FALSE(wire::DecodeRequest(payload).ok());
}

TEST(WireTest, EstimateResponseRoundTrip) {
  wire::Response response;
  response.type = wire::MessageType::kEstimate;
  response.estimate.epoch = 7;
  response.estimate.state_version = 3;
  response.estimate.total_micros = 123.25;
  response.estimate.has_truth = true;
  response.estimate.truth = 42;
  response.estimate.results = {
      {"molp", true, 99.5, "", 10.5, 2.3690476190476193},
      {"sumrdf", false, 0, "INTERNAL: timeout", 1000.0, 0},
  };
  auto decoded = wire::DecodeResponse(wire::EncodeResponse(response));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_TRUE(decoded->status.ok());
  EXPECT_EQ(decoded->estimate.epoch, 7u);
  EXPECT_EQ(decoded->estimate.state_version, 3u);
  ASSERT_EQ(decoded->estimate.results.size(), 2u);
  EXPECT_EQ(decoded->estimate.results[0].estimate, 99.5);
  EXPECT_EQ(decoded->estimate.results[0].qerror, 2.3690476190476193);
  EXPECT_FALSE(decoded->estimate.results[1].ok);
  EXPECT_EQ(decoded->estimate.results[1].error, "INTERNAL: timeout");
}

TEST(WireTest, ErrorResponseRoundTrip) {
  wire::Response response;
  response.type = wire::MessageType::kEstimate;
  response.status = util::ResourceExhaustedError("saturated");
  auto decoded = wire::DecodeResponse(wire::EncodeResponse(response));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->status.code(), util::StatusCode::kResourceExhausted);
  EXPECT_EQ(decoded->status.message(), "saturated");
}

TEST(WireTest, StatsAndSwapRoundTrip) {
  wire::Response response;
  response.type = wire::MessageType::kStats;
  response.stats.served = 10;
  response.stats.epoch = 2;
  response.stats.mean_latency_micros = 55.5;
  response.stats.estimators = {{"molp", 10, 1, 12.5, 3.25}};
  auto decoded = wire::DecodeResponse(wire::EncodeResponse(response));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->stats.served, 10u);
  ASSERT_EQ(decoded->stats.estimators.size(), 1u);
  EXPECT_EQ(decoded->stats.estimators[0].mean_qerror, 3.25);

  wire::Response swap;
  swap.type = wire::MessageType::kApplyDeltas;
  swap.swap.epoch = 4;
  swap.swap.applied_ops = 100;
  swap.swap.maintenance.inserted_edges = 60;
  auto swap_decoded = wire::DecodeResponse(wire::EncodeResponse(swap));
  ASSERT_TRUE(swap_decoded.ok()) << swap_decoded.status();
  EXPECT_EQ(swap_decoded->swap.epoch, 4u);
  EXPECT_EQ(swap_decoded->swap.applied_ops, 100u);
  EXPECT_EQ(swap_decoded->swap.maintenance.inserted_edges, 60u);
}

TEST(WireTest, BatchRequestAndResponseRoundTrip) {
  // v3 request: N lines plus the v2 trailing dataset.
  wire::Request request;
  request.type = wire::MessageType::kBatchEstimate;
  request.lines = {"(a)-[0]->(b)", "t 42 (a)-[1]->(b)", "garbage"};
  request.dataset = "alpha";
  auto decoded = wire::DecodeRequest(wire::EncodeRequest(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->type, wire::MessageType::kBatchEstimate);
  EXPECT_EQ(decoded->lines, request.lines);
  EXPECT_EQ(decoded->dataset, "alpha");

  // v3 response: per-item status — an error item travels without a body,
  // an OK item carries a full estimate.
  wire::Response response;
  response.type = wire::MessageType::kBatchEstimate;
  response.batch.resize(2);
  response.batch[0].estimate.epoch = 3;
  response.batch[0].estimate.state_version = 2;
  response.batch[0].estimate.results = {
      {"molp", true, 99.5, "", 10.5, 1.25}};
  response.batch[1].status = util::InvalidArgumentError("bad line");
  auto batch_decoded = wire::DecodeResponse(wire::EncodeResponse(response));
  ASSERT_TRUE(batch_decoded.ok()) << batch_decoded.status();
  ASSERT_EQ(batch_decoded->batch.size(), 2u);
  EXPECT_TRUE(batch_decoded->batch[0].status.ok());
  EXPECT_EQ(batch_decoded->batch[0].estimate.epoch, 3u);
  ASSERT_EQ(batch_decoded->batch[0].estimate.results.size(), 1u);
  EXPECT_EQ(batch_decoded->batch[0].estimate.results[0].estimate, 99.5);
  EXPECT_EQ(batch_decoded->batch[1].status.code(),
            util::StatusCode::kInvalidArgument);
  EXPECT_EQ(batch_decoded->batch[1].status.message(), "bad line");
}

TEST(WireTest, RejectsImplausibleResultCount) {
  // A well-framed estimate response whose result-count field claims 2^32-1
  // entries: must come back as a parse error, not a huge allocation.
  util::serde::Writer w;
  w.WriteU8(0);                // code OK
  w.WriteString("");           // error
  w.WriteU8(static_cast<uint8_t>(wire::MessageType::kEstimate));
  w.WriteU64(1);               // epoch
  w.WriteU64(0);               // state_version
  w.WriteDouble(0);            // total_micros
  w.WriteU8(0);                // has_truth
  w.WriteDouble(0);            // truth
  w.WriteU32(0xFFFFFFFFu);     // result count
  auto decoded = wire::DecodeResponse(w.buffer());
  EXPECT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), util::StatusCode::kInvalidArgument);
}

// --- ForkWithDeltas ---------------------------------------------------------

TEST(ForkTest, ForkMatchesInPlaceApplyAndLeavesSourceUntouched) {
  const graph::Graph g = SmallGraph();
  const auto workload = SmallWorkload(g);
  const std::vector<std::string> names = {"max-hop-max", "all-hops-avg",
                                          "molp", "cbs", "cs"};
  const auto batch = dynamic::RandomEdgeBatch(g, 60, 11);

  engine::EstimationEngine source(g);
  source.context().Prewarm(workload);
  const auto pre_fork_estimates = AllEstimates(source, names, workload);

  dynamic::MaintenanceReport fork_report;
  auto fork = source.context().ForkWithDeltas(batch, &fork_report);
  ASSERT_TRUE(fork.ok()) << fork.status();
  EXPECT_EQ((*fork)->epoch(), 1u);
  EXPECT_GT(fork_report.inserted_edges, 0u);

  // The source is untouched: epoch 0, identical estimates.
  EXPECT_EQ(source.context().epoch(), 0u);
  ExpectBitIdentical(AllEstimates(source, names, workload),
                     pre_fork_estimates);

  // The fork is bit-identical to the proven in-place path.
  engine::EstimationEngine in_place(g);
  in_place.context().Prewarm(workload);
  ASSERT_TRUE(in_place.ApplyDeltas(batch).ok());
  engine::EstimationEngine forked(std::move(*fork));
  EXPECT_EQ(forked.context().graph().fingerprint(),
            in_place.context().graph().fingerprint());
  ExpectBitIdentical(AllEstimates(forked, names, workload),
                     AllEstimates(in_place, names, workload));
  EXPECT_EQ(forked.context().dynamic_fingerprint().delta_hash,
            in_place.context().dynamic_fingerprint().delta_hash);
}

TEST(ForkTest, EmptyBatchSharesGraphAndAdvancesEpoch) {
  const graph::Graph g = SmallGraph();
  engine::EstimationContext context(g);
  (void)context.markov();
  // All no-ops: delete a missing edge, insert an existing one.
  std::vector<dynamic::EdgeDelta> batch = {
      {g.edges()[0], dynamic::DeltaOp::kInsert}};
  auto fork = context.ForkWithDeltas(batch);
  ASSERT_TRUE(fork.ok()) << fork.status();
  EXPECT_EQ((*fork)->epoch(), 1u);
  EXPECT_EQ(&(*fork)->graph(), &context.graph());
  EXPECT_EQ((*fork)->dynamic_fingerprint().delta_hash,
            context.dynamic_fingerprint().delta_hash);
}

TEST(ForkTest, CegCacheCarriesUnaffectedBuilds) {
  const graph::Graph g = SmallGraph();
  const auto workload = SmallWorkload(g);
  engine::EstimationEngine source(g);
  source.context().Prewarm(workload);
  (void)AllEstimates(source, {"max-hop-max"}, workload);
  ASSERT_GT(source.ceg_cache().size(), 0u);

  // Touch only label 0.
  std::vector<dynamic::EdgeDelta> batch;
  for (const graph::Edge& e : g.RelationEdges(0)) {
    batch.push_back({e, dynamic::DeltaOp::kDelete});
    if (batch.size() == 3) break;
  }
  auto fork = source.context().ForkWithDeltas(batch);
  ASSERT_TRUE(fork.ok()) << fork.status();
  // Builds over untouched labels were carried by reference.
  EXPECT_GT((*fork)->ceg_cache().size(), 0u);
  EXPECT_LT((*fork)->ceg_cache().size(), source.ceg_cache().size());
}

// --- TrimReplayLog ----------------------------------------------------------

TEST(TrimTest, TrimBoundsLogAndLimitsStaleReplay) {
  const graph::Graph g = SmallGraph();
  const auto workload = SmallWorkload(g);
  TempFile snap1("trim_epoch1"), snap2("trim_epoch2");

  engine::EstimationContext context(g);
  context.Prewarm(workload);
  ASSERT_TRUE(context.ApplyDeltas(dynamic::RandomEdgeBatch(g, 20, 1)).ok());
  ASSERT_TRUE(context.SaveSnapshot(snap1.path()).ok());  // epoch 1
  ASSERT_TRUE(
      context.ApplyDeltas(dynamic::RandomEdgeBatch(context.graph(), 20, 2))
          .ok());
  ASSERT_TRUE(context.SaveSnapshot(snap2.path()).ok());  // epoch 2
  ASSERT_TRUE(
      context.ApplyDeltas(dynamic::RandomEdgeBatch(context.graph(), 20, 3))
          .ok());
  ASSERT_EQ(context.epoch(), 3u);
  const size_t full_log = context.delta_log().size();

  // Trimming below the current base is a no-op; trimming to epoch 2 drops
  // the epochs 0->2 prefix.
  EXPECT_EQ(context.TrimReplayLog(0), 0u);
  const size_t trimmed = context.TrimReplayLog(2);
  EXPECT_GT(trimmed, 0u);
  EXPECT_EQ(context.min_replayable_epoch(), 2u);
  EXPECT_EQ(context.delta_log().size(), full_log - trimmed);
  EXPECT_EQ(context.TrimReplayLog(2), 0u);  // idempotent

  // The epoch-2 snapshot is still inside the window: stale but usable.
  engine::EstimationContext::SnapshotLoadReport report;
  auto ok_load = context.LoadSnapshot(snap2.path(), &report);
  ASSERT_TRUE(ok_load.ok()) << ok_load;
  EXPECT_TRUE(report.stale);
  EXPECT_EQ(report.snapshot_epoch, 2u);

  // The epoch-1 snapshot's replay suffix is gone: rejected, not wrongly
  // replayed.
  auto stale_load = context.LoadSnapshot(snap1.path());
  EXPECT_FALSE(stale_load.ok());
  EXPECT_EQ(stale_load.code(), util::StatusCode::kFailedPrecondition);

  // A snapshot saved after trimming carries no embedded delta log (a
  // suffix could not reconstruct the state from the base graph).
  TempFile snap3("trim_post");
  ASSERT_TRUE(context.SaveSnapshot(snap3.path()).ok());
  auto log = engine::ReadSnapshotDeltaLog(snap3.path());
  ASSERT_TRUE(log.ok()) << log.status();
  EXPECT_TRUE(log->empty());
}

// --- EstimationService ------------------------------------------------------

TEST(ServiceTest, EstimatesMatchDirectEngine) {
  const graph::Graph g = SmallGraph();
  auto service = EstimationService::Create(SmallGraph(),
                                           DeterministicOptions());
  ASSERT_TRUE(service.ok()) << service.status();

  engine::EstimationEngine direct(g);
  const std::string pattern = "(a)-[0]->(b); (b)-[1]->(c)";
  auto response = (*service)->EstimateLine(pattern);
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->epoch, 0u);
  EXPECT_EQ(response->state_version, 0u);
  ASSERT_EQ(response->results.size(), 4u);

  auto q = query::ParseQuery(pattern);
  ASSERT_TRUE(q.ok());
  for (const EstimatorResult& result : response->results) {
    auto estimator = direct.Estimator(result.name);
    ASSERT_TRUE(estimator.ok());
    auto expected = (*estimator)->Estimate(*q);
    ASSERT_TRUE(expected.ok());
    EXPECT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.estimate, *expected) << result.name;
  }
}

TEST(ServiceTest, RejectsOutOfRangeLabelsAndBadLines) {
  auto service = EstimationService::Create(SmallGraph(),
                                           DeterministicOptions());
  ASSERT_TRUE(service.ok()) << service.status();
  auto bad_label = (*service)->EstimateLine("(a)-[99]->(b)");
  EXPECT_FALSE(bad_label.ok());
  EXPECT_EQ(bad_label.status().code(), util::StatusCode::kInvalidArgument);
  EXPECT_FALSE((*service)->EstimateLine("garbage").ok());
  EXPECT_EQ((*service)->Stats().request_errors, 2u);
}

TEST(ServiceTest, TruthLineYieldsQError) {
  auto service = EstimationService::Create(SmallGraph(),
                                           DeterministicOptions());
  ASSERT_TRUE(service.ok()) << service.status();
  auto response = (*service)->EstimateLine("t 100 (a)-[0]->(b)");
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_TRUE(response->has_truth);
  for (const EstimatorResult& result : response->results) {
    if (result.ok) EXPECT_GE(result.qerror, 1.0);
  }
  const ServiceStats stats = (*service)->Stats();
  ASSERT_FALSE(stats.estimators.empty());
  EXPECT_GE(stats.estimators[0].mean_qerror, 1.0);
}

TEST(ServiceTest, SubmitRejectsInvalidDeltasAtTheDoor) {
  auto service = EstimationService::Create(SmallGraph(),
                                           DeterministicOptions());
  ASSERT_TRUE(service.ok()) << service.status();
  // Out-of-range endpoint: rejected whole, nothing queued — one
  // submitter's bad feed cannot sink another's folded-in valid batch.
  std::vector<dynamic::EdgeDelta> bad = {
      {{999999, 0, 0}, dynamic::DeltaOp::kInsert}};
  auto submitted = (*service)->SubmitDeltas(bad);
  EXPECT_EQ(submitted.code(), util::StatusCode::kInvalidArgument);
  EXPECT_EQ((*service)->Stats().pending_delta_ops, 0u);
  auto flushed = (*service)->FlushDeltas();
  ASSERT_TRUE(flushed.ok());
  EXPECT_EQ(flushed->epoch, 0u);  // nothing to fold
}

TEST(ServiceTest, DeltaFlushPublishesNewEpochOldStateStillServes) {
  const graph::Graph g = SmallGraph();
  const auto workload = SmallWorkload(g);
  auto service =
      EstimationService::Create(SmallGraph(), DeterministicOptions());
  ASSERT_TRUE(service.ok()) << service.status();

  const auto old_state = (*service)->AcquireState();
  const std::string pattern = "(a)-[0]->(b); (b)-[1]->(c)";
  auto before = (*service)->EstimateLine(pattern);
  ASSERT_TRUE(before.ok());

  const auto batch = dynamic::RandomEdgeBatch(g, 80, 21);
  (*service)->SubmitDeltas(batch);
  EXPECT_GT((*service)->Stats().pending_delta_ops, 0u);
  auto swap = (*service)->FlushDeltas();
  ASSERT_TRUE(swap.ok()) << swap.status();
  EXPECT_EQ(swap->epoch, 1u);
  EXPECT_EQ(swap->version, 1u);
  EXPECT_EQ((*service)->Stats().pending_delta_ops, 0u);

  // The new state matches a cold engine over the compacted graph.
  auto after = (*service)->EstimateLine(pattern);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->epoch, 1u);
  dynamic::DeltaGraph overlay(g);
  ASSERT_TRUE(overlay.Apply(batch).ok());
  auto compacted = overlay.Compact();
  ASSERT_TRUE(compacted.ok());
  engine::EstimationEngine cold(*compacted);
  auto q = query::ParseQuery(pattern);
  ASSERT_TRUE(q.ok());
  for (const EstimatorResult& result : after->results) {
    auto estimator = cold.Estimator(result.name);
    ASSERT_TRUE(estimator.ok());
    auto expected = (*estimator)->Estimate(*q);
    ASSERT_TRUE(expected.ok());
    EXPECT_EQ(result.estimate, *expected) << result.name;
  }

  // RCU property: the pre-swap state, still held, answers exactly as
  // before the swap.
  ASSERT_EQ(old_state->suite.size(), before->results.size());
  for (size_t i = 0; i < old_state->suite.size(); ++i) {
    auto estimate = old_state->suite[i]->Estimate(*q);
    ASSERT_TRUE(estimate.ok());
    EXPECT_EQ(*estimate, before->results[i].estimate);
  }
}

TEST(ServiceTest, HotSwapSnapshotRebasesAndTrims) {
  const graph::Graph g = SmallGraph();
  const auto workload = SmallWorkload(g);
  TempFile snap("hot_swap");

  // An offline artifact two epochs ahead of the base graph.
  engine::EstimationContext producer(g);
  producer.Prewarm(workload);
  ASSERT_TRUE(producer.ApplyDeltas(dynamic::RandomEdgeBatch(g, 30, 5)).ok());
  ASSERT_TRUE(
      producer.ApplyDeltas(dynamic::RandomEdgeBatch(producer.graph(), 30, 6))
          .ok());
  ASSERT_TRUE(producer.SaveSnapshot(snap.path()).ok());

  ServiceOptions options = DeterministicOptions();
  options.replay_keep_epochs = 0;  // trim everything after each swap
  auto service = EstimationService::Create(SmallGraph(), options);
  ASSERT_TRUE(service.ok()) << service.status();

  auto swap = (*service)->HotSwapSnapshot(snap.path());
  ASSERT_TRUE(swap.ok()) << swap.status();
  // The embedded 60-op log replays as one batch, so the rebased context
  // sits at epoch 1 of its own lineage — with the producer's exact graph.
  EXPECT_EQ(swap->epoch, 1u);
  EXPECT_EQ(swap->version, 1u);
  EXPECT_EQ(swap->snapshot_replayed_deltas, 60u);
  EXPECT_GT(swap->trimmed_log_ops, 0u);

  const ServiceStats stats = (*service)->Stats();
  EXPECT_EQ(stats.epoch, 1u);
  EXPECT_EQ(stats.replay_log_ops, 0u);
  EXPECT_EQ(stats.min_replayable_epoch, 1u);

  // Estimates now come from the snapshot's graph state.
  const std::string pattern = "(a)-[0]->(b); (b)-[1]->(c)";
  auto response = (*service)->EstimateLine(pattern);
  ASSERT_TRUE(response.ok());
  engine::EstimationEngine expected_engine(producer.graph());
  auto q = query::ParseQuery(pattern);
  ASSERT_TRUE(q.ok());
  for (const EstimatorResult& result : response->results) {
    auto estimator = expected_engine.Estimator(result.name);
    ASSERT_TRUE(estimator.ok());
    auto expected = (*estimator)->Estimate(*q);
    ASSERT_TRUE(expected.ok());
    EXPECT_EQ(result.estimate, *expected) << result.name;
  }
}

TEST(ServiceTest, BackgroundMaintainerCompactsOnVolume) {
  const graph::Graph g = SmallGraph();
  ServiceOptions options = DeterministicOptions();
  options.compact_trigger_ops = 50;
  auto service = EstimationService::Create(SmallGraph(), options);
  ASSERT_TRUE(service.ok()) << service.status();

  (*service)->SubmitDeltas(dynamic::RandomEdgeBatch(g, 60, 31));
  for (int i = 0; i < 200 && (*service)->epoch() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ((*service)->epoch(), 1u);
  EXPECT_EQ((*service)->Stats().pending_delta_ops, 0u);
}

// The satellite: hammer the service from N threads through repeated delta
// swaps and one snapshot hot-swap; every response must be internally
// consistent with exactly one epoch and no request may fail.
TEST(ServiceTest, ConcurrentEstimateWhileSwapping) {
  const graph::Graph g = SmallGraph();
  const auto workload = SmallWorkload(g, 2);
  TempFile snap("hammer");

  ServiceOptions options = DeterministicOptions();
  options.prewarm_workload = workload;
  auto service = EstimationService::Create(SmallGraph(), options);
  ASSERT_TRUE(service.ok()) << service.status();

  // Epoch-0 snapshot of the service's own lineage: the final hot-swap
  // rebases back to a state whose answers must equal the original epoch 0.
  ASSERT_TRUE(
      (*service)->AcquireState()->engine->context().SaveSnapshot(snap.path())
          .ok());

  std::atomic<bool> failed{false};
  std::thread maintainer([&] {
    uint64_t seed = 1000;
    for (int swap = 0; swap < 3; ++swap) {
      std::this_thread::sleep_for(std::chrono::milliseconds(150));
      const auto state = (*service)->AcquireState();
      (*service)->SubmitDeltas(dynamic::RandomEdgeBatch(
          state->engine->context().graph(), 40, seed++));
      auto flushed = (*service)->FlushDeltas();
      if (!flushed.ok()) failed = true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    auto swapped = (*service)->HotSwapSnapshot(snap.path());
    if (!swapped.ok()) failed = true;
  });

  harness::ServiceDriverOptions driver;
  driver.num_threads = 4;
  driver.duration_seconds = 1.2;
  driver.check_consistency = true;
  const harness::ServiceRunResult result =
      harness::DriveServiceWorkload(**service, workload, driver);
  maintainer.join();

  EXPECT_FALSE(failed.load());
  EXPECT_GT(result.requests, 0u);
  EXPECT_EQ(result.errors, 0u);
  EXPECT_EQ(result.inconsistent_responses, 0u);
  EXPECT_EQ(result.version_regressions, 0u);
  // The hammer saw more than one epoch (the swaps really happened under
  // load) unless the machine was too slow to overlap; epochs observed must
  // be among those the maintainer created: 0..3 (0 repeats post-rebase).
  for (const auto& [epoch, count] : result.responses_per_epoch) {
    EXPECT_LE(epoch, 3u);
  }
  EXPECT_EQ((*service)->Stats().swaps, 4u);
}

// --- TCP loopback -----------------------------------------------------------

TEST(TcpServerTest, LoopbackEstimateStatsShutdown) {
  auto service = EstimationService::Create(SmallGraph(),
                                           DeterministicOptions());
  ASSERT_TRUE(service.ok()) << service.status();
  ServerOptions server_options;
  server_options.workers = 2;
  TcpServer server(**service, server_options);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.port(), 0);

  auto fd = wire::DialTcp("127.0.0.1", server.port());
  ASSERT_TRUE(fd.ok()) << fd.status();

  auto ping = wire::RoundTrip(
      *fd, {wire::MessageType::kPing, "hello"});
  ASSERT_TRUE(ping.ok()) << ping.status();
  EXPECT_EQ(ping->text, "hello");

  auto estimate = wire::RoundTrip(
      *fd, {wire::MessageType::kEstimate, "(a)-[0]->(b)"});
  ASSERT_TRUE(estimate.ok()) << estimate.status();
  ASSERT_TRUE(estimate->status.ok()) << estimate->status;
  EXPECT_EQ(estimate->estimate.results.size(), 4u);

  auto bad = wire::RoundTrip(
      *fd, {wire::MessageType::kEstimate, "(a)-[99]->(b)"});
  ASSERT_TRUE(bad.ok()) << bad.status();
  EXPECT_EQ(bad->status.code(), util::StatusCode::kInvalidArgument);

  auto stats = wire::RoundTrip(*fd, {wire::MessageType::kStats, ""});
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_GE(stats->stats.served, 1u);
  ::close(*fd);

  // A second connection asks for shutdown; WaitUntilShutdown observes it.
  auto fd2 = wire::DialTcp("127.0.0.1", server.port());
  ASSERT_TRUE(fd2.ok()) << fd2.status();
  auto shutdown = wire::RoundTrip(*fd2, {wire::MessageType::kShutdown, ""});
  ASSERT_TRUE(shutdown.ok()) << shutdown.status();
  ::close(*fd2);
  EXPECT_TRUE(server.WaitUntilShutdown());
  server.Stop();
  EXPECT_GE(server.requests_handled(), 5u);
}

// --- Dataset catalog & multi-dataset routing --------------------------------

TEST(CatalogTest, ResolveRoutesDefaultAndRejectsUnknown) {
  std::vector<DatasetSpec> specs;
  specs.push_back({"alpha",
                   std::make_shared<const graph::Graph>(SmallGraph(1)),
                   DeterministicOptions()});
  specs.push_back({"beta",
                   std::make_shared<const graph::Graph>(SmallGraph(2)),
                   DeterministicOptions()});
  auto catalog = DatasetCatalog::Create(std::move(specs), "beta");
  ASSERT_TRUE(catalog.ok()) << catalog.status();
  EXPECT_EQ((*catalog)->size(), 2u);
  EXPECT_EQ((*catalog)->default_dataset(), "beta");
  EXPECT_EQ((*catalog)->names(),
            (std::vector<std::string>{"alpha", "beta"}));

  auto alpha = (*catalog)->Resolve("alpha");
  ASSERT_TRUE(alpha.ok());
  auto implicit = (*catalog)->Resolve("");
  ASSERT_TRUE(implicit.ok());
  EXPECT_EQ(*implicit, *(*catalog)->Resolve("beta"));
  EXPECT_NE(*implicit, *alpha);

  auto unknown = (*catalog)->Resolve("gamma");
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), util::StatusCode::kNotFound);
  EXPECT_NE(unknown.status().message().find("serving: alpha, beta"),
            std::string::npos)
      << unknown.status();
}

TEST(CatalogTest, RejectsDuplicateEmptyAndMalformedNames) {
  auto service = EstimationService::Create(SmallGraph(),
                                           DeterministicOptions());
  ASSERT_TRUE(service.ok());
  DatasetCatalog catalog;
  ASSERT_TRUE(catalog.AddBorrowed("alpha", service->get()).ok());
  EXPECT_FALSE(catalog.AddBorrowed("alpha", service->get()).ok());
  EXPECT_FALSE(catalog.AddBorrowed("", service->get()).ok());
  EXPECT_FALSE(catalog.AddBorrowed("has space", service->get()).ok());
  EXPECT_FALSE(catalog.AddBorrowed("has=eq", service->get()).ok());
  EXPECT_FALSE(catalog.SetDefault("nope").ok());
  EXPECT_EQ(catalog.default_dataset(), "alpha");
}

TEST(WireTest, DatasetFieldRoundTripsAndStaysV1Compatible) {
  wire::Request request{wire::MessageType::kEstimate, "(a)-[0]->(b)",
                        "alpha"};
  auto decoded = wire::DecodeRequest(wire::EncodeRequest(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->dataset, "alpha");

  // Empty dataset encodes byte-identically to a v1 frame.
  wire::Request v1{wire::MessageType::kEstimate, "(a)-[0]->(b)", ""};
  util::serde::Writer w;
  w.WriteU8(static_cast<uint8_t>(v1.type));
  w.WriteString(v1.text);
  EXPECT_EQ(wire::EncodeRequest(v1), w.TakeBuffer());

  // Response echo round-trips on both the OK and the error path.
  wire::Response ok_response;
  ok_response.type = wire::MessageType::kPing;
  ok_response.text = "pong";
  ok_response.dataset = "alpha";
  auto ok_decoded = wire::DecodeResponse(wire::EncodeResponse(ok_response));
  ASSERT_TRUE(ok_decoded.ok()) << ok_decoded.status();
  EXPECT_EQ(ok_decoded->dataset, "alpha");

  wire::Response error_response;
  error_response.type = wire::MessageType::kEstimate;
  error_response.status = util::NotFoundError("unknown dataset 'x'");
  error_response.dataset = "x";
  auto error_decoded =
      wire::DecodeResponse(wire::EncodeResponse(error_response));
  ASSERT_TRUE(error_decoded.ok()) << error_decoded.status();
  EXPECT_EQ(error_decoded->status.code(), util::StatusCode::kNotFound);
  EXPECT_EQ(error_decoded->dataset, "x");
}

TEST(TcpServerTest, MultiDatasetRoutingOverLoopback) {
  // Two different graphs under one server: routed estimates must come
  // from the right dataset (and differ), v1 frames go to the default, and
  // an unknown dataset is a clean error frame, not a dropped connection.
  std::vector<DatasetSpec> specs;
  specs.push_back({"alpha",
                   std::make_shared<const graph::Graph>(SmallGraph(1)),
                   DeterministicOptions()});
  specs.push_back({"beta",
                   std::make_shared<const graph::Graph>(SmallGraph(2)),
                   DeterministicOptions()});
  auto catalog = DatasetCatalog::Create(std::move(specs));
  ASSERT_TRUE(catalog.ok()) << catalog.status();

  ServerOptions server_options;
  server_options.workers = 2;
  TcpServer server(**catalog, server_options);
  ASSERT_TRUE(server.Start().ok());
  auto fd = wire::DialTcp("127.0.0.1", server.port());
  ASSERT_TRUE(fd.ok()) << fd.status();

  const std::string pattern = "(a)-[0]->(b); (b)-[1]->(c)";
  auto on_alpha = wire::RoundTrip(
      *fd, {wire::MessageType::kEstimate, pattern, "alpha"});
  ASSERT_TRUE(on_alpha.ok()) << on_alpha.status();
  ASSERT_TRUE(on_alpha->status.ok()) << on_alpha->status;
  EXPECT_EQ(on_alpha->dataset, "alpha");
  auto on_beta = wire::RoundTrip(
      *fd, {wire::MessageType::kEstimate, pattern, "beta"});
  ASSERT_TRUE(on_beta.ok()) << on_beta.status();
  ASSERT_TRUE(on_beta->status.ok()) << on_beta->status;
  EXPECT_EQ(on_beta->dataset, "beta");
  ASSERT_EQ(on_alpha->estimate.results.size(),
            on_beta->estimate.results.size());
  bool any_differs = false;
  for (size_t i = 0; i < on_alpha->estimate.results.size(); ++i) {
    any_differs |= on_alpha->estimate.results[i].estimate !=
                   on_beta->estimate.results[i].estimate;
  }
  EXPECT_TRUE(any_differs) << "different graphs answered identically";

  // v1 frame (no dataset): routed to the default, no echo.
  auto v1 = wire::RoundTrip(*fd, {wire::MessageType::kEstimate, pattern});
  ASSERT_TRUE(v1.ok()) << v1.status();
  ASSERT_TRUE(v1->status.ok()) << v1->status;
  EXPECT_TRUE(v1->dataset.empty());
  for (size_t i = 0; i < v1->estimate.results.size(); ++i) {
    EXPECT_EQ(v1->estimate.results[i].estimate,
              on_alpha->estimate.results[i].estimate);
  }

  auto unknown = wire::RoundTrip(
      *fd, {wire::MessageType::kEstimate, pattern, "gamma"});
  ASSERT_TRUE(unknown.ok()) << unknown.status();
  EXPECT_EQ(unknown->status.code(), util::StatusCode::kNotFound);
  EXPECT_NE(unknown->status.message().find("unknown dataset 'gamma'"),
            std::string::npos);
  // The connection survives the error frame.
  auto ping = wire::RoundTrip(*fd, {wire::MessageType::kPing, "still-up"});
  ASSERT_TRUE(ping.ok()) << ping.status();
  EXPECT_EQ(ping->text, "still-up");

  // A dataset-qualified ping validates the routing name without touching
  // a service; an unknown one is NotFound.
  auto routed_ping = wire::RoundTrip(
      *fd, {wire::MessageType::kPing, "probe", "beta"});
  ASSERT_TRUE(routed_ping.ok()) << routed_ping.status();
  ASSERT_TRUE(routed_ping->status.ok()) << routed_ping->status;
  EXPECT_EQ(routed_ping->text, "probe");
  EXPECT_EQ(routed_ping->dataset, "beta");
  auto bad_ping = wire::RoundTrip(
      *fd, {wire::MessageType::kPing, "", "gamma"});
  ASSERT_TRUE(bad_ping.ok()) << bad_ping.status();
  EXPECT_EQ(bad_ping->status.code(), util::StatusCode::kNotFound);

  // Shutdown is server-wide by definition: a dataset-qualified one is
  // rejected instead of silently draining every tenant.
  auto scoped_shutdown = wire::RoundTrip(
      *fd, {wire::MessageType::kShutdown, "", "beta"});
  ASSERT_TRUE(scoped_shutdown.ok()) << scoped_shutdown.status();
  EXPECT_EQ(scoped_shutdown->status.code(),
            util::StatusCode::kInvalidArgument);
  EXPECT_FALSE(server.shutdown_requested());

  // Per-dataset stats: each service only counted its own requests.
  auto alpha_stats = wire::RoundTrip(
      *fd, {wire::MessageType::kStats, "", "alpha"});
  ASSERT_TRUE(alpha_stats.ok() && alpha_stats->status.ok());
  auto beta_stats = wire::RoundTrip(
      *fd, {wire::MessageType::kStats, "", "beta"});
  ASSERT_TRUE(beta_stats.ok() && beta_stats->status.ok());
  EXPECT_EQ(alpha_stats->stats.served, 2u);  // routed + v1-default
  EXPECT_EQ(beta_stats->stats.served, 1u);

  ::close(*fd);
  server.Stop();
}

TEST(ServiceTest, CrossDatasetIsolationUnderChurn) {
  // Dataset A takes concurrent delta ingestion and a snapshot hot-swap;
  // dataset B must not move at all: same estimates bit-for-bit, epoch 0,
  // zero swaps, zero per-dataset oracle inconsistencies, and request
  // accounting that counts only its own traffic.
  const graph::Graph graph_a = SmallGraph(1);
  const graph::Graph graph_b = SmallGraph(2);
  const auto workload_a = SmallWorkload(graph_a, 2);
  const auto workload_b = SmallWorkload(graph_b, 2);
  TempFile snap("isolation");

  std::vector<DatasetSpec> specs;
  specs.push_back({"a", std::make_shared<const graph::Graph>(SmallGraph(1)),
                   DeterministicOptions()});
  specs.push_back({"b", std::make_shared<const graph::Graph>(SmallGraph(2)),
                   DeterministicOptions()});
  auto catalog = DatasetCatalog::Create(std::move(specs));
  ASSERT_TRUE(catalog.ok()) << catalog.status();
  EstimationService& service_a = **(*catalog)->Resolve("a");
  const EstimationService& service_b = **(*catalog)->Resolve("b");

  ASSERT_TRUE(service_a.AcquireState()
                  ->engine->context()
                  .SaveSnapshot(snap.path())
                  .ok());

  // B's pre-churn answers, via the service path.
  std::vector<double> before;
  for (const query::WorkloadQuery& wq : workload_b) {
    auto response = service_b.EstimateLine(query::FormatQuery(wq.query));
    ASSERT_TRUE(response.ok()) << response.status();
    for (const EstimatorResult& r : response->results) {
      before.push_back(r.ok ? r.estimate
                            : std::numeric_limits<double>::quiet_NaN());
    }
  }

  // Churn A while both datasets serve under the per-dataset oracle.
  std::atomic<bool> churn_failed{false};
  std::thread churner([&] {
    uint64_t seed = 500;
    for (int swap = 0; swap < 3; ++swap) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      const auto state = service_a.AcquireState();
      (void)service_a.SubmitDeltas(dynamic::RandomEdgeBatch(
          state->engine->context().graph(), 40, seed++));
      if (!service_a.FlushDeltas().ok()) churn_failed = true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    if (!service_a.HotSwapSnapshot(snap.path()).ok()) churn_failed = true;
  });

  harness::ServiceDriverOptions driver;
  driver.num_threads = 3;
  driver.duration_seconds = 0.9;
  driver.check_consistency = true;
  auto results = harness::DriveCatalogWorkload(
      **catalog,
      {{"a", workload_a}, {"b", workload_b}}, driver);
  churner.join();
  ASSERT_TRUE(results.ok()) << results.status();
  ASSERT_FALSE(churn_failed.load());

  const harness::ServiceRunResult& result_a = results->at("a");
  const harness::ServiceRunResult& result_b = results->at("b");
  EXPECT_GT(result_a.requests, 0u);
  EXPECT_GT(result_b.requests, 0u);
  EXPECT_EQ(result_a.errors, 0u);
  EXPECT_EQ(result_b.errors, 0u);
  EXPECT_EQ(result_a.inconsistent_responses, 0u);
  EXPECT_EQ(result_b.inconsistent_responses, 0u);

  // A actually churned; B's epoch line never moved.
  const ServiceStats stats_a = service_a.Stats();
  const ServiceStats stats_b = service_b.Stats();
  EXPECT_EQ(stats_a.swaps, 4u);
  EXPECT_EQ(stats_b.swaps, 0u);
  EXPECT_EQ(stats_b.epoch, 0u);
  EXPECT_EQ(stats_b.version, 0u);
  // A's hammer may have seen several epochs (timing-dependent); B saw
  // exactly one, and it is epoch 0.
  ASSERT_EQ(result_b.responses_per_epoch.size(), 1u);
  EXPECT_EQ(result_b.responses_per_epoch.begin()->first, 0u);

  // B's accounting saw exactly its own traffic: the driver's B-requests
  // plus the pre/post probes below.
  EXPECT_EQ(stats_b.served, result_b.requests + workload_b.size());
  EXPECT_EQ(stats_b.pending_delta_ops, 0u);
  EXPECT_EQ(stats_b.replay_log_ops, 0u);

  // And B answers bit-identically to before the churn.
  std::vector<double> after;
  for (const query::WorkloadQuery& wq : workload_b) {
    auto response = service_b.EstimateLine(query::FormatQuery(wq.query));
    ASSERT_TRUE(response.ok()) << response.status();
    EXPECT_EQ(response->epoch, 0u);
    for (const EstimatorResult& r : response->results) {
      after.push_back(r.ok ? r.estimate
                           : std::numeric_limits<double>::quiet_NaN());
    }
  }
  ExpectBitIdentical(before, after);
}

TEST(TcpServerTest, ApplyDeltasOverLoopback) {
  const graph::Graph g = SmallGraph();
  auto service = EstimationService::Create(SmallGraph(),
                                           DeterministicOptions());
  ASSERT_TRUE(service.ok()) << service.status();
  TcpServer server(**service);
  ASSERT_TRUE(server.Start().ok());

  std::ostringstream feed;
  ASSERT_TRUE(dynamic::WriteDeltaText(dynamic::RandomEdgeBatch(g, 30, 77),
                                      feed)
                  .ok());
  auto fd = wire::DialTcp("127.0.0.1", server.port());
  ASSERT_TRUE(fd.ok()) << fd.status();
  auto swap = wire::RoundTrip(
      *fd, {wire::MessageType::kApplyDeltas, feed.str()});
  ASSERT_TRUE(swap.ok()) << swap.status();
  ASSERT_TRUE(swap->status.ok()) << swap->status;
  EXPECT_EQ(swap->swap.epoch, 1u);
  EXPECT_EQ(swap->swap.applied_ops, 30u);
  ::close(*fd);
  EXPECT_EQ((*service)->epoch(), 1u);
  server.Stop();
}

// --- Wire v3 batches & the event-loop dispatcher ----------------------------

// The v3 acceptance criterion, in-process half: a batch of N lines answers
// bit-identically to the same N lines served as individual calls — same
// estimates, same epoch, same estimator names — because the whole batch
// runs against one acquired serving state.
TEST(ServiceTest, BatchMatchesPerLineEstimates) {
  auto service = EstimationService::Create(SmallGraph(),
                                           DeterministicOptions());
  ASSERT_TRUE(service.ok()) << service.status();
  const std::vector<std::string> lines = {
      "(a)-[0]->(b)",
      "(a)-[0]->(b); (b)-[1]->(c)",
      "t 100 (a)-[2]->(b)",
  };
  auto batch = (*service)->EstimateBatch(lines);
  ASSERT_TRUE(batch.ok()) << batch.status();
  ASSERT_EQ(batch->size(), lines.size());
  for (size_t i = 0; i < lines.size(); ++i) {
    const BatchEstimateItem& item = (*batch)[i];
    ASSERT_TRUE(item.status.ok()) << item.status;
    auto single = (*service)->EstimateLine(lines[i]);
    ASSERT_TRUE(single.ok()) << single.status();
    EXPECT_EQ(item.estimate.epoch, single->epoch);
    EXPECT_EQ(item.estimate.state_version, single->state_version);
    EXPECT_EQ(item.estimate.has_truth, single->has_truth);
    ASSERT_EQ(item.estimate.results.size(), single->results.size());
    for (size_t j = 0; j < single->results.size(); ++j) {
      EXPECT_EQ(item.estimate.results[j].name, single->results[j].name);
      EXPECT_TRUE(item.estimate.results[j].ok);
      // Bit-identical, not approximately equal: deterministic estimators
      // on the same serving state admit nothing in between.
      EXPECT_EQ(item.estimate.results[j].estimate,
                single->results[j].estimate);
      EXPECT_EQ(item.estimate.results[j].qerror, single->results[j].qerror);
    }
  }
}

TEST(ServiceTest, BatchReportsPerLineErrorsWithoutSinkingNeighbors) {
  auto service = EstimationService::Create(SmallGraph(),
                                           DeterministicOptions());
  ASSERT_TRUE(service.ok()) << service.status();
  auto batch = (*service)->EstimateBatch(
      {"(a)-[0]->(b)", "garbage", "(a)-[99]->(b)", "(a)-[1]->(b)"});
  ASSERT_TRUE(batch.ok()) << batch.status();
  ASSERT_EQ(batch->size(), 4u);
  EXPECT_TRUE((*batch)[0].status.ok()) << (*batch)[0].status;
  EXPECT_EQ((*batch)[1].status.code(), util::StatusCode::kInvalidArgument);
  EXPECT_EQ((*batch)[2].status.code(), util::StatusCode::kInvalidArgument);
  EXPECT_TRUE((*batch)[3].status.ok()) << (*batch)[3].status;
  // The two good lines still answered from one shared epoch.
  EXPECT_EQ((*batch)[0].estimate.epoch, (*batch)[3].estimate.epoch);
}

TEST(ServiceTest, EmptyBatchIsRejectedWholesale) {
  auto service = EstimationService::Create(SmallGraph(),
                                           DeterministicOptions());
  ASSERT_TRUE(service.ok()) << service.status();
  auto batch = (*service)->EstimateBatch(std::vector<std::string>{});
  EXPECT_FALSE(batch.ok());
  EXPECT_EQ(batch.status().code(), util::StatusCode::kInvalidArgument);
}

// The acceptance criterion, wire half: a v3 batch frame of N lines returns
// results bit-identical to the same N lines sent as individual v1 frames.
TEST(TcpServerTest, BatchMatchesSingleFramesOverLoopback) {
  auto service = EstimationService::Create(SmallGraph(),
                                           DeterministicOptions());
  ASSERT_TRUE(service.ok()) << service.status();
  TcpServer server(**service);
  ASSERT_TRUE(server.Start().ok());

  const std::vector<std::string> lines = {
      "(a)-[0]->(b)",
      "(a)-[0]->(b); (b)-[1]->(c)",
      "garbage",
      "t 50 (a)-[2]->(b)",
  };
  auto fd = wire::DialTcp("127.0.0.1", server.port());
  ASSERT_TRUE(fd.ok()) << fd.status();

  wire::Request batch_request;
  batch_request.type = wire::MessageType::kBatchEstimate;
  batch_request.lines = lines;
  auto batch = wire::RoundTrip(*fd, batch_request);
  ASSERT_TRUE(batch.ok()) << batch.status();
  ASSERT_TRUE(batch->status.ok()) << batch->status;
  ASSERT_EQ(batch->batch.size(), lines.size());

  // Same connection, same lines, one v1 frame each.
  for (size_t i = 0; i < lines.size(); ++i) {
    auto single =
        wire::RoundTrip(*fd, {wire::MessageType::kEstimate, lines[i]});
    ASSERT_TRUE(single.ok()) << single.status();
    const BatchEstimateItem& item = batch->batch[i];
    EXPECT_EQ(item.status.code(), single->status.code()) << lines[i];
    if (!single->status.ok()) continue;
    ASSERT_TRUE(item.status.ok()) << item.status;
    EXPECT_EQ(item.estimate.epoch, single->estimate.epoch);
    EXPECT_EQ(item.estimate.has_truth, single->estimate.has_truth);
    ASSERT_EQ(item.estimate.results.size(), single->estimate.results.size());
    for (size_t j = 0; j < item.estimate.results.size(); ++j) {
      EXPECT_EQ(item.estimate.results[j].name,
                single->estimate.results[j].name);
      EXPECT_EQ(item.estimate.results[j].estimate,
                single->estimate.results[j].estimate);
      EXPECT_EQ(item.estimate.results[j].qerror,
                single->estimate.results[j].qerror);
    }
  }
  ::close(*fd);
  server.Stop();
}

// Pipelining: many frames written back-to-back on one connection come back
// as exactly one response per frame, in request order (the event loop
// serializes each connection's dispatch).
TEST(TcpServerTest, PipelinedFramesAnswerInOrder) {
  auto service = EstimationService::Create(SmallGraph(),
                                           DeterministicOptions());
  ASSERT_TRUE(service.ok()) << service.status();
  ServerOptions server_options;
  server_options.workers = 2;
  TcpServer server(**service, server_options);
  ASSERT_TRUE(server.Start().ok());

  auto fd = wire::DialTcp("127.0.0.1", server.port());
  ASSERT_TRUE(fd.ok()) << fd.status();
  constexpr int kFrames = 20;
  for (int i = 0; i < kFrames; ++i) {
    wire::Request ping{wire::MessageType::kPing, "p" + std::to_string(i)};
    ASSERT_TRUE(wire::WriteFrame(*fd, wire::EncodeRequest(ping)).ok());
  }
  for (int i = 0; i < kFrames; ++i) {
    auto payload = wire::ReadFrame(*fd, ServerOptions().max_frame_bytes);
    ASSERT_TRUE(payload.ok()) << payload.status() << " at frame " << i;
    auto response = wire::DecodeResponse(*payload);
    ASSERT_TRUE(response.ok()) << response.status();
    ASSERT_TRUE(response->status.ok()) << response->status;
    EXPECT_EQ(response->text, "p" + std::to_string(i));
  }
  ::close(*fd);
  server.Stop();
  EXPECT_GE(server.requests_handled(), static_cast<uint64_t>(kFrames));
}

// Per-connection pipeline cap: one write() carrying far more frames than
// max_pipelined_requests gets the excess answered with in-order retryable
// RESOURCE_EXHAUSTED frames — the connection survives and every frame gets
// exactly one response.
TEST(TcpServerTest, PipelineCapRejectsExcessFramesInOrder) {
  auto service = EstimationService::Create(SmallGraph(),
                                           DeterministicOptions());
  ASSERT_TRUE(service.ok()) << service.status();
  ServerOptions server_options;
  server_options.workers = 1;
  server_options.max_pipelined_requests = 2;
  TcpServer server(**service, server_options);
  ASSERT_TRUE(server.Start().ok());

  auto fd = wire::DialTcp("127.0.0.1", server.port());
  ASSERT_TRUE(fd.ok()) << fd.status();

  // All frames in ONE buffer and one write: they reach the parser in one
  // readiness callback, before any response drains the pipeline, so the
  // cap engages deterministically.
  constexpr int kFrames = 64;
  std::string burst;
  for (int i = 0; i < kFrames; ++i) {
    wire::Request ping{wire::MessageType::kPing, "p" + std::to_string(i)};
    const std::string payload = wire::EncodeRequest(ping);
    const uint32_t length = static_cast<uint32_t>(payload.size());
    burst.push_back(static_cast<char>(length & 0xff));
    burst.push_back(static_cast<char>((length >> 8) & 0xff));
    burst.push_back(static_cast<char>((length >> 16) & 0xff));
    burst.push_back(static_cast<char>((length >> 24) & 0xff));
    burst += payload;
  }
  size_t written = 0;
  while (written < burst.size()) {
    const ssize_t rc =
        ::write(*fd, burst.data() + written, burst.size() - written);
    ASSERT_GT(rc, 0);
    written += static_cast<size_t>(rc);
  }

  int ok = 0;
  int rejected = 0;
  for (int i = 0; i < kFrames; ++i) {
    auto payload = wire::ReadFrame(*fd, ServerOptions().max_frame_bytes);
    ASSERT_TRUE(payload.ok()) << payload.status() << " at frame " << i;
    auto response = wire::DecodeResponse(*payload);
    ASSERT_TRUE(response.ok()) << response.status();
    if (response->status.ok()) {
      // One response per frame, in request order: the i-th response
      // answers the i-th frame whether served or shed.
      EXPECT_EQ(response->text, "p" + std::to_string(i));
      ++ok;
    } else {
      EXPECT_EQ(response->status.code(),
                util::StatusCode::kResourceExhausted);
      ++rejected;
    }
  }
  // The cap admitted at least its depth and shed most of the burst; exact
  // counts depend on read coalescing, but the burst cannot all fit.
  EXPECT_GE(ok, 2);
  EXPECT_GE(rejected, kFrames / 2);
  EXPECT_GE(server.overload_rejections(),
            static_cast<uint64_t>(rejected));
  ::close(*fd);
  server.Stop();
}

// The headline property of the event loop: hundreds of concurrent
// connections are cheap (fds + buffers, not threads). 200 connections on a
// 2-thread worker pool all answer.
TEST(TcpServerTest, ManyIdleConnectionsAllServe) {
  auto service = EstimationService::Create(SmallGraph(),
                                           DeterministicOptions());
  ASSERT_TRUE(service.ok()) << service.status();
  ServerOptions server_options;
  server_options.workers = 2;
  TcpServer server(**service, server_options);
  ASSERT_TRUE(server.Start().ok());

  constexpr int kConns = 200;
  std::vector<int> fds;
  fds.reserve(kConns);
  for (int i = 0; i < kConns; ++i) {
    auto fd = wire::DialTcp("127.0.0.1", server.port());
    ASSERT_TRUE(fd.ok()) << fd.status() << " at connection " << i;
    fds.push_back(*fd);
  }
  // Every connection is live — including the earliest ones, which have
  // been sitting idle while the rest dialed.
  for (int i = 0; i < kConns; ++i) {
    auto ping = wire::RoundTrip(
        fds[static_cast<size_t>(i)],
        {wire::MessageType::kPing, "c" + std::to_string(i)});
    ASSERT_TRUE(ping.ok()) << ping.status() << " at connection " << i;
    EXPECT_EQ(ping->text, "c" + std::to_string(i));
  }
  for (int fd : fds) ::close(fd);
  server.Stop();
  EXPECT_GE(server.connections_accepted(), static_cast<uint64_t>(kConns));
}

// Connection cap: the accept path sheds connections over the limit with a
// retryable error frame instead of letting them starve silently.
TEST(TcpServerTest, ConnectionCapRejectsWithRetryableFrame) {
  auto service = EstimationService::Create(SmallGraph(),
                                           DeterministicOptions());
  ASSERT_TRUE(service.ok()) << service.status();
  ServerOptions server_options;
  server_options.workers = 1;
  server_options.max_connections = 4;
  TcpServer server(**service, server_options);
  ASSERT_TRUE(server.Start().ok());

  std::vector<int> fds;
  for (int i = 0; i < 4; ++i) {
    auto fd = wire::DialTcp("127.0.0.1", server.port());
    ASSERT_TRUE(fd.ok()) << fd.status();
    fds.push_back(*fd);
    // The ping proves the server registered this connection before the
    // next dial, so the fifth one deterministically finds a full house.
    auto ping = wire::RoundTrip(*fd, {wire::MessageType::kPing, "x"});
    ASSERT_TRUE(ping.ok()) << ping.status();
  }
  auto fifth = wire::DialTcp("127.0.0.1", server.port());
  ASSERT_TRUE(fifth.ok()) << fifth.status();
  auto rejected =
      wire::RoundTrip(*fifth, {wire::MessageType::kPing, "overflow"});
  ASSERT_TRUE(rejected.ok()) << rejected.status();
  EXPECT_EQ(rejected->status.code(), util::StatusCode::kResourceExhausted);
  EXPECT_NE(rejected->status.message().find("retry"), std::string::npos);
  ::close(*fifth);
  EXPECT_GE(server.overload_rejections(), 1u);

  // The four admitted connections still serve after the shed.
  auto ping = wire::RoundTrip(fds[0], {wire::MessageType::kPing, "still"});
  ASSERT_TRUE(ping.ok()) << ping.status();
  EXPECT_EQ(ping->text, "still");
  for (int fd : fds) ::close(fd);
  server.Stop();
}

// The legacy dispatcher's accept-queue bound: with every worker occupied
// and the queue full, the next connection gets the retryable error frame;
// a freed worker then drains the queued connection.
TEST(TcpServerTest, LegacyDispatcherBoundsAcceptQueue) {
  auto service = EstimationService::Create(SmallGraph(),
                                           DeterministicOptions());
  ASSERT_TRUE(service.ok()) << service.status();
  ServerOptions server_options;
  server_options.dispatch = ServerOptions::Dispatch::kThreadPerConnection;
  server_options.workers = 1;
  server_options.max_queued_connections = 1;
  TcpServer server(**service, server_options);
  ASSERT_TRUE(server.Start().ok());

  // A occupies the only worker (the answered ping proves it was dequeued).
  auto a = wire::DialTcp("127.0.0.1", server.port());
  ASSERT_TRUE(a.ok()) << a.status();
  auto ping_a = wire::RoundTrip(*a, {wire::MessageType::kPing, "a"});
  ASSERT_TRUE(ping_a.ok()) << ping_a.status();

  // B fills the one queue slot; C overflows and is shed with the frame.
  auto b = wire::DialTcp("127.0.0.1", server.port());
  ASSERT_TRUE(b.ok()) << b.status();
  auto c = wire::DialTcp("127.0.0.1", server.port());
  ASSERT_TRUE(c.ok()) << c.status();
  auto rejected = wire::RoundTrip(*c, {wire::MessageType::kPing, "c"});
  ASSERT_TRUE(rejected.ok()) << rejected.status();
  EXPECT_EQ(rejected->status.code(), util::StatusCode::kResourceExhausted);
  ::close(*c);
  EXPECT_GE(server.overload_rejections(), 1u);

  // Closing A frees the worker; B drains from the queue and serves.
  ::close(*a);
  auto ping_b = wire::RoundTrip(*b, {wire::MessageType::kPing, "b"});
  ASSERT_TRUE(ping_b.ok()) << ping_b.status();
  EXPECT_EQ(ping_b->text, "b");
  ::close(*b);
  server.Stop();
}

// --- Observability ----------------------------------------------------------

TEST(ServiceTest, UnusableQErrorSamplesDoNotPoisonAggregates) {
  obs::SetMetricsEnabled(true);
  auto service = EstimationService::Create(SmallGraph(),
                                           DeterministicOptions());
  ASSERT_TRUE(service.ok()) << service.status();

  ASSERT_TRUE((*service)->EstimateLine("t 100 (a)-[0]->(b)").ok());
  const ServiceStats before = (*service)->Stats();
  ASSERT_FALSE(before.estimators.empty());
  EXPECT_TRUE(std::isfinite(before.estimators[0].mean_qerror));
  EXPECT_GE(before.estimators[0].mean_qerror, 1.0);
  const uint64_t samples_before = before.estimators[0].qerror.count;
  EXPECT_GT(samples_before, 0u);

  // truth == 0 parses, but no q-error is defined against it (the harness
  // yields NaN): the request must count toward latency accounting while
  // leaving the q-error mean and histogram untouched — one such line
  // must not poison the aggregate forever.
  auto zero_truth = (*service)->EstimateLine("t 0 (a)-[0]->(b)");
  ASSERT_TRUE(zero_truth.ok()) << zero_truth.status();
  EXPECT_TRUE(zero_truth->has_truth);

  const ServiceStats after = (*service)->Stats();
  EXPECT_TRUE(std::isfinite(after.estimators[0].mean_qerror));
  EXPECT_EQ(after.estimators[0].mean_qerror,
            before.estimators[0].mean_qerror);
  EXPECT_EQ(after.estimators[0].qerror.count, samples_before);
  EXPECT_EQ(after.estimators[0].requests,
            before.estimators[0].requests + 1);
}

TEST(ServiceTest, StatsQuantileSummariesPopulatedAndOrdered) {
  obs::SetMetricsEnabled(true);
  auto service = EstimationService::Create(SmallGraph(),
                                           DeterministicOptions());
  ASSERT_TRUE(service.ok()) << service.status();
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(
        (*service)->EstimateLine("t 50 (a)-[0]->(b); (b)-[1]->(c)").ok());
  }

  const ServiceStats stats = (*service)->Stats();
  EXPECT_EQ(stats.latency.count, 20u);
  EXPECT_LE(stats.latency.p50, stats.latency.p90);
  EXPECT_LE(stats.latency.p90, stats.latency.p99);
  EXPECT_LE(stats.latency.p99, stats.latency.max);
  for (const ServiceStats::EstimatorAccounting& e : stats.estimators) {
    EXPECT_EQ(e.latency.count, e.requests) << e.name;
    EXPECT_LE(e.qerror.count, e.requests) << e.name;
    if (e.qerror.count > 0) {
      // Q-errors are >= 1 by definition; the bucketed quantiles resolve
      // to upper bounds and can only stay at or above that floor.
      EXPECT_GE(e.qerror.p50, 1.0) << e.name;
      EXPECT_LE(e.qerror.p50, e.qerror.max) << e.name;
    }
  }
}

TEST(ServiceTest, RegistersPrometheusCollector) {
  obs::SetMetricsEnabled(true);
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  const size_t before = registry.collector_count();
  {
    ServiceOptions options = DeterministicOptions();
    options.metrics_label = "obs_test_ds";
    auto service = EstimationService::Create(SmallGraph(), options);
    ASSERT_TRUE(service.ok()) << service.status();
    EXPECT_EQ(registry.collector_count(), before + 1);
    ASSERT_TRUE((*service)->EstimateLine("(a)-[0]->(b)").ok());

    const std::string page = registry.RenderPrometheus();
    EXPECT_NE(
        page.find(
            "cegraph_requests_served_total{dataset=\"obs_test_ds\"} 1"),
        std::string::npos);
    EXPECT_NE(page.find("cegraph_request_latency_micros_count"
                        "{dataset=\"obs_test_ds\"} 1"),
              std::string::npos);
    EXPECT_NE(page.find("cegraph_estimator_latency_micros_bucket"),
              std::string::npos);
    EXPECT_NE(page.find("cegraph_cache_entries"), std::string::npos);
  }
  // The destructor must deregister — a dead collector on the global
  // registry is a use-after-free on the next scrape.
  EXPECT_EQ(registry.collector_count(), before);
}

TEST(TcpServerTest, StatsV4ExtensionOverLoopback) {
  obs::SetMetricsEnabled(true);
  auto service = EstimationService::Create(SmallGraph(),
                                           DeterministicOptions());
  ASSERT_TRUE(service.ok()) << service.status();
  ServerOptions server_options;
  server_options.workers = 2;
  TcpServer server(**service, server_options);
  ASSERT_TRUE(server.Start().ok());

  auto fd = wire::DialTcp("127.0.0.1", server.port());
  ASSERT_TRUE(fd.ok()) << fd.status();
  for (int i = 0; i < 5; ++i) {
    auto estimate = wire::RoundTrip(
        *fd, {wire::MessageType::kEstimate, "t 100 (a)-[0]->(b)"});
    ASSERT_TRUE(estimate.ok()) << estimate.status();
    ASSERT_TRUE(estimate->status.ok()) << estimate->status;
  }

  // A plain stats request gets the v3 reply — no extension, so old
  // clients see byte-compatible frames.
  auto v3 = wire::RoundTrip(*fd, {wire::MessageType::kStats, ""});
  ASSERT_TRUE(v3.ok()) << v3.status();
  ASSERT_TRUE(v3->status.ok()) << v3->status;
  EXPECT_FALSE(v3->stats.v4_wire);
  EXPECT_FALSE(v3->stats.server.present);
  EXPECT_GE(v3->stats.served, 5u);

  // Opting in via text == "v4" unlocks the full observability block.
  auto v4 = wire::RoundTrip(
      *fd,
      {wire::MessageType::kStats, std::string(wire::kStatsV4Token)});
  ASSERT_TRUE(v4.ok()) << v4.status();
  ASSERT_TRUE(v4->status.ok()) << v4->status;
  EXPECT_TRUE(v4->stats.v4_wire);
  ASSERT_TRUE(v4->stats.server.present);
  EXPECT_GE(v4->stats.server.connections_accepted, 1u);
  EXPECT_GE(v4->stats.server.frames_estimate, 5u);
  EXPECT_GT(v4->stats.server.bytes_in, 0u);
  EXPECT_GT(v4->stats.server.bytes_out, 0u);
  EXPECT_GE(v4->stats.latency.count, 5u);
  EXPECT_GE(v4->stats.admitted_weight, 5u);
  EXPECT_FALSE(v4->stats.caches.empty());
  ASSERT_EQ(v4->stats.estimators.size(), 4u);
  for (const ServiceStats::EstimatorAccounting& e : v4->stats.estimators) {
    EXPECT_EQ(e.latency.count, e.requests) << e.name;
    // Only estimators with usable truth samples carry q-error quantiles;
    // when they do, the summary must agree with the v3 mean's presence.
    if (e.mean_qerror > 0) EXPECT_GE(e.qerror.count, 1u) << e.name;
  }

  ::close(*fd);
  server.Stop();
}

TEST(TcpServerTest, ShedCountersTravelInV4Stats) {
  // Overflow the pipeline cap, then read the per-bound shed breakdown
  // back through the wire: the v4 block must attribute the rejections to
  // the pipeline bound, not lump them into one opaque total.
  obs::SetMetricsEnabled(true);
  auto service = EstimationService::Create(SmallGraph(),
                                           DeterministicOptions());
  ASSERT_TRUE(service.ok()) << service.status();
  ServerOptions server_options;
  server_options.workers = 1;
  server_options.max_pipelined_requests = 2;
  TcpServer server(**service, server_options);
  ASSERT_TRUE(server.Start().ok());

  auto fd = wire::DialTcp("127.0.0.1", server.port());
  ASSERT_TRUE(fd.ok()) << fd.status();
  // Blast 32 pings in one buffer and one write so they hit the parser in
  // a single readiness callback; anything beyond the 2-frame pipeline
  // window is shed with a RESOURCE_EXHAUSTED frame.
  constexpr int kFrames = 32;
  std::string burst;
  for (int i = 0; i < kFrames; ++i) {
    const std::string payload =
        wire::EncodeRequest({wire::MessageType::kPing, "p"});
    const uint32_t length = static_cast<uint32_t>(payload.size());
    burst.push_back(static_cast<char>(length & 0xff));
    burst.push_back(static_cast<char>((length >> 8) & 0xff));
    burst.push_back(static_cast<char>((length >> 16) & 0xff));
    burst.push_back(static_cast<char>((length >> 24) & 0xff));
    burst += payload;
  }
  size_t written = 0;
  while (written < burst.size()) {
    const ssize_t rc =
        ::write(*fd, burst.data() + written, burst.size() - written);
    ASSERT_GT(rc, 0);
    written += static_cast<size_t>(rc);
  }
  uint64_t shed_seen = 0;
  for (int i = 0; i < kFrames; ++i) {
    auto payload = wire::ReadFrame(*fd, ServerOptions().max_frame_bytes);
    ASSERT_TRUE(payload.ok()) << payload.status() << " at frame " << i;
    auto response = wire::DecodeResponse(*payload);
    ASSERT_TRUE(response.ok()) << response.status();
    if (!response->status.ok()) {
      EXPECT_EQ(response->status.code(),
                util::StatusCode::kResourceExhausted);
      ++shed_seen;
    }
  }
  EXPECT_GT(shed_seen, 0u);
  EXPECT_EQ(server.shed_pipeline_cap(), shed_seen);
  EXPECT_EQ(server.overload_rejections(), shed_seen);

  auto v4 = wire::RoundTrip(
      *fd,
      {wire::MessageType::kStats, std::string(wire::kStatsV4Token)});
  ASSERT_TRUE(v4.ok()) << v4.status();
  ASSERT_TRUE(v4->status.ok()) << v4->status;
  ASSERT_TRUE(v4->stats.server.present);
  EXPECT_EQ(v4->stats.server.shed_pipeline_cap, shed_seen);
  EXPECT_EQ(v4->stats.server.shed_connection_cap, 0u);
  EXPECT_EQ(v4->stats.server.shed_queue_cap, 0u);

  ::close(*fd);
  server.Stop();
}

}  // namespace
}  // namespace cegraph::service
