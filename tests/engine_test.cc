#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "engine/engine.h"
#include "estimators/optimistic.h"
#include "graph/generators.h"
#include "harness/workload_runner.h"
#include "query/templates.h"
#include "query/workload.h"

namespace cegraph::engine {
namespace {

using query::QueryGraph;

QueryGraph Q(uint32_t n, std::vector<query::QueryEdge> edges) {
  auto q = QueryGraph::Create(n, std::move(edges));
  return std::move(q).value();
}

constexpr graph::Label kA = 0, kB = 1;

class EngineTest : public ::testing::Test {
 protected:
  EngineTest() : g_(graph::MakeRunningExampleGraph()), engine_(g_) {}
  graph::Graph g_;
  EstimationEngine engine_;
};

// --- EstimatorRegistry ------------------------------------------------------

TEST_F(EngineTest, EveryRegisteredNameConstructsAndEstimates) {
  const QueryGraph q = Q(3, {{0, 1, kA}, {1, 2, kB}});
  const auto names = EstimatorRegistry::Default().RegisteredNames();
  ASSERT_GE(names.size(), 24u);  // 18 optimistic + bounds + baselines
  for (const std::string& name : names) {
    auto estimator = engine_.Estimator(name);
    ASSERT_TRUE(estimator.ok()) << name << ": " << estimator.status();
    auto est = (*estimator)->Estimate(q);
    ASSERT_TRUE(est.ok()) << name << ": " << est.status();
    EXPECT_GE(*est, 0) << name;
  }
}

TEST_F(EngineTest, RegistryResolvesDynamicFamilies) {
  for (const char* name : {"wj-1%", "wj-0.5%", "bs2(molp)",
                           "bs16(max-hop-max)"}) {
    EXPECT_TRUE(EstimatorRegistry::Default().Contains(name)) << name;
    auto estimator = engine_.Estimator(name);
    ASSERT_TRUE(estimator.ok()) << name << ": " << estimator.status();
  }
}

TEST_F(EngineTest, RegistryRejectsUnknownNames) {
  for (const char* name : {"nope", "wj-%", "wj-0%", "wj-200%", "wj-nan%",
                           "wj-inf%", "bs0(molp)", "bs4(nope)"}) {
    EXPECT_FALSE(EstimatorRegistry::Default().Contains(name)) << name;
    auto estimator = engine_.Estimator(name);
    EXPECT_FALSE(estimator.ok()) << name;
  }
}

TEST_F(EngineTest, EstimatorInstancesAreMemoized) {
  auto a = engine_.Estimator("molp");
  auto b = engine_.Estimator("molp");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
}

TEST_F(EngineTest, CachedOptimisticMatchesDirectConstruction) {
  const QueryGraph queries[] = {
      Q(2, {{0, 1, kA}}),
      Q(3, {{0, 1, kA}, {1, 2, kB}}),
      Q(4, {{0, 1, kA}, {1, 2, kB}, {1, 3, kB}}),
  };
  for (const auto& spec : AllOptimisticSpecs()) {
    auto cached = engine_.Estimator(SpecName(spec));
    ASSERT_TRUE(cached.ok());
    OptimisticEstimator direct(engine_.context().markov(), spec);
    for (const QueryGraph& q : queries) {
      auto a = (*cached)->Estimate(q);
      auto b = direct.Estimate(q);
      ASSERT_EQ(a.ok(), b.ok()) << SpecName(spec);
      if (a.ok()) {
        EXPECT_DOUBLE_EQ(*a, *b) << SpecName(spec);
      }
    }
  }
}

// --- CegCache ---------------------------------------------------------------

TEST_F(EngineTest, CegCacheCountsHitsAndMisses) {
  CegCache cache;
  const QueryGraph q = Q(3, {{0, 1, kA}, {1, 2, kB}});
  const stats::MarkovTable& markov = engine_.context().markov();

  EXPECT_EQ(cache.misses(), 0u);
  auto first = cache.GetOrBuild(q, markov, OptimisticCeg::kCegO);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.size(), 1u);

  auto second = cache.GetOrBuild(q, markov, OptimisticCeg::kCegO);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(first->get(), second->get());  // same shared entry

  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
}

TEST_F(EngineTest, CegCacheSharesIsomorphicQueries) {
  CegCache cache;
  const stats::MarkovTable& markov = engine_.context().markov();
  // The same path pattern under two vertex numberings.
  const QueryGraph a = Q(3, {{0, 1, kA}, {1, 2, kB}});
  const QueryGraph b = Q(3, {{2, 0, kA}, {0, 1, kB}});
  ASSERT_TRUE(cache.GetOrBuild(a, markov, OptimisticCeg::kCegO).ok());
  ASSERT_TRUE(cache.GetOrBuild(b, markov, OptimisticCeg::kCegO).ok());
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
}

TEST_F(EngineTest, CegCacheEntryExposesAggregates) {
  CegCache cache;
  const QueryGraph q = Q(3, {{0, 1, kA}, {1, 2, kB}});
  auto entry =
      cache.GetOrBuild(q, engine_.context().markov(), OptimisticCeg::kCegO);
  ASSERT_TRUE(entry.ok());
  ASSERT_TRUE((*entry)->aggregates_ok);
  EXPECT_TRUE((*entry)->aggregates.reachable);
  // The cached aggregates reproduce the direct estimator.
  OptimisticEstimator direct(engine_.context().markov(), OptimisticSpec{});
  auto from_cache = OptimisticEstimator::EstimateFromAggregates(
      (*entry)->aggregates, OptimisticSpec{});
  auto from_direct = direct.Estimate(q);
  ASSERT_TRUE(from_cache.ok());
  ASSERT_TRUE(from_direct.ok());
  EXPECT_DOUBLE_EQ(*from_cache, *from_direct);
}

// --- WorkloadRunner ---------------------------------------------------------

std::vector<query::WorkloadQuery> SmallWorkload(const graph::Graph& g) {
  query::WorkloadOptions options;
  options.instances_per_template = 4;
  options.seed = 99;
  auto wl = query::GenerateWorkload(
      g, {{"path2", query::PathShape(2)}, {"star2", query::StarShape(2)}},
      options);
  EXPECT_TRUE(wl.ok());
  return std::move(wl).value();
}

void ExpectSameModuloTiming(const harness::SuiteResult& a,
                            const harness::SuiteResult& b) {
  EXPECT_EQ(a.queries_used, b.queries_used);
  EXPECT_EQ(a.queries_dropped, b.queries_dropped);
  ASSERT_EQ(a.reports.size(), b.reports.size());
  for (size_t i = 0; i < a.reports.size(); ++i) {
    const auto& ra = a.reports[i];
    const auto& rb = b.reports[i];
    EXPECT_EQ(ra.name, rb.name);
    EXPECT_EQ(ra.failures, rb.failures);
    const auto& sa = ra.signed_log_qerror;
    const auto& sb = rb.signed_log_qerror;
    EXPECT_EQ(sa.count, sb.count) << ra.name;
    EXPECT_EQ(sa.min, sb.min) << ra.name;
    EXPECT_EQ(sa.p25, sb.p25) << ra.name;
    EXPECT_EQ(sa.median, sb.median) << ra.name;
    EXPECT_EQ(sa.p75, sb.p75) << ra.name;
    EXPECT_EQ(sa.max, sb.max) << ra.name;
    EXPECT_EQ(sa.mean, sb.mean) << ra.name;
    EXPECT_EQ(sa.trimmed_mean, sb.trimmed_mean) << ra.name;
  }
}

TEST_F(EngineTest, ParallelSuiteMatchesSerialSuite) {
  const auto workload = SmallWorkload(g_);
  ASSERT_FALSE(workload.empty());
  auto estimators =
      engine_.Estimators({"max-hop-max", "min-hop-min", "molp", "cs"});
  ASSERT_TRUE(estimators.ok());

  harness::RunnerOptions serial;
  serial.num_threads = 1;
  const auto reference =
      harness::WorkloadRunner(serial).RunSuite(*estimators, workload);
  for (int threads : {2, 4, 8}) {
    harness::RunnerOptions options;
    options.num_threads = threads;
    const auto parallel =
        harness::WorkloadRunner(options).RunSuite(*estimators, workload);
    ExpectSameModuloTiming(parallel, reference);
  }
}

TEST_F(EngineTest, ParallelOptimisticSuiteMatchesSerial) {
  const auto workload = SmallWorkload(g_);
  ASSERT_FALSE(workload.empty());
  const stats::MarkovTable& markov = engine_.context().markov();

  harness::RunnerOptions serial;
  serial.num_threads = 1;
  CegCache serial_cache;
  const auto reference = harness::WorkloadRunner(serial).RunOptimisticSuite(
      serial_cache, markov, nullptr, OptimisticCeg::kCegO, workload);
  ASSERT_EQ(reference.reports.size(), 10u);  // 9 specs + P*

  harness::RunnerOptions options;
  options.num_threads = 4;
  CegCache parallel_cache;
  const auto parallel = harness::WorkloadRunner(options).RunOptimisticSuite(
      parallel_cache, markov, nullptr, OptimisticCeg::kCegO, workload);
  ExpectSameModuloTiming(parallel, reference);

  // Exactly one build per query class, in both modes.
  EXPECT_EQ(serial_cache.misses() + serial_cache.hits(), workload.size());
  EXPECT_EQ(parallel_cache.misses(), serial_cache.misses());
}

TEST_F(EngineTest, RunSuiteByNameReportsUnknownName) {
  const auto workload = SmallWorkload(g_);
  auto result = harness::RunSuiteByName(engine_, {"max-hop-max", "nope"},
                                        workload);
  EXPECT_FALSE(result.ok());
}

TEST_F(EngineTest, RunSuiteByNameRuns) {
  const auto workload = SmallWorkload(g_);
  auto result =
      harness::RunSuiteByName(engine_, {"max-hop-max", "molp"}, workload);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->reports.size(), 2u);
  EXPECT_EQ(result->queries_used + result->queries_dropped, workload.size());
}

// --- EstimatorReport --------------------------------------------------------

TEST(EstimatorReportTest, MeanMillisDividesByAttemptedQueries) {
  harness::EstimatorReport report;
  report.total_seconds = 1.0;
  report.signed_log_qerror.count = 5;
  report.failures = 5;
  // 10 attempted queries at 1 second total = 100 ms per attempt.
  EXPECT_DOUBLE_EQ(report.mean_millis(), 100.0);
  report.failures = 0;
  EXPECT_DOUBLE_EQ(report.mean_millis(), 200.0);
  report.signed_log_qerror.count = 0;
  EXPECT_DOUBLE_EQ(report.mean_millis(), 0.0);
}

}  // namespace
}  // namespace cegraph::engine
