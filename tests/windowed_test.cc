// WindowedHistogram: deterministic rotation via injected time, window
// merges, ring wrap-around, and the concurrency contract — samples
// racing a slot rotation are never lost (the reset marker keeps
// recorders out until the wipe has published).
#include "obs/windowed.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace cegraph::obs {
namespace {

TEST(WindowedHistogramTest, MergesOnlySlotsInsideTheWindow) {
  WindowedHistogram hist({/*slot_seconds=*/1, /*slots=*/8});
  for (int64_t t = 0; t < 8; ++t) {
    hist.RecordAt(static_cast<double>(t + 1), t);
  }
  EXPECT_EQ(hist.SnapshotWindowAt(8, 7).count, 8u);
  EXPECT_EQ(hist.SnapshotWindowAt(1, 7).count, 1u);   // current slot only
  EXPECT_EQ(hist.SnapshotWindowAt(4, 7).count, 4u);   // t = 4..7
  EXPECT_DOUBLE_EQ(hist.SnapshotWindowAt(4, 7).sum, 5 + 6 + 7 + 8);
  // A longer window clamps to the ring span.
  EXPECT_EQ(hist.SnapshotWindowAt(100, 7).count, 8u);
}

TEST(WindowedHistogramTest, WrapRecyclesTheOldestSlot) {
  WindowedHistogram hist({1, 4});
  for (int64_t t = 0; t < 4; ++t) hist.RecordAt(1.0, t);
  EXPECT_EQ(hist.SnapshotWindowAt(4, 3).count, 4u);
  // t=4 reuses the ring position of t=0: the old samples age out.
  hist.RecordAt(1.0, 4);
  const HistogramSnapshot window = hist.SnapshotWindowAt(4, 4);
  EXPECT_EQ(window.count, 4u);  // t = 1, 2, 3, 4
}

TEST(WindowedHistogramTest, SamplesOlderThanTheSlotTenantAreDropped) {
  WindowedHistogram hist({1, 4});
  hist.RecordAt(1.0, 10);  // ring position 10 % 4 == 2
  hist.RecordAt(1.0, 2);   // same position, older tenant: dropped
  EXPECT_EQ(hist.SnapshotWindowAt(4, 10).count, 1u);
}

TEST(WindowedHistogramTest, CoarseSlotsShareOneBucket) {
  WindowedHistogram hist({/*slot_seconds=*/10, /*slots=*/3});
  hist.RecordAt(1.0, 0);
  hist.RecordAt(1.0, 9);   // same 10-second slot
  hist.RecordAt(1.0, 10);  // next slot
  EXPECT_EQ(hist.SnapshotWindowAt(10, 10).count, 1u);
  EXPECT_EQ(hist.SnapshotWindowAt(20, 10).count, 3u);
}

TEST(WindowedHistogramTest, WindowQuantilesForgetTheOldRegime) {
  WindowedHistogram hist({1, 900});
  for (int i = 0; i < 10; ++i) hist.RecordAt(1000.0, 0);
  for (int i = 0; i < 10; ++i) hist.RecordAt(2.0, 100);
  // The full window still sees both regimes...
  EXPECT_EQ(hist.SnapshotWindowAt(900, 100).count, 20u);
  // ...but a recent window reports only the new one.
  const HistogramSnapshot recent = hist.SnapshotWindowAt(50, 100);
  EXPECT_EQ(recent.count, 10u);
  EXPECT_LE(recent.Summary().p99, 2.0);
  EXPECT_DOUBLE_EQ(hist.RatePerSecAt(50, 100), 10.0 / 50.0);
}

TEST(WindowedHistogramTest, ConcurrentRecordAcrossSlotBoundariesLosesNothing) {
  // Four threads hammer all eight slots in interleaved order, so the
  // first record in each slot races the others through the rotation
  // CAS. Every sample must land: a lost sample means the reset wiped a
  // concurrent record.
  WindowedHistogram hist({1, 8});
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (int i = 0; i < kPerThread; ++i) {
        // Thread-dependent slot order maximizes same-slot first-record
        // races without ever wrapping the ring.
        hist.RecordAt(1.0, static_cast<int64_t>((i + t * 3) % 8));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const HistogramSnapshot window = hist.SnapshotWindowAt(8, 7);
  EXPECT_EQ(window.count,
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(window.sum, static_cast<double>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace cegraph::obs
