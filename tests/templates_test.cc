#include <gtest/gtest.h>

#include "query/subquery.h"
#include "query/templates.h"

namespace cegraph::query {
namespace {

TEST(ShapesTest, PathShape) {
  QueryGraph q = PathShape(5);
  EXPECT_EQ(q.num_edges(), 5u);
  EXPECT_EQ(q.num_vertices(), 6u);
  EXPECT_TRUE(q.IsAcyclic());
  EXPECT_TRUE(q.IsConnected());
}

TEST(ShapesTest, StarShape) {
  QueryGraph q = StarShape(6);
  EXPECT_EQ(q.num_edges(), 6u);
  EXPECT_EQ(q.num_vertices(), 7u);
  EXPECT_EQ(q.Degree(0), 6u);
  EXPECT_TRUE(q.IsAcyclic());
}

TEST(ShapesTest, CycleShape) {
  QueryGraph q = CycleShape(5);
  EXPECT_EQ(q.num_edges(), 5u);
  EXPECT_EQ(q.num_vertices(), 5u);
  EXPECT_EQ(q.CyclomaticNumber(q.AllEdges()), 1);
}

TEST(ShapesTest, CaterpillarDiameter) {
  // Depth-2 caterpillar is a star; depth-k is a path.
  QueryGraph star_like = CaterpillarShape(6, 2);
  QueryGraph path_like = CaterpillarShape(6, 6);
  EXPECT_TRUE(star_like.IsAcyclic());
  EXPECT_TRUE(path_like.IsAcyclic());
  EXPECT_EQ(star_like.num_edges(), 6u);
  EXPECT_EQ(path_like.num_edges(), 6u);
  EXPECT_EQ(path_like.num_vertices(), 7u);
}

TEST(ShapesTest, CaterpillarConnected) {
  for (int k : {6, 7, 8}) {
    for (int d = 2; d <= k; ++d) {
      QueryGraph q = CaterpillarShape(k, d);
      EXPECT_TRUE(q.IsConnected()) << k << " " << d;
      EXPECT_TRUE(q.IsAcyclic()) << k << " " << d;
      EXPECT_EQ(q.num_edges(), static_cast<uint32_t>(k)) << k << " " << d;
    }
  }
}

TEST(ShapesTest, K4) {
  QueryGraph q = CliqueK4Shape();
  EXPECT_EQ(q.num_edges(), 6u);
  EXPECT_EQ(q.num_vertices(), 4u);
  for (QVertex v = 0; v < 4; ++v) EXPECT_EQ(q.Degree(v), 3u);
}

TEST(ShapesTest, Diamond) {
  QueryGraph q = DiamondShape();
  EXPECT_EQ(q.num_edges(), 5u);
  EXPECT_EQ(q.CyclomaticNumber(q.AllEdges()), 2);
}

TEST(ShapesTest, Bowtie) {
  QueryGraph q = BowtieShape();
  EXPECT_EQ(q.num_edges(), 6u);
  EXPECT_EQ(q.num_vertices(), 5u);
  EXPECT_EQ(q.Degree(0), 4u);
}

TEST(ShapesTest, SquareVariants) {
  EXPECT_EQ(SquareTwoTrianglesShape().num_edges(), 8u);
  EXPECT_EQ(SquareTriangleShape().num_edges(), 7u);
  EXPECT_TRUE(SquareTwoTrianglesShape().IsConnected());
  EXPECT_TRUE(SquareTriangleShape().IsConnected());
}

TEST(ShapesTest, Petal) {
  QueryGraph q = PetalShape(3, 3);
  EXPECT_EQ(q.num_edges(), 9u);
  EXPECT_EQ(q.Degree(0), 3u);
  EXPECT_EQ(q.Degree(1), 3u);
  EXPECT_TRUE(q.IsConnected());
}

TEST(TemplateSuitesTest, JobLike) {
  auto templates = JobLikeTemplates();
  ASSERT_EQ(templates.size(), 7u);
  int edges4 = 0, edges5 = 0, edges6 = 0;
  for (const auto& t : templates) {
    EXPECT_TRUE(t.shape.IsAcyclic()) << t.name;
    EXPECT_TRUE(t.shape.IsConnected()) << t.name;
    if (t.shape.num_edges() == 4) ++edges4;
    if (t.shape.num_edges() == 5) ++edges5;
    if (t.shape.num_edges() == 6) ++edges6;
  }
  EXPECT_EQ(edges4, 4);
  EXPECT_EQ(edges5, 2);
  EXPECT_EQ(edges6, 1);
}

TEST(TemplateSuitesTest, AcyclicSuiteCoversAllDepths) {
  auto templates = AcyclicTemplates();
  EXPECT_EQ(templates.size(), 18u);  // (6-1)+(7-1)+(8-1)
  for (const auto& t : templates) {
    EXPECT_TRUE(t.shape.IsAcyclic()) << t.name;
  }
}

TEST(TemplateSuitesTest, CyclicSuiteAllCyclic) {
  for (const auto& t : CyclicTemplates()) {
    EXPECT_FALSE(t.shape.IsAcyclic()) << t.name;
    EXPECT_TRUE(t.shape.IsConnected()) << t.name;
  }
}

TEST(TemplateSuitesTest, CyclicSuiteMixesTriangleOnlyAndLarge) {
  int triangles_only = 0, large = 0;
  for (const auto& t : CyclicTemplates()) {
    if (LargestChordlessCycle(t.shape) == 3) ++triangles_only;
    if (LargestChordlessCycle(t.shape) > 3) ++large;
  }
  EXPECT_GE(triangles_only, 3);
  EXPECT_GE(large, 3);
}

TEST(TemplateSuitesTest, GCareSuites) {
  for (const auto& t : GCareAcyclicTemplates()) {
    EXPECT_TRUE(t.shape.IsAcyclic()) << t.name;
  }
  for (const auto& t : GCareCyclicTemplates()) {
    EXPECT_FALSE(t.shape.IsAcyclic()) << t.name;
  }
}

TEST(TemplateSuitesTest, NamesAreUnique) {
  std::set<std::string> names;
  for (const auto& suite :
       {JobLikeTemplates(), AcyclicTemplates(), CyclicTemplates(),
        GCareAcyclicTemplates(), GCareCyclicTemplates()}) {
    for (const auto& t : suite) {
      EXPECT_TRUE(names.insert(t.name).second) << "dup: " << t.name;
    }
  }
}

}  // namespace
}  // namespace cegraph::query
