// The paper's vertex-label extension (§6.1: "Estimating queries with
// vertex labels can be done in a straightforward manner ... by extending
// Markov table entries to have vertex labels"): labeled patterns flow
// through the same matcher / Markov table / CEG machinery.
#include <gtest/gtest.h>

#include "estimators/optimistic.h"
#include "graph/graph.h"
#include "matching/matcher.h"
#include "query/query_graph.h"
#include "stats/markov_table.h"

namespace cegraph {
namespace {

using graph::Graph;
using query::QueryGraph;

constexpr graph::VertexLabel kAny = QueryGraph::kAnyVertexLabel;

/// A bipartite-flavored graph: vertices 0-2 are "users" (label 1),
/// vertices 3-5 are "items" (label 2); edge label 0 = rates.
/// 0->3, 0->4, 1->4, 2->5, plus a user->user edge 0->1.
Graph LabeledGraph() {
  auto g = graph::Graph::Create(
      6, 1, {{0, 3, 0}, {0, 4, 0}, {1, 4, 0}, {2, 5, 0}, {0, 1, 0}},
      {1, 1, 1, 2, 2, 2});
  return std::move(g).value();
}

QueryGraph LQ(uint32_t n, std::vector<query::QueryEdge> edges,
              std::vector<graph::VertexLabel> constraints) {
  auto q = QueryGraph::Create(n, std::move(edges), std::move(constraints));
  return std::move(q).value();
}

TEST(VertexLabelsTest, GraphStoresLabels) {
  Graph g = LabeledGraph();
  EXPECT_EQ(g.vertex_label(0), 1u);
  EXPECT_EQ(g.vertex_label(5), 2u);
  EXPECT_EQ(g.num_vertex_labels(), 3u);  // labels {1,2} -> max+1
}

TEST(VertexLabelsTest, UnlabeledGraphDefaultsToZero) {
  auto g = graph::Graph::Create(3, 1, {{0, 1, 0}});
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->vertex_label(2), 0u);
  EXPECT_EQ(g->num_vertex_labels(), 1u);
}

TEST(VertexLabelsTest, ArityMismatchRejected) {
  auto g = graph::Graph::Create(3, 1, {{0, 1, 0}}, {1, 2});
  EXPECT_FALSE(g.ok());
  auto q = QueryGraph::Create(3, {{0, 1, 0}}, {kAny});
  EXPECT_FALSE(q.ok());
}

TEST(VertexLabelsTest, CountHonorsConstraints) {
  Graph g = LabeledGraph();
  matching::Matcher matcher(g);
  // Unconstrained single edge: all 5 edges.
  auto all = matcher.Count(LQ(2, {{0, 1, 0}}, {}));
  ASSERT_TRUE(all.ok());
  EXPECT_DOUBLE_EQ(*all, 5.0);
  // user -> item edges: 4 (excludes 0->1).
  auto ui = matcher.Count(LQ(2, {{0, 1, 0}}, {1, 2}));
  ASSERT_TRUE(ui.ok());
  EXPECT_DOUBLE_EQ(*ui, 4.0);
  // user -> user: 1.
  auto uu = matcher.Count(LQ(2, {{0, 1, 0}}, {1, 1}));
  ASSERT_TRUE(uu.ok());
  EXPECT_DOUBLE_EQ(*uu, 1.0);
  // item -> anything: 0.
  auto iu = matcher.Count(LQ(2, {{0, 1, 0}}, {2, kAny}));
  ASSERT_TRUE(iu.ok());
  EXPECT_DOUBLE_EQ(*iu, 0.0);
}

TEST(VertexLabelsTest, TreeDpHonorsConstraints) {
  Graph g = LabeledGraph();
  matching::Matcher matcher(g);
  // 2-path user -> user -> item: only 0->1->4.
  auto c = matcher.Count(LQ(3, {{0, 1, 0}, {1, 2, 0}}, {1, 1, 2}));
  ASSERT_TRUE(c.ok());
  EXPECT_DOUBLE_EQ(*c, 1.0);
  // 2-path with middle unconstrained: 0->1->4 only (others end at items
  // with no out-edges).
  auto c2 = matcher.Count(LQ(3, {{0, 1, 0}, {1, 2, 0}}, {kAny, kAny, kAny}));
  ASSERT_TRUE(c2.ok());
  EXPECT_DOUBLE_EQ(*c2, 1.0);
}

TEST(VertexLabelsTest, EnumerateHonorsConstraints) {
  Graph g = LabeledGraph();
  matching::Matcher matcher(g);
  int rows = 0;
  auto status = matcher.Enumerate(
      LQ(2, {{0, 1, 0}}, {1, 2}), {},
      [&](const std::vector<graph::VertexId>& a) {
        EXPECT_EQ(g.vertex_label(a[0]), 1u);
        EXPECT_EQ(g.vertex_label(a[1]), 2u);
        ++rows;
        return true;
      });
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(rows, 4);
}

TEST(VertexLabelsTest, CanonicalCodeDistinguishesConstraints) {
  const auto unconstrained = LQ(2, {{0, 1, 0}}, {});
  const auto wildcarded = LQ(2, {{0, 1, 0}}, {kAny, kAny});
  const auto constrained = LQ(2, {{0, 1, 0}}, {1, 2});
  const auto flipped = LQ(2, {{0, 1, 0}}, {2, 1});
  EXPECT_EQ(unconstrained.CanonicalCode(), wildcarded.CanonicalCode());
  EXPECT_NE(unconstrained.CanonicalCode(), constrained.CanonicalCode());
  EXPECT_NE(constrained.CanonicalCode(), flipped.CanonicalCode());
}

TEST(VertexLabelsTest, CanonicalCodeInvariantUnderRenaming) {
  const auto a = LQ(3, {{0, 1, 0}, {1, 2, 0}}, {1, kAny, 2});
  const auto b = LQ(3, {{2, 0, 0}, {0, 1, 0}}, {kAny, 2, 1});
  EXPECT_EQ(a.CanonicalCode(), b.CanonicalCode());
}

TEST(VertexLabelsTest, ExtractPatternKeepsConstraints) {
  const auto q = LQ(3, {{0, 1, 0}, {1, 2, 0}}, {1, kAny, 2});
  std::vector<query::QVertex> vmap;
  const auto sub = q.ExtractPattern(0b10, &vmap);
  ASSERT_EQ(sub.num_vertices(), 2u);
  // Vertices {1,2} of the original survive with constraints {kAny, 2}.
  for (uint32_t nv = 0; nv < 2; ++nv) {
    EXPECT_EQ(sub.vertex_constraint(nv), q.vertex_constraint(vmap[nv]));
  }
}

TEST(VertexLabelsTest, MarkovTableCachesLabeledPatternsSeparately) {
  Graph g = LabeledGraph();
  stats::MarkovTable markov(g, 2);
  auto any = markov.Cardinality(LQ(2, {{0, 1, 0}}, {}));
  auto ui = markov.Cardinality(LQ(2, {{0, 1, 0}}, {1, 2}));
  ASSERT_TRUE(any.ok());
  ASSERT_TRUE(ui.ok());
  EXPECT_DOUBLE_EQ(*any, 5.0);
  EXPECT_DOUBLE_EQ(*ui, 4.0);
  EXPECT_EQ(markov.num_entries(), 2u);
}

TEST(VertexLabelsTest, OptimisticEstimatorUsesLabeledStatistics) {
  Graph g = LabeledGraph();
  stats::MarkovTable markov(g, 2);
  matching::Matcher matcher(g);
  OptimisticEstimator estimator(markov, OptimisticSpec{});
  // 2-path fully inside the table: exact, constrained and unconstrained.
  const auto labeled = LQ(3, {{0, 1, 0}, {1, 2, 0}}, {1, 1, 2});
  auto est = estimator.Estimate(labeled);
  ASSERT_TRUE(est.ok());
  auto truth = matcher.Count(labeled);
  ASSERT_TRUE(truth.ok());
  EXPECT_DOUBLE_EQ(*est, *truth);
}

TEST(VertexLabelsTest, ConstraintChangesEstimateDownstream) {
  // On a 3-path (beyond h=2), constraining the endpoints changes the
  // Markov statistics the CEG uses and therefore the estimate.
  Graph g = LabeledGraph();
  stats::MarkovTable markov(g, 2);
  OptimisticEstimator estimator(markov, OptimisticSpec{});
  const auto free3 = LQ(4, {{0, 1, 0}, {1, 2, 0}, {2, 3, 0}}, {});
  const auto user3 = LQ(4, {{0, 1, 0}, {1, 2, 0}, {2, 3, 0}},
                        {1, 1, 1, 2});
  auto e_free = estimator.Estimate(free3);
  auto e_user = estimator.Estimate(user3);
  ASSERT_TRUE(e_free.ok());
  ASSERT_TRUE(e_user.ok());
  EXPECT_NE(*e_free, *e_user);
}

}  // namespace
}  // namespace cegraph
