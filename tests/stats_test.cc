#include <gtest/gtest.h>

#include "graph/generators.h"
#include "matching/matcher.h"
#include "query/subquery.h"
#include "query/templates.h"
#include "stats/char_sets.h"
#include "stats/cycle_closing.h"
#include "stats/degree_stats.h"
#include "stats/markov_table.h"
#include "stats/summary_graph.h"

namespace cegraph::stats {
namespace {

using graph::Graph;
using query::QueryGraph;

Graph TinyGraph() {
  // Label 0 (A): 0->1, 0->2, 3->1 ; Label 1 (B): 1->4, 2->4, 1->5.
  auto g = graph::Graph::Create(
      6, 2, {{0, 1, 0}, {0, 2, 0}, {3, 1, 0}, {1, 4, 1}, {2, 4, 1},
             {1, 5, 1}});
  return std::move(g).value();
}

QueryGraph Q(uint32_t n, std::vector<query::QueryEdge> edges) {
  auto q = QueryGraph::Create(n, std::move(edges));
  return std::move(q).value();
}

TEST(MarkovTableTest, SingleEdgeCardinality) {
  Graph g = TinyGraph();
  MarkovTable markov(g, 2);
  auto c = markov.Cardinality(Q(2, {{0, 1, 0}}));
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*c, 3.0);
}

TEST(MarkovTableTest, TwoPathCardinality) {
  Graph g = TinyGraph();
  MarkovTable markov(g, 2);
  auto c = markov.Cardinality(Q(3, {{0, 1, 0}, {1, 2, 1}}));
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*c, 5.0);
}

TEST(MarkovTableTest, RejectsOversizePattern) {
  Graph g = TinyGraph();
  MarkovTable markov(g, 2);
  EXPECT_FALSE(markov.Contains(query::PathShape(3)));
  EXPECT_FALSE(markov.Cardinality(query::PathShape(3)).ok());
}

TEST(MarkovTableTest, CachesByIsomorphism) {
  Graph g = TinyGraph();
  MarkovTable markov(g, 2);
  ASSERT_TRUE(markov.Cardinality(Q(3, {{0, 1, 0}, {1, 2, 1}})).ok());
  const size_t entries = markov.num_entries();
  // Isomorphic relabeled pattern must hit the cache.
  ASSERT_TRUE(markov.Cardinality(Q(3, {{2, 0, 0}, {0, 1, 1}})).ok());
  EXPECT_EQ(markov.num_entries(), entries);
}

TEST(MarkovTableTest, SizeAccountingGrowsWithEntries) {
  Graph g = TinyGraph();
  MarkovTable markov(g, 2);
  EXPECT_EQ(markov.ApproximateSizeBytes(), 0u);
  ASSERT_TRUE(markov.Cardinality(Q(2, {{0, 1, 0}})).ok());
  const size_t one = markov.ApproximateSizeBytes();
  EXPECT_GT(one, 0u);
  ASSERT_TRUE(markov.Cardinality(Q(3, {{0, 1, 0}, {1, 2, 1}})).ok());
  EXPECT_GT(markov.ApproximateSizeBytes(), one);
}

TEST(MarkovTableTest, H3ContainsTriangles) {
  Graph g = TinyGraph();
  MarkovTable markov(g, 3);
  auto c = markov.Cardinality(Q(3, {{0, 1, 0}, {1, 2, 0}, {2, 0, 0}}));
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*c, 0.0);  // no directed triangle in TinyGraph
}

TEST(DegreeMapTest, ComputesProjectionsAndDegrees) {
  // Relation {(0,1),(0,2),(1,2)} over attrs {a0,a1}.
  std::vector<std::array<graph::VertexId, 3>> tuples = {
      {0, 1, 0}, {0, 2, 0}, {1, 2, 0}};
  DegreeMap dm = ComputeDegreeMap(2, tuples);
  EXPECT_EQ(dm.Get(0, 3), 3.0);   // |R|
  EXPECT_EQ(dm.Get(0, 1), 2.0);   // distinct a0
  EXPECT_EQ(dm.Get(0, 2), 2.0);   // distinct a1
  EXPECT_EQ(dm.Get(1, 3), 2.0);   // max fanout of a0
  EXPECT_EQ(dm.Get(2, 3), 2.0);   // max fanin of a1
  EXPECT_EQ(dm.Get(1, 1), 1.0);
  EXPECT_EQ(dm.Get(3, 3), 1.0);
}

TEST(DegreeMapTest, ThreeAttributes) {
  // Tuples (a,b,c): (0,0,0), (0,0,1), (0,1,0).
  std::vector<std::array<graph::VertexId, 3>> tuples = {
      {0, 0, 0}, {0, 0, 1}, {0, 1, 0}};
  DegreeMap dm = ComputeDegreeMap(3, tuples);
  EXPECT_EQ(dm.Get(0, 7), 3.0);
  EXPECT_EQ(dm.Get(1, 7), 3.0);   // a=0 extends to 3 (b,c) pairs
  EXPECT_EQ(dm.Get(3, 7), 2.0);   // (a,b)=(0,0) extends to 2 c's
  EXPECT_EQ(dm.Get(0, 6), 3.0);   // distinct (b,c)
  EXPECT_EQ(dm.Get(2, 6), 2.0);   // b=0 pairs with 2 c's
}

TEST(DegreeMapTest, DeduplicatesTuples) {
  std::vector<std::array<graph::VertexId, 3>> tuples = {
      {0, 1, 0}, {0, 1, 0}, {0, 1, 0}};
  DegreeMap dm = ComputeDegreeMap(2, tuples);
  EXPECT_EQ(dm.Get(0, 3), 1.0);
}

TEST(StatsCatalogTest, BaseRelationMatchesGraph) {
  Graph g = TinyGraph();
  StatsCatalog catalog(g);
  const DegreeMap& dm = catalog.BaseRelation(0);
  EXPECT_EQ(dm.Get(0, 3), 3.0);  // |A|
  EXPECT_EQ(dm.Get(1, 3), 2.0);  // max out-degree (vertex 0)
  EXPECT_EQ(dm.Get(2, 3), 2.0);  // max in-degree (vertex 1)
  EXPECT_EQ(dm.Get(0, 1), 2.0);  // distinct sources {0,3}
  EXPECT_EQ(dm.Get(0, 2), 2.0);  // distinct dests {1,2}
}

TEST(StatsCatalogTest, TwoJoinStatsMatchEnumeration) {
  Graph g = TinyGraph();
  StatsCatalog catalog(g);
  QueryGraph pattern = Q(3, {{0, 1, 0}, {1, 2, 1}});
  const auto* js = catalog.TwoJoin(pattern);
  ASSERT_NE(js, nullptr);
  EXPECT_EQ(js->cardinality, 5.0);
  // Shared across isomorphic requests.
  const auto* js2 = catalog.TwoJoin(Q(3, {{1, 2, 0}, {2, 0, 1}}));
  EXPECT_EQ(js, js2);
}

TEST(DegreeStatsTest, BaseRelationsMappedToQueryVertices) {
  Graph g = TinyGraph();
  StatsCatalog catalog(g);
  QueryGraph q = Q(3, {{0, 1, 0}, {1, 2, 1}});
  auto stats = DegreeStats::Build(catalog, q, /*include_two_joins=*/false);
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(stats->relations().size(), 2u);
  const StatRelation& r0 = stats->relations()[0];
  EXPECT_EQ(r0.attrs, 0b011u);
  EXPECT_EQ(r0.Get(0, 0b011), 3.0);
  EXPECT_EQ(r0.Get(0b001, 0b011), 2.0);  // deg(src)
}

TEST(DegreeStatsTest, TwoJoinRelationsAdded) {
  Graph g = TinyGraph();
  StatsCatalog catalog(g);
  QueryGraph q = Q(3, {{0, 1, 0}, {1, 2, 1}});
  auto stats = DegreeStats::Build(catalog, q, /*include_two_joins=*/true);
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(stats->relations().size(), 3u);
  const StatRelation& join = stats->relations()[2];
  EXPECT_EQ(join.attrs, 0b111u);
  EXPECT_EQ(join.Get(0, 0b111), 5.0);  // |A ⋈ B| = 5
}

TEST(DegreeStatsTest, SelfLoopRelation) {
  auto g = graph::Graph::Create(3, 1, {{0, 0, 0}, {1, 1, 0}, {0, 1, 0}});
  ASSERT_TRUE(g.ok());
  StatsCatalog catalog(*g);
  QueryGraph q = Q(1, {{0, 0, 0}});
  auto stats = DegreeStats::Build(catalog, q, false);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->relations()[0].Get(0, 0b1), 2.0);  // two self-loops
}

TEST(CycleClosingTest, DeterministicAndCached) {
  Graph g = TinyGraph();
  CycleClosingRates rates(g);
  ClosingKey key{.first_label = 0, .last_label = 1, .close_label = 0};
  const double r1 = rates.Rate(key);
  const double r2 = rates.Rate(key);
  EXPECT_EQ(r1, r2);
  EXPECT_EQ(rates.num_cached(), 1u);
  EXPECT_GT(r1, 0.0);
  EXPECT_LE(r1, 1.0);
}

TEST(CycleClosingTest, DenseCycleGraphHasHighRate) {
  // Complete-ish digraph with one label: almost every 2-path closes.
  std::vector<graph::Edge> edges;
  for (uint32_t i = 0; i < 12; ++i) {
    for (uint32_t j = 0; j < 12; ++j) {
      if (i != j) edges.push_back({i, j, 0});
    }
  }
  auto g = graph::Graph::Create(12, 1, std::move(edges));
  ASSERT_TRUE(g.ok());
  CycleClosingRates rates(*g);
  ClosingKey key{.first_label = 0,
                 .last_label = 0,
                 .close_label = 0,
                 .first_forward = true,
                 .last_forward = true,
                 .close_from_end = true};
  EXPECT_GT(rates.Rate(key), 0.8);
}

TEST(CycleClosingTest, NoClosingEdgesLowRate) {
  // Bipartite-ish: closing label never present.
  Graph g = TinyGraph();
  CycleClosingOptions options;
  options.walks_per_key = 500;
  CycleClosingRates rates(g, options);
  ClosingKey key{.first_label = 0, .last_label = 1, .close_label = 1,
                 .first_forward = true, .last_forward = true,
                 .close_from_end = true};
  EXPECT_LT(rates.Rate(key), 0.05);
  EXPECT_GT(rates.Rate(key), 0.0);  // smoothing keeps it positive
}

TEST(CharSetsTest, GroupsVerticesBySignature) {
  Graph g = TinyGraph();
  CharacteristicSets cs(g);
  // Vertex 0: {A}; vertex 3: {A}; vertex 1: {B}; vertex 2: {B}.
  EXPECT_EQ(cs.groups().size(), 2u);
}

TEST(CharSetsTest, StarEstimateExactForSingleLabel) {
  Graph g = TinyGraph();
  CharacteristicSets cs(g);
  // Single-edge star with label A: exact count 3.
  EXPECT_DOUBLE_EQ(cs.EstimateStar({0}), 3.0);
  EXPECT_DOUBLE_EQ(cs.EstimateStar({1}), 3.0);
}

TEST(CharSetsTest, TwoEdgeStarUniformityAssumption) {
  Graph g = TinyGraph();
  CharacteristicSets cs(g);
  // B,B 2-star: group {B} has 2 vertices, avg multiplicity 1.5 -> 2*1.5^2.
  EXPECT_DOUBLE_EQ(cs.EstimateStar({1, 1}), 4.5);
}

TEST(CharSetsTest, MissingLabelGivesZero) {
  Graph g = TinyGraph();
  CharacteristicSets cs(g);
  EXPECT_DOUBLE_EQ(cs.EstimateStar({0, 1}), 0.0);  // no vertex has both
}

TEST(SummaryGraphTest, PreservesTotalEdgeWeight) {
  Graph g = TinyGraph();
  SummaryGraph summary(g, 3);
  double total = 0;
  for (uint32_t b1 = 0; b1 < summary.num_buckets(); ++b1) {
    for (graph::Label l = 0; l < summary.num_labels(); ++l) {
      for (const auto& [b2, w] : summary.OutEdges(b1, l)) total += w;
    }
  }
  EXPECT_DOUBLE_EQ(total, 6.0);
}

TEST(SummaryGraphTest, BucketSizesSumToVertices) {
  Graph g = TinyGraph();
  SummaryGraph summary(g, 4);
  uint64_t total = 0;
  for (uint32_t b = 0; b < summary.num_buckets(); ++b) {
    total += summary.bucket_size(b);
  }
  EXPECT_EQ(total, 6u);
}

TEST(SummaryGraphTest, InEdgesMirrorOutEdges) {
  Graph g = TinyGraph();
  SummaryGraph summary(g, 3);
  for (uint32_t b1 = 0; b1 < summary.num_buckets(); ++b1) {
    for (graph::Label l = 0; l < summary.num_labels(); ++l) {
      for (const auto& [b2, w] : summary.OutEdges(b1, l)) {
        EXPECT_EQ(summary.EdgeWeight(b1, l, b2), w);
        bool found = false;
        for (const auto& [bb1, ww] : summary.InEdges(b2, l)) {
          if (bb1 == b1) {
            found = true;
            EXPECT_EQ(ww, w);
          }
        }
        EXPECT_TRUE(found);
      }
    }
  }
}

}  // namespace
}  // namespace cegraph::stats
