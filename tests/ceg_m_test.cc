#include <gtest/gtest.h>

#include <bit>
#include <cmath>

#include "ceg/ceg_m.h"
#include "estimators/bound_sketch.h"
#include "estimators/pessimistic.h"
#include "graph/generators.h"
#include "query/templates.h"
#include "stats/degree_stats.h"

namespace cegraph::ceg {
namespace {

using graph::Graph;
using query::QueryGraph;
using query::VertexSet;

QueryGraph Q(uint32_t n, std::vector<query::QueryEdge> edges) {
  auto q = QueryGraph::Create(n, std::move(edges));
  return std::move(q).value();
}

constexpr graph::Label kA = 0, kB = 1;

class CegMTest : public ::testing::Test {
 protected:
  CegMTest() : g_(graph::MakeRunningExampleGraph()), catalog_(g_) {}

  stats::DegreeStats Stats(const QueryGraph& q, bool two_joins = false) {
    auto s = stats::DegreeStats::Build(catalog_, q, two_joins);
    return std::move(s).value();
  }

  Graph g_;
  stats::StatsCatalog catalog_;
};

TEST_F(CegMTest, NodeIdsAreSubsetMasks) {
  const QueryGraph q = Q(3, {{0, 1, kA}, {1, 2, kB}});
  auto built = BuildCegM(q, Stats(q));
  ASSERT_TRUE(built.ok());
  EXPECT_EQ(built->ceg.num_nodes(), 8u);  // 2^3 attribute subsets
  EXPECT_EQ(built->ceg.source(), 0u);
  EXPECT_EQ(built->ceg.sink(), 0b111u);
}

TEST_F(CegMTest, SingleEdgeBoundIsRelationSize) {
  const QueryGraph q = Q(2, {{0, 1, kA}});
  auto min_log = MolpMinLogWeight(q, Stats(q));
  ASSERT_TRUE(min_log.ok());
  EXPECT_NEAR(std::exp2(*min_log), 4.0, 1e-9);  // |A| = 4
}

TEST_F(CegMTest, TwoPathBoundUsesMaxDegrees) {
  // A ⋈ B: candidate formulas include |A| * maxoutdeg(B) = 4*1 = 4 and
  // |B| * maxindeg(A) = 2*3 = 6; MOLP <= 4.
  const QueryGraph q = Q(3, {{0, 1, kA}, {1, 2, kB}});
  auto min_log = MolpMinLogWeight(q, Stats(q));
  ASSERT_TRUE(min_log.ok());
  EXPECT_LE(std::exp2(*min_log), 4.0 + 1e-9);
  // Sound: true count is 4.
  EXPECT_GE(std::exp2(*min_log) + 1e-9, 4.0);
}

TEST_F(CegMTest, ProjectionEdgesHaveZeroWeight) {
  const QueryGraph q = Q(3, {{0, 1, kA}, {1, 2, kB}});
  auto built = BuildCegM(q, Stats(q));
  ASSERT_TRUE(built.ok());
  int projections = 0;
  for (const auto& e : built->ceg.edges()) {
    if (e.label == "proj") {
      ++projections;
      EXPECT_DOUBLE_EQ(e.log_weight, 0.0);
      // Projections remove exactly one attribute.
      EXPECT_EQ(std::popcount(e.from), std::popcount(e.to) + 1);
    } else {
      // Extensions strictly grow the attribute set.
      EXPECT_GT(std::popcount(e.to), std::popcount(e.from));
    }
  }
  EXPECT_GT(projections, 0);
  CegMOptions no_proj;
  no_proj.include_projection_edges = false;
  auto bare = BuildCegM(q, Stats(q), no_proj);
  ASSERT_TRUE(bare.ok());
  for (const auto& e : bare->ceg.edges()) {
    EXPECT_NE(e.label, "proj");
  }
  EXPECT_TRUE(bare->ceg.IsDag());
  EXPECT_FALSE(built->ceg.IsDag());  // up+down edges create cycles
}

TEST_F(CegMTest, MolpMinPathIsConsistent) {
  const QueryGraph q = Q(4, {{0, 1, kA}, {1, 2, kB}, {2, 3, 2}});
  const auto stats = Stats(q);
  auto path = MolpMinPath(q, stats);
  ASSERT_TRUE(path.ok());
  ASSERT_FALSE(path->empty());
  // Steps chain from ∅ to the full attribute set.
  EXPECT_EQ(path->front().from, 0u);
  const VertexSet full = (VertexSet{1} << q.num_vertices()) - 1;
  EXPECT_EQ(path->back().to, full);
  for (size_t i = 1; i < path->size(); ++i) {
    EXPECT_EQ((*path)[i].from, (*path)[i - 1].to);
  }
  // The first step is unbound (x == 0): nothing is bound at the source.
  EXPECT_EQ(path->front().x, 0u);
}

TEST_F(CegMTest, TwoJoinStatsAddRelationsAndTighten) {
  const QueryGraph q = Q(4, {{0, 1, kA}, {1, 2, kB}, {2, 3, 2}});
  const auto base = Stats(q, false);
  const auto with2j = Stats(q, true);
  EXPECT_GT(with2j.relations().size(), base.relations().size());
  auto b = MolpMinLogWeight(q, base);
  auto t = MolpMinLogWeight(q, with2j);
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(t.ok());
  EXPECT_LE(*t, *b + 1e-9);
}

TEST_F(CegMTest, ExplicitAndImplicitAgreeOnManyShapes) {
  auto big = graph::GenerateGraph({.num_vertices = 60,
                                   .num_edges = 400,
                                   .num_labels = 3,
                                   .num_types = 1,
                                   .label_zipf_s = 1.0,
                                   .preferential_p = 0.4,
                                   .random_labels = true,
                                   .seed = 7});
  ASSERT_TRUE(big.ok());
  stats::StatsCatalog catalog(*big);
  for (const auto& shape :
       {query::PathShape(4), query::StarShape(4), query::CycleShape(4),
        query::DiamondShape(), query::BowtieShape()}) {
    std::vector<query::QueryEdge> edges = shape.edges();
    for (uint32_t i = 0; i < edges.size(); ++i) {
      edges[i].label = i % 3;
    }
    auto labeled = QueryGraph::Create(shape.num_vertices(),
                                      std::move(edges));
    ASSERT_TRUE(labeled.ok());
    auto stats = stats::DegreeStats::Build(catalog, *labeled, false);
    ASSERT_TRUE(stats.ok());
    auto implicit = MolpMinLogWeight(*labeled, *stats);
    ASSERT_TRUE(implicit.ok());
    auto built = BuildCegM(*labeled, *stats);
    ASSERT_TRUE(built.ok());
    auto explicit_min = built->ceg.MinLogWeightDijkstra();
    ASSERT_TRUE(explicit_min.ok());
    EXPECT_NEAR(*implicit, *explicit_min, 1e-9);
  }
}

TEST_F(CegMTest, RejectsOversizeQueries) {
  // 15 attributes exceed the explicit builder's limit.
  const QueryGraph q = query::PathShape(14);
  std::vector<query::QueryEdge> edges = q.edges();
  for (auto& e : edges) e.label = 0;
  auto labeled = QueryGraph::Create(q.num_vertices(), std::move(edges));
  ASSERT_TRUE(labeled.ok());
  auto stats = stats::DegreeStats::Build(catalog_, *labeled, false);
  ASSERT_TRUE(stats.ok());
  EXPECT_FALSE(BuildCegM(*labeled, *stats).ok());
  // The implicit Dijkstra still works (bounded by 31 attributes).
  EXPECT_TRUE(MolpMinLogWeight(*labeled, *stats).ok());
}

TEST(BoundSketchInternalsTest, PartitionCountScalesWithBudget) {
  // On a 3-path, S = {one join attribute}: K buckets -> K sub-queries.
  // Verify monotone tightening of the MOLP sketch as K grows.
  auto g = graph::GenerateGraph({.num_vertices = 200,
                                 .num_edges = 1600,
                                 .num_labels = 3,
                                 .num_types = 1,
                                 .label_zipf_s = 1.0,
                                 .preferential_p = 0.6,
                                 .random_labels = true,
                                 .seed = 13});
  ASSERT_TRUE(g.ok());
  QueryGraph q = std::move(QueryGraph::Create(
      4, {{0, 1, 0}, {1, 2, 1}, {2, 3, 2}})).value();
  double previous = std::numeric_limits<double>::infinity();
  for (int k : {1, 4, 16}) {
    BoundSketchEstimator::Options options;
    options.budget_k = k;
    BoundSketchEstimator bs(*g, BoundSketchEstimator::Inner::kMolp, options);
    auto est = bs.Estimate(q);
    ASSERT_TRUE(est.ok());
    EXPECT_LE(*est, previous * (1 + 1e-9)) << "K=" << k;
    previous = *est;
  }
}

TEST(BoundSketchInternalsTest, NoJoinAttributesFallsBackToDirect) {
  // A single-edge query has no join attributes: the sketch must equal the
  // direct estimate for every K.
  auto g = graph::MakeRunningExampleGraph();
  QueryGraph q = std::move(QueryGraph::Create(2, {{0, 1, kA}})).value();
  stats::StatsCatalog catalog(g);
  cegraph::MolpEstimator direct(catalog, false);
  for (int k : {1, 16, 128}) {
    BoundSketchEstimator::Options options;
    options.budget_k = k;
    BoundSketchEstimator bs(g, BoundSketchEstimator::Inner::kMolp, options);
    auto a = bs.Estimate(q);
    auto b = direct.Estimate(q);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_DOUBLE_EQ(*a, *b) << "K=" << k;
  }
}

}  // namespace
}  // namespace cegraph::ceg
