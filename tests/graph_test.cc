#include <gtest/gtest.h>

#include <set>

#include "graph/datasets.h"
#include "graph/generators.h"
#include "graph/graph.h"

namespace cegraph::graph {
namespace {

Graph SmallGraph() {
  // Label 0: 0->1, 0->2, 1->2 ; Label 1: 2->0, 2->1.
  auto g = Graph::Create(3, 2,
                         {{0, 1, 0}, {0, 2, 0}, {1, 2, 0}, {2, 0, 1},
                          {2, 1, 1}});
  return std::move(g).value();
}

TEST(GraphTest, BasicCounts) {
  Graph g = SmallGraph();
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_labels(), 2u);
  EXPECT_EQ(g.num_edges(), 5u);
  EXPECT_EQ(g.RelationSize(0), 3u);
  EXPECT_EQ(g.RelationSize(1), 2u);
}

TEST(GraphTest, OutNeighborsSorted) {
  Graph g = SmallGraph();
  auto nbrs = g.OutNeighbors(0, 0);
  ASSERT_EQ(nbrs.size(), 2u);
  EXPECT_EQ(nbrs[0], 1u);
  EXPECT_EQ(nbrs[1], 2u);
  EXPECT_EQ(g.OutNeighbors(0, 1).size(), 0u);
}

TEST(GraphTest, InNeighbors) {
  Graph g = SmallGraph();
  auto nbrs = g.InNeighbors(2, 0);
  ASSERT_EQ(nbrs.size(), 2u);
  EXPECT_EQ(nbrs[0], 0u);
  EXPECT_EQ(nbrs[1], 1u);
  EXPECT_EQ(g.InNeighbors(0, 1).size(), 1u);
}

TEST(GraphTest, HasEdge) {
  Graph g = SmallGraph();
  EXPECT_TRUE(g.HasEdge(0, 1, 0));
  EXPECT_TRUE(g.HasEdge(2, 0, 1));
  EXPECT_FALSE(g.HasEdge(1, 0, 0));
  EXPECT_FALSE(g.HasEdge(0, 1, 1));
}

TEST(GraphTest, DegreeStatistics) {
  Graph g = SmallGraph();
  EXPECT_EQ(g.MaxOutDegree(0), 2u);
  EXPECT_EQ(g.MaxInDegree(0), 2u);
  EXPECT_EQ(g.MaxOutDegree(1), 2u);
  EXPECT_EQ(g.MaxInDegree(1), 1u);
  EXPECT_EQ(g.NumDistinctSources(0), 2u);
  EXPECT_EQ(g.NumDistinctDests(0), 2u);
  EXPECT_EQ(g.NumDistinctSources(1), 1u);
  EXPECT_EQ(g.NumDistinctDests(1), 2u);
}

TEST(GraphTest, DeduplicatesParallelEdges) {
  auto g = Graph::Create(2, 1, {{0, 1, 0}, {0, 1, 0}, {0, 1, 0}});
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 1u);
}

TEST(GraphTest, RelationEdgesSortedBySrcDst) {
  auto g = Graph::Create(4, 1, {{3, 0, 0}, {1, 2, 0}, {1, 0, 0}});
  ASSERT_TRUE(g.ok());
  auto edges = g->RelationEdges(0);
  ASSERT_EQ(edges.size(), 3u);
  EXPECT_EQ(edges[0].src, 1u);
  EXPECT_EQ(edges[0].dst, 0u);
  EXPECT_EQ(edges[1].src, 1u);
  EXPECT_EQ(edges[1].dst, 2u);
  EXPECT_EQ(edges[2].src, 3u);
}

TEST(GraphTest, RejectsOutOfRangeEndpoint) {
  auto g = Graph::Create(2, 1, {{0, 5, 0}});
  EXPECT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(GraphTest, RejectsOutOfRangeLabel) {
  auto g = Graph::Create(2, 1, {{0, 1, 3}});
  EXPECT_FALSE(g.ok());
}

TEST(GraphTest, SelfLoopsSupported) {
  auto g = Graph::Create(2, 1, {{0, 0, 0}});
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(g->HasEdge(0, 0, 0));
  EXPECT_EQ(g->OutDegree(0, 0), 1u);
  EXPECT_EQ(g->InDegree(0, 0), 1u);
}

TEST(GraphTest, EmptyRelation) {
  auto g = Graph::Create(3, 3, {{0, 1, 0}});
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->RelationSize(1), 0u);
  EXPECT_EQ(g->RelationSize(2), 0u);
  EXPECT_EQ(g->MaxOutDegree(2), 0u);
  EXPECT_EQ(g->RelationEdges(2).size(), 0u);
}

TEST(GeneratorTest, RespectsConfigSizes) {
  GeneratorConfig config;
  config.num_vertices = 500;
  config.num_edges = 2000;
  config.num_labels = 8;
  config.seed = 99;
  auto g = GenerateGraph(config);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_vertices(), 500u);
  EXPECT_EQ(g->num_labels(), 8u);
  // Deduplication may lose a few edges, but we should be close.
  EXPECT_GT(g->num_edges(), 1800u);
  EXPECT_LE(g->num_edges(), 2000u);
}

TEST(GeneratorTest, Deterministic) {
  GeneratorConfig config;
  config.num_vertices = 200;
  config.num_edges = 800;
  config.num_labels = 5;
  config.seed = 7;
  auto g1 = GenerateGraph(config);
  auto g2 = GenerateGraph(config);
  ASSERT_TRUE(g1.ok());
  ASSERT_TRUE(g2.ok());
  EXPECT_EQ(g1->edges(), g2->edges());
}

TEST(GeneratorTest, SeedChangesOutput) {
  GeneratorConfig config;
  config.num_vertices = 200;
  config.num_edges = 800;
  config.num_labels = 5;
  config.seed = 7;
  auto g1 = GenerateGraph(config);
  config.seed = 8;
  auto g2 = GenerateGraph(config);
  EXPECT_NE(g1->edges(), g2->edges());
}

TEST(GeneratorTest, PreferentialAttachmentSkewsDegrees) {
  GeneratorConfig skewed;
  skewed.num_vertices = 2000;
  skewed.num_edges = 8000;
  skewed.num_labels = 4;
  skewed.preferential_p = 0.8;
  skewed.seed = 3;
  GeneratorConfig uniform = skewed;
  uniform.preferential_p = 0.0;
  auto gs = GenerateGraph(skewed);
  auto gu = GenerateGraph(uniform);
  uint32_t max_skewed = 0, max_uniform = 0;
  for (Label l = 0; l < 4; ++l) {
    max_skewed = std::max(max_skewed, gs->MaxOutDegree(l));
    max_uniform = std::max(max_uniform, gu->MaxOutDegree(l));
  }
  EXPECT_GT(max_skewed, max_uniform);
}

TEST(GeneratorTest, RejectsEmptyDomains) {
  GeneratorConfig config;
  config.num_vertices = 0;
  EXPECT_FALSE(GenerateGraph(config).ok());
}

TEST(RunningExampleTest, HasFiveLabels) {
  Graph g = MakeRunningExampleGraph();
  EXPECT_EQ(g.num_labels(), 5u);
  EXPECT_EQ(g.RelationSize(1), 2u);  // |B| = 2, as in the paper's Table 1
  EXPECT_EQ(g.RelationSize(0), 4u);  // |A| = 4
}

TEST(DatasetsTest, AllSixPresent) {
  const auto names = DatasetNames();
  ASSERT_EQ(names.size(), 6u);
  EXPECT_EQ(names[0], "imdb_like");
  EXPECT_EQ(names[5], "epinions_like");
}

TEST(DatasetsTest, InfoMatchesGraph) {
  for (const std::string& name : DatasetNames()) {
    auto info = GetDatasetInfo(name);
    ASSERT_TRUE(info.ok()) << name;
    auto g = MakeDataset(name);
    ASSERT_TRUE(g.ok()) << name;
    EXPECT_EQ(g->num_vertices(), info->num_vertices) << name;
    EXPECT_EQ(g->num_labels(), info->num_labels) << name;
    EXPECT_LE(g->num_edges(), info->num_edges) << name;
    EXPECT_GT(g->num_edges(), info->num_edges * 9 / 10) << name;
  }
}

TEST(DatasetsTest, UnknownNameFails) {
  EXPECT_FALSE(MakeDataset("nope").ok());
  EXPECT_FALSE(GetDatasetInfo("nope").ok());
}

TEST(DatasetsTest, EpinionsHasUncorrelatedLabels) {
  // Labels uniform: relation sizes should be within 3x of each other.
  auto g = MakeDataset("epinions_like");
  ASSERT_TRUE(g.ok());
  uint64_t min_size = UINT64_MAX, max_size = 0;
  for (Label l = 0; l < g->num_labels(); ++l) {
    min_size = std::min(min_size, g->RelationSize(l));
    max_size = std::max(max_size, g->RelationSize(l));
  }
  EXPECT_LT(max_size, min_size * 3);
}

}  // namespace
}  // namespace cegraph::graph
