// Tests for the persistent summary-snapshot layer: Prewarm → SaveSnapshot →
// LoadSnapshot round-trips reproduce bit-identical estimates for every
// registry estimator, fingerprint-mismatched and corrupted files are
// rejected cleanly, and the markov(h) validation satellite holds.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "engine/snapshot.h"
#include "graph/generators.h"
#include "query/templates.h"
#include "query/workload.h"
#include "util/serde.h"

namespace cegraph::engine {
namespace {

/// A unique temp path per test, removed on destruction.
class TempFile {
 public:
  explicit TempFile(const std::string& stem)
      : path_((std::filesystem::temp_directory_path() /
               ("cegraph_test_" + stem + ".snap"))
                  .string()) {
    std::remove(path_.c_str());
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

graph::Graph SmallGraph(uint64_t seed = 7) {
  graph::GeneratorConfig config;
  config.num_vertices = 400;
  config.num_edges = 2400;
  config.num_labels = 6;
  config.seed = seed;
  auto g = graph::GenerateGraph(config);
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

std::vector<query::WorkloadQuery> SmallWorkload(const graph::Graph& g) {
  query::WorkloadOptions options;
  options.instances_per_template = 3;
  options.seed = 99;
  auto wl = query::GenerateWorkload(g,
                                    {{"path2", query::PathShape(2)},
                                     {"star2", query::StarShape(2)},
                                     {"tri", query::CycleShape(3)},
                                     {"cyc4", query::CycleShape(4)}},
                                    options);
  EXPECT_TRUE(wl.ok());
  return std::move(wl).value();
}

/// Every estimate of every registered estimator over `workload`, as raw
/// doubles (NaN marks a failed estimate so comparisons stay positional).
std::vector<double> AllEstimates(
    const EstimationEngine& engine,
    const std::vector<query::WorkloadQuery>& workload) {
  std::vector<double> out;
  for (const std::string& name :
       EstimatorRegistry::Default().RegisteredNames()) {
    auto estimator = engine.Estimator(name);
    EXPECT_TRUE(estimator.ok()) << name;
    for (const query::WorkloadQuery& wq : workload) {
      auto est = (*estimator)->Estimate(wq.query);
      out.push_back(est.ok() ? *est
                             : std::numeric_limits<double>::quiet_NaN());
    }
  }
  return out;
}

void ExpectBitIdentical(const std::vector<double>& a,
                        const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::isnan(a[i])) {
      EXPECT_TRUE(std::isnan(b[i])) << "index " << i;
    } else {
      EXPECT_EQ(a[i], b[i]) << "index " << i;  // exact, not approximate
    }
  }
}

TEST(SnapshotTest, RoundTripReproducesBitIdenticalEstimates) {
  const graph::Graph g = SmallGraph();
  const auto workload = SmallWorkload(g);
  TempFile file("roundtrip");

  // Build: prewarm (dispersion included so every section is exercised)
  // and save.
  EstimationEngine cold(g);
  PrewarmOptions prewarm;
  prewarm.num_threads = 2;
  prewarm.dispersion = true;
  const PrewarmReport report = cold.context().Prewarm(workload, prewarm);
  EXPECT_GT(report.markov_patterns, 0u);
  EXPECT_GT(report.base_relations, 0u);
  EXPECT_GT(report.closing_keys, 0u);  // workload has 4-cycles, h = 2
  ASSERT_TRUE(cold.context().SaveSnapshot(file.path()).ok());
  const std::vector<double> cold_estimates = AllEstimates(cold, workload);

  // Load into a fresh context and compare every estimator's estimates.
  EstimationEngine warm(g);
  auto loaded = warm.context().LoadSnapshot(file.path());
  ASSERT_TRUE(loaded.ok()) << loaded;
  ExpectBitIdentical(AllEstimates(warm, workload), cold_estimates);
}

TEST(SnapshotTest, PrewarmCoversEveryOptimisticLookup) {
  const graph::Graph g = SmallGraph();
  const auto workload = SmallWorkload(g);
  EstimationEngine engine(g);
  engine.context().Prewarm(workload);
  const size_t markov_entries = engine.context().markov().num_entries();
  const size_t closing_entries =
      engine.context().cycle_closing_rates().num_cached();
  ASSERT_GT(markov_entries, 0u);

  // Running the optimistic suites must not add a single cache entry:
  // prewarm enumerated everything they can touch.
  for (const char* name : {"max-hop-max", "all-hops-avg", "min-hop-min",
                           "max-hop-max@ocr", "molp", "molp+2j"}) {
    auto estimator = engine.Estimator(name);
    ASSERT_TRUE(estimator.ok()) << name;
    for (const query::WorkloadQuery& wq : workload) {
      (void)(*estimator)->Estimate(wq.query);
    }
  }
  EXPECT_EQ(engine.context().markov().num_entries(), markov_entries);
  EXPECT_EQ(engine.context().cycle_closing_rates().num_cached(),
            closing_entries);
}

TEST(SnapshotTest, InspectReportsSections) {
  const graph::Graph g = SmallGraph();
  const auto workload = SmallWorkload(g);
  TempFile file("inspect");
  EstimationEngine engine(g);
  engine.context().Prewarm(workload);
  ASSERT_TRUE(engine.context().SaveSnapshot(file.path()).ok());

  auto info = ReadSnapshotInfo(file.path());
  ASSERT_TRUE(info.ok()) << info.status();
  // A context that never applied deltas writes the static (version 1)
  // format; version 2 is reserved for post-delta snapshots.
  EXPECT_EQ(info->version, kSnapshotVersionStatic);
  EXPECT_EQ(info->fingerprint, g.fingerprint());
  EXPECT_EQ(info->epoch, 0u);
  EXPECT_GE(info->sections.size(), 5u);  // markov, rates, degree, cs, sumrdf
  bool saw_markov = false;
  for (const auto& section : info->sections) {
    if (section.name == "markov") {
      saw_markov = true;
      EXPECT_EQ(section.markov_h, 2u);
      EXPECT_GT(section.entries, 0u);
    }
    EXPECT_GT(section.payload_bytes, 0u);
  }
  EXPECT_TRUE(saw_markov);
}

TEST(SnapshotTest, FingerprintMismatchRejected) {
  const graph::Graph g1 = SmallGraph(7);
  const graph::Graph g2 = SmallGraph(8);  // different seed → different edges
  const auto workload = SmallWorkload(g1);
  TempFile file("fingerprint");
  EstimationEngine engine(g1);
  engine.context().Prewarm(workload);
  ASSERT_TRUE(engine.context().SaveSnapshot(file.path()).ok());

  EstimationEngine other(g2);
  auto loaded = other.context().LoadSnapshot(file.path());
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.code(), util::StatusCode::kFailedPrecondition);
  // Nothing may have been applied before the rejection.
  EXPECT_EQ(other.context().markov().num_entries(), 0u);
}

TEST(SnapshotTest, OptionsMismatchRejected) {
  const graph::Graph g = SmallGraph();
  const auto workload = SmallWorkload(g);
  TempFile file("options");
  ContextOptions small_cap;
  small_cap.stats_materialize_cap = 1000;
  EstimationEngine engine(g, small_cap);
  engine.context().Prewarm(workload);
  ASSERT_TRUE(engine.context().SaveSnapshot(file.path()).ok());

  // Loading into a context with the default cap must be refused: the
  // snapshot's over-cap verdicts would silently degrade molp+2j.
  EstimationEngine other(g);
  auto loaded = other.context().LoadSnapshot(file.path());
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.code(), util::StatusCode::kFailedPrecondition);

  // A context with the matching cap loads fine; a different default
  // markov_h alone does not reject (markov sections carry their own h).
  ContextOptions same_cap_other_h = small_cap;
  same_cap_other_h.markov_h = 3;
  EstimationEngine compatible(g, same_cap_other_h);
  EXPECT_TRUE(compatible.context().LoadSnapshot(file.path()).ok());
}

TEST(SnapshotTest, CorruptedFilesRejected) {
  const graph::Graph g = SmallGraph();
  const auto workload = SmallWorkload(g);
  TempFile file("corrupt");
  EstimationEngine engine(g);
  engine.context().Prewarm(workload);
  ASSERT_TRUE(engine.context().SaveSnapshot(file.path()).ok());

  std::string bytes;
  {
    std::ifstream in(file.path(), std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    bytes = std::move(buffer).str();
  }
  auto write_variant = [&](const std::string& data) {
    std::ofstream out(file.path(), std::ios::binary | std::ios::trunc);
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
  };

  // Truncation at several depths: header, section table, mid-payload. A
  // failed load must also leave the context untouched (no partially
  // imported sections), per the two-phase apply in LoadSnapshot.
  for (size_t keep : {size_t{4}, size_t{20}, bytes.size() / 2,
                      bytes.size() - 3}) {
    write_variant(bytes.substr(0, keep));
    EstimationEngine fresh(g);
    auto loaded = fresh.context().LoadSnapshot(file.path());
    EXPECT_FALSE(loaded.ok()) << "kept " << keep << " of " << bytes.size();
    EXPECT_EQ(fresh.context().markov().num_entries(), 0u);
    EXPECT_EQ(fresh.context().cycle_closing_rates().num_cached(), 0u);
  }

  // Bad magic.
  {
    std::string bad = bytes;
    bad[0] = 'X';
    write_variant(bad);
    EstimationEngine fresh(g);
    auto loaded = fresh.context().LoadSnapshot(file.path());
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.code(), util::StatusCode::kInvalidArgument);
  }

  // Unsupported version.
  {
    std::string bad = bytes;
    bad[8] = 99;
    write_variant(bad);
    EstimationEngine fresh(g);
    EXPECT_FALSE(fresh.context().LoadSnapshot(file.path()).ok());
  }

  // Trailing garbage after the last section.
  {
    write_variant(bytes + "garbage");
    EstimationEngine fresh(g);
    EXPECT_FALSE(fresh.context().LoadSnapshot(file.path()).ok());
  }
}

TEST(SnapshotTest, UnknownSectionsAreSkipped) {
  const graph::Graph g = SmallGraph();
  const auto workload = SmallWorkload(g);
  TempFile file("forward_compat");
  EstimationEngine engine(g);
  engine.context().Prewarm(workload);
  ASSERT_TRUE(engine.context().SaveSnapshot(file.path()).ok());

  // Append a section with an id from the future by rewriting the file:
  // bump the section count and append {id=999, payload}.
  std::string bytes;
  {
    std::ifstream in(file.path(), std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    bytes = std::move(buffer).str();
  }
  // Section count lives after magic(8) + version(4) + fingerprint(28) +
  // options block(36) = offset 76.
  const size_t count_offset = 76;
  bytes[count_offset] = static_cast<char>(bytes[count_offset] + 1);
  util::serde::Writer extra;
  extra.WriteU32(999);
  extra.WriteU64(5);
  extra.WriteRaw("hello");
  bytes += extra.buffer();
  {
    std::ofstream out(file.path(), std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  EstimationEngine fresh(g);
  auto loaded = fresh.context().LoadSnapshot(file.path());
  EXPECT_TRUE(loaded.ok()) << loaded;
  EXPECT_GT(fresh.context().markov().num_entries(), 0u);
}

TEST(SnapshotTest, MissingFileIsNotFound) {
  const graph::Graph g = SmallGraph();
  EstimationEngine engine(g);
  auto loaded = engine.context().LoadSnapshot("/nonexistent/stats.snap");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.code(), util::StatusCode::kNotFound);
}

TEST(SnapshotTest, SaveBeforeAnyStatsWritesEmptySnapshot) {
  const graph::Graph g = SmallGraph();
  TempFile file("empty");
  EstimationEngine engine(g);
  ASSERT_TRUE(engine.context().SaveSnapshot(file.path()).ok());
  auto info = ReadSnapshotInfo(file.path());
  ASSERT_TRUE(info.ok());
  EXPECT_TRUE(info->sections.empty());
  // And an empty snapshot loads as a no-op.
  EstimationEngine fresh(g);
  EXPECT_TRUE(fresh.context().LoadSnapshot(file.path()).ok());
}

// --- markov(h) validation satellite -----------------------------------------

TEST(MarkovValidationTest, NegativeHIsInvalidArgument) {
  const graph::Graph g = SmallGraph();
  EstimationContext context(g);
  auto table = context.TryMarkov(-1);
  ASSERT_FALSE(table.ok());
  EXPECT_EQ(table.status().code(), util::StatusCode::kInvalidArgument);
  auto table2 = context.TryMarkov(-100);
  EXPECT_FALSE(table2.ok());
}

TEST(MarkovValidationTest, ZeroMeansContextDefault) {
  const graph::Graph g = SmallGraph();
  ContextOptions options;
  options.markov_h = 3;
  EstimationContext context(g, options);
  auto table = context.TryMarkov(0);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->h(), 3);
  EXPECT_EQ(&context.markov(), *table);  // same shared instance
}

TEST(MarkovValidationTest, BadContextDefaultIsInvalidArgument) {
  const graph::Graph g = SmallGraph();
  ContextOptions options;
  options.markov_h = 0;
  EstimationContext context(g, options);
  auto table = context.TryMarkov(0);
  ASSERT_FALSE(table.ok());
  EXPECT_EQ(table.status().code(), util::StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace cegraph::engine
