#include <gtest/gtest.h>

#include <cmath>

#include "estimators/dispersion_path.h"
#include "estimators/optimistic.h"
#include "graph/datasets.h"
#include "graph/generators.h"
#include "harness/qerror.h"
#include "query/workload.h"
#include "stats/dispersion.h"
#include "stats/markov_table.h"

namespace cegraph {
namespace {

using graph::Graph;
using query::QueryGraph;

QueryGraph Q(uint32_t n, std::vector<query::QueryEdge> edges) {
  auto q = QueryGraph::Create(n, std::move(edges));
  return std::move(q).value();
}

/// A perfectly regular graph: every A-destination has exactly two
/// B-successors, so the A->B extension has zero variance.
Graph RegularGraph() {
  std::vector<graph::Edge> edges;
  for (uint32_t i = 0; i < 4; ++i) {
    edges.push_back({i, 10 + i, 0});              // A
    edges.push_back({10 + i, 20 + 2 * i, 1});     // B x2
    edges.push_back({10 + i, 21 + 2 * i, 1});
  }
  auto g = graph::Graph::Create(30, 2, std::move(edges));
  return std::move(g).value();
}

/// A skewed graph: one A-destination has 4 B-successors, the rest none.
Graph SkewedGraph() {
  std::vector<graph::Edge> edges;
  for (uint32_t i = 0; i < 4; ++i) edges.push_back({i, 10 + i, 0});  // A
  for (uint32_t j = 0; j < 4; ++j) edges.push_back({10, 20 + j, 1});  // B
  auto g = graph::Graph::Create(30, 2, std::move(edges));
  return std::move(g).value();
}

TEST(DispersionCatalogTest, ZeroVarianceOnRegularExtension) {
  Graph g = RegularGraph();
  stats::DispersionCatalog catalog(g);
  // Pattern: (a)-[A]->(b)-[B]->(c), intersection = the A edge (edge 0).
  const QueryGraph pattern = Q(3, {{0, 1, 0}, {1, 2, 1}});
  auto d = catalog.Get(pattern, 0b01);
  ASSERT_TRUE(d.ok());
  EXPECT_DOUBLE_EQ(d->mean, 2.0);
  EXPECT_NEAR(d->cv2, 0.0, 1e-12);
  EXPECT_NEAR(d->entropy, 1.0, 1e-9);  // maximal regularity
}

TEST(DispersionCatalogTest, HighVarianceOnSkewedExtension) {
  Graph g = SkewedGraph();
  stats::DispersionCatalog catalog(g);
  const QueryGraph pattern = Q(3, {{0, 1, 0}, {1, 2, 1}});
  auto d = catalog.Get(pattern, 0b01);
  ASSERT_TRUE(d.ok());
  // 4 A-tuples, one extends 4 ways, three extend 0 ways: mean 1,
  // E[X^2] = 16/4 = 4, CV^2 = 3.
  EXPECT_DOUBLE_EQ(d->mean, 1.0);
  EXPECT_NEAR(d->cv2, 3.0, 1e-9);
  EXPECT_NEAR(d->entropy, 0.0, 1e-9);  // all mass on one group
}

TEST(DispersionCatalogTest, FirstHopIsNeutral) {
  Graph g = SkewedGraph();
  stats::DispersionCatalog catalog(g);
  auto d = catalog.Get(Q(2, {{0, 1, 0}}), 0);
  ASSERT_TRUE(d.ok());
  EXPECT_DOUBLE_EQ(d->mean, 4.0);
  EXPECT_DOUBLE_EQ(d->cv2, 0.0);
}

TEST(DispersionCatalogTest, CachesByMarkedIsomorphism) {
  Graph g = RegularGraph();
  stats::DispersionCatalog catalog(g);
  ASSERT_TRUE(catalog.Get(Q(3, {{0, 1, 0}, {1, 2, 1}}), 0b01).ok());
  const size_t cached = catalog.num_cached();
  // Isomorphic relabeled pattern with the same marked intersection.
  ASSERT_TRUE(catalog.Get(Q(3, {{2, 0, 0}, {0, 1, 1}}), 0b01).ok());
  EXPECT_EQ(catalog.num_cached(), cached);
  // Same pattern, *different* intersection is a different statistic.
  ASSERT_TRUE(catalog.Get(Q(3, {{0, 1, 0}, {1, 2, 1}}), 0b10).ok());
  EXPECT_GT(catalog.num_cached(), cached);
}

TEST(DispersionCatalogTest, RejectsBadArguments) {
  Graph g = RegularGraph();
  stats::DispersionCatalog catalog(g);
  EXPECT_FALSE(catalog.Get(Q(3, {{0, 1, 0}, {1, 2, 1}}), 0b100).ok());
}

TEST(DispersionGuidedTest, ExactOnRegularGraphs) {
  // On a perfectly regular graph the uniformity assumption is exact and
  // every path agrees; the min-cv path must return the exact cardinality.
  Graph g = RegularGraph();
  stats::MarkovTable markov(g, 2);
  stats::DispersionCatalog dispersion(g);
  DispersionGuidedEstimator estimator(markov, dispersion);
  const QueryGraph q = Q(4, {{0, 1, 0}, {1, 2, 1}, {2, 3, 1}});
  auto est = estimator.Estimate(q);
  ASSERT_TRUE(est.ok());
  // A->B->B: A has 4 tuples, each B-dst has... B targets 20..28 have no
  // outgoing B, so the true count is 0 and the estimate must be small.
  EXPECT_GE(*est, 0.0);
}

TEST(DispersionGuidedTest, RunsOnWorkloadAndIsDeterministic) {
  auto g = graph::MakeDataset("epinions_like");
  ASSERT_TRUE(g.ok());
  query::WorkloadOptions options;
  options.instances_per_template = 4;
  options.seed = 55;
  auto wl = query::GenerateWorkload(
      *g, {{"cat5", query::CaterpillarShape(5, 3)}}, options);
  ASSERT_TRUE(wl.ok());

  stats::MarkovTable markov(*g, 2);
  stats::DispersionCatalog dispersion(*g);
  for (auto objective : {DispersionGuidedEstimator::Objective::kMinCv,
                         DispersionGuidedEstimator::Objective::kMinEntropy}) {
    DispersionGuidedEstimator estimator(markov, dispersion, objective);
    for (const auto& wq : *wl) {
      auto e1 = estimator.Estimate(wq.query);
      auto e2 = estimator.Estimate(wq.query);
      ASSERT_TRUE(e1.ok());
      ASSERT_TRUE(e2.ok());
      EXPECT_DOUBLE_EQ(*e1, *e2);
      EXPECT_GT(*e1, 0.0);
    }
  }
}

TEST(DispersionGuidedTest, EstimateIsSomeCegPathEstimate) {
  // The dispersion-guided estimate must equal the estimate of *some*
  // CEG_O path (it only re-picks, never re-weights).
  auto g = graph::MakeDataset("epinions_like");
  ASSERT_TRUE(g.ok());
  query::WorkloadOptions options;
  options.instances_per_template = 3;
  options.seed = 56;
  auto wl = query::GenerateWorkload(*g, {{"p3", query::PathShape(3)}},
                                    options);
  ASSERT_TRUE(wl.ok());
  stats::MarkovTable markov(*g, 2);
  stats::DispersionCatalog dispersion(*g);
  DispersionGuidedEstimator estimator(markov, dispersion);
  OptimisticEstimator any(markov, OptimisticSpec{});
  for (const auto& wq : *wl) {
    auto est = estimator.Estimate(wq.query);
    ASSERT_TRUE(est.ok());
    auto built = any.BuildCeg(wq.query);
    ASSERT_TRUE(built.ok());
    bool found = false;
    for (const auto& path : built->ceg.EnumerateSimplePaths(100000)) {
      if (std::fabs(std::exp2(path.log_weight) - *est) <
          1e-6 * std::max(1.0, *est)) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found);
  }
}

}  // namespace
}  // namespace cegraph
