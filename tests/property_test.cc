// Cross-cutting invariants checked over a grid of datasets x query shapes
// (TEST_P sweeps). These complement the per-module unit tests and the
// theory suite: every property here must hold on *any* input, so each is
// run against randomized workloads on structurally different graphs.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "estimators/max_entropy.h"
#include "estimators/optimistic.h"
#include "estimators/pessimistic.h"
#include "graph/generators.h"
#include "matching/matcher.h"
#include "query/subquery.h"
#include "query/workload.h"
#include "stats/markov_table.h"
#include "util/random.h"

namespace cegraph {
namespace {

using graph::Graph;
using query::QueryGraph;

struct PropertyCase {
  std::string name;
  graph::GeneratorConfig config;
  std::string shape;
};

QueryGraph ShapeByName(const std::string& name) {
  if (name == "path3") return query::PathShape(3);
  if (name == "path4") return query::PathShape(4);
  if (name == "star3") return query::StarShape(3);
  if (name == "cat5") return query::CaterpillarShape(5, 3);
  if (name == "tri") return query::CycleShape(3);
  if (name == "cyc4") return query::CycleShape(4);
  if (name == "diamond") return query::DiamondShape();
  return query::PathShape(2);
}

class PropertyTest : public ::testing::TestWithParam<PropertyCase> {
 protected:
  void SetUp() override {
    auto g = graph::GenerateGraph(GetParam().config);
    ASSERT_TRUE(g.ok());
    graph_ = std::make_unique<Graph>(std::move(*g));
    query::WorkloadOptions options;
    options.instances_per_template = 4;
    options.seed = 0xBEE5;
    auto wl = query::GenerateWorkload(
        *graph_, {{GetParam().shape, ShapeByName(GetParam().shape)}},
        options);
    if (wl.ok()) workload_ = std::move(*wl);
  }

  std::unique_ptr<Graph> graph_;
  std::vector<query::WorkloadQuery> workload_;
};

/// The exact count is invariant under renaming query vertices and
/// permuting query edges.
TEST_P(PropertyTest, CountInvariantUnderQueryIsomorphism) {
  matching::Matcher matcher(*graph_);
  util::Rng rng(17);
  for (const auto& wq : workload_) {
    const QueryGraph& q = wq.query;
    // Random vertex permutation + edge shuffle.
    std::vector<query::QVertex> perm(q.num_vertices());
    for (uint32_t i = 0; i < perm.size(); ++i) perm[i] = i;
    for (size_t i = perm.size(); i > 1; --i) {
      std::swap(perm[i - 1], perm[rng.Uniform(i)]);
    }
    std::vector<query::QueryEdge> edges = q.edges();
    for (auto& e : edges) {
      e.src = perm[e.src];
      e.dst = perm[e.dst];
    }
    for (size_t i = edges.size(); i > 1; --i) {
      std::swap(edges[i - 1], edges[rng.Uniform(i)]);
    }
    auto renamed = QueryGraph::Create(q.num_vertices(), std::move(edges));
    ASSERT_TRUE(renamed.ok());
    auto count = matcher.Count(*renamed);
    ASSERT_TRUE(count.ok());
    EXPECT_DOUBLE_EQ(*count, wq.true_cardinality);
  }
}

/// Hash-partitioning the data on any join attribute partitions the output:
/// the per-bucket true counts sum to the whole — the completeness property
/// the bound sketch relies on (§5.2.1).
TEST_P(PropertyTest, PartitioningPreservesTrueCounts) {
  matching::Matcher matcher(*graph_);
  for (const auto& wq : workload_) {
    const QueryGraph& q = wq.query;
    // Pick the highest-degree query vertex as the partition attribute.
    query::QVertex attr = 0;
    for (query::QVertex v = 1; v < q.num_vertices(); ++v) {
      if (q.Degree(v) > q.Degree(attr)) attr = v;
    }
    const int buckets = 3;
    double total = 0;
    for (int b = 0; b < buckets; ++b) {
      // Restrict every relation incident to `attr` to tuples whose value
      // at that position hashes to bucket b; give each query edge its own
      // label.
      std::vector<graph::Edge> edges;
      for (uint32_t ei = 0; ei < q.num_edges(); ++ei) {
        const query::QueryEdge& qe = q.edge(ei);
        for (const graph::Edge& de :
             graph_->RelationEdges(qe.label)) {
          if (qe.src == attr &&
              static_cast<int>(util::MixHash(de.src) % buckets) != b) {
            continue;
          }
          if (qe.dst == attr &&
              static_cast<int>(util::MixHash(de.dst) % buckets) != b) {
            continue;
          }
          edges.push_back({de.src, de.dst, ei});
        }
      }
      auto part = graph::Graph::Create(graph_->num_vertices(),
                                       q.num_edges(), std::move(edges));
      ASSERT_TRUE(part.ok());
      std::vector<query::QueryEdge> rewritten = q.edges();
      for (uint32_t i = 0; i < rewritten.size(); ++i) rewritten[i].label = i;
      auto rq = QueryGraph::Create(q.num_vertices(), std::move(rewritten));
      ASSERT_TRUE(rq.ok());
      matching::Matcher part_matcher(*part);
      auto count = part_matcher.Count(*rq);
      ASSERT_TRUE(count.ok());
      total += *count;
    }
    EXPECT_DOUBLE_EQ(total, wq.true_cardinality);
  }
}

/// Every estimator is deterministic and non-negative; CEG_O estimates are
/// exact whenever the whole query fits in the Markov table.
TEST_P(PropertyTest, EstimatorBasicContracts) {
  stats::MarkovTable markov(*graph_, 3);
  for (const auto& spec : AllOptimisticSpecs()) {
    OptimisticEstimator estimator(markov, spec);
    for (const auto& wq : workload_) {
      auto e1 = estimator.Estimate(wq.query);
      auto e2 = estimator.Estimate(wq.query);
      ASSERT_TRUE(e1.ok());
      ASSERT_TRUE(e2.ok());
      EXPECT_DOUBLE_EQ(*e1, *e2) << SpecName(spec);
      EXPECT_GE(*e1, 0.0);
      if (wq.query.num_edges() <= 3) {
        EXPECT_NEAR(*e1, wq.true_cardinality,
                    1e-9 * std::max(1.0, wq.true_cardinality))
            << SpecName(spec) << ": in-table queries must be exact";
      }
    }
  }
}

/// Adding 2-join statistics can only tighten MOLP, and both variants stay
/// above the truth.
TEST_P(PropertyTest, MolpMonotoneInStatistics) {
  stats::StatsCatalog catalog(*graph_);
  MolpEstimator base(catalog, false), more(catalog, true);
  for (const auto& wq : workload_) {
    auto b = base.Estimate(wq.query);
    auto m = more.Estimate(wq.query);
    ASSERT_TRUE(b.ok());
    ASSERT_TRUE(m.ok());
    EXPECT_LE(*m, *b * (1 + 1e-9));
    EXPECT_GE(*m * (1 + 1e-9), wq.true_cardinality);
    EXPECT_GE(*b * (1 + 1e-9), wq.true_cardinality);
  }
}

/// Shrinking the Markov table can only remove information: every h=3
/// in-table sub-query estimate is exact, and h=2 estimates remain
/// positive and finite (no degenerate CEGs for any workload query).
TEST_P(PropertyTest, MarkovTableSizesBothServeAllQueries) {
  stats::MarkovTable markov2(*graph_, 2);
  stats::MarkovTable markov3(*graph_, 3);
  OptimisticEstimator est2(markov2, OptimisticSpec{});
  OptimisticEstimator est3(markov3, OptimisticSpec{});
  for (const auto& wq : workload_) {
    auto e2 = est2.Estimate(wq.query);
    auto e3 = est3.Estimate(wq.query);
    ASSERT_TRUE(e2.ok());
    ASSERT_TRUE(e3.ok());
    EXPECT_GT(*e2, 0.0);
    EXPECT_GT(*e3, 0.0);
    EXPECT_TRUE(std::isfinite(*e2));
    EXPECT_TRUE(std::isfinite(*e3));
  }
}

/// The max-entropy estimator agrees exactly with the truth whenever the
/// full query is one of its constraints.
TEST_P(PropertyTest, MaxEntropyExactInsideTable) {
  stats::MarkovTable markov(*graph_, 3);
  MaxEntropyEstimator me(markov);
  for (const auto& wq : workload_) {
    if (wq.query.num_edges() > 3) continue;
    auto est = me.Estimate(wq.query);
    ASSERT_TRUE(est.ok());
    EXPECT_NEAR(*est, wq.true_cardinality,
                1e-6 * std::max(1.0, wq.true_cardinality));
  }
}

graph::GeneratorConfig Sparse(uint64_t seed) {
  return {.num_vertices = 400,
          .num_edges = 900,
          .num_labels = 5,
          .num_types = 2,
          .label_zipf_s = 1.1,
          .preferential_p = 0.5,
          .random_labels = false,
          .seed = seed};
}

graph::GeneratorConfig Dense(uint64_t seed) {
  return {.num_vertices = 80,
          .num_edges = 1200,
          .num_labels = 3,
          .num_types = 1,
          .label_zipf_s = 1.0,
          .preferential_p = 0.3,
          .random_labels = true,
          .seed = seed};
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PropertyTest,
    ::testing::Values(
        PropertyCase{"sparse_path3", Sparse(1), "path3"},
        PropertyCase{"sparse_star3", Sparse(2), "star3"},
        PropertyCase{"sparse_cat5", Sparse(3), "cat5"},
        PropertyCase{"sparse_path4", Sparse(4), "path4"},
        PropertyCase{"dense_tri", Dense(5), "tri"},
        PropertyCase{"dense_cyc4", Dense(6), "cyc4"},
        PropertyCase{"dense_diamond", Dense(7), "diamond"},
        PropertyCase{"dense_path3", Dense(8), "path3"}),
    [](const ::testing::TestParamInfo<PropertyCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace cegraph
