#include <gtest/gtest.h>

#include <bit>

#include "query/subquery.h"
#include "query/templates.h"

namespace cegraph::query {
namespace {

TEST(ConnectedSubsetsTest, PathCounts) {
  // A path with k edges has k*(k+1)/2 connected (contiguous) subsets.
  for (int k = 1; k <= 6; ++k) {
    QueryGraph q = PathShape(k);
    EXPECT_EQ(ConnectedSubsets(q).size(),
              static_cast<size_t>(k * (k + 1) / 2))
        << "k=" << k;
  }
}

TEST(ConnectedSubsetsTest, StarAllSubsetsConnected) {
  // Every non-empty subset of a star is connected: 2^k - 1.
  QueryGraph q = StarShape(4);
  EXPECT_EQ(ConnectedSubsets(q).size(), 15u);
}

TEST(ConnectedSubsetsTest, MaxEdgesLimit) {
  QueryGraph q = StarShape(5);
  auto subsets = ConnectedSubsets(q, 2);
  for (EdgeSet s : subsets) EXPECT_LE(std::popcount(s), 2);
  EXPECT_EQ(subsets.size(), 5u + 10u);  // C(5,1) + C(5,2)
}

TEST(ConnectedSubsetsTest, SortedBySize) {
  QueryGraph q = PathShape(4);
  auto subsets = ConnectedSubsets(q);
  for (size_t i = 1; i < subsets.size(); ++i) {
    EXPECT_LE(std::popcount(subsets[i - 1]), std::popcount(subsets[i]));
  }
}

TEST(ConnectedSubsetsOfSizeTest, TriangleSizeTwo) {
  QueryGraph q = CycleShape(3);
  EXPECT_EQ(ConnectedSubsetsOfSize(q, 2).size(), 3u);
  EXPECT_EQ(ConnectedSubsetsOfSize(q, 3).size(), 1u);
}

TEST(SimpleCyclesTest, TriangleHasOneCycle) {
  QueryGraph q = CycleShape(3);
  auto cycles = SimpleCycles(q);
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_EQ(cycles[0], q.AllEdges());
}

TEST(SimpleCyclesTest, PathHasNone) {
  EXPECT_TRUE(SimpleCycles(PathShape(5)).empty());
}

TEST(SimpleCyclesTest, K4CycleCount) {
  // K4 has 4 triangles and 3 four-cycles = 7 simple cycles.
  QueryGraph q = CliqueK4Shape();
  EXPECT_EQ(SimpleCycles(q).size(), 7u);
}

TEST(SimpleCyclesTest, DiamondCycles) {
  // 4-cycle + chord: two triangles + the 4-cycle = 3 simple cycles.
  QueryGraph q = DiamondShape();
  EXPECT_EQ(SimpleCycles(q).size(), 3u);
}

TEST(ChordlessTest, DiamondIsTrianglesOnly) {
  // The 4-cycle in the diamond has a chord, so the largest chordless cycle
  // is a triangle.
  EXPECT_EQ(LargestChordlessCycle(DiamondShape()), 3);
  EXPECT_FALSE(HasChordlessCycleLongerThan(DiamondShape(), 3));
}

TEST(ChordlessTest, K4IsTrianglesOnly) {
  EXPECT_EQ(LargestChordlessCycle(CliqueK4Shape()), 3);
}

TEST(ChordlessTest, PlainCyclesAreChordless) {
  EXPECT_EQ(LargestChordlessCycle(CycleShape(4)), 4);
  EXPECT_EQ(LargestChordlessCycle(CycleShape(6)), 6);
  EXPECT_TRUE(HasChordlessCycleLongerThan(CycleShape(6), 3));
}

TEST(ChordlessTest, AcyclicHasNone) {
  EXPECT_EQ(LargestChordlessCycle(PathShape(4)), 0);
  EXPECT_EQ(LargestChordlessCycle(StarShape(4)), 0);
}

TEST(ChordlessTest, SquareTwoTrianglesHasLargeCycle) {
  // The square sides 2-3 and 3-0 have no apex, so some 4-cycle formed with
  // apexes may have chords, but the bare square is chordless? Side 0-1 and
  // 1-2 have apexes; edges 0-1 and 1-2 are chords of the hexagon through
  // apexes, and the square 0-1-2-3 itself is chordless (no edge 0-2 or
  // 1-3).
  EXPECT_TRUE(HasChordlessCycleLongerThan(SquareTwoTrianglesShape(), 3));
}

TEST(ChordlessTest, BowtieTrianglesOnly) {
  EXPECT_EQ(LargestChordlessCycle(BowtieShape()), 3);
}

TEST(ChordlessTest, PetalHasLargeCycle) {
  // Two parallel 3-paths form a chordless 6-cycle.
  EXPECT_EQ(LargestChordlessCycle(PetalShape(2, 3)), 6);
}

}  // namespace
}  // namespace cegraph::query
