#include <gtest/gtest.h>

#include <cmath>

#include "estimators/bound_sketch.h"
#include "estimators/characteristic_sets.h"
#include "estimators/default_rdf3x.h"
#include "estimators/optimistic.h"
#include "estimators/oracle.h"
#include "estimators/pessimistic.h"
#include "estimators/sumrdf.h"
#include "estimators/wander_join.h"
#include "graph/datasets.h"
#include "graph/generators.h"
#include "matching/matcher.h"
#include "query/workload.h"

namespace cegraph {
namespace {

using graph::Graph;
using query::QueryGraph;

QueryGraph Q(uint32_t n, std::vector<query::QueryEdge> edges) {
  auto q = QueryGraph::Create(n, std::move(edges));
  return std::move(q).value();
}

constexpr graph::Label kA = 0, kB = 1, kC = 2, kD = 3, kE = 4;

double QError(double estimate, double truth) {
  if (estimate <= 0) return std::numeric_limits<double>::infinity();
  return std::max(truth / estimate, estimate / truth);
}

class EstimatorsTest : public ::testing::Test {
 protected:
  EstimatorsTest()
      : g_(graph::MakeRunningExampleGraph()),
        markov2_(g_, 2),
        catalog_(g_),
        matcher_(g_) {}
  Graph g_;
  stats::MarkovTable markov2_;
  stats::StatsCatalog catalog_;
  matching::Matcher matcher_;
};

TEST_F(EstimatorsTest, SpecNames) {
  EXPECT_EQ(SpecName(OptimisticSpec{}), "max-hop-max");
  OptimisticSpec s;
  s.path_length = ceg::Ceg::HopMode::kAllHops;
  s.aggregator = Aggregator::kAvgAggr;
  EXPECT_EQ(SpecName(s), "all-hops-avg");
  s.ceg_kind = OptimisticCeg::kCegOcr;
  EXPECT_EQ(SpecName(s), "all-hops-avg@ocr");
}

TEST_F(EstimatorsTest, AllNineSpecsDistinct) {
  auto specs = AllOptimisticSpecs();
  ASSERT_EQ(specs.size(), 9u);
  std::set<std::string> names;
  for (const auto& s : specs) names.insert(SpecName(s));
  EXPECT_EQ(names.size(), 9u);
}

TEST_F(EstimatorsTest, OptimisticExactWithinTable) {
  OptimisticEstimator est(markov2_, OptimisticSpec{});
  auto e = est.Estimate(Q(3, {{0, 1, kA}, {1, 2, kB}}));
  ASSERT_TRUE(e.ok());
  EXPECT_DOUBLE_EQ(*e, 4.0);
}

TEST_F(EstimatorsTest, AggregatorOrdering) {
  const QueryGraph q = Q(6, {{0, 1, kA},
                             {1, 2, kB},
                             {2, 3, kC},
                             {2, 4, kD},
                             {2, 5, kE}});
  auto value = [&](Aggregator a) {
    OptimisticSpec spec;
    spec.path_length = ceg::Ceg::HopMode::kAllHops;
    spec.aggregator = a;
    OptimisticEstimator est(markov2_, spec);
    return *est.Estimate(q);
  };
  const double vmin = value(Aggregator::kMinAggr);
  const double vavg = value(Aggregator::kAvgAggr);
  const double vmax = value(Aggregator::kMaxAggr);
  EXPECT_LE(vmin, vavg);
  EXPECT_LE(vavg, vmax);
  EXPECT_LT(vmin, vmax);
}

TEST_F(EstimatorsTest, EmptyRelationGivesZero) {
  // Label kE exists, but a query over an empty label must estimate 0.
  auto g = graph::Graph::Create(4, 2, {{0, 1, 0}});
  ASSERT_TRUE(g.ok());
  stats::MarkovTable markov(*g, 2);
  OptimisticEstimator est(markov, OptimisticSpec{});
  auto e = est.Estimate(Q(3, {{0, 1, 0}, {1, 2, 1}}));
  ASSERT_TRUE(e.ok());
  EXPECT_DOUBLE_EQ(*e, 0.0);
}

TEST_F(EstimatorsTest, MolpUpperBoundsTruth) {
  const std::vector<QueryGraph> queries = {
      Q(3, {{0, 1, kA}, {1, 2, kB}}),
      Q(4, {{0, 1, kA}, {1, 2, kB}, {2, 3, kC}}),
      Q(6, {{0, 1, kA}, {1, 2, kB}, {2, 3, kC}, {2, 4, kD}, {2, 5, kE}}),
  };
  for (bool two_joins : {false, true}) {
    MolpEstimator molp(catalog_, two_joins);
    for (const auto& q : queries) {
      auto bound = molp.Estimate(q);
      ASSERT_TRUE(bound.ok());
      auto truth = matcher_.Count(q);
      ASSERT_TRUE(truth.ok());
      EXPECT_GE(*bound * (1 + 1e-9), *truth)
          << "two_joins=" << two_joins;
    }
  }
}

TEST_F(EstimatorsTest, MolpTwoJoinStatsTighten) {
  const QueryGraph q = Q(4, {{0, 1, kA}, {1, 2, kB}, {2, 3, kC}});
  MolpEstimator base(catalog_, false), with2j(catalog_, true);
  auto b = base.Estimate(q);
  auto t = with2j.Estimate(q);
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(t.ok());
  EXPECT_LE(*t, *b * (1 + 1e-9));
}

TEST_F(EstimatorsTest, CbsUpperBoundsTruthOnAcyclic) {
  CbsEstimator cbs(catalog_);
  const QueryGraph q = Q(4, {{0, 1, kA}, {1, 2, kB}, {2, 3, kC}});
  auto bound = cbs.Estimate(q);
  ASSERT_TRUE(bound.ok());
  auto truth = matcher_.Count(q);
  EXPECT_GE(*bound * (1 + 1e-9), *truth);
}

TEST_F(EstimatorsTest, CbsTriangleCounterExample) {
  // Appendix C: identity relations R=S=T={(i,i)}. Every relation has max
  // degree 1, so the all-partial cover prices the triangle at 1, but the
  // true count is n. CBS *under*estimates; MOLP stays sound.
  const uint32_t n = 8;
  std::vector<graph::Edge> edges;
  for (uint32_t i = 0; i < n; ++i) {
    edges.push_back({i, i, 0});
    edges.push_back({i, i, 1});
    edges.push_back({i, i, 2});
  }
  auto g = graph::Graph::Create(n, 3, std::move(edges));
  ASSERT_TRUE(g.ok());
  stats::StatsCatalog catalog(*g);
  const QueryGraph tri = Q(3, {{0, 1, 0}, {1, 2, 1}, {2, 0, 2}});

  CbsEstimator cbs(catalog);
  auto cbs_bound = cbs.Estimate(tri);
  ASSERT_TRUE(cbs_bound.ok());
  EXPECT_DOUBLE_EQ(*cbs_bound, 1.0);  // unsafe: truth is n

  matching::Matcher matcher(*g);
  auto truth = matcher.Count(tri);
  ASSERT_TRUE(truth.ok());
  EXPECT_DOUBLE_EQ(*truth, static_cast<double>(n));

  MolpEstimator molp(catalog, false);
  auto molp_bound = molp.Estimate(tri);
  ASSERT_TRUE(molp_bound.ok());
  EXPECT_GE(*molp_bound * (1 + 1e-9), static_cast<double>(n));
}

TEST_F(EstimatorsTest, WanderJoinSingleEdgeExact) {
  WanderJoinOptions options;
  options.sampling_ratio = 1.0;
  WanderJoinEstimator wj(g_, options);
  auto e = wj.Estimate(Q(2, {{0, 1, kA}}));
  ASSERT_TRUE(e.ok());
  EXPECT_DOUBLE_EQ(*e, 4.0);
}

TEST_F(EstimatorsTest, WanderJoinApproximatelyUnbiased) {
  // Average over many seeds approaches the truth.
  const QueryGraph q = Q(4, {{0, 1, kA}, {1, 2, kB}, {2, 3, kC}});
  auto truth = matcher_.Count(q);
  ASSERT_TRUE(truth.ok());
  double total = 0;
  const int runs = 200;
  for (int seed = 0; seed < runs; ++seed) {
    WanderJoinOptions options;
    options.sampling_ratio = 1.0;
    options.seed = static_cast<uint64_t>(seed) + 1;
    WanderJoinEstimator wj(g_, options);
    auto e = wj.Estimate(q);
    ASSERT_TRUE(e.ok());
    total += *e;
  }
  EXPECT_NEAR(total / runs, *truth, 0.15 * *truth);
}

TEST_F(EstimatorsTest, WanderJoinZeroForImpossibleQuery) {
  // B then A never chains.
  WanderJoinOptions options;
  options.sampling_ratio = 1.0;
  WanderJoinEstimator wj(g_, options);
  auto e = wj.Estimate(Q(3, {{0, 1, kB}, {1, 2, kA}}));
  ASSERT_TRUE(e.ok());
  EXPECT_DOUBLE_EQ(*e, 0.0);
}

TEST_F(EstimatorsTest, CharacteristicSetsExactOnStars) {
  stats::CharacteristicSets cs(g_);
  CharacteristicSetsEstimator est(cs);
  // Single-edge star.
  auto e = est.Estimate(Q(2, {{0, 1, kA}}));
  ASSERT_TRUE(e.ok());
  EXPECT_DOUBLE_EQ(*e, 4.0);
}

TEST_F(EstimatorsTest, CharacteristicSetsUnderestimatesJoins) {
  stats::CharacteristicSets cs(g_);
  CharacteristicSetsEstimator est(cs);
  const QueryGraph q = Q(4, {{0, 1, kA}, {1, 2, kB}, {2, 3, kC}});
  auto e = est.Estimate(q);
  ASSERT_TRUE(e.ok());
  auto truth = matcher_.Count(q);
  EXPECT_LT(*e, *truth);  // the paper: CS underestimates virtually always
}

TEST_F(EstimatorsTest, SumRdfExactOnSingleEdge) {
  stats::SummaryGraph summary(g_, 4);
  SumRdfEstimator est(summary);
  auto e = est.Estimate(Q(2, {{0, 1, kB}}));
  ASSERT_TRUE(e.ok());
  EXPECT_DOUBLE_EQ(*e, 2.0);
}

TEST_F(EstimatorsTest, SumRdfTimesOutOnTinyBudget) {
  stats::SummaryGraph summary(g_, 8);
  SumRdfEstimator est(summary, /*step_budget=*/2);
  const QueryGraph q = Q(4, {{0, 1, kA}, {1, 2, kB}, {2, 3, kC}});
  auto e = est.Estimate(q);
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.status().code(), util::StatusCode::kResourceExhausted);
}

TEST_F(EstimatorsTest, SumRdfSingleBucketMatchesIndependence) {
  // With one bucket the summary collapses to relation sizes over |V|^2
  // pair probabilities: 2-path estimate = |A| * |B| / |V|.
  stats::SummaryGraph summary(g_, 1);
  SumRdfEstimator est(summary);
  auto e = est.Estimate(Q(3, {{0, 1, kA}, {1, 2, kB}}));
  ASSERT_TRUE(e.ok());
  EXPECT_NEAR(*e, 4.0 * 2.0 / 16.0, 1e-9);
}

TEST_F(EstimatorsTest, DefaultRdf3xReturnsAtLeastOne) {
  DefaultRdf3xEstimator est(g_);
  auto e = est.Estimate(Q(4, {{0, 1, kA}, {1, 2, kB}, {2, 3, kC}}));
  ASSERT_TRUE(e.ok());
  EXPECT_GE(*e, 1.0);
}

TEST_F(EstimatorsTest, PStarDominatesAllHeuristics) {
  const QueryGraph q = Q(6, {{0, 1, kA},
                             {1, 2, kB},
                             {2, 3, kC},
                             {2, 4, kD},
                             {2, 5, kE}});
  auto truth = matcher_.Count(q);
  ASSERT_TRUE(truth.ok());
  OptimisticEstimator any(markov2_, OptimisticSpec{});
  auto built = any.BuildCeg(q);
  ASSERT_TRUE(built.ok());
  auto pstar = PStarEstimate(built->ceg, *truth);
  ASSERT_TRUE(pstar.ok());
  for (const auto& spec : AllOptimisticSpecs()) {
    OptimisticEstimator est(markov2_, spec);
    auto e = est.Estimate(q);
    ASSERT_TRUE(e.ok());
    EXPECT_LE(QError(*pstar, *truth), QError(*e, *truth) + 1e-9)
        << SpecName(spec);
  }
}

TEST_F(EstimatorsTest, BoundSketchK1EqualsInner) {
  BoundSketchEstimator::Options options;
  options.budget_k = 1;
  BoundSketchEstimator bs(g_, BoundSketchEstimator::Inner::kMolp, options);
  MolpEstimator molp(catalog_, false);
  const QueryGraph q = Q(4, {{0, 1, kA}, {1, 2, kB}, {2, 3, kC}});
  auto a = bs.Estimate(q);
  auto b = molp.Estimate(q);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(*a, *b);
}

TEST_F(EstimatorsTest, BoundSketchMolpStaysUpperBoundAndTightens) {
  auto big = graph::MakeDataset("epinions_like");
  ASSERT_TRUE(big.ok());
  query::WorkloadOptions options;
  options.instances_per_template = 4;
  options.seed = 77;
  auto wl = query::GenerateWorkload(
      *big, {{"path3", query::PathShape(3)}}, options);
  ASSERT_TRUE(wl.ok());

  stats::StatsCatalog catalog(*big);
  MolpEstimator direct(catalog, false);
  BoundSketchEstimator::Options bs_options;
  bs_options.budget_k = 4;
  BoundSketchEstimator sketched(*big, BoundSketchEstimator::Inner::kMolp,
                                bs_options);
  for (const auto& wq : *wl) {
    auto d = direct.Estimate(wq.query);
    auto s = sketched.Estimate(wq.query);
    ASSERT_TRUE(d.ok());
    ASSERT_TRUE(s.ok());
    // Partitioned sum is guaranteed at least as tight, and still a bound.
    EXPECT_LE(*s, *d * (1 + 1e-6));
    EXPECT_GE(*s * (1 + 1e-6), wq.true_cardinality);
  }
}

TEST_F(EstimatorsTest, BoundSketchOptimisticRuns) {
  BoundSketchEstimator::Options options;
  options.budget_k = 4;
  BoundSketchEstimator bs(
      g_, BoundSketchEstimator::Inner::kOptimisticMaxHopMax, options);
  const QueryGraph q = Q(4, {{0, 1, kA}, {1, 2, kB}, {2, 3, kC}});
  auto e = bs.Estimate(q);
  ASSERT_TRUE(e.ok());
  EXPECT_GE(*e, 0.0);
  EXPECT_EQ(bs.name(), "bs4(max-hop-max)");
}

}  // namespace
}  // namespace cegraph
