// Executable versions of the paper's theoretical results (DESIGN.md §5):
// Theorem 5.1, Proposition 5.1, Appendix A, Appendix B, Appendix C and
// Corollary D.1, validated over randomized graphs and query shapes.
#include <gtest/gtest.h>

#include <cmath>

#include "ceg/ceg_d.h"
#include "ceg/ceg_m.h"
#include "estimators/pessimistic.h"
#include "graph/generators.h"
#include "matching/matcher.h"
#include "query/templates.h"
#include "query/workload.h"
#include "stats/degree_stats.h"

namespace cegraph {
namespace {

using graph::Graph;
using query::QueryGraph;

/// Random small graphs paired with small query shapes; every theory
/// property is checked across this population.
struct TheoryCase {
  uint64_t graph_seed;
  uint64_t workload_seed;
  std::string shape;
};

QueryGraph ShapeByName(const std::string& name) {
  if (name == "path2") return query::PathShape(2);
  if (name == "path3") return query::PathShape(3);
  if (name == "star3") return query::StarShape(3);
  if (name == "tri") return query::CycleShape(3);
  if (name == "cyc4") return query::CycleShape(4);
  return query::PathShape(2);
}

class TheoryTest : public ::testing::TestWithParam<TheoryCase> {
 protected:
  void SetUp() override {
    auto g = graph::GenerateGraph({.num_vertices = 40,
                                   .num_edges = 220,
                                   .num_labels = 3,
                                   .num_types = 1,
                                   .label_zipf_s = 1.0,
                                   .preferential_p = 0.4,
                                   .random_labels = true,
                                   .seed = GetParam().graph_seed});
    ASSERT_TRUE(g.ok());
    graph_ = std::make_unique<Graph>(std::move(*g));

    query::WorkloadOptions options;
    options.instances_per_template = 3;
    options.seed = GetParam().workload_seed;
    auto wl = query::GenerateWorkload(
        *graph_, {{GetParam().shape, ShapeByName(GetParam().shape)}},
        options);
    if (wl.ok()) workload_ = std::move(*wl);
  }

  std::unique_ptr<Graph> graph_;
  std::vector<query::WorkloadQuery> workload_;
};

/// Theorem 5.1: the minimum-weight (∅, A) path of CEG_M equals the MOLP
/// LP optimum — Dijkstra (combinatorial), explicit-CEG enumeration, and
/// the simplex solution all agree.
TEST_P(TheoryTest, Theorem51MolpEqualsShortestPath) {
  stats::StatsCatalog catalog(*graph_);
  for (const auto& wq : workload_) {
    auto stats = stats::DegreeStats::Build(catalog, wq.query, false);
    ASSERT_TRUE(stats.ok());

    auto dijkstra = ceg::MolpMinLogWeight(wq.query, *stats);
    ASSERT_TRUE(dijkstra.ok());

    auto lp = MolpViaLp(wq.query, *stats);
    ASSERT_TRUE(lp.ok());
    EXPECT_NEAR(*dijkstra, *lp, 1e-6) << wq.template_name;

    // Explicit CEG_M agrees too.
    auto built = ceg::BuildCegM(wq.query, *stats);
    ASSERT_TRUE(built.ok());
    auto explicit_min = built->ceg.MinLogWeightDijkstra();
    ASSERT_TRUE(explicit_min.ok());
    EXPECT_NEAR(*dijkstra, *explicit_min, 1e-9);
  }
}

/// Proposition 5.1 (strengthened per Observation 1): *every* (∅, A) path
/// of CEG_M upper-bounds the true cardinality, not just the minimum one.
TEST_P(TheoryTest, Proposition51EveryPathIsUpperBound) {
  stats::StatsCatalog catalog(*graph_);
  ceg::CegMOptions no_proj;
  no_proj.include_projection_edges = false;  // keeps enumeration finite
  for (const auto& wq : workload_) {
    auto stats = stats::DegreeStats::Build(catalog, wq.query, false);
    ASSERT_TRUE(stats.ok());
    auto built = ceg::BuildCegM(wq.query, *stats, no_proj);
    ASSERT_TRUE(built.ok());
    bool truncated = false;
    auto paths = built->ceg.EnumerateSimplePaths(20000, &truncated);
    ASSERT_FALSE(paths.empty());
    const double truth_log = std::log2(wq.true_cardinality);
    for (const auto& p : paths) {
      EXPECT_GE(p.log_weight + 1e-6, truth_log) << wq.template_name;
    }
  }
}

/// Appendix A: removing the projection edges (equivalently the projection
/// inequalities) never changes the MOLP optimum.
TEST_P(TheoryTest, AppendixAProjectionEdgesRedundant) {
  stats::StatsCatalog catalog(*graph_);
  for (const auto& wq : workload_) {
    auto stats = stats::DegreeStats::Build(catalog, wq.query, false);
    ASSERT_TRUE(stats.ok());

    ceg::CegMOptions with, without;
    without.include_projection_edges = false;
    auto ceg_with = ceg::BuildCegM(wq.query, *stats, with);
    auto ceg_without = ceg::BuildCegM(wq.query, *stats, without);
    ASSERT_TRUE(ceg_with.ok());
    ASSERT_TRUE(ceg_without.ok());
    auto min_with = ceg_with->ceg.MinLogWeightDijkstra();
    auto min_without = ceg_without->ceg.MinLogWeightDijkstra();
    ASSERT_TRUE(min_with.ok());
    ASSERT_TRUE(min_without.ok());
    EXPECT_NEAR(*min_with, *min_without, 1e-9);

    // And on the LP side.
    auto lp_with = MolpViaLp(wq.query, *stats, true);
    auto lp_without = MolpViaLp(wq.query, *stats, false);
    ASSERT_TRUE(lp_with.ok());
    ASSERT_TRUE(lp_without.ok());
    EXPECT_NEAR(*lp_with, *lp_without, 1e-6);
  }
}

/// Appendix B: on acyclic queries over binary relations, CBS == MOLP.
TEST_P(TheoryTest, AppendixBCbsEqualsMolpOnAcyclicBinary) {
  if (GetParam().shape == "tri" || GetParam().shape == "cyc4") {
    GTEST_SKIP() << "acyclic-only property";
  }
  stats::StatsCatalog catalog(*graph_);
  MolpEstimator molp(catalog, /*include_two_joins=*/false);
  CbsEstimator cbs(catalog);
  for (const auto& wq : workload_) {
    auto m = molp.Estimate(wq.query);
    auto c = cbs.Estimate(wq.query);
    ASSERT_TRUE(m.ok());
    ASSERT_TRUE(c.ok());
    EXPECT_NEAR(std::log2(*m), std::log2(*c), 1e-6) << wq.template_name;
  }
}

/// Appendix B (general direction): on *acyclic* queries every CBS
/// bounding formula corresponds to a CEG_M path, so MOLP <= CBS. (On
/// cyclic queries CBS covers can be unsafe and dip below MOLP — that is
/// Appendix C, tested separately in estimators_test.)
TEST_P(TheoryTest, MolpNeverAboveCbsOnAcyclic) {
  if (GetParam().shape == "tri" || GetParam().shape == "cyc4") {
    GTEST_SKIP() << "acyclic-only property";
  }
  stats::StatsCatalog catalog(*graph_);
  MolpEstimator molp(catalog, false);
  CbsEstimator cbs(catalog);
  for (const auto& wq : workload_) {
    auto m = molp.Estimate(wq.query);
    auto c = cbs.Estimate(wq.query);
    ASSERT_TRUE(m.ok());
    ASSERT_TRUE(c.ok());
    EXPECT_LE(std::log2(*m), std::log2(*c) + 1e-6) << wq.template_name;
  }
}

/// Corollary D.1: MOLP <= DBPLP for every cover; and Theorem D.1's path
/// property — every (∅, A) path of CEG_D lower-bounds the DBPLP optimum.
TEST_P(TheoryTest, CorollaryD1MolpTighterThanDbplp) {
  stats::StatsCatalog catalog(*graph_);
  for (const auto& wq : workload_) {
    auto stats = stats::DegreeStats::Build(catalog, wq.query, false);
    ASSERT_TRUE(stats.ok());
    auto molp = ceg::MolpMinLogWeight(wq.query, *stats);
    ASSERT_TRUE(molp.ok());

    const auto covers =
        ceg::EnumerateCovers(wq.query, *stats, /*cbs_choices_only=*/false);
    ASSERT_FALSE(covers.empty());
    int checked = 0;
    for (const auto& cover : covers) {
      if (++checked > 20) break;  // bound the LP count per query
      auto dbplp = DbplpBoundForCover(wq.query, *stats, cover);
      ASSERT_TRUE(dbplp.ok());
      EXPECT_LE(*molp, *dbplp + 1e-6) << wq.template_name;

      // Theorem D.1: every CEG_D path is <= the DBPLP optimum.
      auto ceg_d = ceg::BuildCegD(wq.query, *stats, cover);
      ASSERT_TRUE(ceg_d.ok());
      bool truncated = false;
      auto paths = ceg_d->ceg.EnumerateSimplePaths(5000, &truncated);
      for (const auto& p : paths) {
        EXPECT_LE(p.log_weight, *dbplp + 1e-6);
      }
    }
  }
}

/// MOLP is at least as tight as the AGM bound (MOLP uses strictly more
/// statistics than relation cardinalities).
TEST_P(TheoryTest, MolpNeverAboveAgm) {
  stats::StatsCatalog catalog(*graph_);
  for (const auto& wq : workload_) {
    auto stats = stats::DegreeStats::Build(catalog, wq.query, false);
    ASSERT_TRUE(stats.ok());
    auto molp = ceg::MolpMinLogWeight(wq.query, *stats);
    auto agm = AgmBound(wq.query, *stats);
    ASSERT_TRUE(molp.ok());
    ASSERT_TRUE(agm.ok());
    EXPECT_LE(*molp, *agm + 1e-6) << wq.template_name;
    // AGM itself is an upper bound on the truth.
    EXPECT_GE(*agm + 1e-6, std::log2(wq.true_cardinality));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TheoryTest,
    ::testing::Values(TheoryCase{1, 10, "path2"}, TheoryCase{2, 11, "path3"},
                      TheoryCase{3, 12, "star3"}, TheoryCase{4, 13, "tri"},
                      TheoryCase{5, 14, "cyc4"}, TheoryCase{6, 15, "path3"},
                      TheoryCase{7, 16, "star3"}, TheoryCase{8, 17, "tri"}),
    [](const ::testing::TestParamInfo<TheoryCase>& info) {
      return info.param.shape + "_g" +
             std::to_string(info.param.graph_seed);
    });

}  // namespace
}  // namespace cegraph
