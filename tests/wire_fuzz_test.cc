// Deterministic fuzz/property tests for the wire-protocol codecs:
// encode -> decode must round-trip every request/response shape (the v2
// `dataset` field and the v3 batch frames included), and random byte
// mutations of valid frames — or outright random bytes — must never crash
// the decoders (they return a clean Status instead; ASan/UBSan in CI turns
// any lurking UB into a failure). Golden-byte tests pin the v1/v2/v3
// layouts: adding the v3 batch type (and later the v4 stats extension)
// must not shift a single byte of the frames old clients and servers
// exchange. The seed is logged on every run so a failure reproduces with
// CEGRAPH_FUZZ_SEED=<seed>.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "service/request.h"
#include "service/service.h"
#include "service/wire.h"
#include "util/serde.h"

namespace cegraph::service::wire {
namespace {

uint64_t FuzzSeed() {
  if (const char* env = std::getenv("CEGRAPH_FUZZ_SEED")) {
    return std::strtoull(env, nullptr, 10);
  }
  return 20260728;
}

/// One shared generator per test, seed printed for reproduction.
class Fuzz {
 public:
  Fuzz() : seed_(FuzzSeed()), rng_(seed_) {
    std::printf("[ fuzz seed %llu — rerun with CEGRAPH_FUZZ_SEED ]\n",
                static_cast<unsigned long long>(seed_));
  }

  uint64_t U64() { return rng_(); }
  uint32_t U32() { return static_cast<uint32_t>(rng_()); }
  /// Uniform in [0, n).
  size_t Index(size_t n) { return static_cast<size_t>(rng_() % n); }
  bool Coin() { return (rng_() & 1) != 0; }
  /// A finite double that compares bit-identically after a round trip.
  double FiniteDouble() {
    return static_cast<double>(static_cast<int64_t>(rng_())) / 1024.0;
  }
  std::string Bytes(size_t max_len) {
    std::string out(Index(max_len + 1), '\0');
    for (char& c : out) c = static_cast<char>(rng_());
    return out;
  }

 private:
  uint64_t seed_;
  std::mt19937_64 rng_;
};

MessageType RandomType(Fuzz& fuzz) {
  return static_cast<MessageType>(1 + fuzz.Index(7));
}

/// A dataset name that can never collide with an extension string: the
/// wire spec reserves leading 0xFF for extensions, in both directions.
std::string RandomDataset(Fuzz& fuzz) {
  std::string dataset = fuzz.Bytes(16);
  if (!dataset.empty() && dataset[0] == '\xff') dataset[0] = 'd';
  return dataset;
}

Request RandomRequest(Fuzz& fuzz) {
  Request request;
  request.type = RandomType(fuzz);
  if (request.type == MessageType::kBatchEstimate) {
    // v3 frame: a counted line list travels instead of the text field.
    const size_t lines = fuzz.Index(5);
    for (size_t i = 0; i < lines; ++i) {
      request.lines.push_back(fuzz.Bytes(64));
    }
  } else {
    request.text = fuzz.Bytes(64);
  }
  if (fuzz.Coin()) request.dataset = RandomDataset(fuzz);
  // v5: the optional end-to-end request id.
  if (fuzz.Coin()) request.request_id = fuzz.U64();
  return request;
}

EstimateResponse RandomEstimate(Fuzz& fuzz) {
  EstimateResponse estimate;
  estimate.epoch = fuzz.U64();
  estimate.state_version = fuzz.U64();
  estimate.total_micros = fuzz.FiniteDouble();
  estimate.has_truth = fuzz.Coin();
  estimate.truth = fuzz.FiniteDouble();
  const size_t results = fuzz.Index(5);
  for (size_t i = 0; i < results; ++i) {
    EstimatorResult result;
    result.name = fuzz.Bytes(24);
    result.ok = fuzz.Coin();
    result.estimate = fuzz.FiniteDouble();
    result.error = fuzz.Bytes(24);
    result.micros = fuzz.FiniteDouble();
    result.qerror = fuzz.FiniteDouble();
    estimate.results.push_back(std::move(result));
  }
  return estimate;
}

obs::QuantileSummary RandomSummary(Fuzz& fuzz) {
  obs::QuantileSummary s;
  s.count = fuzz.U64();
  s.mean = fuzz.FiniteDouble();
  s.p50 = fuzz.FiniteDouble();
  s.p90 = fuzz.FiniteDouble();
  s.p99 = fuzz.FiniteDouble();
  s.max = fuzz.FiniteDouble();
  return s;
}

SnapshotLoadBreakdown RandomLoadBreakdown(Fuzz& fuzz) {
  SnapshotLoadBreakdown load;
  load.loaded = fuzz.Coin();
  load.mapped = fuzz.Coin();
  load.mapped_bytes = fuzz.U64();
  load.map_millis = fuzz.FiniteDouble();
  load.parse_millis = fuzz.FiniteDouble();
  load.snapshot_epoch = fuzz.U64();
  return load;
}

Response RandomResponse(Fuzz& fuzz) {
  Response response;
  response.type = RandomType(fuzz);
  if (fuzz.Coin()) {
    response.status =
        util::Status(static_cast<util::StatusCode>(1 + fuzz.Index(7)),
                     fuzz.Bytes(48));
  } else {
    switch (response.type) {
      case MessageType::kEstimate:
        response.estimate = RandomEstimate(fuzz);
        break;
      case MessageType::kApplyDeltas:
      case MessageType::kSwapSnapshot:
        response.swap.epoch = fuzz.U64();
        response.swap.version = fuzz.U64();
        response.swap.applied_ops = fuzz.U32();
        response.swap.trimmed_log_ops = fuzz.U32();
        response.swap.maintenance.inserted_edges = fuzz.U32();
        response.swap.maintenance.deleted_edges = fuzz.U32();
        response.swap.maintenance.changed_labels = fuzz.U32();
        response.swap.maintenance.ceg_evicted = fuzz.U32();
        response.swap.snapshot_stale = fuzz.Coin();
        response.swap.snapshot_replayed_deltas = fuzz.U32();
        response.swap.snapshot_load = RandomLoadBreakdown(fuzz);
        break;
      case MessageType::kStats: {
        response.stats.served = fuzz.U64();
        response.stats.rejected = fuzz.U64();
        response.stats.request_errors = fuzz.U64();
        response.stats.swaps = fuzz.U64();
        response.stats.epoch = fuzz.U64();
        response.stats.version = fuzz.U64();
        response.stats.pending_delta_ops = fuzz.U32();
        response.stats.replay_log_ops = fuzz.U32();
        response.stats.min_replayable_epoch = fuzz.U64();
        response.stats.in_flight = static_cast<int64_t>(fuzz.U32());
        response.stats.peak_in_flight = static_cast<int64_t>(fuzz.U32());
        response.stats.mean_latency_micros = fuzz.FiniteDouble();
        const size_t estimators = fuzz.Index(4);
        for (size_t i = 0; i < estimators; ++i) {
          ServiceStats::EstimatorAccounting e;
          e.name = fuzz.Bytes(24);
          e.requests = fuzz.U64();
          e.failures = fuzz.U64();
          e.mean_micros = fuzz.FiniteDouble();
          e.mean_qerror = fuzz.FiniteDouble();
          response.stats.estimators.push_back(std::move(e));
        }
        response.stats.snapshot_load = RandomLoadBreakdown(fuzz);
        if (fuzz.Coin()) {
          // v4: the observability extension rides as a trailing string.
          response.stats.v4_wire = true;
          response.stats.latency = RandomSummary(fuzz);
          response.stats.batch_lines = RandomSummary(fuzz);
          response.stats.fold_millis = RandomSummary(fuzz);
          response.stats.admitted_weight = fuzz.U64();
          response.stats.rejected_weight = fuzz.U64();
          response.stats.snapshot_loads = fuzz.U64();
          response.stats.server.present = fuzz.Coin();
          response.stats.server.connections_accepted = fuzz.U64();
          response.stats.server.connections_active = fuzz.U64();
          response.stats.server.shed_connection_cap = fuzz.U64();
          response.stats.server.shed_pipeline_cap = fuzz.U64();
          response.stats.server.shed_queue_cap = fuzz.U64();
          response.stats.server.backpressure_events = fuzz.U64();
          response.stats.server.bytes_in = fuzz.U64();
          response.stats.server.bytes_out = fuzz.U64();
          response.stats.server.frames_estimate = fuzz.U64();
          response.stats.server.frames_batch = fuzz.U64();
          response.stats.server.frames_other = fuzz.U64();
          const size_t caches = fuzz.Index(4);
          for (size_t i = 0; i < caches; ++i) {
            ServiceStats::CacheRow cache;
            cache.name = fuzz.Bytes(24);
            cache.entries = fuzz.U64();
            cache.hits = fuzz.U64();
            cache.misses = fuzz.U64();
            cache.evictions = fuzz.U64();
            response.stats.caches.push_back(std::move(cache));
          }
          for (ServiceStats::EstimatorAccounting& e :
               response.stats.estimators) {
            e.latency = RandomSummary(fuzz);
            e.qerror = RandomSummary(fuzz);
          }
          if (fuzz.Coin()) {
            // v5: the scorecard extension rides as another trailing
            // string (opting in implies the v4 extension, so it only
            // appears inside this branch).
            response.stats.scorecard_wire = true;
            response.stats.any_drift = fuzz.Coin();
            response.stats.scorecard_window_seconds =
                static_cast<int64_t>(fuzz.U32());
            response.stats.latency_1m = RandomSummary(fuzz);
            response.stats.rate_1m = fuzz.FiniteDouble();
            const size_t classes = fuzz.Index(4);
            for (size_t i = 0; i < classes; ++i) {
              obs::ScorecardClassReport row;
              row.key = fuzz.Bytes(24);
              row.display = fuzz.Bytes(24);
              row.hits = fuzz.U64();
              row.under = fuzz.U64();
              row.over = fuzz.U64();
              row.qerror = RandomSummary(fuzz);
              row.baseline_median = fuzz.FiniteDouble();
              row.drifted = fuzz.Coin();
              row.worst.qerror = fuzz.FiniteDouble();
              row.worst.line = fuzz.Bytes(48);
              row.worst.estimate = fuzz.FiniteDouble();
              row.worst.truth = fuzz.FiniteDouble();
              row.worst.estimator = fuzz.Bytes(16);
              response.stats.scorecard.push_back(std::move(row));
            }
          }
        }
        break;
      }
      case MessageType::kPing:
      case MessageType::kShutdown:
        response.text = fuzz.Bytes(48);
        break;
      case MessageType::kBatchEstimate: {
        const size_t items = fuzz.Index(5);
        for (size_t i = 0; i < items; ++i) {
          BatchEstimateItem item;
          if (fuzz.Coin()) {
            item.status = util::Status(
                static_cast<util::StatusCode>(1 + fuzz.Index(7)),
                fuzz.Bytes(48));
          } else {
            item.estimate = RandomEstimate(fuzz);
          }
          response.batch.push_back(std::move(item));
        }
        break;
      }
    }
  }
  if (fuzz.Coin()) response.dataset = RandomDataset(fuzz);
  // v5: the request-id echo travels on error responses too.
  if (fuzz.Coin()) response.request_id = fuzz.U64();
  return response;
}

void ExpectEqualSummary(const obs::QuantileSummary& a,
                        const obs::QuantileSummary& b) {
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.mean, b.mean);
  EXPECT_EQ(a.p50, b.p50);
  EXPECT_EQ(a.p90, b.p90);
  EXPECT_EQ(a.p99, b.p99);
  EXPECT_EQ(a.max, b.max);
}

void ExpectEqual(const Request& a, const Request& b) {
  EXPECT_EQ(a.type, b.type);
  EXPECT_EQ(a.text, b.text);
  EXPECT_EQ(a.dataset, b.dataset);
  EXPECT_EQ(a.request_id, b.request_id);
  ASSERT_EQ(a.lines.size(), b.lines.size());
  for (size_t i = 0; i < a.lines.size(); ++i) {
    EXPECT_EQ(a.lines[i], b.lines[i]);
  }
}

void ExpectEqualEstimate(const EstimateResponse& a,
                         const EstimateResponse& b) {
  EXPECT_EQ(a.epoch, b.epoch);
  EXPECT_EQ(a.state_version, b.state_version);
  EXPECT_EQ(a.total_micros, b.total_micros);
  EXPECT_EQ(a.has_truth, b.has_truth);
  EXPECT_EQ(a.truth, b.truth);
  ASSERT_EQ(a.results.size(), b.results.size());
  for (size_t i = 0; i < a.results.size(); ++i) {
    EXPECT_EQ(a.results[i].name, b.results[i].name);
    EXPECT_EQ(a.results[i].ok, b.results[i].ok);
    EXPECT_EQ(a.results[i].estimate, b.results[i].estimate);
    EXPECT_EQ(a.results[i].error, b.results[i].error);
    EXPECT_EQ(a.results[i].micros, b.results[i].micros);
    EXPECT_EQ(a.results[i].qerror, b.results[i].qerror);
  }
}

void ExpectEqualLoad(const SnapshotLoadBreakdown& a,
                     const SnapshotLoadBreakdown& b) {
  EXPECT_EQ(a.loaded, b.loaded);
  EXPECT_EQ(a.mapped, b.mapped);
  EXPECT_EQ(a.mapped_bytes, b.mapped_bytes);
  EXPECT_EQ(a.map_millis, b.map_millis);
  EXPECT_EQ(a.parse_millis, b.parse_millis);
  EXPECT_EQ(a.snapshot_epoch, b.snapshot_epoch);
}

void ExpectEqual(const Response& a, const Response& b) {
  EXPECT_EQ(a.status.code(), b.status.code());
  EXPECT_EQ(a.status.message(), b.status.message());
  EXPECT_EQ(a.type, b.type);
  EXPECT_EQ(a.dataset, b.dataset);
  EXPECT_EQ(a.request_id, b.request_id);
  if (!a.status.ok()) return;  // bodies travel only on OK
  switch (a.type) {
    case MessageType::kEstimate:
      ExpectEqualEstimate(a.estimate, b.estimate);
      break;
    case MessageType::kApplyDeltas:
    case MessageType::kSwapSnapshot:
      EXPECT_EQ(a.swap.epoch, b.swap.epoch);
      EXPECT_EQ(a.swap.version, b.swap.version);
      EXPECT_EQ(a.swap.applied_ops, b.swap.applied_ops);
      EXPECT_EQ(a.swap.trimmed_log_ops, b.swap.trimmed_log_ops);
      EXPECT_EQ(a.swap.maintenance.inserted_edges,
                b.swap.maintenance.inserted_edges);
      EXPECT_EQ(a.swap.maintenance.deleted_edges,
                b.swap.maintenance.deleted_edges);
      EXPECT_EQ(a.swap.maintenance.changed_labels,
                b.swap.maintenance.changed_labels);
      // Evictions travel summed into the CEG slot (see EncodeSwap).
      EXPECT_EQ(a.swap.maintenance.total_evicted(),
                b.swap.maintenance.total_evicted());
      EXPECT_EQ(a.swap.snapshot_stale, b.swap.snapshot_stale);
      EXPECT_EQ(a.swap.snapshot_replayed_deltas,
                b.swap.snapshot_replayed_deltas);
      ExpectEqualLoad(a.swap.snapshot_load, b.swap.snapshot_load);
      break;
    case MessageType::kStats: {
      EXPECT_EQ(a.stats.served, b.stats.served);
      EXPECT_EQ(a.stats.rejected, b.stats.rejected);
      EXPECT_EQ(a.stats.request_errors, b.stats.request_errors);
      EXPECT_EQ(a.stats.swaps, b.stats.swaps);
      EXPECT_EQ(a.stats.epoch, b.stats.epoch);
      EXPECT_EQ(a.stats.version, b.stats.version);
      EXPECT_EQ(a.stats.pending_delta_ops, b.stats.pending_delta_ops);
      EXPECT_EQ(a.stats.replay_log_ops, b.stats.replay_log_ops);
      EXPECT_EQ(a.stats.min_replayable_epoch,
                b.stats.min_replayable_epoch);
      EXPECT_EQ(a.stats.in_flight, b.stats.in_flight);
      EXPECT_EQ(a.stats.peak_in_flight, b.stats.peak_in_flight);
      EXPECT_EQ(a.stats.mean_latency_micros, b.stats.mean_latency_micros);
      ASSERT_EQ(a.stats.estimators.size(), b.stats.estimators.size());
      for (size_t i = 0; i < a.stats.estimators.size(); ++i) {
        EXPECT_EQ(a.stats.estimators[i].name, b.stats.estimators[i].name);
        EXPECT_EQ(a.stats.estimators[i].requests,
                  b.stats.estimators[i].requests);
        EXPECT_EQ(a.stats.estimators[i].failures,
                  b.stats.estimators[i].failures);
        EXPECT_EQ(a.stats.estimators[i].mean_micros,
                  b.stats.estimators[i].mean_micros);
        EXPECT_EQ(a.stats.estimators[i].mean_qerror,
                  b.stats.estimators[i].mean_qerror);
      }
      ExpectEqualLoad(a.stats.snapshot_load, b.stats.snapshot_load);
      EXPECT_EQ(a.stats.v4_wire, b.stats.v4_wire);
      if (a.stats.v4_wire) {
        ExpectEqualSummary(a.stats.latency, b.stats.latency);
        ExpectEqualSummary(a.stats.batch_lines, b.stats.batch_lines);
        ExpectEqualSummary(a.stats.fold_millis, b.stats.fold_millis);
        EXPECT_EQ(a.stats.admitted_weight, b.stats.admitted_weight);
        EXPECT_EQ(a.stats.rejected_weight, b.stats.rejected_weight);
        EXPECT_EQ(a.stats.snapshot_loads, b.stats.snapshot_loads);
        EXPECT_EQ(a.stats.server.present, b.stats.server.present);
        EXPECT_EQ(a.stats.server.connections_accepted,
                  b.stats.server.connections_accepted);
        EXPECT_EQ(a.stats.server.connections_active,
                  b.stats.server.connections_active);
        EXPECT_EQ(a.stats.server.shed_connection_cap,
                  b.stats.server.shed_connection_cap);
        EXPECT_EQ(a.stats.server.shed_pipeline_cap,
                  b.stats.server.shed_pipeline_cap);
        EXPECT_EQ(a.stats.server.shed_queue_cap,
                  b.stats.server.shed_queue_cap);
        EXPECT_EQ(a.stats.server.backpressure_events,
                  b.stats.server.backpressure_events);
        EXPECT_EQ(a.stats.server.bytes_in, b.stats.server.bytes_in);
        EXPECT_EQ(a.stats.server.bytes_out, b.stats.server.bytes_out);
        EXPECT_EQ(a.stats.server.frames_estimate,
                  b.stats.server.frames_estimate);
        EXPECT_EQ(a.stats.server.frames_batch,
                  b.stats.server.frames_batch);
        EXPECT_EQ(a.stats.server.frames_other,
                  b.stats.server.frames_other);
        ASSERT_EQ(a.stats.caches.size(), b.stats.caches.size());
        for (size_t i = 0; i < a.stats.caches.size(); ++i) {
          EXPECT_EQ(a.stats.caches[i].name, b.stats.caches[i].name);
          EXPECT_EQ(a.stats.caches[i].entries, b.stats.caches[i].entries);
          EXPECT_EQ(a.stats.caches[i].hits, b.stats.caches[i].hits);
          EXPECT_EQ(a.stats.caches[i].misses, b.stats.caches[i].misses);
          EXPECT_EQ(a.stats.caches[i].evictions,
                    b.stats.caches[i].evictions);
        }
        for (size_t i = 0; i < a.stats.estimators.size(); ++i) {
          ExpectEqualSummary(a.stats.estimators[i].latency,
                             b.stats.estimators[i].latency);
          ExpectEqualSummary(a.stats.estimators[i].qerror,
                             b.stats.estimators[i].qerror);
        }
      }
      EXPECT_EQ(a.stats.scorecard_wire, b.stats.scorecard_wire);
      if (a.stats.scorecard_wire) {
        EXPECT_EQ(a.stats.any_drift, b.stats.any_drift);
        EXPECT_EQ(a.stats.scorecard_window_seconds,
                  b.stats.scorecard_window_seconds);
        ExpectEqualSummary(a.stats.latency_1m, b.stats.latency_1m);
        EXPECT_EQ(a.stats.rate_1m, b.stats.rate_1m);
        ASSERT_EQ(a.stats.scorecard.size(), b.stats.scorecard.size());
        for (size_t i = 0; i < a.stats.scorecard.size(); ++i) {
          const obs::ScorecardClassReport& x = a.stats.scorecard[i];
          const obs::ScorecardClassReport& y = b.stats.scorecard[i];
          EXPECT_EQ(x.key, y.key);
          EXPECT_EQ(x.display, y.display);
          EXPECT_EQ(x.hits, y.hits);
          EXPECT_EQ(x.under, y.under);
          EXPECT_EQ(x.over, y.over);
          ExpectEqualSummary(x.qerror, y.qerror);
          EXPECT_EQ(x.baseline_median, y.baseline_median);
          EXPECT_EQ(x.drifted, y.drifted);
          EXPECT_EQ(x.worst.qerror, y.worst.qerror);
          EXPECT_EQ(x.worst.line, y.worst.line);
          EXPECT_EQ(x.worst.estimate, y.worst.estimate);
          EXPECT_EQ(x.worst.truth, y.worst.truth);
          EXPECT_EQ(x.worst.estimator, y.worst.estimator);
        }
      }
      break;
    }
    case MessageType::kPing:
    case MessageType::kShutdown:
      EXPECT_EQ(a.text, b.text);
      break;
    case MessageType::kBatchEstimate:
      ASSERT_EQ(a.batch.size(), b.batch.size());
      for (size_t i = 0; i < a.batch.size(); ++i) {
        EXPECT_EQ(a.batch[i].status.code(), b.batch[i].status.code());
        EXPECT_EQ(a.batch[i].status.message(), b.batch[i].status.message());
        if (a.batch[i].status.ok()) {
          ExpectEqualEstimate(a.batch[i].estimate, b.batch[i].estimate);
        }
      }
      break;
  }
}

TEST(WireFuzzTest, RequestRoundTripAllTypesIncludingDataset) {
  Fuzz fuzz;
  for (int i = 0; i < 2000; ++i) {
    const Request request = RandomRequest(fuzz);
    auto decoded = DecodeRequest(EncodeRequest(request));
    ASSERT_TRUE(decoded.ok()) << decoded.status() << " at iteration " << i;
    ExpectEqual(request, *decoded);
  }
}

TEST(WireFuzzTest, ResponseRoundTripAllTypesIncludingDataset) {
  Fuzz fuzz;
  for (int i = 0; i < 2000; ++i) {
    const Response response = RandomResponse(fuzz);
    auto decoded = DecodeResponse(EncodeResponse(response));
    ASSERT_TRUE(decoded.ok()) << decoded.status() << " at iteration " << i;
    ExpectEqual(response, *decoded);
  }
}

/// Applies 1..8 random single-byte flips, plus an occasional truncation
/// or extension, to a valid payload.
std::string Mutate(Fuzz& fuzz, std::string payload) {
  const size_t flips = 1 + fuzz.Index(8);
  for (size_t f = 0; f < flips && !payload.empty(); ++f) {
    payload[fuzz.Index(payload.size())] ^=
        static_cast<char>(1 + fuzz.Index(255));
  }
  if (fuzz.Coin() && !payload.empty()) {
    payload.resize(fuzz.Index(payload.size()));  // truncate
  } else if (fuzz.Coin()) {
    payload += fuzz.Bytes(16);  // trailing garbage
  }
  return payload;
}

TEST(WireFuzzTest, MutatedRequestFramesNeverCrashDecoder) {
  Fuzz fuzz;
  size_t decoded_ok = 0;
  for (int i = 0; i < 5000; ++i) {
    const std::string payload =
        Mutate(fuzz, EncodeRequest(RandomRequest(fuzz)));
    auto decoded = DecodeRequest(payload);  // must return, never crash
    decoded_ok += decoded.ok() ? 1 : 0;
  }
  // Some mutations legitimately decode (e.g. a flipped text byte); the
  // assertion is only that nothing crashed and both outcomes occur.
  EXPECT_GT(decoded_ok, 0u);
}

TEST(WireFuzzTest, MutatedResponseFramesNeverCrashDecoder) {
  Fuzz fuzz;
  size_t decoded_ok = 0;
  for (int i = 0; i < 5000; ++i) {
    const std::string payload =
        Mutate(fuzz, EncodeResponse(RandomResponse(fuzz)));
    auto decoded = DecodeResponse(payload);
    decoded_ok += decoded.ok() ? 1 : 0;
  }
  EXPECT_GT(decoded_ok, 0u);
}

TEST(WireFuzzTest, RandomGarbageNeverCrashesEitherDecoder) {
  Fuzz fuzz;
  for (int i = 0; i < 5000; ++i) {
    const std::string garbage = fuzz.Bytes(128);
    (void)DecodeRequest(garbage);
    (void)DecodeResponse(garbage);
  }
}

TEST(WireFuzzTest, V1FramesDecodeWithEmptyDataset) {
  // A v1 client's frame is exactly "type + text": the decoder must route
  // it to the default dataset (empty field), not reject it.
  Request v1;
  v1.type = MessageType::kEstimate;
  v1.text = "(a)-[3]->(b)";
  const std::string payload = EncodeRequest(v1);  // empty dataset == v1
  auto decoded = DecodeRequest(payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->dataset.empty());
}

// ---- Golden v1/v2 byte layouts ----
//
// These frames are hand-assembled with util::serde::Writer — the same
// primitive layer the codecs use, but never the codecs themselves. If the
// v3 batch work (or anything later) shifts even one byte of the v1/v2
// layouts, old clients and servers break; these tests pin both directions.

TEST(WireFuzzTest, GoldenV1RequestBytesAreStable) {
  Request request;
  request.type = MessageType::kEstimate;
  request.text = "(a)-[3]->(b)";

  util::serde::Writer w;
  w.WriteU8(1);  // kEstimate
  w.WriteString("(a)-[3]->(b)");
  const std::string golden = w.TakeBuffer();

  EXPECT_EQ(EncodeRequest(request), golden);
  auto decoded = DecodeRequest(golden);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ExpectEqual(request, *decoded);
}

TEST(WireFuzzTest, GoldenV2RequestBytesAreStable) {
  Request request;
  request.type = MessageType::kPing;
  request.text = "hello";
  request.dataset = "alpha";

  util::serde::Writer w;
  w.WriteU8(5);  // kPing
  w.WriteString("hello");
  w.WriteString("alpha");  // v2 trailing dataset
  const std::string golden = w.TakeBuffer();

  EXPECT_EQ(EncodeRequest(request), golden);
  auto decoded = DecodeRequest(golden);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ExpectEqual(request, *decoded);
}

TEST(WireFuzzTest, GoldenV1ResponseBytesAreStable) {
  Response response;
  response.type = MessageType::kPing;
  response.text = "pong";

  util::serde::Writer w;
  w.WriteU8(0);       // status code OK
  w.WriteString("");  // status message
  w.WriteU8(5);       // kPing
  w.WriteString("pong");
  const std::string golden = w.TakeBuffer();

  EXPECT_EQ(EncodeResponse(response), golden);
  auto decoded = DecodeResponse(golden);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ExpectEqual(response, *decoded);
}

TEST(WireFuzzTest, GoldenV2ErrorResponseBytesAreStable) {
  Response response;
  response.type = MessageType::kEstimate;
  response.status = util::InvalidArgumentError("bad line");
  response.dataset = "beta";

  util::serde::Writer w;
  w.WriteU8(static_cast<uint8_t>(util::StatusCode::kInvalidArgument));
  w.WriteString("bad line");
  w.WriteU8(1);           // kEstimate
  w.WriteString("beta");  // v2 trailing dataset echo (no body on error)
  const std::string golden = w.TakeBuffer();

  EXPECT_EQ(EncodeResponse(response), golden);
  auto decoded = DecodeResponse(golden);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ExpectEqual(response, *decoded);
}

TEST(WireFuzzTest, GoldenV3BatchRequestBytesAreStable) {
  Request request;
  request.type = MessageType::kBatchEstimate;
  request.lines = {"(a)-[3]->(b)", "(a)-[1]->(b)"};
  request.dataset = "alpha";

  util::serde::Writer w;
  w.WriteU8(7);   // kBatchEstimate
  w.WriteU32(2);  // line count
  w.WriteString("(a)-[3]->(b)");
  w.WriteString("(a)-[1]->(b)");
  w.WriteString("alpha");  // dataset still trails, v2-style
  const std::string golden = w.TakeBuffer();

  EXPECT_EQ(EncodeRequest(request), golden);
  auto decoded = DecodeRequest(golden);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ExpectEqual(request, *decoded);
}

// ---- v4 stats extension ----

void WriteGoldenSummary(util::serde::Writer& w, uint64_t count,
                        double mean, double p50, double p90, double p99,
                        double max) {
  w.WriteU64(count);
  w.WriteDouble(mean);
  w.WriteDouble(p50);
  w.WriteDouble(p90);
  w.WriteDouble(p99);
  w.WriteDouble(max);
}

/// The v3 stats body for a server with one estimator and fixed numbers —
/// shared by the golden v3 and golden v4 tests below.
void WriteGoldenStatsBody(util::serde::Writer& w) {
  w.WriteU64(100);  // served
  w.WriteU64(3);    // rejected
  w.WriteU64(2);    // request_errors
  w.WriteU64(1);    // swaps
  w.WriteU64(9);    // epoch
  w.WriteU64(4);    // version
  w.WriteU64(0);    // pending_delta_ops
  w.WriteU64(0);    // replay_log_ops
  w.WriteU64(9);    // min_replayable_epoch
  w.WriteU64(0);    // in_flight
  w.WriteU64(8);    // peak_in_flight
  w.WriteDouble(12.5);  // mean_latency_micros
  w.WriteU32(1);        // estimator count
  w.WriteString("molp");
  w.WriteU64(100);     // requests
  w.WriteU64(0);       // failures
  w.WriteDouble(7.0);  // mean_micros
  w.WriteDouble(1.5);  // mean_qerror
  w.WriteU8(0);        // load.loaded
  w.WriteU8(0);        // load.mapped
  w.WriteU64(0);       // load.mapped_bytes
  w.WriteDouble(0);    // load.map_millis
  w.WriteDouble(0);    // load.parse_millis
  w.WriteU64(0);       // load.snapshot_epoch
}

ServiceStats GoldenStats() {
  ServiceStats stats;
  stats.served = 100;
  stats.rejected = 3;
  stats.request_errors = 2;
  stats.swaps = 1;
  stats.epoch = 9;
  stats.version = 4;
  stats.min_replayable_epoch = 9;
  stats.peak_in_flight = 8;
  stats.mean_latency_micros = 12.5;
  ServiceStats::EstimatorAccounting e;
  e.name = "molp";
  e.requests = 100;
  e.mean_micros = 7.0;
  e.mean_qerror = 1.5;
  stats.estimators.push_back(std::move(e));
  return stats;
}

TEST(WireFuzzTest, GoldenV3StatsResponseBytesAreStable) {
  // A v3 stats reply (no extension requested) must stay byte-identical
  // to the pre-v4 layout, and decode with v4_wire unset.
  Response response;
  response.type = MessageType::kStats;
  response.stats = GoldenStats();

  util::serde::Writer w;
  w.WriteU8(0);       // status code OK
  w.WriteString("");  // status message
  w.WriteU8(4);       // kStats
  WriteGoldenStatsBody(w);
  const std::string golden = w.TakeBuffer();

  EXPECT_EQ(EncodeResponse(response), golden);
  auto decoded = DecodeResponse(golden);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_FALSE(decoded->stats.v4_wire);
  ExpectEqual(response, *decoded);
}

TEST(WireFuzzTest, GoldenV4StatsExtensionBytesAreStable) {
  Response response;
  response.type = MessageType::kStats;
  response.stats = GoldenStats();
  response.stats.v4_wire = true;
  response.stats.latency = {100, 12.5, 10.0, 20.0, 40.0, 80.0};
  response.stats.admitted_weight = 97;
  response.stats.rejected_weight = 3;
  response.stats.snapshot_loads = 1;
  response.stats.server.present = true;
  response.stats.server.connections_accepted = 5;
  response.stats.server.connections_active = 2;
  response.stats.server.bytes_in = 4096;
  response.stats.server.bytes_out = 8192;
  response.stats.server.frames_estimate = 100;
  ServiceStats::CacheRow cache;
  cache.name = "ceg";
  cache.entries = 10;
  cache.hits = 90;
  cache.misses = 10;
  response.stats.caches.push_back(std::move(cache));
  response.stats.estimators[0].latency = {100, 7.0, 6.0, 9.0, 11.0, 13.0};
  response.stats.estimators[0].qerror = {100, 1.5, 1.2, 2.0, 3.0, 4.0};

  util::serde::Writer ext;
  ext.WriteRaw(std::string_view("\xff" "CG4", 4));
  ext.WriteU8(1);  // ext version
  WriteGoldenSummary(ext, 100, 12.5, 10.0, 20.0, 40.0, 80.0);  // latency
  WriteGoldenSummary(ext, 0, 0, 0, 0, 0, 0);                   // batch_lines
  WriteGoldenSummary(ext, 0, 0, 0, 0, 0, 0);                   // fold_millis
  ext.WriteU64(97);  // admitted_weight
  ext.WriteU64(3);   // rejected_weight
  ext.WriteU64(1);   // snapshot_loads
  ext.WriteU8(1);    // server.present
  ext.WriteU64(5);   // connections_accepted
  ext.WriteU64(2);   // connections_active
  ext.WriteU64(0);   // shed_connection_cap
  ext.WriteU64(0);   // shed_pipeline_cap
  ext.WriteU64(0);   // shed_queue_cap
  ext.WriteU64(0);   // backpressure_events
  ext.WriteU64(4096);  // bytes_in
  ext.WriteU64(8192);  // bytes_out
  ext.WriteU64(100);   // frames_estimate
  ext.WriteU64(0);     // frames_batch
  ext.WriteU64(0);     // frames_other
  ext.WriteU32(1);     // cache rows
  ext.WriteString("ceg");
  ext.WriteU64(10);  // entries
  ext.WriteU64(90);  // hits
  ext.WriteU64(10);  // misses
  ext.WriteU64(0);   // evictions
  ext.WriteU32(1);   // estimator summaries, index-aligned
  WriteGoldenSummary(ext, 100, 7.0, 6.0, 9.0, 11.0, 13.0);
  WriteGoldenSummary(ext, 100, 1.5, 1.2, 2.0, 3.0, 4.0);

  util::serde::Writer w;
  w.WriteU8(0);       // status code OK
  w.WriteString("");  // status message
  w.WriteU8(4);       // kStats
  WriteGoldenStatsBody(w);
  w.WriteString(ext.TakeBuffer());  // the extension trails as a string
  const std::string golden = w.TakeBuffer();

  EXPECT_EQ(EncodeResponse(response), golden);
  auto decoded = DecodeResponse(golden);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_TRUE(decoded->stats.v4_wire);
  ExpectEqual(response, *decoded);
}

// ---- v5 request-id and scorecard extensions ----

TEST(WireFuzzTest, GoldenV5RequestIdRequestBytesAreStable) {
  Request request;
  request.type = MessageType::kEstimate;
  request.text = "(a)-[3]->(b)";
  request.dataset = "alpha";
  request.request_id = 0xDEADBEEFCAFEF00Dull;

  util::serde::Writer ext;
  ext.WriteRaw(std::string_view("\xff" "CGR", 4));
  ext.WriteU8(1);  // ext version
  ext.WriteU64(0xDEADBEEFCAFEF00Dull);

  util::serde::Writer w;
  w.WriteU8(1);  // kEstimate
  w.WriteString("(a)-[3]->(b)");
  w.WriteString("alpha");  // v2 dataset still precedes the extension
  w.WriteString(ext.TakeBuffer());
  const std::string golden = w.TakeBuffer();

  EXPECT_EQ(EncodeRequest(request), golden);
  auto decoded = DecodeRequest(golden);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ExpectEqual(request, *decoded);
}

TEST(WireFuzzTest, GoldenV5RequestIdEchoOnErrorResponseBytesAreStable) {
  // The id echo travels on error responses too — that is what makes it
  // useful for correlating a shed or failed request with the journal.
  Response response;
  response.type = MessageType::kEstimate;
  response.status = util::ResourceExhaustedError("saturated");
  response.request_id = 0x42;

  util::serde::Writer ext;
  ext.WriteRaw(std::string_view("\xff" "CGR", 4));
  ext.WriteU8(1);
  ext.WriteU64(0x42);

  util::serde::Writer w;
  w.WriteU8(static_cast<uint8_t>(util::StatusCode::kResourceExhausted));
  w.WriteString("saturated");
  w.WriteU8(1);  // kEstimate
  w.WriteString(ext.TakeBuffer());
  const std::string golden = w.TakeBuffer();

  EXPECT_EQ(EncodeResponse(response), golden);
  auto decoded = DecodeResponse(golden);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ExpectEqual(response, *decoded);
}

TEST(WireFuzzTest, GoldenV5ScorecardExtensionBytesAreStable) {
  Response response;
  response.type = MessageType::kStats;
  response.stats = GoldenStats();
  response.stats.v4_wire = true;  // the v5 opt-in implies v4
  response.stats.scorecard_wire = true;
  response.stats.any_drift = true;
  response.stats.scorecard_window_seconds = 900;
  response.stats.latency_1m = {60, 11.0, 10.0, 18.0, 30.0, 55.0};
  response.stats.rate_1m = 2.5;
  obs::ScorecardClassReport row;
  row.key = "c1|3,5";
  row.display = "fork_2";
  row.hits = 40;
  row.under = 30;
  row.over = 8;
  row.qerror = {40, 4.0, 3.0, 8.0, 16.0, 20.0};
  row.baseline_median = 1.5;
  row.drifted = true;
  row.worst.qerror = 20.0;
  row.worst.line = "(a)-[3]->(b); (a)-[5]->(c)";
  row.worst.estimate = 2000;
  row.worst.truth = 100;
  row.worst.estimator = "cs";
  response.stats.scorecard.push_back(std::move(row));

  util::serde::Writer v4ext;
  v4ext.WriteRaw(std::string_view("\xff" "CG4", 4));
  v4ext.WriteU8(1);
  WriteGoldenSummary(v4ext, 0, 0, 0, 0, 0, 0);  // latency
  WriteGoldenSummary(v4ext, 0, 0, 0, 0, 0, 0);  // batch_lines
  WriteGoldenSummary(v4ext, 0, 0, 0, 0, 0, 0);  // fold_millis
  v4ext.WriteU64(0);  // admitted_weight
  v4ext.WriteU64(0);  // rejected_weight
  v4ext.WriteU64(0);  // snapshot_loads
  v4ext.WriteU8(0);   // server.present
  for (int i = 0; i < 11; ++i) v4ext.WriteU64(0);  // server counters
  v4ext.WriteU32(0);  // cache rows
  v4ext.WriteU32(1);  // estimator summaries
  WriteGoldenSummary(v4ext, 0, 0, 0, 0, 0, 0);
  WriteGoldenSummary(v4ext, 0, 0, 0, 0, 0, 0);

  util::serde::Writer v5ext;
  v5ext.WriteRaw(std::string_view("\xff" "CG5", 4));
  v5ext.WriteU8(1);    // ext version
  v5ext.WriteU8(1);    // any_drift
  v5ext.WriteU64(900);  // scorecard_window_seconds
  WriteGoldenSummary(v5ext, 60, 11.0, 10.0, 18.0, 30.0, 55.0);
  v5ext.WriteDouble(2.5);  // rate_1m
  v5ext.WriteU32(1);       // class count
  v5ext.WriteString("c1|3,5");
  v5ext.WriteString("fork_2");
  v5ext.WriteU64(40);  // hits
  v5ext.WriteU64(30);  // under
  v5ext.WriteU64(8);   // over
  WriteGoldenSummary(v5ext, 40, 4.0, 3.0, 8.0, 16.0, 20.0);
  v5ext.WriteDouble(1.5);  // baseline_median
  v5ext.WriteU8(1);        // drifted
  v5ext.WriteDouble(20.0);  // worst.qerror
  v5ext.WriteString("(a)-[3]->(b); (a)-[5]->(c)");
  v5ext.WriteDouble(2000);  // worst.estimate
  v5ext.WriteDouble(100);   // worst.truth
  v5ext.WriteString("cs");

  util::serde::Writer w;
  w.WriteU8(0);       // status code OK
  w.WriteString("");  // status message
  w.WriteU8(4);       // kStats
  WriteGoldenStatsBody(w);
  w.WriteString(v4ext.TakeBuffer());  // v5 opt-in sends both extensions
  w.WriteString(v5ext.TakeBuffer());
  const std::string golden = w.TakeBuffer();

  EXPECT_EQ(EncodeResponse(response), golden);
  auto decoded = DecodeResponse(golden);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_TRUE(decoded->stats.v4_wire);
  EXPECT_TRUE(decoded->stats.scorecard_wire);
  ExpectEqual(response, *decoded);
}

TEST(WireFuzzTest, UnknownTrailingExtensionsAreSkipped) {
  // A newer peer's extension (any 0xFF-led magic this build does not
  // know) must be skipped, not fail the frame — in both directions.
  util::serde::Writer unknown;
  unknown.WriteRaw(std::string_view("\xff" "CGZ", 4));
  unknown.WriteU64(123456789);

  util::serde::Writer wr;
  wr.WriteU8(5);  // kPing
  wr.WriteString("hello");
  wr.WriteString("alpha");
  wr.WriteString(unknown.buffer());
  auto request = DecodeRequest(wr.TakeBuffer());
  ASSERT_TRUE(request.ok()) << request.status();
  EXPECT_EQ(request->dataset, "alpha");
  EXPECT_EQ(request->request_id, 0u);

  util::serde::Writer ws;
  ws.WriteU8(0);
  ws.WriteString("");
  ws.WriteU8(5);  // kPing
  ws.WriteString("pong");
  ws.WriteString(unknown.buffer());
  ws.WriteString("beta");  // dataset after the extension: order-free
  auto response = DecodeResponse(ws.TakeBuffer());
  ASSERT_TRUE(response.ok()) << response.status();
  EXPECT_EQ(response->text, "pong");
  EXPECT_EQ(response->dataset, "beta");
}

TEST(WireFuzzTest, RequestRejectsDuplicateDatasetFields) {
  util::serde::Writer w;
  w.WriteU8(5);  // kPing
  w.WriteString("hello");
  w.WriteString("alpha");
  w.WriteString("beta");
  auto decoded = DecodeRequest(w.TakeBuffer());
  EXPECT_FALSE(decoded.ok());
}

TEST(WireFuzzTest, StatsExtToleratesTrailingBytesInsideExtString) {
  // Bytes a future ext version appends inside the string must be ignored
  // by this decoder (forward compatibility), unlike trailing frame bytes.
  util::serde::Writer w;
  w.WriteU8(0);
  w.WriteString("");
  w.WriteU8(4);
  WriteGoldenStatsBody(w);
  util::serde::Writer ext;
  ext.WriteRaw(std::string_view("\xff" "CG4", 4));
  ext.WriteU8(2);  // a future version...
  WriteGoldenSummary(ext, 0, 0, 0, 0, 0, 0);
  WriteGoldenSummary(ext, 0, 0, 0, 0, 0, 0);
  WriteGoldenSummary(ext, 0, 0, 0, 0, 0, 0);
  for (int i = 0; i < 3; ++i) ext.WriteU64(0);
  ext.WriteU8(0);  // server absent (counters still follow, fixed layout)
  for (int i = 0; i < 11; ++i) ext.WriteU64(0);
  ext.WriteU32(0);  // caches
  ext.WriteU32(1);  // estimator summaries
  WriteGoldenSummary(ext, 0, 0, 0, 0, 0, 0);
  WriteGoldenSummary(ext, 0, 0, 0, 0, 0, 0);
  ext.WriteRaw("future-fields-go-here");  // ...with appended fields
  w.WriteString(ext.TakeBuffer());
  auto decoded = DecodeResponse(w.TakeBuffer());
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_TRUE(decoded->stats.v4_wire);
  EXPECT_EQ(decoded->stats.served, 100u);
}

TEST(WireFuzzTest, StatsExtRejectsEstimatorCountMismatch) {
  // The per-estimator summaries are index-aligned with the v3 list; an
  // ext claiming a different count is a malformed frame, not a v3 reply.
  Response response;
  response.type = MessageType::kStats;
  response.stats = GoldenStats();  // one estimator
  util::serde::Writer w;
  w.WriteU8(0);
  w.WriteString("");
  w.WriteU8(4);
  WriteGoldenStatsBody(w);
  util::serde::Writer ext;
  ext.WriteRaw(std::string_view("\xff" "CG4", 4));
  ext.WriteU8(1);
  WriteGoldenSummary(ext, 0, 0, 0, 0, 0, 0);
  WriteGoldenSummary(ext, 0, 0, 0, 0, 0, 0);
  WriteGoldenSummary(ext, 0, 0, 0, 0, 0, 0);
  for (int i = 0; i < 3; ++i) ext.WriteU64(0);
  ext.WriteU8(0);
  for (int i = 0; i < 11; ++i) ext.WriteU64(0);
  ext.WriteU32(0);  // caches
  ext.WriteU32(3);  // three summaries against one estimator
  w.WriteString(ext.TakeBuffer());
  auto decoded = DecodeResponse(w.TakeBuffer());
  EXPECT_FALSE(decoded.ok());
}

TEST(WireFuzzTest, BatchResponseRejectsImplausibleItemCount) {
  // A batch response whose item count exceeds the remaining payload is
  // corruption; the decoder must reject it before reserving memory for it.
  util::serde::Writer w;
  w.WriteU8(0);       // status code OK
  w.WriteString("");  // status message
  w.WriteU8(7);       // kBatchEstimate
  w.WriteU32(0x7fffffff);
  auto decoded = DecodeResponse(w.TakeBuffer());
  EXPECT_FALSE(decoded.ok());
}

TEST(WireFuzzTest, BatchRequestRejectsImplausibleLineCount) {
  util::serde::Writer w;
  w.WriteU8(7);  // kBatchEstimate
  w.WriteU32(0x7fffffff);
  auto decoded = DecodeRequest(w.TakeBuffer());
  EXPECT_FALSE(decoded.ok());
}

}  // namespace
}  // namespace cegraph::service::wire
