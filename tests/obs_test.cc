#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/stage_trace.h"

namespace cegraph::obs {
namespace {

// ---------------------------------------------------------------------
// Bucket geometry
// ---------------------------------------------------------------------

TEST(HistogramBucketsTest, SubUnitValuesLandInBucketZero) {
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(0.25), 0u);
  EXPECT_EQ(Histogram::BucketIndex(0.999), 0u);
  EXPECT_EQ(HistogramSnapshot::BucketUpperBound(0), 1.0);
}

TEST(HistogramBucketsTest, ExactPowersOfTwoStartTheirBucket) {
  // Bucket i >= 1 covers [2^((i-1)/4), 2^(i/4)), so 2^k is the inclusive
  // lower edge of bucket 4k + 1.
  for (int k = 0; k <= 20; ++k) {
    const double v = std::ldexp(1.0, k);
    EXPECT_EQ(Histogram::BucketIndex(v), static_cast<size_t>(4 * k + 1))
        << "value 2^" << k;
  }
}

TEST(HistogramBucketsTest, UpperBoundIsExclusive) {
  // For every interior bucket, the `le` edge itself belongs to the next
  // bucket, and a value just below it stays inside.
  for (size_t i = 0; i + 2 < kHistogramBuckets; ++i) {
    const double edge = HistogramSnapshot::BucketUpperBound(i);
    EXPECT_EQ(Histogram::BucketIndex(edge), i + 1) << "edge of bucket " << i;
    const double below = std::nextafter(edge, 0.0);
    EXPECT_EQ(Histogram::BucketIndex(below), i) << "below edge of bucket "
                                                << i;
  }
}

TEST(HistogramBucketsTest, OverflowBucketIsUnbounded) {
  EXPECT_EQ(HistogramSnapshot::BucketUpperBound(kHistogramBuckets - 1),
            std::numeric_limits<double>::infinity());
  EXPECT_EQ(Histogram::BucketIndex(1e300), kHistogramBuckets - 1);
}

TEST(HistogramBucketsTest, BoundsAreStrictlyIncreasing) {
  for (size_t i = 0; i + 1 < kHistogramBuckets; ++i) {
    EXPECT_LT(HistogramSnapshot::BucketUpperBound(i),
              HistogramSnapshot::BucketUpperBound(i + 1));
  }
}

// ---------------------------------------------------------------------
// Recording and readout
// ---------------------------------------------------------------------

TEST(HistogramTest, RecordUpdatesCountSumMax) {
  Histogram h;
  h.Record(3);
  h.Record(5);
  h.Record(1);
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_DOUBLE_EQ(snap.sum, 9.0);
  EXPECT_DOUBLE_EQ(snap.max, 5.0);
}

TEST(HistogramTest, DropsNegativeAndNonFinite) {
  Histogram h;
  h.Record(-1);
  h.Record(std::numeric_limits<double>::quiet_NaN());
  h.Record(std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.count(), 0u);
  h.Record(0);  // zero is a legitimate sample
  EXPECT_EQ(h.count(), 1u);
}

TEST(HistogramTest, QuantileOfEmptyIsZero) {
  Histogram h;
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.Quantile(0.5), 0.0);
  EXPECT_EQ(snap.Summary().count, 0u);
}

TEST(HistogramTest, QuantileOfConstantSamplesIsExact) {
  // The bucket resolves to its upper bound but is clamped to the
  // observed max, so a degenerate distribution reads back exactly.
  Histogram h;
  for (int i = 0; i < 100; ++i) h.Record(137.0);
  const QuantileSummary s = h.Snapshot().Summary();
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.p50, 137.0);
  EXPECT_DOUBLE_EQ(s.p99, 137.0);
  EXPECT_DOUBLE_EQ(s.max, 137.0);
  EXPECT_DOUBLE_EQ(s.mean, 137.0);
}

TEST(HistogramTest, QuantilesOrderedAndWithinBucketResolution) {
  Histogram h;
  for (int v = 1; v <= 1000; ++v) h.Record(v);
  const HistogramSnapshot snap = h.Snapshot();
  const double p50 = snap.Quantile(0.50);
  const double p90 = snap.Quantile(0.90);
  const double p99 = snap.Quantile(0.99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_LE(p99, snap.max);
  // Four buckets per octave gives ~19% relative resolution; the readout
  // is the containing bucket's upper edge, so it can only overshoot.
  EXPECT_GE(p50, 500.0);
  EXPECT_LE(p50, 500.0 * 1.20);
  EXPECT_GE(p99, 990.0);
  EXPECT_LE(p99, 1000.0);  // clamped to max
}

TEST(HistogramTest, MergeAccumulates) {
  Histogram a;
  Histogram b;
  for (int i = 0; i < 10; ++i) a.Record(2);
  for (int i = 0; i < 30; ++i) b.Record(64);
  HistogramSnapshot merged = a.Snapshot();
  merged.Merge(b.Snapshot());
  EXPECT_EQ(merged.count, 40u);
  EXPECT_DOUBLE_EQ(merged.sum, 10 * 2.0 + 30 * 64.0);
  EXPECT_DOUBLE_EQ(merged.max, 64.0);
  // p50 sits in the 64-heavy mass (30 of 40 samples are 64).
  EXPECT_GE(merged.Quantile(0.5), 64.0);
}

TEST(HistogramTest, ConcurrentRecordLosesNothing) {
  Histogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Record(static_cast<double>(1 + (t * kPerThread + i) % 1000));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, static_cast<uint64_t>(kThreads * kPerThread));
  uint64_t bucket_total = 0;
  for (uint64_t b : snap.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, snap.count);
  // Each thread records the same multiset 1..1000, 50 times over.
  const double expected_sum = kThreads * 50.0 * (1000.0 * 1001.0 / 2.0);
  EXPECT_DOUBLE_EQ(snap.sum, expected_sum);
  EXPECT_DOUBLE_EQ(snap.max, 1000.0);
}

// ---------------------------------------------------------------------
// Counters, gauges, the enable switch
// ---------------------------------------------------------------------

TEST(CounterGaugeTest, Basics) {
  Counter c;
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
  Gauge g;
  g.Set(7);
  g.Add(-3);
  EXPECT_EQ(g.value(), 4);
}

TEST(MetricsEnabledTest, ToggleRoundTrips) {
  const bool before = MetricsEnabled();
  SetMetricsEnabled(false);
  EXPECT_FALSE(MetricsEnabled());
  SetMetricsEnabled(true);
  EXPECT_TRUE(MetricsEnabled());
  SetMetricsEnabled(before);
}

// ---------------------------------------------------------------------
// Prometheus rendering
// ---------------------------------------------------------------------

TEST(PromWriterTest, CounterAndGaugeFormat) {
  std::string out;
  PromWriter w(&out);
  w.WriteCounter("cegraph_things_total", "kind=\"a\"", 5);
  w.WriteCounter("cegraph_things_total", "kind=\"b\"", 7);
  w.WriteGauge("cegraph_depth", "", 3);
  EXPECT_NE(out.find("# TYPE cegraph_things_total counter\n"),
            std::string::npos);
  // One TYPE header per name, even across label sets.
  EXPECT_EQ(out.find("# TYPE cegraph_things_total"),
            out.rfind("# TYPE cegraph_things_total"));
  EXPECT_NE(out.find("cegraph_things_total{kind=\"a\"} 5\n"),
            std::string::npos);
  EXPECT_NE(out.find("cegraph_things_total{kind=\"b\"} 7\n"),
            std::string::npos);
  EXPECT_NE(out.find("# TYPE cegraph_depth gauge\n"), std::string::npos);
  EXPECT_NE(out.find("cegraph_depth 3\n"), std::string::npos);
}

TEST(PromWriterTest, HistogramCumulativeBucketsSumCount) {
  Histogram h;
  h.Record(0.5);  // bucket 0, le="1"
  h.Record(3);
  h.Record(3);
  std::string out;
  PromWriter w(&out);
  w.WriteHistogram("cegraph_lat", "stage=\"parse\"", h.Snapshot());
  EXPECT_NE(out.find("# TYPE cegraph_lat histogram\n"), std::string::npos);
  // Buckets are cumulative and end with +Inf == count.
  EXPECT_NE(out.find("le=\"+Inf\"} 3\n"), std::string::npos);
  EXPECT_NE(out.find("cegraph_lat_count{stage=\"parse\"} 3\n"),
            std::string::npos);
  EXPECT_NE(out.find("cegraph_lat_sum{stage=\"parse\"} 6.5"),
            std::string::npos);
  // The sub-unit sample shows up under the first edge.
  EXPECT_NE(out.find("le=\"1\"} 1\n"), std::string::npos);
}

// ---------------------------------------------------------------------
// Registry and HTTP exporter
// ---------------------------------------------------------------------

TEST(MetricsRegistryTest, AddRenderRemove) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  const size_t before = reg.collector_count();
  const uint64_t id = reg.AddCollector([](PromWriter& w) {
    w.WriteCounter("cegraph_obs_test_total", "", 11);
  });
  EXPECT_NE(id, 0u);
  EXPECT_EQ(reg.collector_count(), before + 1);
  EXPECT_NE(reg.RenderPrometheus().find("cegraph_obs_test_total 11"),
            std::string::npos);
  reg.RemoveCollector(id);
  EXPECT_EQ(reg.collector_count(), before);
  EXPECT_EQ(reg.RenderPrometheus().find("cegraph_obs_test_total"),
            std::string::npos);
}

// Speaks just enough HTTP to act as a scraper against the exporter.
std::string HttpGet(int port, const std::string& path = "/metrics") {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(MetricsHttpServerTest, ServesRegistryPage) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  const uint64_t id = reg.AddCollector([](PromWriter& w) {
    w.WriteCounter("cegraph_obs_http_test_total", "", 23);
  });

  MetricsHttpServer server;
  ASSERT_TRUE(server.Start("127.0.0.1", 0).ok());
  ASSERT_GT(server.port(), 0);

  const std::string response = HttpGet(server.port());
  EXPECT_NE(response.find("200"), std::string::npos);
  EXPECT_NE(response.find("text/plain"), std::string::npos);
  EXPECT_NE(response.find("cegraph_obs_http_test_total 23"),
            std::string::npos);

  // A second scrape works (no one-shot state), then Stop is idempotent.
  EXPECT_NE(HttpGet(server.port()).find("cegraph_obs_http_test_total"),
            std::string::npos);
  server.Stop();
  server.Stop();
  reg.RemoveCollector(id);
}

TEST(MetricsHttpServerTest, RoutesHealthzAndUnknownPaths) {
  MetricsHttpServer server;
  ASSERT_TRUE(server.Start("127.0.0.1", 0).ok());
  ASSERT_GT(server.port(), 0);

  // /healthz answers 200 with a minimal default body...
  std::string response = HttpGet(server.port(), "/healthz");
  EXPECT_NE(response.find("200"), std::string::npos);
  EXPECT_NE(response.find("ok"), std::string::npos);

  // ...and with the wired body once the host installs one.
  server.SetHealthBody(
      [] { return std::string("ok\nepoch 7\nversion v5\n"); });
  response = HttpGet(server.port(), "/healthz");
  EXPECT_NE(response.find("200"), std::string::npos);
  EXPECT_NE(response.find("epoch 7"), std::string::npos);
  EXPECT_NE(response.find("version v5"), std::string::npos);

  // Query strings are stripped before routing.
  response = HttpGet(server.port(), "/healthz?verbose=1");
  EXPECT_NE(response.find("200"), std::string::npos);
  EXPECT_NE(response.find("epoch 7"), std::string::npos);

  // Unknown paths 404 with a hint body instead of an empty hangup.
  response = HttpGet(server.port(), "/nope");
  EXPECT_NE(response.find("404"), std::string::npos);
  EXPECT_NE(response.find("not found: '/nope'"), std::string::npos);

  // /metrics still serves the registry page alongside the new routes.
  response = HttpGet(server.port(), "/metrics");
  EXPECT_NE(response.find("200"), std::string::npos);
  EXPECT_NE(response.find("text/plain"), std::string::npos);
  server.Stop();
}

// ---------------------------------------------------------------------
// Stage traces
// ---------------------------------------------------------------------

TEST(StageTraceTest, CurrentFollowsScope) {
  EXPECT_EQ(StageTrace::Current(), nullptr);
  StageTrace trace;
  {
    StageTrace::Scope scope(&trace);
    EXPECT_EQ(StageTrace::Current(), &trace);
    {
      // A disabled install (metrics off) parks nullptr and restores.
      StageTrace::Scope inner(nullptr);
      EXPECT_EQ(StageTrace::Current(), nullptr);
    }
    EXPECT_EQ(StageTrace::Current(), &trace);
  }
  EXPECT_EQ(StageTrace::Current(), nullptr);
}

TEST(StageTraceTest, AddAccumulatesPerStage) {
  StageTrace trace;
  trace.Add(Stage::kEstimate, 10);
  trace.Add(Stage::kEstimate, 2.5);
  trace.Add(Stage::kParse, 1);
  EXPECT_DOUBLE_EQ(trace.micros(Stage::kEstimate), 12.5);
  EXPECT_DOUBLE_EQ(trace.micros(Stage::kParse), 1.0);
  EXPECT_DOUBLE_EQ(trace.micros(Stage::kWrite), 0.0);
}

TEST(StageTraceTest, FormatNamesEveryStage) {
  StageTrace trace;
  for (size_t i = 0; i < kStageCount; ++i) {
    trace.Add(static_cast<Stage>(i), static_cast<double>(i + 1));
  }
  const std::string line = trace.Format();
  for (size_t i = 0; i < kStageCount; ++i) {
    EXPECT_NE(line.find(StageName(static_cast<Stage>(i))),
              std::string::npos)
        << line;
  }
  EXPECT_NE(line.find("queue_wait=1.0us"), std::string::npos) << line;
}

TEST(StageTraceTest, ThreadLocalIsolation) {
  StageTrace outer;
  StageTrace::Scope scope(&outer);
  std::thread other([] {
    // The install above must not leak into a different thread.
    EXPECT_EQ(StageTrace::Current(), nullptr);
    StageTrace mine;
    StageTrace::Scope inner(&mine);
    EXPECT_EQ(StageTrace::Current(), &mine);
  });
  other.join();
  EXPECT_EQ(StageTrace::Current(), &outer);
}

}  // namespace
}  // namespace cegraph::obs
