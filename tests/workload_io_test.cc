#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "graph/datasets.h"
#include "query/templates.h"
#include "query/workload.h"
#include "query/workload_io.h"

namespace cegraph::query {
namespace {

std::vector<WorkloadQuery> SampleWorkload() {
  auto g = graph::MakeDataset("epinions_like");
  WorkloadOptions options;
  options.instances_per_template = 3;
  options.seed = 123;
  auto wl = GenerateWorkload(
      *g, {{"p3", PathShape(3)}, {"s3", StarShape(3)}}, options);
  return std::move(*wl);
}

TEST(WorkloadIoTest, RoundTripThroughStreams) {
  const auto workload = SampleWorkload();
  std::stringstream buffer;
  ASSERT_TRUE(WriteWorkloadText(workload, buffer).ok());
  auto loaded = ReadWorkloadText(buffer);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), workload.size());
  for (size_t i = 0; i < workload.size(); ++i) {
    EXPECT_EQ((*loaded)[i].template_name, workload[i].template_name);
    EXPECT_EQ((*loaded)[i].true_cardinality, workload[i].true_cardinality);
    // The parser renumbers variables in first-occurrence order, so the
    // round trip preserves queries up to isomorphism (which preserves
    // cardinalities and all estimates).
    EXPECT_EQ((*loaded)[i].query.CanonicalCode(),
              workload[i].query.CanonicalCode());
    EXPECT_EQ((*loaded)[i].query.num_vertices(),
              workload[i].query.num_vertices());
  }
}

TEST(WorkloadIoTest, CommentsIgnored) {
  std::stringstream in(
      "# header\n"
      "tmpl 42.5 (a)-[3]->(b)\n"
      "\n"
      "# trailing\n");
  auto loaded = ReadWorkloadText(in);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 1u);
  EXPECT_EQ((*loaded)[0].template_name, "tmpl");
  EXPECT_DOUBLE_EQ((*loaded)[0].true_cardinality, 42.5);
  EXPECT_EQ((*loaded)[0].query.num_edges(), 1u);
}

TEST(WorkloadIoTest, MalformedLinesRejected) {
  {
    std::stringstream in("tmpl\n");
    EXPECT_FALSE(ReadWorkloadText(in).ok());
  }
  {
    std::stringstream in("tmpl 1.0 (a)-[x]->(b)\n");
    EXPECT_FALSE(ReadWorkloadText(in).ok());
  }
}

TEST(WorkloadIoTest, RejectsWhitespaceTemplateNames) {
  std::vector<WorkloadQuery> wl = SampleWorkload();
  wl[0].template_name = "bad name";
  std::stringstream buffer;
  EXPECT_FALSE(WriteWorkloadText(wl, buffer).ok());
}

TEST(WorkloadIoTest, FileRoundTrip) {
  const auto workload = SampleWorkload();
  const std::string path = ::testing::TempDir() + "/cegraph_workload.txt";
  ASSERT_TRUE(SaveWorkload(workload, path).ok());
  auto loaded = LoadWorkload(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), workload.size());
  std::remove(path.c_str());
}

TEST(WorkloadIoTest, LoadMissingFileFails) {
  EXPECT_FALSE(LoadWorkload("/nonexistent/workload.txt").ok());
}

TEST(WorkloadIoTest, EmptyInputGivesEmptyWorkload) {
  std::stringstream in("# nothing\n");
  auto loaded = ReadWorkloadText(in);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->empty());
}

}  // namespace
}  // namespace cegraph::query
