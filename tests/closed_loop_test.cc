// The closed-loop accuracy gate: replaying a truth-carrying workload
// through an EstimationService with feedback on must improve the second
// pass's per-class q-error for consistently biased classes, leave gated
// and opted-out classes bit-identical to raw serving, keep `--feedback
// off` serving bit-identical to a pre-feedback build, and carry learned
// corrections through snapshot save/load and hot swaps. Also covers the
// wire-v5 corrections extension round trip.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "graph/generators.h"
#include "harness/qerror.h"
#include "query/parser.h"
#include "service/request.h"
#include "service/service.h"
#include "service/wire.h"

namespace cegraph::service {
namespace {

class TempFile {
 public:
  explicit TempFile(const std::string& stem)
      : path_((std::filesystem::temp_directory_path() /
               ("cegraph_closed_loop_test_" + stem + ".snap"))
                  .string()) {
    std::remove(path_.c_str());
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

graph::Graph SmallGraph(uint64_t seed = 7) {
  graph::GeneratorConfig config;
  config.num_vertices = 300;
  config.num_edges = 1800;
  config.num_labels = 6;
  config.seed = seed;
  auto g = graph::GenerateGraph(config);
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

/// Deterministic suite: the bit-identical assertions need estimators
/// without sampling.
ServiceOptions FeedbackOptions(FeedbackMode mode) {
  ServiceOptions options;
  options.estimators = {"max-hop-max", "all-hops-avg", "molp", "cbs"};
  options.compact_trigger_ops = 0;
  options.feedback = mode;
  options.feedback_options.min_samples = 4;
  return options;
}

/// Workload-file lines with deliberately biased truths: the truths are
/// orders of magnitude off any summary estimate on a 300-vertex graph,
/// so every estimator's class is consistently biased and the learned
/// correction must help.
const std::vector<std::string>& BiasedLines() {
  static const std::vector<std::string> lines = {
      "chain2 50000 (a)-[0]->(b); (b)-[1]->(c)",
      "fork2 120000 (a)-[2]->(b); (a)-[3]->(c)",
  };
  return lines;
}

double Median(std::vector<double> v) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

TEST(ClosedLoopTest, SecondPassImprovesBiasedClassesGatedStaysRaw) {
  auto service =
      EstimationService::Create(SmallGraph(), FeedbackOptions(FeedbackMode::kOn));
  ASSERT_TRUE(service.ok()) << service.status();

  // Pass 1: the first submission of each class serves raw (no class has
  // support yet) and seeds the learner.
  std::vector<double> pass1;  // usable q-errors, (line, estimator) order
  for (const std::string& line : BiasedLines()) {
    auto response = (*service)->EstimateLine(line);
    ASSERT_TRUE(response.ok()) << response.status();
    ASSERT_TRUE(response->has_truth);
    for (const EstimatorResult& r : response->results) {
      ASSERT_TRUE(r.ok) << r.name << ": " << r.error;
      EXPECT_FALSE(r.corrected) << r.name << " corrected before any learning";
      EXPECT_EQ(r.estimate, r.raw_estimate);
      if (harness::UsableQError(r.qerror)) pass1.push_back(r.qerror);
    }
  }
  ASSERT_FALSE(pass1.empty());

  // Three more learning submissions cross the min_samples=4 gate.
  for (int rep = 0; rep < 3; ++rep) {
    for (const std::string& line : BiasedLines()) {
      ASSERT_TRUE((*service)->EstimateLine(line).ok());
    }
  }

  // Pass 2: every estimator's class is past the gate; the raw estimates
  // are unchanged (deterministic suite, same state), so the correction —
  // the median of identical ratios — lands the estimate on the truth.
  std::vector<double> pass2;
  for (const std::string& line : BiasedLines()) {
    auto response = (*service)->EstimateLine(line);
    ASSERT_TRUE(response.ok()) << response.status();
    for (const EstimatorResult& r : response->results) {
      ASSERT_TRUE(r.ok);
      EXPECT_TRUE(r.corrected) << r.name << " not corrected past the gate";
      EXPECT_NE(r.correction, 1.0);
      EXPECT_EQ(r.estimate, r.raw_estimate * r.correction)
          << "served estimate must be exactly raw x correction";
      if (harness::UsableQError(r.qerror)) pass2.push_back(r.qerror);
    }
  }
  ASSERT_EQ(pass2.size(), pass1.size());
  for (size_t i = 0; i < pass1.size(); ++i) {
    EXPECT_LE(pass2[i], pass1[i]) << "q-error regressed at " << i;
  }
  const double median1 = Median(pass1);
  const double median2 = Median(pass2);
  std::printf("closed-loop gate: pass-1 median q-error %.4g -> pass-2 "
              "%.4g (%s)\n",
              median1, median2, median2 <= median1 ? "PASS" : "FAIL");
  EXPECT_LT(median2, median1)
      << "biased classes must strictly improve on the second pass";
  // The corrections landed the estimates essentially on the truth.
  EXPECT_LT(median2, 1.0 + 1e-6);

  // A class submitted fewer times than the gate serves raw,
  // bit-identically, on every pass.
  const std::string gated = "tri 7000 (a)-[0]->(b); (b)-[1]->(c); (c)-[2]->(a)";
  auto first = (*service)->EstimateLine(gated);
  ASSERT_TRUE(first.ok());
  auto second = (*service)->EstimateLine(gated);
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(first->results.size(), second->results.size());
  for (size_t i = 0; i < first->results.size(); ++i) {
    EXPECT_FALSE(second->results[i].corrected);
    EXPECT_EQ(second->results[i].estimate, second->results[i].raw_estimate);
    EXPECT_EQ(second->results[i].estimate, first->results[i].estimate)
        << "below the gate, serving is bit-identical to raw";
  }

  // Stats carry the corrections block.
  const ServiceStats stats = (*service)->Stats(/*with_scorecard=*/true);
  EXPECT_EQ(stats.feedback_mode, FeedbackMode::kOn);
  EXPECT_GE(stats.feedback_classes, 8u);  // 2 lines + tri, x4 estimators
  EXPECT_GE(stats.feedback_active, 8u);
  EXPECT_GT(stats.corrections_applied, 0u);
  EXPECT_TRUE(stats.corrections_wire);
  ASSERT_FALSE(stats.corrections.empty());
  EXPECT_TRUE(stats.corrections[0].active);
}

TEST(ClosedLoopTest, PerRequestOptOutServesRawButStillLearns) {
  auto service =
      EstimationService::Create(SmallGraph(), FeedbackOptions(FeedbackMode::kOn));
  ASSERT_TRUE(service.ok()) << service.status();
  const std::string line = BiasedLines()[0];
  for (int rep = 0; rep < 4; ++rep) {
    ASSERT_TRUE((*service)->EstimateLine(line).ok());
  }

  auto request = ParseRequestLine(line);
  ASSERT_TRUE(request.ok());
  request->no_correction = true;
  auto opted_out = (*service)->Estimate(*request);
  ASSERT_TRUE(opted_out.ok());
  for (const EstimatorResult& r : opted_out->results) {
    ASSERT_TRUE(r.ok);
    EXPECT_FALSE(r.corrected) << r.name;
    EXPECT_EQ(r.estimate, r.raw_estimate)
        << "opt-out must serve the raw estimate bit-identically";
  }
  const ServiceStats stats = (*service)->Stats();
  EXPECT_GT(stats.corrections_suppressed, 0u);

  // Opting out of the answer does not opt out of contributing truth: the
  // class kept accumulating samples.
  const auto report = (*service)->Stats(true).corrections;
  ASSERT_FALSE(report.empty());
  EXPECT_EQ(report[0].hits, 5u);
}

TEST(ClosedLoopTest, FeedbackOffServesBitIdenticalToDirectEngine) {
  const graph::Graph g = SmallGraph();
  auto service =
      EstimationService::Create(SmallGraph(), FeedbackOptions(FeedbackMode::kOff));
  ASSERT_TRUE(service.ok()) << service.status();
  engine::EstimationEngine direct(g);

  const std::string line = BiasedLines()[0];
  std::vector<double> first_pass;
  // Eight truth-carrying passes: with feedback off nothing may learn and
  // nothing may move — serving stays bit-identical to the direct engine.
  for (int rep = 0; rep < 8; ++rep) {
    auto response = (*service)->EstimateLine(line);
    ASSERT_TRUE(response.ok());
    for (size_t i = 0; i < response->results.size(); ++i) {
      const EstimatorResult& r = response->results[i];
      ASSERT_TRUE(r.ok);
      EXPECT_FALSE(r.corrected);
      EXPECT_DOUBLE_EQ(r.correction, 1.0);
      EXPECT_EQ(r.estimate, r.raw_estimate);
      if (rep == 0) {
        first_pass.push_back(r.estimate);
        auto estimator = direct.Estimator(r.name);
        ASSERT_TRUE(estimator.ok());
        auto q = query::ParseQuery("(a)-[0]->(b); (b)-[1]->(c)");
        ASSERT_TRUE(q.ok());
        auto expected = (*estimator)->Estimate(*q);
        ASSERT_TRUE(expected.ok());
        EXPECT_EQ(r.estimate, *expected) << r.name;
      } else {
        EXPECT_EQ(r.estimate, first_pass[i]) << "pass " << rep;
      }
    }
  }
  const ServiceStats stats = (*service)->Stats(true);
  EXPECT_EQ(stats.feedback_mode, FeedbackMode::kOff);
  EXPECT_EQ(stats.feedback_classes, 0u);
  EXPECT_EQ(stats.corrections_applied, 0u);
  EXPECT_TRUE(stats.corrections.empty());
}

TEST(ClosedLoopTest, CorrectionsSurviveSnapshotRestartAndHotSwap) {
  TempFile file("carry");
  auto on = FeedbackOptions(FeedbackMode::kOn);
  auto service = EstimationService::Create(SmallGraph(), on);
  ASSERT_TRUE(service.ok()) << service.status();

  const std::string line = BiasedLines()[0];
  for (int rep = 0; rep < 4; ++rep) {
    ASSERT_TRUE((*service)->EstimateLine(line).ok());
  }
  auto learned = (*service)->EstimateLine(line);
  ASSERT_TRUE(learned.ok());
  ASSERT_TRUE(learned->results[0].corrected);

  // Persist the serving state — corrections ride the snapshot.
  {
    const auto state = (*service)->AcquireState();
    ASSERT_TRUE(state->engine->context().SaveSnapshot(file.path()).ok());
  }

  // "Restart": a fresh service loads the snapshot with learning frozen.
  // The stored ratios reproduce the exact same corrected estimates.
  auto frozen_options = FeedbackOptions(FeedbackMode::kFrozen);
  frozen_options.initial_snapshot = file.path();
  auto restarted = EstimationService::Create(SmallGraph(), frozen_options);
  ASSERT_TRUE(restarted.ok()) << restarted.status();
  auto after = (*restarted)->EstimateLine(line);
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(after->results.size(), learned->results.size());
  for (size_t i = 0; i < after->results.size(); ++i) {
    EXPECT_TRUE(after->results[i].corrected) << i;
    EXPECT_EQ(after->results[i].estimate, learned->results[i].estimate)
        << "corrections must survive the restart bit-identically";
  }
  // Frozen: serving applied the correction but recorded nothing. The
  // snapshot carried 5 hits (4 learning passes + the corrected pass, which
  // still contributed its truth); the frozen pass must not add a 6th.
  const auto rows = (*restarted)->Stats(true).corrections;
  ASSERT_FALSE(rows.empty());
  EXPECT_EQ(rows[0].hits, 5u) << "frozen mode must not accumulate samples";

  // Hot swap on the live service: the store carries across (same base
  // graph, same stamp), so the class is still corrected after the swap.
  auto swap = (*service)->HotSwapSnapshot(file.path());
  ASSERT_TRUE(swap.ok()) << swap.status();
  auto post_swap = (*service)->EstimateLine(line);
  ASSERT_TRUE(post_swap.ok());
  for (size_t i = 0; i < post_swap->results.size(); ++i) {
    EXPECT_TRUE(post_swap->results[i].corrected) << i;
    EXPECT_EQ(post_swap->results[i].estimate, learned->results[i].estimate);
  }
}

TEST(ClosedLoopTest, CorrectionsExtensionRoundTripsOnTheWire) {
  wire::Response response;
  response.type = wire::MessageType::kStats;
  response.stats.corrections_wire = true;
  response.stats.feedback_mode = FeedbackMode::kFrozen;
  response.stats.feedback_classes = 3;
  response.stats.feedback_active = 2;
  response.stats.feedback_evictions = 1;
  response.stats.corrections_applied = 7;
  response.stats.corrections_suppressed = 2;
  learn::FeedbackClassReport row;
  row.key = "molp|P2|0,1";
  row.display = "path2";
  row.hits = 12;
  row.samples = 8;
  row.correction = 123.456;
  row.active = true;
  response.stats.corrections.push_back(row);

  auto decoded = wire::DecodeResponse(wire::EncodeResponse(response));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  const ServiceStats& s = decoded->stats;
  EXPECT_TRUE(s.corrections_wire);
  EXPECT_EQ(s.feedback_mode, FeedbackMode::kFrozen);
  EXPECT_EQ(s.feedback_classes, 3u);
  EXPECT_EQ(s.feedback_active, 2u);
  EXPECT_EQ(s.feedback_evictions, 1u);
  EXPECT_EQ(s.corrections_applied, 7u);
  EXPECT_EQ(s.corrections_suppressed, 2u);
  ASSERT_EQ(s.corrections.size(), 1u);
  EXPECT_EQ(s.corrections[0].key, row.key);
  EXPECT_EQ(s.corrections[0].display, row.display);
  EXPECT_EQ(s.corrections[0].hits, 12u);
  EXPECT_EQ(s.corrections[0].samples, 8u);
  EXPECT_EQ(s.corrections[0].correction, 123.456);
  EXPECT_TRUE(s.corrections[0].active);

  // A response that did not opt in stays free of the extension.
  wire::Response plain;
  plain.type = wire::MessageType::kStats;
  auto plain_decoded = wire::DecodeResponse(wire::EncodeResponse(plain));
  ASSERT_TRUE(plain_decoded.ok());
  EXPECT_FALSE(plain_decoded->stats.corrections_wire);
}

}  // namespace
}  // namespace cegraph::service
