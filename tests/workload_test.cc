#include <gtest/gtest.h>

#include "graph/datasets.h"
#include "matching/matcher.h"
#include "query/workload.h"

namespace cegraph::query {
namespace {

class WorkloadTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto g = graph::MakeDataset("epinions_like");
    ASSERT_TRUE(g.ok());
    graph_ = new graph::Graph(std::move(*g));
  }
  static void TearDownTestSuite() {
    delete graph_;
    graph_ = nullptr;
  }
  static graph::Graph* graph_;
};

graph::Graph* WorkloadTest::graph_ = nullptr;

TEST_F(WorkloadTest, GeneratesNonEmptyQueries) {
  WorkloadOptions options;
  options.instances_per_template = 3;
  options.seed = 21;
  auto wl = GenerateWorkload(*graph_, {{"path3", PathShape(3)}}, options);
  ASSERT_TRUE(wl.ok());
  EXPECT_GE(wl->size(), 1u);
  matching::Matcher matcher(*graph_);
  for (const auto& wq : *wl) {
    EXPECT_GT(wq.true_cardinality, 0.0);
    auto recount = matcher.Count(wq.query);
    ASSERT_TRUE(recount.ok());
    EXPECT_EQ(*recount, wq.true_cardinality);
    EXPECT_EQ(wq.template_name, "path3");
  }
}

TEST_F(WorkloadTest, Deterministic) {
  WorkloadOptions options;
  options.instances_per_template = 3;
  options.seed = 5;
  auto w1 = GenerateWorkload(*graph_, {{"star3", StarShape(3)}}, options);
  auto w2 = GenerateWorkload(*graph_, {{"star3", StarShape(3)}}, options);
  ASSERT_TRUE(w1.ok());
  ASSERT_TRUE(w2.ok());
  ASSERT_EQ(w1->size(), w2->size());
  for (size_t i = 0; i < w1->size(); ++i) {
    EXPECT_EQ((*w1)[i].query.edges(), (*w2)[i].query.edges());
    EXPECT_EQ((*w1)[i].true_cardinality, (*w2)[i].true_cardinality);
  }
}

TEST_F(WorkloadTest, InstancesAreDeduplicated) {
  WorkloadOptions options;
  options.instances_per_template = 8;
  options.seed = 9;
  auto wl = GenerateWorkload(*graph_, {{"path2", PathShape(2)}}, options);
  ASSERT_TRUE(wl.ok());
  std::set<std::string> keys;
  for (const auto& wq : *wl) {
    std::string key;
    for (const auto& e : wq.query.edges()) {
      key += std::to_string(e.src) + ">" + std::to_string(e.dst) + ":" +
             std::to_string(e.label) + ";";
    }
    EXPECT_TRUE(keys.insert(key).second);
  }
}

TEST_F(WorkloadTest, CyclicTemplatesYieldCyclicQueries) {
  WorkloadOptions options;
  options.instances_per_template = 2;
  options.seed = 31;
  auto wl = GenerateWorkload(*graph_, {{"tri", CycleShape(3)}}, options);
  if (!wl.ok()) GTEST_SKIP() << "no triangles found in dataset";
  for (const auto& wq : *wl) {
    EXPECT_FALSE(wq.query.IsAcyclic());
  }
}

TEST(WorkloadFiltersTest, PartitionByCycleStructure) {
  auto make = [](QueryGraph q) {
    return WorkloadQuery{std::move(q), "t", 1.0};
  };
  std::vector<WorkloadQuery> wl;
  wl.push_back(make(PathShape(3)));        // acyclic
  wl.push_back(make(DiamondShape()));      // triangles only
  wl.push_back(make(CycleShape(4)));       // large cycle
  wl.push_back(make(CliqueK4Shape()));     // triangles only
  wl.push_back(make(CycleShape(6)));       // large cycle

  EXPECT_EQ(FilterAcyclic(wl).size(), 1u);
  EXPECT_EQ(FilterTrianglesOnly(wl).size(), 2u);
  EXPECT_EQ(FilterLargeCycles(wl).size(), 2u);
}

TEST_F(WorkloadTest, MaxCardinalityDropsHugeQueries) {
  WorkloadOptions options;
  options.instances_per_template = 3;
  options.seed = 13;
  options.max_cardinality = 1.0;  // nearly everything is dropped
  auto wl = GenerateWorkload(*graph_, {{"path4", PathShape(4)}}, options);
  if (wl.ok()) {
    for (const auto& wq : *wl) {
      EXPECT_LE(wq.true_cardinality, 1.0);
    }
  }
}

}  // namespace
}  // namespace cegraph::query
