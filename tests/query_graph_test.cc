#include <gtest/gtest.h>

#include "query/query_graph.h"
#include "query/templates.h"

namespace cegraph::query {
namespace {

QueryGraph Triangle() {
  auto q = QueryGraph::Create(3, {{0, 1, 0}, {1, 2, 1}, {2, 0, 2}});
  return std::move(q).value();
}

TEST(QueryGraphTest, BasicAccessors) {
  QueryGraph q = Triangle();
  EXPECT_EQ(q.num_vertices(), 3u);
  EXPECT_EQ(q.num_edges(), 3u);
  EXPECT_EQ(q.edge(1).label, 1u);
  EXPECT_EQ(q.AllEdges(), 0b111u);
}

TEST(QueryGraphTest, IncidentEdges) {
  QueryGraph q = Triangle();
  EXPECT_EQ(q.IncidentEdges(0).size(), 2u);
  EXPECT_EQ(q.Degree(1), 2u);
}

TEST(QueryGraphTest, RejectsBadEndpoint) {
  auto q = QueryGraph::Create(2, {{0, 3, 0}});
  EXPECT_FALSE(q.ok());
}

TEST(QueryGraphTest, VerticesOf) {
  QueryGraph q = Triangle();
  EXPECT_EQ(q.VerticesOf(0b001), 0b011u);
  EXPECT_EQ(q.VerticesOf(0b011), 0b111u);
  EXPECT_EQ(q.VerticesOf(0), 0u);
}

TEST(QueryGraphTest, ConnectedSubsets) {
  QueryGraph q = Triangle();
  EXPECT_TRUE(q.IsConnectedSubset(0b001));
  EXPECT_TRUE(q.IsConnectedSubset(0b011));
  EXPECT_TRUE(q.IsConnectedSubset(0b111));
  EXPECT_FALSE(q.IsConnectedSubset(0));
}

TEST(QueryGraphTest, DisconnectedSubsetDetected) {
  // Path of 3 edges: subsets {e0, e2} are disconnected.
  QueryGraph q = PathShape(3);
  EXPECT_FALSE(q.IsConnectedSubset(0b101));
  EXPECT_TRUE(q.IsConnectedSubset(0b110));
}

TEST(QueryGraphTest, IsConnected) {
  EXPECT_TRUE(Triangle().IsConnected());
  auto q = QueryGraph::Create(4, {{0, 1, 0}, {2, 3, 0}});
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(q->IsConnected());
}

TEST(QueryGraphTest, CyclomaticNumber) {
  QueryGraph tri = Triangle();
  EXPECT_EQ(tri.CyclomaticNumber(tri.AllEdges()), 1);
  EXPECT_EQ(tri.CyclomaticNumber(0b011), 0);
  QueryGraph path = PathShape(4);
  EXPECT_EQ(path.CyclomaticNumber(path.AllEdges()), 0);
  QueryGraph k4 = CliqueK4Shape();
  EXPECT_EQ(k4.CyclomaticNumber(k4.AllEdges()), 3);
}

TEST(QueryGraphTest, IsAcyclic) {
  EXPECT_FALSE(Triangle().IsAcyclic());
  EXPECT_TRUE(PathShape(5).IsAcyclic());
  EXPECT_TRUE(StarShape(4).IsAcyclic());
  EXPECT_FALSE(CycleShape(6).IsAcyclic());
}

TEST(QueryGraphTest, ExtractPatternRenumbers) {
  // Path 0->1->2->3, extract edges {1,2} (vertices 1,2,3).
  QueryGraph q = PathShape(3);
  std::vector<QVertex> vmap;
  QueryGraph sub = q.ExtractPattern(0b110, &vmap);
  EXPECT_EQ(sub.num_edges(), 2u);
  EXPECT_EQ(sub.num_vertices(), 3u);
  ASSERT_EQ(vmap.size(), 3u);
  // vmap maps new ids to original ids {1,2,3} in some order.
  std::vector<QVertex> sorted = vmap;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<QVertex>{1, 2, 3}));
}

TEST(QueryGraphTest, CanonicalCodeInvariantUnderRelabeling) {
  // Same triangle with permuted vertex ids must share a canonical code.
  auto q1 = QueryGraph::Create(3, {{0, 1, 5}, {1, 2, 6}, {2, 0, 7}});
  auto q2 = QueryGraph::Create(3, {{1, 2, 5}, {2, 0, 6}, {0, 1, 7}});
  ASSERT_TRUE(q1.ok());
  ASSERT_TRUE(q2.ok());
  EXPECT_EQ(q1->CanonicalCode(), q2->CanonicalCode());
}

TEST(QueryGraphTest, CanonicalCodeSeparatesDirections) {
  auto fwd = QueryGraph::Create(3, {{0, 1, 0}, {1, 2, 1}});
  auto bwd = QueryGraph::Create(3, {{0, 1, 0}, {2, 1, 1}});
  ASSERT_TRUE(fwd.ok());
  ASSERT_TRUE(bwd.ok());
  EXPECT_NE(fwd->CanonicalCode(), bwd->CanonicalCode());
}

TEST(QueryGraphTest, CanonicalCodeSeparatesLabels) {
  auto a = QueryGraph::Create(2, {{0, 1, 0}});
  auto b = QueryGraph::Create(2, {{0, 1, 1}});
  EXPECT_NE(a->CanonicalCode(), b->CanonicalCode());
}

TEST(QueryGraphTest, CanonicalCodePathReversalIsomorphism) {
  // A->B path and its mirror written with reversed vertex numbering.
  auto p1 = QueryGraph::Create(3, {{0, 1, 3}, {1, 2, 4}});
  auto p2 = QueryGraph::Create(3, {{2, 1, 3}, {1, 0, 4}});
  EXPECT_EQ(p1->CanonicalCode(), p2->CanonicalCode());
}

TEST(QueryGraphTest, LargePatternFallsBackToIdentityCode) {
  QueryGraph big = PathShape(9);  // 10 vertices > kCanonicalVertexLimit
  EXPECT_EQ(big.CanonicalCode().substr(0, 3), "id:");
}

}  // namespace
}  // namespace cegraph::query
