#include <gtest/gtest.h>

#include "estimators/default_rdf3x.h"
#include "estimators/optimistic.h"
#include "graph/datasets.h"
#include "graph/generators.h"
#include "matching/matcher.h"
#include "planner/dp_optimizer.h"
#include "planner/executor.h"
#include "query/workload.h"
#include "stats/markov_table.h"

namespace cegraph::planner {
namespace {

using graph::Graph;
using query::QueryGraph;

QueryGraph Q(uint32_t n, std::vector<query::QueryEdge> edges) {
  auto q = QueryGraph::Create(n, std::move(edges));
  return std::move(q).value();
}

constexpr graph::Label kA = 0, kB = 1, kC = 2;

class PlannerTest : public ::testing::Test {
 protected:
  PlannerTest()
      : g_(graph::MakeRunningExampleGraph()), markov_(g_, 2) {}
  Graph g_;
  stats::MarkovTable markov_;
};

TEST_F(PlannerTest, SingleEdgePlanIsLeaf) {
  OptimisticEstimator est(markov_, OptimisticSpec{});
  DpOptimizer optimizer(est);
  auto plan = optimizer.Optimize(Q(2, {{0, 1, kA}}));
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->nodes.size(), 1u);
  EXPECT_EQ(plan->estimated_cost, 0.0);
}

TEST_F(PlannerTest, PathPlanCoversAllEdges) {
  OptimisticEstimator est(markov_, OptimisticSpec{});
  DpOptimizer optimizer(est);
  const QueryGraph q = Q(4, {{0, 1, kA}, {1, 2, kB}, {2, 3, kC}});
  auto plan = optimizer.Optimize(q);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->nodes[plan->root].subquery, q.AllEdges());
  // Internal nodes: every subquery estimated, cost > 0.
  EXPECT_GT(plan->estimated_cost, 0.0);
}

TEST_F(PlannerTest, ExecutorMatchesMatcherCount) {
  OptimisticEstimator est(markov_, OptimisticSpec{});
  DpOptimizer optimizer(est);
  Executor executor(g_);
  matching::Matcher matcher(g_);
  const std::vector<QueryGraph> queries = {
      Q(3, {{0, 1, kA}, {1, 2, kB}}),
      Q(4, {{0, 1, kA}, {1, 2, kB}, {2, 3, kC}}),
      Q(5, {{0, 1, kA}, {1, 2, kB}, {2, 3, kC}, {2, 4, 3}}),
  };
  for (const QueryGraph& q : queries) {
    auto plan = optimizer.Optimize(q);
    ASSERT_TRUE(plan.ok());
    auto result = executor.Execute(q, *plan);
    ASSERT_TRUE(result.ok());
    auto truth = matcher.Count(q);
    ASSERT_TRUE(truth.ok());
    EXPECT_DOUBLE_EQ(result->output_cardinality, *truth);
  }
}

TEST_F(PlannerTest, ExecutorResultIndependentOfEstimator) {
  // Different estimators may choose different plans; outputs must agree.
  const QueryGraph q = Q(5, {{0, 1, kA}, {1, 2, kB}, {2, 3, kC}, {2, 4, 4}});
  Executor executor(g_);

  OptimisticEstimator opt(markov_, OptimisticSpec{});
  DefaultRdf3xEstimator magic(g_);
  double out1 = -1, out2 = -1;
  {
    DpOptimizer optimizer(opt);
    auto plan = optimizer.Optimize(q);
    ASSERT_TRUE(plan.ok());
    auto result = executor.Execute(q, *plan);
    ASSERT_TRUE(result.ok());
    out1 = result->output_cardinality;
  }
  {
    DpOptimizer optimizer(magic);
    auto plan = optimizer.Optimize(q);
    ASSERT_TRUE(plan.ok());
    auto result = executor.Execute(q, *plan);
    ASSERT_TRUE(result.ok());
    out2 = result->output_cardinality;
  }
  EXPECT_DOUBLE_EQ(out1, out2);
}

TEST_F(PlannerTest, CyclicQueryExecution) {
  // Build a graph with triangles.
  auto g = graph::GenerateGraph({.num_vertices = 40,
                                 .num_edges = 300,
                                 .num_labels = 2,
                                 .num_types = 1,
                                 .label_zipf_s = 1.0,
                                 .preferential_p = 0.4,
                                 .random_labels = true,
                                 .seed = 21});
  ASSERT_TRUE(g.ok());
  stats::MarkovTable markov(*g, 2);
  OptimisticEstimator est(markov, OptimisticSpec{});
  DpOptimizer optimizer(est);
  Executor executor(*g);
  matching::Matcher matcher(*g);
  const QueryGraph tri = Q(3, {{0, 1, 0}, {1, 2, 1}, {2, 0, 0}});
  auto plan = optimizer.Optimize(tri);
  ASSERT_TRUE(plan.ok());
  auto result = executor.Execute(tri, *plan);
  ASSERT_TRUE(result.ok());
  auto truth = matcher.Count(tri);
  EXPECT_DOUBLE_EQ(result->output_cardinality, *truth);
}

TEST_F(PlannerTest, TupleBudgetAborts) {
  auto g = graph::MakeDataset("epinions_like");
  ASSERT_TRUE(g.ok());
  stats::MarkovTable markov(*g, 2);
  OptimisticEstimator est(markov, OptimisticSpec{});
  DpOptimizer optimizer(est);
  Executor executor(*g);
  query::WorkloadOptions options;
  options.instances_per_template = 1;
  options.seed = 3;
  auto wl = query::GenerateWorkload(*g, {{"p4", query::PathShape(4)}},
                                    options);
  ASSERT_TRUE(wl.ok());
  auto plan = optimizer.Optimize((*wl)[0].query);
  ASSERT_TRUE(plan.ok());
  auto result = executor.Execute((*wl)[0].query, *plan, /*tuple_budget=*/1);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kResourceExhausted);
}

TEST_F(PlannerTest, BetterEstimatesGiveNoWorseCost) {
  // The plan chosen under the exact estimator must have true intermediate
  // cost no larger than under a deliberately awful estimator, on average.
  // We check a weaker per-query property: executing the plan chosen by the
  // accurate estimator never materializes more intermediate tuples than
  // 10x the awful plan (sanity guard against pathological regressions).
  auto g = graph::MakeDataset("epinions_like");
  ASSERT_TRUE(g.ok());
  stats::MarkovTable markov(*g, 2);
  OptimisticEstimator good(markov, OptimisticSpec{});
  DefaultRdf3xEstimator bad(*g, /*magic_selectivity=*/1e-7);
  Executor executor(*g);
  query::WorkloadOptions options;
  options.instances_per_template = 5;
  options.seed = 29;
  auto wl = query::GenerateWorkload(
      *g, {{"cat5", query::CaterpillarShape(5, 3)}}, options);
  ASSERT_TRUE(wl.ok());
  uint64_t good_total = 0, bad_total = 0;
  for (const auto& wq : *wl) {
    DpOptimizer opt_good(good), opt_bad(bad);
    auto plan_good = opt_good.Optimize(wq.query);
    auto plan_bad = opt_bad.Optimize(wq.query);
    ASSERT_TRUE(plan_good.ok());
    ASSERT_TRUE(plan_bad.ok());
    auto run_good = executor.Execute(wq.query, *plan_good);
    auto run_bad = executor.Execute(wq.query, *plan_bad);
    if (!run_good.ok() || !run_bad.ok()) continue;
    good_total += run_good->total_intermediate_tuples;
    bad_total += run_bad->total_intermediate_tuples;
  }
  EXPECT_LE(good_total, 10 * std::max<uint64_t>(bad_total, 1));
}

}  // namespace
}  // namespace cegraph::planner
