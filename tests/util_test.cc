#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <sstream>
#include <string>

#include "util/box_stats.h"
#include "util/keyed_cache.h"
#include "util/random.h"
#include "util/serde.h"
#include "util/status.h"
#include "util/table_printer.h"

namespace cegraph::util {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgumentError("bad thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad thing");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad thing");
}

TEST(StatusTest, AllErrorFactories) {
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(FailedPreconditionError("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(OutOfRangeError("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
  EXPECT_EQ(UnimplementedError("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(ResourceExhaustedError("x").code(),
            StatusCode::kResourceExhausted);
}

TEST(StatusTest, StreamOperator) {
  std::ostringstream os;
  os << NotFoundError("missing");
  EXPECT_EQ(os.str(), "NOT_FOUND: missing");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(7);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 7);
  EXPECT_TRUE(v.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(NotFoundError("nope"));
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v(std::string("hello"));
  std::string s = std::move(v).value();
  EXPECT_EQ(s, "hello");
}

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 4);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(13), 13u);
    const int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    const double d = rng.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, UniformCoversDomain) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) ++counts[rng.Uniform(10)];
  for (int c : counts) {
    EXPECT_GT(c, 700);
    EXPECT_LT(c, 1300);
  }
}

TEST(RngTest, BernoulliMean) {
  Rng rng(5);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(RngTest, WeightedIndexRespectsWeights) {
  Rng rng(9);
  std::vector<double> weights = {1, 0, 3};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 8000; ++i) ++counts[rng.WeightedIndex(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[2] / static_cast<double>(counts[0]), 3.0, 0.5);
}

TEST(ZipfTest, RankZeroMostFrequent) {
  ZipfDistribution dist(20, 1.2);
  Rng rng(3);
  std::vector<int> counts(20, 0);
  for (int i = 0; i < 20000; ++i) ++counts[dist.Sample(rng)];
  EXPECT_GT(counts[0], counts[5]);
  EXPECT_GT(counts[0], counts[19]);
}

TEST(ZipfTest, PmfSumsToOne) {
  ZipfDistribution dist(50, 0.8);
  double total = 0;
  for (uint64_t k = 0; k < 50; ++k) total += dist.Pmf(k);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(MixHashTest, DistinctOnSmallInputs) {
  EXPECT_NE(MixHash(0), MixHash(1));
  EXPECT_NE(MixHash(1), MixHash(2));
}

TEST(BoxStatsTest, EmptyInput) {
  BoxStats s = ComputeBoxStats({});
  EXPECT_EQ(s.count, 0u);
}

TEST(BoxStatsTest, SingleValue) {
  BoxStats s = ComputeBoxStats({4.0});
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.median, 4.0);
  EXPECT_EQ(s.mean, 4.0);
  EXPECT_EQ(s.trimmed_mean, 4.0);
}

TEST(BoxStatsTest, PercentilesOfArithmeticSequence) {
  std::vector<double> v;
  for (int i = 1; i <= 101; ++i) v.push_back(i);
  BoxStats s = ComputeBoxStats(v);
  EXPECT_DOUBLE_EQ(s.median, 51.0);
  EXPECT_DOUBLE_EQ(s.p25, 26.0);
  EXPECT_DOUBLE_EQ(s.p75, 76.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 101.0);
}

TEST(BoxStatsTest, TrimmedMeanDropsOutliers) {
  // 90 ones and 10 huge values: trimmed mean should ignore the huge ones.
  std::vector<double> v(90, 1.0);
  for (int i = 0; i < 10; ++i) v.push_back(1e9);
  BoxStats s = ComputeBoxStats(v);
  EXPECT_NEAR(s.trimmed_mean, 1.0, 1e-9);
  EXPECT_GT(s.mean, 1e7);
}

TEST(PercentileTest, Interpolates) {
  std::vector<double> v = {0, 10};
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 5.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 0.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 10.0);
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.AddRow({"a", "1"});
  t.AddRow({"long-name", "2"});
  std::ostringstream os;
  t.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("long-name"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TablePrinterTest, CsvOutput) {
  TablePrinter t({"a", "b"});
  t.AddRow({"1", "2"});
  std::ostringstream os;
  t.PrintCsv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TablePrinterTest, NumFormatting) {
  EXPECT_EQ(TablePrinter::Num(1.5), "1.5");
  EXPECT_EQ(TablePrinter::Num(12345678), "1.235e+07");
}

TEST(SerdeTest, RoundTripsEveryType) {
  serde::Writer writer;
  writer.WriteU8(0xAB);
  writer.WriteU32(0xDEADBEEF);
  writer.WriteU64(0x0123456789ABCDEFull);
  writer.WriteDouble(-1234.5678);
  writer.WriteString("hello snapshot");
  writer.WriteRaw("rawr");

  serde::Reader reader(writer.buffer());
  EXPECT_EQ(*reader.ReadU8(), 0xAB);
  EXPECT_EQ(*reader.ReadU32(), 0xDEADBEEFu);
  EXPECT_EQ(*reader.ReadU64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(*reader.ReadDouble(), -1234.5678);  // bit-identical
  EXPECT_EQ(*reader.ReadString(), "hello snapshot");
  EXPECT_EQ(*reader.ReadRaw(4), "rawr");
  EXPECT_TRUE(reader.AtEnd());
}

TEST(SerdeTest, DoubleBitPatternsSurviveExactly) {
  for (double v : {0.0, -0.0, 1e-300, 1e300, 0.1, 3.0 / 7.0}) {
    serde::Writer writer;
    writer.WriteDouble(v);
    serde::Reader reader(writer.buffer());
    auto out = reader.ReadDouble();
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(std::signbit(*out), std::signbit(v));
    EXPECT_EQ(*out, v);
  }
}

TEST(SerdeTest, LittleEndianLayoutIsFixed) {
  serde::Writer writer;
  writer.WriteU32(0x01020304);
  const std::string& bytes = writer.buffer();
  ASSERT_EQ(bytes.size(), 4u);
  EXPECT_EQ(static_cast<uint8_t>(bytes[0]), 0x04);
  EXPECT_EQ(static_cast<uint8_t>(bytes[3]), 0x01);
}

TEST(SerdeTest, TruncatedReadsFailCleanly) {
  serde::Writer writer;
  writer.WriteU32(7);
  serde::Reader reader(writer.buffer());
  EXPECT_FALSE(reader.ReadU64().ok());  // only 4 bytes available
  EXPECT_EQ(reader.ReadU64().status().code(), StatusCode::kOutOfRange);
}

TEST(SerdeTest, OversizedStringPrefixRejected) {
  serde::Writer writer;
  writer.WriteU64(1'000'000);  // length prefix far past the end
  writer.WriteRaw("abc");
  serde::Reader reader(writer.buffer());
  auto s = reader.ReadString();
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.status().code(), StatusCode::kOutOfRange);
}

TEST(KeyedCacheTest, GetOrComputeMemoizes) {
  KeyedCache<int, int> cache;
  int calls = 0;
  EXPECT_EQ(cache.GetOrCompute(7, [&] {
    ++calls;
    return 42;
  }),
            42);
  EXPECT_EQ(cache.GetOrCompute(7, [&] {
    ++calls;
    return 99;  // never called: first insert wins
  }),
            42);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(KeyedCacheTest, FindAndInsert) {
  KeyedCache<std::string, double> cache;
  EXPECT_EQ(cache.Find("a"), nullptr);
  EXPECT_EQ(cache.Insert("a", 1.5), 1.5);
  EXPECT_EQ(cache.Insert("a", 2.5), 1.5);  // first wins
  ASSERT_NE(cache.Find("a"), nullptr);
  EXPECT_EQ(*cache.Find("a"), 1.5);
}

TEST(KeyedCacheTest, ForEachVisitsEverything) {
  KeyedCache<int, int> cache;
  for (int i = 0; i < 10; ++i) cache.Insert(i, i * i);
  int sum = 0;
  cache.ForEach([&](const int& k, const int& v) { sum += k + v; });
  EXPECT_EQ(sum, 45 + 285);
}

TEST(KeyedCacheTest, SupportsMoveOnlyValues) {
  KeyedCache<int, std::unique_ptr<int>> cache;
  cache.Insert(1, std::make_unique<int>(5));
  cache.Insert(2, nullptr);  // cached negative verdict
  ASSERT_NE(cache.Find(1), nullptr);
  EXPECT_EQ(**cache.Find(1), 5);
  ASSERT_NE(cache.Find(2), nullptr);
  EXPECT_EQ(cache.Find(2)->get(), nullptr);
}

TEST(KeyedCacheTest, CountersTrackHitsMissesEvictions) {
  KeyedCache<int, int> cache;
  EXPECT_EQ(cache.Find(1), nullptr);  // miss
  cache.Insert(1, 10);
  EXPECT_EQ(*cache.Find(1), 10);  // hit
  EXPECT_EQ(cache.GetOrCompute(2, [] { return 20; }), 20);  // miss
  EXPECT_EQ(cache.GetOrCompute(2, [] { return 99; }), 20);  // hit

  CacheCounters counters = cache.counters();
  EXPECT_EQ(counters.hits, 2u);
  EXPECT_EQ(counters.misses, 2u);
  EXPECT_EQ(counters.evictions, 0u);

  EXPECT_EQ(cache.EraseIf([](const int& k, const int&) { return k == 1; }),
            1u);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.counters().evictions, 1u);
  EXPECT_EQ(cache.Find(1), nullptr);  // evicted
}

TEST(KeyedCacheTest, UpsertOverwrites) {
  KeyedCache<int, int> cache;
  cache.Insert(1, 10);
  EXPECT_EQ(cache.Insert(1, 11), 10);  // first insert wins
  EXPECT_EQ(cache.Upsert(1, 12), 12);  // upsert overwrites
  EXPECT_EQ(*cache.Find(1), 12);
}

}  // namespace
}  // namespace cegraph::util
