// Scorecard: per-class accounting (under/over split, worst exemplar),
// deterministic bounded-top-K eviction, and drift detection against a
// baseline stamped at snapshot load / hot swap.
#include "obs/scorecard.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace cegraph::obs {
namespace {

ScorecardSample Sample(std::string_view key, double qerror, double estimate,
                       double truth, std::string_view estimator = "molp") {
  ScorecardSample sample;
  sample.class_key = key;
  sample.display = key;
  sample.line = key;
  sample.estimator = estimator;
  sample.qerror = qerror;
  sample.estimate = estimate;
  sample.truth = truth;
  return sample;
}

TEST(ScorecardTest, TracksUnderOverSplitAndWorstExemplar) {
  Scorecard scorecard;
  scorecard.RecordAt(Sample("fork", 2.0, 50, 100), 0);     // under
  scorecard.RecordAt(Sample("fork", 4.0, 400, 100), 1);    // over
  scorecard.RecordAt(Sample("fork", 8.0, 800, 100, "cs"), 2);  // over, worst
  scorecard.RecordAt(Sample("chain", 1.0, 10, 10), 2);     // exact

  const auto reports = scorecard.ReportAt(900, 2);
  ASSERT_EQ(reports.size(), 2u);
  // Sorted by hits descending: fork (3) before chain (1).
  EXPECT_EQ(reports[0].key, "fork");
  EXPECT_EQ(reports[0].hits, 3u);
  EXPECT_EQ(reports[0].under, 1u);
  EXPECT_EQ(reports[0].over, 2u);
  EXPECT_EQ(reports[0].qerror.count, 3u);
  EXPECT_DOUBLE_EQ(reports[0].qerror.max, 8.0);
  EXPECT_DOUBLE_EQ(reports[0].worst.qerror, 8.0);
  EXPECT_EQ(reports[0].worst.estimator, "cs");
  EXPECT_DOUBLE_EQ(reports[0].worst.estimate, 800);
  EXPECT_DOUBLE_EQ(reports[0].worst.truth, 100);
  EXPECT_EQ(reports[1].key, "chain");
  EXPECT_EQ(reports[1].under, 0u);
  EXPECT_EQ(reports[1].over, 0u);
}

TEST(ScorecardTest, EvictsFewestHitsDeterministically) {
  ScorecardOptions options;
  options.max_classes = 3;
  Scorecard scorecard(options);
  for (int i = 0; i < 5; ++i) scorecard.RecordAt(Sample("a", 2, 1, 2), 0);
  for (int i = 0; i < 2; ++i) scorecard.RecordAt(Sample("b", 2, 1, 2), 0);
  for (int i = 0; i < 3; ++i) scorecard.RecordAt(Sample("c", 2, 1, 2), 0);

  // "d" is the 4th class: "b" (fewest hits) is evicted to make room.
  scorecard.RecordAt(Sample("d", 2, 1, 2), 0);
  EXPECT_EQ(scorecard.class_count(), 3u);
  EXPECT_EQ(scorecard.evictions(), 1u);
  // "e" next: now "d" (1 hit) is the fewest.
  scorecard.RecordAt(Sample("e", 2, 1, 2), 0);
  const auto reports = scorecard.ReportAt(900, 0);
  ASSERT_EQ(reports.size(), 3u);
  EXPECT_EQ(reports[0].key, "a");
  EXPECT_EQ(reports[1].key, "c");
  EXPECT_EQ(reports[2].key, "e");
  EXPECT_EQ(scorecard.evictions(), 2u);
}

TEST(ScorecardTest, EvictionTieBreaksTowardGreatestKey) {
  ScorecardOptions options;
  options.max_classes = 3;
  Scorecard scorecard(options);
  scorecard.RecordAt(Sample("x", 2, 1, 2), 0);
  scorecard.RecordAt(Sample("y", 2, 1, 2), 0);
  scorecard.RecordAt(Sample("z", 2, 1, 2), 0);
  scorecard.RecordAt(Sample("w", 2, 1, 2), 0);  // all tied at 1 hit: "z" goes
  const auto reports = scorecard.ReportAt(900, 0);
  ASSERT_EQ(reports.size(), 3u);
  EXPECT_EQ(reports[0].key, "w");
  EXPECT_EQ(reports[1].key, "x");
  EXPECT_EQ(reports[2].key, "y");
}

TEST(ScorecardTest, DriftFlipsWhenTheWindowedMedianLeavesTheBaseline) {
  ScorecardOptions options;
  options.window = {1, 600};
  options.drift_min_samples = 4;
  options.drift_ratio = 2.0;
  Scorecard scorecard(options);
  std::vector<ScorecardClassReport> flips;
  scorecard.SetDriftCallback(
      [&flips](const ScorecardClassReport& report) { flips.push_back(report); });

  // 8 accurate samples: the 8th hit's evaluation stamps the baseline
  // (median ~= 2) lazily.
  for (int i = 0; i < 8; ++i) {
    scorecard.RecordAt(Sample("fork", 2.0, 50, 100), i);
  }
  EXPECT_FALSE(scorecard.AnyDrift());

  // The truth regime shifts: q-errors jump 10x. Once the windowed
  // median crosses 2x the baseline, the class flips exactly once.
  for (int i = 0; i < 24; ++i) {
    scorecard.RecordAt(Sample("fork", 20.0, 2000, 100), 10 + i);
  }
  EXPECT_TRUE(scorecard.AnyDrift());
  EXPECT_EQ(scorecard.drifted_classes(), 1u);
  ASSERT_EQ(flips.size(), 1u);
  EXPECT_EQ(flips[0].key, "fork");
  EXPECT_TRUE(flips[0].drifted);
  EXPECT_GT(flips[0].qerror.p50, flips[0].baseline_median * 2.0);

  // A hot swap re-stamps the baseline from the live window and clears
  // the verdict: the new regime is the new normal.
  scorecard.StampBaselineAt(40);
  EXPECT_FALSE(scorecard.AnyDrift());
  const auto reports = scorecard.ReportAt(600, 40);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_FALSE(reports[0].drifted);
  EXPECT_GT(reports[0].baseline_median, 4.0);  // stamped from the 20s
}

TEST(ScorecardTest, BaselineStampsLazilyForClassesBornAfterTheSwap) {
  ScorecardOptions options;
  options.window = {1, 600};
  options.drift_min_samples = 4;
  Scorecard scorecard(options);
  // Stamping with too few samples resets to "no baseline yet"...
  scorecard.RecordAt(Sample("fork", 2.0, 50, 100), 0);
  scorecard.StampBaselineAt(0);
  auto reports = scorecard.ReportAt(600, 0);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_DOUBLE_EQ(reports[0].baseline_median, 0.0);
  // ...and the first full-enough window stamps it.
  for (int i = 0; i < 8; ++i) {
    scorecard.RecordAt(Sample("fork", 2.0, 50, 100), 1 + i);
  }
  reports = scorecard.ReportAt(600, 9);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_GT(reports[0].baseline_median, 0.0);
}

TEST(ScorecardTest, IgnoresUnusableQErrors) {
  Scorecard scorecard;
  scorecard.RecordAt(Sample("fork", 0.0, 0, 100), 0);
  scorecard.RecordAt(Sample("fork", -1.0, 1, 100), 0);
  EXPECT_EQ(scorecard.class_count(), 0u);
}

}  // namespace
}  // namespace cegraph::obs
