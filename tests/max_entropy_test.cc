#include <gtest/gtest.h>

#include <cmath>

#include "estimators/max_entropy.h"
#include "estimators/optimistic.h"
#include "graph/datasets.h"
#include "graph/generators.h"
#include "matching/matcher.h"
#include "query/workload.h"
#include "stats/markov_table.h"

namespace cegraph {
namespace {

using graph::Graph;
using query::QueryGraph;

QueryGraph Q(uint32_t n, std::vector<query::QueryEdge> edges) {
  auto q = QueryGraph::Create(n, std::move(edges));
  return std::move(q).value();
}

constexpr graph::Label kA = 0, kB = 1, kC = 2;

class MaxEntropyTest : public ::testing::Test {
 protected:
  MaxEntropyTest()
      : g_(graph::MakeRunningExampleGraph()), markov_(g_, 2),
        estimator_(markov_), matcher_(g_) {}
  Graph g_;
  stats::MarkovTable markov_;
  MaxEntropyEstimator estimator_;
  matching::Matcher matcher_;
};

TEST_F(MaxEntropyTest, ExactWithinMarkovTable) {
  // |Q| <= h: the constraint for Q itself pins the estimate exactly.
  auto est = estimator_.Estimate(Q(3, {{0, 1, kA}, {1, 2, kB}}));
  ASSERT_TRUE(est.ok());
  EXPECT_NEAR(*est, 4.0, 1e-6);
}

TEST_F(MaxEntropyTest, SingleEdgeExact) {
  auto est = estimator_.Estimate(Q(2, {{0, 1, kA}}));
  ASSERT_TRUE(est.ok());
  EXPECT_NEAR(*est, 4.0, 1e-6);
}

TEST_F(MaxEntropyTest, ThreePathMatchesMarkovChainEstimate) {
  // With pairwise constraints only, the ME distribution reproduces the
  // conditional-independence chain: |AB| * |BC| / |B| = 6 on the running
  // example (§4.1 of the paper).
  auto est = estimator_.Estimate(Q(4, {{0, 1, kA}, {1, 2, kB}, {2, 3, kC}}));
  ASSERT_TRUE(est.ok());
  EXPECT_NEAR(*est, 6.0, 0.05);
}

TEST_F(MaxEntropyTest, ZeroSubqueryGivesZero) {
  // B then A never chains in the running example.
  auto est = estimator_.Estimate(Q(3, {{0, 1, kB}, {1, 2, kA}}));
  ASSERT_TRUE(est.ok());
  EXPECT_DOUBLE_EQ(*est, 0.0);
}

TEST_F(MaxEntropyTest, RejectsDisconnected) {
  auto q = QueryGraph::Create(4, {{0, 1, kA}, {2, 3, kB}});
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(estimator_.Estimate(*q).ok());
}

TEST_F(MaxEntropyTest, Deterministic) {
  const QueryGraph q = Q(4, {{0, 1, kA}, {1, 2, kB}, {2, 3, kC}});
  auto e1 = estimator_.Estimate(q);
  auto e2 = estimator_.Estimate(q);
  ASSERT_TRUE(e1.ok());
  EXPECT_DOUBLE_EQ(*e1, *e2);
}

TEST(MaxEntropyWorkloadTest, ReasonableOnRealWorkload) {
  auto g = graph::MakeDataset("epinions_like");
  ASSERT_TRUE(g.ok());
  query::WorkloadOptions options;
  options.instances_per_template = 5;
  options.seed = 71;
  auto wl = query::GenerateWorkload(
      *g, {{"cat5", query::CaterpillarShape(5, 3)}}, options);
  ASSERT_TRUE(wl.ok());
  stats::MarkovTable markov(*g, 2);
  MaxEntropyEstimator me(markov);
  for (const auto& wq : *wl) {
    auto est = me.Estimate(wq.query);
    ASSERT_TRUE(est.ok());
    EXPECT_GT(*est, 0.0);
    // Within 4 orders of magnitude of the truth (it is an optimistic
    // estimator built from the same stats as CEG_O; sanity bound only).
    const double err = std::fabs(std::log10(*est) -
                                 std::log10(wq.true_cardinality));
    EXPECT_LT(err, 4.0);
  }
}

TEST(MaxEntropyWorkloadTest, AtLeastAsGoodAsIndependenceOnUniformData) {
  // On a graph with random labels the ME estimate and the chain formulas
  // should roughly agree (all uniformity assumptions hold).
  auto g = graph::GenerateGraph({.num_vertices = 300,
                                 .num_edges = 2400,
                                 .num_labels = 4,
                                 .num_types = 1,
                                 .label_zipf_s = 1.0,
                                 .preferential_p = 0.0,
                                 .random_labels = true,
                                 .seed = 99});
  ASSERT_TRUE(g.ok());
  stats::MarkovTable markov(*g, 2);
  MaxEntropyEstimator me(markov);
  OptimisticEstimator mhm(markov, OptimisticSpec{});
  matching::Matcher matcher(*g);
  const QueryGraph q = Q(4, {{0, 1, 0}, {1, 2, 1}, {2, 3, 2}});
  auto e_me = me.Estimate(q);
  auto e_opt = mhm.Estimate(q);
  ASSERT_TRUE(e_me.ok());
  ASSERT_TRUE(e_opt.ok());
  EXPECT_NEAR(std::log10(*e_me), std::log10(*e_opt), 0.5);
}

}  // namespace
}  // namespace cegraph
