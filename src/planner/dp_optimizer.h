#ifndef CEGRAPH_PLANNER_DP_OPTIMIZER_H_
#define CEGRAPH_PLANNER_DP_OPTIMIZER_H_

#include <vector>

#include "estimators/estimator.h"
#include "query/query_graph.h"
#include "util/status.h"

namespace cegraph::planner {

/// A binary join plan over the query's edges.
struct PlanNode {
  query::EdgeSet subquery = 0;  ///< edges covered by this node
  int left = -1;                ///< child index, -1 for leaf scans
  int right = -1;
  uint32_t scan_edge = 0;       ///< for leaves: the scanned query edge
  double estimated_cardinality = 0;
};

struct Plan {
  std::vector<PlanNode> nodes;
  int root = -1;
  /// Sum of the estimated cardinalities of all internal nodes — the
  /// optimizer's objective (C_out cost model).
  double estimated_cost = 0;
};

/// A Selinger-style dynamic-programming join optimizer over connected
/// sub-queries, with *injected* cardinality estimates — the stand-in for
/// RDF-3X's DP optimizer in the paper's plan-quality experiment (§6.6:
/// "the cardinalities are injected inside the system's dynamic
/// programming-based join optimizer"). The cost of a plan is the sum of
/// estimated intermediate-result cardinalities (C_out), so different
/// estimators produce different join orders.
class DpOptimizer {
 public:
  explicit DpOptimizer(const CardinalityEstimator& estimator)
      : estimator_(estimator) {}

  /// Computes the minimum-estimated-cost bushy plan without Cartesian
  /// products. Fails if the estimator fails on any connected sub-query.
  util::StatusOr<Plan> Optimize(const query::QueryGraph& q) const;

 private:
  const CardinalityEstimator& estimator_;
};

}  // namespace cegraph::planner

#endif  // CEGRAPH_PLANNER_DP_OPTIMIZER_H_
