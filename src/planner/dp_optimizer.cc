#include "planner/dp_optimizer.h"

#include <bit>
#include <functional>
#include <limits>
#include <map>

#include "query/subquery.h"

namespace cegraph::planner {

namespace {

using query::EdgeSet;

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

util::StatusOr<Plan> DpOptimizer::Optimize(const query::QueryGraph& q) const {
  if (q.num_edges() == 0 || !q.IsConnected()) {
    return util::InvalidArgumentError("query must be non-empty and connected");
  }

  const std::vector<EdgeSet> subsets = query::ConnectedSubsets(q);

  // Estimated cardinality per connected sub-query.
  std::map<EdgeSet, double> card;
  for (EdgeSet s : subsets) {
    if (std::popcount(s) == 1) {
      // Single-edge scans use their exact relation size via the estimator
      // too (every estimator is exact on single relations or close to it).
      auto est = estimator_.Estimate(q.ExtractPattern(s));
      if (!est.ok()) return est.status();
      card[s] = *est;
      continue;
    }
    auto est = estimator_.Estimate(q.ExtractPattern(s));
    if (!est.ok()) return est.status();
    card[s] = *est;
  }

  struct Best {
    double cost = kInf;
    EdgeSet left = 0;  // 0 => leaf
  };
  std::map<EdgeSet, Best> best;

  for (EdgeSet s : subsets) {
    if (std::popcount(s) == 1) {
      best[s] = {0.0, 0};
      continue;
    }
    Best b;
    // Enumerate proper subsets; require both sides connected and disjoint
    // (they partition s, so no Cartesian products arise: s is connected).
    for (EdgeSet s1 = (s - 1) & s; s1 != 0; s1 = (s1 - 1) & s) {
      const EdgeSet s2 = s & ~s1;
      if (s1 > s2) continue;  // symmetric split: visit once
      auto it1 = best.find(s1);
      auto it2 = best.find(s2);
      if (it1 == best.end() || it2 == best.end()) continue;
      const double cost = it1->second.cost + it2->second.cost + card[s];
      if (cost < b.cost) {
        b.cost = cost;
        b.left = s1;
      }
    }
    if (b.left == 0) {
      return util::InternalError("no connected split found");
    }
    best[s] = b;
  }

  // Materialize the plan tree.
  Plan plan;
  std::map<EdgeSet, int> node_of;
  // Recursive build via explicit stack (post-order).
  std::function<int(EdgeSet)> build = [&](EdgeSet s) -> int {
    auto it = node_of.find(s);
    if (it != node_of.end()) return it->second;
    PlanNode node;
    node.subquery = s;
    node.estimated_cardinality = card[s];
    const Best& b = best[s];
    if (b.left == 0) {
      node.scan_edge = static_cast<uint32_t>(std::countr_zero(s));
    } else {
      node.left = build(b.left);
      node.right = build(s & ~b.left);
    }
    plan.nodes.push_back(node);
    const int id = static_cast<int>(plan.nodes.size() - 1);
    node_of[s] = id;
    return id;
  };
  plan.root = build(q.AllEdges());
  plan.estimated_cost = best[q.AllEdges()].cost;
  return plan;
}

}  // namespace cegraph::planner
