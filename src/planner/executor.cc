#include "planner/executor.h"

#include <algorithm>
#include <chrono>
#include <unordered_map>
#include <vector>

namespace cegraph::planner {

namespace {

using graph::VertexId;
using query::QueryEdge;
using query::QVertex;

/// A materialized intermediate relation: a schema (query vertices, sorted)
/// and rows of matching data vertices.
struct Table {
  std::vector<QVertex> schema;
  std::vector<std::vector<VertexId>> rows;
};

Table ScanEdge(const graph::Graph& g, const QueryEdge& e) {
  Table t;
  if (e.src == e.dst) {
    t.schema = {e.src};
    for (const graph::Edge& de : g.RelationEdges(e.label)) {
      if (de.src == de.dst) t.rows.push_back({de.src});
    }
    return t;
  }
  t.schema = {std::min(e.src, e.dst), std::max(e.src, e.dst)};
  const bool src_first = e.src < e.dst;
  for (const graph::Edge& de : g.RelationEdges(e.label)) {
    if (src_first) {
      t.rows.push_back({de.src, de.dst});
    } else {
      t.rows.push_back({de.dst, de.src});
    }
  }
  return t;
}

uint64_t HashKey(const std::vector<VertexId>& row,
                 const std::vector<size_t>& cols) {
  uint64_t h = 1469598103934665603ULL;
  for (size_t c : cols) {
    h ^= row[c];
    h *= 1099511628211ULL;
  }
  return h;
}

/// Hash join of two tables on their shared schema vertices.
util::StatusOr<Table> HashJoin(const Table& left, const Table& right,
                               uint64_t* tuples_budget) {
  Table out;
  // Shared vertices and column maps.
  std::vector<QVertex> shared;
  std::vector<size_t> left_key_cols, right_key_cols;
  for (size_t i = 0; i < left.schema.size(); ++i) {
    for (size_t j = 0; j < right.schema.size(); ++j) {
      if (left.schema[i] == right.schema[j]) {
        shared.push_back(left.schema[i]);
        left_key_cols.push_back(i);
        right_key_cols.push_back(j);
      }
    }
  }
  // Output schema: left schema + right-only vertices (sorted merge).
  out.schema = left.schema;
  std::vector<size_t> right_extra_cols;
  for (size_t j = 0; j < right.schema.size(); ++j) {
    if (std::find(left.schema.begin(), left.schema.end(), right.schema[j]) ==
        left.schema.end()) {
      out.schema.push_back(right.schema[j]);
      right_extra_cols.push_back(j);
    }
  }

  // Build on the smaller side.
  const bool build_left = left.rows.size() <= right.rows.size();
  const Table& build = build_left ? left : right;
  const Table& probe = build_left ? right : left;
  const auto& build_keys = build_left ? left_key_cols : right_key_cols;
  const auto& probe_keys = build_left ? right_key_cols : left_key_cols;

  std::unordered_multimap<uint64_t, size_t> table;
  table.reserve(build.rows.size());
  for (size_t r = 0; r < build.rows.size(); ++r) {
    table.emplace(HashKey(build.rows[r], build_keys), r);
  }

  auto keys_equal = [&](const std::vector<VertexId>& a,
                        const std::vector<VertexId>& b) {
    for (size_t k = 0; k < build_keys.size(); ++k) {
      if (a[build_keys[k]] != b[probe_keys[k]]) return false;
    }
    return true;
  };

  for (const auto& prow : probe.rows) {
    const uint64_t h = HashKey(prow, probe_keys);
    auto [begin, end] = table.equal_range(h);
    for (auto it = begin; it != end; ++it) {
      const auto& brow = build.rows[it->second];
      if (!keys_equal(brow, prow)) continue;
      // Assemble the output row in out.schema order.
      const auto& lrow = build_left ? brow : prow;
      const auto& rrow = build_left ? prow : brow;
      std::vector<VertexId> row = lrow;
      for (size_t j : right_extra_cols) row.push_back(rrow[j]);
      out.rows.push_back(std::move(row));
      if (out.rows.size() > *tuples_budget) {
        return util::ResourceExhaustedError("executor tuple budget exceeded");
      }
    }
  }
  *tuples_budget -= out.rows.size();
  return out;
}

}  // namespace

util::StatusOr<ExecutionResult> Executor::Execute(
    const query::QueryGraph& q, const Plan& plan,
    uint64_t tuple_budget) const {
  const auto start = std::chrono::steady_clock::now();
  std::vector<Table> tables(plan.nodes.size());
  uint64_t budget = tuple_budget;
  uint64_t intermediates = 0;

  // Plan nodes are already in post-order (children before parents) by
  // construction in DpOptimizer.
  for (size_t i = 0; i < plan.nodes.size(); ++i) {
    const PlanNode& node = plan.nodes[i];
    if (node.left < 0) {
      tables[i] = ScanEdge(g_, q.edge(node.scan_edge));
    } else {
      auto joined = HashJoin(tables[node.left], tables[node.right], &budget);
      if (!joined.ok()) return joined.status();
      tables[i] = std::move(*joined);
      if (static_cast<int>(i) != plan.root) {
        intermediates += tables[i].rows.size();
      }
      // Children are no longer needed; free them eagerly.
      tables[node.left] = Table{};
      tables[node.right] = Table{};
    }
  }

  const auto end = std::chrono::steady_clock::now();
  ExecutionResult result;
  result.output_cardinality =
      static_cast<double>(tables[plan.root].rows.size());
  result.total_intermediate_tuples = intermediates;
  result.wall_seconds =
      std::chrono::duration<double>(end - start).count();
  return result;
}

}  // namespace cegraph::planner
