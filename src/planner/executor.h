#ifndef CEGRAPH_PLANNER_EXECUTOR_H_
#define CEGRAPH_PLANNER_EXECUTOR_H_

#include "graph/graph.h"
#include "planner/dp_optimizer.h"
#include "query/query_graph.h"
#include "util/status.h"

namespace cegraph::planner {

/// Execution metrics of one plan. `total_intermediate_tuples` is the
/// machine-independent cost proxy (the quantity bad cardinality estimates
/// inflate); `wall_seconds` is the measured runtime.
struct ExecutionResult {
  double output_cardinality = 0;
  uint64_t total_intermediate_tuples = 0;
  double wall_seconds = 0;
};

/// Executes join plans with in-memory hash joins, materializing every
/// internal node — the execution half of the paper's §6.6 plan-quality
/// experiment. Plans chosen under different injected estimators run
/// through identical machinery, so runtime differences reflect plan
/// quality alone.
class Executor {
 public:
  explicit Executor(const graph::Graph& g) : g_(g) {}

  /// Runs `plan` for `q`. Aborts with ResourceExhausted once more than
  /// `tuple_budget` intermediate tuples have been materialized.
  util::StatusOr<ExecutionResult> Execute(const query::QueryGraph& q,
                                          const Plan& plan,
                                          uint64_t tuple_budget = 50'000'000)
      const;

 private:
  const graph::Graph& g_;
};

}  // namespace cegraph::planner

#endif  // CEGRAPH_PLANNER_EXECUTOR_H_
