#ifndef CEGRAPH_HARNESS_QERROR_H_
#define CEGRAPH_HARNESS_QERROR_H_

namespace cegraph::harness {

/// The q-error of an estimate (§6.2): max{c/e, e/c} >= 1. An estimate of
/// 0 for a non-empty query yields +infinity.
double QError(double estimate, double truth);

/// The paper's box-plot metric: log10 of the q-error, negated for
/// underestimates ("if a q-error was an underestimate, we put a negative
/// sign to it"), so distributions order from worst underestimation to
/// worst overestimation and 0 is a perfect estimate.
double SignedLogQError(double estimate, double truth);

}  // namespace cegraph::harness

#endif  // CEGRAPH_HARNESS_QERROR_H_
