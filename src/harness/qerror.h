#ifndef CEGRAPH_HARNESS_QERROR_H_
#define CEGRAPH_HARNESS_QERROR_H_

namespace cegraph::harness {

/// The q-error of an estimate (§6.2): max{c/e, e/c} >= 1. An estimate of
/// 0 for a non-empty query yields +infinity.
double QError(double estimate, double truth);

/// The paper's box-plot metric: log10 of the q-error, negated for
/// underestimates ("if a q-error was an underestimate, we put a negative
/// sign to it"), so distributions order from worst underestimation to
/// worst overestimation and 0 is a perfect estimate.
double SignedLogQError(double estimate, double truth);

/// True iff `qerror` is a *usable* accuracy sample: finite and positive.
/// QError's failure encodings — NaN for a non-positive truth, +infinity
/// for a zero/negative estimate against a non-empty query — both fail
/// this test, so one guard keeps every aggregate (service accounting,
/// scorecards, workload summaries, learned corrections) free of
/// NaN/infinity poisoning. Every recording site must route through this
/// helper instead of re-deriving the predicate.
bool UsableQError(double qerror);

/// Convenience overload for call sites that hold the raw pair instead of
/// a precomputed q-error: usable iff truth > 0 and the estimate is
/// positive and finite (equivalent to UsableQError(QError(e, t))).
bool UsableQError(double estimate, double truth);

}  // namespace cegraph::harness

#endif  // CEGRAPH_HARNESS_QERROR_H_
