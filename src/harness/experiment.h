#ifndef CEGRAPH_HARNESS_EXPERIMENT_H_
#define CEGRAPH_HARNESS_EXPERIMENT_H_

#include <ostream>
#include <string>
#include <vector>

#include "estimators/estimator.h"
#include "estimators/optimistic.h"
#include "query/workload.h"
#include "stats/cycle_closing.h"
#include "stats/markov_table.h"
#include "util/box_stats.h"

namespace cegraph::harness {

/// The accuracy distribution of one estimator over a workload, in the
/// paper's reporting format (box statistics of signed log10 q-errors plus
/// the 10%-trimmed mean).
struct EstimatorReport {
  std::string name;
  util::BoxStats signed_log_qerror;
  size_t failures = 0;       ///< queries where the estimator erred out
  double total_seconds = 0;  ///< summed estimation time
  double mean_millis() const {
    return signed_log_qerror.count == 0
               ? 0
               : 1000.0 * total_seconds /
                     static_cast<double>(signed_log_qerror.count);
  }
};

struct SuiteResult {
  std::vector<EstimatorReport> reports;
  size_t queries_used = 0;
  size_t queries_dropped = 0;  ///< dropped because some estimator failed
};

/// Runs every estimator over the workload. When `drop_on_any_failure` is
/// set (the paper's convention for SumRDF timeouts), a query on which any
/// estimator fails is removed from *all* distributions.
SuiteResult RunEstimatorSuite(
    const std::vector<const CardinalityEstimator*>& estimators,
    const std::vector<query::WorkloadQuery>& workload,
    bool drop_on_any_failure = true);

/// Runs the 9 optimistic estimators of §4.2 plus the P* oracle over one
/// CEG kind, building each query's CEG exactly once. Reports come back in
/// the paper's order (min/avg/max aggregator within max/min/all hops),
/// with P* last.
SuiteResult RunOptimisticSuite(const stats::MarkovTable& markov,
                               const stats::CycleClosingRates* rates,
                               OptimisticCeg kind,
                               const std::vector<query::WorkloadQuery>& workload,
                               size_t pstar_max_paths = 200'000);

/// Prints a suite as an aligned table (one row per estimator).
void PrintSuiteResult(std::ostream& os, const std::string& title,
                      const SuiteResult& result);

}  // namespace cegraph::harness

#endif  // CEGRAPH_HARNESS_EXPERIMENT_H_
