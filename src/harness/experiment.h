#ifndef CEGRAPH_HARNESS_EXPERIMENT_H_
#define CEGRAPH_HARNESS_EXPERIMENT_H_

#include <ostream>
#include <string>
#include <vector>

#include "estimators/estimator.h"
#include "estimators/optimistic.h"
#include "query/workload.h"
#include "stats/cycle_closing.h"
#include "stats/markov_table.h"
#include "util/box_stats.h"

namespace cegraph::harness {

/// The accuracy distribution of one estimator over a workload, in the
/// paper's reporting format (box statistics of signed log10 q-errors plus
/// the 10%-trimmed mean).
struct EstimatorReport {
  std::string name;
  util::BoxStats signed_log_qerror;
  size_t failures = 0;       ///< queries where the estimator erred out
  double total_seconds = 0;  ///< summed estimation time
  /// Queries whose estimation time is included in total_seconds. Set by
  /// the runners; covers attempts on queries later dropped from the
  /// distributions because *another* estimator failed.
  size_t attempted = 0;
  /// Mean per-query latency over every timed attempt: failed or dropped
  /// attempts consumed time too, so dividing by successes alone would
  /// inflate the per-query cost. Falls back to successes + failures when
  /// `attempted` was not populated (hand-built reports).
  double mean_millis() const {
    const size_t n =
        attempted != 0 ? attempted : signed_log_qerror.count + failures;
    return n == 0 ? 0 : 1000.0 * total_seconds / static_cast<double>(n);
  }
};

struct SuiteResult {
  std::vector<EstimatorReport> reports;
  size_t queries_used = 0;
  size_t queries_dropped = 0;  ///< dropped because some estimator failed
};

/// Runs every estimator over the workload. When `drop_on_any_failure` is
/// set (the paper's convention for SumRDF timeouts), a query on which any
/// estimator fails is removed from *all* distributions.
///
/// Thin wrapper over harness::WorkloadRunner (workload_runner.h): queries
/// run on all cores and the deterministic merge makes the accuracy/failure
/// fields independent of the thread count. Two contract notes versus the
/// old serial loop:
///  - estimators are invoked concurrently from multiple threads, so
///    Estimate() must be safe for concurrent calls (all in-tree
///    estimators are; an estimator with mutable per-call state needs a
///    WorkloadRunner with num_threads = 1);
///  - the avg-ms column includes scheduler/contention noise when run in
///    parallel — latency-focused benches should use a serial runner.
SuiteResult RunEstimatorSuite(
    const std::vector<const CardinalityEstimator*>& estimators,
    const std::vector<query::WorkloadQuery>& workload,
    bool drop_on_any_failure = true);

/// Runs the 9 optimistic estimators of §4.2 plus the P* oracle over one
/// CEG kind, building each query's CEG exactly once (through an
/// engine::CegCache). Reports come back in the paper's order (min/avg/max
/// aggregator within max/min/all hops), with P* last. Thin wrapper over
/// harness::WorkloadRunner.
SuiteResult RunOptimisticSuite(const stats::MarkovTable& markov,
                               const stats::CycleClosingRates* rates,
                               OptimisticCeg kind,
                               const std::vector<query::WorkloadQuery>& workload,
                               size_t pstar_max_paths = 200'000);

/// Prints a suite as an aligned table (one row per estimator).
void PrintSuiteResult(std::ostream& os, const std::string& title,
                      const SuiteResult& result);

}  // namespace cegraph::harness

#endif  // CEGRAPH_HARNESS_EXPERIMENT_H_
