#include "harness/service_driver.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <mutex>
#include <thread>
#include <utility>

#include "query/parser.h"

namespace cegraph::harness {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

ServiceRunResult DriveServiceWorkload(
    const service::EstimationService& service,
    const std::vector<query::WorkloadQuery>& workload,
    const ServiceDriverOptions& options) {
  ServiceRunResult result;
  if (workload.empty()) return result;

  // Parse once, share read-only: the request objects are immutable and
  // Estimate() is const, so threads need no per-request setup.
  std::vector<service::EstimateRequest> requests;
  requests.reserve(workload.size());
  for (const query::WorkloadQuery& wq : workload) {
    service::EstimateRequest request;
    request.query = wq.query;
    request.pattern = query::FormatQuery(wq.query);
    request.template_name = wq.template_name;
    request.truth = wq.true_cardinality;
    requests.push_back(std::move(request));
  }

  // Consistency oracle: the first OK response observed for (epoch, query)
  // fixes that epoch's answer vector; deterministic estimators must
  // reproduce it exactly on every later response claiming the same epoch.
  // A response assembled from two serving states disagrees with both
  // epochs' recorded vectors in some component.
  struct Expected {
    std::vector<double> estimates;  ///< NaN marks a failed estimator
  };
  std::mutex oracle_mutex;
  std::map<std::pair<uint64_t, size_t>, Expected> oracle;

  struct PerThread {
    size_t requests = 0;
    size_t errors = 0;
    size_t rejected = 0;
    size_t estimator_failures = 0;
    size_t inconsistent = 0;
    size_t version_regressions = 0;
    std::map<uint64_t, size_t> per_epoch;
    double latency_micros = 0;
    double qerror_sum = 0;
    size_t qerror_count = 0;
  };
  const int threads = options.num_threads < 1 ? 1 : options.num_threads;
  std::vector<PerThread> per_thread(static_cast<size_t>(threads));

  const auto t0 = Clock::now();
  auto worker = [&](size_t tid) {
    PerThread& mine = per_thread[tid];
    uint64_t last_version = 0;

    auto account_error = [&](const util::Status& status) {
      ++mine.errors;
      if (status.code() == util::StatusCode::kResourceExhausted) {
        ++mine.rejected;
      }
    };
    auto account_ok = [&](const service::EstimateResponse& response,
                          size_t qi) {
      ++mine.per_epoch[response.epoch];
      mine.latency_micros += response.total_micros;
      if (response.state_version < last_version) {
        ++mine.version_regressions;
      }
      last_version = response.state_version;
      std::vector<double> estimates;
      estimates.reserve(response.results.size());
      for (const service::EstimatorResult& r : response.results) {
        if (r.ok) {
          estimates.push_back(r.estimate);
          if (response.has_truth) {
            mine.qerror_sum += r.qerror;
            ++mine.qerror_count;
          }
        } else {
          ++mine.estimator_failures;
          estimates.push_back(std::numeric_limits<double>::quiet_NaN());
        }
      }
      if (options.check_consistency) {
        std::lock_guard<std::mutex> lock(oracle_mutex);
        auto [it, inserted] = oracle.try_emplace({response.epoch, qi});
        if (inserted) {
          it->second.estimates = std::move(estimates);
        } else {
          const std::vector<double>& expected = it->second.estimates;
          bool match = expected.size() == estimates.size();
          for (size_t i = 0; match && i < expected.size(); ++i) {
            // Bit-identical or both-failed; deterministic estimators
            // admit nothing in between within one epoch.
            match = expected[i] == estimates[i] ||
                    (std::isnan(expected[i]) && std::isnan(estimates[i]));
          }
          if (!match) ++mine.inconsistent;
        }
      }
    };

    // This thread's stride-interleaved share, chunked when batching.
    std::vector<size_t> share;
    for (size_t qi = tid; qi < requests.size();
         qi += static_cast<size_t>(threads)) {
      share.push_back(qi);
    }
    const size_t chunk =
        options.batch_size > 1 ? static_cast<size_t>(options.batch_size) : 1;

    for (int pass = 0;; ++pass) {
      if (options.duration_seconds > 0) {
        if (SecondsSince(t0) >= options.duration_seconds) break;
      } else if (pass >= options.passes) {
        break;
      }
      for (size_t b = 0; b < share.size(); b += chunk) {
        if (options.duration_seconds > 0 &&
            SecondsSince(t0) >= options.duration_seconds) {
          break;
        }
        const size_t n = std::min(chunk, share.size() - b);
        if (options.batch_size > 1) {
          // The wire-v3 shape: n requests admitted as one unit, answered
          // in order from one serving epoch. Every item is accounted (and
          // oracle-checked) exactly like its own Estimate call.
          std::vector<const service::EstimateRequest*> ptrs;
          ptrs.reserve(n);
          for (size_t j = 0; j < n; ++j) {
            ptrs.push_back(&requests[share[b + j]]);
          }
          mine.requests += n;
          auto batch = service.EstimateBatch(ptrs);
          if (!batch.ok()) {
            for (size_t j = 0; j < n; ++j) account_error(batch.status());
            continue;
          }
          for (size_t j = 0; j < n && j < batch->size(); ++j) {
            const service::BatchEstimateItem& item = (*batch)[j];
            if (!item.status.ok()) {
              account_error(item.status);
            } else {
              account_ok(item.estimate, share[b + j]);
            }
          }
        } else {
          const size_t qi = share[b];
          ++mine.requests;
          auto response = service.Estimate(requests[qi]);
          if (!response.ok()) {
            account_error(response.status());
            continue;
          }
          account_ok(*response, qi);
        }
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(threads) - 1);
  for (size_t tid = 1; tid < static_cast<size_t>(threads); ++tid) {
    pool.emplace_back(worker, tid);
  }
  worker(0);
  for (std::thread& t : pool) t.join();
  result.seconds = SecondsSince(t0);

  double latency_micros = 0;
  double qerror_sum = 0;
  size_t qerror_count = 0;
  for (const PerThread& mine : per_thread) {
    result.requests += mine.requests;
    result.errors += mine.errors;
    result.rejected += mine.rejected;
    result.estimator_failures += mine.estimator_failures;
    result.inconsistent_responses += mine.inconsistent;
    result.version_regressions += mine.version_regressions;
    for (const auto& [epoch, count] : mine.per_epoch) {
      result.responses_per_epoch[epoch] += count;
    }
    latency_micros += mine.latency_micros;
    qerror_sum += mine.qerror_sum;
    qerror_count += mine.qerror_count;
  }
  const size_t ok_responses = result.requests - result.errors;
  if (ok_responses > 0) {
    result.mean_latency_micros =
        latency_micros / static_cast<double>(ok_responses);
  }
  if (qerror_count > 0) {
    result.mean_qerror = qerror_sum / static_cast<double>(qerror_count);
  }
  return result;
}

util::StatusOr<std::map<std::string, ServiceRunResult>>
DriveCatalogWorkload(const service::DatasetCatalog& catalog,
                     const std::vector<CatalogWorkload>& workloads,
                     const ServiceDriverOptions& options) {
  // Resolve everything up front — a typo'd dataset name should fail the
  // drive, not silently hammer the default dataset.
  std::vector<const service::EstimationService*> services;
  services.reserve(workloads.size());
  for (const CatalogWorkload& cw : workloads) {
    auto service = catalog.Resolve(cw.dataset);
    if (!service.ok()) return service.status();
    services.push_back(*service);
  }

  // All datasets are driven concurrently (one driver thread each, fanning
  // out to options.num_threads client threads), so the load interleaves
  // across datasets exactly like a mixed-tenant daemon. Each call keeps
  // its own per-epoch oracle, which is what makes the consistency check
  // per-dataset.
  // Result slots are created (and their addresses taken) before any
  // thread starts: each driver writes through its own pre-resolved
  // pointer, so no thread ever calls a mutating map member concurrently.
  std::map<std::string, ServiceRunResult> results;
  std::vector<ServiceRunResult*> slots;
  slots.reserve(workloads.size());
  for (const CatalogWorkload& cw : workloads) {
    auto [it, inserted] = results.try_emplace(cw.dataset);
    if (!inserted) {
      return util::InvalidArgumentError("dataset '" + cw.dataset +
                                        "' listed twice");
    }
    slots.push_back(&it->second);
  }
  std::vector<std::thread> drivers;
  drivers.reserve(workloads.size());
  for (size_t i = 0; i < workloads.size(); ++i) {
    drivers.emplace_back([&, i] {
      *slots[i] = DriveServiceWorkload(*services[i], workloads[i].workload,
                                       options);
    });
  }
  for (std::thread& t : drivers) t.join();
  return results;
}

}  // namespace cegraph::harness
