#include "harness/experiment.h"

#include "engine/ceg_cache.h"
#include "harness/workload_runner.h"
#include "util/table_printer.h"

namespace cegraph::harness {

SuiteResult RunEstimatorSuite(
    const std::vector<const CardinalityEstimator*>& estimators,
    const std::vector<query::WorkloadQuery>& workload,
    bool drop_on_any_failure) {
  return WorkloadRunner().RunSuite(estimators, workload, drop_on_any_failure);
}

SuiteResult RunOptimisticSuite(
    const stats::MarkovTable& markov, const stats::CycleClosingRates* rates,
    OptimisticCeg kind, const std::vector<query::WorkloadQuery>& workload,
    size_t pstar_max_paths) {
  engine::CegCache cache;
  return WorkloadRunner().RunOptimisticSuite(cache, markov, rates, kind,
                                             workload, pstar_max_paths);
}

void PrintSuiteResult(std::ostream& os, const std::string& title,
                      const SuiteResult& result) {
  os << "== " << title << " (queries=" << result.queries_used
     << ", dropped=" << result.queries_dropped << ") ==\n";
  util::TablePrinter table({"estimator", "p25", "median", "p75",
                            "trimmed-mean", "min", "max", "fail",
                            "avg-ms"});
  for (const EstimatorReport& r : result.reports) {
    const util::BoxStats& s = r.signed_log_qerror;
    table.AddRow({r.name, util::TablePrinter::Num(s.p25),
                  util::TablePrinter::Num(s.median),
                  util::TablePrinter::Num(s.p75),
                  util::TablePrinter::Num(s.trimmed_mean),
                  util::TablePrinter::Num(s.min),
                  util::TablePrinter::Num(s.max),
                  std::to_string(r.failures),
                  util::TablePrinter::Num(r.mean_millis())});
  }
  table.Print(os);
  os << "(signed log10 q-error: negative = underestimation, 0 = perfect)\n\n";
}

}  // namespace cegraph::harness
