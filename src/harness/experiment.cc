#include "harness/experiment.h"

#include <chrono>

#include "estimators/oracle.h"
#include "harness/qerror.h"
#include "util/table_printer.h"

namespace cegraph::harness {

namespace {

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

SuiteResult RunEstimatorSuite(
    const std::vector<const CardinalityEstimator*>& estimators,
    const std::vector<query::WorkloadQuery>& workload,
    bool drop_on_any_failure) {
  SuiteResult result;
  std::vector<std::vector<double>> signed_logs(estimators.size());
  std::vector<size_t> failures(estimators.size(), 0);
  std::vector<double> seconds(estimators.size(), 0);

  for (const query::WorkloadQuery& wq : workload) {
    std::vector<double> estimates(estimators.size());
    bool any_failed = false;
    for (size_t i = 0; i < estimators.size(); ++i) {
      const double t0 = Now();
      auto est = estimators[i]->Estimate(wq.query);
      seconds[i] += Now() - t0;
      if (!est.ok()) {
        ++failures[i];
        any_failed = true;
        estimates[i] = -1;
        continue;
      }
      estimates[i] = *est;
    }
    if (any_failed && drop_on_any_failure) {
      ++result.queries_dropped;
      continue;
    }
    ++result.queries_used;
    for (size_t i = 0; i < estimators.size(); ++i) {
      if (estimates[i] < 0) continue;
      signed_logs[i].push_back(
          SignedLogQError(estimates[i], wq.true_cardinality));
    }
  }

  for (size_t i = 0; i < estimators.size(); ++i) {
    EstimatorReport report;
    report.name = estimators[i]->name();
    report.signed_log_qerror = util::ComputeBoxStats(signed_logs[i]);
    report.failures = failures[i];
    report.total_seconds = seconds[i];
    result.reports.push_back(std::move(report));
  }
  return result;
}

SuiteResult RunOptimisticSuite(
    const stats::MarkovTable& markov, const stats::CycleClosingRates* rates,
    OptimisticCeg kind, const std::vector<query::WorkloadQuery>& workload,
    size_t pstar_max_paths) {
  std::vector<OptimisticSpec> specs = AllOptimisticSpecs(kind);
  SuiteResult result;
  std::vector<std::vector<double>> signed_logs(specs.size() + 1);
  std::vector<size_t> failures(specs.size() + 1, 0);
  std::vector<double> seconds(specs.size() + 1, 0);

  OptimisticSpec builder_spec;
  builder_spec.ceg_kind = kind;
  OptimisticEstimator builder(markov, builder_spec, rates);

  for (const query::WorkloadQuery& wq : workload) {
    const double t0 = Now();
    auto built = builder.BuildCeg(wq.query);
    if (!built.ok()) {
      for (size_t i = 0; i <= specs.size(); ++i) ++failures[i];
      ++result.queries_dropped;
      continue;
    }
    auto aggregates = built->ceg.ComputeAggregates();
    if (!aggregates.ok() || !aggregates->reachable) {
      for (size_t i = 0; i <= specs.size(); ++i) ++failures[i];
      ++result.queries_dropped;
      continue;
    }
    const double build_seconds = Now() - t0;

    ++result.queries_used;
    bool ok_all = true;
    for (size_t i = 0; i < specs.size(); ++i) {
      const double t1 = Now();
      auto est =
          OptimisticEstimator::EstimateFromAggregates(*aggregates, specs[i]);
      seconds[i] += build_seconds + (Now() - t1);
      if (!est.ok()) {
        ++failures[i];
        ok_all = false;
        continue;
      }
      signed_logs[i].push_back(
          SignedLogQError(*est, wq.true_cardinality));
    }
    (void)ok_all;

    // P* oracle.
    const double t2 = Now();
    auto pstar =
        PStarEstimate(built->ceg, wq.true_cardinality, pstar_max_paths);
    seconds[specs.size()] += Now() - t2;
    if (pstar.ok()) {
      signed_logs[specs.size()].push_back(
          SignedLogQError(*pstar, wq.true_cardinality));
    } else {
      ++failures[specs.size()];
    }
  }

  for (size_t i = 0; i < specs.size(); ++i) {
    EstimatorReport report;
    report.name = SpecName(specs[i]);
    report.signed_log_qerror = util::ComputeBoxStats(signed_logs[i]);
    report.failures = failures[i];
    report.total_seconds = seconds[i];
    result.reports.push_back(std::move(report));
  }
  EstimatorReport pstar_report;
  pstar_report.name = kind == OptimisticCeg::kCegOcr ? "P*@ocr" : "P*";
  pstar_report.signed_log_qerror =
      util::ComputeBoxStats(signed_logs[specs.size()]);
  pstar_report.failures = failures[specs.size()];
  pstar_report.total_seconds = seconds[specs.size()];
  result.reports.push_back(std::move(pstar_report));
  return result;
}

void PrintSuiteResult(std::ostream& os, const std::string& title,
                      const SuiteResult& result) {
  os << "== " << title << " (queries=" << result.queries_used
     << ", dropped=" << result.queries_dropped << ") ==\n";
  util::TablePrinter table({"estimator", "p25", "median", "p75",
                            "trimmed-mean", "min", "max", "fail",
                            "avg-ms"});
  for (const EstimatorReport& r : result.reports) {
    const util::BoxStats& s = r.signed_log_qerror;
    table.AddRow({r.name, util::TablePrinter::Num(s.p25),
                  util::TablePrinter::Num(s.median),
                  util::TablePrinter::Num(s.p75),
                  util::TablePrinter::Num(s.trimmed_mean),
                  util::TablePrinter::Num(s.min),
                  util::TablePrinter::Num(s.max),
                  std::to_string(r.failures),
                  util::TablePrinter::Num(r.mean_millis())});
  }
  table.Print(os);
  os << "(signed log10 q-error: negative = underestimation, 0 = perfect)\n\n";
}

}  // namespace cegraph::harness
