#ifndef CEGRAPH_HARNESS_WORKLOAD_RUNNER_H_
#define CEGRAPH_HARNESS_WORKLOAD_RUNNER_H_

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "estimators/estimator.h"
#include "estimators/optimistic.h"
#include "harness/experiment.h"
#include "query/workload.h"
#include "stats/cycle_closing.h"
#include "stats/markov_table.h"

namespace cegraph::harness {

/// Parallelism knobs for full-workload suites.
struct RunnerOptions {
  /// Worker threads; 0 = std::thread::hardware_concurrency(), 1 = serial
  /// (no threads spawned).
  int num_threads = 0;
};

/// Multi-threaded workload execution: queries are distributed over a small
/// thread pool, per-query results land in an index-addressed buffer, and
/// the merge into BoxStats runs serially in workload order — so the
/// accuracy/failure fields of a SuiteResult are identical for any thread
/// count (only the wall-clock timing fields vary run to run).
class WorkloadRunner {
 public:
  explicit WorkloadRunner(RunnerOptions options = {}) : options_(options) {}

  /// The thread count this runner resolves to (>= 1).
  int ResolvedThreads() const;

  /// Runs `fn(i)` for every i in [0, n), spread across the pool. `fn` must
  /// be safe to call concurrently for distinct indices.
  void ForEachIndex(size_t n, const std::function<void(size_t)>& fn) const;

  /// Every estimator over the workload (the parallel core behind
  /// RunEstimatorSuite; same drop semantics).
  SuiteResult RunSuite(
      const std::vector<const CardinalityEstimator*>& estimators,
      const std::vector<query::WorkloadQuery>& workload,
      bool drop_on_any_failure = true) const;

  /// The 9 optimistic estimators + P* oracle over one CEG kind, fetching
  /// each query's CEG through `cache` (exactly one build per query class
  /// per kind; the cache's hit/miss counters expose that invariant).
  SuiteResult RunOptimisticSuite(
      engine::CegCache& cache, const stats::MarkovTable& markov,
      const stats::CycleClosingRates* rates, OptimisticCeg kind,
      const std::vector<query::WorkloadQuery>& workload,
      size_t pstar_max_paths = 200'000) const;

 private:
  RunnerOptions options_;
};

/// Registry-driven suite over a shared engine: resolves `names` through the
/// engine's registry and runs them with a WorkloadRunner. The convenience
/// entry point benches use.
util::StatusOr<SuiteResult> RunSuiteByName(
    const engine::EstimationEngine& engine,
    const std::vector<std::string>& names,
    const std::vector<query::WorkloadQuery>& workload,
    bool drop_on_any_failure = true, RunnerOptions options = {});

}  // namespace cegraph::harness

#endif  // CEGRAPH_HARNESS_WORKLOAD_RUNNER_H_
