#ifndef CEGRAPH_HARNESS_SERVICE_DRIVER_H_
#define CEGRAPH_HARNESS_SERVICE_DRIVER_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "query/workload.h"
#include "service/catalog.h"
#include "service/service.h"
#include "util/status.h"

namespace cegraph::harness {

/// Client-side load knobs for DriveServiceWorkload.
struct ServiceDriverOptions {
  /// Concurrent client threads hammering the service.
  int num_threads = 8;
  /// Full passes over the workload per thread (each thread walks its
  /// stride-interleaved share). Ignored when duration_seconds > 0.
  int passes = 1;
  /// When > 0, loop the workload until the deadline instead of counting
  /// passes — the shape the swap-under-load bench wants.
  double duration_seconds = 0;
  /// When > 1, each thread packs its share into EstimateBatch calls of
  /// this many requests (the wire-v3 shape: one admission decision, one
  /// serving epoch per batch); 1 = one Estimate call per request.
  int batch_size = 1;
  /// Cross-check every response for epoch consistency (see
  /// ServiceRunResult::inconsistent_responses). Requires a deterministic
  /// estimator suite — sampling estimators (wander join) legitimately
  /// answer differently per call and would be flagged.
  bool check_consistency = true;
};

/// What N threads of synthetic clients observed. The consistency fields
/// are the swap-under-load acceptance instrument: a response whose
/// estimate vector does not exactly match the (first-observed,
/// deterministic) answer of its declared epoch was assembled from more
/// than one serving state.
struct ServiceRunResult {
  size_t requests = 0;
  size_t errors = 0;     ///< non-OK responses (parse, labels, rejection)
  size_t rejected = 0;   ///< the ResourceExhausted subset of errors
  size_t estimator_failures = 0;  ///< per-estimator failures inside OK responses
  /// Responses contradicting their epoch's recorded answer vector.
  size_t inconsistent_responses = 0;
  /// Responses whose state_version went backwards within one thread.
  size_t version_regressions = 0;
  std::map<uint64_t, size_t> responses_per_epoch;
  double seconds = 0;
  double mean_latency_micros = 0;  ///< service-measured, over OK responses
  /// Mean q-error across all successful estimator results that carried
  /// ground truth (0 when none).
  double mean_qerror = 0;

  double requests_per_second() const {
    return seconds > 0 ? static_cast<double>(requests) / seconds : 0;
  }
};

/// Drives `workload` against an in-process EstimationService from
/// `options.num_threads` client threads: the service-mode twin of
/// WorkloadRunner. Requests are parsed once up front (workload-line shape,
/// truth included) and shared read-only; each thread walks its
/// stride-interleaved share so all threads touch the full query mix.
/// Thread-safe against concurrent maintenance on the service — that is
/// the point.
ServiceRunResult DriveServiceWorkload(
    const service::EstimationService& service,
    const std::vector<query::WorkloadQuery>& workload,
    const ServiceDriverOptions& options = {});

/// One dataset's share of a catalog drive.
struct CatalogWorkload {
  std::string dataset;
  std::vector<query::WorkloadQuery> workload;
};

/// The multi-dataset twin of DriveServiceWorkload: resolves every named
/// dataset through the catalog (the same routing step the TCP dispatcher
/// performs) and hammers all of them *concurrently*, each with
/// `options.num_threads` client threads and its own epoch-consistency
/// oracle — the per-dataset extension of the swap-under-load instrument.
/// Because the oracles are keyed per dataset, a response that was
/// assembled from (or perturbed by) another dataset's serving state shows
/// up as an inconsistency in its own dataset's result; cross-dataset
/// isolation tests assert exactly that stays zero while one dataset
/// churns. Fails without driving anything if a dataset name does not
/// resolve.
util::StatusOr<std::map<std::string, ServiceRunResult>>
DriveCatalogWorkload(const service::DatasetCatalog& catalog,
                     const std::vector<CatalogWorkload>& workloads,
                     const ServiceDriverOptions& options = {});

}  // namespace cegraph::harness

#endif  // CEGRAPH_HARNESS_SERVICE_DRIVER_H_
