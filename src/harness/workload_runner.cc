#include "harness/workload_runner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "estimators/oracle.h"
#include "harness/qerror.h"

namespace cegraph::harness {

namespace {

double Now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int WorkloadRunner::ResolvedThreads() const {
  if (options_.num_threads > 0) return options_.num_threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void WorkloadRunner::ForEachIndex(
    size_t n, const std::function<void(size_t)>& fn) const {
  const int threads = ResolvedThreads();
  if (threads <= 1 || n <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<size_t> next{0};
  auto worker = [&] {
    for (size_t i = next.fetch_add(1, std::memory_order_relaxed); i < n;
         i = next.fetch_add(1, std::memory_order_relaxed)) {
      fn(i);
    }
  };
  std::vector<std::thread> pool;
  const size_t pool_size =
      std::min<size_t>(static_cast<size_t>(threads), n) - 1;
  pool.reserve(pool_size);
  for (size_t t = 0; t < pool_size; ++t) pool.emplace_back(worker);
  worker();  // the calling thread participates
  for (std::thread& t : pool) t.join();
}

SuiteResult WorkloadRunner::RunSuite(
    const std::vector<const CardinalityEstimator*>& estimators,
    const std::vector<query::WorkloadQuery>& workload,
    bool drop_on_any_failure) const {
  const size_t n_est = estimators.size();
  const size_t n_q = workload.size();

  // Per-query scratch, index-addressed so the merge is order-deterministic
  // regardless of which thread computed what.
  struct PerQuery {
    std::vector<double> estimates;  ///< -1 marks a failure
    std::vector<double> seconds;
  };
  std::vector<PerQuery> per_query(n_q);

  ForEachIndex(n_q, [&](size_t qi) {
    const query::WorkloadQuery& wq = workload[qi];
    PerQuery& out = per_query[qi];
    out.estimates.resize(n_est);
    out.seconds.resize(n_est);
    for (size_t i = 0; i < n_est; ++i) {
      const double t0 = Now();
      auto est = estimators[i]->Estimate(wq.query);
      out.seconds[i] = Now() - t0;
      out.estimates[i] = est.ok() ? *est : -1;
    }
  });

  // Serial merge in workload order: identical results for any thread count.
  SuiteResult result;
  std::vector<std::vector<double>> signed_logs(n_est);
  std::vector<size_t> failures(n_est, 0);
  std::vector<double> seconds(n_est, 0);
  for (size_t qi = 0; qi < n_q; ++qi) {
    const PerQuery& pq = per_query[qi];
    bool any_failed = false;
    for (size_t i = 0; i < n_est; ++i) {
      seconds[i] += pq.seconds[i];
      if (pq.estimates[i] < 0) {
        ++failures[i];
        any_failed = true;
      }
    }
    if (any_failed && drop_on_any_failure) {
      ++result.queries_dropped;
      continue;
    }
    ++result.queries_used;
    for (size_t i = 0; i < n_est; ++i) {
      if (pq.estimates[i] < 0) continue;
      // A zero-truth query (or a degenerate estimate) has no finite
      // q-error; admitting it would poison the box stats with NaN.
      if (!UsableQError(pq.estimates[i], workload[qi].true_cardinality)) {
        continue;
      }
      signed_logs[i].push_back(SignedLogQError(
          pq.estimates[i], workload[qi].true_cardinality));
    }
  }

  for (size_t i = 0; i < n_est; ++i) {
    EstimatorReport report;
    report.name = estimators[i]->name();
    report.signed_log_qerror = util::ComputeBoxStats(signed_logs[i]);
    report.failures = failures[i];
    report.total_seconds = seconds[i];
    report.attempted = n_q;  // every estimator was timed on every query
    result.reports.push_back(std::move(report));
  }
  return result;
}

SuiteResult WorkloadRunner::RunOptimisticSuite(
    engine::CegCache& cache, const stats::MarkovTable& markov,
    const stats::CycleClosingRates* rates, OptimisticCeg kind,
    const std::vector<query::WorkloadQuery>& workload,
    size_t pstar_max_paths) const {
  const std::vector<OptimisticSpec> specs = AllOptimisticSpecs(kind);
  const size_t n_q = workload.size();
  const size_t n_cols = specs.size() + 1;  // + P*

  struct PerQuery {
    bool ceg_ok = false;            ///< build succeeded and sink reachable
    std::vector<double> estimates;  ///< -1 marks a failure; last is P*
    std::vector<double> seconds;
  };
  std::vector<PerQuery> per_query(n_q);

  ForEachIndex(n_q, [&](size_t qi) {
    const query::WorkloadQuery& wq = workload[qi];
    PerQuery& out = per_query[qi];
    out.estimates.assign(n_cols, -1);
    out.seconds.assign(n_cols, 0);

    const double t0 = Now();
    auto entry = cache.GetOrBuild(wq.query, markov, kind, rates);
    if (!entry.ok() || !(*entry)->aggregates_ok ||
        !(*entry)->aggregates.reachable) {
      return;  // ceg_ok stays false; merged as a dropped query
    }
    const double build_seconds = Now() - t0;
    out.ceg_ok = true;
    const engine::CachedCeg& cached = **entry;

    for (size_t i = 0; i < specs.size(); ++i) {
      const double t1 = Now();
      auto est = OptimisticEstimator::EstimateFromAggregates(
          cached.aggregates, specs[i]);
      out.seconds[i] = build_seconds + (Now() - t1);
      if (est.ok()) out.estimates[i] = *est;
    }

    const double t2 = Now();
    auto pstar = PStarEstimate(cached.built.ceg, wq.true_cardinality,
                               pstar_max_paths);
    out.seconds[specs.size()] = Now() - t2;
    if (pstar.ok()) out.estimates[specs.size()] = *pstar;
  });

  SuiteResult result;
  std::vector<std::vector<double>> signed_logs(n_cols);
  std::vector<size_t> failures(n_cols, 0);
  std::vector<double> seconds(n_cols, 0);
  for (size_t qi = 0; qi < n_q; ++qi) {
    const PerQuery& pq = per_query[qi];
    if (!pq.ceg_ok) {
      for (size_t i = 0; i < n_cols; ++i) ++failures[i];
      ++result.queries_dropped;
      continue;
    }
    ++result.queries_used;
    for (size_t i = 0; i < n_cols; ++i) {
      seconds[i] += pq.seconds[i];
      if (pq.estimates[i] < 0) {
        ++failures[i];
        continue;
      }
      if (!UsableQError(pq.estimates[i], workload[qi].true_cardinality)) {
        continue;
      }
      signed_logs[i].push_back(SignedLogQError(
          pq.estimates[i], workload[qi].true_cardinality));
    }
  }

  for (size_t i = 0; i < specs.size(); ++i) {
    EstimatorReport report;
    report.name = SpecName(specs[i]);
    report.signed_log_qerror = util::ComputeBoxStats(signed_logs[i]);
    report.failures = failures[i];
    report.total_seconds = seconds[i];
    // Time is accumulated only for queries whose CEG build succeeded.
    report.attempted = result.queries_used;
    result.reports.push_back(std::move(report));
  }
  EstimatorReport pstar_report;
  pstar_report.name = kind == OptimisticCeg::kCegOcr ? "P*@ocr" : "P*";
  pstar_report.signed_log_qerror =
      util::ComputeBoxStats(signed_logs[specs.size()]);
  pstar_report.failures = failures[specs.size()];
  pstar_report.total_seconds = seconds[specs.size()];
  pstar_report.attempted = result.queries_used;
  result.reports.push_back(std::move(pstar_report));
  return result;
}

util::StatusOr<SuiteResult> RunSuiteByName(
    const engine::EstimationEngine& engine,
    const std::vector<std::string>& names,
    const std::vector<query::WorkloadQuery>& workload,
    bool drop_on_any_failure, RunnerOptions options) {
  auto estimators = engine.Estimators(names);
  if (!estimators.ok()) return estimators.status();
  return WorkloadRunner(options).RunSuite(*estimators, workload,
                                          drop_on_any_failure);
}

}  // namespace cegraph::harness
