#include "harness/qerror.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace cegraph::harness {

double QError(double estimate, double truth) {
  if (truth <= 0) return std::numeric_limits<double>::quiet_NaN();
  if (estimate <= 0) return std::numeric_limits<double>::infinity();
  return std::max(truth / estimate, estimate / truth);
}

double SignedLogQError(double estimate, double truth) {
  const double q = QError(estimate, truth);
  const double magnitude = std::log10(q);
  return estimate < truth ? -magnitude : magnitude;
}

bool UsableQError(double qerror) {
  return std::isfinite(qerror) && qerror > 0;
}

bool UsableQError(double estimate, double truth) {
  return truth > 0 && estimate > 0 && std::isfinite(estimate) &&
         std::isfinite(truth);
}

}  // namespace cegraph::harness
