#include "harness/qerror.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace cegraph::harness {

double QError(double estimate, double truth) {
  if (truth <= 0) return std::numeric_limits<double>::quiet_NaN();
  if (estimate <= 0) return std::numeric_limits<double>::infinity();
  return std::max(truth / estimate, estimate / truth);
}

double SignedLogQError(double estimate, double truth) {
  const double q = QError(estimate, truth);
  const double magnitude = std::log10(q);
  return estimate < truth ? -magnitude : magnitude;
}

}  // namespace cegraph::harness
