#include "stats/char_sets.h"

#include <cmath>

namespace cegraph::stats {

CharacteristicSets::CharacteristicSets(const graph::Graph& g)
    : num_vertices_(g.num_vertices()) {
  std::map<std::set<graph::Label>, Group> by_set;
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    std::set<graph::Label> cs;
    for (graph::Label l = 0; l < g.num_labels(); ++l) {
      if (g.OutDegree(v, l) > 0) cs.insert(l);
    }
    if (cs.empty()) continue;
    Group& group = by_set[cs];
    group.char_set = cs;
    ++group.vertex_count;
    for (graph::Label l : cs) {
      group.label_edges[l] += g.OutDegree(v, l);
    }
  }
  for (auto& [cs, group] : by_set) groups_.push_back(std::move(group));
}

void CharacteristicSets::Save(util::serde::Writer& writer) const {
  writer.WriteU32(num_vertices_);
  writer.WriteU64(groups_.size());
  for (const Group& group : groups_) {
    writer.WriteU64(group.char_set.size());
    for (graph::Label l : group.char_set) writer.WriteU32(l);
    writer.WriteU64(group.vertex_count);
    writer.WriteU64(group.label_edges.size());
    for (const auto& [l, edges] : group.label_edges) {
      writer.WriteU32(l);
      writer.WriteU64(edges);
    }
  }
}

util::StatusOr<CharacteristicSets> CharacteristicSets::Load(
    util::serde::Reader& reader) {
  CharacteristicSets cs;
  auto num_vertices = reader.ReadU32();
  if (!num_vertices.ok()) return num_vertices.status();
  cs.num_vertices_ = *num_vertices;
  auto num_groups = reader.ReadU64();
  if (!num_groups.ok()) return num_groups.status();
  for (uint64_t gi = 0; gi < *num_groups; ++gi) {
    Group group;
    auto set_size = reader.ReadU64();
    if (!set_size.ok()) return set_size.status();
    for (uint64_t i = 0; i < *set_size; ++i) {
      auto l = reader.ReadU32();
      if (!l.ok()) return l.status();
      group.char_set.insert(*l);
    }
    auto vertex_count = reader.ReadU64();
    if (!vertex_count.ok()) return vertex_count.status();
    group.vertex_count = *vertex_count;
    auto num_edges = reader.ReadU64();
    if (!num_edges.ok()) return num_edges.status();
    for (uint64_t i = 0; i < *num_edges; ++i) {
      auto l = reader.ReadU32();
      if (!l.ok()) return l.status();
      auto edges = reader.ReadU64();
      if (!edges.ok()) return edges.status();
      group.label_edges[*l] = *edges;
    }
    if (group.vertex_count == 0) {
      return util::InvalidArgumentError("characteristic-set group with no "
                                        "vertices");
    }
    cs.groups_.push_back(std::move(group));
  }
  return cs;
}

double CharacteristicSets::EstimateStar(
    const std::vector<graph::Label>& labels) const {
  // Count multiplicity per distinct label.
  std::map<graph::Label, int> need;
  for (graph::Label l : labels) ++need[l];

  double total = 0;
  for (const Group& group : groups_) {
    bool covers = true;
    for (const auto& [l, cnt] : need) {
      if (!group.char_set.contains(l)) {
        covers = false;
        break;
      }
    }
    if (!covers) continue;
    double contribution = static_cast<double>(group.vertex_count);
    for (const auto& [l, cnt] : need) {
      const double avg =
          static_cast<double>(group.label_edges.at(l)) /
          static_cast<double>(group.vertex_count);
      contribution *= std::pow(avg, cnt);
    }
    total += contribution;
  }
  return total;
}

}  // namespace cegraph::stats
