#include "stats/char_sets.h"

#include <cmath>
#include <utility>

namespace cegraph::stats {

namespace {

// Fixed strides of the flat arena layout (see char_sets.h).
constexpr size_t kCsHeaderBytes = 32;
constexpr size_t kCsGroupStride = 40;
constexpr size_t kCsEdgeStride = 16;

}  // namespace

CharacteristicSets::CharacteristicSets(const graph::Graph& g)
    : num_vertices_(g.num_vertices()) {
  std::map<std::set<graph::Label>, Group> by_set;
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    std::set<graph::Label> cs;
    for (graph::Label l = 0; l < g.num_labels(); ++l) {
      if (g.OutDegree(v, l) > 0) cs.insert(l);
    }
    if (cs.empty()) continue;
    Group& group = by_set[cs];
    group.char_set = cs;
    ++group.vertex_count;
    for (graph::Label l : cs) {
      group.label_edges[l] += g.OutDegree(v, l);
    }
  }
  for (auto& [cs, group] : by_set) groups_.push_back(std::move(group));
}

void CharacteristicSets::Save(util::serde::Writer& writer) const {
  writer.WriteU32(num_vertices_);
  if (mapped()) {
    // Transcribe the mapped layout into the v2 shape. Group order and
    // per-group label order are preserved, so a save-load round trip stays
    // bit-identical to saving the owned original. Malformed group data
    // (deferred scan failed) degrades to an empty summary.
    if (!MappedGroupsValid()) {
      writer.WriteU64(0);
      return;
    }
    writer.WriteU64(mapped_num_groups_);
    const char* base = mapped_.data();
    for (uint64_t gi = 0; gi < mapped_num_groups_; ++gi) {
      const char* ge = base + kCsHeaderBytes + gi * kCsGroupStride;
      const uint64_t vertex_count = util::LoadLittleU64(ge);
      const uint64_t set_start = util::LoadLittleU64(ge + 8);
      const uint64_t set_count = util::LoadLittleU64(ge + 16);
      const uint64_t edges_start = util::LoadLittleU64(ge + 24);
      writer.WriteU64(set_count);
      for (uint64_t i = 0; i < set_count; ++i) {
        writer.WriteU32(util::LoadLittleU32(base + mapped_labels_off_ +
                                            (set_start + i) * 4));
      }
      writer.WriteU64(vertex_count);
      writer.WriteU64(set_count);  // edges mirror the char set 1:1
      for (uint64_t i = 0; i < set_count; ++i) {
        const char* ee =
            base + mapped_edges_off_ + (edges_start + i) * kCsEdgeStride;
        writer.WriteU32(util::LoadLittleU32(ee));
        writer.WriteU64(util::LoadLittleU64(ee + 8));
      }
    }
    return;
  }
  writer.WriteU64(groups_.size());
  for (const Group& group : groups_) {
    writer.WriteU64(group.char_set.size());
    for (graph::Label l : group.char_set) writer.WriteU32(l);
    writer.WriteU64(group.vertex_count);
    writer.WriteU64(group.label_edges.size());
    for (const auto& [l, edges] : group.label_edges) {
      writer.WriteU32(l);
      writer.WriteU64(edges);
    }
  }
}

util::StatusOr<CharacteristicSets> CharacteristicSets::Load(
    util::serde::Reader& reader) {
  CharacteristicSets cs;
  auto num_vertices = reader.ReadU32();
  if (!num_vertices.ok()) return num_vertices.status();
  cs.num_vertices_ = *num_vertices;
  auto num_groups = reader.ReadU64();
  if (!num_groups.ok()) return num_groups.status();
  for (uint64_t gi = 0; gi < *num_groups; ++gi) {
    Group group;
    auto set_size = reader.ReadU64();
    if (!set_size.ok()) return set_size.status();
    for (uint64_t i = 0; i < *set_size; ++i) {
      auto l = reader.ReadU32();
      if (!l.ok()) return l.status();
      group.char_set.insert(*l);
    }
    auto vertex_count = reader.ReadU64();
    if (!vertex_count.ok()) return vertex_count.status();
    group.vertex_count = *vertex_count;
    auto num_edges = reader.ReadU64();
    if (!num_edges.ok()) return num_edges.status();
    for (uint64_t i = 0; i < *num_edges; ++i) {
      auto l = reader.ReadU32();
      if (!l.ok()) return l.status();
      auto edges = reader.ReadU64();
      if (!edges.ok()) return edges.status();
      group.label_edges[*l] = *edges;
    }
    if (group.vertex_count == 0) {
      return util::InvalidArgumentError("characteristic-set group with no "
                                        "vertices");
    }
    cs.groups_.push_back(std::move(group));
  }
  return cs;
}

std::string CharacteristicSets::SaveArena() const {
  if (mapped()) return std::string(mapped_);
  util::serde::Writer w;
  w.WriteU64(num_vertices_);
  w.WriteU64(groups_.size());
  uint64_t labels_count = 0;
  uint64_t edges_count = 0;
  for (const Group& group : groups_) {
    labels_count += group.char_set.size();
    edges_count += group.label_edges.size();
  }
  w.WriteU64(labels_count);
  w.WriteU64(edges_count);
  uint64_t set_start = 0;
  uint64_t edges_start = 0;
  for (const Group& group : groups_) {
    w.WriteU64(group.vertex_count);
    w.WriteU64(set_start);
    w.WriteU64(group.char_set.size());
    w.WriteU64(edges_start);
    w.WriteU64(group.label_edges.size());
    set_start += group.char_set.size();
    edges_start += group.label_edges.size();
  }
  for (const Group& group : groups_) {
    for (graph::Label l : group.char_set) w.WriteU32(l);
  }
  if (labels_count % 2 != 0) w.WriteU32(0);  // pad labels blob to 8
  for (const Group& group : groups_) {
    for (const auto& [l, edges] : group.label_edges) {
      w.WriteU32(l);
      w.WriteU32(0);  // reserved
      w.WriteU64(edges);
    }
  }
  return w.TakeBuffer();
}

util::StatusOr<CharacteristicSets> CharacteristicSets::AttachMapped(
    std::string_view payload, std::shared_ptr<const void> owner) {
  auto malformed = [](const char* what) {
    return util::InvalidArgumentError(
        std::string("char-sets arena section: ") + what);
  };
  if (payload.size() < kCsHeaderBytes) return malformed("truncated header");
  const char* base = payload.data();
  const uint64_t num_vertices = util::LoadLittleU64(base);
  const uint64_t num_groups = util::LoadLittleU64(base + 8);
  const uint64_t labels_count = util::LoadLittleU64(base + 16);
  const uint64_t edges_count = util::LoadLittleU64(base + 24);
  if (num_vertices > 0xffffffffull) return malformed("vertex count overflow");
  // Sizes are recomputed bottom-up with overflow-safe division checks.
  const size_t avail = payload.size() - kCsHeaderBytes;
  if (num_groups > avail / kCsGroupStride) {
    return malformed("group table exceeds payload");
  }
  const size_t labels_off = kCsHeaderBytes + num_groups * kCsGroupStride;
  if (labels_count > (payload.size() - labels_off) / 4) {
    return malformed("labels blob exceeds payload");
  }
  const size_t labels_bytes = (labels_count * 4 + 7) / 8 * 8;
  const size_t edges_off = labels_off + labels_bytes;
  if (edges_off > payload.size() ||
      edges_count > (payload.size() - edges_off) / kCsEdgeStride) {
    return malformed("edges blob exceeds payload");
  }

  CharacteristicSets cs;
  cs.num_vertices_ = static_cast<uint32_t>(num_vertices);
  cs.mapped_ = payload;
  cs.mapped_owner_ = std::move(owner);
  cs.mapped_num_groups_ = num_groups;
  cs.mapped_labels_off_ = labels_off;
  cs.mapped_edges_off_ = edges_off;
  // The per-group scan is deferred to first use (see CheckMappedGroups)
  // so an arena open pays O(1) here however many groups the graph has.
  cs.mapped_gate_ = std::make_shared<MappedGate>();
  return cs;
}

util::Status CharacteristicSets::CheckMappedGroups() const {
  auto malformed = [](const char* what) {
    return util::InvalidArgumentError(
        std::string("char-sets arena section: ") + what);
  };
  const char* base = mapped_.data();
  const uint64_t labels_count = util::LoadLittleU64(base + 16);
  const uint64_t edges_count = util::LoadLittleU64(base + 24);
  // Strict per-group label ordering and an exact 1:1 labels/edges
  // correspondence (what the graph-scan constructor guarantees), so the
  // mapped EstimateStar can run check-free once this scan passed.
  for (uint64_t gi = 0; gi < mapped_num_groups_; ++gi) {
    const char* ge = base + kCsHeaderBytes + gi * kCsGroupStride;
    const uint64_t vertex_count = util::LoadLittleU64(ge);
    const uint64_t set_start = util::LoadLittleU64(ge + 8);
    const uint64_t set_count = util::LoadLittleU64(ge + 16);
    const uint64_t edges_start = util::LoadLittleU64(ge + 24);
    const uint64_t group_edges = util::LoadLittleU64(ge + 32);
    if (vertex_count == 0) return malformed("group with no vertices");
    if (set_start > labels_count || set_count > labels_count - set_start) {
      return malformed("group label range out of bounds");
    }
    if (edges_start > edges_count ||
        group_edges > edges_count - edges_start) {
      return malformed("group edge range out of bounds");
    }
    if (group_edges != set_count) {
      return malformed("label/edge arity mismatch");
    }
    uint32_t prev = 0;
    for (uint64_t i = 0; i < set_count; ++i) {
      const uint32_t l = util::LoadLittleU32(base + mapped_labels_off_ +
                                             (set_start + i) * 4);
      const uint32_t el = util::LoadLittleU32(
          base + mapped_edges_off_ + (edges_start + i) * kCsEdgeStride);
      if (l != el) return malformed("label/edge key mismatch");
      if (i > 0 && l <= prev) return malformed("labels not ascending");
      prev = l;
    }
  }
  return util::Status::OK();
}

bool CharacteristicSets::MappedGroupsValid() const {
  if (!mapped()) return true;
  std::call_once(mapped_gate_->once, [&] {
    util::Status checked = CheckMappedGroups();
    if (!checked.ok()) mapped_gate_->error = checked.ToString();
    mapped_gate_->valid.store(checked.ok(), std::memory_order_release);
  });
  return mapped_gate_->valid.load(std::memory_order_acquire);
}

util::Status CharacteristicSets::ValidateNow() const {
  if (MappedGroupsValid()) return util::Status::OK();
  return util::InvalidArgumentError(mapped_gate_->error);
}

double CharacteristicSets::EstimateStar(
    const std::vector<graph::Label>& labels) const {
  // Count multiplicity per distinct label.
  std::map<graph::Label, int> need;
  for (graph::Label l : labels) ++need[l];

  if (mapped()) {
    // The mapped twin of the owned loop below: same group order, same
    // need-map iteration, same float-op order — bit-identical estimates.
    // A payload that fails the (deferred, latched) group scan serves as
    // an empty summary: degraded, but never an out-of-bounds read.
    if (!MappedGroupsValid()) return 0;
    const char* base = mapped_.data();
    double total = 0;
    for (uint64_t gi = 0; gi < mapped_num_groups_; ++gi) {
      const char* ge = base + kCsHeaderBytes + gi * kCsGroupStride;
      const uint64_t vertex_count = util::LoadLittleU64(ge);
      const uint64_t set_start = util::LoadLittleU64(ge + 8);
      const uint64_t set_count = util::LoadLittleU64(ge + 16);
      const uint64_t edges_start = util::LoadLittleU64(ge + 24);
      // Binary search the group's sorted label array; a hit's position
      // also indexes the 1:1 edges array (validated at attach).
      auto find_pos = [&](graph::Label l) -> int64_t {
        uint64_t lo = 0, hi = set_count;
        while (lo < hi) {
          const uint64_t mid = (lo + hi) / 2;
          const uint32_t at = util::LoadLittleU32(
              base + mapped_labels_off_ + (set_start + mid) * 4);
          if (at == l) return static_cast<int64_t>(mid);
          if (at < l) {
            lo = mid + 1;
          } else {
            hi = mid;
          }
        }
        return -1;
      };
      bool covers = true;
      for (const auto& [l, cnt] : need) {
        if (find_pos(l) < 0) {
          covers = false;
          break;
        }
      }
      if (!covers) continue;
      double contribution = static_cast<double>(vertex_count);
      for (const auto& [l, cnt] : need) {
        const uint64_t edges = util::LoadLittleU64(
            base + mapped_edges_off_ +
            (edges_start + static_cast<uint64_t>(find_pos(l))) *
                kCsEdgeStride +
            8);
        const double avg = static_cast<double>(edges) /
                           static_cast<double>(vertex_count);
        contribution *= std::pow(avg, cnt);
      }
      total += contribution;
    }
    return total;
  }

  double total = 0;
  for (const Group& group : groups_) {
    bool covers = true;
    for (const auto& [l, cnt] : need) {
      if (!group.char_set.contains(l)) {
        covers = false;
        break;
      }
    }
    if (!covers) continue;
    double contribution = static_cast<double>(group.vertex_count);
    for (const auto& [l, cnt] : need) {
      const double avg =
          static_cast<double>(group.label_edges.at(l)) /
          static_cast<double>(group.vertex_count);
      contribution *= std::pow(avg, cnt);
    }
    total += contribution;
  }
  return total;
}

}  // namespace cegraph::stats
