#include "stats/char_sets.h"

#include <cmath>

namespace cegraph::stats {

CharacteristicSets::CharacteristicSets(const graph::Graph& g)
    : num_vertices_(g.num_vertices()) {
  std::map<std::set<graph::Label>, Group> by_set;
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    std::set<graph::Label> cs;
    for (graph::Label l = 0; l < g.num_labels(); ++l) {
      if (g.OutDegree(v, l) > 0) cs.insert(l);
    }
    if (cs.empty()) continue;
    Group& group = by_set[cs];
    group.char_set = cs;
    ++group.vertex_count;
    for (graph::Label l : cs) {
      group.label_edges[l] += g.OutDegree(v, l);
    }
  }
  for (auto& [cs, group] : by_set) groups_.push_back(std::move(group));
}

double CharacteristicSets::EstimateStar(
    const std::vector<graph::Label>& labels) const {
  // Count multiplicity per distinct label.
  std::map<graph::Label, int> need;
  for (graph::Label l : labels) ++need[l];

  double total = 0;
  for (const Group& group : groups_) {
    bool covers = true;
    for (const auto& [l, cnt] : need) {
      if (!group.char_set.contains(l)) {
        covers = false;
        break;
      }
    }
    if (!covers) continue;
    double contribution = static_cast<double>(group.vertex_count);
    for (const auto& [l, cnt] : need) {
      const double avg =
          static_cast<double>(group.label_edges.at(l)) /
          static_cast<double>(group.vertex_count);
      contribution *= std::pow(avg, cnt);
    }
    total += contribution;
  }
  return total;
}

}  // namespace cegraph::stats
