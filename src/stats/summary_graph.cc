#include "stats/summary_graph.h"

#include <algorithm>
#include <map>

#include "util/random.h"

namespace cegraph::stats {

SummaryGraph::SummaryGraph(const graph::Graph& g, uint32_t target_buckets,
                           uint64_t seed)
    : num_labels_(g.num_labels()) {
  target_buckets = std::max(1u, target_buckets);

  // Bucket assignment: hash of the vertex's label signature (which labels
  // occur on its out- and in-edges), so structurally similar vertices share
  // buckets, mixed with a seed to keep bucketing deterministic but
  // unbiased.
  std::vector<uint32_t> bucket_of(g.num_vertices());
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    uint64_t sig = seed;
    for (graph::Label l = 0; l < g.num_labels(); ++l) {
      if (g.OutDegree(v, l) > 0) sig = util::MixHash(sig ^ (2 * l + 1));
      if (g.InDegree(v, l) > 0) sig = util::MixHash(sig ^ (2 * l + 2));
    }
    bucket_of[v] = static_cast<uint32_t>(sig % target_buckets);
  }

  bucket_size_.assign(target_buckets, 0);
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    ++bucket_size_[bucket_of[v]];
  }

  // Aggregate superedge weights.
  out_.assign(num_labels_, std::vector<std::vector<std::pair<uint32_t,
                                                             double>>>(
                               target_buckets));
  in_.assign(num_labels_, std::vector<std::vector<std::pair<uint32_t,
                                                            double>>>(
                              target_buckets));
  std::map<std::tuple<graph::Label, uint32_t, uint32_t>, double> weights;
  for (const graph::Edge& e : g.edges()) {
    ++weights[{e.label, bucket_of[e.src], bucket_of[e.dst]}];
  }
  for (const auto& [key, w] : weights) {
    const auto& [label, b1, b2] = key;
    out_[label][b1].emplace_back(b2, w);
    in_[label][b2].emplace_back(b1, w);
  }
}

double SummaryGraph::EdgeWeight(uint32_t b1, graph::Label label,
                                uint32_t b2) const {
  for (const auto& [b, w] : out_[label][b1]) {
    if (b == b2) return w;
  }
  return 0;
}

const std::vector<std::pair<uint32_t, double>>& SummaryGraph::OutEdges(
    uint32_t b1, graph::Label label) const {
  return out_[label][b1];
}

const std::vector<std::pair<uint32_t, double>>& SummaryGraph::InEdges(
    uint32_t b2, graph::Label label) const {
  return in_[label][b2];
}

}  // namespace cegraph::stats
