#include "stats/summary_graph.h"

#include <algorithm>
#include <map>
#include <set>
#include <tuple>

#include "util/random.h"

namespace cegraph::stats {

SummaryGraph::SummaryGraph(const graph::Graph& g, uint32_t target_buckets,
                           uint64_t seed)
    : num_labels_(g.num_labels()), seed_(seed) {
  target_buckets = std::max(1u, target_buckets);

  // Bucket assignment: hash of the vertex's label signature (which labels
  // occur on its out- and in-edges), so structurally similar vertices share
  // buckets, mixed with a seed to keep bucketing deterministic but
  // unbiased.
  bucket_size_.assign(target_buckets, 0);
  bucket_of_.resize(g.num_vertices());
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    bucket_of_[v] = BucketOf(g, v);
    ++bucket_size_[bucket_of_[v]];
  }

  // Aggregate superedge weights.
  out_.assign(num_labels_, std::vector<std::vector<std::pair<uint32_t,
                                                             double>>>(
                               target_buckets));
  in_.assign(num_labels_, std::vector<std::vector<std::pair<uint32_t,
                                                            double>>>(
                              target_buckets));
  std::map<std::tuple<graph::Label, uint32_t, uint32_t>, double> weights;
  for (const graph::Edge& e : g.edges()) {
    ++weights[{e.label, bucket_of_[e.src], bucket_of_[e.dst]}];
  }
  for (const auto& [key, w] : weights) {
    const auto& [label, b1, b2] = key;
    out_[label][b1].emplace_back(b2, w);
    in_[label][b2].emplace_back(b1, w);
  }
}

uint32_t SummaryGraph::BucketOf(const graph::Graph& g,
                                graph::VertexId v) const {
  uint64_t sig = seed_;
  for (graph::Label l = 0; l < g.num_labels(); ++l) {
    if (g.OutDegree(v, l) > 0) sig = util::MixHash(sig ^ (2 * l + 1));
    if (g.InDegree(v, l) > 0) sig = util::MixHash(sig ^ (2 * l + 2));
  }
  return static_cast<uint32_t>(sig % num_buckets());
}

void SummaryGraph::EnsureBucketAssignment(const graph::Graph& g) {
  if (!bucket_of_.empty()) return;
  bucket_of_.resize(g.num_vertices());
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    bucket_of_[v] = BucketOf(g, v);
  }
}

void SummaryGraph::AdjustOutWeight(graph::Label label, uint32_t b1,
                                   uint32_t b2, double delta) {
  auto& edges = out_[label][b1];
  auto it = std::lower_bound(
      edges.begin(), edges.end(), b2,
      [](const std::pair<uint32_t, double>& e, uint32_t b) {
        return e.first < b;
      });
  if (it == edges.end() || it->first != b2) {
    it = edges.insert(it, {b2, 0.0});
  }
  it->second += delta;
  if (it->second == 0.0) edges.erase(it);
}

void SummaryGraph::ApplyDeltas(const graph::Graph& old_g,
                               const graph::Graph& new_g,
                               std::span<const graph::Edge> removed,
                               std::span<const graph::Edge> added,
                               size_t* moved_vertices) {
  EnsureBucketAssignment(old_g);

  // 1. Endpoints of the delta are the only vertices whose label signature
  //    (hence bucket) can have changed.
  std::set<graph::VertexId> touched_vertices;
  for (const graph::Edge& e : removed) {
    touched_vertices.insert(e.src);
    touched_vertices.insert(e.dst);
  }
  for (const graph::Edge& e : added) {
    touched_vertices.insert(e.src);
    touched_vertices.insert(e.dst);
  }
  std::vector<std::pair<graph::VertexId, uint32_t>> moves;
  for (graph::VertexId v : touched_vertices) {
    const uint32_t nb = BucketOf(new_g, v);
    if (nb != bucket_of_[v]) moves.emplace_back(v, nb);
  }
  if (moved_vertices != nullptr) *moved_vertices = moves.size();

  // 2. Every edge whose bucket pair can change: the delta edges themselves
  //    plus all old- and new-graph edges incident to a moved vertex. Edges
  //    outside this set keep both endpoints in place, so their superedge
  //    contribution is untouched.
  std::set<std::tuple<graph::Label, graph::VertexId, graph::VertexId>>
      touched_edges;
  for (const graph::Edge& e : removed) {
    touched_edges.insert({e.label, e.src, e.dst});
  }
  for (const graph::Edge& e : added) {
    touched_edges.insert({e.label, e.src, e.dst});
  }
  for (const auto& [v, nb] : moves) {
    for (const graph::Graph* g : {&old_g, &new_g}) {
      for (graph::Label l = 0; l < g->num_labels(); ++l) {
        for (graph::VertexId u : g->OutNeighbors(v, l)) {
          touched_edges.insert({l, v, u});
        }
        for (graph::VertexId u : g->InNeighbors(v, l)) {
          touched_edges.insert({l, u, v});
        }
      }
    }
  }

  // 3. Subtract touched edges present in the old graph under the old
  //    bucket assignment (before any move is applied).
  for (const auto& [l, src, dst] : touched_edges) {
    if (old_g.HasEdge(src, dst, l)) {
      AdjustOutWeight(l, bucket_of_[src], bucket_of_[dst], -1.0);
    }
  }

  // 4. Apply the moves.
  for (const auto& [v, nb] : moves) {
    --bucket_size_[bucket_of_[v]];
    ++bucket_size_[nb];
    bucket_of_[v] = nb;
  }

  // 5. Re-add touched edges present in the new graph under the new
  //    assignment.
  for (const auto& [l, src, dst] : touched_edges) {
    if (new_g.HasEdge(src, dst, l)) {
      AdjustOutWeight(l, bucket_of_[src], bucket_of_[dst], 1.0);
    }
  }

  RebuildInEdges();
}

void SummaryGraph::RebuildInEdges() {
  const uint32_t buckets = num_buckets();
  in_.assign(num_labels_,
             std::vector<std::vector<std::pair<uint32_t, double>>>(buckets));
  // Iterating b1 in ascending order keeps each in_[label][b2] list sorted
  // by source bucket, matching the construction order of the eager path.
  for (graph::Label l = 0; l < num_labels_; ++l) {
    for (uint32_t b1 = 0; b1 < buckets; ++b1) {
      for (const auto& [b2, w] : out_[l][b1]) {
        in_[l][b2].emplace_back(b1, w);
      }
    }
  }
}

void SummaryGraph::Save(util::serde::Writer& writer) const {
  writer.WriteU32(num_labels_);
  writer.WriteU64(bucket_size_.size());
  for (uint64_t size : bucket_size_) writer.WriteU64(size);
  for (graph::Label l = 0; l < num_labels_; ++l) {
    for (uint32_t b1 = 0; b1 < num_buckets(); ++b1) {
      const auto& edges = out_[l][b1];
      writer.WriteU64(edges.size());
      for (const auto& [b2, w] : edges) {
        writer.WriteU32(b2);
        writer.WriteDouble(w);
      }
    }
  }
}

util::StatusOr<SummaryGraph> SummaryGraph::Load(util::serde::Reader& reader) {
  SummaryGraph sg;
  auto num_labels = reader.ReadU32();
  if (!num_labels.ok()) return num_labels.status();
  sg.num_labels_ = *num_labels;
  auto num_buckets = reader.ReadU64();
  if (!num_buckets.ok()) return num_buckets.status();
  // Bound every count by what the remaining payload can actually hold
  // before allocating: each bucket size is a u64 and each (label, bucket)
  // adjacency list costs at least its u64 length prefix, so a corrupted
  // count fails here with a clean error instead of attempting a
  // gigabyte-scale allocation.
  if (*num_buckets == 0 || *num_buckets > reader.remaining() / 8) {
    return util::InvalidArgumentError("implausible summary bucket count");
  }
  sg.bucket_size_.reserve(*num_buckets);
  for (uint64_t b = 0; b < *num_buckets; ++b) {
    auto size = reader.ReadU64();
    if (!size.ok()) return size.status();
    sg.bucket_size_.push_back(*size);
  }
  const uint32_t buckets = sg.num_buckets();
  if (sg.num_labels_ >
      reader.remaining() / 8 / std::max<uint32_t>(1, buckets)) {
    return util::InvalidArgumentError("implausible summary label count");
  }
  sg.out_.assign(sg.num_labels_,
                 std::vector<std::vector<std::pair<uint32_t, double>>>(
                     buckets));
  for (graph::Label l = 0; l < sg.num_labels_; ++l) {
    for (uint32_t b1 = 0; b1 < buckets; ++b1) {
      auto count = reader.ReadU64();
      if (!count.ok()) return count.status();
      auto& edges = sg.out_[l][b1];
      for (uint64_t i = 0; i < *count; ++i) {
        auto b2 = reader.ReadU32();
        if (!b2.ok()) return b2.status();
        auto w = reader.ReadDouble();
        if (!w.ok()) return w.status();
        if (*b2 >= buckets) {
          return util::InvalidArgumentError("superedge bucket out of range");
        }
        edges.emplace_back(*b2, *w);
      }
    }
  }
  sg.RebuildInEdges();
  return sg;
}

double SummaryGraph::EdgeWeight(uint32_t b1, graph::Label label,
                                uint32_t b2) const {
  for (const auto& [b, w] : out_[label][b1]) {
    if (b == b2) return w;
  }
  return 0;
}

const std::vector<std::pair<uint32_t, double>>& SummaryGraph::OutEdges(
    uint32_t b1, graph::Label label) const {
  return out_[label][b1];
}

const std::vector<std::pair<uint32_t, double>>& SummaryGraph::InEdges(
    uint32_t b2, graph::Label label) const {
  return in_[label][b2];
}

}  // namespace cegraph::stats
