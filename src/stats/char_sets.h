#ifndef CEGRAPH_STATS_CHAR_SETS_H_
#define CEGRAPH_STATS_CHAR_SETS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "graph/graph.h"
#include "util/arena.h"
#include "util/serde.h"
#include "util/status.h"

namespace cegraph::stats {

/// The Characteristic Sets summary of Neumann & Moerkotte [22] (§6.4):
/// vertices are grouped by their characteristic set — the set of distinct
/// outgoing edge labels — and, per group, the summary stores the number of
/// member vertices and the total number of outgoing edges per label (from
/// which average per-label multiplicities follow).
class CharacteristicSets {
 public:
  explicit CharacteristicSets(const graph::Graph& g);

  struct Group {
    std::set<graph::Label> char_set;
    uint64_t vertex_count = 0;
    /// label -> total number of outgoing edges with that label across the
    /// group's vertices.
    std::map<graph::Label, uint64_t> label_edges;
  };

  const std::vector<Group>& groups() const { return groups_; }
  uint32_t num_graph_vertices() const { return num_vertices_; }

  /// Estimated number of matches of an out-star whose center emits one
  /// edge per entry of `labels` (labels may repeat): the CS formula
  /// sum over groups G containing all labels of
  ///   |G| * prod_l (avg multiplicity of l in G)^{count(l)}.
  double EstimateStar(const std::vector<graph::Label>& labels) const;

  /// Serializes the whole summary (it is eager, so unlike the lazy memo
  /// caches this is a full Save, not an entry export). Works for mapped
  /// instances too (the mapped layout is transcribed), so a context loaded
  /// from an arena can still be re-saved as v2.
  void Save(util::serde::Writer& writer) const;

  /// Reconstructs a summary previously written by Save. Fails on
  /// truncated/corrupted input.
  static util::StatusOr<CharacteristicSets> Load(util::serde::Reader& reader);

  // ---- Mapped-backing surface (arena snapshot v3) ----
  // CharacteristicSets is eager and read-only between rebuilds, so its
  // mapped mode is total: EstimateStar iterates the arena bytes in place
  // (same group order, same float-op order as the owned path — estimates
  // stay bit-identical). The flat layout:
  //
  //   u64 num_vertices, u64 num_groups, u64 labels_count, u64 edges_count
  //   group table: num_groups x { u64 vertex_count, u64 set_start,
  //       u64 set_count, u64 edges_start, u64 edges_count }   (40 bytes)
  //   labels blob: labels_count x u32 (each group's char-set labels,
  //       strictly ascending), zero-padded to 8
  //   edges blob: edges_count x { u32 label, u32 reserved, u64 count }
  //       (strictly ascending per group)
  //
  // AttachMapped checks the header and blob extents up front (O(1), so
  // arena opens stay O(sections)); the per-group scan that lets
  // EstimateStar run check-free is deferred and latched on first use.

  /// Serializes into the flat arena layout above. For a mapped instance
  /// this is a byte copy of the attached payload.
  std::string SaveArena() const;

  /// Wraps a payload previously written by SaveArena; `owner` keeps the
  /// mapping alive. Fails with a clean Status on any structural defect of
  /// the header or blob extents; per-group defects surface via
  /// ValidateNow (eagerly) or degrade reads to an empty summary (lazily).
  static util::StatusOr<CharacteristicSets> AttachMapped(
      std::string_view payload, std::shared_ptr<const void> owner);

  /// Forces the deferred per-group validation of a mapped instance and
  /// reports the result (always OK for owned instances). Validation-only
  /// snapshot passes call this for full rigor; serving paths instead pay
  /// the one-time scan on first EstimateStar/Save.
  util::Status ValidateNow() const;

  bool mapped() const { return mapped_owner_ != nullptr; }

  /// Group count regardless of backing (groups().size() is owned-only).
  size_t num_groups() const {
    return mapped() ? mapped_num_groups_ : groups_.size();
  }

 private:
  CharacteristicSets() : num_vertices_(0) {}

  /// Runs (or reuses) the deferred per-group scan; false means the group
  /// data is malformed and readers must treat the summary as empty.
  bool MappedGroupsValid() const;
  /// The scan itself: strict per-group label ordering and an exact 1:1
  /// labels/edges correspondence, with a precise error on failure.
  util::Status CheckMappedGroups() const;

  uint32_t num_vertices_;
  std::vector<Group> groups_;

  // Mapped backing (valid iff mapped_owner_ != nullptr). Raw offsets into
  // mapped_; header and blob extents validated by AttachMapped, group
  // records by the latched deferred scan.
  std::string_view mapped_;
  std::shared_ptr<const void> mapped_owner_;
  uint64_t mapped_num_groups_ = 0;
  size_t mapped_labels_off_ = 0;  ///< byte offset of the labels blob
  size_t mapped_edges_off_ = 0;   ///< byte offset of the edges blob

  /// Latch for the deferred scan (heap-held so instances stay movable;
  /// shared across copies, which alias the same immutable payload).
  struct MappedGate {
    std::once_flag once;
    std::atomic<bool> valid{false};
    std::string error;  ///< written inside the once, read-only after
  };
  std::shared_ptr<MappedGate> mapped_gate_;
};

}  // namespace cegraph::stats

#endif  // CEGRAPH_STATS_CHAR_SETS_H_
