#ifndef CEGRAPH_STATS_CHAR_SETS_H_
#define CEGRAPH_STATS_CHAR_SETS_H_

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "graph/graph.h"
#include "util/serde.h"
#include "util/status.h"

namespace cegraph::stats {

/// The Characteristic Sets summary of Neumann & Moerkotte [22] (§6.4):
/// vertices are grouped by their characteristic set — the set of distinct
/// outgoing edge labels — and, per group, the summary stores the number of
/// member vertices and the total number of outgoing edges per label (from
/// which average per-label multiplicities follow).
class CharacteristicSets {
 public:
  explicit CharacteristicSets(const graph::Graph& g);

  struct Group {
    std::set<graph::Label> char_set;
    uint64_t vertex_count = 0;
    /// label -> total number of outgoing edges with that label across the
    /// group's vertices.
    std::map<graph::Label, uint64_t> label_edges;
  };

  const std::vector<Group>& groups() const { return groups_; }
  uint32_t num_graph_vertices() const { return num_vertices_; }

  /// Estimated number of matches of an out-star whose center emits one
  /// edge per entry of `labels` (labels may repeat): the CS formula
  /// sum over groups G containing all labels of
  ///   |G| * prod_l (avg multiplicity of l in G)^{count(l)}.
  double EstimateStar(const std::vector<graph::Label>& labels) const;

  /// Serializes the whole summary (it is eager, so unlike the lazy memo
  /// caches this is a full Save, not an entry export).
  void Save(util::serde::Writer& writer) const;

  /// Reconstructs a summary previously written by Save. Fails on
  /// truncated/corrupted input.
  static util::StatusOr<CharacteristicSets> Load(util::serde::Reader& reader);

 private:
  CharacteristicSets() : num_vertices_(0) {}

  uint32_t num_vertices_;
  std::vector<Group> groups_;
};

}  // namespace cegraph::stats

#endif  // CEGRAPH_STATS_CHAR_SETS_H_
