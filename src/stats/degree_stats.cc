#include "stats/degree_stats.h"

#include <algorithm>
#include <bit>
#include <memory>
#include <utility>

#include "matching/matcher.h"
#include "query/subquery.h"
#include "util/shard.h"

namespace cegraph::stats {

namespace {

using graph::VertexId;
using query::QueryGraph;
using query::QVertex;
using query::VertexSet;

/// Projects `tuple` onto the attribute bitmask `mask`, writing attribute
/// values in ascending attribute order; unused slots are zero.
std::array<VertexId, 3> Project(const std::array<VertexId, 3>& tuple,
                                uint32_t mask) {
  std::array<VertexId, 3> out{};
  size_t k = 0;
  for (uint32_t a = 0; a < 3; ++a) {
    if (mask & (1u << a)) out[k++] = tuple[a];
  }
  return out;
}

}  // namespace

DegreeMap ComputeDegreeMap(
    uint32_t num_attrs,
    const std::vector<std::array<graph::VertexId, 3>>& tuples) {
  DegreeMap dm;
  dm.num_attrs = num_attrs;
  const uint32_t full = (1u << num_attrs) - 1;

  dm.deg[0][0] = 1;
  for (uint32_t y = 0; y <= full; ++y) dm.deg[y][y] = 1;

  for (uint32_t y = 1; y <= full; ++y) {
    // Distinct projections onto Y.
    std::vector<std::array<VertexId, 3>> proj;
    proj.reserve(tuples.size());
    for (const auto& t : tuples) proj.push_back(Project(t, y));
    std::sort(proj.begin(), proj.end());
    proj.erase(std::unique(proj.begin(), proj.end()), proj.end());
    dm.deg[0][y] = static_cast<double>(proj.size());

    // For each proper non-empty subset X of Y: group the distinct
    // Y-projections by their X-part and take the max group size.
    for (uint32_t x = (y - 1) & y; x != 0; x = (x - 1) & y) {
      // Re-sort by the X-part of each distinct Y-tuple. The X-projection of
      // a Y-projected tuple needs the attribute positions *within* Y.
      uint32_t x_in_y = 0;  // bitmask over the packed positions of Y
      {
        uint32_t pos = 0;
        for (uint32_t a = 0; a < 3; ++a) {
          if (!(y & (1u << a))) continue;
          if (x & (1u << a)) x_in_y |= 1u << pos;
          ++pos;
        }
      }
      auto x_part = [&](const std::array<VertexId, 3>& t) {
        std::array<VertexId, 3> out{};
        size_t k = 0;
        for (uint32_t p = 0; p < 3; ++p) {
          if (x_in_y & (1u << p)) out[k++] = t[p];
        }
        return out;
      };
      std::vector<std::array<VertexId, 3>> keys;
      keys.reserve(proj.size());
      for (const auto& t : proj) keys.push_back(x_part(t));
      std::sort(keys.begin(), keys.end());
      double max_group = 0, run = 0;
      for (size_t i = 0; i < keys.size(); ++i) {
        run = (i > 0 && keys[i] == keys[i - 1]) ? run + 1 : 1;
        max_group = std::max(max_group, run);
      }
      dm.deg[x][y] = max_group;
    }
  }
  return dm;
}

namespace {

/// Degree map of base relation `l` from the graph's O(1) CSR summaries.
/// Local attributes: 0 = src (bit 1), 1 = dst (bit 2).
DegreeMap BaseRelationMap(const graph::Graph& g, graph::Label l) {
  DegreeMap dm;
  dm.num_attrs = 2;
  dm.deg[0][0] = 1;
  dm.deg[1][1] = 1;
  dm.deg[2][2] = 1;
  dm.deg[3][3] = 1;
  dm.deg[0][1] = static_cast<double>(g.NumDistinctSources(l));
  dm.deg[0][2] = static_cast<double>(g.NumDistinctDests(l));
  dm.deg[0][3] = static_cast<double>(g.RelationSize(l));
  dm.deg[1][3] = static_cast<double>(g.MaxOutDegree(l));
  dm.deg[2][3] = static_cast<double>(g.MaxInDegree(l));
  return dm;
}

}  // namespace

const DegreeMap& StatsCatalog::BaseRelation(graph::Label l) const {
  // Compute outside the lock (check-compute-insert like every other memo
  // cache here); a race on a cold label recomputes the same values.
  return base_cache_.GetOrCompute(l, [&] {
    if (DegreeMap mapped; FindMappedBase(l, &mapped)) return mapped;
    return BaseRelationMap(g_, l);
  });
}

void StatsCatalog::RefreshBaseRelation(graph::Label l) const {
  base_cache_.Upsert(l, BaseRelationMap(g_, l));
}

const StatsCatalog::JoinStats* StatsCatalog::TwoJoin(
    const query::QueryGraph& pattern) const {
  const std::string key = pattern.CanonicalCode();
  if (const auto* hit = join_cache_.Find(key)) return hit->get();
  // Copy-on-miss from mapped snapshot bytes (over-cap verdicts included).
  if (std::unique_ptr<JoinStats> mapped; FindMappedJoin(key, &mapped)) {
    return join_cache_.Insert(key, std::move(mapped)).get();
  }

  matching::Matcher matcher(g_);
  matching::MatchOptions options;
  options.step_budget = materialize_cap_ * 8;
  std::vector<std::array<VertexId, 3>> tuples;
  bool over_cap = false;
  auto status = matcher.Enumerate(
      pattern, options,
      [&](const std::vector<VertexId>& assignment) {
        std::array<VertexId, 3> t{};
        for (uint32_t v = 0; v < pattern.num_vertices() && v < 3; ++v) {
          t[v] = assignment[v];
        }
        tuples.push_back(t);
        if (tuples.size() > materialize_cap_) {
          over_cap = true;
          return false;
        }
        return true;
      });
  if (!status.ok() || over_cap) {
    return join_cache_.Insert(key, nullptr).get();
  }
  auto stats = std::make_unique<JoinStats>();
  stats->representative = pattern;
  stats->deg = ComputeDegreeMap(pattern.num_vertices(), tuples);
  stats->cardinality = static_cast<double>(tuples.size());
  return join_cache_.Insert(key, std::move(stats)).get();
}

namespace {

void WriteDegreeMap(util::serde::Writer& writer, const DegreeMap& dm) {
  writer.WriteU32(dm.num_attrs);
  for (uint32_t x = 0; x < 8; ++x) {
    for (uint32_t y = 0; y < 8; ++y) writer.WriteDouble(dm.deg[x][y]);
  }
}

util::StatusOr<DegreeMap> ReadDegreeMap(util::serde::Reader& reader) {
  DegreeMap dm;
  auto num_attrs = reader.ReadU32();
  if (!num_attrs.ok()) return num_attrs.status();
  if (*num_attrs > 3) {
    return util::InvalidArgumentError("degree map with > 3 attributes");
  }
  dm.num_attrs = *num_attrs;
  for (uint32_t x = 0; x < 8; ++x) {
    for (uint32_t y = 0; y < 8; ++y) {
      auto v = reader.ReadDouble();
      if (!v.ok()) return v.status();
      dm.deg[x][y] = *v;
    }
  }
  return dm;
}

void WriteQueryGraph(util::serde::Writer& writer, const QueryGraph& q) {
  writer.WriteU32(q.num_vertices());
  writer.WriteU32(q.num_edges());
  for (const query::QueryEdge& e : q.edges()) {
    writer.WriteU32(e.src);
    writer.WriteU32(e.dst);
    writer.WriteU32(e.label);
  }
  const bool constrained = q.has_vertex_constraints();
  writer.WriteU32(constrained ? q.num_vertices() : 0);
  if (constrained) {
    for (QVertex v = 0; v < q.num_vertices(); ++v) {
      writer.WriteU32(q.vertex_constraint(v));
    }
  }
}

util::StatusOr<QueryGraph> ReadQueryGraph(util::serde::Reader& reader) {
  auto num_vertices = reader.ReadU32();
  if (!num_vertices.ok()) return num_vertices.status();
  auto num_edges = reader.ReadU32();
  if (!num_edges.ok()) return num_edges.status();
  // A cached pattern has at most a handful of edges; an absurd count is a
  // corruption signature, caught before any allocation.
  if (*num_vertices > 64 || *num_edges > 64) {
    return util::InvalidArgumentError("implausible cached pattern size");
  }
  std::vector<query::QueryEdge> edges;
  edges.reserve(*num_edges);
  for (uint32_t i = 0; i < *num_edges; ++i) {
    auto src = reader.ReadU32();
    if (!src.ok()) return src.status();
    auto dst = reader.ReadU32();
    if (!dst.ok()) return dst.status();
    auto label = reader.ReadU32();
    if (!label.ok()) return label.status();
    edges.push_back({*src, *dst, *label});
  }
  auto num_constraints = reader.ReadU32();
  if (!num_constraints.ok()) return num_constraints.status();
  if (*num_constraints != 0 && *num_constraints != *num_vertices) {
    return util::InvalidArgumentError("constraint arity mismatch");
  }
  std::vector<graph::VertexLabel> constraints;
  for (uint32_t i = 0; i < *num_constraints; ++i) {
    auto c = reader.ReadU32();
    if (!c.ok()) return c.status();
    constraints.push_back(*c);
  }
  return QueryGraph::Create(*num_vertices, std::move(edges),
                            std::move(constraints));
}

}  // namespace

void StatsCatalog::ExportEntries(util::serde::Writer& writer, uint32_t shard,
                                 uint32_t num_shards) const {
  std::vector<std::pair<graph::Label, DegreeMap>> bases;
  bases.reserve(base_cache_.size());
  base_cache_.ForEach([&](const graph::Label& l, const DegreeMap& dm) {
    if (util::InShard(util::StableHash64(static_cast<uint64_t>(l)), shard,
                      num_shards)) {
      bases.emplace_back(l, dm);
    }
  });
  writer.WriteU64(bases.size());
  for (const auto& [l, dm] : bases) {
    writer.WriteU32(l);
    WriteDegreeMap(writer, dm);
  }

  // JoinStats pointers are node-stable, so collecting them under the lock
  // and serializing outside is safe.
  std::vector<std::pair<std::string, const JoinStats*>> joins;
  joins.reserve(join_cache_.size());
  join_cache_.ForEach(
      [&](const std::string& key, const std::unique_ptr<JoinStats>& js) {
        if (util::InShard(util::StableHash64(key), shard, num_shards)) {
          joins.emplace_back(key, js.get());
        }
      });
  writer.WriteU64(joins.size());
  for (const auto& [key, js] : joins) {
    writer.WriteString(key);
    writer.WriteU8(js != nullptr ? 1 : 0);  // 0 = over-cap verdict
    if (js != nullptr) {
      WriteQueryGraph(writer, js->representative);
      WriteDegreeMap(writer, js->deg);
      writer.WriteDouble(js->cardinality);
    }
  }
}

util::Status StatsCatalog::ImportEntries(util::serde::Reader& reader) const {
  auto num_bases = reader.ReadU64();
  if (!num_bases.ok()) return num_bases.status();
  for (uint64_t i = 0; i < *num_bases; ++i) {
    auto label = reader.ReadU32();
    if (!label.ok()) return label.status();
    auto dm = ReadDegreeMap(reader);
    if (!dm.ok()) return dm.status();
    if (*label >= g_.num_labels()) {
      return util::InvalidArgumentError("base-relation label out of range");
    }
    base_cache_.Insert(*label, *dm);
  }

  auto num_joins = reader.ReadU64();
  if (!num_joins.ok()) return num_joins.status();
  for (uint64_t i = 0; i < *num_joins; ++i) {
    auto key = reader.ReadString();
    if (!key.ok()) return key.status();
    auto has_stats = reader.ReadU8();
    if (!has_stats.ok()) return has_stats.status();
    if (*has_stats == 0) {
      join_cache_.Insert(*key, nullptr);
      continue;
    }
    auto representative = ReadQueryGraph(reader);
    if (!representative.ok()) return representative.status();
    auto dm = ReadDegreeMap(reader);
    if (!dm.ok()) return dm.status();
    auto cardinality = reader.ReadDouble();
    if (!cardinality.ok()) return cardinality.status();
    auto js = std::make_unique<JoinStats>();
    js->representative = std::move(*representative);
    js->deg = *dm;
    js->cardinality = *cardinality;
    join_cache_.Insert(*key, std::move(js));
  }
  return util::Status::OK();
}

namespace {

/// Arena index key of base relation `l`: the 8 LE bytes StableHash64's
/// u64 overload hashes, so index-probe hash == shard hash of the label.
std::string LabelKeyBytes(graph::Label l) {
  std::string bytes(8, '\0');
  const uint64_t v = l;
  for (int i = 0; i < 8; ++i) bytes[i] = static_cast<char>(v >> (8 * i));
  return bytes;
}

util::StatusOr<graph::Label> LabelFromKeyBytes(std::string_view bytes) {
  if (bytes.size() != 8) {
    return util::InvalidArgumentError("base-relation arena key malformed");
  }
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = v << 8 | static_cast<uint8_t>(bytes[i]);
  }
  if (v > 0xffffffffull) {
    return util::InvalidArgumentError("base-relation label out of range");
  }
  return static_cast<graph::Label>(v);
}

/// The one serialized shape of a two-join value (shared by the arena
/// export, mapped probe and materialization): u8 has_stats, then the
/// JoinStats fields exactly as the v2 section orders them.
void WriteJoinValue(util::serde::Writer& writer,
                    const StatsCatalog::JoinStats* js) {
  writer.WriteU8(js != nullptr ? 1 : 0);  // 0 = over-cap verdict
  if (js != nullptr) {
    WriteQueryGraph(writer, js->representative);
    WriteDegreeMap(writer, js->deg);
    writer.WriteDouble(js->cardinality);
  }
}

/// Decoded two-join value; a held nullptr is the over-cap verdict.
util::StatusOr<std::unique_ptr<StatsCatalog::JoinStats>> ReadJoinValue(
    std::string_view value) {
  util::serde::Reader reader(value);
  auto has_stats = reader.ReadU8();
  if (!has_stats.ok()) return has_stats.status();
  if (*has_stats == 0) {
    if (!reader.AtEnd()) {
      return util::InvalidArgumentError("two-join arena entry malformed");
    }
    return std::unique_ptr<StatsCatalog::JoinStats>(nullptr);
  }
  auto representative = ReadQueryGraph(reader);
  if (!representative.ok()) return representative.status();
  auto dm = ReadDegreeMap(reader);
  if (!dm.ok()) return dm.status();
  auto cardinality = reader.ReadDouble();
  if (!cardinality.ok()) return cardinality.status();
  if (!reader.AtEnd()) {
    return util::InvalidArgumentError("two-join arena entry malformed");
  }
  auto js = std::make_unique<StatsCatalog::JoinStats>();
  js->representative = std::move(*representative);
  js->deg = *dm;
  js->cardinality = *cardinality;
  return js;
}

}  // namespace

bool StatsCatalog::FindMappedBase(graph::Label l, DegreeMap* dm) const {
  if (mapped_bases_.empty()) return false;
  const std::string key = LabelKeyBytes(l);
  for (const auto& [index, owner] : mapped_bases_) {
    auto hit = index.Find(key);
    if (!hit.ok()) continue;  // clean miss or corrupt index: recompute
    util::serde::Reader reader(*hit);
    auto decoded = ReadDegreeMap(reader);
    if (!decoded.ok() || !reader.AtEnd()) continue;
    *dm = *decoded;
    return true;
  }
  return false;
}

bool StatsCatalog::FindMappedJoin(const std::string& key,
                                  std::unique_ptr<JoinStats>* stats) const {
  for (const auto& [index, owner] : mapped_joins_) {
    auto hit = index.Find(key);
    if (!hit.ok()) continue;  // clean miss or corrupt index: recompute
    auto decoded = ReadJoinValue(*hit);
    if (!decoded.ok()) continue;
    *stats = std::move(*decoded);
    return true;
  }
  return false;
}

void StatsCatalog::ExportArenaBases(util::ArenaIndexBuilder& builder,
                                    uint32_t shard,
                                    uint32_t num_shards) const {
  base_cache_.ForEach([&](const graph::Label& l, const DegreeMap& dm) {
    if (util::InShard(util::StableHash64(static_cast<uint64_t>(l)), shard,
                      num_shards)) {
      util::serde::Writer v;
      WriteDegreeMap(v, dm);
      builder.Add(LabelKeyBytes(l), v.TakeBuffer());
    }
  });
}

void StatsCatalog::ExportArenaJoins(util::ArenaIndexBuilder& builder,
                                    uint32_t shard,
                                    uint32_t num_shards) const {
  join_cache_.ForEach(
      [&](const std::string& key, const std::unique_ptr<JoinStats>& js) {
        if (util::InShard(util::StableHash64(key), shard, num_shards)) {
          util::serde::Writer v;
          WriteJoinValue(v, js.get());
          builder.Add(key, v.TakeBuffer());
        }
      });
}

util::Status StatsCatalog::MaterializeFromBases(
    const util::MappedIndex& index) const {
  util::Status decode = util::Status::OK();
  util::Status walk =
      index.Visit([&](std::string_view key, std::string_view value) {
        if (!decode.ok()) return;
        auto label = LabelFromKeyBytes(key);
        util::serde::Reader reader(value);
        auto dm = ReadDegreeMap(reader);
        if (!label.ok() || !dm.ok() || !reader.AtEnd()) {
          decode = util::InvalidArgumentError(
              "base-relation arena entry malformed");
          return;
        }
        if (*label >= g_.num_labels()) {
          decode =
              util::InvalidArgumentError("base-relation label out of range");
          return;
        }
        base_cache_.Insert(*label, *dm);
      });
  if (!walk.ok()) return walk;
  return decode;
}

util::Status StatsCatalog::MaterializeFromJoins(
    const util::MappedIndex& index) const {
  util::Status decode = util::Status::OK();
  util::Status walk =
      index.Visit([&](std::string_view key, std::string_view value) {
        if (!decode.ok()) return;
        auto decoded = ReadJoinValue(value);
        if (!decoded.ok()) {
          decode = decoded.status();
          return;
        }
        join_cache_.Insert(std::string(key), std::move(*decoded));
      });
  if (!walk.ok()) return walk;
  return decode;
}

util::StatusOr<DegreeStats> DegreeStats::Build(const StatsCatalog& catalog,
                                               const query::QueryGraph& q,
                                               bool include_two_joins) {
  DegreeStats out;
  const graph::Graph& g = catalog.graph();

  // One StatRelation per base relation (query edge).
  for (uint32_t ei = 0; ei < q.num_edges(); ++ei) {
    const query::QueryEdge& e = q.edge(ei);
    StatRelation rel;
    rel.description = "edge" + std::to_string(ei) + "(label " +
                      std::to_string(e.label) + ")";
    if (e.src == e.dst) {
      // Self-loop: the relation is constrained to the diagonal.
      rel.attrs = VertexSet{1} << e.src;
      double loops = 0;
      for (const graph::Edge& de : g.RelationEdges(e.label)) {
        loops += (de.src == de.dst);
      }
      rel.deg[{0, 0}] = 1;
      rel.deg[{rel.attrs, rel.attrs}] = 1;
      rel.deg[{0, rel.attrs}] = loops;
      out.relations_.push_back(std::move(rel));
      continue;
    }
    const DegreeMap& dm = catalog.BaseRelation(e.label);
    rel.attrs = (VertexSet{1} << e.src) | (VertexSet{1} << e.dst);
    // Map local bit 0 (src) / bit 1 (dst) to query-vertex bits.
    auto to_query = [&](uint32_t local) {
      VertexSet s = 0;
      if (local & 1u) s |= VertexSet{1} << e.src;
      if (local & 2u) s |= VertexSet{1} << e.dst;
      return s;
    };
    for (uint32_t y = 0; y < 4; ++y) {
      for (uint32_t x = 0; x < 4; ++x) {
        if ((x & y) != x) continue;
        if (dm.Get(x, y) <= 0) continue;
        rel.deg[{to_query(x), to_query(y)}] = dm.Get(x, y);
      }
    }
    out.relations_.push_back(std::move(rel));
  }

  if (!include_two_joins) return out;

  // One StatRelation per connected 2-edge sub-query (§5.1.1).
  for (query::EdgeSet s : query::ConnectedSubsetsOfSize(q, 2)) {
    std::vector<QVertex> vmap;
    const QueryGraph pattern = q.ExtractPattern(s, &vmap);
    const StatsCatalog::JoinStats* js = catalog.TwoJoin(pattern);
    if (js == nullptr) continue;  // too large; skip (bounds stay sound)
    const std::vector<QVertex> iso =
        query::FindIsomorphism(pattern, js->representative);
    if (iso.empty()) {
      return util::InternalError("catalog representative not isomorphic");
    }
    // Map a bitmask over representative vertices to query vertices:
    // representative vertex r corresponds to pattern vertex iso^{-1}(r),
    // which is query vertex vmap[iso^{-1}(r)].
    std::vector<QVertex> rep_to_query(pattern.num_vertices());
    for (QVertex p = 0; p < pattern.num_vertices(); ++p) {
      rep_to_query[iso[p]] = vmap[p];
    }
    auto to_query = [&](uint32_t local) {
      VertexSet out_set = 0;
      for (uint32_t r = 0; r < pattern.num_vertices(); ++r) {
        if (local & (1u << r)) out_set |= VertexSet{1} << rep_to_query[r];
      }
      return out_set;
    };
    StatRelation rel;
    rel.description = "join(" + pattern.CanonicalCode() + ")";
    rel.attrs = to_query((1u << pattern.num_vertices()) - 1);
    const uint32_t full = (1u << pattern.num_vertices()) - 1;
    for (uint32_t y = 0; y <= full; ++y) {
      for (uint32_t x = 0; x <= full; ++x) {
        if ((x & y) != x) continue;
        if (js->deg.Get(x, y) <= 0) continue;
        rel.deg[{to_query(x), to_query(y)}] = js->deg.Get(x, y);
      }
    }
    out.relations_.push_back(std::move(rel));
  }
  return out;
}

}  // namespace cegraph::stats
