#ifndef CEGRAPH_STATS_DISPERSION_H_
#define CEGRAPH_STATS_DISPERSION_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "query/query_graph.h"
#include "util/arena.h"
#include "util/keyed_cache.h"
#include "util/serde.h"
#include "util/status.h"

namespace cegraph::stats {

/// Dispersion statistics of one CEG_O extension step: how *regular* the
/// conditional degree behind the average-degree weight |E|/|I| really is.
/// For each embedding of the intersection pattern I, let X be the number
/// of ways it extends to the pattern E (zero included). Then:
///   mean       = E[X] = |E| / |I|          (the CEG_O edge weight)
///   cv2        = Var[X] / E[X]^2           (squared coefficient of variation;
///                                           0 iff the uniformity assumption
///                                           is exact)
///   entropy    = Shannon entropy (bits) of the distribution of extensions
///                over I-embeddings, normalized by log2 |E| so 1 = maximal
///                regularity (every extension equally likely).
struct ExtensionDispersion {
  double mean = 0;
  double cv2 = 0;
  double entropy = 0;
};

/// Per-graph catalog of extension-dispersion statistics, cached by the
/// isomorphism class of the (E, I) pattern pair. This is the statistics
/// substrate for the paper's §8 future-work estimator ("one can use
/// variance, standard deviation, or entropies of the distributions of
/// small-size joins as edge weights in a CEG ... and pick the
/// minimum-weight, e.g. 'lowest entropy', paths").
class DispersionCatalog {
 public:
  /// `materialize_cap`: extension patterns with more embeddings than this
  /// are not analyzed (Get returns NotFound; callers fall back to a
  /// neutral weight).
  explicit DispersionCatalog(const graph::Graph& g,
                             uint64_t materialize_cap = 2'000'000)
      : g_(g), materialize_cap_(materialize_cap) {}

  DispersionCatalog(const DispersionCatalog&) = delete;
  DispersionCatalog& operator=(const DispersionCatalog&) = delete;

  const graph::Graph& graph() const { return g_; }

  /// Dispersion of extending `intersection` to `pattern`, where
  /// `intersection_edges` selects I's edges within `pattern`'s edge
  /// numbering. `pattern` must have <= 3 edges (Markov-table sized).
  util::StatusOr<ExtensionDispersion> Get(
      const query::QueryGraph& pattern,
      query::EdgeSet intersection_edges) const;

  size_t num_cached() const { return cache_.size(); }

  // ---- Maintenance surface (dynamic layer) ----

  /// Calls `fn(marked_canonical_code, dispersion)` for every cached entry.
  template <typename Fn>
  void VisitEntries(Fn&& fn) const {
    cache_.ForEach(fn);
  }

  /// Re-inserts an entry carried over from a previous graph epoch.
  void UpsertEntry(const std::string& key,
                   const ExtensionDispersion& d) const {
    cache_.Upsert(key, d);
  }

  /// Removes every entry whose key matches `pred`; returns how many were
  /// removed. Keys are canonical codes with intersection edges marked by a
  /// num_labels() offset (see Get), which the predicate must unmark.
  template <typename Pred>
  size_t EvictMatching(Pred&& pred) const {
    return cache_.EraseIf([&](const std::string& key,
                              const ExtensionDispersion&) {
      return pred(key);
    });
  }

  /// Lookup/eviction counters of the memo cache.
  util::CacheCounters cache_counters() const { return cache_.counters(); }

  /// Serializes every cached (pattern class, dispersion) entry — the
  /// dispersion section of a summary snapshot. With num_shards >= 2 only
  /// the entries whose key-hash range is `shard` are written (see
  /// util/shard.h).
  void ExportEntries(util::serde::Writer& writer, uint32_t shard = 0,
                     uint32_t num_shards = 0) const;

  /// Merges previously exported entries (existing entries win). Fails on
  /// truncated/corrupted input.
  util::Status ImportEntries(util::serde::Reader& reader) const;

  // ---- Mapped-backing surface (arena snapshot v3) ----
  // See MarkovTable: memo first, then mapped probe with copy-on-miss;
  // attach/detach run quiesced. Index keys are the marked canonical codes,
  // values the three dispersion doubles.

  /// Serializes entries into an arena hash index (same shard filter as
  /// ExportEntries).
  void ExportArenaEntries(util::ArenaIndexBuilder& builder, uint32_t shard = 0,
                          uint32_t num_shards = 0) const;

  /// Attaches one mapped index; `owner` keeps the mapping alive.
  void AttachMappedIndex(util::MappedIndex index,
                         std::shared_ptr<const void> owner) const {
    mapped_.emplace_back(std::move(index), std::move(owner));
  }

  /// Drops all mapped backing (pre-scrub; see MarkovTable).
  void DetachMappedIndexes() const { mapped_.clear(); }

  size_t num_mapped_indexes() const { return mapped_.size(); }

  /// Decodes every entry of `index` into the memo cache.
  util::Status MaterializeFromIndex(const util::MappedIndex& index) const;

 private:
  bool FindMapped(const std::string& key, ExtensionDispersion* d) const;

  const graph::Graph& g_;
  uint64_t materialize_cap_;
  util::KeyedCache<std::string, ExtensionDispersion> cache_;
  mutable std::vector<std::pair<util::MappedIndex, std::shared_ptr<const void>>>
      mapped_;
};

}  // namespace cegraph::stats

#endif  // CEGRAPH_STATS_DISPERSION_H_
