#ifndef CEGRAPH_STATS_CYCLE_CLOSING_H_
#define CEGRAPH_STATS_CYCLE_CLOSING_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "util/arena.h"
#include "util/keyed_cache.h"
#include "util/random.h"
#include "util/serde.h"
#include "util/status.h"

namespace cegraph::stats {

/// Identifies one cycle-closing statistic P(E_first * E_last | E_close)
/// (§4.3): the probability that a path which *starts* by traversing an
/// edge labeled `first_label` and *ends* by traversing an edge labeled
/// `last_label` is closed into a cycle by an edge labeled `close_label`
/// between the path's endpoints.
///
/// Orientations are relative to the path traversal: `first_forward` is true
/// when the first edge is traversed source-to-destination, and similarly
/// for `last_forward`. `close_from_end` is true when the closing edge runs
/// from the path's end vertex back to its start vertex.
struct ClosingKey {
  graph::Label first_label = 0;
  graph::Label last_label = 0;
  graph::Label close_label = 0;
  bool first_forward = true;
  bool last_forward = true;
  bool close_from_end = true;

  friend bool operator==(const ClosingKey&, const ClosingKey&) = default;
};

struct ClosingKeyHash {
  size_t operator()(const ClosingKey& k) const {
    uint64_t h = k.first_label;
    h = h * 1000003 + k.last_label;
    h = h * 1000003 + k.close_label;
    h = h * 8 + (k.first_forward ? 4 : 0) + (k.last_forward ? 2 : 0) +
        (k.close_from_end ? 1 : 0);
    return static_cast<size_t>(util::MixHash(h));
  }
};

/// Sampling knobs for cycle-closing rates.
struct CycleClosingOptions {
  /// Target number of *completed* walks per statistic (walks that actually
  /// realize a first-label ... last-label path). On sparse graphs most
  /// random walks die before completing, so sampling is adaptive: attempts
  /// continue until this many walks complete or the attempt cap is hit.
  int walks_per_key = 2000;
  /// Attempt cap as a multiple of walks_per_key.
  int max_attempt_factor = 20;
  /// Intermediate hops are sampled uniformly from [0, max_mid_hops]
  /// ("paths of varying lengths", §4.3).
  int max_mid_hops = 3;
  uint64_t seed = 1234;
};

/// The pre-computed cycle-closing-rate statistics of CEG_OCR (§4.3),
/// estimated by random walks ("in our implementation we perform sampling
/// through random walks that start from E_{i-1} and end at E_{i+1}").
///
/// Rates are O(L^3 * 8) entries at most, but are sampled lazily per key so
/// only the statistics the workload actually touches are paid for.
/// Deterministic given the options' seed (each key derives its own stream).
class CycleClosingRates {
 public:
  explicit CycleClosingRates(const graph::Graph& g,
                             const CycleClosingOptions& options = {})
      : g_(g), options_(options) {}

  CycleClosingRates(const CycleClosingRates&) = delete;
  CycleClosingRates& operator=(const CycleClosingRates&) = delete;

  const graph::Graph& graph() const { return g_; }

  /// The closing probability for `key`, in (0, 1]. Uses add-half (Laplace)
  /// smoothing so a rate of exactly zero — which would zero out the whole
  /// CEG path estimate — cannot occur: with c successes out of p completed
  /// walks the rate is (c + 0.5) / (p + 1). Thread-safe (mutex-guarded
  /// memo; each key's walks derive a deterministic stream, so a race on a
  /// cold key recomputes the identical value).
  double Rate(const ClosingKey& key) const;

  size_t num_cached() const { return cache_.size(); }

  // ---- Maintenance surface (dynamic layer) ----

  /// Calls `fn(key, rate)` for every sampled entry.
  template <typename Fn>
  void VisitEntries(Fn&& fn) const {
    cache_.ForEach(fn);
  }

  /// Re-inserts a rate carried over from a previous graph epoch (only valid
  /// when the maintainer proved it cold-equivalent; see
  /// dynamic::StatsMaintainer).
  void UpsertEntry(const ClosingKey& key, double rate) const {
    cache_.Upsert(key, rate);
  }

  /// Removes every entry whose key matches `pred`; returns how many were
  /// removed.
  template <typename Pred>
  size_t EvictMatching(Pred&& pred) const {
    return cache_.EraseIf(
        [&](const ClosingKey& key, const double&) { return pred(key); });
  }

  const CycleClosingOptions& options() const { return options_; }

  /// Lookup/eviction counters of the memo cache.
  util::CacheCounters cache_counters() const { return cache_.counters(); }

  /// Serializes every sampled (key, rate) entry — the cycle-closing section
  /// of a summary snapshot. With num_shards >= 2 only the entries whose
  /// key-hash range is `shard` are written (see util/shard.h).
  void ExportEntries(util::serde::Writer& writer, uint32_t shard = 0,
                     uint32_t num_shards = 0) const;

  /// Merges previously exported entries (existing entries win). Fails on
  /// truncated/corrupted input.
  util::Status ImportEntries(util::serde::Reader& reader) const;

  // ---- Mapped-backing surface (arena snapshot v3) ----
  // See MarkovTable: memo first, then mapped probe with copy-on-miss;
  // attach/detach run quiesced. Index keys are the serialized
  // WriteClosingKey bytes, values 8-byte LE doubles. Rate() has no Status
  // channel, so a corrupted index degrades to a resample (deterministic,
  // so still the cold value), never an error.

  /// Serializes entries into an arena hash index (same shard filter as
  /// ExportEntries).
  void ExportArenaEntries(util::ArenaIndexBuilder& builder, uint32_t shard = 0,
                          uint32_t num_shards = 0) const;

  /// Attaches one mapped index; `owner` keeps the mapping alive.
  void AttachMappedIndex(util::MappedIndex index,
                         std::shared_ptr<const void> owner) const {
    mapped_.emplace_back(std::move(index), std::move(owner));
  }

  /// Drops all mapped backing (pre-scrub; see MarkovTable).
  void DetachMappedIndexes() const { mapped_.clear(); }

  size_t num_mapped_indexes() const { return mapped_.size(); }

  /// Decodes every entry of `index` into the memo cache.
  util::Status MaterializeFromIndex(const util::MappedIndex& index) const;

 private:
  double Sample(const ClosingKey& key) const;
  bool FindMapped(const ClosingKey& key, double* rate) const;

  const graph::Graph& g_;
  CycleClosingOptions options_;
  util::KeyedCache<ClosingKey, double, ClosingKeyHash> cache_;
  mutable std::vector<std::pair<util::MappedIndex, std::shared_ptr<const void>>>
      mapped_;
};

}  // namespace cegraph::stats

#endif  // CEGRAPH_STATS_CYCLE_CLOSING_H_
