#ifndef CEGRAPH_STATS_MARKOV_TABLE_H_
#define CEGRAPH_STATS_MARKOV_TABLE_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "matching/matcher.h"
#include "query/query_graph.h"
#include "util/arena.h"
#include "util/keyed_cache.h"
#include "util/serde.h"
#include "util/status.h"

namespace cegraph::stats {

/// A Markov table of size h (§4.1): the exact cardinality of every join
/// (pattern) with at most `h` edges. This generalizes the XML Markov tables
/// of Aboulnaga et al. [2] to arbitrary connected patterns exactly as the
/// graph-catalogue estimator [20] does.
///
/// The table is *lazy and workload-driven*, matching the paper's setup
/// ("we generated workload-specific Markov tables"): pattern cardinalities
/// are computed on first use with the exact matcher and memoized under the
/// pattern's canonical (isomorphism-invariant) code, so every isomorphic
/// sub-query across the workload shares one entry.
class MarkovTable {
 public:
  /// Creates a size-`h` table over `g`. `h` must be >= 1 (the paper uses
  /// h = 2 and h = 3).
  MarkovTable(const graph::Graph& g, int h)
      : g_(g), matcher_(g), h_(h) {}

  MarkovTable(const MarkovTable&) = delete;
  MarkovTable& operator=(const MarkovTable&) = delete;

  int h() const { return h_; }
  const graph::Graph& graph() const { return g_; }

  /// True iff `pattern` is stored by this table (connected, 1..h edges).
  bool Contains(const query::QueryGraph& pattern) const;

  /// The exact cardinality of `pattern` (which must satisfy
  /// Contains(pattern)). Computed on first use; cached thereafter.
  /// Thread-safe: the memo cache is mutex-guarded so one table can serve
  /// a parallel WorkloadRunner.
  util::StatusOr<double> Cardinality(const query::QueryGraph& pattern) const;

  /// Number of memoized entries (the "Markov table size" the paper reports
  /// in MBs; each entry is one pattern cardinality).
  size_t num_entries() const { return cache_.size(); }

  /// Serializes every memoized (canonical code, cardinality) entry — the
  /// Markov section of a summary snapshot. With num_shards >= 2 only the
  /// entries whose key-hash range is `shard` are written (the sharded
  /// snapshot layer; see util/shard.h — the union over all shards is
  /// exactly the unsharded export).
  void ExportEntries(util::serde::Writer& writer, uint32_t shard = 0,
                     uint32_t num_shards = 0) const;

  /// Merges previously exported entries into the memo cache (existing
  /// entries win, though for one graph the values are identical by
  /// construction). Fails on truncated/corrupted input.
  util::Status ImportEntries(util::serde::Reader& reader) const;

  // ---- Mapped-backing surface (arena snapshot v3) ----
  // The mapped-or-owned storage model: lookups consult the memo cache
  // first, then any attached read-only arena indexes (snapshot bytes served
  // in place off the page cache), and copy a mapped hit into the memo on
  // first touch (copy-on-miss). Writes always go to the memo, so the
  // dynamic layer's upsert/evict machinery is unchanged. Attach/detach must
  // run quiesced (load / maintenance time), like every other maintenance
  // operation; concurrent estimation only ever *reads* the index list.

  /// Serializes entries into an arena hash index — the v3 analogue of
  /// ExportEntries (key = canonical code bytes, value = 8-byte LE double;
  /// same shard filter).
  void ExportArenaEntries(util::ArenaIndexBuilder& builder, uint32_t shard = 0,
                          uint32_t num_shards = 0) const;

  /// Attaches one mapped index; `owner` keeps the mapping alive.
  void AttachMappedIndex(util::MappedIndex index,
                         std::shared_ptr<const void> owner) const {
    mapped_.emplace_back(std::move(index), std::move(owner));
  }

  /// Drops all mapped backing. The dynamic layer calls this before
  /// scrubbing: a scrub can only evict memo entries, and a still-attached
  /// index would resurrect pre-delta values.
  void DetachMappedIndexes() const { mapped_.clear(); }

  size_t num_mapped_indexes() const { return mapped_.size(); }

  /// Decodes every entry of `index` into the memo cache (stale snapshot
  /// loads materialize-then-scrub; cross-format verification).
  util::Status MaterializeFromIndex(const util::MappedIndex& index) const;

  // ---- Maintenance surface (dynamic layer) ----
  // These exist for dynamic::StatsMaintainer: migrating entries onto a new
  // graph epoch and scrubbing entries invalidated by an edge delta. They
  // must run quiesced (no concurrent estimation), like every maintenance
  // operation.

  /// Calls `fn(canonical_code, cardinality)` for every memoized entry.
  template <typename Fn>
  void VisitEntries(Fn&& fn) const {
    cache_.ForEach(fn);
  }

  /// Inserts or overwrites one memo entry with an externally computed exact
  /// value (e.g. a 1-edge pattern refreshed from the new graph's O(1)
  /// relation size).
  void UpsertEntry(const std::string& canonical_code,
                   double cardinality) const {
    cache_.Upsert(canonical_code, cardinality);
  }

  /// Removes every entry whose canonical code matches `pred`; returns how
  /// many were removed.
  template <typename Pred>
  size_t EvictMatching(Pred&& pred) const {
    return cache_.EraseIf(
        [&](const std::string& key, const double&) { return pred(key); });
  }

  /// Lookup/eviction counters of the memo cache.
  util::CacheCounters cache_counters() const { return cache_.counters(); }

  /// Approximate resident size of the table in bytes. The paper reports
  /// < 0.6 MB for any workload-dataset combination at h <= 3; this accessor
  /// lets benches verify the same property for the lazy tables here.
  /// Accounts for the real unordered_map footprint, not just payload: per
  /// entry the std::string object + heap characters (SSO-aware), the double,
  /// and the hash node overhead (next pointer + cached hash); plus the
  /// bucket array.
  size_t ApproximateSizeBytes() const;

 private:
  /// Mapped probe after a memo miss; false on a clean miss *or* on a
  /// corrupted index (the caller recomputes — corruption on this no-Status
  /// path degrades to a cache miss, never an error).
  bool FindMapped(const std::string& key, double* value) const;

  const graph::Graph& g_;
  matching::Matcher matcher_;
  int h_;
  util::KeyedCache<std::string, double> cache_;
  mutable std::vector<std::pair<util::MappedIndex, std::shared_ptr<const void>>>
      mapped_;
};

}  // namespace cegraph::stats

#endif  // CEGRAPH_STATS_MARKOV_TABLE_H_
