#include "stats/markov_table.h"

#include <utility>
#include <vector>

#include "util/shard.h"

namespace cegraph::stats {

bool MarkovTable::Contains(const query::QueryGraph& pattern) const {
  return pattern.num_edges() >= 1 &&
         pattern.num_edges() <= static_cast<uint32_t>(h_) &&
         pattern.IsConnected();
}

util::StatusOr<double> MarkovTable::Cardinality(
    const query::QueryGraph& pattern) const {
  if (!Contains(pattern)) {
    return util::InvalidArgumentError(
        "pattern not covered by this Markov table");
  }
  const std::string key = pattern.CanonicalCode();
  if (const double* hit = cache_.Find(key)) return *hit;
  // Copy-on-miss from mapped snapshot bytes: a hit is decoded off the
  // arena and memoized, so the page-cache probe is paid once per entry.
  if (double mapped_value; FindMapped(key, &mapped_value)) {
    return cache_.Insert(key, mapped_value);
  }
  // Count outside the lock: exact matching dominates, and two threads
  // racing on the same cold pattern just compute the same value twice.
  auto count = matcher_.Count(pattern);
  if (!count.ok()) return count.status();
  return cache_.Insert(key, *count);
}

bool MarkovTable::FindMapped(const std::string& key, double* value) const {
  for (const auto& [index, owner] : mapped_) {
    auto hit = index.Find(key);
    if (!hit.ok()) continue;  // clean miss or corrupt index: recompute
    util::serde::Reader reader(*hit);
    auto decoded = reader.ReadDouble();
    if (!decoded.ok() || !reader.AtEnd()) continue;
    *value = *decoded;
    return true;
  }
  return false;
}

void MarkovTable::ExportArenaEntries(util::ArenaIndexBuilder& builder,
                                     uint32_t shard,
                                     uint32_t num_shards) const {
  cache_.ForEach([&](const std::string& key, const double& value) {
    if (util::InShard(util::StableHash64(key), shard, num_shards)) {
      util::serde::Writer v;
      v.WriteDouble(value);
      builder.Add(key, v.TakeBuffer());
    }
  });
}

util::Status MarkovTable::MaterializeFromIndex(
    const util::MappedIndex& index) const {
  util::Status decode = util::Status::OK();
  util::Status walk =
      index.Visit([&](std::string_view key, std::string_view value) {
        if (!decode.ok()) return;
        util::serde::Reader reader(value);
        auto decoded = reader.ReadDouble();
        if (!decoded.ok() || !reader.AtEnd()) {
          decode = util::InvalidArgumentError("markov arena entry malformed");
          return;
        }
        cache_.Insert(std::string(key), *decoded);
      });
  if (!walk.ok()) return walk;
  return decode;
}

size_t MarkovTable::ApproximateSizeBytes() const {
  if (cache_.size() == 0) return 0;
  // libstdc++-style hash node: next pointer + cached hash code per entry.
  constexpr size_t kNodeOverhead = 2 * sizeof(void*);
  size_t bytes = cache_.bucket_count() * sizeof(void*);
  cache_.ForEach([&](const std::string& key, const double& value) {
    bytes += sizeof(key) + sizeof(value) + kNodeOverhead;
    // The key's characters live on the heap unless the small-string buffer
    // holds them (detected by whether data() points into the object).
    const char* data = key.data();
    const char* obj = reinterpret_cast<const char*>(&key);
    const bool small_string = data >= obj && data < obj + sizeof(key);
    if (!small_string) bytes += key.capacity() + 1;
  });
  return bytes;
}

void MarkovTable::ExportEntries(util::serde::Writer& writer, uint32_t shard,
                                uint32_t num_shards) const {
  // Snapshot the entries first (ForEach holds the cache lock; writing while
  // holding it would be fine too, but keeping the critical section minimal
  // matches the rest of the library).
  std::vector<std::pair<std::string, double>> entries;
  entries.reserve(cache_.size());
  cache_.ForEach([&](const std::string& key, const double& value) {
    if (util::InShard(util::StableHash64(key), shard, num_shards)) {
      entries.emplace_back(key, value);
    }
  });
  writer.WriteU64(entries.size());
  for (const auto& [key, value] : entries) {
    writer.WriteString(key);
    writer.WriteDouble(value);
  }
}

util::Status MarkovTable::ImportEntries(util::serde::Reader& reader) const {
  auto count = reader.ReadU64();
  if (!count.ok()) return count.status();
  for (uint64_t i = 0; i < *count; ++i) {
    auto key = reader.ReadString();
    if (!key.ok()) return key.status();
    auto value = reader.ReadDouble();
    if (!value.ok()) return value.status();
    cache_.Insert(*key, *value);
  }
  return util::Status::OK();
}

}  // namespace cegraph::stats
