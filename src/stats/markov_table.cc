#include "stats/markov_table.h"

namespace cegraph::stats {

bool MarkovTable::Contains(const query::QueryGraph& pattern) const {
  return pattern.num_edges() >= 1 &&
         pattern.num_edges() <= static_cast<uint32_t>(h_) &&
         pattern.IsConnected();
}

util::StatusOr<double> MarkovTable::Cardinality(
    const query::QueryGraph& pattern) const {
  if (!Contains(pattern)) {
    return util::InvalidArgumentError(
        "pattern not covered by this Markov table");
  }
  const std::string key = pattern.CanonicalCode();
  auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;
  auto count = matcher_.Count(pattern);
  if (!count.ok()) return count.status();
  cache_.emplace(key, *count);
  return *count;
}

}  // namespace cegraph::stats
