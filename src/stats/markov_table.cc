#include "stats/markov_table.h"

namespace cegraph::stats {

bool MarkovTable::Contains(const query::QueryGraph& pattern) const {
  return pattern.num_edges() >= 1 &&
         pattern.num_edges() <= static_cast<uint32_t>(h_) &&
         pattern.IsConnected();
}

util::StatusOr<double> MarkovTable::Cardinality(
    const query::QueryGraph& pattern) const {
  if (!Contains(pattern)) {
    return util::InvalidArgumentError(
        "pattern not covered by this Markov table");
  }
  const std::string key = pattern.CanonicalCode();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = cache_.find(key);
    if (it != cache_.end()) return it->second;
  }
  // Count outside the lock: exact matching dominates, and two threads
  // racing on the same cold pattern just compute the same value twice.
  auto count = matcher_.Count(pattern);
  if (!count.ok()) return count.status();
  std::lock_guard<std::mutex> lock(mutex_);
  cache_.emplace(key, *count);
  return *count;
}

size_t MarkovTable::ApproximateSizeBytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (cache_.empty()) return 0;
  // libstdc++-style hash node: next pointer + cached hash code per entry.
  constexpr size_t kNodeOverhead = 2 * sizeof(void*);
  size_t bytes = cache_.bucket_count() * sizeof(void*);
  for (const auto& [key, value] : cache_) {
    bytes += sizeof(key) + sizeof(value) + kNodeOverhead;
    // The key's characters live on the heap unless the small-string buffer
    // holds them (detected by whether data() points into the object).
    const char* data = key.data();
    const char* obj = reinterpret_cast<const char*>(&key);
    const bool small_string = data >= obj && data < obj + sizeof(key);
    if (!small_string) bytes += key.capacity() + 1;
  }
  return bytes;
}

}  // namespace cegraph::stats
