#include "stats/dispersion.h"

#include <cmath>
#include <map>
#include <utility>
#include <vector>

#include "matching/matcher.h"
#include "query/subquery.h"
#include "util/shard.h"

namespace cegraph::stats {

namespace {

using graph::VertexId;
using query::EdgeSet;
using query::QueryGraph;
using query::QVertex;

}  // namespace

util::StatusOr<ExtensionDispersion> DispersionCatalog::Get(
    const query::QueryGraph& pattern, query::EdgeSet intersection_edges)
    const {
  if (pattern.num_edges() == 0 || pattern.num_edges() > 3) {
    return util::InvalidArgumentError("pattern must have 1..3 edges");
  }
  if ((intersection_edges & pattern.AllEdges()) != intersection_edges) {
    return util::InvalidArgumentError("intersection outside pattern");
  }

  // Cache key: canonical code of the pattern with intersection edges
  // distinguished by a label offset (sound: equal keys imply an
  // isomorphism mapping I to I).
  std::string key;
  {
    std::vector<query::QueryEdge> marked = pattern.edges();
    const graph::Label offset = g_.num_labels();
    for (uint32_t i = 0; i < marked.size(); ++i) {
      if (intersection_edges & (EdgeSet{1} << i)) marked[i].label += offset;
    }
    auto marked_q =
        QueryGraph::Create(pattern.num_vertices(), std::move(marked));
    if (!marked_q.ok()) return marked_q.status();
    key = marked_q->CanonicalCode();
  }
  if (const ExtensionDispersion* hit = cache_.Find(key)) return *hit;
  // Copy-on-miss from mapped snapshot bytes.
  if (ExtensionDispersion mapped; FindMapped(key, &mapped)) {
    return cache_.Insert(key, mapped);
  }

  matching::Matcher matcher(g_);
  ExtensionDispersion result;

  if (intersection_edges == 0) {
    // First hop: the "distribution" is a single cell, |E| ways.
    auto count = matcher.Count(pattern);
    if (!count.ok()) return count.status();
    result.mean = *count;
    result.cv2 = 0;
    result.entropy = 1;
    return cache_.Insert(key, result);
  }

  // Vertices of the intersection within the pattern.
  const query::VertexSet i_vertices = pattern.VerticesOf(intersection_edges);
  std::vector<QVertex> i_vertex_list;
  for (QVertex v = 0; v < pattern.num_vertices(); ++v) {
    if (i_vertices & (query::VertexSet{1} << v)) i_vertex_list.push_back(v);
  }

  // Count E-embeddings grouped by their I-projection.
  std::map<std::vector<VertexId>, double> groups;
  matching::MatchOptions options;
  options.step_budget = materialize_cap_ * 8;
  uint64_t total = 0;
  bool over_cap = false;
  auto status = matcher.Enumerate(
      pattern, options, [&](const std::vector<VertexId>& assignment) {
        std::vector<VertexId> i_part;
        i_part.reserve(i_vertex_list.size());
        for (QVertex v : i_vertex_list) i_part.push_back(assignment[v]);
        ++groups[std::move(i_part)];
        if (++total > materialize_cap_) {
          over_cap = true;
          return false;
        }
        return true;
      });
  if (!status.ok()) return status;
  if (over_cap) {
    return util::NotFoundError("extension too large to analyze");
  }

  // Number of I-embeddings (groups with zero extensions included).
  const QueryGraph i_pattern = pattern.ExtractPattern(intersection_edges);
  auto i_count = matcher.Count(i_pattern);
  if (!i_count.ok()) return i_count.status();
  const double n_i = *i_count;
  const double n_e = static_cast<double>(total);
  if (n_i <= 0) {
    return util::NotFoundError("empty intersection pattern");
  }

  result.mean = n_e / n_i;
  double sum_sq = 0;
  double entropy = 0;
  for (const auto& [i_part, count] : groups) {
    sum_sq += count * count;
    if (n_e > 0) {
      const double p = count / n_e;
      entropy -= p * std::log2(p);
    }
  }
  const double ex2 = sum_sq / n_i;
  result.cv2 =
      result.mean > 0 ? std::max(0.0, ex2 / (result.mean * result.mean) - 1)
                      : 0;
  // Normalize by the maximum achievable entropy log2(n_i): a perfectly
  // regular extension spreads uniformly over all I-embeddings (entropy
  // log2(n_i), normalized 1); a degenerate single-group distribution has
  // entropy 0.
  result.entropy =
      n_i > 1 ? std::min(1.0, entropy / std::log2(n_i)) : 1.0;
  return cache_.Insert(key, result);
}

void DispersionCatalog::ExportEntries(util::serde::Writer& writer,
                                      uint32_t shard,
                                      uint32_t num_shards) const {
  std::vector<std::pair<std::string, ExtensionDispersion>> entries;
  entries.reserve(cache_.size());
  cache_.ForEach([&](const std::string& key, const ExtensionDispersion& d) {
    if (util::InShard(util::StableHash64(key), shard, num_shards)) {
      entries.emplace_back(key, d);
    }
  });
  writer.WriteU64(entries.size());
  for (const auto& [key, d] : entries) {
    writer.WriteString(key);
    writer.WriteDouble(d.mean);
    writer.WriteDouble(d.cv2);
    writer.WriteDouble(d.entropy);
  }
}

util::Status DispersionCatalog::ImportEntries(
    util::serde::Reader& reader) const {
  auto count = reader.ReadU64();
  if (!count.ok()) return count.status();
  for (uint64_t i = 0; i < *count; ++i) {
    auto key = reader.ReadString();
    if (!key.ok()) return key.status();
    ExtensionDispersion d;
    auto mean = reader.ReadDouble();
    if (!mean.ok()) return mean.status();
    auto cv2 = reader.ReadDouble();
    if (!cv2.ok()) return cv2.status();
    auto entropy = reader.ReadDouble();
    if (!entropy.ok()) return entropy.status();
    d.mean = *mean;
    d.cv2 = *cv2;
    d.entropy = *entropy;
    cache_.Insert(*key, d);
  }
  return util::Status::OK();
}

namespace {

util::StatusOr<ExtensionDispersion> ReadDispersionValue(
    std::string_view value) {
  util::serde::Reader reader(value);
  ExtensionDispersion d;
  auto mean = reader.ReadDouble();
  if (!mean.ok()) return mean.status();
  auto cv2 = reader.ReadDouble();
  if (!cv2.ok()) return cv2.status();
  auto entropy = reader.ReadDouble();
  if (!entropy.ok()) return entropy.status();
  if (!reader.AtEnd()) {
    return util::InvalidArgumentError("dispersion arena entry malformed");
  }
  d.mean = *mean;
  d.cv2 = *cv2;
  d.entropy = *entropy;
  return d;
}

}  // namespace

bool DispersionCatalog::FindMapped(const std::string& key,
                                   ExtensionDispersion* d) const {
  for (const auto& [index, owner] : mapped_) {
    auto hit = index.Find(key);
    if (!hit.ok()) continue;  // clean miss or corrupt index: recompute
    auto decoded = ReadDispersionValue(*hit);
    if (!decoded.ok()) continue;
    *d = *decoded;
    return true;
  }
  return false;
}

void DispersionCatalog::ExportArenaEntries(util::ArenaIndexBuilder& builder,
                                           uint32_t shard,
                                           uint32_t num_shards) const {
  cache_.ForEach([&](const std::string& key, const ExtensionDispersion& d) {
    if (util::InShard(util::StableHash64(key), shard, num_shards)) {
      util::serde::Writer v;
      v.WriteDouble(d.mean);
      v.WriteDouble(d.cv2);
      v.WriteDouble(d.entropy);
      builder.Add(key, v.TakeBuffer());
    }
  });
}

util::Status DispersionCatalog::MaterializeFromIndex(
    const util::MappedIndex& index) const {
  util::Status decode = util::Status::OK();
  util::Status walk =
      index.Visit([&](std::string_view key, std::string_view value) {
        if (!decode.ok()) return;
        auto decoded = ReadDispersionValue(value);
        if (!decoded.ok()) {
          decode = decoded.status();
          return;
        }
        cache_.Insert(std::string(key), *decoded);
      });
  if (!walk.ok()) return walk;
  return decode;
}

}  // namespace cegraph::stats
