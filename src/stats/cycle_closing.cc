#include "stats/cycle_closing.h"

#include <vector>

namespace cegraph::stats {

namespace {

using graph::Label;
using graph::VertexId;

}  // namespace

double CycleClosingRates::Rate(const ClosingKey& key) const {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = cache_.find(key);
    if (it != cache_.end()) return it->second;
  }
  const double rate = Sample(key);
  std::lock_guard<std::mutex> lock(mutex_);
  cache_.emplace(key, rate);
  return rate;
}

double CycleClosingRates::Sample(const ClosingKey& key) const {
  // Derive a per-key deterministic stream so the rate does not depend on
  // the order in which keys are first requested.
  util::Rng rng(options_.seed ^ ClosingKeyHash()(key));

  const auto first_rel = g_.RelationEdges(key.first_label);
  if (first_rel.empty() || g_.RelationSize(key.last_label) == 0) {
    return 0.5 / (options_.walks_per_key + 1);
  }

  int completed = 0;
  int closed = 0;
  std::vector<std::pair<VertexId, Label>> any_nbrs;
  auto collect_any = [&](VertexId v) {
    any_nbrs.clear();
    for (Label l = 0; l < g_.num_labels(); ++l) {
      for (VertexId u : g_.OutNeighbors(v, l)) any_nbrs.emplace_back(u, l);
      for (VertexId u : g_.InNeighbors(v, l)) any_nbrs.emplace_back(u, l);
    }
  };

  const int64_t max_attempts = static_cast<int64_t>(options_.walks_per_key) *
                               options_.max_attempt_factor;
  for (int64_t trial = 0;
       trial < max_attempts && completed < options_.walks_per_key; ++trial) {
    // 1. Start edge: uniform tuple of the first relation, oriented.
    const graph::Edge& fe = first_rel[rng.Uniform(first_rel.size())];
    const VertexId start = key.first_forward ? fe.src : fe.dst;
    VertexId cur = key.first_forward ? fe.dst : fe.src;

    // 2. Intermediate random hops over any label/direction.
    const int mid = static_cast<int>(
        rng.Uniform(static_cast<uint64_t>(options_.max_mid_hops) + 1));
    bool dead = false;
    for (int hop = 0; hop < mid && !dead; ++hop) {
      collect_any(cur);
      if (any_nbrs.empty()) {
        dead = true;
        break;
      }
      cur = any_nbrs[rng.Uniform(any_nbrs.size())].first;
    }
    if (dead) continue;

    // 3. Final edge with the last label, oriented.
    const auto last_nbrs = key.last_forward
                               ? g_.OutNeighbors(cur, key.last_label)
                               : g_.InNeighbors(cur, key.last_label);
    if (last_nbrs.empty()) continue;
    const VertexId end = last_nbrs[rng.Uniform(last_nbrs.size())];

    // 4. Closing check.
    ++completed;
    const bool has_close =
        key.close_from_end
            ? g_.HasEdge(end, start, key.close_label)
            : g_.HasEdge(start, end, key.close_label);
    closed += has_close;
  }
  return (closed + 0.5) / (completed + 1.0);
}

}  // namespace cegraph::stats
