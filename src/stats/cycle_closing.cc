#include "stats/cycle_closing.h"

#include <utility>
#include <vector>

#include "util/shard.h"

namespace cegraph::stats {

namespace {

using graph::Label;
using graph::VertexId;

/// The one serialized shape of a ClosingKey (3 x u32 labels + packed
/// orientation flags) — shared by ExportEntries, ImportEntries and the
/// shard hash so the three can never drift apart.
void WriteClosingKey(util::serde::Writer& writer, const ClosingKey& key) {
  writer.WriteU32(key.first_label);
  writer.WriteU32(key.last_label);
  writer.WriteU32(key.close_label);
  writer.WriteU8((key.first_forward ? 4 : 0) | (key.last_forward ? 2 : 0) |
                 (key.close_from_end ? 1 : 0));
}

util::StatusOr<ClosingKey> ReadClosingKey(util::serde::Reader& reader) {
  ClosingKey key;
  auto first = reader.ReadU32();
  if (!first.ok()) return first.status();
  auto last = reader.ReadU32();
  if (!last.ok()) return last.status();
  auto close = reader.ReadU32();
  if (!close.ok()) return close.status();
  auto flags = reader.ReadU8();
  if (!flags.ok()) return flags.status();
  key.first_label = *first;
  key.last_label = *last;
  key.close_label = *close;
  key.first_forward = (*flags & 4) != 0;
  key.last_forward = (*flags & 2) != 0;
  key.close_from_end = (*flags & 1) != 0;
  return key;
}

/// The stable shard hash of a closing key: its serialized wire shape (the
/// exact bytes WriteClosingKey emits), hashed with the snapshot layer's
/// fixed FNV-1a. Not ClosingKeyHash, whose mixing may change freely.
uint64_t ShardHash(const ClosingKey& key) {
  util::serde::Writer bytes;
  WriteClosingKey(bytes, key);
  return util::StableHash64(bytes.buffer());
}

}  // namespace

double CycleClosingRates::Rate(const ClosingKey& key) const {
  if (const double* hit = cache_.Find(key)) return *hit;
  if (double mapped_rate; FindMapped(key, &mapped_rate)) {
    return cache_.Insert(key, mapped_rate);
  }
  // Sampling runs outside the cache lock; each key's walks derive a
  // deterministic stream, so a race on a cold key recomputes the identical
  // value.
  return cache_.GetOrCompute(key, [&] { return Sample(key); });
}

bool CycleClosingRates::FindMapped(const ClosingKey& key, double* rate) const {
  if (mapped_.empty()) return false;
  util::serde::Writer key_bytes;
  WriteClosingKey(key_bytes, key);
  for (const auto& [index, owner] : mapped_) {
    auto hit = index.Find(key_bytes.buffer());
    if (!hit.ok()) continue;  // clean miss or corrupt index: resample
    util::serde::Reader reader(*hit);
    auto decoded = reader.ReadDouble();
    if (!decoded.ok() || !reader.AtEnd()) continue;
    *rate = *decoded;
    return true;
  }
  return false;
}

void CycleClosingRates::ExportArenaEntries(util::ArenaIndexBuilder& builder,
                                           uint32_t shard,
                                           uint32_t num_shards) const {
  cache_.ForEach([&](const ClosingKey& key, const double& rate) {
    util::serde::Writer key_bytes;
    WriteClosingKey(key_bytes, key);
    if (util::InShard(util::StableHash64(key_bytes.buffer()), shard,
                      num_shards)) {
      util::serde::Writer v;
      v.WriteDouble(rate);
      builder.Add(key_bytes.TakeBuffer(), v.TakeBuffer());
    }
  });
}

util::Status CycleClosingRates::MaterializeFromIndex(
    const util::MappedIndex& index) const {
  util::Status decode = util::Status::OK();
  util::Status walk =
      index.Visit([&](std::string_view key_bytes, std::string_view value) {
        if (!decode.ok()) return;
        util::serde::Reader key_reader(key_bytes);
        auto key = ReadClosingKey(key_reader);
        util::serde::Reader value_reader(value);
        auto rate = value_reader.ReadDouble();
        if (!key.ok() || !key_reader.AtEnd() || !rate.ok() ||
            !value_reader.AtEnd()) {
          decode = util::InvalidArgumentError(
              "cycle-closing arena entry malformed");
          return;
        }
        cache_.Insert(*key, *rate);
      });
  if (!walk.ok()) return walk;
  return decode;
}

void CycleClosingRates::ExportEntries(util::serde::Writer& writer,
                                      uint32_t shard,
                                      uint32_t num_shards) const {
  std::vector<std::pair<ClosingKey, double>> entries;
  entries.reserve(cache_.size());
  cache_.ForEach([&](const ClosingKey& key, const double& rate) {
    if (util::InShard(ShardHash(key), shard, num_shards)) {
      entries.emplace_back(key, rate);
    }
  });
  writer.WriteU64(entries.size());
  for (const auto& [key, rate] : entries) {
    WriteClosingKey(writer, key);
    writer.WriteDouble(rate);
  }
}

util::Status CycleClosingRates::ImportEntries(
    util::serde::Reader& reader) const {
  auto count = reader.ReadU64();
  if (!count.ok()) return count.status();
  for (uint64_t i = 0; i < *count; ++i) {
    auto key = ReadClosingKey(reader);
    if (!key.ok()) return key.status();
    auto rate = reader.ReadDouble();
    if (!rate.ok()) return rate.status();
    cache_.Insert(*key, *rate);
  }
  return util::Status::OK();
}

double CycleClosingRates::Sample(const ClosingKey& key) const {
  // Derive a per-key deterministic stream so the rate does not depend on
  // the order in which keys are first requested.
  util::Rng rng(options_.seed ^ ClosingKeyHash()(key));

  const auto first_rel = g_.RelationEdges(key.first_label);
  if (first_rel.empty() || g_.RelationSize(key.last_label) == 0) {
    return 0.5 / (options_.walks_per_key + 1);
  }

  int completed = 0;
  int closed = 0;
  std::vector<std::pair<VertexId, Label>> any_nbrs;
  auto collect_any = [&](VertexId v) {
    any_nbrs.clear();
    for (Label l = 0; l < g_.num_labels(); ++l) {
      for (VertexId u : g_.OutNeighbors(v, l)) any_nbrs.emplace_back(u, l);
      for (VertexId u : g_.InNeighbors(v, l)) any_nbrs.emplace_back(u, l);
    }
  };

  const int64_t max_attempts = static_cast<int64_t>(options_.walks_per_key) *
                               options_.max_attempt_factor;
  for (int64_t trial = 0;
       trial < max_attempts && completed < options_.walks_per_key; ++trial) {
    // 1. Start edge: uniform tuple of the first relation, oriented.
    const graph::Edge& fe = first_rel[rng.Uniform(first_rel.size())];
    const VertexId start = key.first_forward ? fe.src : fe.dst;
    VertexId cur = key.first_forward ? fe.dst : fe.src;

    // 2. Intermediate random hops over any label/direction.
    const int mid = static_cast<int>(
        rng.Uniform(static_cast<uint64_t>(options_.max_mid_hops) + 1));
    bool dead = false;
    for (int hop = 0; hop < mid && !dead; ++hop) {
      collect_any(cur);
      if (any_nbrs.empty()) {
        dead = true;
        break;
      }
      cur = any_nbrs[rng.Uniform(any_nbrs.size())].first;
    }
    if (dead) continue;

    // 3. Final edge with the last label, oriented.
    const auto last_nbrs = key.last_forward
                               ? g_.OutNeighbors(cur, key.last_label)
                               : g_.InNeighbors(cur, key.last_label);
    if (last_nbrs.empty()) continue;
    const VertexId end = last_nbrs[rng.Uniform(last_nbrs.size())];

    // 4. Closing check.
    ++completed;
    const bool has_close =
        key.close_from_end
            ? g_.HasEdge(end, start, key.close_label)
            : g_.HasEdge(start, end, key.close_label);
    closed += has_close;
  }
  return (closed + 0.5) / (completed + 1.0);
}

}  // namespace cegraph::stats
