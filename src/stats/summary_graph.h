#ifndef CEGRAPH_STATS_SUMMARY_GRAPH_H_
#define CEGRAPH_STATS_SUMMARY_GRAPH_H_

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "util/serde.h"
#include "util/status.h"

namespace cegraph::stats {

/// A SumRDF-style summary graph (Stefanoni et al. [30], §6.4): vertices are
/// collapsed into buckets (here: by a hash of their in/out label signature,
/// targeting `target_buckets` buckets) and the summary stores, per
/// (bucket, label, bucket) triple, the number of underlying edges.
///
/// Substitution note (DESIGN.md §3): the original SumRDF builds its summary
/// with a typed minimization and answers queries by counting possible
/// worlds; we reproduce its *mechanism* — a quotient graph whose estimate
/// is the expected cardinality over uniformly random instantiations of each
/// superedge — which is the same uniformity assumption the paper describes
/// ("each possible world has the same probability").
class SummaryGraph {
 public:
  SummaryGraph(const graph::Graph& g, uint32_t target_buckets,
               uint64_t seed = 7);

  uint32_t num_buckets() const {
    return static_cast<uint32_t>(bucket_size_.size());
  }
  uint64_t bucket_size(uint32_t b) const { return bucket_size_[b]; }

  /// Superedge weight: number of data edges with `label` from bucket `b1`
  /// to bucket `b2`.
  double EdgeWeight(uint32_t b1, graph::Label label, uint32_t b2) const;

  /// All non-empty (b2, weight) superedges out of `b1` via `label`.
  const std::vector<std::pair<uint32_t, double>>& OutEdges(
      uint32_t b1, graph::Label label) const;
  /// All non-empty (b1, weight) superedges into `b2` via `label`.
  const std::vector<std::pair<uint32_t, double>>& InEdges(
      uint32_t b2, graph::Label label) const;

  uint32_t num_labels() const { return num_labels_; }

  /// Serializes the whole summary: bucket sizes and out-superedges (the
  /// in-direction is rebuilt on load).
  void Save(util::serde::Writer& writer) const;

  /// Reconstructs a summary previously written by Save. Fails on
  /// truncated/corrupted input. The bucket assignment is not persisted (it
  /// is a pure function of graph, bucket count and seed); a loaded summary
  /// recomputes it on its first ApplyDeltas.
  static util::StatusOr<SummaryGraph> Load(util::serde::Reader& reader);

  /// Incrementally maintains the summary across one graph delta: `old_g`
  /// is the graph this summary currently describes, `new_g` the compacted
  /// graph after removing `removed` and adding `added`. Exact — the result
  /// is bit-identical to a cold `SummaryGraph(new_g, buckets, seed)`:
  /// superedge weights are integral counts adjusted by ±1, vertices whose
  /// in/out label signature changed are migrated between buckets (all their
  /// incident edges re-bucketed), and the adjacency lists keep the cold
  /// build's sorted order. Cost is O(delta + sum of degrees of re-bucketed
  /// vertices), not O(E). `moved_vertices`, if non-null, receives how many
  /// vertices changed buckets.
  void ApplyDeltas(const graph::Graph& old_g, const graph::Graph& new_g,
                   std::span<const graph::Edge> removed,
                   std::span<const graph::Edge> added,
                   size_t* moved_vertices = nullptr);

 private:
  SummaryGraph() : num_labels_(0) {}

  /// Rebuilds in_ as the transpose of out_ (both are kept so queries can
  /// expand superedges in either direction without scanning).
  void RebuildInEdges();

  /// Bucket of `v` as the eager constructor would assign it over `g`.
  uint32_t BucketOf(const graph::Graph& g, graph::VertexId v) const;

  /// Fills bucket_of_ from `g` if absent (loaded summaries drop it).
  void EnsureBucketAssignment(const graph::Graph& g);

  /// Adds `delta` to the (b1 --label--> b2) superedge weight in out_,
  /// inserting at the sorted position on first touch and erasing on zero,
  /// so incremental edits preserve the cold build's list layout.
  void AdjustOutWeight(graph::Label label, uint32_t b1, uint32_t b2,
                       double delta);

  uint32_t num_labels_;
  uint64_t seed_ = 7;
  std::vector<uint64_t> bucket_size_;
  /// Bucket of each data vertex; empty on loaded summaries until the first
  /// ApplyDeltas recomputes it.
  std::vector<uint32_t> bucket_of_;
  // out_[label][bucket] -> list of (dst bucket, weight).
  std::vector<std::vector<std::vector<std::pair<uint32_t, double>>>> out_;
  std::vector<std::vector<std::vector<std::pair<uint32_t, double>>>> in_;
  std::vector<std::pair<uint32_t, double>> empty_;
};

}  // namespace cegraph::stats

#endif  // CEGRAPH_STATS_SUMMARY_GRAPH_H_
