#ifndef CEGRAPH_STATS_DEGREE_STATS_H_
#define CEGRAPH_STATS_DEGREE_STATS_H_

#include <array>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "query/query_graph.h"
#include "util/arena.h"
#include "util/keyed_cache.h"
#include "util/serde.h"
#include "util/status.h"

namespace cegraph::stats {

/// Maximum-degree statistics of one relation over up to 3 attributes,
/// keyed by attribute-subset bitmask pairs: Get(X, Y) = deg(X, Y, R) =
/// max over values v of X of the number of distinct Y-values co-occurring
/// with v (§5.1). Get(X, X) == 1 and Get(0, Y) == |pi_Y(R)| by definition.
struct DegreeMap {
  uint32_t num_attrs = 0;
  /// deg[X][Y]; 0 means "not defined" (X not a subset of Y).
  std::array<std::array<double, 8>, 8> deg{};

  double Get(uint32_t x, uint32_t y) const { return deg[x][y]; }
};

/// Computes the full DegreeMap of a materialized relation given as tuples
/// over `num_attrs` (<= 3) attributes. Tuples beyond index num_attrs-1 are
/// ignored.
DegreeMap ComputeDegreeMap(
    uint32_t num_attrs,
    const std::vector<std::array<graph::VertexId, 3>>& tuples);

/// Per-graph cache of degree statistics: base-relation statistics are
/// derived from the graph's CSR summaries in O(1); degree statistics of
/// small-size join results (§5.1.1) are materialized once per isomorphism
/// class and shared across the whole workload.
class StatsCatalog {
 public:
  /// `materialize_cap`: join results with more tuples than this are not
  /// materialized (TwoJoin returns nullptr); estimators then simply run
  /// without those extra statistics, which only loosens bounds (it never
  /// breaks soundness).
  explicit StatsCatalog(const graph::Graph& g,
                        uint64_t materialize_cap = 4'000'000)
      : g_(g), materialize_cap_(materialize_cap) {}

  StatsCatalog(const StatsCatalog&) = delete;
  StatsCatalog& operator=(const StatsCatalog&) = delete;

  const graph::Graph& graph() const { return g_; }

  /// Degree map of base relation `l` with local attributes {0 = src,
  /// 1 = dst}.
  const DegreeMap& BaseRelation(graph::Label l) const;

  /// Degree statistics of the join result of a connected 2-edge pattern.
  struct JoinStats {
    query::QueryGraph representative;  ///< pattern the stats are numbered in
    DegreeMap deg;                     ///< attrs = representative's vertices
    double cardinality = 0;            ///< |join result|
  };

  /// Returns stats for `pattern` (a connected 2-edge query), or nullptr if
  /// the join was too large to materialize. The caller must map attribute
  /// ids through FindIsomorphism(pattern, result->representative).
  const JoinStats* TwoJoin(const query::QueryGraph& pattern) const;

  size_t num_base_cached() const { return base_cache_.size(); }
  size_t num_joins_cached() const { return join_cache_.size(); }

  // ---- Maintenance surface (dynamic layer) ----

  /// Calls `fn(label, degree_map)` for every cached base relation.
  template <typename Fn>
  void VisitBaseRelations(Fn&& fn) const {
    base_cache_.ForEach(fn);
  }

  /// Calls `fn(canonical_code, join_stats_or_null)` for every cached
  /// two-join entry (null = cached over-cap verdict).
  template <typename Fn>
  void VisitJoinEntries(Fn&& fn) const {
    join_cache_.ForEach(
        [&](const std::string& key, const std::unique_ptr<JoinStats>& js) {
          fn(key, js.get());
        });
  }

  /// Recomputes the degree map of base relation `l` from the graph's O(1)
  /// CSR summaries and overwrites any cached entry — the exact in-place
  /// update path after an edge delta touched label `l`.
  void RefreshBaseRelation(graph::Label l) const;

  /// Inserts a two-join entry carried over from a previous graph epoch
  /// (null = over-cap verdict).
  void InsertJoinEntry(const std::string& key,
                       std::unique_ptr<JoinStats> stats) const {
    join_cache_.Insert(key, std::move(stats));
  }

  /// Removes every two-join entry whose canonical code matches `pred`;
  /// returns how many were removed.
  template <typename Pred>
  size_t EvictJoinsMatching(Pred&& pred) const {
    return join_cache_.EraseIf(
        [&](const std::string& key, const std::unique_ptr<JoinStats>&) {
          return pred(key);
        });
  }

  uint64_t materialize_cap() const { return materialize_cap_; }

  /// Lookup/eviction counters of the two memo caches.
  util::CacheCounters base_cache_counters() const {
    return base_cache_.counters();
  }
  util::CacheCounters join_cache_counters() const {
    return join_cache_.counters();
  }

  /// Serializes both memo caches (base-relation degree maps and
  /// materialized two-join statistics, over-cap markers included) — the
  /// degree-statistics section of a summary snapshot. With num_shards >= 2
  /// only entries whose key-hash range is `shard` are written (base
  /// relations shard by label, two-joins by canonical code; see
  /// util/shard.h).
  void ExportEntries(util::serde::Writer& writer, uint32_t shard = 0,
                     uint32_t num_shards = 0) const;

  /// Merges previously exported entries (existing entries win). Fails on
  /// truncated/corrupted input.
  util::Status ImportEntries(util::serde::Reader& reader) const;

  // ---- Mapped-backing surface (arena snapshot v3) ----
  // See MarkovTable: memo first, then mapped probe with copy-on-miss;
  // attach/detach run quiesced. Unlike the v2 section (one payload holding
  // both caches), the arena keeps two separate hash indexes — base
  // relations (key = 8-byte LE label, value = DegreeMap) and two-joins
  // (key = canonical code, value = u8 has_stats + JoinStats fields) — so
  // each is probed in place without scanning the other.

  void ExportArenaBases(util::ArenaIndexBuilder& builder, uint32_t shard = 0,
                        uint32_t num_shards = 0) const;
  void ExportArenaJoins(util::ArenaIndexBuilder& builder, uint32_t shard = 0,
                        uint32_t num_shards = 0) const;

  void AttachMappedBases(util::MappedIndex index,
                         std::shared_ptr<const void> owner) const {
    mapped_bases_.emplace_back(std::move(index), std::move(owner));
  }
  void AttachMappedJoins(util::MappedIndex index,
                         std::shared_ptr<const void> owner) const {
    mapped_joins_.emplace_back(std::move(index), std::move(owner));
  }

  /// Drops all mapped backing (pre-scrub; see MarkovTable).
  void DetachMappedIndexes() const {
    mapped_bases_.clear();
    mapped_joins_.clear();
  }

  size_t num_mapped_indexes() const {
    return mapped_bases_.size() + mapped_joins_.size();
  }

  /// Decode every entry of a mapped index into the corresponding memo.
  util::Status MaterializeFromBases(const util::MappedIndex& index) const;
  util::Status MaterializeFromJoins(const util::MappedIndex& index) const;

 private:
  bool FindMappedBase(graph::Label l, DegreeMap* dm) const;
  /// True when the mapped indexes hold a verdict for `key`; `*stats` is
  /// null for an over-cap verdict.
  bool FindMappedJoin(const std::string& key,
                      std::unique_ptr<JoinStats>* stats) const;

  const graph::Graph& g_;
  uint64_t materialize_cap_;
  mutable std::vector<std::pair<util::MappedIndex, std::shared_ptr<const void>>>
      mapped_bases_;
  mutable std::vector<std::pair<util::MappedIndex, std::shared_ptr<const void>>>
      mapped_joins_;
  /// Returned references/pointers stay valid because the caches never
  /// erase (unordered_map node stability). A null JoinStats pointer is a
  /// cached "too large to materialize" verdict.
  util::KeyedCache<graph::Label, DegreeMap> base_cache_;
  util::KeyedCache<std::string, std::unique_ptr<JoinStats>> join_cache_;
};

/// One statistics-bearing relation of a query, with attributes expressed as
/// query-vertex bitmasks. This is the uniform input format of CEG_M / CBS /
/// DBPLP: base relations and small-join results look identical here.
struct StatRelation {
  query::VertexSet attrs = 0;
  /// deg[(X, Y)] with X subset of Y subset of attrs (bitmasks over query
  /// vertices).
  std::map<std::pair<query::VertexSet, query::VertexSet>, double> deg;
  std::string description;

  double Get(query::VertexSet x, query::VertexSet y) const {
    auto it = deg.find({x, y});
    return it == deg.end() ? 0.0 : it->second;
  }
};

/// The degree statistics available to the pessimistic estimators for one
/// query: one StatRelation per query edge, plus (optionally, §5.1.1) one
/// per connected 2-edge sub-query.
class DegreeStats {
 public:
  static util::StatusOr<DegreeStats> Build(const StatsCatalog& catalog,
                                           const query::QueryGraph& q,
                                           bool include_two_joins);

  const std::vector<StatRelation>& relations() const { return relations_; }

 private:
  std::vector<StatRelation> relations_;
};

}  // namespace cegraph::stats

#endif  // CEGRAPH_STATS_DEGREE_STATS_H_
