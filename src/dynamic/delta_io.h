#ifndef CEGRAPH_DYNAMIC_DELTA_IO_H_
#define CEGRAPH_DYNAMIC_DELTA_IO_H_

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "dynamic/delta_graph.h"
#include "util/status.h"

namespace cegraph::dynamic {

/// Text serialization for delta batches, one operation per line:
///
///   # comments and blank lines allowed
///   + <src> <dst> <label>     edge insert
///   - <src> <dst> <label>     edge delete
///
/// This is the interchange format of `cegraph_stats refresh`: an upstream
/// change feed dumps its edge mutations as text, the refresh subcommand
/// replays them against a summary snapshot.
util::Status WriteDeltaText(std::span<const EdgeDelta> batch,
                            std::ostream& os);
util::StatusOr<std::vector<EdgeDelta>> ReadDeltaText(std::istream& is);

util::Status SaveDeltaBatch(std::span<const EdgeDelta> batch,
                            const std::string& path);
util::StatusOr<std::vector<EdgeDelta>> LoadDeltaBatch(
    const std::string& path);

/// A seeded batch of `n` operations — alternating deletes of existing
/// edges and inserts of fresh random edges, the mixed churn a serving
/// graph sees. Shared by `cegraph_stats refresh --random` and the dynamic
/// benches so demo and measurement use the same churn shape.
std::vector<EdgeDelta> RandomEdgeBatch(const graph::Graph& g, size_t n,
                                       uint64_t seed);

}  // namespace cegraph::dynamic

#endif  // CEGRAPH_DYNAMIC_DELTA_IO_H_
