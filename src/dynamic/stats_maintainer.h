#ifndef CEGRAPH_DYNAMIC_STATS_MAINTAINER_H_
#define CEGRAPH_DYNAMIC_STATS_MAINTAINER_H_

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "dynamic/delta_graph.h"
#include "graph/graph.h"
#include "stats/cycle_closing.h"
#include "stats/degree_stats.h"
#include "stats/dispersion.h"
#include "stats/markov_table.h"

namespace cegraph::dynamic {

/// What one maintenance pass (EstimationContext::ApplyDeltas or a stale-
/// snapshot replay) did to the statistics substrate.
struct MaintenanceReport {
  size_t inserted_edges = 0;  ///< net edge inserts in the batch
  size_t deleted_edges = 0;   ///< net edge deletes in the batch
  size_t changed_labels = 0;  ///< labels with any net change

  size_t markov_carried = 0;        ///< entries kept (labels untouched)
  size_t markov_evicted = 0;        ///< entries dropped (label changed)
  size_t markov_exact_updates = 0;  ///< 1-edge entries refreshed in place

  size_t base_relations_refreshed = 0;  ///< O(1) degree-map refreshes
  size_t joins_carried = 0;
  size_t joins_evicted = 0;

  size_t closing_carried = 0;
  size_t closing_evicted = 0;

  size_t dispersion_carried = 0;
  size_t dispersion_evicted = 0;

  size_t ceg_evicted = 0;  ///< CegCache entries invalidated

  bool char_sets_dropped = false;  ///< CS summary dropped for lazy rebuild
  bool summary_updated = false;    ///< SumRDF summary patched in place
  size_t summary_moved_vertices = 0;

  size_t total_evicted() const {
    return markov_evicted + joins_evicted + closing_evicted +
           dispersion_evicted + ceg_evicted;
  }
};

/// Bitmap (indexed by label) of relations with a net change.
std::vector<bool> ChangedLabelBitmap(uint32_t num_labels, const NetDelta& net);
std::vector<bool> ChangedLabelBitmap(uint32_t num_labels,
                                     std::span<const EdgeDelta> log);

/// True iff any edge label appearing in the canonical pattern code is
/// marked in `changed`. Labels >= `label_modulus` are unmarked by
/// subtracting the modulus first (the DispersionCatalog key convention of
/// offsetting intersection-edge labels by num_labels). Malformed codes
/// conservatively return true (better to recompute than to serve stale).
bool CodeTouchesChangedLabel(std::string_view canonical_code,
                             const std::vector<bool>& changed,
                             uint32_t label_modulus);

/// Canonical codes of the two unconstrained 1-edge patterns of label `l`
/// — the Markov entries whose cardinality is an O(1)/O(|R_l|) fact of the
/// graph, maintained exactly instead of evicted.
std::string TwoVertexEdgeCode(graph::Label l);
std::string LoopEdgeCode(graph::Label l);

/// Applies one graph delta to the statistics substrate *incrementally*:
/// exact in-place updates where the new value is a cheap fact of the new
/// graph (1-edge Markov entries, base-relation degree maps, SumRDF buckets
/// — the latter via SummaryGraph::ApplyDeltas), and targeted per-key
/// eviction for everything whose inputs actually changed. Entries whose
/// labels are untouched by the delta are carried verbatim: pattern
/// matching, join materialization and dispersion analysis only ever read
/// the relations named by their pattern, so an entry over unchanged
/// relations is bit-identical to what a cold rebuild would recompute.
///
/// The one exception is cycle-closing rates: their sampling walks hop
/// through *arbitrary* labels between the keyed first/last edges, so when
/// options().max_mid_hops > 0 every rate is coupled to every relation and
/// the whole cache is evicted on any delta; with max_mid_hops == 0 the walk
/// touches exactly the three keyed labels and eviction is per-key.
///
/// Two flows share this logic:
///  - Migrate*: copy surviving entries from the structures of the previous
///    graph epoch into freshly constructed structures over the new graph
///    (EstimationContext::ApplyDeltas).
///  - Scrub*: evict in place after merging a stale snapshot's entries into
///    live structures (EstimationContext::LoadSnapshot replay path).
///
/// All of it must run quiesced — no concurrent estimation.
class StatsMaintainer {
 public:
  /// `old_graph` is the epoch the source structures describe, `new_graph`
  /// the compacted result of applying `net`. Both must outlive the
  /// maintainer.
  StatsMaintainer(const graph::Graph& old_graph,
                  const graph::Graph& new_graph, const NetDelta& net);

  const std::vector<bool>& changed_labels() const { return changed_; }
  size_t num_changed_labels() const;
  bool TouchesChanged(std::string_view canonical_code) const {
    return CodeTouchesChangedLabel(canonical_code, changed_,
                                   new_graph_.num_labels());
  }

  void MigrateMarkov(const stats::MarkovTable& from,
                     const stats::MarkovTable& to,
                     MaintenanceReport* report) const;
  void MigrateClosingRates(const stats::CycleClosingRates& from,
                           const stats::CycleClosingRates& to,
                           MaintenanceReport* report) const;
  void MigrateCatalog(const stats::StatsCatalog& from,
                      const stats::StatsCatalog& to,
                      MaintenanceReport* report) const;
  void MigrateDispersion(const stats::DispersionCatalog& from,
                         const stats::DispersionCatalog& to,
                         MaintenanceReport* report) const;

  /// In-place variants over live structures (the structures' own graph is
  /// the current epoch). Each returns the number of evicted entries and
  /// performs the same exact refreshes as the Migrate twin.
  static size_t ScrubMarkov(const stats::MarkovTable& table,
                            const std::vector<bool>& changed);
  static size_t ScrubClosingRates(const stats::CycleClosingRates& rates,
                                  const std::vector<bool>& changed);
  static size_t ScrubCatalog(const stats::StatsCatalog& catalog,
                             const std::vector<bool>& changed);
  static size_t ScrubDispersion(const stats::DispersionCatalog& catalog,
                                const std::vector<bool>& changed);

 private:
  const graph::Graph& old_graph_;
  const graph::Graph& new_graph_;
  const NetDelta& net_;
  std::vector<bool> changed_;
};

}  // namespace cegraph::dynamic

#endif  // CEGRAPH_DYNAMIC_STATS_MAINTAINER_H_
