#include "dynamic/stats_maintainer.h"

#include <memory>
#include <string>
#include <unordered_map>
#include <utility>

#include "query/query_graph.h"

namespace cegraph::dynamic {

namespace {

/// Number of self-loop tuples in relation `l` — the exact cardinality of
/// the 1-vertex loop pattern (a)-[l]->(a).
double LoopCount(const graph::Graph& g, graph::Label l) {
  double loops = 0;
  for (const graph::Edge& e : g.RelationEdges(l)) loops += (e.src == e.dst);
  return loops;
}

/// The exact Markov entries of every changed label that are cheap facts of
/// `g`: code -> fresh cardinality. These are upserted instead of evicted.
std::unordered_map<std::string, double> ExactMarkovEntries(
    const graph::Graph& g, const std::vector<bool>& changed) {
  std::unordered_map<std::string, double> exact;
  for (graph::Label l = 0; l < g.num_labels(); ++l) {
    if (!changed[l]) continue;
    exact.emplace(TwoVertexEdgeCode(l),
                  static_cast<double>(g.RelationSize(l)));
    exact.emplace(LoopEdgeCode(l), LoopCount(g, l));
  }
  return exact;
}

bool ClosingKeyTouchesChanged(const stats::ClosingKey& key,
                              const std::vector<bool>& changed) {
  return changed[key.first_label] || changed[key.last_label] ||
         changed[key.close_label];
}

}  // namespace

std::vector<bool> ChangedLabelBitmap(uint32_t num_labels,
                                     const NetDelta& net) {
  std::vector<bool> changed(num_labels, false);
  for (const graph::Edge& e : net.inserted) changed[e.label] = true;
  for (const graph::Edge& e : net.deleted) changed[e.label] = true;
  return changed;
}

std::vector<bool> ChangedLabelBitmap(uint32_t num_labels,
                                     std::span<const EdgeDelta> log) {
  std::vector<bool> changed(num_labels, false);
  for (const EdgeDelta& d : log) {
    if (d.edge.label < num_labels) changed[d.edge.label] = true;
  }
  return changed;
}

bool CodeTouchesChangedLabel(std::string_view code,
                             const std::vector<bool>& changed,
                             uint32_t label_modulus) {
  // Canonical codes (query::QueryGraph::CodeUnderPermutation) are a
  // sequence of fixed-layout edge records — one byte each for the permuted
  // src and dst vertex, then the label in decimal, then ';' — optionally
  // prefixed by "id:" (identity codes of >7-vertex patterns) and suffixed
  // by '|' plus vertex-constraint tokens (which are vertex labels, not edge
  // labels — edge deltas never change them, so parsing stops there). The
  // parse is positional, so vertex bytes that happen to collide with
  // digits or ';' cannot desynchronize it.
  size_t pos = 0;
  if (code.substr(0, 3) == "id:") pos = 3;
  while (pos < code.size() && code[pos] != '|') {
    if (pos + 3 > code.size()) return true;  // malformed: be conservative
    pos += 2;  // src and dst vertex bytes
    uint64_t label = 0;
    bool any_digit = false;
    while (pos < code.size() && code[pos] >= '0' && code[pos] <= '9') {
      label = label * 10 + static_cast<uint64_t>(code[pos] - '0');
      if (label > 0xFFFF'FFFFull) return true;
      ++pos;
      any_digit = true;
    }
    if (!any_digit || pos >= code.size() || code[pos] != ';') return true;
    ++pos;
    if (label_modulus > 0 && label >= label_modulus) label -= label_modulus;
    if (label >= changed.size() || changed[label]) return true;
  }
  return false;
}

std::string TwoVertexEdgeCode(graph::Label l) {
  auto q = query::QueryGraph::Create(2, {{0, 1, l}});
  return q->CanonicalCode();
}

std::string LoopEdgeCode(graph::Label l) {
  auto q = query::QueryGraph::Create(1, {{0, 0, l}});
  return q->CanonicalCode();
}

StatsMaintainer::StatsMaintainer(const graph::Graph& old_graph,
                                 const graph::Graph& new_graph,
                                 const NetDelta& net)
    : old_graph_(old_graph),
      new_graph_(new_graph),
      net_(net),
      changed_(ChangedLabelBitmap(new_graph.num_labels(), net)) {}

size_t StatsMaintainer::num_changed_labels() const {
  size_t n = 0;
  for (bool c : changed_) n += c;
  return n;
}

void StatsMaintainer::MigrateMarkov(const stats::MarkovTable& from,
                                    const stats::MarkovTable& to,
                                    MaintenanceReport* report) const {
  const auto exact = ExactMarkovEntries(new_graph_, changed_);
  from.VisitEntries([&](const std::string& code, const double& value) {
    if (exact.contains(code)) return;  // superseded by the exact refresh
    if (TouchesChanged(code)) {
      ++report->markov_evicted;
    } else {
      to.UpsertEntry(code, value);
      ++report->markov_carried;
    }
  });
  for (const auto& [code, value] : exact) to.UpsertEntry(code, value);
  report->markov_exact_updates += exact.size();
}

void StatsMaintainer::MigrateClosingRates(const stats::CycleClosingRates& from,
                                          const stats::CycleClosingRates& to,
                                          MaintenanceReport* report) const {
  const bool couple_all = from.options().max_mid_hops > 0;
  from.VisitEntries([&](const stats::ClosingKey& key, const double& rate) {
    if (couple_all || ClosingKeyTouchesChanged(key, changed_)) {
      ++report->closing_evicted;
    } else {
      to.UpsertEntry(key, rate);
      ++report->closing_carried;
    }
  });
}

void StatsMaintainer::MigrateCatalog(const stats::StatsCatalog& from,
                                     const stats::StatsCatalog& to,
                                     MaintenanceReport* report) const {
  // Base-relation degree maps are O(1) facts of the new graph's CSR
  // summaries — refresh every previously cached label exactly (for
  // unchanged labels the values are identical anyway).
  from.VisitBaseRelations([&](const graph::Label& l, const stats::DegreeMap&) {
    to.RefreshBaseRelation(l);
    report->base_relations_refreshed += changed_[l];
  });

  // Two-join entries: carry classes over unchanged relations (including
  // cached over-cap verdicts — the enumeration that produced them would
  // replay identically), evict the rest. Cloning under the visit lock is
  // fine: the clone does not re-enter the cache.
  from.VisitJoinEntries(
      [&](const std::string& key, const stats::StatsCatalog::JoinStats* js) {
        if (TouchesChanged(key)) {
          ++report->joins_evicted;
          return;
        }
        std::unique_ptr<stats::StatsCatalog::JoinStats> clone;
        if (js != nullptr) {
          clone = std::make_unique<stats::StatsCatalog::JoinStats>();
          clone->representative = js->representative;
          clone->deg = js->deg;
          clone->cardinality = js->cardinality;
        }
        to.InsertJoinEntry(key, std::move(clone));
        ++report->joins_carried;
      });
}

void StatsMaintainer::MigrateDispersion(const stats::DispersionCatalog& from,
                                        const stats::DispersionCatalog& to,
                                        MaintenanceReport* report) const {
  from.VisitEntries(
      [&](const std::string& key, const stats::ExtensionDispersion& d) {
        if (TouchesChanged(key)) {
          ++report->dispersion_evicted;
        } else {
          to.UpsertEntry(key, d);
          ++report->dispersion_carried;
        }
      });
}

size_t StatsMaintainer::ScrubMarkov(const stats::MarkovTable& table,
                                    const std::vector<bool>& changed) {
  const graph::Graph& g = table.graph();
  const size_t evicted = table.EvictMatching([&](const std::string& code) {
    return CodeTouchesChangedLabel(code, changed, g.num_labels());
  });
  for (const auto& [code, value] : ExactMarkovEntries(g, changed)) {
    table.UpsertEntry(code, value);
  }
  return evicted;
}

size_t StatsMaintainer::ScrubClosingRates(
    const stats::CycleClosingRates& rates, const std::vector<bool>& changed) {
  const bool couple_all = rates.options().max_mid_hops > 0;
  return rates.EvictMatching([&](const stats::ClosingKey& key) {
    return couple_all || ClosingKeyTouchesChanged(key, changed);
  });
}

size_t StatsMaintainer::ScrubCatalog(const stats::StatsCatalog& catalog,
                                     const std::vector<bool>& changed) {
  const graph::Graph& g = catalog.graph();
  for (graph::Label l = 0; l < g.num_labels(); ++l) {
    if (changed[l]) catalog.RefreshBaseRelation(l);
  }
  return catalog.EvictJoinsMatching([&](const std::string& code) {
    return CodeTouchesChangedLabel(code, changed, g.num_labels());
  });
}

size_t StatsMaintainer::ScrubDispersion(const stats::DispersionCatalog& catalog,
                                        const std::vector<bool>& changed) {
  const uint32_t modulus = catalog.graph().num_labels();
  return catalog.EvictMatching([&](const std::string& code) {
    return CodeTouchesChangedLabel(code, changed, modulus);
  });
}

}  // namespace cegraph::dynamic
