#ifndef CEGRAPH_DYNAMIC_DELTA_GRAPH_H_
#define CEGRAPH_DYNAMIC_DELTA_GRAPH_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace cegraph::dynamic {

/// One edge mutation against a base graph. Deltas are edge-only: the vertex
/// set and the label space are fixed at base-graph construction (growing
/// either means a new base graph, which is a different dataset by
/// fingerprint anyway).
enum class DeltaOp : uint8_t {
  kInsert = 0,
  kDelete = 1,
};

struct EdgeDelta {
  graph::Edge edge;
  DeltaOp op = DeltaOp::kInsert;

  friend bool operator==(const EdgeDelta&, const EdgeDelta&) = default;
};

/// The structural identity of a *mutable* graph state: the frozen base
/// graph's fingerprint plus an order-independent hash of the net delta log
/// and the number of applied batches. Two states with equal triples hold
/// statistics that are interchangeable; a state whose base matches but whose
/// (delta_hash, epoch) is an earlier point of the same log is *stale but
/// replayable* (see EstimationContext::LoadSnapshot).
struct DynamicFingerprint {
  graph::GraphFingerprint base;
  uint64_t delta_hash = 0;  ///< 0 = no net delta against the base
  uint64_t epoch = 0;       ///< number of applied batches

  friend bool operator==(const DynamicFingerprint&,
                         const DynamicFingerprint&) = default;
};

/// The order-independent hash contribution of one net operation. Net deltas
/// combine by XOR, so the hash of a delta log does not depend on the order
/// edges were inserted in, and reverting an operation (insert then delete of
/// the same edge) restores the previous hash exactly.
uint64_t DeltaOpHash(const graph::Edge& e, DeltaOp op);

/// The net effect of everything applied to a DeltaGraph: edges present in
/// the base but deleted, and edges absent from the base but inserted. No-op
/// operations (inserting an existing edge, deleting a missing one) and
/// cancelling pairs never appear here.
struct NetDelta {
  std::vector<graph::Edge> inserted;  ///< sorted by (label, src, dst)
  std::vector<graph::Edge> deleted;   ///< sorted by (label, src, dst)

  bool empty() const { return inserted.empty() && deleted.empty(); }
  size_t size() const { return inserted.size() + deleted.size(); }
};

/// A mutable edge-insert/delete overlay on top of the immutable label-major
/// CSR Graph. Reads merge base + delta on the fly and expose the same
/// surface shape as Graph (out/in neighbors per label in ascending order,
/// degrees, relation sizes, membership), so serving code can keep answering
/// against a frozen CSR while updates accumulate; Compact() folds the delta
/// into a fresh CSR when the overlay has grown enough to be worth paying
/// a rebuild.
///
/// The hot read path is allocation-free: ForEachOutNeighbor /
/// ForEachInNeighbor stream the three-way merge (base minus deletions,
/// plus insertions) without materializing anything; degree and size
/// queries are O(1) hash lookups over the overlay.
///
/// The overlay keeps *net* state: inserting an edge the base already has is
/// a no-op, deleting an inserted edge reverts the insert, and the
/// delta-hash tracks exactly the net set (XOR-combined per edge), so it is
/// independent of operation order and returns to 0 when the overlay cancels
/// back to the base.
///
/// Not thread-safe for concurrent Apply; reads are safe against each other.
/// The base graph must outlive the overlay.
class DeltaGraph {
 public:
  explicit DeltaGraph(const graph::Graph& base);

  const graph::Graph& base() const { return base_; }

  // ---- Merged read API (same shapes as graph::Graph) ----

  uint32_t num_vertices() const { return base_.num_vertices(); }
  uint32_t num_labels() const { return base_.num_labels(); }
  uint64_t num_edges() const { return num_edges_; }
  uint64_t RelationSize(graph::Label l) const {
    return static_cast<uint64_t>(
        static_cast<int64_t>(base_.RelationSize(l)) + rel_delta_[l]);
  }

  uint32_t OutDegree(graph::VertexId v, graph::Label l) const;
  uint32_t InDegree(graph::VertexId v, graph::Label l) const;
  bool HasEdge(graph::VertexId src, graph::VertexId dst,
               graph::Label l) const;

  /// Streams the merged out-neighbors of `v` via `l` in ascending order
  /// without allocating: base neighbors minus deletions, merged with
  /// insertions.
  template <typename Fn>
  void ForEachOutNeighbor(graph::VertexId v, graph::Label l, Fn&& fn) const {
    MergeNeighbors(base_.OutNeighbors(v, l), FindSlot(ins_out_, v, l),
                   FindSlot(del_out_, v, l), fn);
  }
  /// Streams the merged in-neighbors of `v` via `l` in ascending order.
  template <typename Fn>
  void ForEachInNeighbor(graph::VertexId v, graph::Label l, Fn&& fn) const {
    MergeNeighbors(base_.InNeighbors(v, l), FindSlot(ins_in_, v, l),
                   FindSlot(del_in_, v, l), fn);
  }

  /// Materializing conveniences for tests and cold paths.
  std::vector<graph::VertexId> OutNeighbors(graph::VertexId v,
                                            graph::Label l) const;
  std::vector<graph::VertexId> InNeighbors(graph::VertexId v,
                                           graph::Label l) const;

  // ---- Mutation ----

  /// Applies one batch of edge deltas. Validates every operation up front
  /// (endpoint/label ranges) and applies nothing on failure; on success the
  /// epoch advances by one (even for an all-no-op batch — the batch was
  /// observed) and the delta hash reflects the new net state.
  util::Status Apply(std::span<const EdgeDelta> batch);

  /// Number of net operations the overlay currently holds.
  size_t delta_size() const { return num_inserted_ + num_deleted_; }
  size_t num_inserted() const { return num_inserted_; }
  size_t num_deleted() const { return num_deleted_; }

  uint64_t epoch() const { return epoch_; }
  uint64_t delta_hash() const { return delta_hash_; }
  DynamicFingerprint fingerprint() const {
    return {base_.fingerprint(), delta_hash_, epoch_};
  }

  /// The net delta against the base, in deterministic (label, src, dst)
  /// order — the replay log one batch of maintenance needs.
  NetDelta CollectNetDelta() const;

  /// Folds the overlay into a fresh immutable Graph (full CSR rebuild over
  /// the merged edge list). The result is bit-identical to building a graph
  /// from the merged edges directly, so its fingerprint is the canonical
  /// identity of the current state.
  util::StatusOr<graph::Graph> Compact() const;

 private:
  /// Overlay slot: the sorted neighbor adjustments of one (vertex, label).
  /// Keyed by (label << 32 | vertex); values stay sorted ascending so the
  /// merged read is a linear three-way merge.
  using SlotMap =
      std::unordered_map<uint64_t, std::vector<graph::VertexId>>;

  static uint64_t SlotKey(graph::VertexId v, graph::Label l) {
    return (uint64_t{l} << 32) | v;
  }
  static const std::vector<graph::VertexId>* FindSlot(const SlotMap& slots,
                                                      graph::VertexId v,
                                                      graph::Label l) {
    auto it = slots.find(SlotKey(v, l));
    return it == slots.end() ? nullptr : &it->second;
  }
  /// True iff `value` was newly added (kept sorted; duplicates rejected).
  static bool SlotInsert(SlotMap& slots, graph::VertexId v, graph::Label l,
                         graph::VertexId value);
  /// True iff `value` was present and removed (empty slots are erased).
  static bool SlotErase(SlotMap& slots, graph::VertexId v, graph::Label l,
                        graph::VertexId value);
  static bool SlotContains(const SlotMap& slots, graph::VertexId v,
                           graph::Label l, graph::VertexId value);

  template <typename Fn>
  static void MergeNeighbors(std::span<const graph::VertexId> base,
                             const std::vector<graph::VertexId>* ins,
                             const std::vector<graph::VertexId>* del,
                             Fn& fn) {
    size_t bi = 0, ii = 0, di = 0;
    const size_t bn = base.size();
    const size_t in = ins == nullptr ? 0 : ins->size();
    while (bi < bn || ii < in) {
      // Next base candidate not deleted.
      while (bi < bn && del != nullptr && di < del->size()) {
        if ((*del)[di] < base[bi]) {
          ++di;
        } else if ((*del)[di] == base[bi]) {
          ++di;
          ++bi;
        } else {
          break;
        }
      }
      if (bi >= bn && ii >= in) break;
      if (ii >= in || (bi < bn && base[bi] < (*ins)[ii])) {
        fn(base[bi++]);
      } else {
        // Inserted values are never base values, so no tie is possible.
        fn((*ins)[ii++]);
      }
    }
  }

  const graph::Graph& base_;
  SlotMap ins_out_, ins_in_, del_out_, del_in_;
  std::vector<int64_t> rel_delta_;
  uint64_t num_edges_ = 0;
  size_t num_inserted_ = 0;
  size_t num_deleted_ = 0;
  uint64_t delta_hash_ = 0;
  uint64_t epoch_ = 0;
};

}  // namespace cegraph::dynamic

#endif  // CEGRAPH_DYNAMIC_DELTA_GRAPH_H_
