#include "dynamic/delta_graph.h"

#include <algorithm>

#include "util/random.h"

namespace cegraph::dynamic {

namespace {

/// Distinct salts so that inserting edge e and deleting edge e contribute
/// different hash terms (an insert-delete pair across *different* edges must
/// not cancel).
constexpr uint64_t kInsertSalt = 0x1A5E'51DE'0F00'D001ull;
constexpr uint64_t kDeleteSalt = 0xDE1E'7E00'BAD5'EED5ull;

}  // namespace

uint64_t DeltaOpHash(const graph::Edge& e, DeltaOp op) {
  uint64_t h = util::MixHash((uint64_t{e.src} << 32) | e.dst);
  h = util::MixHash(h ^ (uint64_t{e.label} + 1));
  return util::MixHash(
      h ^ (op == DeltaOp::kInsert ? kInsertSalt : kDeleteSalt));
}

DeltaGraph::DeltaGraph(const graph::Graph& base)
    : base_(base),
      rel_delta_(base.num_labels(), 0),
      num_edges_(base.num_edges()) {}

bool DeltaGraph::SlotInsert(SlotMap& slots, graph::VertexId v,
                            graph::Label l, graph::VertexId value) {
  std::vector<graph::VertexId>& slot = slots[SlotKey(v, l)];
  auto it = std::lower_bound(slot.begin(), slot.end(), value);
  if (it != slot.end() && *it == value) return false;
  slot.insert(it, value);
  return true;
}

bool DeltaGraph::SlotErase(SlotMap& slots, graph::VertexId v, graph::Label l,
                           graph::VertexId value) {
  auto slot_it = slots.find(SlotKey(v, l));
  if (slot_it == slots.end()) return false;
  std::vector<graph::VertexId>& slot = slot_it->second;
  auto it = std::lower_bound(slot.begin(), slot.end(), value);
  if (it == slot.end() || *it != value) return false;
  slot.erase(it);
  if (slot.empty()) slots.erase(slot_it);
  return true;
}

bool DeltaGraph::SlotContains(const SlotMap& slots, graph::VertexId v,
                              graph::Label l, graph::VertexId value) {
  const std::vector<graph::VertexId>* slot = FindSlot(slots, v, l);
  return slot != nullptr &&
         std::binary_search(slot->begin(), slot->end(), value);
}

uint32_t DeltaGraph::OutDegree(graph::VertexId v, graph::Label l) const {
  const std::vector<graph::VertexId>* ins = FindSlot(ins_out_, v, l);
  const std::vector<graph::VertexId>* del = FindSlot(del_out_, v, l);
  return base_.OutDegree(v, l) + (ins != nullptr ? ins->size() : 0) -
         (del != nullptr ? del->size() : 0);
}

uint32_t DeltaGraph::InDegree(graph::VertexId v, graph::Label l) const {
  const std::vector<graph::VertexId>* ins = FindSlot(ins_in_, v, l);
  const std::vector<graph::VertexId>* del = FindSlot(del_in_, v, l);
  return base_.InDegree(v, l) + (ins != nullptr ? ins->size() : 0) -
         (del != nullptr ? del->size() : 0);
}

bool DeltaGraph::HasEdge(graph::VertexId src, graph::VertexId dst,
                         graph::Label l) const {
  if (SlotContains(del_out_, src, l, dst)) return false;
  if (SlotContains(ins_out_, src, l, dst)) return true;
  return base_.HasEdge(src, dst, l);
}

std::vector<graph::VertexId> DeltaGraph::OutNeighbors(graph::VertexId v,
                                                      graph::Label l) const {
  std::vector<graph::VertexId> out;
  out.reserve(OutDegree(v, l));
  ForEachOutNeighbor(v, l, [&](graph::VertexId u) { out.push_back(u); });
  return out;
}

std::vector<graph::VertexId> DeltaGraph::InNeighbors(graph::VertexId v,
                                                     graph::Label l) const {
  std::vector<graph::VertexId> out;
  out.reserve(InDegree(v, l));
  ForEachInNeighbor(v, l, [&](graph::VertexId u) { out.push_back(u); });
  return out;
}

util::Status DeltaGraph::Apply(std::span<const EdgeDelta> batch) {
  // Validate the whole batch before mutating anything, so a failed Apply
  // leaves the overlay exactly as it was.
  for (const EdgeDelta& d : batch) {
    if (d.edge.src >= num_vertices() || d.edge.dst >= num_vertices()) {
      return util::InvalidArgumentError("delta edge endpoint out of range");
    }
    if (d.edge.label >= num_labels()) {
      return util::InvalidArgumentError("delta edge label out of range");
    }
  }

  for (const EdgeDelta& d : batch) {
    const graph::Edge& e = d.edge;
    const bool in_base = base_.HasEdge(e.src, e.dst, e.label);
    if (d.op == DeltaOp::kInsert) {
      if (in_base) {
        // Re-inserting a base edge: only meaningful if it was deleted.
        if (SlotErase(del_out_, e.src, e.label, e.dst)) {
          SlotErase(del_in_, e.dst, e.label, e.src);
          delta_hash_ ^= DeltaOpHash(e, DeltaOp::kDelete);
          --num_deleted_;
          ++rel_delta_[e.label];
          ++num_edges_;
        }
      } else if (SlotInsert(ins_out_, e.src, e.label, e.dst)) {
        SlotInsert(ins_in_, e.dst, e.label, e.src);
        delta_hash_ ^= DeltaOpHash(e, DeltaOp::kInsert);
        ++num_inserted_;
        ++rel_delta_[e.label];
        ++num_edges_;
      }
    } else {
      if (SlotErase(ins_out_, e.src, e.label, e.dst)) {
        // Deleting a pending insert reverts it.
        SlotErase(ins_in_, e.dst, e.label, e.src);
        delta_hash_ ^= DeltaOpHash(e, DeltaOp::kInsert);
        --num_inserted_;
        --rel_delta_[e.label];
        --num_edges_;
      } else if (in_base && SlotInsert(del_out_, e.src, e.label, e.dst)) {
        SlotInsert(del_in_, e.dst, e.label, e.src);
        delta_hash_ ^= DeltaOpHash(e, DeltaOp::kDelete);
        ++num_deleted_;
        --rel_delta_[e.label];
        --num_edges_;
      }
    }
  }
  ++epoch_;
  return util::Status::OK();
}

NetDelta DeltaGraph::CollectNetDelta() const {
  NetDelta net;
  net.inserted.reserve(num_inserted_);
  net.deleted.reserve(num_deleted_);
  auto collect = [](const SlotMap& slots, std::vector<graph::Edge>& out) {
    for (const auto& [key, dsts] : slots) {
      const graph::Label l = static_cast<graph::Label>(key >> 32);
      const graph::VertexId src = static_cast<graph::VertexId>(key);
      for (graph::VertexId dst : dsts) out.push_back({src, dst, l});
    }
    std::sort(out.begin(), out.end(),
              [](const graph::Edge& a, const graph::Edge& b) {
                if (a.label != b.label) return a.label < b.label;
                if (a.src != b.src) return a.src < b.src;
                return a.dst < b.dst;
              });
  };
  collect(ins_out_, net.inserted);
  collect(del_out_, net.deleted);
  return net;
}

util::StatusOr<graph::Graph> DeltaGraph::Compact() const {
  std::vector<graph::Edge> edges;
  edges.reserve(num_edges_);
  for (const graph::Edge& e : base_.edges()) {
    if (!SlotContains(del_out_, e.src, e.label, e.dst)) edges.push_back(e);
  }
  for (const auto& [key, dsts] : ins_out_) {
    const graph::Label l = static_cast<graph::Label>(key >> 32);
    const graph::VertexId src = static_cast<graph::VertexId>(key);
    for (graph::VertexId dst : dsts) edges.push_back({src, dst, l});
  }
  return graph::Graph::Create(num_vertices(), num_labels(), std::move(edges),
                              base_.vertex_labels());
}

}  // namespace cegraph::dynamic
