#include "dynamic/delta_io.h"

#include <fstream>
#include <sstream>
#include <string>

#include "util/random.h"

namespace cegraph::dynamic {

util::Status WriteDeltaText(std::span<const EdgeDelta> batch,
                            std::ostream& os) {
  os << "# cegraph delta batch: (+|-) src dst label, one op per line\n";
  for (const EdgeDelta& d : batch) {
    os << (d.op == DeltaOp::kInsert ? '+' : '-') << ' ' << d.edge.src << ' '
       << d.edge.dst << ' ' << d.edge.label << '\n';
  }
  if (!os) return util::InternalError("write error on delta stream");
  return util::Status::OK();
}

util::StatusOr<std::vector<EdgeDelta>> ReadDeltaText(std::istream& is) {
  std::vector<EdgeDelta> batch;
  std::string line;
  size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    std::istringstream ls(line);
    std::string op;
    if (!(ls >> op) || op[0] == '#') continue;
    EdgeDelta d;
    if (op == "+") {
      d.op = DeltaOp::kInsert;
    } else if (op == "-") {
      d.op = DeltaOp::kDelete;
    } else {
      return util::InvalidArgumentError(
          "delta line " + std::to_string(line_no) +
          ": expected '+' or '-', got '" + op + "'");
    }
    if (!(ls >> d.edge.src >> d.edge.dst >> d.edge.label)) {
      return util::InvalidArgumentError(
          "delta line " + std::to_string(line_no) +
          ": expected 'src dst label'");
    }
    batch.push_back(d);
  }
  if (is.bad()) return util::InternalError("read error on delta stream");
  return batch;
}

util::Status SaveDeltaBatch(std::span<const EdgeDelta> batch,
                            const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return util::InternalError("cannot open " + path + " for write");
  return WriteDeltaText(batch, out);
}

util::StatusOr<std::vector<EdgeDelta>> LoadDeltaBatch(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return util::NotFoundError("cannot open " + path);
  return ReadDeltaText(in);
}

std::vector<EdgeDelta> RandomEdgeBatch(const graph::Graph& g, size_t n,
                                       uint64_t seed) {
  util::Rng rng(seed);
  const auto& edges = g.edges();
  std::vector<EdgeDelta> batch;
  batch.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (i % 2 == 0 && !edges.empty()) {
      batch.push_back({edges[rng.Uniform(edges.size())], DeltaOp::kDelete});
    } else {
      batch.push_back(
          {{static_cast<graph::VertexId>(rng.Uniform(g.num_vertices())),
            static_cast<graph::VertexId>(rng.Uniform(g.num_vertices())),
            static_cast<graph::Label>(rng.Uniform(g.num_labels()))},
           DeltaOp::kInsert});
    }
  }
  return batch;
}

}  // namespace cegraph::dynamic
