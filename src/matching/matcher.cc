#include "matching/matcher.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace cegraph::matching {

namespace {

using graph::Graph;
using graph::Label;
using graph::VertexId;
using query::EdgeSet;
using query::QueryEdge;
using query::QueryGraph;
using query::QVertex;

/// A pendant-tree peel step: `removed` had exactly one incident live edge
/// `edge_index`, anchored at `anchor`.
struct PeelStep {
  uint32_t edge_index;
  QVertex removed;
  QVertex anchor;
};

/// Peels degree-1 query vertices (never via self-loops) until only the
/// 2-core remains. Returns the peel sequence in removal order; `core_edges`
/// receives the surviving edges.
std::vector<PeelStep> PeelPendantTrees(const QueryGraph& q,
                                       EdgeSet* core_edges) {
  const uint32_t m = q.num_edges();
  std::vector<bool> edge_live(m, true);
  std::vector<int> degree(q.num_vertices(), 0);
  for (uint32_t i = 0; i < m; ++i) {
    const QueryEdge& e = q.edge(i);
    if (e.src == e.dst) continue;  // self-loops stay in the core
    ++degree[e.src];
    ++degree[e.dst];
  }
  std::vector<PeelStep> steps;
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (QVertex v = 0; v < q.num_vertices(); ++v) {
      if (degree[v] != 1) continue;
      // Find the single live non-self-loop edge at v.
      for (uint32_t ei : q.IncidentEdges(v)) {
        if (!edge_live[ei]) continue;
        const QueryEdge& e = q.edge(ei);
        if (e.src == e.dst) continue;
        const QVertex other = e.src == v ? e.dst : e.src;
        edge_live[ei] = false;
        --degree[v];
        --degree[other];
        steps.push_back({ei, v, other});
        progressed = true;
        break;
      }
    }
  }
  EdgeSet core = 0;
  for (uint32_t i = 0; i < m; ++i) {
    if (edge_live[i]) core |= EdgeSet{1} << i;
  }
  *core_edges = core;
  return steps;
}

/// Per-query-vertex weight vectors for the pendant-tree DP. A vertex with no
/// accumulated weight is implicitly all-ones.
class WeightTable {
 public:
  WeightTable(uint32_t num_qvertices, uint32_t num_vertices)
      : num_vertices_(num_vertices), weights_(num_qvertices) {}

  bool HasWeights(QVertex u) const { return !weights_[u].empty(); }

  double Get(QVertex u, VertexId v) const {
    return weights_[u].empty() ? 1.0 : weights_[u][v];
  }

  std::vector<double>& Mutable(QVertex u) {
    if (weights_[u].empty()) weights_[u].assign(num_vertices_, 1.0);
    return weights_[u];
  }

 private:
  uint32_t num_vertices_;
  std::vector<std::vector<double>> weights_;
};

/// Folds one peel step into the anchor's weight vector:
///   w_anchor[v] *= sum over data-neighbors u of v (via the peeled edge)
///                  of w_removed[u].
void ApplyPeelStep(const Graph& g, const QueryGraph& q, const PeelStep& step,
                   WeightTable& weights) {
  const QueryEdge& e = q.edge(step.edge_index);
  const bool removed_is_src = (e.src == step.removed);
  std::vector<double>& anchor_w = weights.Mutable(step.anchor);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (anchor_w[v] == 0.0) continue;
    double sum = 0;
    // If the removed vertex is the edge source, the anchor plays the
    // destination role, so its data-candidates' neighbors come via
    // InNeighbors; symmetrically otherwise.
    const auto nbrs = removed_is_src ? g.InNeighbors(v, e.label)
                                     : g.OutNeighbors(v, e.label);
    for (VertexId u : nbrs) sum += weights.Get(step.removed, u);
    anchor_w[v] *= sum;
  }
}

/// Backtracking search over the core edges. Employed only for cyclic
/// queries; pendant weights are folded in at the leaves.
class CoreSearch {
 public:
  CoreSearch(const Graph& g, const QueryGraph& q, EdgeSet core,
             const WeightTable& weights, const MatchOptions& options)
      : g_(g), q_(q), weights_(weights), options_(options) {
    for (uint32_t i = 0; i < q.num_edges(); ++i) {
      if (core & (EdgeSet{1} << i)) core_edges_.push_back(i);
    }
    assignment_.assign(q.num_vertices(), kUnassigned);
    PlanOrder();
  }

  util::StatusOr<double> Run() {
    count_ = 0;
    steps_ = 0;
    const util::Status status = Search(0, 1.0);
    if (!status.ok()) return status;
    return count_;
  }

 private:
  static constexpr VertexId kUnassigned = 0xFFFFFFFF;

  struct PlanStep {
    uint32_t edge_index;
    // The vertex newly bound by this step, or kNoNewVertex if both
    // endpoints are already bound (a pure "check" edge closing a cycle).
    QVertex new_vertex;
    bool new_is_src;
  };
  static constexpr QVertex kNoNewVertex = 0xFFFFFFFF;

  /// Greedy matching order: start from the smallest relation; repeatedly
  /// prefer check edges (free pruning), otherwise extend via the edge whose
  /// relation has the smallest maximum fan-out.
  void PlanOrder() {
    std::vector<bool> used(core_edges_.size(), false);
    uint32_t bound_mask = 0;  // query-vertex bitmask

    // Seed: smallest relation among core edges.
    size_t seed = 0;
    for (size_t i = 1; i < core_edges_.size(); ++i) {
      if (g_.RelationSize(q_.edge(core_edges_[i]).label) <
          g_.RelationSize(q_.edge(core_edges_[seed]).label)) {
        seed = i;
      }
    }
    const QueryEdge& se = q_.edge(core_edges_[seed]);
    plan_.push_back({core_edges_[seed], kNoNewVertex, false});  // seed scan
    bound_mask |= (1u << se.src) | (1u << se.dst);
    used[seed] = true;

    while (plan_.size() < core_edges_.size() + 0 &&
           std::count(used.begin(), used.end(), true) <
               static_cast<long>(core_edges_.size())) {
      // First, take any check edges.
      bool added = false;
      for (size_t i = 0; i < core_edges_.size(); ++i) {
        if (used[i]) continue;
        const QueryEdge& e = q_.edge(core_edges_[i]);
        const bool src_bound = bound_mask & (1u << e.src);
        const bool dst_bound = bound_mask & (1u << e.dst);
        if (src_bound && dst_bound) {
          plan_.push_back({core_edges_[i], kNoNewVertex, false});
          used[i] = true;
          added = true;
        }
      }
      if (added) continue;
      // Otherwise extend: pick the connected edge with the smallest
      // worst-case fan-out.
      size_t best = core_edges_.size();
      uint64_t best_fanout = UINT64_MAX;
      for (size_t i = 0; i < core_edges_.size(); ++i) {
        if (used[i]) continue;
        const QueryEdge& e = q_.edge(core_edges_[i]);
        const bool src_bound = bound_mask & (1u << e.src);
        const bool dst_bound = bound_mask & (1u << e.dst);
        if (!src_bound && !dst_bound) continue;
        const uint64_t fanout = src_bound ? g_.MaxOutDegree(e.label)
                                          : g_.MaxInDegree(e.label);
        if (fanout < best_fanout) {
          best_fanout = fanout;
          best = i;
        }
      }
      if (best == core_edges_.size()) break;  // disconnected core: caller
                                              // guarantees connectivity
      const QueryEdge& e = q_.edge(core_edges_[best]);
      const bool src_bound = bound_mask & (1u << e.src);
      const QVertex nv = src_bound ? e.dst : e.src;
      plan_.push_back({core_edges_[best], nv, !src_bound});
      bound_mask |= 1u << nv;
      used[best] = true;
    }

    // Record which query vertices carry pendant weights, applied when bound.
  }

  util::Status Search(size_t depth, double weight_product) {
    if (depth == plan_.size()) {
      count_ += weight_product;
      if (count_ > options_.max_count) {
        return util::OutOfRangeError("count exceeds max_count");
      }
      return util::Status::OK();
    }
    const PlanStep& step = plan_[depth];
    const QueryEdge& e = q_.edge(step.edge_index);

    if (depth == 0) {
      // Seed scan over the whole relation.
      for (const graph::Edge& de : g_.RelationEdges(e.label)) {
        if (++steps_ > options_.step_budget) {
          return util::ResourceExhaustedError("matcher step budget exceeded");
        }
        if (e.src == e.dst && de.src != de.dst) continue;
        assignment_[e.src] = de.src;
        assignment_[e.dst] = de.dst;
        double w = weight_product * weights_.Get(e.src, de.src);
        if (e.dst != e.src) w *= weights_.Get(e.dst, de.dst);
        if (w != 0.0) {
          CEGRAPH_RETURN_IF_ERROR(Search(depth + 1, w));
        }
        assignment_[e.src] = kUnassigned;
        assignment_[e.dst] = kUnassigned;
      }
      return util::Status::OK();
    }

    if (step.new_vertex == kNoNewVertex) {
      // Check edge: both endpoints bound.
      if (++steps_ > options_.step_budget) {
        return util::ResourceExhaustedError("matcher step budget exceeded");
      }
      if (!g_.HasEdge(assignment_[e.src], assignment_[e.dst], e.label)) {
        return util::Status::OK();
      }
      return Search(depth + 1, weight_product);
    }

    // Extension edge.
    const QVertex nv = step.new_vertex;
    const VertexId anchor =
        step.new_is_src ? assignment_[e.dst] : assignment_[e.src];
    const auto candidates = step.new_is_src
                                ? g_.InNeighbors(anchor, e.label)
                                : g_.OutNeighbors(anchor, e.label);
    for (VertexId cand : candidates) {
      if (++steps_ > options_.step_budget) {
        return util::ResourceExhaustedError("matcher step budget exceeded");
      }
      const double w = weight_product * weights_.Get(nv, cand);
      if (w == 0.0) continue;
      assignment_[nv] = cand;
      CEGRAPH_RETURN_IF_ERROR(Search(depth + 1, w));
      assignment_[nv] = kUnassigned;
    }
    return util::Status::OK();
  }

  const Graph& g_;
  const QueryGraph& q_;
  const WeightTable& weights_;
  const MatchOptions& options_;
  std::vector<uint32_t> core_edges_;
  std::vector<PlanStep> plan_;
  std::vector<VertexId> assignment_;
  double count_ = 0;
  uint64_t steps_ = 0;
};

}  // namespace

util::StatusOr<double> Matcher::Count(const query::QueryGraph& q,
                                      const MatchOptions& options) const {
  if (q.num_edges() == 0) {
    return util::InvalidArgumentError("empty query");
  }
  if (!q.IsConnected()) {
    return util::InvalidArgumentError("query must be connected");
  }

  EdgeSet core = 0;
  const std::vector<PeelStep> peel = PeelPendantTrees(q, &core);
  WeightTable weights(q.num_vertices(), g_.num_vertices());
  // Vertex-label constraints enter as 0/1 masks on the weight vectors;
  // the tree DP and the core search both consume weights exactly once per
  // binding, so masking here enforces the constraint everywhere.
  if (q.has_vertex_constraints()) {
    for (QVertex u = 0; u < q.num_vertices(); ++u) {
      const graph::VertexLabel need = q.vertex_constraint(u);
      if (need == QueryGraph::kAnyVertexLabel) continue;
      std::vector<double>& w = weights.Mutable(u);
      for (VertexId v = 0; v < g_.num_vertices(); ++v) {
        if (g_.vertex_label(v) != need) w[v] = 0.0;
      }
    }
  }
  for (const PeelStep& step : peel) {
    ApplyPeelStep(g_, q, step, weights);
  }

  if (core == 0) {
    // Pure tree: the final anchor vertex holds the full product.
    const QVertex root = peel.back().anchor;
    double total = 0;
    for (VertexId v = 0; v < g_.num_vertices(); ++v) {
      total += weights.Get(root, v);
      if (total > options.max_count) {
        return util::OutOfRangeError("count exceeds max_count");
      }
    }
    return total;
  }

  CoreSearch search(g_, q, core, weights, options);
  return search.Run();
}

util::Status Matcher::Enumerate(
    const query::QueryGraph& q, const MatchOptions& options,
    const std::function<bool(const std::vector<graph::VertexId>&)>& callback)
    const {
  if (q.num_edges() == 0 || !q.IsConnected()) {
    return util::InvalidArgumentError("query must be non-empty and connected");
  }
  // Simple backtracking over all edges in a connected order (no DP; callers
  // use this for small patterns only).
  std::vector<uint32_t> order;
  std::vector<bool> used(q.num_edges(), false);
  uint32_t bound_mask = 0;
  order.push_back(0);
  used[0] = true;
  bound_mask |= (1u << q.edge(0).src) | (1u << q.edge(0).dst);
  while (order.size() < q.num_edges()) {
    for (uint32_t i = 0; i < q.num_edges(); ++i) {
      if (used[i]) continue;
      const QueryEdge& e = q.edge(i);
      if ((bound_mask & (1u << e.src)) || (bound_mask & (1u << e.dst))) {
        order.push_back(i);
        used[i] = true;
        bound_mask |= (1u << e.src) | (1u << e.dst);
        break;
      }
    }
  }

  std::vector<VertexId> assignment(q.num_vertices(), 0xFFFFFFFF);
  uint64_t steps = 0;
  auto satisfies = [&](QVertex u, VertexId v) {
    const graph::VertexLabel need = q.vertex_constraint(u);
    return need == QueryGraph::kAnyVertexLabel ||
           g_.vertex_label(v) == need;
  };
  // Recursive lambda over the edge order.
  std::function<util::Status(size_t)> rec =
      [&](size_t depth) -> util::Status {
    if (depth == order.size()) {
      if (!callback(assignment)) {
        return util::OutOfRangeError("enumeration stopped by callback");
      }
      return util::Status::OK();
    }
    const QueryEdge& e = q.edge(order[depth]);
    const bool src_bound = assignment[e.src] != 0xFFFFFFFF;
    const bool dst_bound = assignment[e.dst] != 0xFFFFFFFF;
    if (++steps > options.step_budget) {
      return util::ResourceExhaustedError("enumeration step budget exceeded");
    }
    if (src_bound && dst_bound) {
      if (!g_.HasEdge(assignment[e.src], assignment[e.dst], e.label)) {
        return util::Status::OK();
      }
      return rec(depth + 1);
    }
    if (!src_bound && !dst_bound) {
      for (const graph::Edge& de : g_.RelationEdges(e.label)) {
        if (++steps > options.step_budget) {
          return util::ResourceExhaustedError(
              "enumeration step budget exceeded");
        }
        if (e.src == e.dst && de.src != de.dst) continue;
        if (!satisfies(e.src, de.src) || !satisfies(e.dst, de.dst)) continue;
        assignment[e.src] = de.src;
        assignment[e.dst] = de.dst;
        CEGRAPH_RETURN_IF_ERROR(rec(depth + 1));
        assignment[e.src] = 0xFFFFFFFF;
        assignment[e.dst] = 0xFFFFFFFF;
      }
      return util::Status::OK();
    }
    const QVertex nv = src_bound ? e.dst : e.src;
    const VertexId anchor = src_bound ? assignment[e.src] : assignment[e.dst];
    const auto candidates = src_bound ? g_.OutNeighbors(anchor, e.label)
                                      : g_.InNeighbors(anchor, e.label);
    for (VertexId cand : candidates) {
      if (++steps > options.step_budget) {
        return util::ResourceExhaustedError(
            "enumeration step budget exceeded");
      }
      if (!satisfies(nv, cand)) continue;
      assignment[nv] = cand;
      CEGRAPH_RETURN_IF_ERROR(rec(depth + 1));
      assignment[nv] = 0xFFFFFFFF;
    }
    return util::Status::OK();
  };

  util::Status status = rec(0);
  if (!status.ok() && status.code() == util::StatusCode::kOutOfRange) {
    return util::Status::OK();  // clean early stop requested by callback
  }
  return status;
}

util::StatusOr<std::vector<graph::Label>> Matcher::SampleShapeEmbedding(
    const query::QueryGraph& shape, util::Rng& rng, int max_restarts,
    std::vector<graph::VertexId>* assignment_out) const {
  if (shape.num_edges() == 0 || !shape.IsConnected()) {
    return util::InvalidArgumentError("shape must be non-empty and connected");
  }
  if (g_.num_edges() == 0) {
    return util::NotFoundError("graph has no edges");
  }

  // Connected edge order starting from edge 0.
  std::vector<uint32_t> order;
  {
    std::vector<bool> used(shape.num_edges(), false);
    uint32_t bound_mask = 0;
    order.push_back(0);
    used[0] = true;
    bound_mask |= (1u << shape.edge(0).src) | (1u << shape.edge(0).dst);
    while (order.size() < shape.num_edges()) {
      for (uint32_t i = 0; i < shape.num_edges(); ++i) {
        if (used[i]) continue;
        const QueryEdge& e = shape.edge(i);
        if ((bound_mask & (1u << e.src)) || (bound_mask & (1u << e.dst))) {
          order.push_back(i);
          used[i] = true;
          bound_mask |= (1u << e.src) | (1u << e.dst);
          break;
        }
      }
    }
  }

  std::vector<VertexId> assignment;
  std::vector<graph::Label> labels(shape.num_edges(), 0);

  // Any-label adjacency collector.
  std::vector<std::pair<VertexId, graph::Label>> cands;
  auto collect = [&](VertexId v, bool outgoing) {
    cands.clear();
    for (graph::Label l = 0; l < g_.num_labels(); ++l) {
      const auto nbrs = outgoing ? g_.OutNeighbors(v, l)
                                 : g_.InNeighbors(v, l);
      for (VertexId u : nbrs) cands.emplace_back(u, l);
    }
  };

  for (int attempt = 0; attempt < max_restarts; ++attempt) {
    assignment.assign(shape.num_vertices(), 0xFFFFFFFF);
    bool ok = true;
    for (size_t step = 0; step < order.size() && ok; ++step) {
      const QueryEdge& e = shape.edge(order[step]);
      const bool src_bound = assignment[e.src] != 0xFFFFFFFF;
      const bool dst_bound = assignment[e.dst] != 0xFFFFFFFF;
      if (!src_bound && !dst_bound) {
        const graph::Edge& de =
            g_.edges()[rng.Uniform(g_.num_edges())];
        if (e.src == e.dst && de.src != de.dst) {
          ok = false;
          break;
        }
        assignment[e.src] = de.src;
        assignment[e.dst] = de.dst;
        labels[order[step]] = de.label;
        continue;
      }
      if (src_bound && dst_bound) {
        // Need any edge between the bound endpoints; pick a random label
        // among those present.
        std::vector<graph::Label> present;
        for (graph::Label l = 0; l < g_.num_labels(); ++l) {
          if (g_.HasEdge(assignment[e.src], assignment[e.dst], l)) {
            present.push_back(l);
          }
        }
        if (present.empty()) {
          ok = false;
          break;
        }
        labels[order[step]] = present[rng.Uniform(present.size())];
        continue;
      }
      const QVertex nv = src_bound ? e.dst : e.src;
      const VertexId anchor =
          src_bound ? assignment[e.src] : assignment[e.dst];
      collect(anchor, /*outgoing=*/src_bound);
      if (cands.empty()) {
        ok = false;
        break;
      }
      const auto& [u, l] = cands[rng.Uniform(cands.size())];
      assignment[nv] = u;
      labels[order[step]] = l;
    }
    if (ok) {
      if (assignment_out != nullptr) *assignment_out = assignment;
      return labels;
    }
  }
  return util::NotFoundError("no embedding found within restart budget");
}

}  // namespace cegraph::matching
