#ifndef CEGRAPH_MATCHING_MATCHER_H_
#define CEGRAPH_MATCHING_MATCHER_H_

#include <functional>
#include <limits>
#include <vector>

#include "graph/graph.h"
#include "query/query_graph.h"
#include "util/random.h"
#include "util/status.h"

namespace cegraph::matching {

/// Resource limits for exact matching. Counting aborts with
/// ResourceExhausted / OutOfRange instead of running away; workload
/// generation drops such queries, mirroring the paper's per-query time
/// limits.
struct MatchOptions {
  /// Backtracking-step budget (candidate vertices tried).
  uint64_t step_budget = 200'000'000;
  /// Early-exit threshold: counting stops with OutOfRange once the exact
  /// count provably exceeds this value.
  double max_count = std::numeric_limits<double>::infinity();
};

/// Exact subgraph-matching / join engine over a labeled graph.
///
/// `Count` computes the exact number of homomorphisms of a query into the
/// graph — i.e. the output cardinality of the natural join Q = ⋈ R_i, which
/// is the quantity every estimator in the paper approximates. The
/// implementation decomposes the query into its 2-core plus pendant trees:
/// pendant trees are counted by message-passing dynamic programming in
/// O(|q| · |E|) (no enumeration), and only the core — whose matches are
/// constrained by its cycles — is enumerated by label-indexed backtracking.
/// Acyclic queries therefore never enumerate at all, which is what makes
/// computing ground truth for thousands of workload queries feasible.
class Matcher {
 public:
  explicit Matcher(const graph::Graph& g) : g_(g) {}

  /// Exact homomorphism count of `q` (the join output size). Counts are
  /// returned as double; all counts in this library are < 2^53 so doubles
  /// are exact. Fails with InvalidArgument for empty/disconnected queries,
  /// ResourceExhausted when the step budget is exceeded and OutOfRange when
  /// the count exceeds options.max_count.
  util::StatusOr<double> Count(const query::QueryGraph& q,
                               const MatchOptions& options = {}) const;

  /// Enumerates every homomorphism; `callback` receives the assignment
  /// (query vertex -> data vertex) and returns false to stop early.
  /// Used for materializing small-size joins when building degree
  /// statistics (§5.1.1).
  util::Status Enumerate(
      const query::QueryGraph& q, const MatchOptions& options,
      const std::function<bool(const std::vector<graph::VertexId>&)>&
          callback) const;

  /// Samples one *label-oblivious* embedding of `shape` (labels in `shape`
  /// are ignored) by randomized backtracking with up to `max_restarts`
  /// restarts. On success returns the matched label of each shape edge —
  /// this is how workload instantiation guarantees non-empty queries
  /// ("randomly matching each edge of the query template one at a time",
  /// §6.1). Optionally returns the vertex assignment.
  util::StatusOr<std::vector<graph::Label>> SampleShapeEmbedding(
      const query::QueryGraph& shape, util::Rng& rng, int max_restarts = 200,
      std::vector<graph::VertexId>* assignment = nullptr) const;

 private:
  const graph::Graph& g_;
};

}  // namespace cegraph::matching

#endif  // CEGRAPH_MATCHING_MATCHER_H_
