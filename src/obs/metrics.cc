#include "obs/metrics.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string_view>

namespace cegraph::obs {

namespace {

bool EnabledFromEnv() {
  const char* env = std::getenv("CEGRAPH_METRICS");
  if (env == nullptr) return true;
  const std::string value(env);
  return !(value == "off" || value == "0" || value == "false");
}

std::atomic<bool>& EnabledFlag() {
  static std::atomic<bool> enabled{EnabledFromEnv()};
  return enabled;
}

void AtomicDoubleAdd(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

void AtomicDoubleMax(std::atomic<double>& target, double value) {
  double current = target.load(std::memory_order_relaxed);
  while (current < value &&
         !target.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
  }
}

std::string FormatDouble(double v) {
  if (v == static_cast<double>(static_cast<int64_t>(v)) &&
      std::abs(v) < 1e15) {
    return std::to_string(static_cast<int64_t>(v));
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

bool MetricsEnabled() {
  return EnabledFlag().load(std::memory_order_relaxed);
}

void SetMetricsEnabled(bool enabled) {
  EnabledFlag().store(enabled, std::memory_order_relaxed);
}

// --- Histogram --------------------------------------------------------------

double HistogramSnapshot::BucketUpperBound(size_t i) {
  if (i + 1 >= kHistogramBuckets) {
    return std::numeric_limits<double>::infinity();
  }
  if (i == 0) return 1.0;
  return std::exp2(static_cast<double>(i) / 4.0);
}

size_t Histogram::BucketIndex(double value) {
  if (!(value >= 1.0)) return 0;  // [0,1) and any NaN guarded by caller
  // Bucket i >= 1 covers [2^((i-1)/4), 2^(i/4)).
  const double idx = std::floor(4.0 * std::log2(value));
  if (idx >= static_cast<double>(kHistogramBuckets - 1)) {
    return kHistogramBuckets - 1;
  }
  size_t bucket = 1 + static_cast<size_t>(idx);
  // log2 rounding at exact powers can land one bucket off; nudge so the
  // invariant BucketUpperBound(bucket-1) <= value < BucketUpperBound(bucket)
  // holds exactly.
  while (bucket > 1 &&
         value < HistogramSnapshot::BucketUpperBound(bucket - 1)) {
    --bucket;
  }
  while (bucket + 1 < kHistogramBuckets &&
         value >= HistogramSnapshot::BucketUpperBound(bucket)) {
    ++bucket;
  }
  return std::min(bucket, kHistogramBuckets - 1);
}

void Histogram::Record(double value) {
  if (!(value >= 0) || !std::isfinite(value)) return;
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicDoubleAdd(sum_, value);
  AtomicDoubleMax(max_, value);
}

void Histogram::Reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snapshot;
  snapshot.count = count_.load(std::memory_order_relaxed);
  snapshot.sum = sum_.load(std::memory_order_relaxed);
  snapshot.max = max_.load(std::memory_order_relaxed);
  for (size_t i = 0; i < kHistogramBuckets; ++i) {
    snapshot.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return snapshot;
}

double HistogramSnapshot::Quantile(double p) const {
  // Resolve against the bucket counts, not `count` — the two can be
  // torn by one mid-record (see the header's consistency note).
  uint64_t total = 0;
  for (uint64_t b : buckets) total += b;
  if (total == 0) return 0;
  const double rank = p * static_cast<double>(total);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kHistogramBuckets; ++i) {
    cumulative += buckets[i];
    if (static_cast<double>(cumulative) >= rank) {
      const double bound = BucketUpperBound(i);
      return std::min(bound, max);
    }
  }
  return max;
}

QuantileSummary HistogramSnapshot::Summary() const {
  QuantileSummary s;
  s.count = count;
  s.mean = count > 0 ? sum / static_cast<double>(count) : 0;
  s.p50 = Quantile(0.50);
  s.p90 = Quantile(0.90);
  s.p99 = Quantile(0.99);
  s.max = max;
  return s;
}

void HistogramSnapshot::Merge(const HistogramSnapshot& other) {
  count += other.count;
  sum += other.sum;
  max = std::max(max, other.max);
  for (size_t i = 0; i < kHistogramBuckets; ++i) {
    buckets[i] += other.buckets[i];
  }
}

// --- PromWriter -------------------------------------------------------------

void PromWriter::TypeHeader(const std::string& name, const char* type) {
  if (std::find(typed_.begin(), typed_.end(), name) != typed_.end()) return;
  typed_.push_back(name);
  out_->append("# TYPE ");
  out_->append(name);
  out_->push_back(' ');
  out_->append(type);
  out_->push_back('\n');
}

namespace {
void AppendSeries(std::string* out, const std::string& name,
                  const std::string& labels, const std::string& value) {
  out->append(name);
  if (!labels.empty()) {
    out->push_back('{');
    out->append(labels);
    out->push_back('}');
  }
  out->push_back(' ');
  out->append(value);
  out->push_back('\n');
}
}  // namespace

void PromWriter::WriteCounter(const std::string& name,
                              const std::string& labels, uint64_t value) {
  TypeHeader(name, "counter");
  AppendSeries(out_, name, labels, std::to_string(value));
}

void PromWriter::WriteGauge(const std::string& name,
                            const std::string& labels, double value) {
  TypeHeader(name, "gauge");
  AppendSeries(out_, name, labels, FormatDouble(value));
}

void PromWriter::WriteHistogram(const std::string& name,
                                const std::string& labels,
                                const HistogramSnapshot& snapshot) {
  TypeHeader(name, "histogram");
  const std::string sep = labels.empty() ? "" : ",";
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kHistogramBuckets; ++i) {
    cumulative += snapshot.buckets[i];
    // Skip interior empty buckets to keep the page small; always emit
    // the +Inf edge so the series is well-formed.
    if (snapshot.buckets[i] == 0 && i + 1 < kHistogramBuckets) continue;
    const double bound = HistogramSnapshot::BucketUpperBound(i);
    const std::string le =
        std::isinf(bound) ? "+Inf" : FormatDouble(bound);
    AppendSeries(out_, name + "_bucket",
                 labels + sep + "le=\"" + le + "\"",
                 std::to_string(cumulative));
  }
  AppendSeries(out_, name + "_sum", labels, FormatDouble(snapshot.sum));
  AppendSeries(out_, name + "_count", labels,
               std::to_string(snapshot.count));
}

// --- MetricsRegistry --------------------------------------------------------

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

uint64_t MetricsRegistry::AddCollector(Collector collector) {
  std::lock_guard<std::mutex> lock(mutex_);
  const uint64_t id = next_id_++;
  collectors_.emplace_back(id, std::move(collector));
  return id;
}

void MetricsRegistry::RemoveCollector(uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  collectors_.erase(
      std::remove_if(collectors_.begin(), collectors_.end(),
                     [id](const auto& entry) { return entry.first == id; }),
      collectors_.end());
}

std::string MetricsRegistry::RenderPrometheus() const {
  // Copy the collector list so a collector that (un)registers another
  // component mid-render cannot deadlock or invalidate iteration.
  std::vector<std::pair<uint64_t, Collector>> collectors;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    collectors = collectors_;
  }
  std::string out;
  PromWriter writer(&out);
  for (const auto& [id, collector] : collectors) collector(writer);
  return out;
}

size_t MetricsRegistry::collector_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return collectors_.size();
}

// --- MetricsHttpServer ------------------------------------------------------

void MetricsHttpServer::SetHealthBody(
    std::function<std::string()> health_body) {
  health_body_ = std::move(health_body);
}

util::Status MetricsHttpServer::Start(const std::string& host, int port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return util::InternalError("metrics: socket() failed");
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return util::InvalidArgumentError("metrics: bad host '" + host + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return util::InternalError("metrics: cannot listen on " + host + ":" +
                               std::to_string(port));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    port_ = ntohs(bound.sin_port);
  } else {
    port_ = port;
  }
  stopping_.store(false);
  thread_ = std::thread([this] { Serve(); });
  return util::Status::OK();
}

void MetricsHttpServer::Stop() {
  if (listen_fd_ < 0) return;
  stopping_.store(true);
  // Unblock accept(): shutdown + close makes the blocked call return.
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  if (thread_.joinable()) thread_.join();
  listen_fd_ = -1;
  port_ = 0;
}

void MetricsHttpServer::Serve() {
  while (!stopping_.load()) {
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      if (stopping_.load()) return;
      continue;
    }
    // One read is enough for the tiny requests a scraper or a health
    // check sends; only the request line's path matters.
    char buf[1024];
    const ssize_t got = ::recv(client, buf, sizeof(buf) - 1, 0);
    std::string path;
    if (got > 0) {
      buf[got] = '\0';
      const std::string_view line(buf);
      const size_t method_end = line.find(' ');
      if (method_end != std::string_view::npos) {
        const size_t path_end = line.find_first_of(" \r\n", method_end + 1);
        path = std::string(line.substr(
            method_end + 1, path_end == std::string_view::npos
                                ? std::string_view::npos
                                : path_end - method_end - 1));
        const size_t query = path.find('?');
        if (query != std::string::npos) path.resize(query);
      }
    }
    const char* status = "200 OK";
    const char* content_type = "text/plain; charset=utf-8";
    std::string body;
    if (path == "/metrics") {
      content_type = "text/plain; version=0.0.4";
      body = MetricsRegistry::Global().RenderPrometheus();
    } else if (path == "/healthz") {
      body = health_body_ ? health_body_() : std::string("ok\n");
    } else {
      status = "404 Not Found";
      body = "not found: '" + path + "' (try /metrics or /healthz)\n";
    }
    std::string response = "HTTP/1.0 " + std::string(status) +
                           "\r\n"
                           "Content-Type: " +
                           content_type +
                           "\r\n"
                           "Content-Length: " +
                           std::to_string(body.size()) +
                           "\r\n"
                           "Connection: close\r\n\r\n" +
                           body;
    size_t sent = 0;
    while (sent < response.size()) {
      const ssize_t rc =
          ::send(client, response.data() + sent, response.size() - sent,
                 MSG_NOSIGNAL);
      if (rc <= 0) break;
      sent += static_cast<size_t>(rc);
    }
    ::close(client);
  }
}

}  // namespace cegraph::obs
