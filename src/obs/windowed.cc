#include "obs/windowed.h"

#include <algorithm>
#include <chrono>

namespace cegraph::obs {

WindowedHistogram::WindowedHistogram(WindowSpec spec) : spec_(spec) {
  if (spec_.slot_seconds < 1) spec_.slot_seconds = 1;
  if (spec_.slots < 2) spec_.slots = 2;
  ring_ = std::make_unique<Slot[]>(spec_.slots);
}

int64_t WindowedHistogram::NowSec() {
  return std::chrono::duration_cast<std::chrono::seconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

void WindowedHistogram::RecordAt(double value, int64_t now_sec) {
  if (now_sec < 0) return;
  const int64_t slot_index = now_sec / spec_.slot_seconds;
  Slot& slot = ring_[static_cast<size_t>(slot_index) % spec_.slots];
  for (;;) {
    int64_t stamp = slot.stamp.load(std::memory_order_acquire);
    if (stamp == slot_index) break;
    if (stamp > slot_index) return;  // the ring already moved past us
    if (stamp < kEmptySlot) {
      // Mid-reset by another writer. Toward a newer slot: our sample
      // aged out of the ring; toward ours (or an older one): spin until
      // the reset publishes and re-evaluate.
      if (-stamp - 2 > slot_index) return;
      continue;
    }
    // Stale or never-used slot: claim the rotation. The resetting
    // marker keeps concurrent recorders out until the wipe is done, so
    // their samples cannot be erased under them.
    if (slot.stamp.compare_exchange_weak(stamp, -(slot_index + 2),
                                         std::memory_order_acq_rel)) {
      slot.hist.Reset();
      slot.stamp.store(slot_index, std::memory_order_release);
      break;
    }
  }
  slot.hist.Record(value);
}

HistogramSnapshot WindowedHistogram::SnapshotWindowAt(int64_t window_seconds,
                                                      int64_t now_sec) const {
  HistogramSnapshot merged;
  if (now_sec < 0 || window_seconds <= 0) return merged;
  const int64_t current = now_sec / spec_.slot_seconds;
  int64_t window_slots =
      (window_seconds + spec_.slot_seconds - 1) / spec_.slot_seconds;
  window_slots =
      std::min<int64_t>(window_slots, static_cast<int64_t>(spec_.slots));
  for (size_t i = 0; i < spec_.slots; ++i) {
    const int64_t stamp = ring_[i].stamp.load(std::memory_order_acquire);
    if (stamp < 0) continue;
    if (stamp > current || stamp <= current - window_slots) continue;
    merged.Merge(ring_[i].hist.Snapshot());
  }
  return merged;
}

double WindowedHistogram::RatePerSecAt(int64_t window_seconds,
                                       int64_t now_sec) const {
  if (window_seconds <= 0) return 0;
  const int64_t effective = std::min(window_seconds, spec_.span_seconds());
  const HistogramSnapshot snapshot =
      SnapshotWindowAt(window_seconds, now_sec);
  return static_cast<double>(snapshot.count) /
         static_cast<double>(effective);
}

}  // namespace cegraph::obs
