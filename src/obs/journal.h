#pragma once
// Structured event journal: significant serving events (swaps, folds,
// sheds, slow requests, drift flips) flow through a bounded lock-free
// MPSC ring and a background thread drains them to a JSONL file
// (`cegraph_serve --journal FILE`). Producers never block and never do
// I/O: a full ring drops the event and counts the drop instead — the
// journal is an observability aid, not a write-ahead log.
//
// One line per event, one JSON object per line:
//
//   {"ts_micros":1754649600000000,"type":"swap","dataset":"alpha",
//    "request_id":"00000000000000ff","epoch":2,"version":3}
//
// `ts_micros` is wall-clock microseconds; `dataset` / `request_id` are
// omitted when empty / zero; every other field comes from the event's
// own text/num lists, in emission order. Keys are expected to be plain
// identifiers; values are escaped.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "util/status.h"

namespace cegraph::obs {

struct JournalEvent {
  int64_t unix_micros = 0;  ///< stamped at Emit() when left 0
  std::string type;         ///< "swap", "fold", "shed", "slow_request", "drift", ...
  std::string dataset;      ///< empty when the event is not dataset-scoped
  uint64_t request_id = 0;  ///< 0 = none; rendered as 16 hex chars
  std::vector<std::pair<std::string, std::string>> text;
  std::vector<std::pair<std::string, double>> num;
};

/// Renders one event as a single-line JSON object (no trailing newline).
/// Exposed for the schema tests.
std::string FormatJournalLine(const JournalEvent& event);

class Journal {
 public:
  /// `capacity` (rounded up to a power of two) bounds how many events
  /// can be buffered between drains; beyond it, Emit drops.
  explicit Journal(size_t capacity = 4096);
  ~Journal();
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Opens `path` for append and starts the drain thread. Events
  /// emitted before Start sit in the ring (bounded, drop-counted) and
  /// are written once the drain starts.
  util::Status Start(const std::string& path);

  /// Drains everything buffered, flushes, and joins the drain thread.
  /// Idempotent; the destructor calls it.
  void Stop();

  /// Enqueues the event (stamping unix_micros if unset). Lock-free;
  /// returns false — and counts the drop — when the ring is full.
  bool Emit(JournalEvent event);

  /// Blocks until every event emitted before the call is on disk.
  /// Requires a running drain thread.
  void Flush();

  uint64_t emitted() const { return emitted_.load(std::memory_order_relaxed); }
  uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }
  uint64_t written() const { return written_.load(std::memory_order_relaxed); }
  const std::string& path() const { return path_; }

 private:
  struct Cell {
    std::atomic<size_t> sequence{0};
    JournalEvent event;
  };

  bool Dequeue(JournalEvent* out);
  void DrainLoop();
  /// Writes every currently-buffered event; returns lines written.
  size_t DrainOnce();

  size_t capacity_ = 0;  // power of two
  size_t mask_ = 0;
  std::unique_ptr<Cell[]> cells_;
  std::atomic<size_t> enqueue_pos_{0};
  std::atomic<size_t> dequeue_pos_{0};

  std::atomic<uint64_t> emitted_{0};
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> written_{0};

  std::string path_;
  std::FILE* file_ = nullptr;
  std::thread drain_thread_;
  std::mutex drain_mutex_;
  std::condition_variable drain_cv_;   // wakes the drain thread
  std::condition_variable flush_cv_;   // wakes Flush waiters
  bool stopping_ = false;              // guarded by drain_mutex_
};

}  // namespace cegraph::obs
