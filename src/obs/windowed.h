#pragma once
// Windowed metrics: a lock-free ring of Histogram slots, rotated by time
// and merged on read into recent-window views (1m / 5m / 15m), so the
// Prometheus page and the stats extension can report what the server did
// *lately* instead of lifetime averages.
//
// The ring holds `slots` buckets of `slot_seconds` each; a record lands
// in the bucket for its own time slot, claiming (and resetting) the
// bucket when the ring has wrapped past its previous tenant. Recording
// is the same relaxed-atomic cost as a plain Histogram plus one acquire
// load of the slot stamp; rotation adds one CAS for the single claiming
// writer. Reads merge the live slots into one HistogramSnapshot.
//
// Consistency is the metrics layer's usual loose contract, plus one
// windowing caveat: a writer that stalls for a full ring period between
// checking the stamp and bumping the bucket can record into a recycled
// slot. With the default 15-minute ring that is a scheduler pathology,
// not a real workload — and the cost is one misattributed sample.

#include <cstdint>
#include <memory>

#include "obs/metrics.h"

namespace cegraph::obs {

/// Shape of a windowed ring: `slots` buckets of `slot_seconds` each.
/// The covered span is slot_seconds * slots; reads for longer windows
/// clamp to it. The default (1s x 900) serves 1m/5m/15m views at
/// one-second granularity; per-class scorecards use coarser slots
/// (10s x 90) to bound memory per class.
struct WindowSpec {
  int64_t slot_seconds = 1;
  size_t slots = 900;

  int64_t span_seconds() const {
    return slot_seconds * static_cast<int64_t>(slots);
  }
};

/// A Histogram whose contents age out: quantiles and rates are read over
/// a trailing window instead of process lifetime. All methods are safe
/// to call concurrently. The *At variants take the current time in
/// seconds explicitly so tests can drive rotation deterministically.
class WindowedHistogram {
 public:
  explicit WindowedHistogram(WindowSpec spec = {});

  WindowedHistogram(const WindowedHistogram&) = delete;
  WindowedHistogram& operator=(const WindowedHistogram&) = delete;

  void Record(double value) { RecordAt(value, NowSec()); }
  void RecordAt(double value, int64_t now_sec);

  /// Merged view of every slot younger than `window_seconds` (clamped to
  /// the ring span), the current partial slot included.
  HistogramSnapshot SnapshotWindow(int64_t window_seconds) const {
    return SnapshotWindowAt(window_seconds, NowSec());
  }
  HistogramSnapshot SnapshotWindowAt(int64_t window_seconds,
                                     int64_t now_sec) const;

  /// Samples per second over the window (count / window_seconds).
  double RatePerSec(int64_t window_seconds) const {
    return RatePerSecAt(window_seconds, NowSec());
  }
  double RatePerSecAt(int64_t window_seconds, int64_t now_sec) const;

  const WindowSpec& spec() const { return spec_; }

  /// Wall-clock seconds (UTC). One place, so every windowed series in
  /// the process rotates on the same clock.
  static int64_t NowSec();

 private:
  struct Slot {
    /// The absolute slot index (now_sec / slot_seconds) whose samples
    /// this bucket currently holds. kEmptySlot = never used; a value
    /// below kEmptySlot encodes "being reset toward index -(v)-2".
    std::atomic<int64_t> stamp{-1};
    Histogram hist;
  };
  static constexpr int64_t kEmptySlot = -1;

  WindowSpec spec_;
  std::unique_ptr<Slot[]> ring_;
};

}  // namespace cegraph::obs
