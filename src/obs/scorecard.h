#pragma once
// Per-query-class accuracy scorecards: the serving-side view of the
// paper's central claim. Each truth-carrying estimate is attributed to
// its query class (isomorphism-canonical shape + label multiset, see
// QueryGraph::CanonicalCode) and folded into that class's *windowed*
// q-error distribution, under/over-estimate split, hit count and
// retained worst exemplar — the observation substrate an AQO-style
// feedback loop needs, and the drift tripwire an operator needs.
//
// Recording is designed for the estimate hot path: a shared-lock hash
// lookup to a stable entry, then relaxed atomics and one windowed
// histogram record. Only the first sample of a *new* class (and the
// bounded-top-K eviction it may trigger) takes the exclusive lock.
//
// Drift: each class's baseline median is stamped from the live window
// at snapshot load / hot swap (or lazily, once the class has enough
// samples); when the windowed median later moves more than
// `drift_ratio`x away from the baseline, the class flips drifted and
// the callback fires once per (class, baseline stamp) — a median
// oscillating around the threshold cannot re-emit; the tripwire
// re-arms only at the next baseline re-stamp (journal event + gauge).

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "obs/windowed.h"

namespace cegraph::obs {

struct ScorecardOptions {
  /// Bounded class table; inserting past the bound deterministically
  /// evicts the class with the fewest hits (ties: greatest key).
  size_t max_classes = 64;
  /// Per-class window ring — coarse slots keep a class under ~125 KB.
  WindowSpec window{10, 90};
  /// Windowed samples a class needs before a baseline is stamped or a
  /// drift verdict is computed.
  uint64_t drift_min_samples = 8;
  /// Windowed median further than this factor from the baseline (in
  /// either direction) counts as drift.
  double drift_ratio = 2.0;
};

/// The single worst (highest q-error) sample a class has seen.
struct ScorecardExemplar {
  double qerror = 0;
  std::string line;  ///< the query line as received
  double estimate = 0;
  double truth = 0;
  std::string estimator;
};

struct ScorecardClassReport {
  std::string key;      ///< canonical code + label multiset (identity)
  std::string display;  ///< template name, or the first-seen pattern
  uint64_t hits = 0;
  uint64_t under = 0;  ///< estimate < truth
  uint64_t over = 0;   ///< estimate > truth
  QuantileSummary qerror;  ///< windowed
  double baseline_median = 0;  ///< 0 = not stamped yet
  bool drifted = false;
  ScorecardExemplar worst;
};

/// One usable (finite, truth-carrying) estimator result.
struct ScorecardSample {
  std::string_view class_key;
  std::string_view display;
  std::string_view line;
  std::string_view estimator;
  double qerror = 0;
  double estimate = 0;
  double truth = 0;
};

class Scorecard {
 public:
  using DriftCallback = std::function<void(const ScorecardClassReport&)>;

  explicit Scorecard(ScorecardOptions options = {});
  Scorecard(const Scorecard&) = delete;
  Scorecard& operator=(const Scorecard&) = delete;

  void Record(const ScorecardSample& sample) {
    RecordAt(sample, WindowedHistogram::NowSec());
  }
  void RecordAt(const ScorecardSample& sample, int64_t now_sec);

  /// Re-stamps every class's drift baseline from its current window
  /// (classes still short of drift_min_samples go back to lazy
  /// stamping) and clears drift verdicts. Call at snapshot load and
  /// hot swap: the estimates just changed regime, so "drift" must be
  /// measured against the new one.
  void StampBaseline() { StampBaselineAt(WindowedHistogram::NowSec()); }
  void StampBaselineAt(int64_t now_sec);

  /// Fired once per (class, baseline stamp) on the flip into drift
  /// (never on recovery, never again until StampBaseline re-arms the
  /// class). Called from the recording thread; keep it cheap (a
  /// journal Emit is).
  void SetDriftCallback(DriftCallback callback);

  size_t class_count() const;
  size_t drifted_classes() const;
  bool AnyDrift() const { return drifted_classes() > 0; }
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }

  /// Every class, windowed over `window_seconds`, sorted by hits
  /// descending (ties: key ascending) — a deterministic order for the
  /// wire, the client table and the tests.
  std::vector<ScorecardClassReport> Report(int64_t window_seconds) const {
    return ReportAt(window_seconds, WindowedHistogram::NowSec());
  }
  std::vector<ScorecardClassReport> ReportAt(int64_t window_seconds,
                                             int64_t now_sec) const;

 private:
  struct Entry;

  std::shared_ptr<Entry> FindOrCreate(const ScorecardSample& sample);
  void EvictOneLocked();
  void EvaluateDrift(Entry& entry, int64_t now_sec);
  ScorecardClassReport BuildReport(const Entry& entry,
                                   int64_t window_seconds,
                                   int64_t now_sec) const;

  ScorecardOptions options_;

  struct StringHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  mutable std::shared_mutex mutex_;  // guards the map structure only
  std::unordered_map<std::string, std::shared_ptr<Entry>, StringHash,
                     std::equal_to<>>
      classes_;

  std::atomic<uint64_t> evictions_{0};
  std::atomic<int64_t> drifted_count_{0};

  std::mutex callback_mutex_;
  DriftCallback drift_callback_;
};

}  // namespace cegraph::obs
