#include "obs/journal.h"

#include <chrono>
#include <cmath>
#include <cstdio>

namespace cegraph::obs {

namespace {

int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

void AppendEscaped(std::string* out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
}

void AppendStringField(std::string* out, std::string_view key,
                       std::string_view value) {
  out->push_back('"');
  AppendEscaped(out, key);
  out->append("\":\"");
  AppendEscaped(out, value);
  out->push_back('"');
}

void AppendNumber(std::string* out, double v) {
  if (!std::isfinite(v)) {
    out->append("null");  // JSON has no inf/nan
    return;
  }
  if (v == static_cast<double>(static_cast<int64_t>(v)) &&
      std::abs(v) < 1e15) {
    out->append(std::to_string(static_cast<int64_t>(v)));
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out->append(buf);
}

size_t RoundUpPowerOfTwo(size_t n) {
  size_t p = 2;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

std::string FormatJournalLine(const JournalEvent& event) {
  std::string out;
  out.reserve(128);
  out.append("{\"ts_micros\":");
  out.append(std::to_string(event.unix_micros));
  out.append(",");
  AppendStringField(&out, "type", event.type);
  if (!event.dataset.empty()) {
    out.push_back(',');
    AppendStringField(&out, "dataset", event.dataset);
  }
  if (event.request_id != 0) {
    char hex[24];
    std::snprintf(hex, sizeof(hex), "%016llx",
                  static_cast<unsigned long long>(event.request_id));
    out.push_back(',');
    AppendStringField(&out, "request_id", hex);
  }
  for (const auto& [key, value] : event.text) {
    out.push_back(',');
    AppendStringField(&out, key, value);
  }
  for (const auto& [key, value] : event.num) {
    out.append(",\"");
    AppendEscaped(&out, key);
    out.append("\":");
    AppendNumber(&out, value);
  }
  out.push_back('}');
  return out;
}

Journal::Journal(size_t capacity) {
  capacity_ = RoundUpPowerOfTwo(capacity < 2 ? 2 : capacity);
  mask_ = capacity_ - 1;
  cells_ = std::make_unique<Cell[]>(capacity_);
  for (size_t i = 0; i < capacity_; ++i) {
    cells_[i].sequence.store(i, std::memory_order_relaxed);
  }
}

Journal::~Journal() { Stop(); }

bool Journal::Emit(JournalEvent event) {
  if (event.unix_micros == 0) event.unix_micros = NowMicros();
  // Vyukov bounded-queue enqueue: claim a cell whose sequence equals the
  // ticket, move the event in, publish by bumping the sequence.
  size_t pos = enqueue_pos_.load(std::memory_order_relaxed);
  Cell* cell;
  for (;;) {
    cell = &cells_[pos & mask_];
    const size_t seq = cell->sequence.load(std::memory_order_acquire);
    const intptr_t dif =
        static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos);
    if (dif == 0) {
      if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                             std::memory_order_relaxed)) {
        break;
      }
    } else if (dif < 0) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return false;  // ring full: drop, never block
    } else {
      pos = enqueue_pos_.load(std::memory_order_relaxed);
    }
  }
  cell->event = std::move(event);
  cell->sequence.store(pos + 1, std::memory_order_release);
  emitted_.fetch_add(1, std::memory_order_relaxed);
  drain_cv_.notify_one();
  return true;
}

bool Journal::Dequeue(JournalEvent* out) {
  // Single consumer (the drain thread, or Stop after the join).
  size_t pos = dequeue_pos_.load(std::memory_order_relaxed);
  Cell* cell = &cells_[pos & mask_];
  const size_t seq = cell->sequence.load(std::memory_order_acquire);
  const intptr_t dif =
      static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos + 1);
  if (dif != 0) return false;  // empty (or producer mid-publish)
  dequeue_pos_.store(pos + 1, std::memory_order_relaxed);
  *out = std::move(cell->event);
  cell->sequence.store(pos + mask_ + 1, std::memory_order_release);
  return true;
}

size_t Journal::DrainOnce() {
  if (file_ == nullptr) return 0;
  size_t lines = 0;
  JournalEvent event;
  while (Dequeue(&event)) {
    const std::string line = FormatJournalLine(event);
    std::fwrite(line.data(), 1, line.size(), file_);
    std::fputc('\n', file_);
    ++lines;
  }
  if (lines > 0) {
    std::fflush(file_);
    written_.fetch_add(lines, std::memory_order_relaxed);
  }
  return lines;
}

void Journal::DrainLoop() {
  for (;;) {
    const size_t drained = DrainOnce();
    std::unique_lock<std::mutex> lock(drain_mutex_);
    if (drained > 0) flush_cv_.notify_all();
    if (stopping_) {
      lock.unlock();
      while (DrainOnce() > 0) {
      }
      std::lock_guard<std::mutex> relock(drain_mutex_);
      flush_cv_.notify_all();
      return;
    }
    if (drained == 0) {
      drain_cv_.wait_for(lock, std::chrono::milliseconds(50));
    }
  }
}

util::Status Journal::Start(const std::string& path) {
  if (file_ != nullptr) {
    return util::InvalidArgumentError("journal already started");
  }
  std::FILE* file = std::fopen(path.c_str(), "a");
  if (file == nullptr) {
    return util::InternalError("journal: cannot open '" + path + "'");
  }
  path_ = path;
  file_ = file;
  {
    std::lock_guard<std::mutex> lock(drain_mutex_);
    stopping_ = false;
  }
  drain_thread_ = std::thread([this] { DrainLoop(); });
  return util::Status::OK();
}

void Journal::Stop() {
  {
    std::lock_guard<std::mutex> lock(drain_mutex_);
    stopping_ = true;
  }
  drain_cv_.notify_all();
  if (drain_thread_.joinable()) drain_thread_.join();
  if (file_ != nullptr) {
    while (DrainOnce() > 0) {
    }
    std::fclose(file_);
    file_ = nullptr;
  }
}

void Journal::Flush() {
  const uint64_t target = emitted_.load(std::memory_order_relaxed);
  drain_cv_.notify_all();
  std::unique_lock<std::mutex> lock(drain_mutex_);
  flush_cv_.wait(lock, [&] {
    return written_.load(std::memory_order_relaxed) >= target || stopping_;
  });
}

}  // namespace cegraph::obs
