#include "obs/stage_trace.h"

#include <cstdio>

namespace cegraph::obs {

namespace {
thread_local StageTrace* g_current_trace = nullptr;
}  // namespace

const char* StageName(Stage stage) {
  switch (stage) {
    case Stage::kQueueWait:
      return "queue_wait";
    case Stage::kParse:
      return "parse";
    case Stage::kAdmission:
      return "admission";
    case Stage::kAcquireState:
      return "acquire_state";
    case Stage::kEstimate:
      return "estimate";
    case Stage::kEncode:
      return "encode";
    case Stage::kWrite:
      return "write";
  }
  return "unknown";
}

StageTrace* StageTrace::Current() { return g_current_trace; }

StageTrace::Scope::Scope(StageTrace* trace) : previous_(g_current_trace) {
  g_current_trace = trace;
}

StageTrace::Scope::~Scope() { g_current_trace = previous_; }

std::string StageTrace::Format() const {
  std::string out;
  char buf[64];
  for (size_t i = 0; i < kStageCount; ++i) {
    if (!out.empty()) out.push_back(' ');
    std::snprintf(buf, sizeof(buf), "%s=%.1fus",
                  StageName(static_cast<Stage>(i)), micros_[i]);
    out += buf;
  }
  return out;
}

}  // namespace cegraph::obs
