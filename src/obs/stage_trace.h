#pragma once
// Per-request pipeline stage timing.
//
// The server's worker installs a StageTrace into a thread-local slot for
// the duration of one request; layers below (admission, serving-state
// acquisition, the estimator loop) record into it through Current()
// without any plumbing through their signatures. When nothing is
// installed — the embedded in-process service, the legacy dispatcher
// with tracing off — every record call is a null-check no-op.
//
// Stage semantics (all microseconds):
//   kQueueWait    complete frame parsed  -> worker picked it up
//   kParse        request frame decode
//   kAdmission    time spent inside the admission decision
//   kAcquireState atomic serving-state acquire (incl. suite resolve)
//   kEstimate     the per-estimator estimation loop, summed
//   kEncode       response frame encode
//   kWrite        worker handed the response off -> I/O thread queued
//                 the bytes on the connection (scheduling latency; the
//                 socket write itself is asynchronous)

#include <array>
#include <cstddef>
#include <string>

namespace cegraph::obs {

enum class Stage : size_t {
  kQueueWait = 0,
  kParse,
  kAdmission,
  kAcquireState,
  kEstimate,
  kEncode,
  kWrite,
};
inline constexpr size_t kStageCount = 7;

const char* StageName(Stage stage);

class StageTrace {
 public:
  /// The trace installed on this thread, or nullptr.
  static StageTrace* Current();

  /// RAII installer: puts `trace` into the thread-local slot, restoring
  /// the previous occupant (normally nullptr) on destruction.
  class Scope {
   public:
    explicit Scope(StageTrace* trace);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    StageTrace* previous_;
  };

  /// The client-supplied end-to-end request id (wire v5), stamped by the
  /// server's worker after decode; 0 = the request carried none. Carried
  /// here so the slow-request log and journal can correlate one request
  /// across client, server and log lines without extra plumbing.
  uint64_t request_id = 0;

  void Add(Stage stage, double micros) {
    micros_[static_cast<size_t>(stage)] += micros;
  }
  double micros(Stage stage) const {
    return micros_[static_cast<size_t>(stage)];
  }

  /// One-line rendering for the slow-request log:
  /// "queue_wait=12.3us parse=0.4us ...".
  std::string Format() const;

 private:
  std::array<double, kStageCount> micros_{};
};

}  // namespace cegraph::obs
