#include "obs/scorecard.h"

#include <algorithm>

#include "harness/qerror.h"

namespace cegraph::obs {

struct Scorecard::Entry {
  std::string key;
  std::string display;
  WindowedHistogram qerror;
  std::atomic<uint64_t> hits{0};
  std::atomic<uint64_t> under{0};
  std::atomic<uint64_t> over{0};
  std::atomic<double> baseline{0};  // 0 = lazily stamped on first window
  std::atomic<bool> drifted{false};
  /// Latches the drift callback per baseline stamp: set on the first
  /// drift flip, re-armed only by StampBaselineAt. Without it, a median
  /// oscillating around the threshold would re-emit a journal event on
  /// every false->true flip of `drifted` against the same baseline.
  std::atomic<bool> drift_fired{false};
  std::atomic<double> worst_q{0};  // pre-check so the lock is rare
  mutable std::mutex worst_mutex;
  ScorecardExemplar worst;  // guarded by worst_mutex

  Entry(std::string k, std::string d, const WindowSpec& spec)
      : key(std::move(k)), display(std::move(d)), qerror(spec) {}
};

Scorecard::Scorecard(ScorecardOptions options) : options_(options) {
  if (options_.max_classes < 1) options_.max_classes = 1;
  if (options_.drift_ratio < 1.0) options_.drift_ratio = 1.0;
}

void Scorecard::SetDriftCallback(DriftCallback callback) {
  std::lock_guard<std::mutex> lock(callback_mutex_);
  drift_callback_ = std::move(callback);
}

size_t Scorecard::class_count() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return classes_.size();
}

size_t Scorecard::drifted_classes() const {
  const int64_t n = drifted_count_.load(std::memory_order_relaxed);
  return n > 0 ? static_cast<size_t>(n) : 0;
}

std::shared_ptr<Scorecard::Entry> Scorecard::FindOrCreate(
    const ScorecardSample& sample) {
  {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    auto it = classes_.find(sample.class_key);
    if (it != classes_.end()) return it->second;
  }
  std::unique_lock<std::shared_mutex> lock(mutex_);
  auto it = classes_.find(sample.class_key);
  if (it != classes_.end()) return it->second;
  if (classes_.size() >= options_.max_classes) EvictOneLocked();
  auto entry = std::make_shared<Entry>(
      std::string(sample.class_key),
      std::string(sample.display.empty() ? sample.line : sample.display),
      options_.window);
  classes_.emplace(entry->key, entry);
  return entry;
}

void Scorecard::EvictOneLocked() {
  // Deterministic: fewest hits goes first; ties break toward the
  // lexicographically greatest key, so repeated runs evict identically.
  auto victim = classes_.end();
  for (auto it = classes_.begin(); it != classes_.end(); ++it) {
    if (victim == classes_.end()) {
      victim = it;
      continue;
    }
    const uint64_t h = it->second->hits.load(std::memory_order_relaxed);
    const uint64_t vh = victim->second->hits.load(std::memory_order_relaxed);
    if (h < vh || (h == vh && it->first > victim->first)) victim = it;
  }
  if (victim == classes_.end()) return;
  if (victim->second->drifted.load(std::memory_order_relaxed)) {
    drifted_count_.fetch_add(-1, std::memory_order_relaxed);
  }
  classes_.erase(victim);
  evictions_.fetch_add(1, std::memory_order_relaxed);
}

void Scorecard::RecordAt(const ScorecardSample& sample, int64_t now_sec) {
  if (!harness::UsableQError(sample.qerror)) return;
  const std::shared_ptr<Entry> entry = FindOrCreate(sample);
  entry->qerror.RecordAt(sample.qerror, now_sec);
  const uint64_t hit = entry->hits.fetch_add(1, std::memory_order_relaxed) + 1;
  if (sample.estimate < sample.truth) {
    entry->under.fetch_add(1, std::memory_order_relaxed);
  } else if (sample.estimate > sample.truth) {
    entry->over.fetch_add(1, std::memory_order_relaxed);
  }
  if (sample.qerror > entry->worst_q.load(std::memory_order_relaxed)) {
    std::lock_guard<std::mutex> lock(entry->worst_mutex);
    if (sample.qerror > entry->worst.qerror) {
      entry->worst.qerror = sample.qerror;
      entry->worst.line = std::string(sample.line);
      entry->worst.estimate = sample.estimate;
      entry->worst.truth = sample.truth;
      entry->worst.estimator = std::string(sample.estimator);
      entry->worst_q.store(sample.qerror, std::memory_order_relaxed);
    }
  }
  // Drift is a window-merge + quantile walk — too heavy per sample, so
  // re-evaluate every 8th hit.
  if ((hit & 7u) == 0) EvaluateDrift(*entry, now_sec);
}

void Scorecard::EvaluateDrift(Entry& entry, int64_t now_sec) {
  const HistogramSnapshot window =
      entry.qerror.SnapshotWindowAt(options_.window.span_seconds(), now_sec);
  if (window.count < options_.drift_min_samples) return;
  const double median = window.Quantile(0.5);
  if (!(median > 0)) return;
  const double baseline = entry.baseline.load(std::memory_order_relaxed);
  if (!(baseline > 0)) {
    // No baseline yet (boot, or the class appeared after the last
    // stamp): the first full-enough window becomes the baseline.
    double expected = baseline;
    entry.baseline.compare_exchange_strong(expected, median,
                                           std::memory_order_relaxed);
    return;
  }
  const double ratio =
      median > baseline ? median / baseline : baseline / median;
  const bool drifted = ratio > options_.drift_ratio;
  bool was = entry.drifted.load(std::memory_order_relaxed);
  if (drifted == was) return;
  if (!entry.drifted.compare_exchange_strong(was, drifted,
                                             std::memory_order_relaxed)) {
    return;  // another thread flipped it first
  }
  drifted_count_.fetch_add(drifted ? 1 : -1, std::memory_order_relaxed);
  if (!drifted) return;
  if (entry.drift_fired.exchange(true, std::memory_order_relaxed)) {
    return;  // already fired against this baseline stamp
  }
  DriftCallback callback;
  {
    std::lock_guard<std::mutex> lock(callback_mutex_);
    callback = drift_callback_;
  }
  if (callback) {
    callback(BuildReport(entry, options_.window.span_seconds(), now_sec));
  }
}

void Scorecard::StampBaselineAt(int64_t now_sec) {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  for (auto& [key, entry] : classes_) {
    const HistogramSnapshot window = entry->qerror.SnapshotWindowAt(
        options_.window.span_seconds(), now_sec);
    double baseline = 0;
    if (window.count >= options_.drift_min_samples) {
      const double median = window.Quantile(0.5);
      if (median > 0) baseline = median;
    }
    entry->baseline.store(baseline, std::memory_order_relaxed);
    if (entry->drifted.exchange(false, std::memory_order_relaxed)) {
      drifted_count_.fetch_add(-1, std::memory_order_relaxed);
    }
    // New baseline regime: the one-shot drift tripwire re-arms.
    entry->drift_fired.store(false, std::memory_order_relaxed);
  }
}

ScorecardClassReport Scorecard::BuildReport(const Entry& entry,
                                            int64_t window_seconds,
                                            int64_t now_sec) const {
  ScorecardClassReport report;
  report.key = entry.key;
  report.display = entry.display;
  report.hits = entry.hits.load(std::memory_order_relaxed);
  report.under = entry.under.load(std::memory_order_relaxed);
  report.over = entry.over.load(std::memory_order_relaxed);
  report.qerror =
      entry.qerror.SnapshotWindowAt(window_seconds, now_sec).Summary();
  report.baseline_median = entry.baseline.load(std::memory_order_relaxed);
  report.drifted = entry.drifted.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(entry.worst_mutex);
    report.worst = entry.worst;
  }
  return report;
}

std::vector<ScorecardClassReport> Scorecard::ReportAt(int64_t window_seconds,
                                                      int64_t now_sec) const {
  std::vector<std::shared_ptr<Entry>> entries;
  {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    entries.reserve(classes_.size());
    for (const auto& [key, entry] : classes_) entries.push_back(entry);
  }
  std::vector<ScorecardClassReport> reports;
  reports.reserve(entries.size());
  for (const auto& entry : entries) {
    reports.push_back(BuildReport(*entry, window_seconds, now_sec));
  }
  std::sort(reports.begin(), reports.end(),
            [](const ScorecardClassReport& a, const ScorecardClassReport& b) {
              if (a.hits != b.hits) return a.hits > b.hits;
              return a.key < b.key;
            });
  return reports;
}

}  // namespace cegraph::obs
