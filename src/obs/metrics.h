#pragma once
// Lock-free observability primitives for the serving stack.
//
// Everything on the record path is a relaxed atomic operation on
// pre-registered storage: counters and gauges are single fetch_add's,
// histograms are one bucket increment plus a count/sum update, and none
// of them allocate, lock, or touch shared mutable state beyond their own
// cache lines. Aggregation (snapshots, quantiles, Prometheus rendering)
// happens on the scrape/stats path, which may be arbitrarily slow.
//
// Readout consistency is deliberately loose: a snapshot taken while
// writers are recording may see a count that is one ahead of the bucket
// sums (torn between the two relaxed stores). That is the standard
// monitoring trade-off — the alternative is a lock on every estimate.
//
// The whole layer can be disabled at runtime (CEGRAPH_METRICS=off, or
// SetMetricsEnabled(false)); the hot-path check is one relaxed bool load.

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/status.h"

namespace cegraph::obs {

/// Process-wide instrumentation switch. Defaults to on; the environment
/// variable CEGRAPH_METRICS set to "off", "0" or "false" disables it, as
/// does SetMetricsEnabled(false) (used by the overhead bench). Counters
/// that double as serving accounting (served/rejected/...) stay live
/// regardless; only the histogram/stage-trace layer honors the switch.
bool MetricsEnabled();
void SetMetricsEnabled(bool enabled);

/// A monotonically increasing relaxed-atomic counter.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A settable instantaneous value (queue depths, in-flight weight).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Point-in-time quantile readout of a histogram.
struct QuantileSummary {
  uint64_t count = 0;
  double mean = 0;
  double p50 = 0;
  double p90 = 0;
  double p99 = 0;
  double max = 0;
};

/// Number of log-spaced buckets in every Histogram. Bucket 0 covers
/// [0, 1); bucket i >= 1 covers [2^((i-1)/4), 2^(i/4)) — four buckets
/// per octave, ~19% relative resolution, spanning values up to
/// 2^((kHistogramBuckets-2)/4) ~ 3e9 before the overflow bucket.
inline constexpr size_t kHistogramBuckets = 128;

/// A plain (non-atomic) copy of a histogram's state: mergeable,
/// quantile-readable, safe to ship across threads by value.
struct HistogramSnapshot {
  uint64_t count = 0;
  double sum = 0;
  double max = 0;
  std::array<uint64_t, kHistogramBuckets> buckets{};

  /// Upper bound of bucket i (the `le` edge): 1 for bucket 0, 2^(i/4)
  /// for the rest; +inf for the last (overflow) bucket.
  static double BucketUpperBound(size_t i);

  /// The value at or below which a fraction p in (0, 1] of recorded
  /// samples fall, resolved to the containing bucket's upper bound and
  /// clamped to the observed max (exact for the overflow bucket).
  /// Returns 0 when the histogram is empty.
  double Quantile(double p) const;

  QuantileSummary Summary() const;

  /// Accumulates `other` into this snapshot (counts, sum, max).
  void Merge(const HistogramSnapshot& other);
};

/// A lock-free log-bucketed histogram. Record() is three relaxed atomic
/// RMWs (bucket, count, sum) plus a CAS loop for max; no allocation.
/// Negative and non-finite values are dropped (a NaN latency is a bug
/// upstream, not a sample).
class Histogram {
 public:
  void Record(double value);
  HistogramSnapshot Snapshot() const;
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }

  /// Zeroes every field (relaxed stores). Only sound when recorders are
  /// excluded by protocol — the windowed ring's rotation marker does
  /// exactly that; do not call it on a live shared histogram.
  void Reset();

  /// The bucket a value lands in; exposed for the boundary tests.
  static size_t BucketIndex(double value);

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0};
  std::atomic<double> max_{0};
  std::array<std::atomic<uint64_t>, kHistogramBuckets> buckets_{};
};

/// Appends metric series in the Prometheus text exposition format.
/// Emits one `# TYPE` header per metric name per render (shared across
/// collectors), cumulative `_bucket{le=...}` series plus `_sum`/`_count`
/// for histograms. `labels` is the inner label list without braces, e.g.
/// `dataset="alpha",estimator="molp"`; pass "" for none.
class PromWriter {
 public:
  explicit PromWriter(std::string* out) : out_(out) {}
  void WriteCounter(const std::string& name, const std::string& labels,
                    uint64_t value);
  void WriteGauge(const std::string& name, const std::string& labels,
                  double value);
  void WriteHistogram(const std::string& name, const std::string& labels,
                      const HistogramSnapshot& snapshot);

 private:
  void TypeHeader(const std::string& name, const char* type);
  std::string* out_;
  std::vector<std::string> typed_;
};

/// The process-wide registry. Components register a collector callback
/// at construction (cheap: one mutex acquisition, never on the request
/// path) and remove it in their destructor; a scrape renders every live
/// collector into one text page. Collectors must tolerate being called
/// from an arbitrary thread at any time between Add and Remove.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  using Collector = std::function<void(PromWriter&)>;

  /// Registers `collector`; returns a handle for RemoveCollector.
  uint64_t AddCollector(Collector collector);
  void RemoveCollector(uint64_t id);

  /// Renders every registered collector as one Prometheus text page.
  std::string RenderPrometheus() const;

  size_t collector_count() const;

 private:
  mutable std::mutex mutex_;
  uint64_t next_id_ = 1;
  std::vector<std::pair<uint64_t, Collector>> collectors_;
};

/// A deliberately tiny HTTP/1.0 exporter: one blocking accept loop on a
/// side thread (no keep-alive, no TLS), routing exactly two paths —
/// `/metrics` answers with the registry's text page and `/healthz` with
/// a liveness body (200, text/plain, Connection: close); anything else
/// is a 404 with a body naming the two. It exists so a scraper, a
/// load-balancer check or `curl` can reach the process without linking
/// anything.
class MetricsHttpServer {
 public:
  MetricsHttpServer() = default;
  ~MetricsHttpServer() { Stop(); }
  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  /// Supplies the `/healthz` body (e.g. "ok\nepoch 3\nversion 7\n").
  /// Called on the serve thread per request; without one the body is
  /// "ok\n". Set before Start.
  void SetHealthBody(std::function<std::string()> health_body);

  /// Binds and starts serving; port 0 picks an ephemeral port (see
  /// port()).
  util::Status Start(const std::string& host, int port);
  void Stop();
  int port() const { return port_; }

 private:
  void Serve();

  std::function<std::string()> health_body_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread thread_;
};

}  // namespace cegraph::obs
