#ifndef CEGRAPH_CEG_CEG_H_
#define CEGRAPH_CEG_CEG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace cegraph::ceg {

/// A cardinality estimation graph (§3): vertices are sub-queries, weighted
/// edges are extension rates, and every source-to-sink path is one estimate
/// (the product of its edge weights). This class is the shared
/// representation of CEG_O, CEG_OCR, CEG_M and CEG_D.
///
/// Weights are stored in log2 domain, so a path's log-weight is the sum of
/// its edge log-weights, exactly as the paper sets up MOLP. A multiplicative
/// weight of 0 maps to -infinity and is handled throughout.
class Ceg {
 public:
  struct Edge {
    uint32_t from = 0;
    uint32_t to = 0;
    double log_weight = 0;   ///< log2 of the extension rate
    std::string label;       ///< human-readable provenance (debugging)
  };

  /// Adds a node and returns its id.
  uint32_t AddNode(std::string label);
  /// Adds an edge with *multiplicative* weight (>= 0).
  void AddEdge(uint32_t from, uint32_t to, double weight,
               std::string label = "");

  /// Capacity hints for builders that know the CEG size up front (CEG_O
  /// knows both counts before emitting edges). Avoids re-allocation churn
  /// during construction.
  void ReserveNodes(uint32_t n);
  void ReserveEdges(size_t n);

  void SetSource(uint32_t node) { source_ = node; }
  void SetSink(uint32_t node) { sink_ = node; }
  uint32_t source() const { return source_; }
  uint32_t sink() const { return sink_; }

  uint32_t num_nodes() const { return static_cast<uint32_t>(labels_.size()); }
  size_t num_edges() const { return edges_.size(); }
  const std::vector<Edge>& edges() const { return edges_; }
  const std::string& node_label(uint32_t node) const { return labels_[node]; }

  /// Contiguous view over the out-edge indices of one node in the CSR
  /// adjacency. Iterable and indexable like the vector it replaces.
  class EdgeIndexRange {
   public:
    EdgeIndexRange(const uint32_t* first, const uint32_t* last)
        : first_(first), last_(last) {}
    const uint32_t* begin() const { return first_; }
    const uint32_t* end() const { return last_; }
    size_t size() const { return static_cast<size_t>(last_ - first_); }
    bool empty() const { return first_ == last_; }
    uint32_t operator[](size_t i) const { return first_[i]; }

   private:
    const uint32_t* first_;
    const uint32_t* last_;
  };

  EdgeIndexRange OutEdges(uint32_t node) const {
    EnsureCsr();
    return {csr_index_.data() + csr_offsets_[node],
            csr_index_.data() + csr_offsets_[node + 1]};
  }

  /// Builds the CSR adjacency now (it is otherwise built lazily on first
  /// traversal). Call before sharing one CEG across threads: after
  /// Finalize() every accessor is a pure read.
  void Finalize() const { EnsureCsr(); }

  /// True iff the CEG has no directed cycles. CEG_O/CEG_OCR/CEG_D are
  /// always DAGs; CEG_M is not once projection edges are included.
  bool IsDag() const;

  /// Path statistics for one hop count (number of edges on the path).
  struct HopAggregate {
    int hops = 0;
    double path_count = 0;      ///< number of (source,sink) paths
    double min_log = 0;         ///< smallest path log-weight
    double max_log = 0;         ///< largest path log-weight
    double sum_estimates = 0;   ///< sum of path estimates (linear domain)
  };

  /// Aggregate statistics over every (source,sink) path, overall and per
  /// hop count, computed by dynamic programming in topological order
  /// (O(nodes * edges * max_hops), no enumeration). Fails with
  /// FailedPrecondition if the CEG is not a DAG.
  struct PathAggregates {
    bool reachable = false;
    double path_count = 0;
    double min_log = 0;
    double max_log = 0;
    double avg_estimate = 0;    ///< arithmetic mean of path estimates
    std::vector<HopAggregate> per_hop;  ///< only reachable hop counts
  };
  util::StatusOr<PathAggregates> ComputeAggregates() const;

  /// Minimum path log-weight from source to sink via Dijkstra (correct
  /// with cycles; all log-weights must be >= 0, which holds for CEG_M
  /// where weights are degrees >= 1). Returns +infinity if unreachable.
  util::StatusOr<double> MinLogWeightDijkstra() const;

  /// One explicit path (edge indices) with its log-weight.
  struct Path {
    std::vector<uint32_t> edge_indices;
    double log_weight = 0;
    int hops() const { return static_cast<int>(edge_indices.size()); }
  };

  /// Hop-class selectors shared with the optimistic estimators (§4.2):
  /// restrict attention to the paths with the most edges, the fewest edges,
  /// or all paths.
  enum class HopMode { kMaxHop, kMinHop, kAllHops };

  /// The extreme-weight path within a hop class: the path of maximum
  /// (maximize=true) or minimum log-weight among kMaxHop / kMinHop /
  /// kAllHops paths, recovered via DP backpointers (no enumeration).
  /// Fails on non-DAGs or when the sink is unreachable.
  util::StatusOr<Path> BestPath(HopMode mode, bool maximize) const;

  /// Enumerates simple (source,sink) paths by DFS, up to `max_paths`.
  /// `truncated` (optional) reports whether the cap was hit. Used by the
  /// P* oracle and by the theory tests; the production estimators use the
  /// DP aggregates instead.
  std::vector<Path> EnumerateSimplePaths(size_t max_paths,
                                         bool* truncated = nullptr) const;

 private:
  /// Longest source-reachable path length (in edges), given a topological
  /// order; bounds the hop dimension of the DP tables.
  int MaxDepthFromSource(const std::vector<uint32_t>& topo) const;

  /// (Re)builds the flat CSR adjacency (counting sort over edges_) if any
  /// mutation happened since the last build. The DP kernels iterate
  /// csr_index_ slices directly, so edge indices of one node are contiguous
  /// in memory instead of one heap allocation per node.
  void EnsureCsr() const;

  std::vector<std::string> labels_;
  std::vector<Edge> edges_;
  uint32_t source_ = 0;
  uint32_t sink_ = 0;

  /// CSR adjacency: csr_index_[csr_offsets_[v] .. csr_offsets_[v+1]) are
  /// the indices into edges_ of v's out-edges, in insertion order.
  mutable std::vector<uint32_t> csr_offsets_;
  mutable std::vector<uint32_t> csr_index_;
  mutable bool csr_valid_ = false;
};

}  // namespace cegraph::ceg

#endif  // CEGRAPH_CEG_CEG_H_
