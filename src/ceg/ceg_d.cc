#include "ceg/ceg_d.h"

#include <bit>
#include <cmath>
#include <functional>
#include <string>

namespace cegraph::ceg {

namespace {

using query::VertexSet;

}  // namespace

std::vector<Cover> EnumerateCovers(const query::QueryGraph& q,
                                   const stats::DegreeStats& stats,
                                   bool cbs_choices_only) {
  const VertexSet full =
      (q.num_vertices() >= 32) ? ~VertexSet{0}
                               : ((VertexSet{1} << q.num_vertices()) - 1);
  const auto& relations = stats.relations();

  // Per-relation options: subsets of the relation's attributes. CBS allows
  // covering 0, |A_i|-1 or |A_i| attributes (Appendix B); the general form
  // allows any subset.
  std::vector<std::vector<VertexSet>> options(relations.size());
  for (size_t i = 0; i < relations.size(); ++i) {
    const VertexSet attrs = relations[i].attrs;
    const int n = std::popcount(attrs);
    for (VertexSet sub = attrs;; sub = (sub - 1) & attrs) {
      const int k = std::popcount(sub);
      const bool allowed =
          !cbs_choices_only || k == 0 || k == n || k == n - 1;
      if (allowed) options[i].push_back(sub);
      if (sub == 0) break;
    }
  }

  std::vector<Cover> covers;
  Cover current;
  current.covered.assign(relations.size(), 0);
  std::function<void(size_t, VertexSet)> rec = [&](size_t i,
                                                   VertexSet covered) {
    // Prune: remaining relations must be able to cover the rest.
    if (i == relations.size()) {
      if (covered == full) covers.push_back(current);
      return;
    }
    VertexSet remaining_possible = covered;
    for (size_t j = i; j < relations.size(); ++j) {
      remaining_possible |= relations[j].attrs;
    }
    if (remaining_possible != full) return;
    for (VertexSet choice : options[i]) {
      current.covered[i] = choice;
      rec(i + 1, covered | choice);
    }
    current.covered[i] = 0;
  };
  rec(0, 0);
  return covers;
}

util::StatusOr<BuiltCegM> BuildCegD(const query::QueryGraph& q,
                                    const stats::DegreeStats& stats,
                                    const Cover& cover) {
  const uint32_t n = q.num_vertices();
  if (n > 14) {
    return util::InvalidArgumentError("CEG_D limited to 14 attributes");
  }
  if (cover.covered.size() != stats.relations().size()) {
    return util::InvalidArgumentError("cover arity mismatch");
  }
  const VertexSet full = (VertexSet{1} << n) - 1;

  BuiltCegM out;
  for (VertexSet w = 0; w <= full; ++w) {
    out.ceg.AddNode("");
  }
  out.ceg.SetSource(0);
  out.ceg.SetSink(full);

  for (size_t j = 0; j < cover.covered.size(); ++j) {
    const VertexSet a_j = cover.covered[j];
    if (a_j == 0) continue;
    const stats::StatRelation& rel = stats.relations()[j];
    // All A'_j ⊆ A_j with deg(A'_j, A_j) known. Note: DBPLP uses degrees
    // over the projection pi_{A_j}(R_j); our StatRelation stores
    // deg(X, Y) for X ⊆ Y ⊆ attrs, and deg(A'_j, A_j) is exactly the
    // degree over the projection onto A_j.
    for (VertexSet sub = a_j;; sub = (sub - 1) & a_j) {
      const double deg = rel.Get(sub, a_j);
      if (deg > 0 && sub != a_j) {
        const VertexSet added = a_j & ~sub;  // Z = A_j \ A'_j
        for (VertexSet w1 = 0; w1 <= full; ++w1) {
          if ((sub & w1) != sub) continue;
          // Theorem D.1's disjointness: each edge must add the *entire*
          // fresh set Z, so the variables summed across a path's edges are
          // pairwise disjoint.
          if ((w1 & added) != 0) continue;
          const VertexSet w2 = w1 | a_j;
          if (w2 == w1) continue;
          out.ceg.AddEdge(w1, w2, deg,
                          "dbplp:rel" + std::to_string(j));
        }
      }
      if (sub == 0) break;
    }
  }
  return out;
}

}  // namespace cegraph::ceg
