#ifndef CEGRAPH_CEG_CEG_M_H_
#define CEGRAPH_CEG_CEG_M_H_

#include <vector>

#include "ceg/ceg.h"
#include "query/query_graph.h"
#include "stats/degree_stats.h"
#include "util/status.h"

namespace cegraph::ceg {

/// Construction options for CEG_M (§5.1).
struct CegMOptions {
  /// Include the weight-0 projection edges (from Y down to every X ⊂ Y by
  /// single-attribute removal; removals compose). Appendix A proves these
  /// never change the minimum path weight — the ablation test toggles this.
  bool include_projection_edges = true;
};

/// CEG_M: one node per attribute subset (query::VertexSet); node ids equal
/// the subset bitmask, so node_of_set[W] == W. Source = ∅, sink = A.
struct BuiltCegM {
  Ceg ceg;
};

/// Builds the explicit MOLP CEG (§5.1): for every statistics relation and
/// every degree statistic deg(X, Y, R), an extension edge from each
/// W1 ⊇ X to W2 = W1 ∪ Y with weight deg(X, Y, R); plus projection edges.
/// The explicit build is quadratic in 2^|A| and intended for queries with
/// <= 14 attributes (every workload query qualifies); the MOLP *estimator*
/// additionally has an implicit-graph Dijkstra that never materializes
/// edges (see MolpMinLogWeight).
util::StatusOr<BuiltCegM> BuildCegM(const query::QueryGraph& q,
                                    const stats::DegreeStats& stats,
                                    const CegMOptions& options = {});

/// One step of a minimum-weight MOLP path (used by the bound sketch to
/// classify bound vs. unbound edges, §5.2.1).
struct MolpPathStep {
  query::VertexSet from = 0;
  query::VertexSet to = 0;
  /// The X of the deg(X, Y, R) statistic behind this step; 0 for unbound
  /// edges (|R| / projection-cardinality steps) and for projection steps.
  query::VertexSet x = 0;
  bool is_projection = false;
};

/// The minimum-weight (∅, A) path of CEG_M as an explicit step sequence.
/// Fails if the sink is unreachable.
util::StatusOr<std::vector<MolpPathStep>> MolpMinPath(
    const query::QueryGraph& q, const stats::DegreeStats& stats);

/// The MOLP bound of `q` in log2 domain — the weight of the minimum-weight
/// (∅, A) path of CEG_M (Theorem 5.1) — computed by Dijkstra over the
/// *implicit* CEG_M (neighbors generated from the statistics on the fly).
/// Returns +infinity if the sink is unreachable (insufficient statistics).
util::StatusOr<double> MolpMinLogWeight(const query::QueryGraph& q,
                                        const stats::DegreeStats& stats);

}  // namespace cegraph::ceg

#endif  // CEGRAPH_CEG_CEG_M_H_
