#include "ceg/ceg_ocr.h"

#include <bit>
#include <cmath>
#include <unordered_set>
#include <vector>

#include "query/subquery.h"

namespace cegraph::ceg {

namespace {

using query::EdgeSet;
using query::QueryEdge;
using query::QueryGraph;
using query::QVertex;

/// If adding query edge `close` to sub-query S completes a cycle of length
/// > h entirely contained in S ∪ {close}, returns that cycle's edge set
/// (smallest such cycle); otherwise 0.
EdgeSet FindClosedLongCycle(const QueryGraph& q,
                            const std::vector<EdgeSet>& cycles, EdgeSet s,
                            uint32_t close, int h) {
  const EdgeSet close_bit = EdgeSet{1} << close;
  EdgeSet best = 0;
  int best_len = 0;
  for (EdgeSet cycle : cycles) {
    if (!(cycle & close_bit)) continue;
    if ((cycle & ~close_bit & ~s) != 0) continue;  // rest must be in S
    const int len = std::popcount(cycle);
    if (len <= h) continue;
    if (best == 0 || len < best_len) {
      best = cycle;
      best_len = len;
    }
  }
  (void)q;
  return best;
}

/// Derives the ClosingKey for closing edge `close` of cycle `cycle`:
/// traverse the remaining path from close.dst around to close.src and
/// record the first/last edge orientations.
stats::ClosingKey MakeClosingKey(const QueryGraph& q, EdgeSet cycle,
                                 uint32_t close) {
  const QueryEdge& ce = q.edge(close);
  stats::ClosingKey key;
  key.close_label = ce.label;
  key.close_from_end = true;  // path runs close.dst -> ... -> close.src

  // Walk the cycle from close.dst to close.src along the non-close edges.
  QVertex cur = ce.dst;
  EdgeSet remaining = cycle & ~(EdgeSet{1} << close);
  bool first = true;
  while (remaining != 0) {
    // Find the unique remaining cycle edge incident to cur.
    uint32_t next_edge = 32;
    for (uint32_t ei : q.IncidentEdges(cur)) {
      if (remaining & (EdgeSet{1} << ei)) {
        next_edge = ei;
        break;
      }
    }
    if (next_edge == 32) break;  // defensive; cycles are closed walks
    const QueryEdge& e = q.edge(next_edge);
    const bool forward = (e.src == cur);
    if (first) {
      key.first_label = e.label;
      key.first_forward = forward;
      first = false;
    }
    key.last_label = e.label;
    key.last_forward = forward;
    cur = forward ? e.dst : e.src;
    remaining &= ~(EdgeSet{1} << next_edge);
  }
  return key;
}

}  // namespace

util::StatusOr<BuiltCegO> BuildCegOcr(const query::QueryGraph& q,
                                      const stats::MarkovTable& markov,
                                      const stats::CycleClosingRates& rates,
                                      const CegOOptions& options) {
  auto built = BuildCegO(q, markov, options);
  if (!built.ok()) return built.status();
  if (q.IsAcyclic()) return built;  // nothing to rewrite

  const std::vector<EdgeSet> cycles = query::SimpleCycles(q);
  const int h = markov.h();

  // Invert the node map to recover each CEG node's edge subset.
  std::vector<EdgeSet> subset_of_node(built->ceg.num_nodes(), 0);
  for (const auto& [subset, node] : built->node_of_subset) {
    subset_of_node[node] = subset;
  }

  // Rebuild the CEG, rewriting weights of cycle-closing single-edge
  // extensions. (Ceg edges are immutable; we reconstruct.)
  Ceg rewritten;
  for (uint32_t v = 0; v < built->ceg.num_nodes(); ++v) {
    rewritten.AddNode(built->ceg.node_label(v));
  }
  rewritten.SetSource(built->ceg.source());
  rewritten.SetSink(built->ceg.sink());

  for (const Ceg::Edge& e : built->ceg.edges()) {
    const EdgeSet s = subset_of_node[e.from];
    const EdgeSet target = subset_of_node[e.to];
    const EdgeSet added = target & ~s;
    double weight = std::exp2(e.log_weight);
    std::string label = e.label;
    if (s != 0 && std::popcount(added) == 1) {
      const uint32_t close =
          static_cast<uint32_t>(std::countr_zero(added));
      const EdgeSet cycle = FindClosedLongCycle(q, cycles, s, close, h);
      if (cycle != 0) {
        const stats::ClosingKey key = MakeClosingKey(q, cycle, close);
        weight = rates.Rate(key);
        label = "closing-rate(e" + std::to_string(close) + ")";
      }
    }
    rewritten.AddEdge(e.from, e.to, weight, std::move(label));
  }

  built->ceg = std::move(rewritten);
  return built;
}

std::vector<stats::ClosingKey> EnumerateClosingKeys(
    const query::QueryGraph& q, int h) {
  std::vector<stats::ClosingKey> keys;
  if (q.IsAcyclic()) return keys;
  std::unordered_set<stats::ClosingKey, stats::ClosingKeyHash> seen;
  for (EdgeSet cycle : query::SimpleCycles(q)) {
    if (std::popcount(cycle) <= h) continue;
    for (EdgeSet rest = cycle; rest != 0; rest &= rest - 1) {
      const uint32_t close = static_cast<uint32_t>(std::countr_zero(rest));
      const stats::ClosingKey key = MakeClosingKey(q, cycle, close);
      if (seen.insert(key).second) keys.push_back(key);
    }
  }
  return keys;
}

}  // namespace cegraph::ceg
