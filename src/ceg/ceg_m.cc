#include "ceg/ceg_m.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <queue>
#include <string>

namespace cegraph::ceg {

namespace {

using query::VertexSet;

std::string SetLabel(VertexSet w, uint32_t n) {
  std::string label = "{";
  for (uint32_t v = 0; v < n; ++v) {
    if (w & (VertexSet{1} << v)) {
      if (label.size() > 1) label += ",";
      label += "a" + std::to_string(v);
    }
  }
  return label + "}";
}

/// One usable degree statistic: from any W ⊇ x, reach W ∪ y at cost
/// log_weight.
struct ExtensionStat {
  VertexSet x;
  VertexSet y;
  double log_weight;
  const stats::StatRelation* relation;
};

std::vector<ExtensionStat> CollectExtensionStats(
    const stats::DegreeStats& stats) {
  std::vector<ExtensionStat> out;
  for (const stats::StatRelation& rel : stats.relations()) {
    for (const auto& [key, value] : rel.deg) {
      const auto& [x, y] = key;
      if (x == y) continue;  // weight log(1) = 0 and adds nothing
      if (value <= 0) continue;
      out.push_back({x, y, std::log2(value), &rel});
    }
  }
  return out;
}

}  // namespace

util::StatusOr<BuiltCegM> BuildCegM(const query::QueryGraph& q,
                                    const stats::DegreeStats& stats,
                                    const CegMOptions& options) {
  const uint32_t n = q.num_vertices();
  if (n > 14) {
    return util::InvalidArgumentError(
        "explicit CEG_M limited to 14 attributes; use MolpMinLogWeight");
  }
  const VertexSet full = (n == 32) ? ~VertexSet{0} : ((VertexSet{1} << n) - 1);

  BuiltCegM out;
  for (VertexSet w = 0; w <= full; ++w) {
    out.ceg.AddNode(SetLabel(w, n));
  }
  out.ceg.SetSource(0);
  out.ceg.SetSink(full);

  const std::vector<ExtensionStat> exts = CollectExtensionStats(stats);
  for (VertexSet w1 = 0; w1 <= full; ++w1) {
    for (const ExtensionStat& ext : exts) {
      if ((ext.x & w1) != ext.x) continue;  // need W1 ⊇ X
      const VertexSet w2 = w1 | ext.y;
      if (w2 == w1) continue;
      out.ceg.AddEdge(w1, w2, std::exp2(ext.log_weight),
                      "deg(" + SetLabel(ext.x, n) + "," + SetLabel(ext.y, n) +
                          "," + ext.relation->description + ")");
    }
    if (options.include_projection_edges && w1 != 0) {
      // Single-attribute removals; chains of them realize every projection.
      for (uint32_t v = 0; v < n; ++v) {
        const VertexSet bit = VertexSet{1} << v;
        if (w1 & bit) {
          out.ceg.AddEdge(w1, w1 & ~bit, 1.0, "proj");
        }
      }
    }
  }
  return out;
}

namespace {

struct DijkstraOutput {
  double log_weight;
  std::vector<MolpPathStep> steps;
};

util::StatusOr<DijkstraOutput> RunMolpDijkstra(
    const query::QueryGraph& q, const stats::DegreeStats& stats,
    bool track_path) {
  const uint32_t n = q.num_vertices();
  if (n >= 31) {
    return util::InvalidArgumentError("too many attributes");
  }
  const VertexSet full = (VertexSet{1} << n) - 1;
  const std::vector<ExtensionStat> exts = CollectExtensionStats(stats);

  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(static_cast<size_t>(full) + 1, kInf);
  struct Parent {
    VertexSet from = 0;
    VertexSet x = 0;
    bool is_projection = false;
  };
  std::vector<Parent> parent(track_path ? dist.size() : 0);
  dist[0] = 0;
  using Item = std::pair<double, VertexSet>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  heap.push({0, 0});
  while (!heap.empty()) {
    const auto [d, w] = heap.top();
    heap.pop();
    if (d > dist[w]) continue;
    if (w == full) break;
    for (const ExtensionStat& ext : exts) {
      if ((ext.x & w) != ext.x) continue;
      const VertexSet w2 = w | ext.y;
      if (w2 == w) continue;
      const double nd = d + ext.log_weight;
      if (nd < dist[w2]) {
        dist[w2] = nd;
        if (track_path) parent[w2] = {w, ext.x, false};
        heap.push({nd, w2});
      }
    }
    for (uint32_t v = 0; v < n; ++v) {
      const VertexSet bit = VertexSet{1} << v;
      if (!(w & bit)) continue;
      const VertexSet w2 = w & ~bit;
      if (d < dist[w2]) {
        dist[w2] = d;
        if (track_path) parent[w2] = {w, 0, true};
        heap.push({d, w2});
      }
    }
  }

  DijkstraOutput out;
  out.log_weight = dist[full];
  if (track_path && !std::isinf(dist[full])) {
    VertexSet cur = full;
    while (cur != 0) {
      const Parent& p = parent[cur];
      out.steps.push_back({p.from, cur, p.x, p.is_projection});
      cur = p.from;
    }
    std::reverse(out.steps.begin(), out.steps.end());
  }
  return out;
}

}  // namespace

util::StatusOr<std::vector<MolpPathStep>> MolpMinPath(
    const query::QueryGraph& q, const stats::DegreeStats& stats) {
  auto result = RunMolpDijkstra(q, stats, /*track_path=*/true);
  if (!result.ok()) return result.status();
  if (std::isinf(result->log_weight)) {
    return util::NotFoundError("MOLP sink unreachable");
  }
  return result->steps;
}

util::StatusOr<double> MolpMinLogWeight(const query::QueryGraph& q,
                                        const stats::DegreeStats& stats) {
  auto result = RunMolpDijkstra(q, stats, /*track_path=*/false);
  if (!result.ok()) return result.status();
  return result->log_weight;
}


}  // namespace cegraph::ceg
