#ifndef CEGRAPH_CEG_CEG_D_H_
#define CEGRAPH_CEG_CEG_D_H_

#include <vector>

#include "ceg/ceg.h"
#include "ceg/ceg_m.h"
#include "query/query_graph.h"
#include "stats/degree_stats.h"
#include "util/status.h"

namespace cegraph::ceg {

/// A cover of the query's attributes (Appendix D, Definition 1): a set of
/// (relation, attribute-subset) pairs whose attribute subsets union to all
/// attributes. Relations are indexed into DegreeStats::relations().
struct Cover {
  /// covered[i] = attribute bitmask covered by relation i (possibly 0).
  std::vector<query::VertexSet> covered;
};

/// Enumerates all minimal-form covers where each relation covers a subset
/// of its own attributes; used by the DBPLP bound and by the CBS-style
/// coverage enumeration. `per_relation_choices` restricts each relation's
/// options (e.g. CBS allows only 0, |A_i|-1 or |A_i| attributes).
std::vector<Cover> EnumerateCovers(const query::QueryGraph& q,
                                   const stats::DegreeStats& stats,
                                   bool cbs_choices_only);

/// Builds CEG_D for `cover` (Appendix D): nodes are attribute subsets; for
/// every (relation j, A_j) in the cover and every A'_j ⊆ A_j there is an
/// extension edge from each W ⊇ A'_j to W ∪ A_j with weight
/// deg(A'_j, A_j, R_j). No projection edges. Node ids equal subset masks.
util::StatusOr<BuiltCegM> BuildCegD(const query::QueryGraph& q,
                                    const stats::DegreeStats& stats,
                                    const Cover& cover);

}  // namespace cegraph::ceg

#endif  // CEGRAPH_CEG_CEG_D_H_
