#include "ceg/ceg_o.h"

#include <algorithm>
#include <bit>
#include <string>
#include <vector>

#include "query/subquery.h"

namespace cegraph::ceg {

namespace {

using query::EdgeSet;
using query::QueryGraph;

std::string SubsetLabel(EdgeSet s, uint32_t num_edges) {
  std::string label = "{";
  for (uint32_t i = 0; i < num_edges; ++i) {
    if (s & (EdgeSet{1} << i)) {
      if (label.size() > 1) label += ",";
      label += "e" + std::to_string(i);
    }
  }
  return label + "}";
}

}  // namespace

util::StatusOr<BuiltCegO> BuildCegO(const query::QueryGraph& q,
                                    const stats::MarkovTable& markov,
                                    const CegOOptions& options) {
  if (q.num_edges() == 0 || !q.IsConnected()) {
    return util::InvalidArgumentError("query must be non-empty and connected");
  }
  const int h = markov.h();
  const EdgeSet all = q.AllEdges();

  // All connected subsets; CEG nodes.
  const std::vector<EdgeSet> subsets = query::ConnectedSubsets(q);

  // Candidate extension patterns: connected subsets with <= h edges.
  std::vector<EdgeSet> patterns;
  for (EdgeSet s : subsets) {
    if (std::popcount(s) <= h) patterns.push_back(s);
  }

  // Per-query cache of sub-pattern cardinalities, keyed by edge subset.
  std::unordered_map<EdgeSet, double> card;
  auto cardinality = [&](EdgeSet s) -> util::StatusOr<double> {
    auto it = card.find(s);
    if (it != card.end()) return it->second;
    auto c = markov.Cardinality(q.ExtractPattern(s));
    if (!c.ok()) return c.status();
    card.emplace(s, *c);
    return *c;
  };

  BuiltCegO out;
  out.ceg.ReserveNodes(static_cast<uint32_t>(subsets.size()) + 1);
  // Each node is extended by at most one candidate per pattern.
  out.ceg.ReserveEdges((subsets.size() + 1) * patterns.size());
  const uint32_t source = out.ceg.AddNode("{}");
  out.ceg.SetSource(source);
  out.node_of_subset.emplace(0, source);
  for (EdgeSet s : subsets) {
    out.node_of_subset.emplace(s, out.ceg.AddNode(SubsetLabel(s, q.num_edges())));
  }
  out.ceg.SetSink(out.node_of_subset.at(all));

  // Candidate edge: one extension of S by pattern E.
  struct Candidate {
    EdgeSet target;
    EdgeSet pattern;      // E
    EdgeSet intersection; // I = E ∩ S (0 for first hops)
  };

  // Expand every node (including the source as S = 0).
  std::vector<EdgeSet> nodes_to_expand;
  nodes_to_expand.push_back(0);
  nodes_to_expand.insert(nodes_to_expand.end(), subsets.begin(),
                         subsets.end());

  for (EdgeSet s : nodes_to_expand) {
    if (s == all) continue;
    std::vector<Candidate> candidates;
    const int s_size = std::popcount(s);

    for (EdgeSet e : patterns) {
      const EdgeSet i = e & s;
      const EdgeSet d = e & ~s;
      if (d == 0) continue;  // adds nothing
      const EdgeSet target = s | e;
      const int e_size = std::popcount(e);
      const int target_size = std::popcount(target);

      if (s == 0) {
        // First hop: the path starts at a full pattern; rule 1 demands the
        // largest available pattern size.
        if (i != 0) continue;  // unreachable for s == 0, kept for clarity
        const int required = std::min<int>(h, std::popcount(all));
        if (options.size_h_numerators && e_size != required) continue;
        candidates.push_back({target, e, 0});
        continue;
      }

      if (i == 0) continue;  // extensions must overlap the sub-query
      if (!q.IsConnectedSubset(i)) continue;  // I must be a table pattern
      if (options.size_h_numerators) {
        const int required = std::min<int>(h, target_size);
        if (e_size != required) continue;
      }
      // S' = S ∪ E is connected because S and E are connected and overlap.
      candidates.push_back({target, e, i});
    }

    if (candidates.empty() && s != all) {
      // With rule 1 strict there can be corner cases (e.g. |S'| smaller
      // than h is impossible mid-path); relax to any pattern size for this
      // node so the CEG stays connected.
      for (EdgeSet e : patterns) {
        const EdgeSet i = e & s;
        const EdgeSet d = e & ~s;
        if (d == 0) continue;
        if (s != 0 && (i == 0 || !q.IsConnectedSubset(i))) continue;
        candidates.push_back({s | e, e, s == 0 ? EdgeSet{0} : i});
      }
    }

    if (options.early_cycle_closing && !q.IsAcyclic()) {
      const int s_cycles = s == 0 ? 0 : q.CyclomaticNumber(s);
      bool any_closing = false;
      for (const Candidate& c : candidates) {
        if (q.CyclomaticNumber(c.target) > s_cycles) {
          any_closing = true;
          break;
        }
      }
      if (any_closing) {
        std::erase_if(candidates, [&](const Candidate& c) {
          return q.CyclomaticNumber(c.target) <= s_cycles;
        });
      }
    }
    (void)s_size;

    for (const Candidate& c : candidates) {
      auto e_card = cardinality(c.pattern);
      if (!e_card.ok()) return e_card.status();
      double weight;
      std::string label;
      if (c.intersection == 0) {
        weight = *e_card;
        label = "|" + SubsetLabel(c.pattern, q.num_edges()) + "|";
      } else {
        auto i_card = cardinality(c.intersection);
        if (!i_card.ok()) return i_card.status();
        if (*i_card == 0) {
          // The conditioning sub-query is empty: the full query is empty
          // too; a zero-weight edge propagates estimate 0.
          weight = 0;
        } else {
          weight = *e_card / *i_card;
        }
        label = "|" + SubsetLabel(c.pattern, q.num_edges()) + "|/|" +
                SubsetLabel(c.intersection, q.num_edges()) + "|";
      }
      out.ceg.AddEdge(out.node_of_subset.at(s),
                      out.node_of_subset.at(c.target), weight,
                      std::move(label));
      out.edge_provenance.push_back({c.pattern, c.intersection});
    }
  }

  return out;
}

}  // namespace cegraph::ceg
