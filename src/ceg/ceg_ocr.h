#ifndef CEGRAPH_CEG_CEG_OCR_H_
#define CEGRAPH_CEG_CEG_OCR_H_

#include <vector>

#include "ceg/ceg_o.h"
#include "stats/cycle_closing.h"

namespace cegraph::ceg {

/// Builds CEG_OCR (§4.3): identical to CEG_O except that whenever an edge
/// S -> S' adds the single query edge that closes a cycle of length > h
/// whose other edges are all in S, its average-degree weight is replaced by
/// the pre-computed cycle-closing probability P(E_prev * E_next | E_close)
/// from `rates`. This prevents the estimator from pricing the closing edge
/// as a fresh extension (which is what makes CEG_O estimate a *path* query
/// instead of the cycle, §4.3).
util::StatusOr<BuiltCegO> BuildCegOcr(const query::QueryGraph& q,
                                      const stats::MarkovTable& markov,
                                      const stats::CycleClosingRates& rates,
                                      const CegOOptions& options = {});

/// Every cycle-closing statistic a CEG_OCR build of `q` (at Markov size
/// `h`) can possibly request: one key per (simple cycle longer than h,
/// closing edge within it) pair, deduplicated. Used by
/// EstimationContext::Prewarm to sample closing rates ahead of time — a
/// superset of the keys BuildCegOcr actually touches, so a prewarmed
/// context never samples during estimation.
std::vector<stats::ClosingKey> EnumerateClosingKeys(
    const query::QueryGraph& q, int h);

}  // namespace cegraph::ceg

#endif  // CEGRAPH_CEG_CEG_OCR_H_
