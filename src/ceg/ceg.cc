#include "ceg/ceg.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

namespace cegraph::ceg {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

uint32_t Ceg::AddNode(std::string label) {
  labels_.push_back(std::move(label));
  csr_valid_ = false;
  return static_cast<uint32_t>(labels_.size() - 1);
}

void Ceg::AddEdge(uint32_t from, uint32_t to, double weight,
                  std::string label) {
  Edge e;
  e.from = from;
  e.to = to;
  e.log_weight = weight > 0 ? std::log2(weight) : -kInf;
  e.label = std::move(label);
  edges_.push_back(std::move(e));
  csr_valid_ = false;
}

void Ceg::ReserveNodes(uint32_t n) { labels_.reserve(n); }

void Ceg::ReserveEdges(size_t n) { edges_.reserve(n); }

void Ceg::EnsureCsr() const {
  if (csr_valid_) return;
  const uint32_t n = num_nodes();
  csr_offsets_.assign(n + 1, 0);
  for (const Edge& e : edges_) ++csr_offsets_[e.from + 1];
  for (uint32_t v = 0; v < n; ++v) csr_offsets_[v + 1] += csr_offsets_[v];
  csr_index_.resize(edges_.size());
  std::vector<uint32_t> cursor(csr_offsets_.begin(), csr_offsets_.end() - 1);
  for (uint32_t ei = 0; ei < edges_.size(); ++ei) {
    csr_index_[cursor[edges_[ei].from]++] = ei;
  }
  csr_valid_ = true;
}

int Ceg::MaxDepthFromSource(const std::vector<uint32_t>& topo) const {
  std::vector<int> depth(num_nodes(), -1);
  depth[source_] = 0;
  int max_depth = 0;
  for (uint32_t v : topo) {
    if (depth[v] < 0) continue;
    for (uint32_t ei : OutEdges(v)) {
      const uint32_t to = edges_[ei].to;
      if (depth[v] + 1 > depth[to]) {
        depth[to] = depth[v] + 1;
        max_depth = std::max(max_depth, depth[to]);
      }
    }
  }
  return max_depth;
}

bool Ceg::IsDag() const {
  std::vector<int> indegree(num_nodes(), 0);
  for (const Edge& e : edges_) ++indegree[e.to];
  std::vector<uint32_t> queue;
  for (uint32_t v = 0; v < num_nodes(); ++v) {
    if (indegree[v] == 0) queue.push_back(v);
  }
  size_t seen = 0;
  while (!queue.empty()) {
    const uint32_t v = queue.back();
    queue.pop_back();
    ++seen;
    for (uint32_t ei : OutEdges(v)) {
      if (--indegree[edges_[ei].to] == 0) queue.push_back(edges_[ei].to);
    }
  }
  return seen == num_nodes();
}

util::StatusOr<Ceg::PathAggregates> Ceg::ComputeAggregates() const {
  // Topological order via Kahn's algorithm.
  std::vector<int> indegree(num_nodes(), 0);
  for (const Edge& e : edges_) ++indegree[e.to];
  std::vector<uint32_t> topo;
  topo.reserve(num_nodes());
  for (uint32_t v = 0; v < num_nodes(); ++v) {
    if (indegree[v] == 0) topo.push_back(v);
  }
  for (size_t i = 0; i < topo.size(); ++i) {
    for (uint32_t ei : OutEdges(topo[i])) {
      if (--indegree[edges_[ei].to] == 0) topo.push_back(edges_[ei].to);
    }
  }
  if (topo.size() != num_nodes()) {
    return util::FailedPreconditionError("CEG is not a DAG");
  }

  // Per (node, hops): path count, min/max log-weight, sum of estimates.
  // The hop dimension is bounded by the longest source-reachable path
  // (<= query size for CEG_O), not by the node count.
  const int max_hops = MaxDepthFromSource(topo);
  struct Cell {
    double count = 0;
    double min_log = kInf;
    double max_log = -kInf;
    double sum = 0;
  };
  std::vector<std::vector<Cell>> dp(
      num_nodes(), std::vector<Cell>(max_hops + 1));
  dp[source_][0] = {1, 0, 0, 1};

  for (uint32_t v : topo) {
    for (int h = 0; h <= max_hops; ++h) {
      const Cell& cell = dp[v][h];
      if (cell.count == 0) continue;
      if (h == max_hops) continue;
      for (uint32_t ei : OutEdges(v)) {
        const Edge& e = edges_[ei];
        Cell& next = dp[e.to][h + 1];
        next.count += cell.count;
        next.min_log = std::min(next.min_log, cell.min_log + e.log_weight);
        next.max_log = std::max(next.max_log, cell.max_log + e.log_weight);
        next.sum += cell.sum * std::exp2(e.log_weight);
      }
    }
  }

  PathAggregates out;
  out.min_log = kInf;
  out.max_log = -kInf;
  double total_sum = 0;
  for (int h = 0; h <= max_hops; ++h) {
    const Cell& cell = dp[sink_][h];
    if (cell.count == 0) continue;
    // A zero-hop "path" only exists when source == sink (degenerate CEGs
    // used in tests); report it like any other.
    out.reachable = true;
    out.path_count += cell.count;
    out.min_log = std::min(out.min_log, cell.min_log);
    out.max_log = std::max(out.max_log, cell.max_log);
    total_sum += cell.sum;
    out.per_hop.push_back(
        {h, cell.count, cell.min_log, cell.max_log, cell.sum});
  }
  if (out.reachable) {
    out.avg_estimate = total_sum / out.path_count;
  }
  return out;
}

util::StatusOr<double> Ceg::MinLogWeightDijkstra() const {
  for (const Edge& e : edges_) {
    if (e.log_weight < 0 && !std::isinf(e.log_weight)) {
      return util::FailedPreconditionError(
          "Dijkstra requires non-negative log-weights");
    }
  }
  std::vector<double> dist(num_nodes(), kInf);
  dist[source_] = 0;
  using Item = std::pair<double, uint32_t>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  heap.push({0, source_});
  while (!heap.empty()) {
    const auto [d, v] = heap.top();
    heap.pop();
    if (d > dist[v]) continue;
    if (v == sink_) return d;
    for (uint32_t ei : OutEdges(v)) {
      const Edge& e = edges_[ei];
      if (std::isinf(e.log_weight)) continue;  // weight-0 edge: skip
      const double nd = d + e.log_weight;
      if (nd < dist[e.to]) {
        dist[e.to] = nd;
        heap.push({nd, e.to});
      }
    }
  }
  return dist[sink_];
}

util::StatusOr<Ceg::Path> Ceg::BestPath(HopMode mode, bool maximize) const {
  // Topological order (DAG required).
  std::vector<int> indegree(num_nodes(), 0);
  for (const Edge& e : edges_) ++indegree[e.to];
  std::vector<uint32_t> topo;
  topo.reserve(num_nodes());
  for (uint32_t v = 0; v < num_nodes(); ++v) {
    if (indegree[v] == 0) topo.push_back(v);
  }
  for (size_t i = 0; i < topo.size(); ++i) {
    for (uint32_t ei : OutEdges(topo[i])) {
      if (--indegree[edges_[ei].to] == 0) topo.push_back(edges_[ei].to);
    }
  }
  if (topo.size() != num_nodes()) {
    return util::FailedPreconditionError("CEG is not a DAG");
  }

  const int max_hops = MaxDepthFromSource(topo);
  struct Cell {
    double best = 0;
    bool reachable = false;
    uint32_t via_edge = 0;  // edge used to reach this cell
    int prev_hop = -1;
  };
  std::vector<std::vector<Cell>> dp(num_nodes(),
                                    std::vector<Cell>(max_hops + 1));
  dp[source_][0].reachable = true;

  for (uint32_t v : topo) {
    for (int hop = 0; hop < max_hops; ++hop) {
      const Cell& cell = dp[v][hop];
      if (!cell.reachable) continue;
      for (uint32_t ei : OutEdges(v)) {
        const Edge& e = edges_[ei];
        Cell& next = dp[e.to][hop + 1];
        const double cand = cell.best + e.log_weight;
        const bool better = maximize ? cand > next.best : cand < next.best;
        if (!next.reachable || better) {
          next.reachable = true;
          next.best = cand;
          next.via_edge = ei;
          next.prev_hop = hop;
        }
      }
    }
  }

  // Pick the sink cell according to the hop mode.
  int chosen_hop = -1;
  for (int hop = 0; hop <= max_hops; ++hop) {
    const Cell& cell = dp[sink_][hop];
    if (!cell.reachable) continue;
    if (chosen_hop < 0) {
      chosen_hop = hop;
      if (mode == HopMode::kMinHop) break;
      continue;
    }
    switch (mode) {
      case HopMode::kMaxHop:
        chosen_hop = hop;
        break;
      case HopMode::kMinHop:
        break;
      case HopMode::kAllHops: {
        const double cur = dp[sink_][chosen_hop].best;
        const bool better = maximize ? cell.best > cur : cell.best < cur;
        if (better) chosen_hop = hop;
        break;
      }
    }
  }
  if (chosen_hop < 0) {
    return util::NotFoundError("sink unreachable");
  }

  Path path;
  path.log_weight = dp[sink_][chosen_hop].best;
  uint32_t node = sink_;
  int hop = chosen_hop;
  while (hop > 0) {
    const Cell& cell = dp[node][hop];
    path.edge_indices.push_back(cell.via_edge);
    node = edges_[cell.via_edge].from;
    hop = cell.prev_hop;
  }
  std::reverse(path.edge_indices.begin(), path.edge_indices.end());
  return path;
}

std::vector<Ceg::Path> Ceg::EnumerateSimplePaths(size_t max_paths,
                                                 bool* truncated) const {
  std::vector<Path> out;
  if (truncated != nullptr) *truncated = false;
  std::vector<bool> on_path(num_nodes(), false);
  std::vector<uint32_t> stack;

  // Iterative DFS with explicit edge cursors.
  struct Frame {
    uint32_t node;
    size_t cursor = 0;
  };
  std::vector<Frame> frames;
  frames.push_back({source_});
  on_path[source_] = true;
  double log_weight = 0;

  while (!frames.empty()) {
    Frame& frame = frames.back();
    if (frame.node == sink_ && frame.cursor == 0 && !stack.empty()) {
      out.push_back({stack, log_weight});
      if (out.size() >= max_paths) {
        if (truncated != nullptr) *truncated = true;
        return out;
      }
      // Do not extend past the sink; backtrack.
      on_path[frame.node] = false;
      frames.pop_back();
      if (!stack.empty()) {
        log_weight -= edges_[stack.back()].log_weight;
        stack.pop_back();
      }
      continue;
    }
    if (frame.cursor >= OutEdges(frame.node).size()) {
      on_path[frame.node] = false;
      frames.pop_back();
      if (!stack.empty()) {
        log_weight -= edges_[stack.back()].log_weight;
        stack.pop_back();
      }
      continue;
    }
    const uint32_t ei = OutEdges(frame.node)[frame.cursor++];
    const Edge& e = edges_[ei];
    if (on_path[e.to]) continue;
    on_path[e.to] = true;
    stack.push_back(ei);
    log_weight += e.log_weight;
    frames.push_back({e.to});
  }
  return out;
}

}  // namespace cegraph::ceg
