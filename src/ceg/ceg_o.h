#ifndef CEGRAPH_CEG_CEG_O_H_
#define CEGRAPH_CEG_CEG_O_H_

#include <unordered_map>

#include "ceg/ceg.h"
#include "query/query_graph.h"
#include "stats/markov_table.h"
#include "util/status.h"

namespace cegraph::ceg {

/// Construction options for CEG_O (§4.2). Both rules default to on, as in
/// the paper; the ablation benches toggle them.
struct CegOOptions {
  /// Rule 1: extension patterns (numerators) must have exactly
  /// min(h, |S'|) edges. When off, any extension size in [|S'\S|, h] is
  /// admitted.
  bool size_h_numerators = true;
  /// Rule 2 (early cycle closing, from [20]): if any candidate extension of
  /// S closes a cycle, only cycle-closing extensions of S are kept.
  bool early_cycle_closing = true;
};

/// CEG_O with its node <-> sub-query correspondence. Node 0 is the empty
/// sub-query (source); the sink is the node of the full query.
struct BuiltCegO {
  Ceg ceg;
  /// Node id per connected edge subset (plus 0 -> source).
  std::unordered_map<query::EdgeSet, uint32_t> node_of_subset;
  /// Provenance per CEG edge (aligned with ceg.edges()): the extension
  /// pattern E and the intersection I = E ∩ S behind the edge's weight
  /// (I = 0 for first hops). Consumed by estimators that re-weight edges,
  /// e.g. the dispersion-guided path pick (§8 future work).
  struct EdgeProvenance {
    query::EdgeSet pattern = 0;
    query::EdgeSet intersection = 0;
  };
  std::vector<EdgeProvenance> edge_provenance;
};

/// Builds the optimistic CEG of `q` over `markov` (§4.2):
///  - one vertex per connected subset S of q's edges (plus the empty set);
///  - an edge S -> S' = S ∪ E for every Markov-table pattern E (connected,
///    |E| <= h) that intersects S in a connected, non-empty I = E ∩ S and
///    adds at least one edge, with weight |E| / |I|;
///  - edges from the empty set carry the raw pattern cardinality |E|.
/// Fails if any required Markov-table entry cannot be computed.
util::StatusOr<BuiltCegO> BuildCegO(const query::QueryGraph& q,
                                    const stats::MarkovTable& markov,
                                    const CegOOptions& options = {});

}  // namespace cegraph::ceg

#endif  // CEGRAPH_CEG_CEG_O_H_
