#ifndef CEGRAPH_ENGINE_CEG_CACHE_H_
#define CEGRAPH_ENGINE_CEG_CACHE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "ceg/ceg_o.h"
#include "estimators/optimistic.h"
#include "query/query_graph.h"
#include "stats/cycle_closing.h"
#include "stats/markov_table.h"
#include "util/status.h"

namespace cegraph::engine {

/// One cached CEG build shared by every consumer of the same query class:
/// the 9 optimistic estimators, the P* oracle and the bound sketch all read
/// the same entry instead of re-running BuildCegO/BuildCegOcr.
///
/// Entries are keyed by the query's *canonical* code, so isomorphic queries
/// across a workload share one build (CEG weights are pattern cardinalities,
/// which are isomorphism-invariant). The flip side: `built.node_of_subset`
/// and `built.edge_provenance` are numbered in the *representative* query's
/// edge order — consumers that need per-edge provenance for a specific
/// query must map through an isomorphism, while aggregate/path-weight
/// consumers (everything in this repo) can read them directly.
struct CachedCeg {
  ceg::BuiltCegO built;
  /// Path aggregates over the CEG, computed once at insert time.
  bool aggregates_ok = false;
  util::Status aggregates_status;    ///< set iff !aggregates_ok
  ceg::Ceg::PathAggregates aggregates;  ///< valid iff aggregates_ok
};

/// Thread-safe per-graph cache of CEG builds, keyed by (query canonical
/// code, CEG kind, Markov h, construction-rule bits). Entries are immutable
/// after insert (the CEG is finalized so traversals are pure reads) and
/// shared via shared_ptr, so readers never block builders.
///
/// For the dynamic layer every entry records the distinct edge labels of
/// its query and whether it is an OCR build, so EvictAffected can drop
/// exactly the builds whose CEG weights (Markov cardinalities,
/// cycle-closing rates) an edge delta invalidated.
class CegCache {
 public:
  CegCache() = default;
  CegCache(const CegCache&) = delete;
  CegCache& operator=(const CegCache&) = delete;

  /// Returns the cached CEG of `q`'s isomorphism class under (kind,
  /// options), building (and caching) it on miss. `rates` is required iff
  /// kind == kCegOcr. Build failures are returned and not cached.
  util::StatusOr<std::shared_ptr<const CachedCeg>> GetOrBuild(
      const query::QueryGraph& q, const stats::MarkovTable& markov,
      OptimisticCeg kind, const stats::CycleClosingRates* rates = nullptr,
      const ceg::CegOOptions& options = {});

  /// Targeted invalidation after a graph delta: drops every entry whose
  /// query uses a label marked in `changed_labels`, plus (when
  /// `evict_all_ocr`) every CEG_OCR entry regardless of labels — closing
  /// rates sampled with intermediate hops are coupled to every relation.
  /// Returns the number of dropped entries. Must run quiesced.
  size_t EvictAffected(const std::vector<bool>& changed_labels,
                       bool evict_all_ocr);

  /// The fork-side twin of EvictAffected: copies every entry of `src` a
  /// delta did NOT invalidate into this cache (entries are immutable and
  /// held by shared_ptr, so the copy is by reference and the two caches
  /// can serve different graph epochs concurrently). Skipped entries are
  /// added to this cache's eviction counter — the fork's maintenance
  /// report counts them exactly like an in-place eviction. Returns the
  /// number of entries carried. `src` must not be this cache.
  size_t CarryFrom(const CegCache& src,
                   const std::vector<bool>& changed_labels,
                   bool evict_all_ocr);

  /// Lookup counters: exactly one miss per distinct (query class, kind,
  /// options) entry ever inserted — the "one build per query per CEG
  /// kind" property the micro-bench asserts — regardless of thread
  /// interleavings (a racer whose redundant cold build loses the insert
  /// is counted as a hit). hits() + misses() == number of successful
  /// GetOrBuild calls.
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  size_t size() const;
  void Clear();

 private:
  struct Entry {
    std::shared_ptr<const CachedCeg> ceg;
    /// Distinct edge labels of the query, sorted — the invalidation index.
    std::vector<graph::Label> labels;
    bool ocr = false;
  };

  mutable std::mutex mutex_;
  std::unordered_map<std::string, Entry> entries_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace cegraph::engine

#endif  // CEGRAPH_ENGINE_CEG_CACHE_H_
